#include "blocks/discrete.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::blocks {

// ------------------------------------------------------------- UnitDelay

UnitDelayBlock::UnitDelayBlock(std::string name, double initial)
    : Block(std::move(name), 1, 1), initial_(initial) {}

void UnitDelayBlock::initialize(const SimContext&) {
  state_ = initial_;
  set_out(0, state_);
}

void UnitDelayBlock::output(const SimContext&) { set_out(0, state_); }

void UnitDelayBlock::update(const SimContext&) { state_ = in(0); }

std::uint32_t UnitDelayBlock::state_bytes() const {
  return model::storage_bytes(output_type(0));
}

std::string UnitDelayBlock::emit_c(const EmitContext& ctx) const {
  return util::format("%s = %sstate;  /* UnitDelay %s */\n",
                      ctx.outputs[0].c_str(), ctx.state_prefix.c_str(),
                      name().c_str());
}

std::string UnitDelayBlock::emit_c_update(const EmitContext& ctx) const {
  return util::format("%sstate = %s;  /* UnitDelay %s (update) */\n",
                      ctx.state_prefix.c_str(), ctx.inputs[0].c_str(),
                      name().c_str());
}

// ---------------------------------------------------- DiscreteIntegrator

DiscreteIntegratorBlock::DiscreteIntegratorBlock(std::string name, double gain,
                                                 IntegrationMethod method,
                                                 double initial)
    : Block(std::move(name), 1, 1),
      gain_(gain),
      method_(method),
      initial_(initial) {}

void DiscreteIntegratorBlock::set_limits(double lower, double upper) {
  if (!(upper > lower)) {
    throw std::invalid_argument(name() + ": upper must exceed lower");
  }
  limited_ = true;
  lower_ = lower;
  upper_ = upper;
}

double DiscreteIntegratorBlock::clamp(double v) const {
  return limited_ ? std::clamp(v, lower_, upper_) : v;
}

void DiscreteIntegratorBlock::initialize(const SimContext&) {
  state_ = clamp(initial_);
  prev_input_ = 0.0;
  set_out(0, state_);
}

void DiscreteIntegratorBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, out(0).as_double());
    return;
  }
  const double T = resolved_period() > 0 ? resolved_period() : ctx.dt;
  switch (method_) {
    case IntegrationMethod::kForwardEuler:
      set_out(0, clamp(state_));
      break;
    case IntegrationMethod::kBackwardEuler:
      set_out(0, clamp(state_ + gain_ * T * in(0)));
      break;
    case IntegrationMethod::kTrapezoidal:
      set_out(0, clamp(state_ + gain_ * T * 0.5 * (in(0) + prev_input_)));
      break;
  }
}

void DiscreteIntegratorBlock::update(const SimContext& ctx) {
  const double T = resolved_period() > 0 ? resolved_period() : ctx.dt;
  const double u = in(0);
  switch (method_) {
    case IntegrationMethod::kForwardEuler:
      state_ = clamp(state_ + gain_ * T * u);
      break;
    case IntegrationMethod::kBackwardEuler:
      state_ = clamp(state_ + gain_ * T * u);
      break;
    case IntegrationMethod::kTrapezoidal:
      state_ = clamp(state_ + gain_ * T * 0.5 * (u + prev_input_));
      break;
  }
  prev_input_ = u;
}

mcu::OpCounts DiscreteIntegratorBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  if (fixed_point) {
    ops.mul16 = 1;
    ops.alu16 = 3;  // add + 2 clamp compares
    ops.alu32 = 1;  // wide accumulator
  } else {
    ops.fmul = 1;
    ops.fadd = 2;
  }
  ops.mem = 3;
  ops.branch = 1;
  return ops;
}

std::string DiscreteIntegratorBlock::emit_c(const EmitContext& ctx) const {
  return util::format("%s = %sacc;  /* DiscreteIntegrator %s */\n",
                      ctx.outputs[0].c_str(), ctx.state_prefix.c_str(),
                      name().c_str());
}

std::string DiscreteIntegratorBlock::emit_c_update(
    const EmitContext& ctx) const {
  return util::format("%sacc += %.17g * %s;  /* DiscreteIntegrator %s */\n",
                      ctx.state_prefix.c_str(), gain_, ctx.inputs[0].c_str(),
                      name().c_str());
}

// --------------------------------------------------- DiscreteDerivative

DiscreteDerivativeBlock::DiscreteDerivativeBlock(std::string name, double gain)
    : Block(std::move(name), 1, 1), gain_(gain) {}

void DiscreteDerivativeBlock::initialize(const SimContext&) {
  prev_ = 0.0;
  held_ = 0.0;
}

void DiscreteDerivativeBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, held_);
    return;
  }
  const double T = resolved_period() > 0 ? resolved_period() : ctx.dt;
  held_ = gain_ * (in(0) - prev_) / T;
  set_out(0, held_);
}

void DiscreteDerivativeBlock::update(const SimContext&) { prev_ = in(0); }

// --------------------------------------------------- DiscreteTransferFn

DiscreteTransferFnBlock::DiscreteTransferFnBlock(std::string name,
                                                 std::vector<double> num,
                                                 std::vector<double> den)
    : Block(std::move(name), 1, 1), num_(std::move(num)), den_(std::move(den)) {
  if (den_.empty() || den_[0] == 0.0) {
    throw std::invalid_argument(this->name() +
                                ": denominator needs a nonzero leading term");
  }
  if (num_.size() > den_.size()) {
    throw std::invalid_argument(this->name() + ": improper transfer function");
  }
  // Normalize so den[0] == 1.
  const double a0 = den_[0];
  for (auto& c : den_) c /= a0;
  for (auto& c : num_) c /= a0;
  num_.resize(den_.size(), 0.0);
}

void DiscreteTransferFnBlock::initialize(const SimContext&) {
  state_.assign(den_.size() > 1 ? den_.size() - 1 : 0, 0.0);
  pending_out_ = 0.0;
}

void DiscreteTransferFnBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, out(0).as_double());
    return;
  }
  const double u = in(0);
  const double y = num_[0] * u + (state_.empty() ? 0.0 : state_[0]);
  pending_out_ = y;
  set_out(0, y);
}

void DiscreteTransferFnBlock::update(const SimContext&) {
  // Direct form II transposed state update.
  const double u = in(0);
  const double y = pending_out_;
  for (std::size_t i = 0; i + 1 < state_.size(); ++i) {
    state_[i] = state_[i + 1] + num_[i + 1] * u - den_[i + 1] * y;
  }
  if (!state_.empty()) {
    state_.back() = num_[den_.size() - 1] * u - den_[den_.size() - 1] * y;
  }
}

std::uint32_t DiscreteTransferFnBlock::state_bytes() const {
  return static_cast<std::uint32_t>(state_.size() ? state_.size() * 4
                                                  : (den_.size() - 1) * 4);
}

mcu::OpCounts DiscreteTransferFnBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  const auto n = static_cast<std::uint32_t>(den_.size());
  if (fixed_point) {
    ops.mul16 = 2 * n;
    ops.alu16 = 2 * n;
    ops.alu32 = n;
  } else {
    ops.fmul = 2 * n;
    ops.fadd = 2 * n;
  }
  ops.mem = 3 * n;
  return ops;
}

// ------------------------------------------------------------ DiscretePID

DiscretePidBlock::DiscretePidBlock(std::string name, Gains gains,
                                   double out_min, double out_max)
    : Block(std::move(name), 1, 1),
      gains_(gains),
      out_min_(out_min),
      out_max_(out_max) {
  if (!(out_max > out_min)) {
    throw std::invalid_argument(this->name() + ": out_max must exceed out_min");
  }
}

void DiscretePidBlock::initialize(const SimContext&) {
  integral_ = 0.0;
  deriv_state_ = 0.0;
  prev_error_ = 0.0;
  unsat_ = 0.0;
  sat_ = 0.0;
  set_out(0, 0.0);
}

void DiscretePidBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, sat_);
    return;
  }
  const double T = resolved_period() > 0 ? resolved_period() : ctx.dt;
  const double e = in(0);
  // Filtered derivative: d = N*(Kd*e - x); x' = d  (backward Euler).
  const double n = gains_.derivative_filter;
  const double d =
      gains_.kd > 0
          ? n * (gains_.kd * e - deriv_state_) / (1.0 + n * T)
          : 0.0;
  unsat_ = gains_.kp * e + integral_ + d;
  sat_ = std::clamp(unsat_, out_min_, out_max_);
  set_out(0, sat_);
}

void DiscretePidBlock::update(const SimContext& ctx) {
  const double T = resolved_period() > 0 ? resolved_period() : ctx.dt;
  const double e = in(0);
  // Back-calculation anti-windup: bleed the integrator toward the saturated
  // output when the actuator limits.
  const double aw = (sat_ - unsat_) / std::max(gains_.kp, 1e-9);
  integral_ += gains_.ki * T * (e + aw);
  if (gains_.kd > 0) {
    const double n = gains_.derivative_filter;
    const double d = n * (gains_.kd * e - deriv_state_) / (1.0 + n * T);
    deriv_state_ += T * d;
  }
  prev_error_ = e;
}

mcu::OpCounts DiscretePidBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  if (fixed_point) {
    ops.mul16 = 5;
    ops.alu16 = 8;
    ops.alu32 = 2;  // 32-bit integral accumulator
    ops.div16 = 1;  // derivative filter
  } else {
    ops.fmul = 6;
    ops.fadd = 7;
    ops.fdiv = 1;
  }
  ops.mem = 8;
  ops.branch = 2;
  return ops;
}

std::string DiscretePidBlock::emit_c(const EmitContext& ctx) const {
  const char* t = ctx.fixed_point ? "int16_T" : "real_T";
  return util::format(
      "{\n"
      "  %s e = %s;  /* DiscretePID %s */\n"
      "  %s u = %s_Kp * e + %sintegral + %s_Kd_term(e, &%sderiv);\n"
      "  %s = clamp(u, %s_MIN, %s_MAX);\n"
      "  %sintegral += %s_Ki_T * (e + (%s - u));\n"
      "}\n",
      t, ctx.inputs[0].c_str(), name().c_str(), t, name().c_str(),
      ctx.state_prefix.c_str(), name().c_str(), ctx.state_prefix.c_str(),
      ctx.outputs[0].c_str(), name().c_str(), name().c_str(),
      ctx.state_prefix.c_str(), name().c_str(), ctx.outputs[0].c_str());
}

// --------------------------------------------------------- MovingAverage

MovingAverageBlock::MovingAverageBlock(std::string name, int taps)
    : Block(std::move(name), 1, 1), taps_(taps) {
  if (taps < 1) throw std::invalid_argument("MovingAverage: taps >= 1");
}

void MovingAverageBlock::initialize(const SimContext&) {
  window_.clear();
  pending_ = 0.0;
}

void MovingAverageBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, out(0).as_double());
    return;
  }
  pending_ = in(0);
  double acc = pending_;
  for (double v : window_) acc += v;
  set_out(0, acc / static_cast<double>(window_.size() + 1));
}

void MovingAverageBlock::update(const SimContext&) {
  window_.push_front(pending_);
  while (static_cast<int>(window_.size()) >= taps_) window_.pop_back();
}

std::uint32_t MovingAverageBlock::state_bytes() const {
  return static_cast<std::uint32_t>(taps_) *
         model::storage_bytes(output_type(0));
}

mcu::OpCounts MovingAverageBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  const auto n = static_cast<std::uint32_t>(taps_);
  if (fixed_point) {
    ops.alu16 = n;
    ops.alu32 = n;
    ops.div16 = 1;
  } else {
    ops.fadd = n;
    ops.fdiv = 1;
  }
  ops.mem = 2 * n;
  return ops;
}

}  // namespace iecd::blocks
