file(REMOVE_RECURSE
  "libiecd_fixpt.a"
)
