#include "obs/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace iecd::obs {

LatencyHistogram::LatencyHistogram() : LatencyHistogram(Config{}) {}

LatencyHistogram::LatencyHistogram(Config config) : config_(config) {
  const std::size_t sub = std::size_t{1} << config_.sub_bucket_bits;
  const std::size_t octaves =
      static_cast<std::size_t>(config_.max_exp - config_.min_exp);
  counts_.assign(1 + octaves * sub, 0);  // [0] = zero/underflow
}

// Octave o of bucket 1 + o*S + s holds values whose frexp exponent is
// min_exp + o + 1, i.e. v in [2^(min_exp+o), 2^(min_exp+o+1)); sub-bucket s
// spans [base * (1 + s/S), base * (1 + (s+1)/S)) with base = 2^(min_exp+o).
double LatencyHistogram::bucket_lo(std::size_t i) const {
  if (i == 0) return 0.0;
  const std::size_t sub = std::size_t{1} << config_.sub_bucket_bits;
  const std::size_t octave = (i - 1) >> config_.sub_bucket_bits;
  const std::size_t s = (i - 1) & (sub - 1);
  return std::ldexp(1.0 + static_cast<double>(s) / static_cast<double>(sub),
                    config_.min_exp + static_cast<int>(octave));
}

double LatencyHistogram::bucket_hi(std::size_t i) const {
  if (i == 0) return std::ldexp(1.0, config_.min_exp);
  const std::size_t sub = std::size_t{1} << config_.sub_bucket_bits;
  const std::size_t octave = (i - 1) >> config_.sub_bucket_bits;
  const std::size_t s = (i - 1) & (sub - 1);
  return std::ldexp(
      1.0 + static_cast<double>(s + 1) / static_cast<double>(sub),
      config_.min_exp + static_cast<int>(octave));
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (std::isnan(p)) return p;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Linear rank convention matching util::SampleSeries::percentile.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i];
    if (in_bucket == 0) continue;
    const double first = static_cast<double>(cumulative);
    const double last = static_cast<double>(cumulative + in_bucket - 1);
    if (rank <= last) {
      // Interpolate the rank's position across the bucket's value span.
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      const double frac =
          in_bucket > 1 ? (rank - first) / static_cast<double>(in_bucket - 1)
                        : 0.5;
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

bool LatencyHistogram::merge(const LatencyHistogram& other) {
  if (!(config_ == other.config_)) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  sum_ += other.sum_;
  count_ += other.count_;
  return true;
}

LatencyHistogram LatencyHistogram::from_raw(Config config,
                                            std::vector<std::uint64_t> counts,
                                            std::uint64_t count, double sum,
                                            double min, double max) {
  LatencyHistogram h(config);
  if (counts.size() != h.counts_.size()) return h;
  h.counts_ = std::move(counts);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::string LatencyHistogram::summary() const {
  return util::format(
      "n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
      static_cast<unsigned long long>(count_), mean(), p50(), p90(), p99(),
      max());
}

}  // namespace iecd::obs
