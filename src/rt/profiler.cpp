#include "rt/profiler.hpp"

#include <cmath>

#include "sim/time.hpp"
#include "util/strings.hpp"

namespace iecd::rt {

double TaskProfile::period_jitter_stddev_us() const {
  if (start_times_s.count() < 3) return 0.0;
  util::RunningStats intervals;
  const auto& starts = start_times_s.samples();
  for (std::size_t i = 1; i < starts.size(); ++i) {
    intervals.add((starts[i] - starts[i - 1]) * 1e6);
  }
  return intervals.stddev();
}

double TaskProfile::period_jitter_peak_us(double nominal_period_s) const {
  if (start_times_s.count() < 2) return 0.0;
  const auto& starts = start_times_s.samples();
  double peak = 0.0;
  for (std::size_t i = 1; i < starts.size(); ++i) {
    const double dev =
        std::abs((starts[i] - starts[i - 1]) - nominal_period_s) * 1e6;
    peak = std::max(peak, dev);
  }
  return peak;
}

void Profiler::record(const mcu::DispatchRecord& record) {
  // Hot path: one dispatch per ISR activation.  The registry keys are
  // built once, at first sight of a task; afterwards the lookup is a
  // string-view find and the registry handles are cached references.
  auto it = tasks_.find(record.name);
  if (it == tasks_.end()) {
    const std::string key(record.name);
    it = tasks_
             .emplace(std::piecewise_construct, std::forward_as_tuple(key),
                      std::forward_as_tuple(
                          registry_.series(key + ".exec_us"),
                          registry_.series(key + ".response_us"),
                          registry_.series(key + ".start_s"),
                          registry_.counter(key + ".activations")))
             .first;
  }
  TaskProfile& p = it->second;
  p.exec_time_us.add(
      sim::to_microseconds(record.end_time - record.start_time));
  p.response_time_us.add(
      sim::to_microseconds(record.start_time - record.raise_time));
  p.start_times_s.add(sim::to_seconds(record.start_time));
  p.activation_counter_.value = ++p.activations;
}

const TaskProfile* Profiler::task(const std::string& name) const {
  const auto it = tasks_.find(name);
  return it == tasks_.end() ? nullptr : &it->second;
}

std::string Profiler::report(double nominal_period_s) const {
  std::string out;
  for (const auto& [name, p] : tasks_) {
    out += util::format(
        "%-28s n=%-7llu exec %8.2f/%8.2f us (mean/max)  response "
        "%7.2f/%7.2f us",
        name.c_str(), static_cast<unsigned long long>(p.activations),
        p.exec_time_us.mean(), p.exec_time_us.max(),
        p.response_time_us.mean(), p.response_time_us.max());
    if (nominal_period_s > 0) {
      out += util::format("  jitter %6.2f us (peak %6.2f us)",
                          p.period_jitter_stddev_us(),
                          p.period_jitter_peak_us(nominal_period_s));
    }
    out += '\n';
  }
  return out;
}

}  // namespace iecd::rt
