/// \file target_io.hpp
/// Interface every hardware-coupled block (the PE block set in src/core/)
/// implements so the code generator can retarget it.  A PE block behaves
/// three ways depending on the execution mode:
///   kMil    — simulate the peripheral inside the model (quantization,
///             resolution, rate limits), passing plant signals through;
///   kTarget — talk to the bound bean / simulated peripheral (the
///             "generated code" path, also used for HIL);
///   kPil    — redirect reads/writes to the PIL communication buffer, the
///             paper's special code variant for processor-in-the-loop runs.
#pragma once

#include <string>
#include <vector>

#include "mcu/cost_model.hpp"
#include "mcu/derivative.hpp"
#include "model/block.hpp"
#include "model/subsystem.hpp"

namespace iecd::codegen {

class SignalBuffer;

enum class IoMode { kMil, kTarget, kPil };
enum class IoDirection { kInput, kOutput, kEvent };

class TargetIo {
 public:
  virtual ~TargetIo() = default;

  virtual IoDirection io_direction() const = 0;
  virtual void set_mode(IoMode mode) = 0;
  virtual IoMode mode() const = 0;

  /// Attaches the PIL buffer (kPil mode reads/writes it by signal name).
  virtual void set_pil_buffer(SignalBuffer* buffer) = 0;

  /// One-time startup actions on the target (enable the peripheral, ...).
  virtual void target_init(const model::SimContext& ctx) = 0;
  /// Input blocks: sample the peripheral (or PIL buffer) into the block's
  /// output latch.  Runs at ISR start.
  virtual void target_read(const model::SimContext& ctx) = 0;
  /// Output blocks: push the block's input value to the peripheral (or PIL
  /// buffer).  Runs at ISR end (commit phase).
  virtual void target_write(const model::SimContext& ctx) = 0;

  /// Target cost of the read/write (beyond the block's own step_ops).
  virtual mcu::OpCounts io_ops() const = 0;

  /// Raw busy-wait cycles on \p cpu (e.g. a blocking ADC conversion).
  virtual std::uint64_t extra_cycles(const mcu::DerivativeSpec& cpu) const {
    (void)cpu;
    return 0;
  }

  /// The bean this block fronts (for hook auto-configuration).
  virtual std::string bean_name() const = 0;
  /// Bean methods the generated code calls (hooks enable exactly these).
  virtual std::vector<std::string> required_methods() const = 0;

  /// C statement(s) the generator emits for this block's hardware access.
  virtual std::string emit_target_c(bool pil, const std::string& var) const = 0;

  /// Event wiring this block contributes (bean event -> triggered task).
  struct EventBinding {
    std::string event;
    model::FunctionCallSubsystem* target = nullptr;
  };
  virtual std::vector<EventBinding> event_bindings() const { return {}; }
};

}  // namespace iecd::codegen
