/// \file peripheral.hpp
/// Base for on-chip peripherals: owns the back-reference to the MCU and
/// hooks itself into the MCU reset chain.
#pragma once

#include <string>

#include "mcu/mcu.hpp"

namespace iecd::periph {

class Peripheral {
 public:
  Peripheral(mcu::Mcu& mcu, std::string name)
      : mcu_(mcu), name_(std::move(name)) {
    mcu_.add_reset_hook([this] { reset(); });
  }
  virtual ~Peripheral() = default;

  Peripheral(const Peripheral&) = delete;
  Peripheral& operator=(const Peripheral&) = delete;

  const std::string& name() const { return name_; }
  mcu::Mcu& mcu() { return mcu_; }
  const mcu::Mcu& mcu() const { return mcu_; }

  virtual void reset() {}

 protected:
  sim::EventQueue& queue() { return mcu_.queue(); }
  sim::SimTime now() const { return mcu_.now(); }

 private:
  mcu::Mcu& mcu_;
  std::string name_;
};

/// Conventional interrupt vector numbers used by the beans layer when
/// wiring peripherals.  Priorities are assigned separately.
enum IrqVectors : mcu::IrqVector {
  kIrqTimerBase = 10,   // +channel
  kIrqAdcBase = 30,     // +converter
  kIrqPwmBase = 40,     // +module (reload interrupt)
  kIrqGpioBase = 50,    // +pin
  kIrqUartRxBase = 70,  // +uart
  kIrqUartTxBase = 80,  // +uart
  kIrqQdecBase = 90,    // +decoder (index pulse)
};

}  // namespace iecd::periph
