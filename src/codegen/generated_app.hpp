/// \file generated_app.hpp
/// The artifact the code generator produces: executable task descriptions
/// (with read/compute/write phases and cycle costs on the selected
/// derivative), the emitted C sources, and the memory footprint.  The
/// real-time kernel (src/rt/) deploys the tasks onto the simulated MCU.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mcu/cost_model.hpp"
#include "model/block.hpp"
#include "model/subsystem.hpp"

namespace iecd::codegen {

struct TaskSpec {
  enum class Trigger { kPeriodic, kEvent };

  std::string name;
  Trigger trigger = Trigger::kPeriodic;
  double period_s = 0.0;        ///< periodic tasks
  std::string event_bean;       ///< event tasks: source bean instance
  std::string event_name;      ///< event tasks: bean event

  /// Execution phases (SimContext carries the activation time).
  std::function<void(const model::SimContext&)> read;
  std::function<void(const model::SimContext&)> compute;
  std::function<void(const model::SimContext&)> write;

  mcu::OpCounts ops;            ///< per-activation operation counts
  std::uint64_t extra_cycles = 0;  ///< busy-wait cycles (blocking I/O)
  std::uint32_t stack_bytes = 160;
};

struct MemoryEstimate {
  std::uint32_t data_bytes = 0;   ///< signals + discrete states (RAM)
  std::uint32_t code_bytes = 0;   ///< generated code + drivers (flash)
  std::uint32_t stack_bytes = 0;  ///< deepest task frame
};

struct GeneratedApplication {
  std::string name;
  bool fixed_point = false;
  bool pil_variant = false;
  std::string derivative;

  std::vector<TaskSpec> tasks;
  std::function<void(const model::SimContext&)> init;

  /// Emitted sources, filename -> contents (model step code, main, bean
  /// drivers, PE_Types.h).
  std::map<std::string, std::string> sources;

  MemoryEstimate memory;

  /// Cycles one activation of \p task costs on \p costs.
  std::uint64_t task_cycles(std::size_t task, const mcu::CostModel& costs) const;

  /// Estimated CPU utilisation of the periodic tasks at \p clock_hz.
  double estimated_utilisation(const mcu::CostModel& costs,
                               double clock_hz) const;

  /// Total generated-source line count (the paper's code-size axis).
  std::size_t source_lines() const;

  std::string report() const;
};

}  // namespace iecd::codegen
