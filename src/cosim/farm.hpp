/// \file farm.hpp
/// The networked servo farm — the co-simulation flagship: N full-fidelity
/// servo nodes and one lightweight supervisor on a shared CAN bus,
/// optionally stressed by background chatter.  Each servo runs its own
/// local speed loop against its own motor; the supervisor broadcasts the
/// set-point and watches per-node status freshness.  ServoFarm builds the
/// live system from a declarative Topology, wires fault sites
/// (bus frame faults, per-node encoder glitches, node kill/degrade from
/// the plan's cosim.* rates) and per-node timing monitors, runs the
/// master, and folds a FarmResult.
///
/// make_farm_scenario adapts a FarmConfig into a fault::CampaignScenario,
/// so farms run under CampaignRunner and campaign::CampaignEngine
/// unchanged — per-(run, site) fault streams, index-order merge, evidence
/// artifacts and thread-count-invariant reports all included.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cosim/master.hpp"
#include "cosim/nodes.hpp"
#include "cosim/topology.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "obs/monitor.hpp"

namespace iecd::cosim {

struct FarmConfig {
  /// Servo node count; total bus nodes = servo_count + 1 supervisor
  /// (+ 1 chatter node when traffic_frames_per_s > 0).
  std::size_t servo_count = 15;
  std::uint32_t bitrate_bps = 500000;
  double duration_s = 1.0;
  double setpoint = 100.0;  ///< [rad/s]
  double setpoint_time = 0.05;
  /// Background chatter at the high-priority E10 ID (0 = none).
  double traffic_frames_per_s = 0.0;
  /// Template for every servo node's controller.
  ServoNodeConfig servo;
  double command_period_s = 0.01;
  double stale_timeout_s = 0.05;
  /// A node counts as settled when |speed - setpoint| <= tolerance *
  /// max(setpoint, 1).
  double settle_tolerance = 0.05;
};

/// The farm's declarative description: one bus, servo_count ServoNodes,
/// one supervisor, optional chatter — in that order (fixed node indices).
Topology make_farm_topology(const FarmConfig& config);

struct FarmNodeResult {
  std::string name;
  double setpoint = 0.0;  ///< last commanded set-point the node saw
  double speed = 0.0;     ///< true shaft speed at end of run
  double abs_error = 0.0;
  bool settled = false;
  bool killed = false;
  bool degraded = false;
  bool stale = false;  ///< supervisor's staleness verdict
  std::uint64_t control_ticks = 0;
  std::uint64_t status_frames = 0;
  std::uint64_t commands_seen = 0;
};

struct FarmResult {
  std::vector<FarmNodeResult> nodes;
  std::uint64_t commands_sent = 0;
  std::uint64_t statuses_seen = 0;
  std::uint64_t traffic_frames = 0;
  std::uint64_t frames_delivered = 0;
  double bus_utilisation = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t negotiations = 0;
  std::size_t killed_count = 0;
  std::size_t degraded_count = 0;
  std::size_t stale_count = 0;
  /// Mean |speed - setpoint| over the alive (non-killed) nodes.
  double mean_abs_error = 0.0;
  /// Recovered = every alive node settled, every killed node detected
  /// stale by the supervisor, and no alive node falsely flagged stale.
  bool recovered = false;
};

class ServoFarm {
 public:
  struct Options {
    double duration_s = 1.0;
    double settle_tolerance = 0.05;
    fault::FaultInjector* faults = nullptr;   ///< optional, per run
    obs::MonitorHub* monitors = nullptr;      ///< optional, per run
  };

  /// Builds the live system in topology order.  Fault sites consulted at
  /// build time (node kill/degrade draws) use site "cosim.<node name>",
  /// in node order — independent of everything else in the run.
  ServoFarm(const Topology& topology, const Options& options);

  Master& master() { return master_; }
  const std::vector<std::unique_ptr<ServoNode>>& servos() const {
    return servos_;
  }
  SupervisorNode* supervisor() { return supervisor_.get(); }

  /// Runs the master to options.duration_s and folds the result.
  FarmResult run();

 private:
  Options options_;
  std::vector<std::unique_ptr<SharedCanBus>> buses_;
  std::vector<std::unique_ptr<ServoNode>> servos_;
  std::unique_ptr<SupervisorNode> supervisor_;
  std::vector<std::unique_ptr<TrafficGenNode>> traffic_;
  Master master_;
};

/// One farm campaign run: builds a farm for ctx's injector, runs it, and
/// records campaign.* metrics (tracking-error stats, settled/killed/
/// degraded/stale counters) plus the per-node health report.  Returns the
/// farm's recovered verdict.
bool run_farm_campaign_run(const FarmConfig& config, fault::RunContext& ctx);

/// Closure form for CampaignRunner::run / campaign::CampaignEngine.
fault::CampaignScenario make_farm_scenario(FarmConfig config);

}  // namespace iecd::cosim
