// E9 — substrate soundness: raw throughput of the simulation kernels the
// reproduction stands on (block-diagram engine, discrete-event queue,
// MCU+peripheral co-simulation) and host-level parallel scaling of
// independent simulation sweeps across cores (the thread-pool harness all
// parameter-sweep benches can use).
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "blocks/sinks.hpp"
#include "core/case_study.hpp"
#include "exec/sweep.hpp"
#include "model/engine.hpp"
#include "sim/event_queue.hpp"

using namespace iecd;

namespace {

// Single-thread throughput of the two hot-path substrates: the discrete
// event core (schedule+dispatch cycles) and the block-diagram engine's
// major-step loop.  These are the headline numbers the perf trajectory
// tracks (BENCH_*.json: event_queue.events_per_s, engine.steps_per_s).
void table_hot_path() {
  std::printf("single-thread hot-path throughput:\n\n");

  const int rounds = bench::smoke() ? 20 : 400;
  const int events = 1024;
  std::uint64_t fired = 0;
  bench::Stopwatch ev_watch;
  for (int r = 0; r < rounds; ++r) {
    sim::EventQueue q;
    for (int i = 0; i < events; ++i) {
      q.schedule_at((i * 7919) % 100000 + 1, [&fired] { ++fired; });
    }
    q.run_all();
  }
  const double ev_s = ev_watch.elapsed_ms() / 1e3;
  const double events_per_s =
      static_cast<double>(rounds) * events / std::max(ev_s, 1e-12);
  benchmark::DoNotOptimize(fired);
  std::printf("%-34s %12.3g events/s\n", "event core (schedule+dispatch)",
              events_per_s);
  bench::summarize("event_queue.events_per_s", events_per_s);

  const int chain = 64;
  model::Model m("chain");
  auto& src = m.add<blocks::ConstantBlock>("src", 1.0);
  model::Block* prev = &src;
  for (int i = 0; i < chain; ++i) {
    auto& g = m.add<blocks::GainBlock>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& sink = m.add<blocks::TerminatorBlock>("sink");
  m.connect(*prev, 0, sink, 0);
  model::Engine eng(m, {.stop_time = 1e9});
  eng.initialize();
  const int steps = bench::smoke() ? 20'000 : 200'000;
  bench::Stopwatch step_watch;
  for (int i = 0; i < steps; ++i) eng.step();
  const double step_s = step_watch.elapsed_ms() / 1e3;
  const double steps_per_s = steps / std::max(step_s, 1e-12);
  const double block_steps_per_s = steps_per_s * (chain + 2);
  benchmark::DoNotOptimize(sink.name());
  std::printf("%-34s %12.3g major steps/s (%.3g block steps/s)\n",
              "engine (64-block gain chain)", steps_per_s, block_steps_per_s);
  bench::summarize("engine.steps_per_s", steps_per_s);
  bench::summarize("engine.block_steps_per_s", block_steps_per_s);
  std::printf("\n");
}

void print_table() {
  std::printf("E9: simulation-substrate throughput\n\n");

  table_hot_path();

  // Parallel sweep scaling: N independent MIL runs across worker counts.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel MIL sweep scaling (16 servo runs of 1 s; host has "
              "%u core%s -> ideal speedup %ux):\n\n",
              cores, cores == 1 ? "" : "s", cores);
  std::printf("%-10s %-12s %-10s\n", "threads", "wall[ms]", "speedup");
  bench::print_rule(36);
  const std::size_t runs = 16;
  const double duration_s = bench::smoke() ? 0.1 : 1.0;
  double t1 = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    exec::SweepRunner runner(exec::SweepOptions{.threads = threads});
    const auto result = runner.run(
        runs, [duration_s](std::size_t, trace::MetricsRegistry& metrics) {
          core::ServoConfig cfg;
          cfg.duration_s = duration_s;
          core::ServoSystem servo(cfg);
          auto mil = servo.run_mil();
          metrics.stats("mil.iae").add(mil.iae);
        });
    const double ms = result.wall_ms;
    if (threads == 1) t1 = ms;
    std::printf("%-10zu %-12.1f %-10.2fx\n", threads, ms, t1 / ms);
    const std::string key = "sweep." + std::to_string(threads) + "_threads";
    bench::summarize(key + ".wall_ms", ms);
    bench::summarize(key + ".speedup", t1 / ms);
    if (threads == std::min<std::size_t>(8, cores)) {
      bench::summarize("sweep.parallel_efficiency_at_cores",
                       (t1 / ms) / static_cast<double>(threads));
    }
  }
  std::printf("\n(each simulation is deterministic and single-threaded; "
              "parallelism lives at the\n sweep level, so speedup is "
              "bounded by the available cores.)\n\n");
}

void BM_EngineGainChain(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  model::Model m("chain");
  auto& src = m.add<blocks::ConstantBlock>("src", 1.0);
  model::Block* prev = &src;
  for (int i = 0; i < n; ++i) {
    auto& g = m.add<blocks::GainBlock>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& sink = m.add<blocks::TerminatorBlock>("sink");
  m.connect(*prev, 0, sink, 0);
  model::Engine eng(m, {.stop_time = 1e9});
  eng.initialize();
  for (auto _ : state) {
    eng.step();
  }
  state.SetItemsProcessed(state.iterations() * (n + 2));
  state.counters["block_steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * (n + 2)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineGainChain)->Arg(16)->Arg(64)->Arg(256);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int hits = 0;
    for (int i = 0; i < 1024; ++i) {
      q.schedule_at((i * 7919) % 100000 + 1, [&hits] { ++hits; });
    }
    q.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_McuIsrDispatch(benchmark::State& state) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  mcu::IsrHandler handler;
  handler.name = "bench";
  handler.body = []() -> std::uint64_t { return 100; };
  mcu.intc().register_vector(1, 0, std::move(handler));
  for (auto _ : state) {
    world.queue().schedule_in(10, [&] { mcu.raise_irq(1); });
    world.run_for(sim::microseconds(10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McuIsrDispatch);

void BM_HilCosimRealtimeRatio(benchmark::State& state) {
  // How much faster than real time the full HIL co-simulation runs.
  for (auto _ : state) {
    core::ServoConfig cfg;
    cfg.duration_s = 0.5;
    core::ServoSystem servo(cfg);
    auto hil = servo.run_hil();
    benchmark::DoNotOptimize(hil.iae);
  }
  state.counters["sim_s/wall_s"] = benchmark::Counter(
      0.5 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HilCosimRealtimeRatio)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
