#include "blocks/math_blocks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::blocks {

GainBlock::GainBlock(std::string name, double gain)
    : Block(std::move(name), 1, 1), gain_(gain) {}

void GainBlock::output(const SimContext&) { set_out(0, gain_ * in(0)); }

mcu::OpCounts GainBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  if (fixed_point) {
    // 16x16 multiply + rescale shift + saturation check.
    ops.mul16 = 1;
    ops.alu16 = 2;
  } else {
    ops.fmul = 1;
  }
  ops.mem = 2;
  return ops;
}

std::string GainBlock::emit_c(const EmitContext& ctx) const {
  if (ctx.fixed_point) {
    return util::format(
        "%s = sat16(((int32_T)%s * %s_gain) >> %s_shift);  /* Gain %s */\n",
        ctx.outputs[0].c_str(), ctx.inputs[0].c_str(), name().c_str(),
        name().c_str(), name().c_str());
  }
  return util::format("%s = %.17g * %s;  /* Gain %s */\n",
                      ctx.outputs[0].c_str(), gain_, ctx.inputs[0].c_str(),
                      name().c_str());
}

SumBlock::SumBlock(std::string name, std::string signs)
    : Block(name, static_cast<int>(signs.size()), 1), signs_(std::move(signs)) {
  if (signs_.empty()) {
    throw std::invalid_argument(this->name() + ": Sum needs >= 1 sign");
  }
  for (char c : signs_) {
    if (c != '+' && c != '-') {
      throw std::invalid_argument(this->name() + ": Sum signs must be +/-");
    }
  }
}

void SumBlock::output(const SimContext&) {
  double acc = 0.0;
  for (std::size_t i = 0; i < signs_.size(); ++i) {
    const double v = in(static_cast<int>(i));
    acc += signs_[i] == '+' ? v : -v;
  }
  set_out(0, acc);
}

mcu::OpCounts SumBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  const auto n = static_cast<std::uint32_t>(signs_.size());
  if (fixed_point) {
    ops.alu16 = n + 1;  // adds + saturation
  } else {
    ops.fadd = n;
  }
  ops.mem = n + 1;
  return ops;
}

std::string SumBlock::emit_c(const EmitContext& ctx) const {
  std::string expr;
  for (std::size_t i = 0; i < signs_.size(); ++i) {
    if (i == 0 && signs_[i] == '+') {
      expr += ctx.inputs[i];
    } else {
      expr += signs_[i] == '+' ? " + " : " - ";
      expr += ctx.inputs[i];
    }
  }
  if (ctx.fixed_point) {
    return util::format("%s = sat16(%s);  /* Sum %s */\n",
                        ctx.outputs[0].c_str(), expr.c_str(), name().c_str());
  }
  return util::format("%s = %s;  /* Sum %s */\n", ctx.outputs[0].c_str(),
                      expr.c_str(), name().c_str());
}

ProductBlock::ProductBlock(std::string name, int inputs)
    : Block(std::move(name), inputs, 1) {
  if (inputs < 1) throw std::invalid_argument("Product needs >= 1 input");
}

void ProductBlock::output(const SimContext&) {
  double acc = 1.0;
  for (int i = 0; i < input_count(); ++i) acc *= in(i);
  set_out(0, acc);
}

mcu::OpCounts ProductBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  const auto n = static_cast<std::uint32_t>(input_count());
  if (fixed_point) {
    ops.mul16 = n - 1;
    ops.alu16 = n;
  } else {
    ops.fmul = n - 1;
  }
  ops.mem = n + 1;
  return ops;
}

std::string ProductBlock::emit_c(const EmitContext& ctx) const {
  return util::format("%s = %s;  /* Product %s */\n", ctx.outputs[0].c_str(),
                      util::join(ctx.inputs, " * ").c_str(), name().c_str());
}

AbsBlock::AbsBlock(std::string name) : Block(std::move(name), 1, 1) {}

void AbsBlock::output(const SimContext&) { set_out(0, std::abs(in(0))); }

std::string AbsBlock::emit_c(const EmitContext& ctx) const {
  return util::format("%s = (%s < 0) ? -%s : %s;  /* Abs %s */\n",
                      ctx.outputs[0].c_str(), ctx.inputs[0].c_str(),
                      ctx.inputs[0].c_str(), ctx.inputs[0].c_str(),
                      name().c_str());
}

MinMaxBlock::MinMaxBlock(std::string name, bool is_max, int inputs)
    : Block(std::move(name), inputs, 1), is_max_(is_max) {
  if (inputs < 1) throw std::invalid_argument("MinMax needs >= 1 input");
}

void MinMaxBlock::output(const SimContext&) {
  double acc = in(0);
  for (int i = 1; i < input_count(); ++i) {
    acc = is_max_ ? std::max(acc, in(i)) : std::min(acc, in(i));
  }
  set_out(0, acc);
}

}  // namespace iecd::blocks
