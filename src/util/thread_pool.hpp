/// \file thread_pool.hpp
/// Small work-stealing-free thread pool used by the benchmark harnesses to
/// run independent simulation instances (parameter sweeps) across host
/// cores.  Simulations themselves are deterministic and single-threaded;
/// parallelism lives strictly at the sweep level.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iecd::util {

class ThreadPool {
 public:
  /// \p threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports its completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace iecd::util
