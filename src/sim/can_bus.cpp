#include "sim/can_bus.hpp"

#include <stdexcept>

#include "trace/trace.hpp"
#include "util/crc16.hpp"

namespace iecd::sim {

namespace {

/// Integrity word over identifier + payload (the model's stand-in for the
/// CRC field of the real frame format).
std::uint16_t frame_crc(const CanFrame& frame) {
  std::uint16_t crc = 0xFFFF;
  crc = util::crc16_ccitt_update(crc, static_cast<std::uint8_t>(frame.id));
  crc = util::crc16_ccitt_update(crc,
                                 static_cast<std::uint8_t>(frame.id >> 8));
  crc = util::crc16_ccitt_update(crc,
                                 static_cast<std::uint8_t>(frame.id >> 16));
  crc = util::crc16_ccitt(
      std::span<const std::uint8_t>(frame.data.data(), frame.data.size()),
      crc);
  return crc;
}

}  // namespace

CanBus::CanBus(World& world, std::uint32_t bitrate_bps, std::string name)
    : world_(world), name_(std::move(name)), bitrate_(bitrate_bps) {
  if (bitrate_bps == 0) throw std::invalid_argument("CanBus: bitrate 0");
  // Standard frame: 47 overhead bits + 8*dlc data bits; worst-case bit
  // stuffing adds ~1 bit per 5 (applied to the stuffable 34+8*dlc bits);
  // plus 3 bits interframe space.  Precomputed per DLC — the hot path
  // never touches floating point.
  for (int dlc = 0; dlc <= 8; ++dlc) {
    const double stuffable = 34.0 + 8.0 * dlc;
    const double bits = 47.0 + 8.0 * dlc + stuffable / 5.0 + 3.0;
    frame_times_[static_cast<std::size_t>(dlc)] =
        static_cast<SimTime>(bits * 1e9 / bitrate_ + 0.5);
  }
  world.attach(*this);
}

void CanBus::reset() {
  for (auto& n : nodes_) n.tx_queue.clear();
  busy_ = false;
  corrupt_armed_ = false;
  in_flight_dropped_ = false;
  stats_ = Stats{};
}

CanBus::NodeId CanBus::attach_node(std::string node_name, RxCallback on_rx) {
  nodes_.push_back({std::move(node_name), std::move(on_rx), {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

SimTime CanBus::frame_time(int dlc) const {
  if (dlc >= 0 && dlc <= 8) return frame_times_[static_cast<std::size_t>(dlc)];
  const double stuffable = 34.0 + 8.0 * dlc;
  const double bits = 47.0 + 8.0 * dlc + stuffable / 5.0 + 3.0;
  return static_cast<SimTime>(bits * 1e9 / bitrate_ + 0.5);
}

bool CanBus::transmit(NodeId node, CanFrame frame) {
  if (frame.dlc() > 8) return false;
  if (node < 0 || node >= static_cast<NodeId>(nodes_.size())) {
    throw std::out_of_range("CanBus: unknown node");
  }
  QueuedFrame queued;
  queued.crc = frame_crc(frame);
  queued.frame = frame;
  nodes_[static_cast<std::size_t>(node)].tx_queue.push_back(queued);
  if (!busy_) try_start();
  return true;
}

std::size_t CanBus::transmit_burst(NodeId node,
                                   std::span<const CanFrame> frames) {
  std::size_t accepted = 0;
  for (const CanFrame& f : frames) {
    if (!transmit(node, f)) break;
    ++accepted;
  }
  return accepted;
}

void CanBus::corrupt_next_frame(std::uint8_t xor_mask) {
  pending_corruption_ = xor_mask;
  corrupt_armed_ = true;
}

void CanBus::set_fault_hook(FrameFaultHook hook) {
  fault_hook_ = std::move(hook);
}

std::size_t CanBus::pending() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.tx_queue.size();
  return n;
}

void CanBus::try_start() {
  if (busy_) return;
  // Arbitration: among the heads of all non-empty queues, the lowest
  // identifier wins (ties: lowest node index, deterministic).
  int winner = -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tx_queue.empty()) continue;
    if (winner < 0 ||
        nodes_[i].tx_queue.front().frame.id <
            nodes_[static_cast<std::size_t>(winner)]
                .tx_queue.front()
                .frame.id) {
      winner = static_cast<int>(i);
    }
  }
  if (winner < 0) return;
  busy_ = true;
  Node& tx = nodes_[static_cast<std::size_t>(winner)];
  in_flight_ = tx.tx_queue.front();
  tx.tx_queue.pop_front();
  in_flight_winner_ = winner;
  if (corrupt_armed_) {
    if (!in_flight_.frame.data.empty()) {
      in_flight_.frame.data[0] ^= pending_corruption_;
    } else {
      in_flight_.crc ^= pending_corruption_;
    }
    corrupt_armed_ = false;
  }
  in_flight_dropped_ = false;
  if (fault_hook_) {
    const FrameFault fault = fault_hook_(in_flight_.frame);
    switch (fault.action) {
      case FrameFaultAction::kCorrupt:
        if (!in_flight_.frame.data.empty()) {
          in_flight_.frame.data[0] ^= fault.xor_mask;
        } else {
          in_flight_.crc ^= fault.xor_mask;
        }
        break;
      case FrameFaultAction::kDrop:
        // The frame still occupies its wire time; delivery discards it.
        in_flight_dropped_ = true;
        break;
      case FrameFaultAction::kDuplicate:
        // Retransmit echo: a copy goes back to the head of the sender's
        // queue and re-arbitrates right after this frame.
        tx.tx_queue.push_front(in_flight_);
        ++stats_.frames_duplicated;
        break;
      case FrameFaultAction::kNone:
        break;
    }
  }
  const SimTime wire = frame_time(in_flight_.frame.dlc());
  stats_.busy_time += wire;
  in_flight_started_ = world_.now();
  world_.queue().schedule_in(wire, [this] { deliver(); });
}

void CanBus::deliver() {
  if (in_flight_dropped_) {
    ++stats_.frames_dropped;
    in_flight_dropped_ = false;
  } else if (frame_crc(in_flight_.frame) != in_flight_.crc) {
    // Integrity check failed: every receiver discards the frame.
    ++stats_.crc_errors;
  } else {
    ++stats_.frames_delivered;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (static_cast<int>(i) == in_flight_winner_) continue;
      if (nodes_[i].on_rx) nodes_[i].on_rx(in_flight_.frame, world_.now());
    }
  }
  if (auto* tr = trace::recorder()) {
    // One slice per frame on the bus track: arbitration winner's wire
    // occupation, tagged with the arbitrating identifier.
    tr->span_complete(
        "sim", nodes_[static_cast<std::size_t>(in_flight_winner_)].name,
        name_, in_flight_started_, world_.now(),
        static_cast<double>(in_flight_.frame.id));
    tr->counter("sim", "pending_frames", name_, world_.now(),
                static_cast<double>(pending()));
  }
  busy_ = false;
  try_start();
}

}  // namespace iecd::sim
