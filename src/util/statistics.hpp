/// \file statistics.hpp
/// Streaming and batch statistics used by the profiler, the PIL report and
/// every benchmark: running mean/stddev (Welford), min/max, percentiles and
/// fixed-width histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace iecd::util {

/// Numerically stable streaming statistics (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Raw second central moment (sum of squared deviations); together with
  /// count/mean/sum/min/max it reconstructs the accumulator exactly —
  /// the evidence artifact round-trips stats through these.
  double m2() const { return m2_; }

  /// Rebuilds an accumulator from its raw state (see m2()).  A zero
  /// count yields a fresh accumulator regardless of the other fields.
  static RunningStats from_raw(std::size_t count, double mean, double m2,
                               double sum, double min, double max);

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch sample container with percentile queries.  Keeps all samples;
/// intended for per-run profiling where sample counts are modest (<1e7).
class SampleSeries {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Linear-interpolated percentile; p is clamped to [0, 100], so p=0 is
  /// the minimum and p=100 the maximum.  An empty series yields 0.0 (the
  /// same convention as mean()/min()/max()); a NaN p yields NaN.
  double percentile(double p) const;

  /// Max |x - mean|; a simple jitter figure for periodic activations.
  double peak_deviation() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;

  const std::vector<double>& sorted() const;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// Renders a compact ASCII bar chart (for bench output).
  std::string to_ascii(std::size_t width = 40) const;

  /// Rebuilds a histogram from its raw bin counts (evidence round-trip).
  static Histogram from_raw(double lo, double hi,
                            const std::vector<std::uint64_t>& counts);

  /// Adds \p other bin-wise.  Returns false (and leaves this histogram
  /// untouched) if the ranges or bin counts differ.
  bool merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace iecd::util
