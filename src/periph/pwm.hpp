/// \file pwm.hpp
/// Pulse-width-modulation module.  The counter runs at core clock /
/// prescaler and wraps at `modulo`; the duty register sets the compare
/// point.  Duty writes are double-buffered: they take effect at the next
/// period boundary, exactly as on the target hardware (this is visible in
/// the servo case study as up to one PWM period of extra actuation delay).
/// Consumers read either the cycle-averaged output (a ZohSignal the plant
/// integrates) or subscribe to edge callbacks for waveform-level tests.
#pragma once

#include <cstdint>
#include <functional>

#include "periph/peripheral.hpp"
#include "sim/zoh_signal.hpp"

namespace iecd::periph {

struct PwmConfig {
  std::uint32_t prescaler = 1;
  std::uint32_t modulo = 1000;     ///< counts per period
  mcu::IrqVector reload_vector = -1;  ///< <0: no end-of-period interrupt
  bool edge_events = false;        ///< invoke edge callbacks (slower)
};

class PwmPeripheral : public Peripheral {
 public:
  PwmPeripheral(mcu::Mcu& mcu, PwmConfig config, std::string name = "pwm");

  const PwmConfig& config() const { return config_; }

  /// Period of one PWM cycle in simulated time.
  sim::SimTime period() const;

  /// Starts the counter (idempotent).
  void start();
  void stop();
  bool running() const { return running_; }

  /// Sets the compare value in counts [0, modulo]; latched at the next
  /// period boundary (double-buffered duty register).
  void set_duty_counts(std::uint32_t counts);

  /// Sets duty as a ratio in [0, 1].
  void set_duty_ratio(double ratio);

  /// Currently *active* duty ratio (after latching).
  double duty_ratio() const;
  std::uint32_t duty_counts() const { return active_duty_; }

  /// Cycle-averaged output level in [0, 1]: what an H-bridge + motor
  /// effectively sees.  Updated at period boundaries when the latched duty
  /// changes.
  const sim::ZohSignal& average_output() const { return average_; }

  /// Edge callback (level, time); only fired when config.edge_events.
  void set_edge_callback(std::function<void(bool, sim::SimTime)> cb);

  std::uint64_t periods_elapsed() const;

  void reset() override;

 private:
  void on_period_start();
  void latch_pending();

  /// Without an end-of-period interrupt or edge events the only
  /// period-boundary effect is latching the double-buffered duty, so the
  /// counter needs no per-period event: each duty write schedules one
  /// latch at its next boundary and periods_elapsed() is computed from
  /// the start instant.  Observable behaviour (latch instants, the
  /// average-output change log, period counts) is identical.
  bool analytic() const {
    return config_.reload_vector < 0 && !config_.edge_events;
  }

  PwmConfig config_;
  bool running_ = false;
  std::uint32_t active_duty_ = 0;
  std::uint32_t pending_duty_ = 0;
  sim::ZohSignal average_{0.0};
  std::function<void(bool, sim::SimTime)> edge_cb_;
  std::uint64_t periods_ = 0;  ///< analytic mode: count frozen at stop()
  sim::SimTime start_time_ = 0;
  sim::EventId tick_event_ = 0;
  bool tick_scheduled_ = false;
  sim::EventId latch_event_ = 0;
  bool latch_scheduled_ = false;
};

}  // namespace iecd::periph
