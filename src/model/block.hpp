/// \file block.hpp
/// Block base class of the data-flow modelling environment.  A block has
/// typed output ports, input connections, a sample time, optional internal
/// continuous states, and three execution hooks mirroring Simulink's
/// semantics: output() (compute outputs), update() (advance discrete
/// state), derivatives() (continuous state slopes for the solver).  Blocks
/// also carry the code-generation hooks: per-step operation counts for the
/// target cost model, state/output storage sizes, and a C emitter (the
/// per-block "TLC script").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mcu/cost_model.hpp"
#include "model/value.hpp"

namespace iecd::model {

class Block;

/// Context handed to every execution hook.
struct SimContext {
  double t = 0.0;      ///< current simulated time [s]
  double dt = 0.0;     ///< base (major) step of the engine [s]
  bool minor = false;  ///< true inside solver minor (derivative) evaluations
};

struct SampleTime {
  enum class Kind { kContinuous, kDiscrete, kInherited };
  Kind kind = Kind::kInherited;
  double period = 0.0;  ///< [s], kDiscrete only
  double offset = 0.0;  ///< [s], kDiscrete only

  static SampleTime continuous() {
    return {Kind::kContinuous, 0.0, 0.0};
  }
  static SampleTime discrete(double period, double offset = 0.0) {
    return {Kind::kDiscrete, period, offset};
  }
  static SampleTime inherited() { return {Kind::kInherited, 0.0, 0.0}; }
};

/// Name resolution context for the per-block C emitters: maps ports to the
/// C variable names the generator assigned.
struct EmitContext {
  std::vector<std::string> inputs;   ///< C expression per input port
  std::vector<std::string> outputs;  ///< C lvalue per output port
  std::string state_prefix;          ///< prefix for state variables
  bool fixed_point = false;          ///< emit integer arithmetic
};

class Block {
 public:
  Block(std::string name, int inputs, int outputs);
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const std::string& name() const { return name_; }
  void rename(std::string name) { name_ = std::move(name); }

  /// Block type for reports/emitters, e.g. "Gain".
  virtual const char* type_name() const = 0;

  int input_count() const { return static_cast<int>(inputs_.size()); }
  int output_count() const { return static_cast<int>(outputs_.size()); }

  // --- Types ---
  void set_output_type(int port, DataType type,
                       std::optional<fixpt::FixedFormat> fmt = std::nullopt);
  DataType output_type(int port) const;
  const std::optional<fixpt::FixedFormat>& output_format(int port) const;

  // --- Sample time ---
  SampleTime sample_time() const { return sample_time_; }
  void set_sample_time(SampleTime st) { sample_time_ = st; }
  /// Engine-resolved effective period (for discrete state updates).
  double resolved_period() const { return resolved_period_; }
  void set_resolved_period(double p) { resolved_period_ = p; }
  /// Engine-resolved continuity (after inheritance propagation).
  bool resolved_continuous() const { return resolved_continuous_; }
  void set_resolved_continuous(bool c) { resolved_continuous_ = c; }

  /// False for blocks whose outputs do not depend on current inputs
  /// (UnitDelay, Integrator, ...) — these break algebraic loops.
  virtual bool has_direct_feedthrough() const { return true; }

  // --- Execution hooks ---
  virtual void initialize(const SimContext& ctx);
  virtual void output(const SimContext& ctx) = 0;
  virtual void update(const SimContext& ctx) { (void)ctx; }

  // --- Continuous states ---
  virtual int continuous_state_count() const { return 0; }
  virtual void read_states(std::span<double> into) const { (void)into; }
  virtual void write_states(std::span<const double> from) { (void)from; }
  virtual void derivatives(const SimContext& ctx, std::span<double> dx) const {
    (void)ctx;
    (void)dx;
  }

  // --- Code generation hooks ---
  /// Elementary operations one step of this block costs on the target.
  virtual mcu::OpCounts step_ops(bool fixed_point) const;
  /// Discrete state bytes this block needs in the generated application.
  virtual std::uint32_t state_bytes() const { return 0; }
  /// Emits the C statement(s) computing this block's outputs.
  virtual std::string emit_c(const EmitContext& ctx) const;
  /// Emits the C statement(s) advancing this block's discrete state; they
  /// run after ALL outputs of the step, exactly like the engine's update
  /// phase (empty for stateless blocks).
  virtual std::string emit_c_update(const EmitContext& ctx) const {
    (void)ctx;
    return {};
  }

  // --- Port access ---
  const Value& out(int port) const;
  /// Latched value at the block feeding input \p port (engine executed it
  /// earlier in sorted order).  Unconnected inputs read 0.0.
  Value in_value(int port) const;
  bool input_connected(int port) const;

  struct Connection {
    const Block* src = nullptr;
    int src_port = 0;
  };
  const Connection& input(int port) const;

 protected:
  /// Writes an output, quantizing to the port's declared type.
  void set_out(int port, double real);
  void set_out_value(int port, const Value& v);
  double in(int port) const { return in_value(port).as_double(); }
  bool in_bool(int port) const { return in_value(port).as_bool(); }

 private:
  friend class Model;

  std::string name_;
  std::vector<Connection> inputs_;
  std::vector<Value> outputs_;
  std::vector<DataType> out_types_;
  std::vector<std::optional<fixpt::FixedFormat>> out_fmts_;
  SampleTime sample_time_ = SampleTime::inherited();
  double resolved_period_ = 0.0;
  bool resolved_continuous_ = false;
};

}  // namespace iecd::model
