#include "beans/property.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::beans {

const char* to_string(PropertyType type) {
  switch (type) {
    case PropertyType::kBool:
      return "bool";
    case PropertyType::kInt:
      return "int";
    case PropertyType::kReal:
      return "real";
    case PropertyType::kEnum:
      return "enum";
    case PropertyType::kString:
      return "string";
  }
  return "?";
}

std::string value_to_string(const PropertyValue& value) {
  if (const auto* b = std::get_if<bool>(&value)) return *b ? "true" : "false";
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* r = std::get_if<double>(&value)) {
    return util::format("%.9g", *r);
  }
  return std::get<std::string>(value);
}

PropertySpec PropertySpec::boolean(std::string name, bool dflt,
                                   std::string desc) {
  PropertySpec s;
  s.name = std::move(name);
  s.type = PropertyType::kBool;
  s.default_value = dflt;
  s.description = std::move(desc);
  return s;
}

PropertySpec PropertySpec::integer(std::string name, std::int64_t dflt,
                                   std::int64_t min, std::int64_t max,
                                   std::string desc) {
  PropertySpec s;
  s.name = std::move(name);
  s.type = PropertyType::kInt;
  s.default_value = dflt;
  s.int_min = min;
  s.int_max = max;
  s.description = std::move(desc);
  return s;
}

PropertySpec PropertySpec::real(std::string name, double dflt, double min,
                                double max, std::string desc) {
  PropertySpec s;
  s.name = std::move(name);
  s.type = PropertyType::kReal;
  s.default_value = dflt;
  s.real_min = min;
  s.real_max = max;
  s.description = std::move(desc);
  return s;
}

PropertySpec PropertySpec::enumeration(std::string name, std::string dflt,
                                       std::vector<std::string> choices,
                                       std::string desc) {
  PropertySpec s;
  s.name = std::move(name);
  s.type = PropertyType::kEnum;
  s.default_value = std::move(dflt);
  s.choices = std::move(choices);
  s.description = std::move(desc);
  return s;
}

PropertySpec PropertySpec::text(std::string name, std::string dflt,
                                std::string desc) {
  PropertySpec s;
  s.name = std::move(name);
  s.type = PropertyType::kString;
  s.default_value = std::move(dflt);
  s.description = std::move(desc);
  return s;
}

void PropertySet::declare(PropertySpec spec) {
  if (has(spec.name)) {
    throw std::logic_error("PropertySet: duplicate property " + spec.name);
  }
  values_.push_back(spec.default_value);
  specs_.push_back(std::move(spec));
}

bool PropertySet::has(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return true;
  }
  return false;
}

std::size_t PropertySet::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  throw std::invalid_argument("PropertySet: unknown property " + name);
}

const PropertySpec& PropertySet::spec(const std::string& name) const {
  return specs_[index_of(name)];
}

namespace {

bool type_matches(const PropertySpec& spec, const PropertyValue& value) {
  switch (spec.type) {
    case PropertyType::kBool:
      return std::holds_alternative<bool>(value);
    case PropertyType::kInt:
      return std::holds_alternative<std::int64_t>(value);
    case PropertyType::kReal:
      // Accept ints for real-typed properties (promoted).
      return std::holds_alternative<double>(value) ||
             std::holds_alternative<std::int64_t>(value);
    case PropertyType::kEnum:
    case PropertyType::kString:
      return std::holds_alternative<std::string>(value);
  }
  return false;
}

}  // namespace

bool PropertySet::set(const std::string& owner, const std::string& name,
                      const PropertyValue& value,
                      util::DiagnosticList& diagnostics) {
  const std::string component = owner + "." + name;
  if (!has(name)) {
    diagnostics.error(component, "unknown property");
    return false;
  }
  const std::size_t idx = index_of(name);
  const PropertySpec& s = specs_[idx];
  if (s.read_only) {
    diagnostics.error(component, "property is derived (read-only)");
    return false;
  }
  if (!type_matches(s, value)) {
    diagnostics.error(component,
                      util::format("type mismatch: expected %s",
                                   to_string(s.type)));
    return false;
  }
  PropertyValue stored = value;
  if (s.type == PropertyType::kReal &&
      std::holds_alternative<std::int64_t>(value)) {
    stored = static_cast<double>(std::get<std::int64_t>(value));
  }
  if (s.type == PropertyType::kInt) {
    const std::int64_t v = std::get<std::int64_t>(stored);
    if ((s.int_min && v < *s.int_min) || (s.int_max && v > *s.int_max)) {
      diagnostics.error(
          component,
          util::format("value %lld out of range [%lld, %lld]",
                       static_cast<long long>(v),
                       static_cast<long long>(s.int_min.value_or(INT64_MIN)),
                       static_cast<long long>(s.int_max.value_or(INT64_MAX))));
      return false;
    }
  }
  if (s.type == PropertyType::kReal) {
    const double v = std::get<double>(stored);
    if ((s.real_min && v < *s.real_min) || (s.real_max && v > *s.real_max)) {
      diagnostics.error(component,
                        util::format("value %g out of range [%g, %g]", v,
                                     s.real_min.value_or(-1e308),
                                     s.real_max.value_or(1e308)));
      return false;
    }
  }
  if (s.type == PropertyType::kEnum) {
    const std::string& v = std::get<std::string>(stored);
    bool ok = false;
    for (const auto& c : s.choices) {
      if (c == v) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      diagnostics.error(component, "invalid choice '" + v + "' (expected " +
                                       util::join(s.choices, " | ") + ")");
      return false;
    }
  }
  values_[idx] = std::move(stored);
  return true;
}

void PropertySet::set_derived(const std::string& name,
                              const PropertyValue& value) {
  values_[index_of(name)] = value;
}

const PropertyValue& PropertySet::get(const std::string& name) const {
  return values_[index_of(name)];
}

bool PropertySet::get_bool(const std::string& name) const {
  return std::get<bool>(get(name));
}

std::int64_t PropertySet::get_int(const std::string& name) const {
  return std::get<std::int64_t>(get(name));
}

double PropertySet::get_real(const std::string& name) const {
  const PropertyValue& v = get(name);
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::get<double>(v);
}

const std::string& PropertySet::get_string(const std::string& name) const {
  return std::get<std::string>(get(name));
}

std::string PropertySet::render() const {
  std::string out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out += util::format("  %-24s = %-16s %s%s\n", specs_[i].name.c_str(),
                        value_to_string(values_[i]).c_str(),
                        specs_[i].read_only ? "[derived] " : "",
                        specs_[i].description.c_str());
  }
  return out;
}

}  // namespace iecd::beans
