file(REMOVE_RECURSE
  "CMakeFiles/iecd_sim.dir/can_bus.cpp.o"
  "CMakeFiles/iecd_sim.dir/can_bus.cpp.o.d"
  "CMakeFiles/iecd_sim.dir/event_queue.cpp.o"
  "CMakeFiles/iecd_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/iecd_sim.dir/serial_link.cpp.o"
  "CMakeFiles/iecd_sim.dir/serial_link.cpp.o.d"
  "CMakeFiles/iecd_sim.dir/world.cpp.o"
  "CMakeFiles/iecd_sim.dir/world.cpp.o.d"
  "libiecd_sim.a"
  "libiecd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
