/// \file serial_link.hpp
/// Byte-timed asynchronous serial line (the RS232 connection of Fig. 6.2).
/// Each byte occupies start + data + stop bits at the configured baud rate;
/// transmission is serialized per direction (a UART cannot start the next
/// byte before the previous one left the shift register).  Delivery invokes
/// the receiving endpoint's callback at the bit-accurate completion time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"

namespace iecd::sim {

struct SerialConfig {
  std::uint32_t baud_rate = 115200;  ///< bit clock (SPI: the SCK frequency)
  int data_bits = 8;
  int stop_bits = 1;
  bool parity = false;
  /// Synchronous (SPI-style) transfer: a clock line replaces start/stop
  /// framing, so a byte costs exactly data_bits clocks.  The paper's
  /// future-work item — "a support for new communications (e.g. SPI)".
  bool synchronous = false;

  /// Bits on the wire per byte (async: start + data + parity + stop;
  /// synchronous: data only).
  int bits_per_byte() const {
    if (synchronous) return data_bits;
    return 1 + data_bits + (parity ? 1 : 0) + stop_bits;
  }

  /// Wire time of a single byte.
  SimTime byte_time() const;

  static SerialConfig rs232(std::uint32_t baud) {
    SerialConfig cfg;
    cfg.baud_rate = baud;
    return cfg;
  }
  static SerialConfig spi(std::uint32_t clock_hz) {
    SerialConfig cfg;
    cfg.baud_rate = clock_hz;
    cfg.synchronous = true;
    return cfg;
  }
};

/// One direction of a serial line.  Two of these make a full-duplex link.
class SerialChannel {
 public:
  SerialChannel(EventQueue& queue, SerialConfig config, std::string name);

  /// Queues a byte for transmission; it arrives bits_per_byte()/baud later,
  /// after any bytes already in flight.
  void transmit(std::uint8_t byte);

  /// Queues a whole buffer.
  void transmit(const std::uint8_t* data, std::size_t len);

  /// Receiver callback (byte, arrival_time).  Must be set before traffic.
  void set_receiver(std::function<void(std::uint8_t, SimTime)> on_byte);

  /// Introduces a per-byte error probability is not modelled here; instead
  /// tests inject corruption deterministically via corrupt_next().
  void corrupt_next_byte(std::uint8_t xor_mask);

  const SerialConfig& config() const { return config_; }
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  /// Total wire time spent transferring (busy time), for overhead metrics.
  SimTime busy_time() const { return busy_time_; }

  void reset();

 private:
  void start_next();

  EventQueue& queue_;
  SerialConfig config_;
  std::string name_;
  std::function<void(std::uint8_t, SimTime)> on_byte_;
  std::deque<std::uint8_t> tx_fifo_;
  bool shifting_ = false;
  std::uint8_t pending_corruption_ = 0;
  bool corrupt_armed_ = false;
  std::uint64_t bytes_transferred_ = 0;
  SimTime busy_time_ = 0;
};

/// Full-duplex point-to-point link: endpoint A <-> endpoint B.
class SerialLink : public Component {
 public:
  SerialLink(World& world, SerialConfig config, std::string name = "rs232");

  SerialChannel& a_to_b() { return a_to_b_; }
  SerialChannel& b_to_a() { return b_to_a_; }

  const std::string& name() const override { return name_; }
  void reset() override;

  const SerialConfig& config() const { return config_; }

 private:
  std::string name_;
  SerialConfig config_;
  SerialChannel a_to_b_;
  SerialChannel b_to_a_;
};

}  // namespace iecd::sim
