#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mcu/derivative.hpp"
#include "mcu/mcu.hpp"
#include "periph/adc.hpp"
#include "periph/gpio.hpp"
#include "periph/pwm.hpp"
#include "periph/quadrature_decoder.hpp"
#include "periph/timer.hpp"
#include "periph/uart.hpp"
#include "sim/world.hpp"
#include "sim/zoh_signal.hpp"

namespace iecd::periph {
namespace {

class PeriphFixture : public ::testing::Test {
 protected:
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};

  void install_counter_isr(mcu::IrqVector vec, int& counter,
                           std::uint64_t cycles = 60) {
    mcu::IsrHandler h;
    h.name = "count";
    h.body = [&counter, cycles]() -> std::uint64_t {
      ++counter;
      return cycles;
    };
    mcu.intc().register_vector(vec, 0, std::move(h));
  }
};

// ---------------------------------------------------------------- ZohSignal

TEST(ZohSignal, ValueAtAndIntegrate) {
  sim::ZohSignal s(1.0);
  s.set(sim::seconds_i(1), 3.0);
  s.set(sim::seconds_i(2), -1.0);
  EXPECT_DOUBLE_EQ(s.value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(sim::seconds_i(1)), 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(sim::milliseconds(1500)), 3.0);
  EXPECT_DOUBLE_EQ(s.value(), -1.0);
  // Integral over [0.5s, 2.5s] = 0.5*1 + 1*3 + 0.5*(-1) = 3.0.
  EXPECT_NEAR(s.integrate(sim::milliseconds(500), sim::milliseconds(2500)),
              3.0, 1e-12);
}

TEST(ZohSignal, PruneKeepsCurrentValue) {
  sim::ZohSignal s(0.0);
  for (int i = 1; i <= 100; ++i) s.set(sim::milliseconds(i), i);
  s.prune_before(sim::milliseconds(90));
  EXPECT_LE(s.change_count(), 12u);
  EXPECT_DOUBLE_EQ(s.value_at(sim::milliseconds(90)), 90.0);
  EXPECT_DOUBLE_EQ(s.value(), 100.0);
}

TEST(ZohSignal, RejectsNonMonotonicWrites) {
  sim::ZohSignal s(0.0);
  s.set(100, 1.0);
  EXPECT_THROW(s.set(50, 2.0), std::invalid_argument);
}

// ---------------------------------------------------------------------- ADC

TEST_F(PeriphFixture, AdcQuantizesTo12Bits) {
  AdcConfig cfg;
  cfg.resolution_bits = 12;
  cfg.vref_high = 3.3;
  AdcPeripheral adc(mcu, cfg);
  adc.set_analog_source(0, [](sim::SimTime) { return 1.65; });
  EXPECT_TRUE(adc.start_conversion(0));
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(adc.conversions_completed(), 1u);
  // Mid-scale: code ~ 2048 out of 4095.
  EXPECT_NEAR(adc.result(0), 2048, 1);
  // Quantization: reconstructed voltage within 1 LSB.
  EXPECT_NEAR(adc.code_to_volts(adc.result(0)), 1.65, 3.3 / 4095.0);
}

TEST_F(PeriphFixture, AdcClampsOutOfRangeInputs) {
  AdcPeripheral adc(mcu, AdcConfig{});
  adc.set_analog_source(0, [](sim::SimTime) { return -5.0; });
  adc.start_conversion(0);
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(adc.result(0), 0u);
  adc.set_analog_source(0, [](sim::SimTime) { return 99.0; });
  adc.start_conversion(0);
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(adc.result(0), adc.max_code());
}

TEST_F(PeriphFixture, AdcConversionTakesConfiguredTimeAndRaisesEoc) {
  AdcConfig cfg;
  cfg.conversion_time = sim::microseconds(10);
  cfg.eoc_vector = kIrqAdcBase;
  AdcPeripheral adc(mcu, cfg);
  int eoc = 0;
  install_counter_isr(kIrqAdcBase, eoc);
  adc.set_analog_source(0, [](sim::SimTime) { return 1.0; });
  adc.start_conversion(0);
  EXPECT_TRUE(adc.busy());
  world.run_for(sim::microseconds(9));
  EXPECT_EQ(eoc, 0);
  EXPECT_TRUE(adc.busy());
  world.run_for(sim::microseconds(2));
  EXPECT_EQ(eoc, 1);
  EXPECT_FALSE(adc.busy());
}

TEST_F(PeriphFixture, AdcSamplesAtConversionStart) {
  // Input changes mid-conversion; result must reflect the start value.
  AdcConfig cfg;
  cfg.conversion_time = sim::microseconds(10);
  AdcPeripheral adc(mcu, cfg);
  adc.set_analog_source(0, [](sim::SimTime t) {
    return t < sim::microseconds(5) ? 1.0 : 3.0;
  });
  adc.start_conversion(0);
  world.run_for(sim::milliseconds(1));
  EXPECT_NEAR(adc.code_to_volts(adc.result(0)), 1.0, 0.01);
}

TEST_F(PeriphFixture, AdcRejectsStartWhileBusy) {
  AdcPeripheral adc(mcu, AdcConfig{});
  EXPECT_TRUE(adc.start_conversion(0));
  EXPECT_FALSE(adc.start_conversion(1));
  world.run_for(sim::milliseconds(1));
  EXPECT_TRUE(adc.start_conversion(1));
}

TEST_F(PeriphFixture, AdcContinuousModeKeepsConverting) {
  AdcConfig cfg;
  cfg.continuous = true;
  cfg.conversion_time = sim::microseconds(100);
  AdcPeripheral adc(mcu, cfg);
  adc.set_analog_source(0, [](sim::SimTime) { return 1.0; });
  adc.start_conversion(0);
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(adc.conversions_completed(), 10u);
}

TEST_F(PeriphFixture, AdcValidatesConfig) {
  AdcConfig bad;
  bad.resolution_bits = 0;
  EXPECT_THROW(AdcPeripheral(mcu, bad, "a1"), std::invalid_argument);
  AdcConfig bad2;
  bad2.vref_high = bad2.vref_low = 1.0;
  EXPECT_THROW(AdcPeripheral(mcu, bad2, "a2"), std::invalid_argument);
}

// ---------------------------------------------------------------------- PWM

TEST_F(PeriphFixture, PwmPeriodFromPrescalerAndModulo) {
  PwmConfig cfg;
  cfg.prescaler = 4;
  cfg.modulo = 1500;  // 4*1500/60MHz = 100 us
  PwmPeripheral pwm(mcu, cfg);
  EXPECT_EQ(pwm.period(), sim::microseconds(100));
}

TEST_F(PeriphFixture, PwmDutyIsDoubleBuffered) {
  PwmConfig cfg;
  cfg.prescaler = 1;
  cfg.modulo = 6000;  // 100 us
  PwmPeripheral pwm(mcu, cfg);
  pwm.start();
  world.run_for(sim::microseconds(10));
  pwm.set_duty_ratio(0.5);
  // Still inside the first period: active duty unchanged.
  EXPECT_DOUBLE_EQ(pwm.duty_ratio(), 0.0);
  world.run_for(sim::microseconds(100));
  EXPECT_DOUBLE_EQ(pwm.duty_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(pwm.average_output().value(), 0.5);
}

TEST_F(PeriphFixture, PwmAverageOutputIntegratesCorrectly) {
  PwmConfig cfg;
  cfg.prescaler = 1;
  cfg.modulo = 60000;  // 1 ms period
  PwmPeripheral pwm(mcu, cfg);
  pwm.set_duty_ratio(0.25);
  pwm.start();  // duty latched immediately at first period start
  world.run_for(sim::milliseconds(10));
  // Average output has been 0.25 for 10 ms -> integral 2.5 ms*unit.
  EXPECT_NEAR(pwm.average_output().integrate(0, sim::milliseconds(10)),
              0.25 * 0.010, 1e-9);
}

TEST_F(PeriphFixture, PwmEdgeEventsMatchDuty) {
  PwmConfig cfg;
  cfg.prescaler = 1;
  cfg.modulo = 6000;  // 100 us
  cfg.edge_events = true;
  PwmPeripheral pwm(mcu, cfg);
  std::vector<std::pair<bool, sim::SimTime>> edges;
  pwm.set_edge_callback([&](bool level, sim::SimTime t) {
    edges.emplace_back(level, t);
  });
  pwm.set_duty_ratio(0.3);
  pwm.start();
  world.run_for(sim::microseconds(250));
  // Expect rise at 0, fall at 30us, rise at 100us, fall at 130us, ...
  ASSERT_GE(edges.size(), 4u);
  EXPECT_TRUE(edges[0].first);
  EXPECT_EQ(edges[0].second, 0);
  EXPECT_FALSE(edges[1].first);
  EXPECT_EQ(edges[1].second, sim::microseconds(30));
  EXPECT_TRUE(edges[2].first);
  EXPECT_EQ(edges[2].second, sim::microseconds(100));
}

TEST_F(PeriphFixture, PwmReloadInterruptFiresPerPeriod) {
  PwmConfig cfg;
  cfg.prescaler = 1;
  cfg.modulo = 60000;  // 1 ms
  cfg.reload_vector = kIrqPwmBase;
  PwmPeripheral pwm(mcu, cfg);
  int reloads = 0;
  install_counter_isr(kIrqPwmBase, reloads);
  pwm.start();
  world.run_for(sim::milliseconds(5) + sim::microseconds(10));
  EXPECT_EQ(reloads, 6);  // t=0,1,2,3,4,5 ms
}

TEST_F(PeriphFixture, PwmStopDropsOutputToZero) {
  PwmPeripheral pwm(mcu, PwmConfig{});
  pwm.set_duty_ratio(0.8);
  pwm.start();
  world.run_for(sim::milliseconds(1));
  pwm.stop();
  EXPECT_DOUBLE_EQ(pwm.average_output().value(), 0.0);
  EXPECT_FALSE(pwm.running());
}

// -------------------------------------------------------------------- Timer

TEST_F(PeriphFixture, TimerTicksAtExactPeriodWithoutDrift) {
  TimerConfig cfg;
  cfg.prescaler = 1;
  cfg.modulo = 60000;  // 1 ms
  cfg.overflow_vector = kIrqTimerBase;
  TimerPeripheral timer(mcu, cfg);
  std::vector<sim::SimTime> at;
  mcu::IsrHandler h;
  h.name = "tick";
  h.body = [&]() -> std::uint64_t {
    at.push_back(world.now());
    return 60;
  };
  mcu.intc().register_vector(kIrqTimerBase, 0, std::move(h));
  timer.start();
  world.run_for(sim::milliseconds(100));
  ASSERT_EQ(at.size(), 100u);
  for (std::size_t i = 0; i < at.size(); ++i) {
    EXPECT_EQ(at[i], sim::milliseconds(static_cast<std::int64_t>(i + 1)));
  }
  EXPECT_EQ(timer.ticks(), 100u);
}

TEST_F(PeriphFixture, TimerJitterHookShiftsActivations) {
  TimerConfig cfg;
  cfg.prescaler = 1;
  cfg.modulo = 60000;
  cfg.overflow_vector = kIrqTimerBase;
  TimerPeripheral timer(mcu, cfg);
  timer.set_jitter_hook([](std::uint64_t k) {
    return (k % 2 == 0) ? sim::microseconds(50) : -sim::microseconds(50);
  });
  std::vector<sim::SimTime> at;
  mcu::IsrHandler h;
  h.name = "tick";
  h.body = [&]() -> std::uint64_t {
    at.push_back(world.now());
    return 60;
  };
  mcu.intc().register_vector(kIrqTimerBase, 0, std::move(h));
  timer.start();
  world.run_for(sim::milliseconds(4) + sim::microseconds(100));
  ASSERT_GE(at.size(), 4u);
  EXPECT_EQ(at[0], sim::milliseconds(1) - sim::microseconds(50));
  EXPECT_EQ(at[1], sim::milliseconds(2) + sim::microseconds(50));
  EXPECT_EQ(at[2], sim::milliseconds(3) - sim::microseconds(50));
}

TEST_F(PeriphFixture, TimerStopHaltsTicks) {
  TimerConfig cfg;
  cfg.overflow_vector = kIrqTimerBase;
  TimerPeripheral timer(mcu, cfg);
  int ticks = 0;
  install_counter_isr(kIrqTimerBase, ticks);
  timer.start();
  world.run_for(sim::milliseconds(5));
  const int seen = ticks;
  EXPECT_GT(seen, 0);
  timer.stop();
  world.run_for(sim::milliseconds(5));
  EXPECT_EQ(ticks, seen);
}

// ----------------------------------------------------------- QuadDecoder

TEST_F(PeriphFixture, QdecCountsEdgesWithDirection) {
  QuadDecPeripheral qdec(mcu, QuadDecConfig{});
  for (int i = 0; i < 10; ++i) qdec.edge(+1);
  for (int i = 0; i < 3; ++i) qdec.edge(-1);
  EXPECT_EQ(qdec.position(), 7);
  EXPECT_EQ(qdec.extended_position(), 7);
}

TEST_F(PeriphFixture, QdecPositionRegisterWrapsAt16Bits) {
  QuadDecPeripheral qdec(mcu, QuadDecConfig{});
  qdec.add_counts(32767);
  EXPECT_EQ(qdec.position(), 32767);
  qdec.add_counts(1);
  EXPECT_EQ(qdec.position(), -32768);  // hardware register wraps
  EXPECT_EQ(qdec.extended_position(), 32768);  // sw extension does not
}

TEST_F(PeriphFixture, QdecIndexLatchesAndOptionallyClears) {
  QuadDecConfig cfg;
  cfg.clear_on_index = true;
  cfg.index_vector = kIrqQdecBase;
  QuadDecPeripheral qdec(mcu, cfg);
  int index_irqs = 0;
  install_counter_isr(kIrqQdecBase, index_irqs);
  qdec.add_counts(400);
  qdec.index_pulse();
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(qdec.index_latch(), 400);
  EXPECT_EQ(qdec.position(), 0);
  EXPECT_EQ(qdec.index_pulses(), 1u);
  EXPECT_EQ(index_irqs, 1);
}

// --------------------------------------------------------------------- GPIO

TEST_F(PeriphFixture, GpioOutputWriteReadAndObserver) {
  GpioPort port(mcu, GpioConfig{});
  port.set_direction(0, PinDirection::kOutput);
  std::vector<std::pair<int, bool>> observed;
  port.set_output_observer([&](int pin, bool level, sim::SimTime) {
    observed.emplace_back(pin, level);
  });
  port.write(0, true);
  port.write(0, true);  // no change, no event
  port.write(0, false);
  EXPECT_EQ(observed.size(), 2u);
  EXPECT_FALSE(port.read(0));
  EXPECT_THROW(port.write(1, true), std::logic_error);  // pin 1 is input
}

TEST_F(PeriphFixture, GpioEdgeInterruptsRespectSense) {
  GpioConfig cfg;
  cfg.irq_base = kIrqGpioBase;
  GpioPort port(mcu, cfg);
  int falls = 0;
  install_counter_isr(kIrqGpioBase + 2, falls);
  port.set_direction(2, PinDirection::kInput);
  port.set_edge_sense(2, EdgeSense::kFalling);
  port.drive_external(2, true);   // rising: ignored
  world.run_for(sim::microseconds(10));
  EXPECT_EQ(falls, 0);
  port.drive_external(2, false);  // falling: fires
  world.run_for(sim::microseconds(10));
  EXPECT_EQ(falls, 1);
}

TEST_F(PeriphFixture, PushButtonBouncesThenSettles) {
  GpioConfig cfg;
  cfg.irq_base = kIrqGpioBase;
  GpioPort port(mcu, cfg);
  PushButton button(port, 3, /*active_low=*/true);
  port.set_edge_sense(3, EdgeSense::kBoth);
  int edges = 0;
  install_counter_isr(kIrqGpioBase + 3, edges);
  button.press_at(sim::milliseconds(1), sim::milliseconds(50));
  world.run_for(sim::milliseconds(100));
  // More edges than the 2 ideal transitions => bounce present.
  EXPECT_GT(edges, 2);
  // And the line settled back to the idle (pulled-up) level.
  EXPECT_TRUE(port.read(3));
}

// --------------------------------------------------------------------- UART

TEST_F(PeriphFixture, UartRoundTripOverSerialLink) {
  sim::SerialConfig scfg;
  scfg.baud_rate = 115200;
  sim::SerialLink link(world, scfg);
  UartConfig ucfg;
  ucfg.rx_vector = kIrqUartRxBase;
  UartPeripheral uart(mcu, ucfg);
  uart.connect(link.b_to_a(), link.a_to_b());  // board TX -> a; host a2b -> RX

  std::vector<std::uint8_t> received;
  mcu::IsrHandler h;
  h.name = "rx";
  h.body = [&]() -> std::uint64_t {
    if (auto b = uart.read()) received.push_back(*b);
    return 120;
  };
  mcu.intc().register_vector(kIrqUartRxBase, 0, std::move(h));

  const std::uint8_t msg[] = {0xAA, 0x55, 0x01};
  link.a_to_b().transmit(msg, sizeof msg);
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(received, (std::vector<std::uint8_t>{0xAA, 0x55, 0x01}));
  EXPECT_EQ(uart.overruns(), 0u);
  EXPECT_EQ(uart.bytes_received(), 3u);
}

TEST_F(PeriphFixture, UartOverrunWhenIsrTooSlow) {
  sim::SerialConfig scfg;
  scfg.baud_rate = 460800;  // fast line
  sim::SerialLink link(world, scfg);
  UartConfig ucfg;
  ucfg.rx_vector = kIrqUartRxBase;
  UartPeripheral uart(mcu, ucfg);
  uart.connect(link.b_to_a(), link.a_to_b());

  mcu::IsrHandler h;
  h.name = "slow_rx";
  h.body = [&]() -> std::uint64_t {
    (void)uart.read();
    return 60000;  // 1 ms: far slower than byte arrival (~21.7 us)
  };
  mcu.intc().register_vector(kIrqUartRxBase, 0, std::move(h));

  std::uint8_t burst[16] = {};
  link.a_to_b().transmit(burst, sizeof burst);
  world.run_for(sim::milliseconds(20));
  EXPECT_GT(uart.overruns(), 0u);
}

TEST_F(PeriphFixture, UartSendTransmitsOntoWire) {
  sim::SerialLink link(world, sim::SerialConfig{});
  UartPeripheral uart(mcu, UartConfig{});
  uart.connect(link.b_to_a(), link.a_to_b());
  std::vector<std::uint8_t> host_rx;
  link.b_to_a().set_receiver(
      [&](std::uint8_t b, sim::SimTime) { host_rx.push_back(b); });
  const std::uint8_t out[] = {1, 2, 3, 4};
  EXPECT_EQ(uart.send(out, sizeof out), 4u);
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(host_rx, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(uart.bytes_sent(), 4u);
}

}  // namespace
}  // namespace iecd::periph
