/// \file nodes.hpp
/// Standard co-simulation node kinds for networked-servo topologies:
///
///   * ServoNode — full MCU fidelity.  One WorldComponent holding an MCU
///     with QDEC + PWM + timer + CAN beans, its local DC motor and
///     incremental encoder, and a self-contained 1 kHz PI speed loop; the
///     set-point arrives over CAN (supervisor command frames) and the node
///     periodically broadcasts a status frame.  The per-node control loop
///     mirrors the Section 7 servo so farm-level results stay comparable
///     to the single-node case study.
///   * SupervisorNode — model fidelity (MultiCoSim's lightweight swap): no
///     MCU, no world; broadcasts the set-point on a fixed period and
///     tracks per-node status freshness (a node whose status stops
///     arriving is flagged stale — the farm's node-kill detector).
///   * TrafficGenNode — model fidelity: fixed-rate background chatter at a
///     high-priority ID, the networked-control "loaded bus" stressor.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "beans/bean_project.hpp"
#include "beans/can_bean.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/quad_dec_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "cosim/bus.hpp"
#include "cosim/component.hpp"
#include "mcu/mcu.hpp"
#include "obs/monitor.hpp"
#include "plant/dc_motor.hpp"
#include "plant/encoder.hpp"

namespace iecd::cosim {

/// Frame-ID plan shared by the farm nodes.  Command frames outrank status
/// frames which outrank nothing; background chatter (TrafficGenNode)
/// normally outranks everything, matching the E10 convention.
struct ServoNodeConfig {
  double period_s = 0.001;  ///< control period
  double kp = 0.004;
  double ki = 0.12;
  int encoder_lines = 100;
  plant::DcMotorParams motor;
  /// Supervisor set-point broadcast (fixed-point 8.8 rad/s payload).
  std::uint32_t command_frame_id = 0x040;
  /// Status frame ID of node k is status_frame_base + k.
  std::uint32_t status_frame_base = 0x300;
  /// Broadcast a status frame every this many control ticks.
  int status_divider = 10;
  /// Timer-period stretch applied to a degraded node (>= 1).  The node
  /// calibrates its speed estimate from the stretched period (a degraded
  /// CPU runs the same firmware, just slower), so degradation costs
  /// transient quality, not steady-state accuracy.
  double period_factor = 1.0;
};

/// Full-fidelity servo node: MCU + beans + local plant in a private world.
class ServoNode : public WorldComponent {
 public:
  ServoNode(std::string name, std::size_t index, const ServoNodeConfig& config,
            SharedCanBus& bus);

  std::size_t index() const { return index_; }
  const ServoNodeConfig& config() const { return config_; }

  /// Effective (possibly degraded) control period.
  double period_s() const { return period_s_; }

  /// Schedules the node's death at \p when: the control timer is disabled
  /// and the PWM output forced to zero — status frames stop, the motor
  /// coasts down, and the supervisor's staleness detector must notice.
  void kill_at(sim::SimTime when);

  /// Fault seam: the node's encoder (site "encoder.<node name>").
  plant::IncrementalEncoder& encoder() { return *encoder_; }

  /// Observability seam: activations recorded as (release, start, end)
  /// per control tick.
  void set_monitor(obs::TimingMonitor* monitor) { monitor_ = monitor; }

  double setpoint() const { return setpoint_; }
  /// True shaft speed at the node's current local time.
  double current_speed() const { return motor_->speed_at(world().now()); }
  std::uint64_t control_ticks() const { return control_ticks_; }
  std::uint64_t status_frames_sent() const { return status_sent_; }
  std::uint64_t command_frames_seen() const { return commands_seen_; }
  bool killed() const { return killed_; }
  bool degraded() const { return config_.period_factor > 1.0; }

 private:
  std::size_t index_;
  ServoNodeConfig config_;
  double period_s_ = 0.0;
  double speed_gain_ = 0.0;

  mcu::Mcu mcu_;
  beans::BeanProject project_;
  beans::QuadDecBean* qd_ = nullptr;
  beans::PwmBean* pwm_ = nullptr;
  beans::TimerIntBean* timer_ = nullptr;
  beans::CanBean* can_ = nullptr;
  std::unique_ptr<plant::DcMotorSim> motor_;
  std::unique_ptr<plant::IncrementalEncoder> encoder_;

  obs::TimingMonitor* monitor_ = nullptr;

  // Controller state (the MCU application's statics).
  double setpoint_ = 0.0;
  double prev_counts_ = 0.0;
  bool have_prev_ = false;
  double filt_[4] = {0, 0, 0, 0};
  int filt_idx_ = 0;
  double integral_ = 0.0;
  double smoothed_ = 0.0;
  double duty_cmd_ = 0.0;

  std::uint64_t control_ticks_ = 0;
  std::uint64_t status_sent_ = 0;
  std::uint64_t commands_seen_ = 0;
  std::uint8_t status_seq_ = 0;
  bool killed_ = false;
  sim::SimTime release_ = 0;
  sim::SimTime body_start_ = 0;
};

/// Model-fidelity supervisor: broadcasts the set-point, watches status
/// freshness.  Lives directly on the negotiated timeline (no world).
class SupervisorNode : public Component {
 public:
  struct Config {
    double command_period_s = 0.01;  ///< set-point rebroadcast period
    double setpoint = 100.0;         ///< [rad/s] after setpoint_time
    double setpoint_time = 0.05;
    std::uint32_t command_frame_id = 0x040;
    std::uint32_t status_frame_base = 0x300;
    /// A node is stale when now - last status exceeds this.
    double stale_timeout_s = 0.05;
  };

  SupervisorNode(std::string name, Config config, SharedCanBus& bus,
                 std::size_t servo_nodes);

  const std::string& name() const override { return name_; }
  sim::SimTime horizon() const override { return next_command_; }
  void advance_to(sim::SimTime t) override;

  std::uint64_t commands_sent() const { return commands_sent_; }
  std::uint64_t statuses_seen() const { return statuses_seen_; }
  /// Last status arrival per servo node index (0 = never seen).
  sim::SimTime last_status(std::size_t node) const {
    return last_status_[node];
  }
  /// Nodes whose status is stale at \p now (the kill detector).
  std::vector<std::size_t> stale_nodes(sim::SimTime now) const;

 private:
  void on_status(const sim::CanFrame& frame, sim::SimTime when);

  std::string name_;
  Config config_;
  SharedCanBus* bus_;
  sim::CanBus::NodeId port_ = -1;
  sim::SimTime now_ = 0;
  sim::SimTime next_command_ = 0;
  sim::SimTime command_interval_ = 0;
  std::uint64_t commands_sent_ = 0;
  std::uint64_t statuses_seen_ = 0;
  std::vector<sim::SimTime> last_status_;
};

/// Model-fidelity background chatter: transmits one fixed frame at a fixed
/// rate.  Replicates the E10 monolithic chatter node exactly (first frame
/// one interval in, then every interval, send counted per attempt).
class TrafficGenNode : public Component {
 public:
  struct Config {
    std::uint32_t frame_id = 0x050;  ///< wins arbitration by default
    double frames_per_s = 0.0;       ///< 0 = silent (horizon kNever)
    std::uint8_t fill = 0xAA;
    std::size_t payload_len = 8;
  };

  TrafficGenNode(std::string name, Config config, SharedCanBus& bus);

  const std::string& name() const override { return name_; }
  sim::SimTime horizon() const override { return next_send_; }
  void advance_to(sim::SimTime t) override;

  std::uint64_t sent() const { return sent_; }

 private:
  std::string name_;
  Config config_;
  SharedCanBus* bus_;
  sim::CanBus::NodeId port_ = -1;
  sim::SimTime interval_ = 0;
  sim::SimTime next_send_ = sim::kNever;
  std::uint64_t sent_ = 0;
};

}  // namespace iecd::cosim
