/// \file event_queue.hpp
/// Deterministic discrete-event scheduler.  Ties are broken by insertion
/// order (FIFO at equal timestamps) so repeated runs of the same model are
/// bit-identical — the property every regression test in this repo relies
/// on.  Events are cancelable; cancellation is O(1) (lazy removal) with a
/// compaction threshold so cancel-heavy workloads cannot grow the heap
/// unboundedly.
///
/// Hot-path layout: callbacks live in a chunked slab of generation-tagged
/// slots (small-buffer-optimized storage, no heap allocation for the
/// common capture sizes) and the pending set is a single 4-ary implicit
/// heap of 24-byte entries — no per-event `std::function` allocation and
/// no hash-map side table.  Periodic work uses schedule_every(), which
/// stores the callback once and re-arms without allocating per tick.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "util/small_function.hpp"

namespace iecd::sim {

/// Opaque handle for cancelling a scheduled event.  Encodes a slot index
/// plus a generation tag, so a handle to an event that already ran (or was
/// cancelled) can never alias a later event reusing the same slot.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Inline capture budget: `this` plus a few scalars stays allocation-free;
  /// larger captures transparently spill to one heap allocation.
  static constexpr std::size_t kCallbackBuffer = 48;
  using Callback = util::SmallFunction<void(), kCallbackBuffer>;

  /// Schedules \p fn at absolute time \p when (must be >= now()).
  /// Returns a handle usable with cancel().
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedules \p fn \p delay after now().
  EventId schedule_in(SimTime delay, Callback fn);

  /// Recurring event: first fires at now() + \p first_delay, then every
  /// \p period (> 0) until cancelled.  The callback is stored once and
  /// re-armed after each occurrence returns, so periodic timers allocate
  /// nothing per tick.  FIFO ordering matches the classic pattern of
  /// re-scheduling at the end of the handler: each occurrence takes its
  /// insertion rank when (re)armed.  Cancelling from inside the callback
  /// is allowed and stops the recurrence.
  EventId schedule_every(SimTime first_delay, SimTime period, Callback fn);

  /// Recurring event with the first occurrence one period from now().
  EventId schedule_every(SimTime period, Callback fn);

  /// Cancels a pending event (one-shot or recurring).  Returns false if it
  /// already ran, was already cancelled, or never existed.
  bool cancel(EventId id);

  /// Current simulated time.  Advances only as events execute.
  SimTime now() const { return now_; }

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  /// Time of the next pending event, or kNever.
  SimTime next_time() const;

  /// Executes the single next event.  Returns false if the queue is empty.
  bool step();

  /// Runs events with timestamp <= \p until; afterwards now() == max(now,
  /// until).  Events scheduled during execution are honoured if they fall
  /// inside the window.  Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Drains the queue completely (use with care: self-rescheduling
  /// components and recurring events make this unbounded).  Returns events
  /// executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  // --- Introspection (tests / diagnostics) ---
  /// Pending-heap entries, including lazily-removed (stale) ones.  The
  /// compaction threshold keeps this O(live events), independently of how
  /// many events have been cancelled.
  std::size_t heap_size() const { return heap_.size(); }
  std::size_t stale_heap_entries() const { return stale_in_heap_; }

  /// Lifetime totals: occurrences pushed (arms + recurring re-arms) and
  /// callbacks executed.  The benches divide deltas of these by work items
  /// (e.g. PIL exchanges) to report scheduler pressure per step.
  std::uint64_t events_scheduled() const { return scheduled_total_; }
  std::uint64_t events_executed() const { return executed_total_; }

 private:
  /// Callback slab entry.  Slots live in fixed chunks that are never
  /// reallocated (stable references across reentrant scheduling); freed
  /// slots are recycled via the free list with a bumped generation.
  struct Slot {
    Callback fn;
    SimTime period = 0;           ///< > 0 marks a recurring event
    std::uint64_t pending_key = 0;  ///< key of the pending occurrence, 0=none
    std::uint32_t gen = 1;
    bool live = false;
    bool in_flight = false;  ///< callback currently executing
  };

  /// Chunked slab geometry: index -> chunks_[i >> shift][i & mask] is two
  /// dependent loads with shift/mask arithmetic (cheaper than deque's
  /// divide-by-buffer-size indexing) and chunk addresses never move.
  static constexpr std::uint32_t kSlotChunkShift = 6;  // 64 slots per chunk
  static constexpr std::uint32_t kSlotChunkMask = (1u << kSlotChunkShift) - 1;

  /// Packed (insertion rank << 24 | slot index) key.  Rank order == key
  /// order (rank sits in the high bits and is unique), so comparing keys
  /// IS the FIFO tie-break; the low bits recover the slot on dispatch.
  /// Ranks are renumbered in the (astronomically rare) event they would
  /// overflow the 40-bit field, and slot indices are capped at 2^24
  /// concurrent events.
  static constexpr int kSlotIndexBits = 24;
  static constexpr std::uint32_t kSlotIndexMask =
      (1u << kSlotIndexBits) - 1;
  static constexpr std::uint64_t kMaxSeq =
      (std::uint64_t{1} << (64 - kSlotIndexBits)) - 1;

  /// Pending-occurrence heap entry: 16 bytes, so pops move half the bytes
  /// a (when, seq, slot, gen) layout would.  Staleness is detected by
  /// comparing \p key against the owning slot's pending_key instead of a
  /// per-entry generation tag.
  struct HeapEntry {
    SimTime when;
    std::uint64_t key;
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & kSlotIndexMask;
    }
  };

  // Min-ordering on (when, key): the 4-ary heap keeps the earliest pair at
  // heap_[0].  Four children sit contiguously at 4i+1..4i+4, so a pop
  // touches half the levels (and cache lines) of a binary heap.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.key < b.key;
  }

  Slot& slot_at(std::uint32_t i) const {
    return chunks_[i >> kSlotChunkShift][i & kSlotChunkMask];
  }

  EventId arm(SimTime when, SimTime period, Callback&& fn);
  void push_occurrence(SimTime when, std::uint32_t slot);
  bool entry_live(const HeapEntry& e) const {
    return slot_at(e.slot()).pending_key == e.key;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i) const;
  void heapify();
  void renumber_seqs();
  /// Removes heap_[0], refilling from the back.  Logically const when used
  /// from pruning (only reorders the mutable heap).
  void pop_root() const;
  /// Pops lazily-removed entries off the heap top.  Logically const: only
  /// drops entries that are already dead.
  void prune_stale_top() const;
  void release_slot(std::uint32_t slot);
  void maybe_compact();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t scheduled_total_ = 0;
  std::uint64_t executed_total_ = 0;
  std::size_t live_count_ = 0;
  mutable std::vector<HeapEntry> heap_;
  mutable std::size_t stale_in_heap_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace iecd::sim
