#include "model/subsystem.hpp"

#include <stdexcept>

namespace iecd::model {

Subsystem::Subsystem(std::string name, int inputs, int outputs)
    : Block(std::move(name), inputs, outputs), inner_(this->name() + "/inner") {}

void Subsystem::bind_ports(std::vector<Inport*> inports,
                           std::vector<Outport*> outports) {
  if (static_cast<int>(inports.size()) != input_count() ||
      static_cast<int>(outports.size()) != output_count()) {
    throw std::invalid_argument(name() +
                                ": port binding does not match port counts");
  }
  inports_ = std::move(inports);
  outports_ = std::move(outports);
  ports_bound_ = true;
}

void Subsystem::initialize(const SimContext& ctx) {
  if (!ports_bound_ && (input_count() > 0 || output_count() > 0)) {
    throw std::logic_error(name() + ": bind_ports() not called");
  }
  for (Block* b : inner_.sorted()) {
    // Interior blocks inherit the subsystem's resolved rate unless they
    // declared something explicit.
    if (b->sample_time().kind == SampleTime::Kind::kInherited) {
      b->set_resolved_period(resolved_period());
      b->set_resolved_continuous(resolved_continuous());
    } else if (b->sample_time().kind == SampleTime::Kind::kDiscrete) {
      b->set_resolved_period(b->sample_time().period);
      b->set_resolved_continuous(false);
    } else {
      b->set_resolved_continuous(true);
    }
    b->initialize(ctx);
  }
}

void Subsystem::run_outputs(const SimContext& ctx) {
  for (int i = 0; i < input_count(); ++i) {
    inports_[static_cast<std::size_t>(i)]->inject(in_value(i));
  }
  for (Block* b : inner_.sorted()) b->output(ctx);
  for (int i = 0; i < output_count(); ++i) {
    set_out_value(i, outports_[static_cast<std::size_t>(i)]->out(0));
  }
}

void Subsystem::output(const SimContext& ctx) { run_outputs(ctx); }

void Subsystem::update(const SimContext& ctx) {
  for (Block* b : inner_.sorted()) b->update(ctx);
}

int Subsystem::continuous_state_count() const {
  int n = 0;
  for (const auto& b : inner_.blocks()) n += b->continuous_state_count();
  return n;
}

void Subsystem::read_states(std::span<double> into) const {
  std::size_t offset = 0;
  for (const auto& b : inner_.blocks()) {
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) b->read_states(into.subspan(offset, n));
    offset += n;
  }
}

void Subsystem::write_states(std::span<const double> from) {
  std::size_t offset = 0;
  for (const auto& b : inner_.blocks()) {
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) b->write_states(from.subspan(offset, n));
    offset += n;
  }
}

void Subsystem::derivatives(const SimContext& ctx,
                            std::span<double> dx) const {
  // Re-propagate interior outputs at the candidate state before collecting
  // slopes (the parent engine already injected fresh boundary inputs).
  const_cast<Subsystem*>(this)->run_outputs(ctx);
  std::size_t offset = 0;
  for (const auto& b : inner_.blocks()) {
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) b->derivatives(ctx, dx.subspan(offset, n));
    offset += n;
  }
}

mcu::OpCounts Subsystem::step_ops(bool fixed_point) const {
  mcu::OpCounts total;
  for (const auto& b : inner_.blocks()) total += b->step_ops(fixed_point);
  return total;
}

std::uint32_t Subsystem::state_bytes() const {
  std::uint32_t total = 0;
  for (const auto& b : inner_.blocks()) total += b->state_bytes();
  return total;
}

FunctionCallSubsystem::FunctionCallSubsystem(std::string name, int inputs,
                                             int outputs)
    : Subsystem(std::move(name), inputs, outputs) {}

void FunctionCallSubsystem::output(const SimContext& ctx) {
  (void)ctx;  // outputs hold their last triggered values
}

void FunctionCallSubsystem::trigger(const SimContext& ctx) {
  run_outputs(ctx);
  for (Block* b : inner_.sorted()) b->update(ctx);
  ++activations_;
}

void EventSource::attach(FunctionCallSubsystem& subsystem) {
  FunctionCallSubsystem* target = &subsystem;
  listeners_.push_back(
      [target](const SimContext& ctx) { target->trigger(ctx); });
}

void EventSource::attach(std::function<void(const SimContext&)> listener) {
  listeners_.push_back(std::move(listener));
}

void EventSource::fire(const SimContext& ctx) {
  for (auto& l : listeners_) l(ctx);
}

}  // namespace iecd::model
