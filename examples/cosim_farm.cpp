// The 16-node networked servo farm on the co-simulation master: 15
// full-fidelity servo nodes (each its own MCU, quadrature decoder, PWM,
// CAN controller and local motor) plus one lightweight supervisor model,
// all on one shared CAN bus.  The master's step-negotiation loop advances
// every component to the global minimum horizon and exchanges bus frames
// at the boundaries, so the composed system behaves exactly like one
// monolithic simulation — at composition-friendly structure.
//
// The second half re-runs the farm under a fault campaign (node kills,
// clock degradation, bus corruption, encoder glitches) and shows the
// supervisor detecting killed nodes through status staleness.
#include <cstdio>

#include "cosim/farm.hpp"
#include "fault/campaign.hpp"

using namespace iecd;

int main() {
  cosim::FarmConfig cfg;
  cfg.servo_count = 15;  // + 1 supervisor = 16 bus nodes
  cfg.duration_s = 0.5;
  cfg.traffic_frames_per_s = 500.0;

  std::printf("Servo farm: %zu servo nodes + supervisor on one %u bit/s "
              "CAN bus\n\n",
              cfg.servo_count, cfg.bitrate_bps);

  cosim::ServoFarm farm(cosim::make_farm_topology(cfg),
                        {cfg.duration_s, cfg.settle_tolerance, nullptr,
                         nullptr});
  const cosim::FarmResult clean = farm.run();
  std::printf("clean run: %s, mean |err| %.4f rad/s, bus %.1f %% busy\n",
              clean.recovered ? "every node settled" : "NOT recovered",
              clean.mean_abs_error, clean.bus_utilisation * 100.0);
  std::printf("  %llu negotiations, %llu events, %llu commands, %llu "
              "status frames\n",
              static_cast<unsigned long long>(clean.negotiations),
              static_cast<unsigned long long>(clean.events_executed),
              static_cast<unsigned long long>(clean.commands_sent),
              static_cast<unsigned long long>(clean.statuses_seen));
  for (std::size_t i = 0; i < 3 && i < clean.nodes.size(); ++i) {
    const auto& n = clean.nodes[i];
    std::printf("  %-8s speed %7.2f rad/s, %4llu ticks, %3llu statuses\n",
                n.name.c_str(), n.speed,
                static_cast<unsigned long long>(n.control_ticks),
                static_cast<unsigned long long>(n.status_frames));
  }
  std::printf("  ... (%zu nodes total)\n\n", clean.nodes.size());

  std::printf("default fault plan, 8 campaign runs (kills, degrades, bus "
              "corruption):\n");
  fault::CampaignOptions options;
  options.name = "farm_demo";
  options.seed = 42;
  options.runs = 8;
  options.threads = 2;
  options.plan = fault::FaultPlan::defaults();
  const fault::CampaignReport report =
      fault::CampaignRunner(options).run(cosim::make_farm_scenario(cfg));
  std::printf("  %llu faults injected across %zu runs, %llu unrecovered\n",
              static_cast<unsigned long long>(report.faults_injected),
              options.runs,
              static_cast<unsigned long long>(report.unrecovered));
  const auto* killed = report.merged.find_counter("campaign.cosim.killed");
  const auto* stale = report.merged.find_counter("campaign.cosim.stale");
  if (killed && stale) {
    std::printf("  %llu nodes killed, %llu flagged stale by the "
                "supervisor\n",
                static_cast<unsigned long long>(killed->value),
                static_cast<unsigned long long>(stale->value));
  }
  std::printf("  recovered = alive nodes settled AND killed nodes "
              "detected stale\n");
  return 0;
}
