/// \file statechart.hpp
/// State chart block — the Stateflow analog.  Drives mode logic (the case
/// study's manual/automatic switch) and event-driven behaviour: charts run
/// at their sample time evaluating guarded transitions, and can also
/// consume asynchronous events (from PE block interrupts) that change state
/// immediately, as the paper describes ("an asynchronous change of a
/// Stateflow chart state").
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "model/block.hpp"

namespace iecd::model {

class StateChart : public Block {
 public:
  /// Chart context passed to actions and guards: read data inputs, write
  /// data outputs, query time.
  struct ChartContext {
    StateChart* chart = nullptr;
    double t = 0.0;
    double in(int port) const;
    void set_out(int port, double value) const;
  };

  using Guard = std::function<bool(const ChartContext&)>;
  using Action = std::function<void(const ChartContext&)>;

  StateChart(std::string name, int data_inputs, int data_outputs);

  const char* type_name() const override { return "Chart"; }

  /// Declares a state.  The first declared state is the initial one.
  void add_state(const std::string& state, Action entry = nullptr,
                 Action during = nullptr, Action exit = nullptr);

  /// Declares a transition evaluated while \p from is active.  Transitions
  /// are checked in declaration order; the first enabled one fires.
  /// \p event empty = condition transition (checked every sample hit);
  /// non-empty = fires only when that event is sent.
  void add_transition(const std::string& from, const std::string& to,
                      Guard guard = nullptr, Action action = nullptr,
                      const std::string& event = "");

  /// Sends an asynchronous event (from an ISR in the generated app, or a
  /// simulated event source in MIL): evaluates that event's transitions of
  /// the active state immediately.
  void send_event(const std::string& event, const SimContext& ctx);

  const std::string& active_state() const { return active_; }
  std::uint64_t transitions_taken() const { return transitions_taken_; }

  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;

  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::uint32_t state_bytes() const override { return 2; }
  /// Emits a switch-based flat FSM skeleton (the StateFlow Coder analog):
  /// one case per state with its outgoing transitions as guarded gotos.
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  struct State {
    Action entry, during, exit;
  };
  struct Transition {
    std::string from, to, event;
    Guard guard;
    Action action;
  };

  bool try_transitions(const std::string& event, const SimContext& ctx);
  void enter(const std::string& state, const ChartContext& cctx);

  std::map<std::string, State> states_;
  std::vector<Transition> transitions_;
  std::string initial_;
  std::string active_;
  std::uint64_t transitions_taken_ = 0;
};

}  // namespace iecd::model
