/// \file progress.hpp
/// In-flight campaign progress: lock-free counters a long-running campaign
/// updates while it executes, so an operator (campaign_ctl, a dashboard
/// poll, a test) can watch completion and scheduler behaviour without
/// touching the deterministic outputs.  Everything here is observational —
/// none of these values ever feed a merged report, so reading them at any
/// moment is race-free by construction (each counter is an independent
/// atomic; a snapshot is approximate across counters, exact per counter).
#pragma once

#include <atomic>
#include <cstdint>

namespace iecd::obs {

/// Shared between a campaign engine (writer) and any number of observers.
/// Writers use relaxed ordering: the counters are monotonic telemetry, not
/// synchronization edges.
struct CampaignProgress {
  std::atomic<std::uint64_t> runs_total{0};
  std::atomic<std::uint64_t> runs_completed{0};   ///< folded (post-sink)
  std::atomic<std::uint64_t> groups_completed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> steal_attempts{0};
  std::atomic<std::uint64_t> window_waits{0};     ///< reorder-horizon stalls
  std::atomic<std::uint64_t> checkpoints{0};      ///< checkpoint seals

  /// Point-in-time copy (per-counter exact, cross-counter approximate).
  struct Snapshot {
    std::uint64_t runs_total = 0;
    std::uint64_t runs_completed = 0;
    std::uint64_t groups_completed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t window_waits = 0;
    std::uint64_t checkpoints = 0;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.runs_total = runs_total.load(std::memory_order_relaxed);
    s.runs_completed = runs_completed.load(std::memory_order_relaxed);
    s.groups_completed = groups_completed.load(std::memory_order_relaxed);
    s.steals = steals.load(std::memory_order_relaxed);
    s.steal_attempts = steal_attempts.load(std::memory_order_relaxed);
    s.window_waits = window_waits.load(std::memory_order_relaxed);
    s.checkpoints = checkpoints.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    runs_total.store(0, std::memory_order_relaxed);
    runs_completed.store(0, std::memory_order_relaxed);
    groups_completed.store(0, std::memory_order_relaxed);
    steals.store(0, std::memory_order_relaxed);
    steal_attempts.store(0, std::memory_order_relaxed);
    window_waits.store(0, std::memory_order_relaxed);
    checkpoints.store(0, std::memory_order_relaxed);
  }
};

}  // namespace iecd::obs
