// E8 (Section 2) — generated-code quality and scaling.  The paper argues
// that generated code replaces the manual process whose productivity is
// "6 lines per day"; this bench shows what the generator actually emits as
// the model grows: source lines, data/code memory, step cost and
// generation wall time for controllers with 1..64 parallel PI channels.
// Expected shape: everything scales linearly with model size, and
// generation stays in the milliseconds.
#include <cstdio>

#include "beans/timer_int_bean.hpp"
#include "bench_util.hpp"
#include "blocks/discontinuities.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "codegen/generator.hpp"
#include "core/model_sync.hpp"
#include "mcu/derivative.hpp"
#include "model/subsystem.hpp"

using namespace iecd;

namespace {

/// Controller with N independent PI channels (constant set-points against
/// unit-delay "plants" to keep it self-contained).
struct ScaledApp {
  model::Model top{"scaled"};
  model::Subsystem* sub;
  beans::BeanProject project{"scaled"};

  explicit ScaledApp(int channels) {
    sub = &top.add<model::Subsystem>("ctrl", 0, 0);
    sub->set_sample_time(model::SampleTime::discrete(0.001));
    project.add<beans::TimerIntBean>("TI1");
    model::Model& c = sub->inner();
    for (int i = 0; i < channels; ++i) {
      const std::string n = std::to_string(i);
      auto& sp = c.add<blocks::ConstantBlock>("sp" + n, 1.0);
      auto& fb = c.add<blocks::UnitDelayBlock>("fb" + n, 0.0);
      auto& err = c.add<blocks::SumBlock>("err" + n, "+-");
      blocks::DiscretePidBlock::Gains g;
      g.kp = 0.5;
      g.ki = 2.0;
      auto& pi = c.add<blocks::DiscretePidBlock>("pi" + n, g, -1.0, 1.0);
      auto& sat = c.add<blocks::SaturationBlock>("sat" + n, -1.0, 1.0);
      c.connect(sp, 0, err, 0);
      c.connect(fb, 0, err, 1);
      c.connect(err, 0, pi, 0);
      c.connect(pi, 0, sat, 0);
      c.connect(sat, 0, fb, 0);
    }
    sub->bind_ports({}, {});
  }
};

void print_table() {
  std::printf("E8: generated-code metrics vs model size (DSC56F8367)\n\n");
  std::printf("%-10s %-8s | %-8s %-10s %-10s %-12s %-10s %-10s\n",
              "channels", "blocks", "files", "lines", "data[B]", "code[B]",
              "cyc/step", "gen[ms]");
  bench::print_rule(86);
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  for (int channels : {1, 2, 4, 8, 16, 32, 64}) {
    ScaledApp app(channels);
    app.project.validate();
    codegen::Generator gen;
    bench::Stopwatch watch;
    auto generated = gen.generate(*app.sub, app.project, {});
    const double gen_ms = watch.elapsed_ms();
    std::printf("%-10d %-8zu | %-8zu %-10zu %-10u %-12u %-10llu %-10.2f\n",
                channels, app.sub->inner().block_count(),
                generated.sources.size(), generated.source_lines(),
                generated.memory.data_bytes, generated.memory.code_bytes,
                static_cast<unsigned long long>(
                    generated.task_cycles(0, cpu.costs)),
                gen_ms);
  }
  std::printf("\nproductivity contrast (paper Section 2): hand-coding runs "
              "at ~6 lines/day;\nthe generator emits the equivalent "
              "controller in milliseconds, consistent with\nthe model, and "
              "regenerates after every model change.\n\n");
}

void BM_Generate16Channels(benchmark::State& state) {
  for (auto _ : state) {
    ScaledApp app(16);
    app.project.validate();
    codegen::Generator gen;
    auto generated = gen.generate(*app.sub, app.project, {});
    benchmark::DoNotOptimize(generated.memory.code_bytes);
  }
}
BENCHMARK(BM_Generate16Channels)->Unit(benchmark::kMillisecond);

void BM_EmitSourcesOnly(benchmark::State& state) {
  ScaledApp app(16);
  app.project.validate();
  codegen::Generator gen;
  auto generated = gen.generate(*app.sub, app.project, {});
  for (auto _ : state) {
    // Regeneration after a model edit re-runs the whole pipeline; this
    // isolates the emission cost.
    codegen::Generator g2;
    auto app2 = g2.generate(*app.sub, app.project, {});
    benchmark::DoNotOptimize(app2.source_lines());
  }
}
BENCHMARK(BM_EmitSourcesOnly)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
