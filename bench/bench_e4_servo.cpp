// E4 (Fig. 7.1 / 7.2) — the servo case study across the three validation
// levels and across sampling periods.  The top table is the paper's core
// result in numeric form: MIL, PIL and HIL all track the set-point with
// consistent dynamics.  The second table sweeps the control period: faster
// sampling buys little; slower sampling degrades and eventually loses the
// loop — the classic sampled-control trade-off the tool chain lets a
// designer explore before hardware exists.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "obs/health_report.hpp"
#include "obs/monitor.hpp"

using namespace iecd;

namespace {

void print_phase_row(const char* name, const model::StepMetrics& m,
                     double iae, double final_speed) {
  std::printf("%-6s | %-9.1f %-9.2f %-11.1f %-9.3f %-8.3f %-8.2f\n", name,
              m.rise_time * 1e3, m.overshoot_percent, m.settling_time * 1e3,
              m.steady_state_error, iae, final_speed);
}

void print_table() {
  std::printf("E4: servo case study — validation levels (1 kHz, 100 rad/s "
              "step at 50 ms)\n\n");
  std::printf("%-6s | %-9s %-9s %-11s %-9s %-8s %-8s\n", "phase", "rise[ms]",
              "over[%]", "settle[ms]", "ss-err", "IAE", "final");
  bench::print_rule(72);
  {
    core::ServoConfig cfg;
    cfg.duration_s = 0.8;
    core::ServoSystem servo(cfg);
    const auto mil = servo.run_mil();
    print_phase_row("MIL", mil.metrics, mil.iae, mil.speed.last_value());
    // Monitors are passive (read-only probes on a scheduled poll), so the
    // PIL/HIL trajectories here are bit-identical with or without them —
    // obs_test locks that.  The merged health report is this bench's CI
    // artifact: task timing percentiles, watermarks and any flight dumps.
    obs::MonitorHub pil_hub;
    core::ServoSystem::PilRunOptions pil_opts;
    pil_opts.baud = 460800;
    pil_opts.monitors = &pil_hub;
    const auto pil = servo.run_pil(pil_opts);
    print_phase_row("PIL", pil.metrics, pil.iae, pil.speed.last_value());
    obs::MonitorHub hil_hub;
    core::ServoSystem::HilOptions hil_opts;
    hil_opts.monitors = &hil_hub;
    const auto hil = servo.run_hil(hil_opts);
    print_phase_row("HIL", hil.metrics, hil.iae, hil.speed.last_value());
    bench::summarize("mil.iae", mil.iae);
    bench::summarize("pil.iae", pil.iae);
    bench::summarize("hil.iae", hil.iae);
    bench::summarize("hil.exec_us_mean", hil.exec_us_mean);
    bench::summarize("hil.jitter_us", hil.jitter_us);
    obs::HealthReport health = hil_hub.report("e4_servo_hil");
    health.merge(pil_hub.report("e4_servo_pil"));
    health.write_json("HEALTH_bench_e4_servo.json");
    std::printf("\nrun health: %s (%llu task monitors, %llu anomalies; "
                "HEALTH_bench_e4_servo.json)\n",
                health.healthy() ? "healthy" : "UNHEALTHY",
                static_cast<unsigned long long>(health.tasks.size()),
                static_cast<unsigned long long>(health.anomaly_count()));
  }

  std::printf("\nsampling-period sweep (HIL, same gains):\n\n");
  std::printf("%-10s | %-9s %-9s %-9s %-9s %-10s\n", "period", "rise[ms]",
              "over[%]", "IAE", "CPU[%]", "settled");
  bench::print_rule(64);
  const double periods[] = {0.0005, 0.001, 0.002, 0.005, 0.01};
  for (double period : periods) {
    core::ServoConfig cfg;
    cfg.period_s = period;
    cfg.duration_s = 0.8;
    core::ServoSystem servo(cfg);
    const auto hil = servo.run_hil();
    std::printf("%6.1f ms  | %-9.1f %-9.2f %-9.3f %-9.2f %s\n", period * 1e3,
                hil.metrics.rise_time * 1e3, hil.metrics.overshoot_percent,
                hil.iae, hil.cpu_utilisation * 100.0,
                hil.metrics.settled ? "yes" : "NO");
  }

  std::printf("\nablation: PE-block hardware fidelity vs trivial "
              "pass-through blocks\n(coarse 16-line encoder to make the "
              "effect visible; the question is which MIL\npredicts the HIL "
              "reality):\n\n");
  std::printf("%-24s | %-10s %-10s %-12s\n", "simulation", "IAE",
              "over[%]", "|IAE-HIL|");
  bench::print_rule(62);
  {
    core::ServoConfig cfg;
    cfg.duration_s = 0.8;
    cfg.encoder_lines = 16;  // speed LSB ~98 rad/s before filtering
    core::ServoSystem hw_servo(cfg);
    const auto hil = hw_servo.run_hil();
    const auto mil_hw = hw_servo.run_mil();
    cfg.mil_hw_fidelity = false;
    core::ServoSystem ideal_servo(cfg);
    const auto mil_ideal = ideal_servo.run_mil();
    std::printf("%-24s | %-10.3f %-10.2f %-12s\n", "HIL (ground truth)",
                hil.iae, hil.metrics.overshoot_percent, "-");
    std::printf("%-24s | %-10.3f %-10.2f %-12.3f\n", "MIL, PE blocks",
                mil_hw.iae, mil_hw.metrics.overshoot_percent,
                std::abs(mil_hw.iae - hil.iae));
    std::printf("%-24s | %-10.3f %-10.2f %-12.3f\n",
                "MIL, pass-through", mil_ideal.iae,
                mil_ideal.metrics.overshoot_percent,
                std::abs(mil_ideal.iae - hil.iae));
  }

  std::printf("\nfeedback-resolution detail (the PE blocks quantize like "
              "the HW):\n");
  {
    core::ServoConfig cfg;
    cfg.duration_s = 0.4;
    core::ServoSystem servo(cfg);
    const double cpr = cfg.encoder_lines * 4;
    std::printf("  encoder: %d lines -> %.0f counts/rev -> speed LSB "
                "%.2f rad/s per sample before filtering\n",
                cfg.encoder_lines, cpr,
                2.0 * 3.14159265 / cpr / cfg.period_s);
    const auto diags = servo.validate();
    (void)diags;
    const auto modulo = servo.project()
                            .find("PWM1")
                            ->properties()
                            .get_int("modulo");
    std::printf("  PWM: modulo %lld -> duty LSB %.4f%%\n\n",
                static_cast<long long>(modulo),
                100.0 / static_cast<double>(modulo));
  }
}

void BM_ServoHil(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoConfig cfg;
    cfg.duration_s = 0.5;
    core::ServoSystem servo(cfg);
    auto hil = servo.run_hil();
    benchmark::DoNotOptimize(hil.iae);
  }
}
BENCHMARK(BM_ServoHil)->Unit(benchmark::kMillisecond);

void BM_ServoMil(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoConfig cfg;
    cfg.duration_s = 0.5;
    core::ServoSystem servo(cfg);
    auto mil = servo.run_mil();
    benchmark::DoNotOptimize(mil.iae);
  }
}
BENCHMARK(BM_ServoMil)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
