/// \file crc16.hpp
/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) used to protect PIL frames
/// on the simulated RS232 link and the integrity check of CAN payloads.
///
/// Table-driven byte-at-a-time form: the 256-entry table is computed at
/// compile time, so the per-byte update is one shift, one XOR and one table
/// load instead of the 8-iteration bit loop.  Everything is constexpr — the
/// equivalence with the bitwise reference is locked by a static_assert on
/// the standard "123456789" check value (0x29B1).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace iecd::util {

namespace detail {

constexpr std::array<std::uint16_t, 256> make_crc16_ccitt_table() {
  std::array<std::uint16_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000)
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint16_t, 256> kCrc16CcittTable =
    make_crc16_ccitt_table();

}  // namespace detail

/// Incremental form: folds a single byte into a running CRC.
constexpr std::uint16_t crc16_ccitt_update(std::uint16_t crc,
                                           std::uint8_t byte) {
  return static_cast<std::uint16_t>(
      (crc << 8) ^
      detail::kCrc16CcittTable[((crc >> 8) ^ byte) & 0xFF]);
}

/// Computes the CRC over \p data starting from \p seed (0xFFFF for a fresh
/// message).  Feeding a message followed by its own big-endian CRC yields 0.
constexpr std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data,
                                    std::uint16_t seed = 0xFFFF) {
  std::uint16_t crc = seed;
  for (std::uint8_t b : data) crc = crc16_ccitt_update(crc, b);
  return crc;
}

namespace detail {

constexpr std::uint16_t crc16_check_value() {
  constexpr std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  return crc16_ccitt(std::span<const std::uint8_t>(msg, 9));
}

static_assert(crc16_check_value() == 0x29B1,
              "CRC-16/CCITT-FALSE table does not match the reference");

}  // namespace detail

}  // namespace iecd::util
