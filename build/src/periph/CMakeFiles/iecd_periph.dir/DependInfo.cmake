
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/periph/adc.cpp" "src/periph/CMakeFiles/iecd_periph.dir/adc.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/adc.cpp.o.d"
  "/root/repo/src/periph/can_controller.cpp" "src/periph/CMakeFiles/iecd_periph.dir/can_controller.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/can_controller.cpp.o.d"
  "/root/repo/src/periph/capture.cpp" "src/periph/CMakeFiles/iecd_periph.dir/capture.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/capture.cpp.o.d"
  "/root/repo/src/periph/gpio.cpp" "src/periph/CMakeFiles/iecd_periph.dir/gpio.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/gpio.cpp.o.d"
  "/root/repo/src/periph/pwm.cpp" "src/periph/CMakeFiles/iecd_periph.dir/pwm.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/pwm.cpp.o.d"
  "/root/repo/src/periph/quadrature_decoder.cpp" "src/periph/CMakeFiles/iecd_periph.dir/quadrature_decoder.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/quadrature_decoder.cpp.o.d"
  "/root/repo/src/periph/timer.cpp" "src/periph/CMakeFiles/iecd_periph.dir/timer.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/timer.cpp.o.d"
  "/root/repo/src/periph/uart.cpp" "src/periph/CMakeFiles/iecd_periph.dir/uart.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/uart.cpp.o.d"
  "/root/repo/src/periph/watchdog.cpp" "src/periph/CMakeFiles/iecd_periph.dir/watchdog.cpp.o" "gcc" "src/periph/CMakeFiles/iecd_periph.dir/watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
