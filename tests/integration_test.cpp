// Long-horizon and cross-cutting integration tests.
#include <gtest/gtest.h>

#include "beans/watchdog_bean.hpp"
#include "core/case_study.hpp"
#include "mcu/derivative.hpp"

namespace iecd::core {
namespace {

TEST(SoakRun, TenSimulatedSecondsStaysHealthy) {
  // Long HIL run: no overruns, no watchdog bites, no drift in the loop,
  // bounded memory in the lazily-pruned signal structures.
  ServoConfig cfg;
  cfg.duration_s = 10.0;
  ServoSystem servo(cfg);
  auto& wdog = servo.project().add<beans::WatchdogBean>("WDog1");
  const auto hil = servo.run_hil();
  EXPECT_TRUE(hil.metrics.settled);
  EXPECT_EQ(hil.overruns, 0u);
  EXPECT_EQ(wdog.peripheral()->bites(), 0u);
  EXPECT_NEAR(static_cast<double>(hil.activations), 9999.0, 2.0);
  EXPECT_NEAR(hil.speed.last_value(), cfg.setpoint, 2.0);
  // Steady state for the last 5 s: max deviation stays inside the
  // quantization ripple band.
  double worst = 0.0;
  for (std::size_t i = 0; i < hil.speed.size(); ++i) {
    if (hil.speed.time_at(i) < 5.0) continue;
    worst = std::max(worst, std::abs(hil.speed.value_at(i) - cfg.setpoint));
  }
  EXPECT_LT(worst, 5.0);
}

TEST(FixedPointEndToEnd, PilWithFixedPointController) {
  ServoConfig cfg;
  cfg.duration_s = 0.5;
  cfg.fixed_point = true;
  ServoSystem servo(cfg);
  const auto pil = servo.run_pil({.baud = 460800});
  EXPECT_TRUE(pil.metrics.settled)
      << "final " << pil.speed.last_value();
  EXPECT_EQ(pil.report.crc_errors, 0u);
  EXPECT_NEAR(pil.speed.last_value(), cfg.setpoint, 3.0);
}

TEST(FixedPointEndToEnd, HilFixedPointFasterAndAccurate) {
  ServoConfig cfg;
  cfg.duration_s = 0.5;
  ServoSystem servo_d(cfg);
  const auto hil_d = servo_d.run_hil();
  cfg.fixed_point = true;
  ServoSystem servo_f(cfg);
  const auto hil_f = servo_f.run_hil();
  EXPECT_TRUE(hil_f.metrics.settled);
  EXPECT_LT(hil_f.exec_us_mean * 10, hil_d.exec_us_mean);
  EXPECT_NEAR(hil_f.speed.last_value(), hil_d.speed.last_value(), 3.0);
}

class CrossDerivativeAgreement : public ::testing::TestWithParam<const char*> {
};

TEST_P(CrossDerivativeAgreement, MilAndHilAgreeOnEveryLegalPort) {
  ServoConfig cfg;
  cfg.derivative = GetParam();
  cfg.duration_s = 0.6;
  ServoSystem servo(cfg);
  ASSERT_FALSE(servo.validate().has_errors());
  const auto mil = servo.run_mil();
  const auto hil = servo.run_hil();
  EXPECT_TRUE(mil.metrics.settled);
  EXPECT_TRUE(hil.metrics.settled);
  EXPECT_NEAR(hil.iae, mil.iae, mil.iae * 0.1);
  EXPECT_NEAR(hil.speed.last_value(), mil.speed.last_value(), 5.0);
}

INSTANTIATE_TEST_SUITE_P(LegalPorts, CrossDerivativeAgreement,
                         ::testing::Values("DSC56F8367", "MCF5235"));

TEST(RepeatedPhases, AlternatingMilHilRunsStayConsistent) {
  // The single model survives repeated mode flips (MIL <-> target) without
  // state bleeding between phases.
  ServoConfig cfg;
  cfg.duration_s = 0.4;
  ServoSystem servo(cfg);
  const auto mil1 = servo.run_mil();
  const auto hil1 = servo.run_hil();
  const auto mil2 = servo.run_mil();
  const auto hil2 = servo.run_hil();
  EXPECT_DOUBLE_EQ(mil1.iae, mil2.iae);
  EXPECT_DOUBLE_EQ(hil1.iae, hil2.iae);
}

}  // namespace
}  // namespace iecd::core
