#include "model/statechart.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::model {

double StateChart::ChartContext::in(int port) const {
  return chart->in_value(port).as_double();
}

void StateChart::ChartContext::set_out(int port, double value) const {
  chart->set_out(port, value);
}

StateChart::StateChart(std::string name, int data_inputs, int data_outputs)
    : Block(std::move(name), data_inputs, data_outputs) {}

void StateChart::add_state(const std::string& state, Action entry,
                           Action during, Action exit) {
  if (states_.count(state)) {
    throw std::logic_error(name() + ": duplicate state " + state);
  }
  states_[state] = {std::move(entry), std::move(during), std::move(exit)};
  if (initial_.empty()) initial_ = state;
}

void StateChart::add_transition(const std::string& from, const std::string& to,
                                Guard guard, Action action,
                                const std::string& event) {
  if (!states_.count(from) || !states_.count(to)) {
    throw std::logic_error(name() + ": transition references unknown state");
  }
  transitions_.push_back(
      {from, to, event, std::move(guard), std::move(action)});
}

void StateChart::initialize(const SimContext& ctx) {
  if (initial_.empty()) {
    throw std::logic_error(name() + ": chart has no states");
  }
  active_.clear();
  transitions_taken_ = 0;
  enter(initial_, ChartContext{this, ctx.t});
}

void StateChart::enter(const std::string& state, const ChartContext& cctx) {
  if (!active_.empty()) {
    const auto& old = states_.at(active_);
    if (old.exit) old.exit(cctx);
  }
  active_ = state;
  const auto& s = states_.at(state);
  if (s.entry) s.entry(cctx);
}

bool StateChart::try_transitions(const std::string& event,
                                 const SimContext& ctx) {
  const ChartContext cctx{this, ctx.t};
  for (const auto& tr : transitions_) {
    if (tr.from != active_) continue;
    if (tr.event != event) continue;
    if (tr.guard && !tr.guard(cctx)) continue;
    if (tr.action) tr.action(cctx);
    enter(tr.to, cctx);
    ++transitions_taken_;
    return true;
  }
  return false;
}

void StateChart::send_event(const std::string& event, const SimContext& ctx) {
  if (event.empty()) {
    throw std::invalid_argument(name() + ": event name must not be empty");
  }
  try_transitions(event, ctx);
}

void StateChart::output(const SimContext& ctx) {
  if (ctx.minor) return;  // charts are discrete
  // Condition transitions first, then the during action of the (possibly
  // new) active state.
  try_transitions("", ctx);
  const ChartContext cctx{this, ctx.t};
  const auto& s = states_.at(active_);
  if (s.during) s.during(cctx);
}

std::string StateChart::emit_c(const EmitContext& ctx) const {
  // Deterministic state numbering: declaration order (map is sorted by
  // name, so walk transitions/initial to recover declaration intent is
  // overkill — sorted order is stable and documented).
  std::string out;
  out += util::format("switch (%sstate) {  /* Chart %s */\n",
                      ctx.state_prefix.c_str(), name().c_str());
  int index = 0;
  for (const auto& [state_name, state] : states_) {
    (void)state;
    out += util::format("  case %d: /* %s */\n", index, state_name.c_str());
    int guard_index = 0;
    for (const auto& tr : transitions_) {
      if (tr.from != state_name) continue;
      // Guards are host closures; the generated code references the
      // condition the TLC layer would inline.
      int target_index = 0;
      for (const auto& [n2, s2] : states_) {
        (void)s2;
        if (n2 == tr.to) break;
        ++target_index;
      }
      out += util::format(
          "    if (%s_guard_%d()) { %sstate = %d; break; }  /* -> %s */\n",
          name().c_str(), guard_index++, ctx.state_prefix.c_str(),
          target_index, tr.to.c_str());
    }
    out += "    break;\n";
    ++index;
  }
  out += "}\n";
  return out;
}

mcu::OpCounts StateChart::step_ops(bool fixed_point) const {
  // Guard evaluations + during action: a handful of compares and moves per
  // transition out of the average state.
  mcu::OpCounts ops;
  const auto n = static_cast<std::uint32_t>(transitions_.size());
  ops.alu16 = 4 * n + 4;
  ops.branch = n + 1;
  ops.mem = 4;
  if (!fixed_point) ops.fadd = 2;
  return ops;
}

}  // namespace iecd::model
