/// \file determinism_test.cpp
/// Locks in the determinism contracts the hot-path overhaul must preserve:
///  - SweepRunner: parallel execution is byte-identical to sequential,
///  - EventQueue: FIFO tie-breaking matches a reference scheduler on
///    randomized workloads with ties and cancellations,
///  - tracing: two identical runs export byte-identical trace files,
///  - cancel-heavy workloads cannot grow the heap unboundedly (compaction).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "campaign/fold.hpp"
#include "campaign/stream.hpp"
#include "exec/sweep.hpp"
#include "sim/event_queue.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace {

using iecd::exec::SweepOptions;
using iecd::exec::SweepRunner;
using iecd::sim::EventQueue;
using iecd::sim::SimTime;

/// Deterministic 64-bit LCG (identical across platforms/runs, unlike
/// std::rand), used to randomize schedules reproducibly.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 11;
  }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

/// Reference scheduler implementing the pre-overhaul algorithm verbatim:
/// a (when, seq) priority queue plus an id->callback map with lazy
/// cancellation.  The production EventQueue must order executions exactly
/// like this on any one-shot workload.
class ReferenceQueue {
 public:
  std::uint64_t schedule_at(SimTime when, std::function<void()> fn) {
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{when, id});
    callbacks_[id] = std::move(fn);
    return id;
  }

  bool cancel(std::uint64_t id) { return callbacks_.erase(id) > 0; }

  bool step() {
    while (!heap_.empty() &&
           callbacks_.find(heap_.top().id) == callbacks_.end()) {
      heap_.pop();
    }
    if (heap_.empty()) return false;
    const Entry top = heap_.top();
    heap_.pop();
    now_ = top.when;
    auto it = callbacks_.find(top.id);
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    return true;
  }

  void run_all() {
    while (step()) {
    }
  }

  SimTime now() const { return now_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t id;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::map<std::uint64_t, std::function<void()>> callbacks_;
};

/// A deterministic synthetic scenario: a little discrete-event run whose
/// metrics depend on the sweep index.  Stands in for a MIL/PIL run.
void scenario_run(std::size_t index, iecd::trace::MetricsRegistry& metrics) {
  EventQueue queue;
  Lcg rng(0x9E3779B97F4A7C15ULL + index);
  double acc = 0.0;
  for (int i = 0; i < 200; ++i) {
    const SimTime when = 1 + static_cast<SimTime>(rng.next(10'000));
    queue.schedule_at(when, [&acc, when] {
      acc += static_cast<double>(when % 97);
    });
  }
  const auto tick = queue.schedule_every(100, [&metrics] {
    metrics.counter("scenario.ticks").increment();
  });
  queue.run_until(10'000);
  queue.cancel(tick);
  queue.run_all();
  metrics.counter("scenario.events").increment(200);
  metrics.gauge("scenario.acc") = acc;
  metrics.stats("scenario.when_mod").add(acc / 200.0);
  metrics.series("scenario.index").add(static_cast<double>(index));
}

TEST(SweepDeterminismTest, ParallelMergeIsByteIdenticalToSequential) {
  SweepRunner sequential(SweepOptions{.threads = 1});
  SweepRunner parallel(SweepOptions{.threads = 4});

  const auto seq = sequential.run(16, scenario_run);
  const auto par = parallel.run(16, scenario_run);

  ASSERT_EQ(seq.runs, 16u);
  ASSERT_EQ(par.runs, 16u);
  EXPECT_EQ(seq.threads_used, 1u);
  // Byte-identical renderings: the merge folds in index order, so thread
  // scheduling cannot leak into the result.
  EXPECT_EQ(seq.merged.report(), par.merged.report());
  EXPECT_EQ(seq.merged.to_csv(), par.merged.to_csv());
  ASSERT_EQ(seq.per_run.size(), par.per_run.size());
  for (std::size_t i = 0; i < seq.per_run.size(); ++i) {
    EXPECT_EQ(seq.per_run[i].report(), par.per_run[i].report()) << "run " << i;
  }
}

TEST(SweepDeterminismTest, RepeatedParallelRunsAgree) {
  SweepRunner runner(SweepOptions{.threads = 3});
  const auto a = runner.run(8, scenario_run);
  const auto b = runner.run(8, scenario_run);
  EXPECT_EQ(a.merged.to_csv(), b.merged.to_csv());
}

TEST(StreamDeterminismTest, RandomizedFoldOrdersYieldSequentialMerge) {
  // The streaming fold must produce the same merged registry as the
  // sequential index-order fold no matter what order groups arrive in —
  // 50 Lcg-randomized permutations of uneven-sized groups.
  using iecd::campaign::GroupResult;
  using iecd::campaign::ReorderFold;

  const std::size_t kRuns = 24;
  iecd::trace::MetricsRegistry expected;
  for (std::size_t i = 0; i < kRuns; ++i) scenario_run(i, expected);

  // Uneven group tiling of [0, kRuns).
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t first = 0, w = 1; first < kRuns;
       first += w, w = (w % 5) + 1) {
    groups.emplace_back(first, std::min(w, kRuns - first));
  }

  Lcg rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    auto order = groups;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next(i)]);
    }
    iecd::trace::MetricsRegistry merged;
    ReorderFold fold(0, kRuns, [&merged](GroupResult& g) {
      for (auto& m : g.metrics) merged.merge(m);
    });
    for (const auto& [first, size] : order) {
      auto g = std::make_unique<GroupResult>();
      g->first = first;
      g->metrics.resize(size);
      g->health.resize(size);
      for (std::size_t k = 0; k < size; ++k) {
        scenario_run(first + k, g->metrics[k]);
      }
      fold.submit(std::move(g));
    }
    ASSERT_EQ(fold.watermark(), kRuns) << "trial " << trial;
    EXPECT_EQ(merged.to_csv(), expected.to_csv()) << "trial " << trial;
  }
}

TEST(StreamDeterminismTest, WorkStealingMergeIsByteIdenticalToSequential) {
  using iecd::campaign::GroupResult;
  using iecd::campaign::StreamOptions;
  using iecd::campaign::StreamRunner;

  const std::size_t kRuns = 24;
  auto group_fn = [](std::size_t first,
                     std::span<iecd::trace::MetricsRegistry> metrics,
                     std::span<iecd::obs::HealthReport>) {
    for (std::size_t k = 0; k < metrics.size(); ++k) {
      scenario_run(first + k, metrics[k]);
    }
  };
  auto merged_csv = [&](StreamOptions opts) {
    iecd::trace::MetricsRegistry merged;
    StreamRunner runner(opts);
    runner.run(kRuns, group_fn,
               [&merged](GroupResult& g) {
                 for (auto& m : g.metrics) merged.merge(m);
               });
    return merged.to_csv();
  };

  const std::string seq = merged_csv(StreamOptions{.threads = 1});
  // Steal-heavy (chunk 1) and batched configurations all agree.
  EXPECT_EQ(merged_csv(StreamOptions{.threads = 4, .chunk = 1}), seq);
  EXPECT_EQ(merged_csv(StreamOptions{.threads = 3, .batch = 4}), seq);
  EXPECT_EQ(merged_csv(StreamOptions{.threads = 2, .batch = 5, .window = 11}),
            seq);
}

TEST(EventQueueDeterminismTest, MatchesReferenceSchedulerWithTiesAndCancels) {
  // Same randomized workload driven through both schedulers; the recorded
  // execution order (label sequence) must match exactly.  Timestamps are
  // drawn from a tiny range so ties are common, and a third of the events
  // are cancelled before anything runs.
  for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    EventQueue dut;
    ReferenceQueue ref;
    std::vector<int> dut_order;
    std::vector<int> ref_order;
    std::vector<iecd::sim::EventId> dut_ids;
    std::vector<std::uint64_t> ref_ids;

    Lcg rng(seed);
    constexpr int kEvents = 500;
    for (int i = 0; i < kEvents; ++i) {
      const SimTime when = 1 + static_cast<SimTime>(rng.next(20));  // ties!
      dut_ids.push_back(
          dut.schedule_at(when, [&dut_order, i] { dut_order.push_back(i); }));
      ref_ids.push_back(
          ref.schedule_at(when, [&ref_order, i] { ref_order.push_back(i); }));
    }
    for (int i = 0; i < kEvents; ++i) {
      if (rng.next(3) == 0) {
        EXPECT_EQ(dut.cancel(dut_ids[static_cast<std::size_t>(i)]),
                  ref.cancel(ref_ids[static_cast<std::size_t>(i)]));
      }
    }
    dut.run_all();
    ref.run_all();
    EXPECT_EQ(dut_order, ref_order) << "seed " << seed;
    EXPECT_EQ(dut.now(), ref.now()) << "seed " << seed;
  }
}

TEST(EventQueueDeterminismTest, ReentrantSchedulingMatchesReference) {
  // Callbacks that schedule more work at the current timestamp (the classic
  // cascaded-dispatch pattern) must interleave identically.
  EventQueue dut;
  ReferenceQueue ref;
  std::vector<int> dut_order;
  std::vector<int> ref_order;

  for (int i = 0; i < 50; ++i) {
    const SimTime when = 10 * (1 + i % 5);
    dut.schedule_at(when, [&, i, when] {
      dut_order.push_back(i);
      dut.schedule_at(when, [&dut_order, i] { dut_order.push_back(1000 + i); });
    });
    ref.schedule_at(when, [&, i, when] {
      ref_order.push_back(i);
      ref.schedule_at(when, [&ref_order, i] { ref_order.push_back(1000 + i); });
    });
  }
  dut.run_all();
  ref.run_all();
  EXPECT_EQ(dut_order, ref_order);
}

TEST(TraceDeterminismTest, IdenticalRunsExportByteIdenticalTraces) {
  // Two fresh executions of the same event-driven scenario (dispatch spans
  // emitted by the queue itself plus user instants) must serialize to
  // byte-identical Chrome trace JSON.
  auto run_once = [] {
    iecd::trace::TraceRecorder rec(1 << 14);
    iecd::trace::TraceSession session(rec);
    EventQueue queue;
    Lcg rng(7);
    for (int i = 0; i < 64; ++i) {
      const SimTime when = 1 + static_cast<SimTime>(rng.next(500));
      queue.schedule_at(when, [&queue, when] {
        if (auto* tr = iecd::trace::recorder()) {
          tr->instant("test", "work", "scenario", queue.now(),
                      static_cast<double>(when));
        }
      });
    }
    queue.schedule_every(50, [&queue] {
      if (auto* tr = iecd::trace::recorder()) {
        tr->counter("test", "tick", "scenario", queue.now(), 1.0);
      }
    });
    queue.run_until(500);
    return iecd::trace::to_chrome_trace(rec);
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(EventQueueCompactionTest, CancelHeavyWorkloadKeepsHeapBounded) {
  // Regression for unbounded lazy-removal growth: schedule/cancel churn far
  // exceeding the live set must not grow the pending heap without bound.
  EventQueue queue;
  const auto keeper = queue.schedule_at(1'000'000, [] {});
  (void)keeper;
  constexpr int kChurn = 100'000;
  std::size_t max_heap = 0;
  for (int i = 0; i < kChurn; ++i) {
    const auto id = queue.schedule_at(1'000 + i, [] {});
    ASSERT_TRUE(queue.cancel(id));
    max_heap = std::max(max_heap, queue.heap_size());
  }
  // One live event + churn: the compaction threshold keeps the heap at
  // O(live + constant), nowhere near the 100k cancelled entries.
  EXPECT_LT(max_heap, 300u);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.run_all(), 1u);
}

TEST(EventQueueCompactionTest, StaleEntriesDoNotResurrect) {
  // Slot reuse after cancellation must never fire the old callback
  // (generation tags), even under heavy recycling.
  EventQueue queue;
  int fired_old = 0;
  int fired_new = 0;
  for (int round = 0; round < 1'000; ++round) {
    const auto id =
        queue.schedule_at(queue.now() + 10, [&fired_old] { ++fired_old; });
    ASSERT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));  // double-cancel reports false
    queue.schedule_at(queue.now() + 10, [&fired_new] { ++fired_new; });
    queue.run_all();
  }
  EXPECT_EQ(fired_old, 0);
  EXPECT_EQ(fired_new, 1'000);
}

}  // namespace
