/// \file pil_session.hpp
/// Orchestrates a complete processor-in-the-loop run: the development
/// board (simulated MCU running the generated PIL code variant) and the
/// simulator PC (plant model) share one co-simulation world, connected by
/// the byte-timed RS232 link.  Produces the report the paper attributes to
/// this phase: round-trip/communication overhead, controller execution
/// times, response times, jitter, memory and stack.
#pragma once

#include <memory>
#include <string>

#include "beans/serial_bean.hpp"
#include "codegen/signal_buffer.hpp"
#include "pil/host_endpoint.hpp"
#include "pil/target_agent.hpp"
#include "rt/runtime.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"
#include "trace/metrics.hpp"

namespace iecd::pil {

struct PilReport {
  /// Unified metrics view ("pil.*" names) — populated by PilSession::run()
  /// as the source the scalar mirrors below are read back from.
  trace::MetricsRegistry metrics;

  std::uint64_t exchanges = 0;
  std::uint64_t frames_processed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t crc_errors = 0;
  util::SampleSeries round_trip_us;
  double comm_time_per_step_us = 0.0;  ///< wire time of one exchange
  double comm_overhead_ratio = 0.0;    ///< wire time / control period
  double controller_exec_us_mean = 0.0;
  double controller_exec_us_max = 0.0;
  std::uint32_t observed_stack_bytes = 0;

  /// Records the observed stack in both the registry and the mirror field.
  void set_observed_stack_bytes(std::uint32_t bytes);

  std::string to_string() const;
};

class PilSession {
 public:
  enum class LinkKind {
    kRs232,  ///< asynchronous serial (the paper's interface of choice)
    kSpi,    ///< synchronous serial (the paper's future-work extension)
  };

  struct Options {
    double period_s = 0.001;
    double duration_s = 1.0;
    std::uint32_t baud = 115200;  ///< bit clock (SPI: SCK frequency)
    LinkKind link = LinkKind::kRs232;
    /// Control steps per exchanged frame (see HostEndpoint::Options::batch);
    /// 1 keeps the classic per-period exchange bit-identical.
    int batch = 1;
    /// Timeout/retransmit recovery (see HostEndpoint::Recovery); disabled
    /// by default, which keeps the session bit-identical to the
    /// pre-recovery protocol.
    HostEndpoint::Recovery recovery;
  };

  /// \p runtime must wrap the PIL variant of the application; \p serial is
  /// the board's serial bean (already bound); \p buffer the PIL signal
  /// buffer the generator registered slots in.
  PilSession(sim::World& world, rt::Runtime& runtime,
             beans::SerialBean& serial, codegen::SignalBuffer& buffer,
             Options options);

  /// Plant coupling (see HostEndpoint::set_plant).
  void set_plant(std::function<std::vector<double>()> sample,
                 std::function<void(const std::vector<double>&)> apply,
                 std::function<void(double)> advance);

  /// Allocation-free plant coupling (see HostEndpoint::set_plant_buffered).
  void set_plant_buffered(
      std::function<void(std::vector<double>&)> sample_into,
      std::function<void(const std::vector<double>&)> apply,
      std::function<void(double)> advance);

  /// Online observability: per-exchange round-trip TimingMonitor
  /// ("pil.exchange", deadline = the exchange interval), board UART TX
  /// FIFO watermark, and flight-recorder counter triggers for frame
  /// resyncs (decoder CRC rescans), UART overruns and late actuator
  /// frames.  Arms \p hub's poll on the world at the exchange interval.
  /// Passive; call before run().  Null detaches.
  void set_monitors(obs::MonitorHub* hub);

  /// Runs the co-simulation and collects the report.
  PilReport run();

  HostEndpoint& host() { return *host_; }
  TargetAgent& agent() { return *agent_; }
  sim::SerialLink& link() { return *link_; }

 private:
  sim::World& world_;
  rt::Runtime& runtime_;
  Options options_;
  std::string rx_profile_key_;
  std::unique_ptr<sim::SerialLink> link_;
  std::unique_ptr<TargetAgent> agent_;
  std::unique_ptr<HostEndpoint> host_;
  beans::SerialBean* serial_ = nullptr;
  obs::MonitorHub* monitors_ = nullptr;
};

}  // namespace iecd::pil
