file(REMOVE_RECURSE
  "libiecd_rt.a"
)
