file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_pil_comm.dir/bench_e3_pil_comm.cpp.o"
  "CMakeFiles/bench_e3_pil_comm.dir/bench_e3_pil_comm.cpp.o.d"
  "bench_e3_pil_comm"
  "bench_e3_pil_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_pil_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
