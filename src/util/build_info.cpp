#include "util/build_info.hpp"

namespace iecd::util {

namespace {

#ifndef IECD_GIT_SHA
#define IECD_GIT_SHA "unknown"
#endif
#ifndef IECD_CXX_FLAGS
#define IECD_CXX_FLAGS ""
#endif
#ifndef IECD_BUILD_TYPE
#define IECD_BUILD_TYPE "unknown"
#endif

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{IECD_GIT_SHA, compiler_id(), IECD_CXX_FLAGS,
                              IECD_BUILD_TYPE};
  return info;
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  return "{\"git_sha\":\"" + escape(b.git_sha) + "\",\"compiler\":\"" +
         escape(b.compiler) + "\",\"flags\":\"" + escape(b.flags) +
         "\",\"build_type\":\"" + escape(b.build_type) + "\"}";
}

}  // namespace iecd::util
