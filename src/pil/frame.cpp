#include "pil/frame.hpp"

#include <array>
#include <cstring>

#include "util/crc16.hpp"

namespace iecd::pil {

void encode_frame_into(FrameType type, std::uint8_t seq,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  out.reserve(base + payload.size() + 6);
  out.push_back(kSyncByte);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(seq);
  out.push_back(static_cast<std::uint8_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  // CRC over type..payload.
  const std::uint16_t crc = util::crc16_ccitt(std::span<const std::uint8_t>(
      out.data() + base + 1, out.size() - base - 1));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc & 0xFF));
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame_into(frame.type, frame.seq, frame.payload, out);
  return out;
}

void encode_signals_into(std::span<const double> values,
                         std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + values.size() * 4);
  for (double v : values) {
    const float f = static_cast<float>(v);
    std::uint8_t bytes[4];
    std::memcpy(bytes, &f, 4);
    out.insert(out.end(), bytes, bytes + 4);
  }
}

std::vector<std::uint8_t> encode_signals(const std::vector<double>& values) {
  std::vector<std::uint8_t> out;
  encode_signals_into(values, out);
  return out;
}

void decode_signals_into(std::span<const std::uint8_t> payload,
                         std::vector<double>& out) {
  out.reserve(out.size() + payload.size() / 4);
  for (std::size_t i = 0; i + 4 <= payload.size(); i += 4) {
    float f;
    std::memcpy(&f, payload.data() + i, 4);
    out.push_back(static_cast<double>(f));
  }
}

std::vector<double> decode_signals(const std::vector<std::uint8_t>& payload) {
  std::vector<double> out;
  decode_signals_into(payload, out);
  return out;
}

FrameDecoder::FrameDecoder() { current_.payload.reserve(256); }

void FrameDecoder::set_callback(std::function<void(const Frame&)> on_frame) {
  on_frame_ = std::move(on_frame);
}

void FrameDecoder::reset_frame() {
  state_ = State::kSync;
  current_.payload.clear();  // keeps capacity: no churn between frames
  expected_len_ = 0;
  run_crc_ = 0xFFFF;
  raw_size_ = 0;
}

void FrameDecoder::reset() {
  reset_frame();
  last_frame_time_ = 0;
  cursor_time_ = 0;
}

bool FrameDecoder::feed(std::uint8_t byte) { return feed_one(byte) > 0; }

std::size_t FrameDecoder::feed(std::span<const std::uint8_t> data) {
  std::size_t completed = 0;
  for (std::uint8_t b : data) completed += feed_one(b);
  return completed;
}

std::size_t FrameDecoder::feed_burst(std::span<const std::uint8_t> data,
                                     sim::SimTime first_done,
                                     sim::SimTime byte_time) {
  std::size_t completed = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cursor_time_ = first_done + byte_time * static_cast<sim::SimTime>(i);
    completed += feed_one(data[i]);
  }
  return completed;
}

std::size_t FrameDecoder::feed_one(std::uint8_t byte) {
  if (raw_size_ < kMaxRaw) raw_[raw_size_++] = byte;
  switch (state_) {
    case State::kSync:
      if (byte == kSyncByte) {
        state_ = State::kType;
      } else {
        raw_size_ = 0;  // bytes before sync can never start a frame
      }
      return 0;
    case State::kType:
      current_.type = static_cast<FrameType>(byte);
      run_crc_ = util::crc16_ccitt_update(run_crc_, byte);
      state_ = State::kSeq;
      return 0;
    case State::kSeq:
      current_.seq = byte;
      run_crc_ = util::crc16_ccitt_update(run_crc_, byte);
      state_ = State::kLen;
      return 0;
    case State::kLen:
      expected_len_ = byte;
      run_crc_ = util::crc16_ccitt_update(run_crc_, byte);
      current_.payload.clear();
      state_ = expected_len_ ? State::kPayload : State::kCrcHi;
      return 0;
    case State::kPayload:
      current_.payload.push_back(byte);
      run_crc_ = util::crc16_ccitt_update(run_crc_, byte);
      if (current_.payload.size() == expected_len_) state_ = State::kCrcHi;
      return 0;
    case State::kCrcHi:
      rx_crc_ = static_cast<std::uint16_t>(byte << 8);
      state_ = State::kCrcLo;
      return 0;
    case State::kCrcLo: {
      rx_crc_ = static_cast<std::uint16_t>(rx_crc_ | byte);
      if (run_crc_ == rx_crc_) {
        ++frames_ok_;
        last_frame_time_ = cursor_time_;
        if (on_frame_) on_frame_(current_);
        reset_frame();
        return 1;
      }
      ++crc_errors_;
      // Resynchronize: a real frame may start inside the bytes the failed
      // attempt swallowed.  Replay everything after the leading sync byte;
      // nested failures replay strict suffixes, so this terminates.
      std::array<std::uint8_t, kMaxRaw> replay;
      const std::size_t n = raw_size_ > 0 ? raw_size_ - 1 : 0;
      std::memcpy(replay.data(), raw_ + 1, n);
      reset_frame();
      std::size_t completed = 1;
      for (std::size_t i = 0; i < n; ++i) completed += feed_one(replay[i]);
      return completed;
    }
  }
  return 0;
}

}  // namespace iecd::pil
