/// \file cpu.hpp
/// The CPU execution engine: serializes ISR bodies and the background task
/// on the simulated core, charging cycle costs against simulated time.
/// Non-preemptive by construction — one activity occupies the core at a
/// time, interrupts raised meanwhile stay pending in the controller.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "mcu/clock.hpp"
#include "mcu/cost_model.hpp"
#include "mcu/interrupt_controller.hpp"
#include "sim/event_queue.hpp"

namespace iecd::mcu {

/// One retired ISR dispatch, for profilers.
struct DispatchRecord {
  IrqVector vec = -1;
  std::string_view name;
  sim::SimTime raise_time = 0;   ///< when the interrupt was raised
  sim::SimTime start_time = 0;   ///< when the CPU began serving it
  sim::SimTime end_time = 0;     ///< when the ISR retired (commit applied)
  std::uint64_t body_cycles = 0; ///< cycles of the handler body alone
};

class Cpu {
 public:
  Cpu(sim::EventQueue& queue, const Clock& clock, const CostModel& costs,
      InterruptController& intc);

  /// Notifies the CPU that an interrupt may be pending; dispatches if idle.
  void kick();

  bool busy() const { return busy_; }

  /// Installs an optional background (main-loop) task executed while no
  /// interrupt is pending.  The callable performs one chunk of work and
  /// returns its cycle cost; returning 0 idles the CPU until the next kick.
  void set_background(std::function<std::uint64_t()> chunk);

  /// Observer invoked after every retired ISR.
  void set_dispatch_observer(std::function<void(const DispatchRecord&)> obs);

  /// Fault-injection hook (see src/fault/): extra cycles added to a
  /// dispatch on top of entry + body + exit — an interrupt-latency spike
  /// (cache refill, flash wait states, a higher-priority blackout the model
  /// does not represent).  Consulted once per dispatch, after the body ran;
  /// null (the default) or a hook returning 0 leaves timing untouched.
  void set_dispatch_fault(
      std::function<std::uint64_t(const DispatchRecord&)> fault);

  /// Total cycles the core spent executing (ISR bodies + entry/exit +
  /// background) — utilisation = busy_time / elapsed.
  sim::SimTime busy_time() const { return busy_time_; }
  std::uint64_t dispatches() const { return dispatches_; }

  /// Worst-case observed stack depth: main stack + deepest handler frame.
  std::uint32_t max_stack_bytes() const { return max_stack_; }
  void set_main_stack_bytes(std::uint32_t bytes);

  const CostModel& costs() const { return costs_; }
  const Clock& clock() const { return clock_; }

  void reset();

 private:
  void dispatch_next();
  void run_background();

  sim::EventQueue& queue_;
  const Clock& clock_;
  CostModel costs_;
  InterruptController& intc_;

  bool busy_ = false;
  std::function<std::uint64_t()> background_;
  std::function<void(const DispatchRecord&)> observer_;
  std::function<std::uint64_t(const DispatchRecord&)> dispatch_fault_;
  sim::SimTime busy_time_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint32_t main_stack_ = 128;
  std::uint32_t max_stack_ = 128;
};

}  // namespace iecd::mcu
