/// \file metrics.hpp
/// Control-quality metrics computed from simulation logs: step-response
/// figures (rise time, overshoot, settling time, steady-state error) and
/// integral cost criteria (IAE / ISE / ITAE).  These are the quantities the
/// development cycle tracks from MIL through PIL to HIL, and the y-axes of
/// the reproduced experiments.
#pragma once

#include "model/logging.hpp"

namespace iecd::model {

struct StepMetrics {
  double rise_time = 0.0;        ///< 10% -> 90% of the step [s]
  double overshoot_percent = 0;  ///< peak above final, % of step size
  double settling_time = 0.0;    ///< last entry into the +-2% band [s]
  double steady_state_error = 0; ///< |reference - mean(final 10%)|
  double peak_value = 0.0;
  bool settled = false;          ///< response stayed in the band at the end
};

/// Analyzes \p response to a step from \p initial to \p reference applied
/// at \p step_time.
StepMetrics analyze_step(const SampleLog& response, double reference,
                         double step_time = 0.0, double initial = 0.0,
                         double band = 0.02);

/// Integral of |reference(t) - response(t)| dt over the log span
/// (trapezoidal, reference piecewise constant).
double integral_absolute_error(const SampleLog& response,
                               const SampleLog& reference);
double integral_absolute_error(const SampleLog& response, double reference);

/// Integral of squared error.
double integral_squared_error(const SampleLog& response, double reference);

/// Time-weighted IAE (penalizes slow convergence).
double integral_time_absolute_error(const SampleLog& response,
                                    double reference);

}  // namespace iecd::model
