#include "periph/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iecd::periph {

AdcPeripheral::AdcPeripheral(mcu::Mcu& mcu, AdcConfig config, std::string name)
    : Peripheral(mcu, std::move(name)),
      config_(config),
      sources_(static_cast<std::size_t>(config.channels)),
      results_(static_cast<std::size_t>(config.channels), 0) {
  if (config.resolution_bits < 1 || config.resolution_bits > 16) {
    throw std::invalid_argument("AdcPeripheral: resolution 1..16 bits");
  }
  if (config.channels < 1) {
    throw std::invalid_argument("AdcPeripheral: needs >= 1 channel");
  }
  if (!(config.vref_high > config.vref_low)) {
    throw std::invalid_argument("AdcPeripheral: vref_high <= vref_low");
  }
}

void AdcPeripheral::set_analog_source(
    int channel, std::function<double(sim::SimTime)> fn) {
  sources_.at(static_cast<std::size_t>(channel)) = std::move(fn);
}

std::uint32_t AdcPeripheral::volts_to_code(double volts) const {
  const double span = config_.vref_high - config_.vref_low;
  const double norm = (volts - config_.vref_low) / span;
  const double scaled = norm * static_cast<double>(max_code());
  const double clamped =
      std::clamp(scaled, 0.0, static_cast<double>(max_code()));
  return static_cast<std::uint32_t>(std::lround(clamped));
}

double AdcPeripheral::code_to_volts(std::uint32_t code) const {
  const double span = config_.vref_high - config_.vref_low;
  return config_.vref_low +
         span * static_cast<double>(code) / static_cast<double>(max_code());
}

bool AdcPeripheral::start_conversion(int channel) {
  if (busy_) return false;
  if (channel < 0 || channel >= config_.channels) {
    throw std::out_of_range("AdcPeripheral: channel out of range");
  }
  busy_ = true;
  // Sample-and-hold: the analog value is captured at conversion start.
  const auto& src = sources_[static_cast<std::size_t>(channel)];
  const double volts = src ? src(now()) : config_.vref_low;
  queue().schedule_in(config_.conversion_time,
                      [this, channel, volts] { finish_conversion(channel, volts); });
  return true;
}

void AdcPeripheral::finish_conversion(int channel, double sampled_volts) {
  results_[static_cast<std::size_t>(channel)] =
      apply_fault(channel, volts_to_code(sampled_volts));
  busy_ = false;
  ++completed_;
  if (config_.eoc_vector >= 0) mcu().raise_irq(config_.eoc_vector);
  if (config_.continuous) start_conversion(channel);
}

std::uint32_t AdcPeripheral::sample_now(int channel) {
  if (channel < 0 || channel >= config_.channels) {
    throw std::out_of_range("AdcPeripheral: channel out of range");
  }
  const auto& src = sources_[static_cast<std::size_t>(channel)];
  const double volts = src ? src(now()) : config_.vref_low;
  results_[static_cast<std::size_t>(channel)] =
      apply_fault(channel, volts_to_code(volts));
  ++completed_;
  return results_[static_cast<std::size_t>(channel)];
}

std::uint32_t AdcPeripheral::result(int channel) const {
  return results_.at(static_cast<std::size_t>(channel));
}

void AdcPeripheral::reset() {
  busy_ = false;
  completed_ = 0;
  std::fill(results_.begin(), results_.end(), 0u);
}

}  // namespace iecd::periph
