#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"

namespace iecd::sim {

namespace {

// Compaction kicks in once at least kCompactMin stale entries accumulate
// AND they make up at least half the heap; this keeps the heap O(live)
// for cancel-heavy workloads (watchdog kicks) with amortized O(1) cost.
constexpr std::size_t kCompactMin = 64;

constexpr std::uint64_t kSlotMask = 0xffff'ffffull;

}  // namespace

EventId EventQueue::arm(SimTime when, SimTime period, Callback&& fn) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue: empty action");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slot_count_ > kSlotIndexMask) {
      throw std::length_error("EventQueue: too many concurrent events");
    }
    if ((slot_count_ >> kSlotChunkShift) == chunks_.size()) {
      chunks_.emplace_back(new Slot[std::size_t{1} << kSlotChunkShift]);
    }
    slot = slot_count_++;
  }
  Slot& s = slot_at(slot);
  s.fn = std::move(fn);
  s.period = period;
  s.live = true;
  s.in_flight = false;
  ++live_count_;
  push_occurrence(when, slot);
  return (static_cast<EventId>(s.gen) << 32) | (slot + 1);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    std::size_t child = (i << 2) + 1;
    if (child >= n) break;
    const std::size_t end = std::min(child + 4, n);
    std::size_t best = child;
    for (std::size_t c = child + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_root() const {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
}

void EventQueue::push_occurrence(SimTime when, std::uint32_t slot) {
  if (next_seq_ >= kMaxSeq) renumber_seqs();
  ++scheduled_total_;
  const std::uint64_t key = (next_seq_++ << kSlotIndexBits) | slot;
  slot_at(slot).pending_key = key;
  heap_.push_back(HeapEntry{when, key});
  sift_up(heap_.size() - 1);
}

void EventQueue::heapify() {
  if (heap_.size() > 1) {
    for (std::size_t i = ((heap_.size() - 2) >> 2) + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

void EventQueue::renumber_seqs() {
  // Reached only after ~2^40 arms on one queue: compress the insertion
  // ranks (dropping stale entries first) so the packed key never
  // overflows.  Relative key order is preserved, hence so is FIFO.
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return !entry_live(e);
                             }),
              heap_.end());
  stale_in_heap_ = 0;
  std::sort(heap_.begin(), heap_.end(),
            [](const HeapEntry& a, const HeapEntry& b) {
              return a.key < b.key;
            });
  next_seq_ = 1;
  for (auto& e : heap_) {
    const std::uint32_t slot = e.slot();
    e.key = (next_seq_++ << kSlotIndexBits) | slot;
    slot_at(slot).pending_key = e.key;
  }
  heapify();
}

EventId EventQueue::schedule_at(SimTime when, Callback fn) {
  return arm(when, 0, std::move(fn));
}

EventId EventQueue::schedule_in(SimTime delay, Callback fn) {
  return arm(now_ + delay, 0, std::move(fn));
}

EventId EventQueue::schedule_every(SimTime first_delay, SimTime period,
                                   Callback fn) {
  if (period <= 0) {
    throw std::invalid_argument("EventQueue: recurring period must be > 0");
  }
  return arm(now_ + first_delay, period, std::move(fn));
}

EventId EventQueue::schedule_every(SimTime period, Callback fn) {
  return schedule_every(period, period, std::move(fn));
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slot_at(slot);
  s.fn = nullptr;  // release captures (and any heap spill) eagerly
  s.period = 0;
  s.pending_key = 0;
  s.live = false;
  s.in_flight = false;
  ++s.gen;
  free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t low = id & kSlotMask;
  if (low == 0 || low > slot_count_) return false;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  Slot& s = slot_at(slot);
  if (!s.live || s.gen != static_cast<std::uint32_t>(id >> 32)) return false;
  --live_count_;
  if (s.in_flight) {
    // Cancelled from inside its own callback: the occurrence was already
    // popped, so there is no stale heap entry; step() reclaims the slot
    // once the callback returns.
    s.live = false;
    return true;
  }
  release_slot(slot);
  ++stale_in_heap_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (stale_in_heap_ < kCompactMin || stale_in_heap_ * 2 < heap_.size()) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return !entry_live(e);
                             }),
              heap_.end());
  stale_in_heap_ = 0;
  heapify();
}

void EventQueue::prune_stale_top() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    pop_root();
    --stale_in_heap_;
  }
}

SimTime EventQueue::next_time() const {
  prune_stale_top();
  return heap_.empty() ? kNever : heap_.front().when;
}

bool EventQueue::step() {
  prune_stale_top();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  pop_root();
  now_ = top.when;
  const std::uint32_t slot = top.slot();
  Slot& s = slot_at(slot);
  // Execute in place: chunk addresses are stable, so reentrant scheduling
  // (even slab growth) cannot move the callback under us.  The slot is
  // marked dead first so cancel() from inside the callback reports
  // "already ran" for one-shots and stops the recurrence for periodics.
  const bool recurring = s.period > 0;
  ++executed_total_;
  s.pending_key = 0;
  s.in_flight = true;
  if (!recurring) {
    s.live = false;
    --live_count_;
  }
  if (auto* tr = trace::recorder()) {
    const auto seq = static_cast<double>(top.key >> kSlotIndexBits);
    tr->span_begin("sim", "dispatch", "event_queue", now_, seq);
    s.fn();
    tr->span_end("sim", "dispatch", "event_queue", now_, seq);
  } else {
    s.fn();
  }
  s.in_flight = false;
  if (recurring && s.live) {
    push_occurrence(now_ + s.period, slot);
  } else {
    release_slot(slot);
  }
  return true;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  for (;;) {
    prune_stale_top();
    if (heap_.empty() || heap_.front().when > until) break;
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace iecd::sim
