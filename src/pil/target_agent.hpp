/// \file target_agent.hpp
/// Board-side PIL support (the special code variant of paper Section 6):
/// the serial RX interrupt assembles sensor frames; a complete frame
/// deposits the values into the controller's communication buffer and runs
/// the model step in place of the timer/peripheral interrupts; the
/// controller outputs return to the simulator in the response frame.
///
/// Fast path: the agent decodes into and encodes from session-lifetime
/// scratch buffers (no heap traffic per frame) and pushes the whole
/// response frame onto the wire as one burst.  A batched sensor frame
/// (host batch > 1) carries N stacked input groups; the agent infers N
/// from the buffer's input count and runs the controller step once per
/// group, back-dating each step's context time by one control period.
#pragma once

#include <vector>

#include "beans/serial_bean.hpp"
#include "codegen/signal_buffer.hpp"
#include "pil/frame.hpp"
#include "rt/runtime.hpp"

namespace iecd::pil {

class TargetAgent {
 public:
  TargetAgent(rt::Runtime& runtime, beans::SerialBean& serial,
              codegen::SignalBuffer& buffer);

  /// Installs the OnRxChar handler.  The runtime must be started (PIL
  /// variant: its periodic task is not timer-driven).
  void start();

  std::uint64_t frames_processed() const { return frames_processed_; }
  std::uint64_t crc_errors() const { return decoder_.crc_errors(); }

 private:
  rt::Runtime& runtime_;
  beans::SerialBean& serial_;
  codegen::SignalBuffer& buffer_;
  FrameDecoder decoder_;
  bool respond_ = false;
  std::uint8_t respond_seq_ = 0;
  std::uint64_t frames_processed_ = 0;
  std::uint64_t per_byte_cycles_ = 40;

  /// Session-lifetime scratch: reused every frame.
  std::vector<double> inputs_scratch_;
  std::vector<std::uint8_t> tx_payload_;
  std::vector<std::uint8_t> tx_bytes_;
};

}  // namespace iecd::pil
