# Empty compiler generated dependencies file for bench_e1_bean_inspector.
# This may be replaced when dependencies are built.
