#include "pil/target_agent.hpp"

#include <span>

namespace iecd::pil {

TargetAgent::TargetAgent(rt::Runtime& runtime, beans::SerialBean& serial,
                         codegen::SignalBuffer& buffer)
    : runtime_(runtime), serial_(serial), buffer_(buffer) {
  decoder_.set_callback([this](const Frame& frame) {
    if (frame.type != FrameType::kSensorData) return;
    if (have_last_seq_ && frame.seq == last_seq_) {
      // Host retransmission of the frame just processed (recovery after a
      // lost response): answer from the cache — tx_payload_ still holds
      // the response encoded for the original — without re-stepping the
      // controller, which would double-integrate the PI state.  Clean
      // runs never repeat a sequence number back to back.
      duplicate_ = true;
      respond_ = true;
      respond_seq_ = frame.seq;
      ++duplicate_frames_;
      return;
    }
    inputs_scratch_.clear();
    decode_signals_into(frame.payload, inputs_scratch_);
    duplicate_ = false;
    respond_ = true;
    respond_seq_ = frame.seq;
    last_seq_ = frame.seq;
    have_last_seq_ = true;
  });
}

void TargetAgent::start() {
  mcu::IsrHandler handler;
  handler.name = "pil_rx";
  handler.stack_bytes = 192;
  handler.body = [this]() -> std::uint64_t {
    std::uint64_t cycles = per_byte_cycles_;
    const auto byte = serial_.RecvChar();
    if (!byte) return cycles;
    respond_ = false;
    decoder_.feed(*byte);
    if (respond_ && duplicate_) {
      // Cached replay: no controller step, no fresh encode — only the
      // seq-compare cost, folded into the per-byte budget.
      return cycles;
    }
    if (respond_) {
      // The completed sensor frame stands in for the sampling interrupt:
      // run the controller step inside this ISR (reads from the buffer,
      // computes, writes back to the buffer).  A batched frame carries
      // several stacked input groups — one step per group, each step's
      // context time one period earlier than the next.
      const std::size_t in_count = buffer_.input_count();
      std::size_t groups = 1;
      if (in_count > 0 && !inputs_scratch_.empty() &&
          inputs_scratch_.size() % in_count == 0) {
        groups = inputs_scratch_.size() / in_count;
      }
      tx_payload_.clear();
      const std::span<const double> all(inputs_scratch_);
      for (std::size_t k = 0; k < groups; ++k) {
        if (groups == 1) {
          buffer_.set_inputs(all);
        } else {
          buffer_.set_inputs(all.subspan(k * in_count, in_count));
        }
        model::SimContext ctx;
        ctx.t = runtime_.now_seconds() -
                static_cast<double>(groups - 1 - k) * runtime_.period_s();
        ctx.dt = runtime_.period_s();
        runtime_.step_once(ctx);
        encode_signals_into(buffer_.output_values(), tx_payload_);
        cycles += runtime_.step_cycles() + runtime_.draw_overrun_cycles();
      }
      ++frames_processed_;
    }
    return cycles;
  };
  handler.commit = [this] {
    if (!respond_) return;
    // Response leaves the board when the ISR retires, as one wire burst.
    tx_bytes_.clear();
    encode_frame_into(FrameType::kActuatorData, respond_seq_, tx_payload_,
                      tx_bytes_);
    std::size_t len = tx_bytes_.size();
    if (tx_fault_hook_) {
      const std::size_t clipped = tx_fault_hook_(len);
      if (clipped < len) len = clipped;
    }
    serial_.SendBlock(tx_bytes_.data(), len);
    respond_ = false;
  };
  serial_.set_event_handler("OnRxChar", std::move(handler));
}

}  // namespace iecd::pil
