#include "beans/quad_dec_bean.hpp"

#include "util/strings.hpp"

namespace iecd::beans {

QuadDecBean::QuadDecBean(std::string name) : Bean(std::move(name), "QuadDec") {
  properties().declare(PropertySpec::integer(
      "encoder_lines", 100, 1, 100000,
      "encoder lines per revolution (counts = 4x)"));
  properties().declare(PropertySpec::boolean(
      "clear_on_index", false, "zero the position at the index pulse"));
  properties().declare(PropertySpec::boolean(
      "index_interrupt", false, "raise OnIndex at the index pulse"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 5, 0, 15, "OnIndex priority"));
}

std::vector<MethodSpec> QuadDecBean::methods() const {
  return {
      {"GetPosition", "byte %M_GetPosition(int *Position)",
       "read the 16-bit position register"},
      {"ResetPosition", "byte %M_ResetPosition(void)", "zero the position"},
  };
}

std::vector<EventSpec> QuadDecBean::events() const {
  return {{"OnIndex", "index (revolution) pulse"}};
}

ResourceDemand QuadDecBean::demand() const {
  ResourceDemand d;
  d.quadrature_decoders = 1;
  return d;
}

void QuadDecBean::validate(const mcu::DerivativeSpec& cpu,
                           util::DiagnosticList& diagnostics) {
  if (cpu.quadrature_decoders <= 0) {
    diagnostics.error(
        name(),
        util::format("%s has no quadrature decoder module; use software "
                     "decoding on timer inputs or select another derivative",
                     cpu.name.c_str()));
  }
}

void QuadDecBean::bind(BindContext& ctx) {
  periph::QuadDecConfig cfg;
  cfg.clear_on_index = properties().get_bool("clear_on_index");
  if (properties().get_bool("index_interrupt")) {
    cfg.index_vector = register_event(
        ctx, "OnIndex",
        static_cast<int>(properties().get_int("interrupt_priority")));
  }
  qdec_ = std::make_unique<periph::QuadDecPeripheral>(ctx.mcu, cfg, name());
  mark_bound();
}

std::int16_t QuadDecBean::GetPosition() const {
  return qdec_ ? qdec_->position() : 0;
}

std::int64_t QuadDecBean::GetExtendedPosition() const {
  return qdec_ ? qdec_->extended_position() : 0;
}

void QuadDecBean::ResetPosition() {
  if (qdec_) qdec_->zero();
}

DriverSource QuadDecBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  if (method_enabled("GetPosition")) {
    c += "byte " + name() +
         "_GetPosition(int *Position) {\n"
         "  *Position = (int)QDEC_POSD;\n  return ERR_OK;\n}\n";
  }
  if (method_enabled("ResetPosition")) {
    c += "byte " + name() +
         "_ResetPosition(void) { QDEC_POSD = 0; return ERR_OK; }\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
