/// \file time.hpp
/// Simulated time.  All timing in the co-simulation world — MCU cycles,
/// peripheral events, serial bytes, plant integration — is expressed as
/// signed 64-bit nanoseconds, giving ±292 years of range at 1 ns resolution.
#pragma once

#include <cmath>
#include <cstdint>

namespace iecd::sim {

/// Simulated time / duration in nanoseconds.
using SimTime = std::int64_t;

/// Sentinel for "no scheduled occurrence".
inline constexpr SimTime kNever = INT64_MAX;

inline constexpr SimTime nanoseconds(std::int64_t n) { return n; }
inline constexpr SimTime microseconds(std::int64_t u) { return u * 1000; }
inline constexpr SimTime milliseconds(std::int64_t m) {
  return m * 1'000'000;
}
inline constexpr SimTime seconds_i(std::int64_t s) { return s * 1'000'000'000; }

/// Converts fractional seconds to SimTime, rounding to nearest ns.
inline SimTime from_seconds(double s) {
  return static_cast<SimTime>(std::llround(s * 1e9));
}

inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}

inline constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) * 1e-6;
}

inline constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace iecd::sim
