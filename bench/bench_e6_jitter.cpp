// E6 (Section 1) — "Timing variations in sampling periods and latencies
// degrade the control performance and may in extreme cases lead to the
// instability."  The TrueTime-style experiment the paper motivates with:
// sweep (a) deterministic sampling jitter injected into the timer and
// (b) extra input-output latency charged to every control step, and watch
// the control cost (IAE) grow until the loop falls apart.
//
// Timing figures come from the online obs::TimingMonitor attached to each
// run (jitter / response histograms + deadline-miss counts at dispatch
// retirement) instead of being reassembled post-hoc from retained sample
// vectors.  The monitors are passive, so IAE / jitter / miss values are
// identical to the pre-rebase snapshot (bench/trajectory/{pre,post}); each
// sweep point also cross-checks the histogram percentiles against the
// exact sorted-series reference the old code path used.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "obs/health_report.hpp"
#include "obs/monitor.hpp"

using namespace iecd;

namespace {

core::ServoConfig bench_config() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.8;
  // Push the crossover toward the Nyquist rate so timing perturbations
  // eat directly into the phase margin.
  cfg.kp = 0.012;
  cfg.ki = 0.5;
  cfg.speed_filter_taps = 4;
  return cfg;
}

int g_crosscheck_failures = 0;

/// Verifies the online histograms against the exact per-activation series
/// the profiler retains: counts match, max matches to float-path noise and
/// interpolated percentiles stay inside the histogram's error bound.
void crosscheck(const obs::TimingMonitor& mon,
                const core::ServoSystem::HilResult& hil) {
  const auto check = [](const char* what, bool ok) {
    if (!ok) {
      ++g_crosscheck_failures;
      std::printf("  CROSS-CHECK FAILED: %s\n", what);
    }
  };
  check("activation count", mon.exec_us().count() == hil.exec_us.count());
  check("exec max", std::fabs(mon.exec_us().max() - hil.exec_us.max()) <
                        1e-6 * (1.0 + hil.exec_us.max()));
  const double bound = 2.0 * mon.exec_us().relative_error_bound();
  for (double p : {50.0, 99.0}) {
    const double exact = hil.exec_us.percentile(p);
    check("exec percentile",
          std::fabs(mon.exec_us().percentile(p) - exact) <=
              bound * exact + 1e-9);
  }
}

/// Headline figures read straight off the monitor.
struct TimingFigures {
  double jitter_max_us = 0.0;  ///< max |interval - nominal period|
  double resp_max_us = 0.0;    ///< max (dispatch wait + execution)
  std::uint64_t misses = 0;    ///< activations with response > period
};

TimingFigures figures_from_monitor(const obs::MonitorHub& hub) {
  TimingFigures f;
  if (const obs::TimingMonitor* mon = hub.find_timing("servo_hil_step")) {
    f.jitter_max_us = mon->jitter_us().max();
    f.resp_max_us = mon->worst_response_us();
    f.misses = mon->deadline_misses();
  }
  return f;
}

void print_table() {
  std::printf("E6: control quality vs timing perturbations (1 kHz servo "
              "loop)\n\n");

  core::ServoSystem baseline(bench_config());
  obs::MonitorHub clean_hub;
  core::ServoSystem::HilOptions clean_opts;
  clean_opts.monitors = &clean_hub;
  const auto clean = baseline.run_hil(clean_opts);
  const auto clean_fig = figures_from_monitor(clean_hub);
  std::printf("clean loop: IAE %.3f, jitter %.2f us\n\n", clean.iae,
              clean.jitter_us);
  bench::summarize("e6.clean.iae", clean.iae);
  bench::summarize("e6.clean.jitter_max_us", clean_fig.jitter_max_us);
  bench::summarize("e6.clean.misses",
                   static_cast<double>(clean_fig.misses));

  std::printf("(a) sampling jitter sweep (alternating +/- offset per "
              "activation)\n\n");
  std::printf("%-12s | %-10s %-10s %-11s %-7s %-9s %-9s\n", "jitter[us]",
              "IAE", "IAE ratio", "jit max[us]", "miss", "over[%]",
              "settled");
  bench::print_rule(78);
  const std::int64_t amplitudes_us[] = {0, 100, 200, 300, 400, 450};
  for (auto amp : amplitudes_us) {
    core::ServoSystem servo(bench_config());
    obs::MonitorHub hub;
    core::ServoSystem::HilOptions opts;
    opts.monitors = &hub;
    if (amp > 0) {
      opts.timer_jitter = [amp](std::uint64_t k) {
        return (k % 2 == 0) ? sim::microseconds(amp)
                            : -sim::microseconds(amp);
      };
    }
    const auto hil = servo.run_hil(opts);
    const auto fig = figures_from_monitor(hub);
    if (const auto* mon = hub.find_timing("servo_hil_step")) {
      crosscheck(*mon, hil);
    }
    std::printf("%-12lld | %-10.3f %-10.2f %-11.1f %-7llu %-9.2f %s\n",
                static_cast<long long>(amp), hil.iae, hil.iae / clean.iae,
                fig.jitter_max_us,
                static_cast<unsigned long long>(fig.misses),
                hil.metrics.overshoot_percent,
                hil.metrics.settled ? "yes" : "NO");
    const std::string key = "e6.jitter.amp" + std::to_string(amp);
    bench::summarize(key + ".iae", hil.iae);
    bench::summarize(key + ".jitter_max_us", fig.jitter_max_us);
    bench::summarize(key + ".misses", static_cast<double>(fig.misses));
  }

  std::printf("\n(b) input-output latency sweep (busy cycles added to every "
              "step; 60 cycles = 1 us)\n\n");
  std::printf("%-14s | %-10s %-10s %-12s %-7s %-9s %-9s\n", "latency[us]",
              "IAE", "IAE ratio", "resp max[us]", "miss", "CPU[%]",
              "settled");
  bench::print_rule(80);
  const std::uint64_t latencies_us[] = {0, 100, 200, 400, 600, 800, 900};
  for (auto lat : latencies_us) {
    core::ServoSystem servo(bench_config());
    obs::MonitorHub hub;
    core::ServoSystem::HilOptions opts;
    opts.monitors = &hub;
    opts.extra_latency_cycles = lat * 60;  // 60 MHz core
    const auto hil = servo.run_hil(opts);
    const auto fig = figures_from_monitor(hub);
    if (const auto* mon = hub.find_timing("servo_hil_step")) {
      crosscheck(*mon, hil);
    }
    std::printf("%-14llu | %-10.3f %-10.2f %-12.1f %-7llu %-9.1f %s\n",
                static_cast<unsigned long long>(lat), hil.iae,
                hil.iae / clean.iae, fig.resp_max_us,
                static_cast<unsigned long long>(fig.misses),
                hil.cpu_utilisation * 100.0,
                hil.metrics.settled ? "yes" : "NO");
    const std::string key = "e6.latency.lat" + std::to_string(lat);
    bench::summarize(key + ".iae", hil.iae);
    bench::summarize(key + ".resp_max_us", fig.resp_max_us);
    bench::summarize(key + ".misses", static_cast<double>(fig.misses));
  }
  std::printf("\n(c) instability onset: slower sampling stacked with "
              "near-period latency\n\n");
  std::printf("%-24s | %-10s %-7s %-9s %-9s\n", "period + latency", "IAE",
              "miss", "over[%]", "settled");
  bench::print_rule(66);
  for (const double period_ms : {1.0, 2.0, 5.0}) {
    core::ServoConfig cfg = bench_config();
    cfg.period_s = period_ms * 1e-3;
    core::ServoSystem servo(cfg);
    obs::MonitorHub hub;
    core::ServoSystem::HilOptions opts;
    opts.monitors = &hub;
    // 90% of the period spent between sampling and actuation.
    opts.extra_latency_cycles =
        static_cast<std::uint64_t>(0.9 * cfg.period_s * 60e6);
    const auto hil = servo.run_hil(opts);
    const auto fig = figures_from_monitor(hub);
    std::printf("%4.0f ms + %4.1f ms        | %-10.3f %-7llu %-9.1f %s\n",
                period_ms, 0.9 * period_ms, hil.iae,
                static_cast<unsigned long long>(fig.misses),
                hil.metrics.overshoot_percent,
                hil.metrics.settled ? "yes" : "NO (lost the loop)");
    const std::string key =
        "e6.stack.p" + std::to_string(static_cast<int>(period_ms));
    bench::summarize(key + ".iae", hil.iae);
    bench::summarize(key + ".misses", static_cast<double>(fig.misses));
    bench::summarize(key + ".settled", hil.metrics.settled ? 1.0 : 0.0);
    // The harshest point leaves its full health report as an artifact.
    if (period_ms == 5.0) {
      hub.report("e6_stack_5ms").write_json("HEALTH_bench_e6_jitter.json");
    }
  }

  std::printf("\nexpected shape: monotone cost growth; stacking sampling "
              "delay and latency\neats the phase margin until the loop is "
              "lost (the paper's instability case).\n\n");
  if (g_crosscheck_failures > 0) {
    std::printf("WARNING: %d histogram/series cross-check(s) failed\n\n",
                g_crosscheck_failures);
  }
  bench::summarize("e6.crosscheck_failures",
                   static_cast<double>(g_crosscheck_failures));
}

void BM_HilWithJitter(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config());
    core::ServoSystem::HilOptions opts;
    opts.timer_jitter = [](std::uint64_t k) {
      return (k % 2 == 0) ? sim::microseconds(200)
                          : -sim::microseconds(200);
    };
    auto hil = servo.run_hil(opts);
    benchmark::DoNotOptimize(hil.iae);
  }
}
BENCHMARK(BM_HilWithJitter)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
