#include <gtest/gtest.h>

#include "beans/bean_project.hpp"
#include "beans/bit_io_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "codegen/generator.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "mcu/derivative.hpp"
#include "model/subsystem.hpp"
#include "rt/profiler.hpp"
#include "rt/runtime.hpp"
#include "sim/world.hpp"

namespace iecd::rt {
namespace {

TEST(Profiler, RecordsPerTaskStatistics) {
  Profiler profiler;
  mcu::DispatchRecord rec;
  rec.name = "taskA";
  for (int i = 0; i < 10; ++i) {
    rec.raise_time = sim::milliseconds(i);
    rec.start_time = rec.raise_time + sim::microseconds(5);
    rec.end_time = rec.start_time + sim::microseconds(50);
    profiler.record(rec);
  }
  const TaskProfile* p = profiler.task("taskA");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->activations, 10u);
  EXPECT_NEAR(p->exec_time_us.mean(), 50.0, 1e-9);
  EXPECT_NEAR(p->response_time_us.mean(), 5.0, 1e-9);
  EXPECT_NEAR(p->period_jitter_stddev_us(), 0.0, 1e-9);
  EXPECT_EQ(profiler.task("unknown"), nullptr);
}

TEST(Profiler, JitterMetricsDetectIrregularActivations) {
  Profiler profiler;
  mcu::DispatchRecord rec;
  rec.name = "t";
  // Periods: 1 ms, 1.2 ms, 0.8 ms, 1.2 ms ...
  sim::SimTime t = 0;
  for (int i = 0; i < 20; ++i) {
    t += (i % 2 == 0) ? sim::microseconds(1200) : sim::microseconds(800);
    rec.raise_time = rec.start_time = t;
    rec.end_time = t + sim::microseconds(10);
    profiler.record(rec);
  }
  const TaskProfile* p = profiler.task("t");
  EXPECT_NEAR(p->period_jitter_stddev_us(), 200.0, 15.0);
  EXPECT_NEAR(p->period_jitter_peak_us(0.001), 200.0, 1.0);
}

TEST(Profiler, ReportContainsTaskLines) {
  Profiler profiler;
  mcu::DispatchRecord rec;
  rec.name = "TI1.OnInterrupt";
  rec.end_time = sim::microseconds(40);
  profiler.record(rec);
  const std::string report = profiler.report(0.001);
  EXPECT_NE(report.find("TI1.OnInterrupt"), std::string::npos);
  EXPECT_NE(report.find("jitter"), std::string::npos);
}

/// Minimal runnable application for runtime tests: counter through a gain.
struct RtApp {
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
  model::Model top{"top"};
  model::Subsystem* sub;
  beans::BeanProject project{"p"};
  std::unique_ptr<core::ModelSync> sync;
  codegen::GeneratedApplication app;
  blocks::DiscreteIntegratorBlock* counter = nullptr;

  explicit RtApp(double period = 0.001) {
    sub = &top.add<model::Subsystem>("ctrl", 0, 0);
    sub->set_sample_time(model::SampleTime::discrete(period));
    sync = std::make_unique<core::ModelSync>(sub->inner(), project);
    sync->add_timer_int("TI1");
    auto& one = sub->inner().add<blocks::ConstantBlock>("one", 1.0);
    counter = &sub->inner().add<blocks::DiscreteIntegratorBlock>("cnt", 1.0);
    sub->inner().connect(one, 0, *counter, 0);
    sub->bind_ports({}, {});
    project.validate();
    codegen::Generator gen;
    app = gen.generate(*sub, project, {});
    project.validate();
    project.bind(mcu);
  }
};

TEST(Runtime, RequiresBoundProject) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  beans::BeanProject project("p");
  codegen::GeneratedApplication app;
  EXPECT_THROW(Runtime(mcu, project, app), std::logic_error);
}

TEST(Runtime, PeriodicTaskRunsAtConfiguredRate) {
  RtApp rig;
  Runtime runtime(rig.mcu, rig.project, rig.app);
  runtime.start();
  // Half a period of slack so the activation at t=100 ms fully retires.
  rig.world.run_for(sim::milliseconds(100) + sim::microseconds(500));
  EXPECT_EQ(runtime.periodic_activations(), 100u);
  // Forward-Euler integrator: the latched output trails the state by one
  // update, so after n activations it reads (n-1) * T.
  EXPECT_NEAR(rig.counter->out(0).as_double(), 0.001 * 99, 1e-6);
  const auto* prof = runtime.profiler().task(runtime.periodic_profile_key());
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(prof->activations, 100u);
  EXPECT_GT(prof->exec_time_us.mean(), 0.0);
}

TEST(Runtime, StepCyclesMatchAppEstimate) {
  RtApp rig;
  Runtime runtime(rig.mcu, rig.project, rig.app);
  EXPECT_EQ(runtime.step_cycles(),
            rig.app.task_cycles(0, rig.mcu.spec().costs));
  EXPECT_GT(runtime.step_cycles(), 0u);
  EXPECT_DOUBLE_EQ(runtime.period_s(), 0.001);
}

TEST(Runtime, ExecTimeMatchesCostModel) {
  RtApp rig;
  Runtime runtime(rig.mcu, rig.project, rig.app);
  runtime.start();
  rig.world.run_for(sim::milliseconds(10));
  const auto* prof = runtime.profiler().task(runtime.periodic_profile_key());
  ASSERT_NE(prof, nullptr);
  const auto cycles = runtime.step_cycles() + rig.mcu.spec().costs.isr_entry +
                      rig.mcu.spec().costs.isr_exit;
  const double expected_us =
      static_cast<double>(cycles) / rig.mcu.spec().clock_hz * 1e6;
  EXPECT_NEAR(prof->exec_time_us.mean(), expected_us, 0.05);
}

TEST(Runtime, PilVariantDoesNotEnableTimer) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  model::Model top("top");
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.001));
  beans::BeanProject project("p");
  core::ModelSync sync(sub.inner(), project);
  sync.add_timer_int("TI1");
  sub.bind_ports({}, {});
  project.validate();
  codegen::SignalBuffer buffer;
  codegen::GeneratorOptions opts;
  opts.pil = true;
  opts.pil_buffer = &buffer;
  codegen::Generator gen;
  auto app = gen.generate(sub, project, opts);
  project.validate();
  project.bind(mcu);
  Runtime runtime(mcu, project, app);
  runtime.start();
  world.run_for(sim::milliseconds(50));
  // PIL: the timer does not drive the step; nothing ran.
  EXPECT_EQ(runtime.periodic_activations(), 0u);
  // step_once still executes the task by hand.
  runtime.step_once(model::SimContext{0.0, 0.001, false});
  EXPECT_EQ(runtime.periodic_activations(), 1u);
}

TEST(Runtime, OverrunWhenStepExceedsPeriod) {
  // Inflate the task cost beyond the period: activations get lost and the
  // interrupt controller counts overruns.
  RtApp rig;
  rig.app.tasks[0].extra_cycles = 200000;  // ~3.3 ms at 60 MHz > 1 ms period
  Runtime runtime(rig.mcu, rig.project, rig.app);
  runtime.start();
  rig.world.run_for(sim::milliseconds(100));
  EXPECT_LT(runtime.periodic_activations(), 50u);
  EXPECT_GT(rig.mcu.intc().overruns(), 10u);
}

TEST(Runtime, EventTaskRunsOnBeanEvent) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  model::Model top("top");
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.001));
  beans::BeanProject project("p");
  core::ModelSync sync(sub.inner(), project);
  sync.add_timer_int("TI1");
  auto& key = sync.add_bit_io("Key");
  project.set_property("Key", "edge", std::string("rising"));
  auto& fc = sub.inner().add<model::FunctionCallSubsystem>("evt", 0, 0);
  fc.bind_ports({}, {});
  key.bind_event("OnInterrupt", fc);
  auto& src = sub.inner().add<blocks::ConstantBlock>("src", 0.0);
  sub.inner().connect(src, 0, key, 0);
  sub.bind_ports({}, {});
  project.validate();
  codegen::Generator gen;
  auto app = gen.generate(sub, project, {});
  project.validate();
  project.bind(mcu);
  Runtime runtime(mcu, project, app);
  runtime.start();

  auto* key_bean = dynamic_cast<beans::BitIoBean*>(project.find("Key"));
  world.queue().schedule_at(sim::milliseconds(5), [&] {
    key_bean->port()->drive_external(key_bean->pin(), true);
  });
  world.run_for(sim::milliseconds(20));
  EXPECT_EQ(fc.activations(), 1u);
  const auto* prof = runtime.profiler().task("Key.OnInterrupt");
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(prof->activations, 1u);
}

TEST(Runtime, MemoryReportCombinesEstimateAndObservation) {
  RtApp rig;
  Runtime runtime(rig.mcu, rig.project, rig.app);
  runtime.start();
  rig.world.run_for(sim::milliseconds(10));
  const std::string report = runtime.memory_report();
  EXPECT_NE(report.find("estimated"), std::string::npos);
  EXPECT_NE(report.find("observed"), std::string::npos);
  EXPECT_GT(rig.mcu.cpu().max_stack_bytes(), 128u);
}

TEST(Runtime, SamplingToActuationDelayVisible) {
  // The write phase commits at ISR end: a block driving a GPIO output via
  // a BitIo bean changes the pin only after the step's cycles elapsed.
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  model::Model top("top");
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.001));
  beans::BeanProject project("p");
  core::ModelSync sync(sub.inner(), project);
  sync.add_timer_int("TI1");
  auto& led = sync.add_bit_io("LED");
  project.set_property("LED", "direction", std::string("output"));
  auto& one = sub.inner().add<blocks::ConstantBlock>("one", 1.0);
  sub.inner().connect(one, 0, led, 0);
  sub.bind_ports({}, {});
  project.validate();
  codegen::Generator gen;
  auto app = gen.generate(sub, project, {});
  project.validate();
  project.bind(mcu);
  Runtime runtime(mcu, project, app);
  runtime.start();

  auto* led_bean = dynamic_cast<beans::BitIoBean*>(project.find("LED"));
  sim::SimTime level_change = -1;
  led_bean->port()->set_output_observer(
      [&](int, bool level, sim::SimTime t) {
        if (level && level_change < 0) level_change = t;
      });
  world.run_for(sim::milliseconds(5));
  ASSERT_GE(level_change, 0);
  // The first activation fires at 1 ms; the write lands ISR-length later.
  EXPECT_GT(level_change, sim::milliseconds(1));
  EXPECT_LT(level_change, sim::milliseconds(1) + sim::microseconds(50));
}

}  // namespace
}  // namespace iecd::rt
