#include "blocks/continuous.hpp"

#include <stdexcept>

namespace iecd::blocks {

IntegratorBlock::IntegratorBlock(std::string name, double initial)
    : Block(std::move(name), 1, 1), initial_(initial) {
  set_sample_time(model::SampleTime::continuous());
}

void IntegratorBlock::initialize(const SimContext&) {
  state_ = initial_;
  set_out(0, state_);
}

void IntegratorBlock::output(const SimContext&) { set_out(0, state_); }

void IntegratorBlock::read_states(std::span<double> into) const {
  into[0] = state_;
}

void IntegratorBlock::write_states(std::span<const double> from) {
  state_ = from[0];
}

void IntegratorBlock::derivatives(const SimContext&,
                                  std::span<double> dx) const {
  dx[0] = in(0);
}

StateSpaceBlock::StateSpaceBlock(std::string name,
                                 std::vector<std::vector<double>> a,
                                 std::vector<double> b, std::vector<double> c,
                                 double d)
    : Block(std::move(name), 1, 1),
      a_(std::move(a)),
      b_(std::move(b)),
      c_(std::move(c)),
      d_(d) {
  const std::size_t n = a_.size();
  if (b_.size() != n || c_.size() != n) {
    throw std::invalid_argument(this->name() + ": A/b/c dimension mismatch");
  }
  for (const auto& row : a_) {
    if (row.size() != n) {
      throw std::invalid_argument(this->name() + ": A must be square");
    }
  }
  x_.assign(n, 0.0);
  x0_.assign(n, 0.0);
  set_sample_time(model::SampleTime::continuous());
}

void StateSpaceBlock::set_initial_states(std::vector<double> x0) {
  if (x0.size() != x_.size()) {
    throw std::invalid_argument(name() + ": initial state size mismatch");
  }
  x0_ = std::move(x0);
}

void StateSpaceBlock::initialize(const SimContext& ctx) {
  x_ = x0_;
  output(ctx);
}

void StateSpaceBlock::output(const SimContext&) {
  double y = d_ * in(0);
  for (std::size_t i = 0; i < x_.size(); ++i) y += c_[i] * x_[i];
  set_out(0, y);
}

void StateSpaceBlock::read_states(std::span<double> into) const {
  for (std::size_t i = 0; i < x_.size(); ++i) into[i] = x_[i];
}

void StateSpaceBlock::write_states(std::span<const double> from) {
  for (std::size_t i = 0; i < x_.size(); ++i) x_[i] = from[i];
}

void StateSpaceBlock::derivatives(const SimContext&,
                                  std::span<double> dx) const {
  const double u = in(0);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double acc = b_[i] * u;
    for (std::size_t j = 0; j < x_.size(); ++j) acc += a_[i][j] * x_[j];
    dx[i] = acc;
  }
}

TransferFunctionBlock::Realization TransferFunctionBlock::realize(
    std::vector<double> num, std::vector<double> den,
    const std::string& name) {
  if (den.empty() || den[0] == 0.0) {
    throw std::invalid_argument(name + ": denominator leading term zero");
  }
  if (num.size() > den.size()) {
    throw std::invalid_argument(name + ": improper transfer function");
  }
  const double a0 = den[0];
  for (auto& v : den) v /= a0;
  for (auto& v : num) v /= a0;
  // Pad numerator to denominator length (leading zeros).
  std::vector<double> padded(den.size(), 0.0);
  std::copy(num.begin(), num.end(),
            padded.begin() + static_cast<std::ptrdiff_t>(den.size() -
                                                         num.size()));
  const std::size_t n = den.size() - 1;
  Realization r;
  r.d = padded[0];
  r.a.assign(n, std::vector<double>(n, 0.0));
  r.b.assign(n, 0.0);
  r.c.assign(n, 0.0);
  if (n == 0) return r;
  // Controllable canonical form.
  for (std::size_t i = 0; i + 1 < n; ++i) r.a[i][i + 1] = 1.0;
  for (std::size_t j = 0; j < n; ++j) r.a[n - 1][j] = -den[n - j];
  r.b[n - 1] = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    r.c[j] = padded[n - j] - den[n - j] * r.d;
  }
  return r;
}

TransferFunctionBlock::TransferFunctionBlock(std::string name, Realization r)
    : StateSpaceBlock(std::move(name), std::move(r.a), std::move(r.b),
                      std::move(r.c), r.d) {}

TransferFunctionBlock::TransferFunctionBlock(std::string name,
                                             std::vector<double> num,
                                             std::vector<double> den)
    : TransferFunctionBlock(name, realize(std::move(num), std::move(den),
                                          name)) {}

}  // namespace iecd::blocks
