file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_fixedpoint.dir/bench_e5_fixedpoint.cpp.o"
  "CMakeFiles/bench_e5_fixedpoint.dir/bench_e5_fixedpoint.cpp.o.d"
  "bench_e5_fixedpoint"
  "bench_e5_fixedpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
