#include "blocks/lookup.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iecd::blocks {

Lookup1DBlock::Lookup1DBlock(std::string name, std::vector<double> xs,
                             std::vector<double> ys)
    : Block(std::move(name), 1, 1), xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.size() < 2 || xs_.size() != ys_.size()) {
    throw std::invalid_argument(this->name() +
                                ": needs >= 2 breakpoints, xs/ys same size");
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (!(xs_[i] > xs_[i - 1])) {
      throw std::invalid_argument(this->name() +
                                  ": breakpoints must be strictly increasing");
    }
  }
}

double Lookup1DBlock::lookup(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto idx = static_cast<std::size_t>(it - xs_.begin());
  const double x0 = xs_[idx - 1];
  const double x1 = xs_[idx];
  const double frac = (x - x0) / (x1 - x0);
  return ys_[idx - 1] + frac * (ys_[idx] - ys_[idx - 1]);
}

void Lookup1DBlock::output(const SimContext&) { set_out(0, lookup(in(0))); }

mcu::OpCounts Lookup1DBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  // Binary search + one interpolation.
  const auto probes = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(xs_.size()))));
  ops.branch = probes + 1;
  ops.alu16 = probes;
  ops.mem = probes + 4;
  if (fixed_point) {
    ops.mul16 = 1;
    ops.div16 = 1;
  } else {
    ops.fmul = 1;
    ops.fdiv = 1;
    ops.fadd = 2;
  }
  return ops;
}

}  // namespace iecd::blocks
