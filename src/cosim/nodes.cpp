#include "cosim/nodes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "mcu/derivative.hpp"
#include "util/diagnostics.hpp"

namespace iecd::cosim {

namespace {

void put_u16(sim::CanPayload& data, std::uint16_t v) {
  data.push_back(static_cast<std::uint8_t>(v & 0xFF));
  data.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const sim::CanPayload& data, std::size_t offset) {
  return static_cast<std::uint16_t>(data[offset] | (data[offset + 1] << 8));
}

}  // namespace

// ----------------------------------------------------------------- ServoNode

ServoNode::ServoNode(std::string name, std::size_t index,
                     const ServoNodeConfig& config, SharedCanBus& bus)
    : WorldComponent(std::move(name)),
      index_(index),
      config_(config),
      mcu_(world(), mcu::find_derivative(mcu::kDefaultDerivative),
           this->name() + "_mcu"),
      project_(this->name()) {
  // A degraded node runs the same firmware on a stretched timer, and its
  // speed estimate is calibrated from that stretched period — degradation
  // costs loop bandwidth, not steady-state accuracy.
  period_s_ = config_.period_s * std::max(1.0, config_.period_factor);
  const double counts_per_rev = config_.encoder_lines * 4.0;
  speed_gain_ = 2.0 * std::numbers::pi / (counts_per_rev * period_s_);

  qd_ = &project_.add<beans::QuadDecBean>("QD1");
  pwm_ = &project_.add<beans::PwmBean>("PWM1");
  timer_ = &project_.add<beans::TimerIntBean>("TI1");
  can_ = &project_.add<beans::CanBean>("CAN1");
  {
    util::DiagnosticList d;
    qd_->set_property("encoder_lines",
                      static_cast<std::int64_t>(config_.encoder_lines), d);
    timer_->set_property("period_s", period_s_, d);
    can_->set_property("acceptance_id",
                       static_cast<std::int64_t>(config_.command_frame_id), d);
    can_->set_property("acceptance_mask", std::int64_t{0x7FF}, d);
  }
  auto diags = project_.validate();
  if (diags.has_errors()) {
    throw std::runtime_error(this->name() + ": " + diags.to_string());
  }
  project_.bind(mcu_);
  bus.attach_controller(*can_->peripheral());
  pwm_->Enable();

  motor_ = std::make_unique<plant::DcMotorSim>(world(), config_.motor);
  motor_->drive_from_duty(&pwm_->peripheral()->average_output());
  encoder_ = std::make_unique<plant::IncrementalEncoder>(
      world(), *motor_, *qd_->peripheral(),
      plant::EncoderParams{config_.encoder_lines, sim::microseconds(50)},
      this->name());
  encoder_->start();

  mcu::IsrHandler tick;
  tick.name = "ctrl_tick";
  tick.body = [this]() -> std::uint64_t {
    release_ += sim::from_seconds(period_s_);
    body_start_ = world().now();
    const auto pos = static_cast<std::int16_t>(qd_->GetPosition());
    const double counts = static_cast<double>(pos);
    double speed = 0.0;
    if (have_prev_) {
      speed = std::remainder(counts - prev_counts_, 65536.0) * speed_gain_;
    }
    prev_counts_ = counts;
    have_prev_ = true;
    filt_[filt_idx_ & 3] = speed;
    ++filt_idx_;
    smoothed_ = (filt_[0] + filt_[1] + filt_[2] + filt_[3]) / 4.0;

    const double error = setpoint_ - smoothed_;
    const double unsat = config_.kp * error + integral_;
    duty_cmd_ = std::clamp(unsat, 0.0, 1.0);
    integral_ += config_.ki * period_s_ *
                 (error + (duty_cmd_ - unsat) / std::max(config_.kp, 1e-9));
    return 900;  // read + speed estimate + PI, software floating point
  };
  tick.commit = [this] {
    pwm_->SetRatio16(
        static_cast<std::uint16_t>(std::lround(duty_cmd_ * 65535.0)));
    ++control_ticks_;
    if (config_.status_divider > 0 &&
        control_ticks_ % static_cast<std::uint64_t>(config_.status_divider) ==
            0) {
      sim::CanFrame frame;
      frame.id = config_.status_frame_base + static_cast<std::uint32_t>(index_);
      const double bounded = std::clamp(smoothed_, -1000.0, 1000.0);
      put_u16(frame.data, static_cast<std::uint16_t>(
                              static_cast<std::int16_t>(
                                  std::lround(bounded * 16.0))));
      frame.data.push_back(status_seq_);
      ++status_seq_;
      can_->SendFrame(frame);
      ++status_sent_;
    }
    if (monitor_ != nullptr) {
      monitor_->record(release_, body_start_, world().now());
    }
  };
  timer_->set_event_handler("OnInterrupt", std::move(tick));

  mcu::IsrHandler rx;
  rx.name = "cmd_rx";
  rx.body = [this]() -> std::uint64_t {
    const auto frame = can_->ReadFrame();
    if (frame && frame->data.size() >= 2) {
      setpoint_ = static_cast<double>(get_u16(frame->data, 0)) / 256.0;
      ++commands_seen_;
    }
    return 60;
  };
  rx.commit = [] {};
  can_->set_event_handler("OnReceive", std::move(rx));

  timer_->Enable();
}

void ServoNode::kill_at(sim::SimTime when) {
  killed_ = true;  // reporting flag; the event below does the damage
  world().queue().schedule_at(when, [this] {
    timer_->Disable();
    pwm_->SetRatio16(0);
  });
}

// ----------------------------------------------------------- SupervisorNode

SupervisorNode::SupervisorNode(std::string name, Config config,
                               SharedCanBus& bus, std::size_t servo_nodes)
    : name_(std::move(name)), config_(config), bus_(&bus) {
  port_ = bus.attach_model_port(
      name_, [this](const sim::CanFrame& frame, sim::SimTime when) {
        on_status(frame, when);
      });
  command_interval_ = sim::from_seconds(config_.command_period_s);
  next_command_ = command_interval_;
  last_status_.assign(servo_nodes, 0);
}

void SupervisorNode::advance_to(sim::SimTime t) {
  while (next_command_ <= t) {
    now_ = next_command_;
    sim::CanFrame frame;
    frame.id = config_.command_frame_id;
    const double sp = sim::to_seconds(now_) >= config_.setpoint_time
                          ? config_.setpoint
                          : 0.0;
    put_u16(frame.data,
            static_cast<std::uint16_t>(std::lround(sp * 256.0)));
    bus_->can().transmit(port_, frame);
    ++commands_sent_;
    next_command_ += command_interval_;
  }
  now_ = t;
}

void SupervisorNode::on_status(const sim::CanFrame& frame, sim::SimTime when) {
  const std::uint32_t base = config_.status_frame_base;
  if (frame.id < base || frame.id >= base + last_status_.size()) return;
  last_status_[frame.id - base] = when;
  ++statuses_seen_;
}

std::vector<std::size_t> SupervisorNode::stale_nodes(sim::SimTime now) const {
  const sim::SimTime timeout = sim::from_seconds(config_.stale_timeout_s);
  std::vector<std::size_t> stale;
  for (std::size_t i = 0; i < last_status_.size(); ++i) {
    if (now - last_status_[i] > timeout) stale.push_back(i);
  }
  return stale;
}

// ----------------------------------------------------------- TrafficGenNode

TrafficGenNode::TrafficGenNode(std::string name, Config config,
                               SharedCanBus& bus)
    : name_(std::move(name)), config_(config), bus_(&bus) {
  // Plain bus node with no receive path — identical wire behaviour to the
  // monolithic E10 chatter node (null rx callback).
  port_ = bus.can().attach_node(name_, nullptr);
  if (config_.frames_per_s > 0.0) {
    interval_ = sim::from_seconds(1.0 / config_.frames_per_s);
    next_send_ = interval_;
  }
}

void TrafficGenNode::advance_to(sim::SimTime t) {
  while (next_send_ != sim::kNever && next_send_ <= t) {
    sim::CanFrame frame;
    frame.id = config_.frame_id;
    frame.data.assign(config_.payload_len, config_.fill);
    bus_->can().transmit(port_, frame);
    ++sent_;  // per attempt, as in the monolithic chatter node
    next_send_ += interval_;
  }
}

}  // namespace iecd::cosim
