#include "pil/host_endpoint.hpp"

#include "trace/trace.hpp"

namespace iecd::pil {

HostEndpoint::HostEndpoint(sim::World& world, sim::SerialChannel& tx,
                           sim::SerialChannel& rx, Options options)
    : world_(world), tx_(tx), options_(options) {
  if (options_.batch < 1) options_.batch = 1;
  decoder_.set_callback([this](const Frame& frame) { on_frame(frame); });
  // Responses are consumed frame-wise, so the whole burst arrives in one
  // event; per-byte arrival instants are reconstructed inside the decoder.
  rx.set_burst_receiver([this](std::span<const std::uint8_t> data,
                               sim::SimTime first_done, sim::SimTime bt) {
    if (auto* tr = trace::recorder()) {
      const std::uint64_t crc_before = decoder_.crc_errors();
      decoder_.feed_burst(data, first_done, bt);
      if (decoder_.crc_errors() != crc_before) {
        tr->instant("pil", "crc_error", "pil_host", world_.now());
      }
    } else {
      decoder_.feed_burst(data, first_done, bt);
    }
  });
}

void HostEndpoint::set_plant(
    std::function<std::vector<double>()> sample,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  if (sample) {
    sample_into_ = [s = std::move(sample)](std::vector<double>& out) {
      const auto values = s();
      out.insert(out.end(), values.begin(), values.end());
    };
  } else {
    sample_into_ = nullptr;
  }
  apply_ = std::move(apply);
  advance_ = std::move(advance);
}

void HostEndpoint::set_plant_buffered(
    std::function<void(std::vector<double>&)> sample_into,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  sample_into_ = std::move(sample_into);
  apply_ = std::move(apply);
  advance_ = std::move(advance);
}

void HostEndpoint::note_sent(std::uint8_t seq, sim::SimTime when) {
  if (sent_head_ == sent_ring_.size()) {
    // Everything answered: restart at the front, keeping the capacity.
    sent_ring_.clear();
    sent_head_ = 0;
  }
  sent_ring_.push_back({seq, when});
}

void HostEndpoint::transmit_faulted(const std::vector<std::uint8_t>& bytes) {
  if (!tx_fault_hook_) {
    tx_.transmit(bytes);
    return;
  }
  const TxFault fault = tx_fault_hook_(bytes.size());
  const std::size_t len = fault.truncate_to < bytes.size()
                              ? fault.truncate_to
                              : bytes.size();
  if (fault.delay > 0) {
    // The scratch buffer is reused next exchange: a deferred send must
    // carry its own copy of the bytes.
    world_.queue().schedule_in(
        fault.delay,
        [this, copy = std::vector<std::uint8_t>(
                   bytes.begin(),
                   bytes.begin() + static_cast<std::ptrdiff_t>(len))] {
          tx_.transmit(copy);
        });
  } else {
    tx_.transmit(std::span<const std::uint8_t>(bytes.data(), len));
  }
}

void HostEndpoint::arm_timeout() {
  timeout_event_ = world_.queue().schedule_in(
      current_timeout_,
      [this, generation = exchange_generation_] { on_timeout(generation); });
}

void HostEndpoint::on_timeout(std::uint64_t generation) {
  // A stale event (the exchange it watched was answered, abandoned or
  // superseded) identifies itself by generation and dies quietly.
  if (generation != exchange_generation_ || !awaiting_response_) return;
  timeout_event_ = 0;
  if (pending_retransmits_ >= options_.recovery.max_retransmits) {
    // Persistent loss: give up on this exchange.  Nothing is applied — the
    // plant holds the last actuator output (safe state); a late response
    // still applies if it ever lands, and the next exchange supersedes.
    ++abandoned_;
    awaiting_response_ = false;
    ++exchange_generation_;
    if (auto* tr = trace::recorder()) {
      tr->span_end("pil", "exchange", "pil_host", world_.now());
      tr->instant("pil", "exchange_abandoned", "pil_host", world_.now());
    }
    return;
  }
  // Same sequence number on the wire: the board's duplicate cache replays
  // its response if only the response was lost, without re-stepping the
  // controller.  The original send instant stays — recovery latency spans
  // the whole outage.
  ++pending_retransmits_;
  ++retransmits_;
  transmit_faulted(tx_bytes_);
  current_timeout_ = static_cast<sim::SimTime>(
      static_cast<double>(current_timeout_) * options_.recovery.backoff);
  const sim::SimTime cap = options_.recovery.backoff_cap > 0
                               ? options_.recovery.backoff_cap
                               : exchange_interval();
  if (current_timeout_ > cap) current_timeout_ = cap;
  if (auto* tr = trace::recorder()) {
    tr->instant("pil", "retransmit", "pil_host", world_.now(),
                static_cast<double>(pending_seq_));
  }
  arm_timeout();
}

void HostEndpoint::on_frame(const Frame& frame) {
  if (frame.type != FrameType::kActuatorData) return;
  if (apply_) {
    apply_values_.clear();
    decode_signals_into(frame.payload, apply_values_);
    if (options_.batch > 1 && !apply_values_.empty()) {
      // Batched response: N stacked output groups arrive at once; only
      // the newest group is still current, the rest were superseded
      // before they could ever reach the plant.
      const std::size_t groups = static_cast<std::size_t>(options_.batch);
      const std::size_t group = apply_values_.size() / groups;
      if (group > 0 && apply_values_.size() == group * groups) {
        apply_values_.erase(apply_values_.begin(),
                            apply_values_.begin() +
                                static_cast<std::ptrdiff_t>(
                                    (groups - 1) * group));
      }
    }
    apply_(apply_values_);
  }
  // Responses come back in FIFO order: match against the oldest
  // unanswered send with this sequence number.  Entries older than the
  // match were never answered (their responses are lost for good) and are
  // consumed with it; an unmatched response — a duplicate whose original
  // already matched — must leave the ring alone, otherwise one stray
  // frame would drain every outstanding send's timing entry.
  bool found = false;
  sim::SimTime sent = 0;
  for (std::size_t i = sent_head_; i < sent_ring_.size(); ++i) {
    if (sent_ring_[i].seq == frame.seq) {
      sent = sent_ring_[i].when;
      found = true;
      sent_head_ = i + 1;
      break;
    }
  }
  const sim::SimTime arrival = decoder_.last_frame_time();
  double rtt_us = 0.0;
  if (found) {
    rtt_us = sim::to_microseconds(arrival - sent);
    rtt_us_.add(rtt_us);
    // Per-sequence RTT monitor: release == service start == the send
    // instant; completion is the decoded arrival.
    if (rtt_monitor_) rtt_monitor_->record(sent, sent, arrival);
  }
  if (options_.recovery.enabled && awaiting_response_ &&
      frame.seq == pending_seq_) {
    // The outstanding exchange is answered: retire its timeout.  If it
    // took a retransmit to get here, this is a recovery — log the outage
    // span (original send -> response) for the campaign report.
    if (timeout_event_ != 0) {
      world_.queue().cancel(timeout_event_);
      timeout_event_ = 0;
    }
    ++exchange_generation_;
    if (pending_retransmits_ > 0) {
      ++recoveries_;
      recovery_us_.add(sim::to_microseconds(arrival - pending_sent_));
      if (recovery_monitor_) {
        recovery_monitor_->record(pending_sent_, pending_sent_, arrival);
      }
    }
  }
  if (awaiting_response_) {
    if (auto* tr = trace::recorder()) {
      tr->span_end("pil", "exchange", "pil_host", world_.now(), rtt_us);
    }
  }
  awaiting_response_ = false;
}

void HostEndpoint::start() {
  if (running_) return;
  running_ = true;
  if (exchange_event_ != 0) world_.queue().cancel(exchange_event_);
  const sim::SimTime interval =
      options_.period * static_cast<sim::SimTime>(options_.batch);
  // One recurring event carries every exchange for the whole session.
  exchange_event_ = world_.queue().schedule_every(
      options_.start + interval - world_.now(), interval,
      [this] { exchange(); });
}

void HostEndpoint::exchange() {
  if (!running_) {
    // stop() only clears the flag; the recurrence retires itself here.
    world_.queue().cancel(exchange_event_);
    exchange_event_ = 0;
    return;
  }
  // The previous actuator frame should have arrived within the period;
  // a late response is the PIL bench's deadline miss.
  if (awaiting_response_) {
    ++deadline_misses_;
    awaiting_response_ = false;  // stale response applies late when it lands
    if (auto* tr = trace::recorder()) {
      // Close the dangling exchange span so the timeline stays balanced.
      tr->span_end("pil", "exchange", "pil_host", world_.now());
      tr->instant("pil", "deadline_miss", "pil_host", world_.now());
    }
  }
  if (options_.recovery.enabled) {
    // Supersede any recovery still chasing the previous exchange.
    if (timeout_event_ != 0) {
      world_.queue().cancel(timeout_event_);
      timeout_event_ = 0;
    }
    ++exchange_generation_;
  }
  tx_payload_.clear();
  for (int k = 0; k < options_.batch; ++k) {
    // Sub-step k of the batch window ended at now - (batch-1-k) periods;
    // with batch == 1 this is exactly the classic per-period exchange.
    const sim::SimTime t_k =
        world_.now() -
        options_.period * static_cast<sim::SimTime>(options_.batch - 1 - k);
    if (advance_) advance_(sim::to_seconds(t_k));
    sample_values_.clear();
    if (sample_into_) sample_into_(sample_values_);
    encode_signals_into(sample_values_, tx_payload_);
  }
  tx_bytes_.clear();
  encode_frame_into(FrameType::kSensorData, seq_, tx_payload_, tx_bytes_);
  if (tx_fault_hook_) {
    transmit_faulted(tx_bytes_);
  } else {
    tx_.transmit(tx_bytes_);
  }
  note_sent(seq_, world_.now());
  const std::uint8_t sent_seq = seq_++;
  awaiting_response_ = true;
  ++exchanges_;
  if (options_.recovery.enabled) {
    pending_seq_ = sent_seq;
    pending_sent_ = world_.now();
    pending_retransmits_ = 0;
    current_timeout_ = options_.recovery.timeout > 0
                           ? options_.recovery.timeout
                           : exchange_interval() / 2;
    arm_timeout();
  }
  if (auto* tr = trace::recorder()) {
    tr->span_begin("pil", "exchange", "pil_host", world_.now(),
                   static_cast<double>(sent_seq));
  }
}

}  // namespace iecd::pil
