# Empty compiler generated dependencies file for bench_e2_devcycle.
# This may be replaced when dependencies are built.
