#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/serial_link.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"

namespace iecd::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(microseconds(3), 3'000);
  EXPECT_EQ(seconds_i(2), 2'000'000'000);
  EXPECT_EQ(from_seconds(0.5), 500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds_i(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(1500)), 1.5);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel reports failure
  q.run_all();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilHonoursWindowAndAdvancesClock) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { ++count; });
  q.schedule_at(20, [&] { ++count; });
  q.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.run_until(100), 1u);
  EXPECT_EQ(q.now(), 100);  // clock advances to the window edge
}

TEST(EventQueue, EventsScheduledDuringRunAreHonoured) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule_at(10, [&] {
    times.push_back(q.now());
    q.schedule_in(5, [&] { times.push_back(q.now()); });
  });
  q.run_until(20);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueue, SelfReschedulingComponentTicksPeriodically) {
  EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    q.schedule_in(100, tick);
  };
  q.schedule_at(100, tick);
  q.run_until(1000);
  EXPECT_EQ(ticks, 10);
}

TEST(EventQueue, RejectsPastSchedulingAndEmptyActions) {
  EventQueue q;
  q.schedule_at(50, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(10, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(100, nullptr), std::invalid_argument);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_EQ(q.next_time(), 10);
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 20);
}

class NamedComponent : public Component {
 public:
  explicit NamedComponent(std::string n) : name_(std::move(n)) {}
  const std::string& name() const override { return name_; }
  void reset() override { ++resets; }
  int resets = 0;

 private:
  std::string name_;
};

TEST(EventQueue, ScheduleEveryFiresAtExactPeriodMultiples) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule_every(10, [&] { fired.push_back(q.now()); });
  q.run_until(55);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40, 50}));
  EXPECT_EQ(q.now(), 55);
  EXPECT_EQ(q.pending(), 1u);  // still armed for t = 60
}

TEST(EventQueue, ScheduleEveryHonoursFirstDelay) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule_every(3, 10, [&] { fired.push_back(q.now()); });
  q.run_until(30);
  EXPECT_EQ(fired, (std::vector<SimTime>{3, 13, 23}));
}

TEST(EventQueue, CancelStopsRecurrence) {
  EventQueue q;
  int ticks = 0;
  const auto id = q.schedule_every(10, [&] { ++ticks; });
  q.run_until(35);
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  q.run_until(100);
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RecurringCallbackMayCancelItself) {
  EventQueue q;
  int ticks = 0;
  EventId id = 0;
  id = q.schedule_every(10, [&] {
    if (++ticks == 4) q.cancel(id);
  });
  q.run_all();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(q.now(), 40);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RecurringInterleavesFifoWithOneShots) {
  // A recurring event re-armed after each occurrence takes a fresh insertion
  // rank — exactly like the classic reschedule-at-end-of-handler pattern —
  // so a one-shot scheduled earlier for the same timestamp runs first.
  EventQueue q;
  std::vector<std::string> order;
  q.schedule_every(10, [&] { order.push_back("recurring"); });
  q.schedule_at(20, [&] { order.push_back("oneshot"); });
  q.run_until(20);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "recurring");  // t=10
  EXPECT_EQ(order[1], "oneshot");    // t=20: scheduled before the re-arm
  EXPECT_EQ(order[2], "recurring");  // t=20: re-armed at t=10
}

TEST(World, AttachRejectsDuplicatesAndResetsAll) {
  World w;
  NamedComponent c1("a");
  NamedComponent c2("b");
  w.attach(c1);
  w.attach(c2);
  EXPECT_THROW(w.attach(c1), std::logic_error);
  w.reset_components();
  EXPECT_EQ(c1.resets, 1);
  EXPECT_EQ(c2.resets, 1);
}

TEST(SerialConfig, ByteTimeMatchesBaud) {
  SerialConfig cfg;
  cfg.baud_rate = 115200;
  EXPECT_EQ(cfg.bits_per_byte(), 10);  // 8N1
  // 10 bits at 115200 baud = 86.805... us.
  EXPECT_NEAR(static_cast<double>(cfg.byte_time()), 86805.0, 1.0);
  cfg.parity = true;
  cfg.stop_bits = 2;
  EXPECT_EQ(cfg.bits_per_byte(), 12);
}

TEST(SerialLink, DeliversBytesInOrderWithWireTiming) {
  World w;
  SerialConfig cfg;
  cfg.baud_rate = 9600;
  SerialLink link(w, cfg);
  std::vector<std::uint8_t> rx;
  std::vector<SimTime> at;
  link.a_to_b().set_receiver([&](std::uint8_t b, SimTime t) {
    rx.push_back(b);
    at.push_back(t);
  });
  const std::uint8_t msg[] = {0x11, 0x22, 0x33};
  link.a_to_b().transmit(msg, sizeof msg);
  w.run_for(seconds_i(1));
  ASSERT_EQ(rx.size(), 3u);
  EXPECT_EQ(rx[0], 0x11);
  EXPECT_EQ(rx[2], 0x33);
  const SimTime byte_time = cfg.byte_time();
  EXPECT_EQ(at[0], byte_time);
  EXPECT_EQ(at[1], 2 * byte_time);  // serialized, not parallel
  EXPECT_EQ(at[2], 3 * byte_time);
  EXPECT_EQ(link.a_to_b().bytes_transferred(), 3u);
  EXPECT_EQ(link.a_to_b().busy_time(), 3 * byte_time);
}

TEST(SerialLink, FullDuplexDirectionsAreIndependent) {
  World w;
  SerialLink link(w, SerialConfig{});
  int a_rx = 0;
  int b_rx = 0;
  link.a_to_b().set_receiver([&](std::uint8_t, SimTime) { ++b_rx; });
  link.b_to_a().set_receiver([&](std::uint8_t, SimTime) { ++a_rx; });
  link.a_to_b().transmit(1);
  link.b_to_a().transmit(2);
  link.b_to_a().transmit(3);
  w.run_for(seconds_i(1));
  EXPECT_EQ(b_rx, 1);
  EXPECT_EQ(a_rx, 2);
}

TEST(SerialLink, CorruptionInjectionFlipsExactlyOneByte) {
  World w;
  SerialLink link(w, SerialConfig{});
  std::vector<std::uint8_t> rx;
  link.a_to_b().set_receiver([&](std::uint8_t b, SimTime) { rx.push_back(b); });
  link.a_to_b().corrupt_next_byte(0xFF);
  link.a_to_b().transmit(0x0F);
  link.a_to_b().transmit(0x0F);
  w.run_for(seconds_i(1));
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_EQ(rx[0], 0xF0);
  EXPECT_EQ(rx[1], 0x0F);
}

TEST(SerialLink, LowerBaudIsProportionallySlower) {
  World w;
  SerialConfig slow;
  slow.baud_rate = 9600;
  SerialConfig fast;
  fast.baud_rate = 115200;
  EXPECT_NEAR(static_cast<double>(slow.byte_time()) /
                  static_cast<double>(fast.byte_time()),
              12.0, 0.01);
}

}  // namespace
}  // namespace iecd::sim
