#include <gtest/gtest.h>

#include "beans/adc_bean.hpp"
#include "beans/autosar.hpp"
#include "beans/bean_project.hpp"
#include "beans/bit_io_bean.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/quad_dec_bean.hpp"
#include "beans/serial_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "codegen/generator.hpp"
#include "core/case_study.hpp"
#include "core/model_sync.hpp"

namespace iecd::beans {
namespace {

TEST(AutosarMapping, BeansMapToMcalModules) {
  AdcBean adc("AD1");
  PwmBean pwm("PWM1");
  TimerIntBean timer("TI1");
  BitIoBean bit("Key");
  QuadDecBean qdec("QD1");
  SerialBean serial("AS1");
  EXPECT_EQ(autosar::mcal_module_of(adc), "Adc");
  EXPECT_EQ(autosar::mcal_module_of(pwm), "Pwm");
  EXPECT_EQ(autosar::mcal_module_of(timer), "Gpt");
  EXPECT_EQ(autosar::mcal_module_of(bit), "Dio");
  // No MCAL module exists -> complex device driver.
  EXPECT_EQ(autosar::mcal_module_of(qdec), "Cdd_QuadDec");
  EXPECT_EQ(autosar::mcal_module_of(serial), "Cdd_AsynchroSerial");
}

TEST(AutosarDrivers, StdTypesHeaderDefinesStandardReturnType) {
  const DriverSource types = autosar::std_types_header();
  EXPECT_EQ(types.header_name, "Std_Types.h");
  EXPECT_NE(types.header.find("Std_ReturnType"), std::string::npos);
  EXPECT_NE(types.header.find("E_OK"), std::string::npos);
  EXPECT_NE(types.header.find("STD_HIGH"), std::string::npos);
}

TEST(AutosarDrivers, AdcDriverUsesGroupApi) {
  AdcBean adc("AD1");
  const DriverSource src = autosar::driver_source(adc);
  EXPECT_NE(src.header.find("Adc_StartGroupConversion"), std::string::npos);
  EXPECT_NE(src.header.find("Adc_ReadGroup"), std::string::npos);
  EXPECT_NE(src.header.find("AdcConf_AdcGroup_AD1"), std::string::npos);
  EXPECT_NE(src.source.find("E_NOT_OK"), std::string::npos);
}

TEST(AutosarDrivers, PwmDriverUses0x8000Convention) {
  PwmBean pwm("PWM1");
  const DriverSource src = autosar::driver_source(pwm);
  EXPECT_NE(src.header.find("Pwm_SetDutyCycle"), std::string::npos);
  EXPECT_NE(src.source.find("0x8000"), std::string::npos);  // SWS_Pwm duty
}

TEST(AutosarDrivers, GptDriverExposesNotification) {
  TimerIntBean timer("TI1");
  const DriverSource src = autosar::driver_source(timer);
  EXPECT_NE(src.header.find("Gpt_StartTimer"), std::string::npos);
  EXPECT_NE(src.header.find("Gpt_Notification_TI1"), std::string::npos);
}

TEST(AutosarDrivers, DioDriverUsesChannelApi) {
  BitIoBean bit("Key");
  util::DiagnosticList d;
  bit.set_property("pin", std::int64_t{5}, d);
  const DriverSource src = autosar::driver_source(bit);
  EXPECT_NE(src.header.find("Dio_ReadChannel"), std::string::npos);
  EXPECT_NE(src.header.find("DioConf_DioChannel_Key ((Dio_ChannelType)5)"),
            std::string::npos);
}

TEST(AutosarDrivers, QuadDecBecomesComplexDeviceDriver) {
  QuadDecBean qdec("QD1");
  const DriverSource src = autosar::driver_source(qdec);
  EXPECT_EQ(src.header_name, "Cdd_QuadDec.h");
  EXPECT_NE(src.header.find("Cdd_QuadDec_GetPosition"), std::string::npos);
  EXPECT_NE(src.source.find("complex device driver"), std::string::npos);
}

TEST(AutosarDrivers, ProjectLevelGenerationSwitchesApi) {
  BeanProject project("p");
  project.add<AdcBean>("AD1");
  project.add<PwmBean>("PWM1");
  project.validate();

  const auto pe = project.generate_drivers(DriverApi::kProcessorExpert);
  const auto ar = project.generate_drivers(DriverApi::kAutosar);
  ASSERT_EQ(pe.size(), ar.size());
  EXPECT_EQ(pe[0].header_name, "PE_Types.h");
  EXPECT_EQ(ar[0].header_name, "Std_Types.h");
  bool pe_has_measure = false;
  (void)pe_has_measure;
  bool ar_has_readgroup = false;
  for (const auto& d : pe) {
    if (d.header.find("_Measure") != std::string::npos) pe_has_measure = true;
  }
  for (const auto& d : ar) {
    if (d.header.find("Adc_ReadGroup") != std::string::npos) {
      ar_has_readgroup = true;
    }
    EXPECT_EQ(d.header.find("_Measure("), std::string::npos);
  }
  EXPECT_TRUE(ar_has_readgroup);
}

TEST(AutosarCodegen, GeneratedStepUsesAutosarCalls) {
  core::ServoConfig cfg;
  core::ServoSystem servo(cfg);
  servo.validate();
  codegen::GeneratorOptions opts;
  opts.app_name = "servo";
  opts.api = DriverApi::kAutosar;
  codegen::Generator gen;
  auto app = gen.generate(servo.controller(), servo.project(), opts);
  const std::string& step = app.sources.at("servo.c");
  EXPECT_NE(step.find("Cdd_QuadDec_GetPosition"), std::string::npos);
  EXPECT_NE(step.find("Pwm_SetDutyCycle"), std::string::npos);
  EXPECT_EQ(step.find("QD1_GetPosition"), std::string::npos);
  EXPECT_EQ(step.find("PWM1_SetRatio16"), std::string::npos);
  ASSERT_TRUE(app.sources.count("Std_Types.h"));
  EXPECT_FALSE(app.sources.count("PE_Types.h"));
}

TEST(AutosarCodegen, VariantsAreFunctionallyIdentical) {
  // Same model, both APIs: identical task structure, costs and behaviour —
  // "the blocks of both variants are the same from the functional point of
  // view".
  core::ServoConfig cfg;
  cfg.duration_s = 0.4;

  core::ServoSystem servo_pe(cfg);
  servo_pe.validate();
  codegen::Generator gen_pe;
  auto app_pe = gen_pe.generate(servo_pe.controller(), servo_pe.project(),
                                {.app_name = "servo"});

  core::ServoSystem servo_ar(cfg);
  servo_ar.validate();
  codegen::GeneratorOptions ar_opts;
  ar_opts.app_name = "servo";
  ar_opts.api = DriverApi::kAutosar;
  codegen::Generator gen_ar;
  auto app_ar =
      gen_ar.generate(servo_ar.controller(), servo_ar.project(), ar_opts);

  const auto& costs = mcu::find_derivative("DSC56F8367").costs;
  ASSERT_EQ(app_pe.tasks.size(), app_ar.tasks.size());
  EXPECT_EQ(app_pe.task_cycles(0, costs), app_ar.task_cycles(0, costs));
  EXPECT_EQ(app_pe.memory.data_bytes, app_ar.memory.data_bytes);

  // And the closed-loop behaviour is bit-identical.
  const auto hil_pe = servo_pe.run_hil();
  const auto hil_ar = servo_ar.run_hil();
  EXPECT_DOUBLE_EQ(hil_pe.iae, hil_ar.iae);
  EXPECT_DOUBLE_EQ(hil_pe.speed.last_value(), hil_ar.speed.last_value());
}

TEST(AutosarCodegen, DioAccessEmittedForKeys) {
  core::ServoConfig cfg;
  core::ServoSystem servo(cfg);
  servo.validate();
  codegen::GeneratorOptions opts;
  opts.app_name = "servo";
  opts.api = DriverApi::kAutosar;
  codegen::Generator gen;
  auto app = gen.generate(servo.controller(), servo.project(), opts);
  const std::string& step = app.sources.at("servo.c");
  EXPECT_NE(step.find("Dio_ReadChannel(DioConf_DioChannel_KeyMode"),
            std::string::npos);
}

}  // namespace
}  // namespace iecd::beans
