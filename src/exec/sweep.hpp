/// \file sweep.hpp
/// First-class parallel scenario fan-out.  A SweepRunner executes N
/// independent scenarios (World/MIL/PIL runs, parameter-sweep points)
/// across the host thread pool and merges each run's MetricsRegistry
/// deterministically.
///
/// Determinism contract: each scenario writes only into the registry it is
/// handed (plus its own locals), every scenario is itself deterministic,
/// and the merge folds registries in index order 0..N-1 regardless of the
/// order in which worker threads finish.  Under those conditions the merged
/// registry — report(), to_csv(), every metric — is byte-identical to a
/// sequential run, for any thread count.  The determinism suite
/// (tests/determinism_test.cpp) locks this property in.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

namespace iecd::exec {

struct SweepOptions {
  /// Worker threads; 0 selects hardware_concurrency.  1 runs the scenarios
  /// inline on the calling thread (the sequential reference execution).
  std::size_t threads = 0;
};

class SweepRunner {
 public:
  /// A scenario: run sweep point \p index, record results into \p metrics.
  /// Must not touch shared mutable state — each invocation gets its own
  /// registry and runs on an arbitrary pool thread.
  using Scenario =
      std::function<void(std::size_t index, trace::MetricsRegistry& metrics)>;

  /// A health-aware scenario: additionally fills a per-run HealthReport
  /// (typically MonitorHub::report() of a hub local to the run).
  using HealthScenario = std::function<void(
      std::size_t index, trace::MetricsRegistry& metrics,
      obs::HealthReport& health)>;

  explicit SweepRunner(SweepOptions options = {});

  struct Result {
    trace::MetricsRegistry merged;  ///< index-order fold of all runs
    std::vector<trace::MetricsRegistry> per_run;
    /// Merged health report (HealthScenario runs only): same index-order
    /// fold, so histograms/percentiles and anomaly counts are byte-
    /// deterministic for any thread count.
    obs::HealthReport health;
    std::vector<obs::HealthReport> per_run_health;
    std::size_t runs = 0;
    std::size_t threads_used = 0;
    double wall_ms = 0.0;  ///< wall clock (informational; not merged)
  };

  /// Executes \p runs scenario instances and merges their metrics.
  Result run(std::size_t runs, const Scenario& scenario) const;

  /// Health-aware variant: merges per-run metrics AND health reports in
  /// index order (Result::health starts from runs == 0 and folds each
  /// per-run report, so its `runs` counts the sweep points).
  Result run(std::size_t runs, const HealthScenario& scenario) const;

  std::size_t threads() const { return options_.threads; }

 private:
  SweepOptions options_;
};

}  // namespace iecd::exec
