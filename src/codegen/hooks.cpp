#include "codegen/hooks.hpp"

#include "beans/timer_int_bean.hpp"
#include "codegen/generated_app.hpp"
#include "util/strings.hpp"

namespace iecd::codegen {

void BeanAutoConfigHook::before_generate(GenContext& ctx) {
  if (!ctx.project) return;
  // Enable exactly the methods the generated code calls.
  for (TargetIo* io : ctx.io_blocks) {
    beans::Bean* bean = ctx.project->find(io->bean_name());
    if (!bean) {
      ctx.diagnostics.error(
          "codegen.hooks",
          util::format("PE block references unknown bean '%s'",
                       io->bean_name().c_str()));
      continue;
    }
    for (const auto& method : io->required_methods()) {
      bean->enable_method(method);
    }
  }
  // Align the periodic-interrupt bean with the controller's sample time.
  for (const auto& bean : ctx.project->beans()) {
    auto* timer = dynamic_cast<beans::TimerIntBean*>(bean.get());
    if (!timer) continue;
    timer->enable_method("Enable");
    if (ctx.period_s > 0 &&
        timer->properties().get_real("period_s") != ctx.period_s) {
      util::DiagnosticList diags;
      timer->set_property("period_s", ctx.period_s, diags);
      ctx.diagnostics.merge(diags);
      ctx.diagnostics.info(
          "codegen.hooks",
          util::format("timer bean %s auto-configured to %.6f s",
                       timer->name().c_str(), ctx.period_s));
    }
    break;  // the first timer bean drives the model step
  }
}

}  // namespace iecd::codegen
