#include "beans/pwm_bean.hpp"

#include "beans/solvers.hpp"
#include "util/strings.hpp"

namespace iecd::beans {

PwmBean::PwmBean(std::string name) : Bean(std::move(name), "PWM") {
  properties().declare(PropertySpec::real(
      "frequency_hz", 20000.0, 1.0, 10e6, "switching frequency"));
  properties().declare(PropertySpec::real(
      "tolerance_percent", 1.0, 0.0, 50.0, "acceptable frequency error"));
  properties().declare(PropertySpec::real(
      "initial_duty_percent", 0.0, 0.0, 100.0, "duty after init"));
  properties().declare(PropertySpec::boolean(
      "interrupt", false, "raise OnReload every period"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 4, 0, 15, "OnReload priority"));
  properties().declare(
      PropertySpec::integer("prescaler", 0, 0, 1 << 16, "derived prescaler")
          .derived());
  properties().declare(
      PropertySpec::integer("modulo", 0, 0, 1 << 30, "derived modulo")
          .derived());
  properties().declare(PropertySpec::real("achieved_frequency_hz", 0.0, 0.0,
                                          100e6, "derived actual frequency")
                           .derived());
  properties().declare(
      PropertySpec::integer("duty_resolution_bits", 0, 0, 32,
                            "derived effective duty precision")
          .derived());
}

std::vector<MethodSpec> PwmBean::methods() const {
  return {
      {"Enable", "byte %M_Enable(void)", "start the PWM counter"},
      {"Disable", "byte %M_Disable(void)", "stop the PWM counter"},
      {"SetRatio16", "byte %M_SetRatio16(word Ratio)",
       "set duty as 16-bit ratio"},
      {"SetDutyPercent", "byte %M_SetDutyPercent(byte Duty)",
       "set duty in percent"},
  };
}

std::vector<EventSpec> PwmBean::events() const {
  return {{"OnReload", "counter reload (period boundary)"}};
}

ResourceDemand PwmBean::demand() const {
  ResourceDemand d;
  d.pwm_channels = 1;
  return d;
}

void PwmBean::validate(const mcu::DerivativeSpec& cpu,
                       util::DiagnosticList& diagnostics) {
  if (cpu.pwm_channels <= 0) {
    diagnostics.error(name(), "no PWM module on " + cpu.name);
    return;
  }
  const double freq = properties().get_real("frequency_hz");
  const double tol = properties().get_real("tolerance_percent") / 100.0;
  const auto sol = solve_pwm_frequency(cpu, freq, tol);
  if (!sol) {
    diagnostics.error(
        name() + ".frequency_hz",
        util::format("%.1f Hz not achievable on %s within %.2f%%", freq,
                     cpu.name.c_str(), tol * 100.0));
    return;
  }
  properties().set_derived("prescaler",
                           static_cast<std::int64_t>(sol->prescaler));
  properties().set_derived("modulo", static_cast<std::int64_t>(sol->modulo));
  properties().set_derived("achieved_frequency_hz",
                           sol->achieved_frequency_hz);
  properties().set_derived(
      "duty_resolution_bits",
      static_cast<std::int64_t>(sol->duty_resolution_bits));
  diagnostics.info(
      name(),
      util::format("PWM solved: prescaler %u, modulo %u -> %.1f Hz, "
                   "%d-bit duty resolution",
                   sol->prescaler, sol->modulo, sol->achieved_frequency_hz,
                   sol->duty_resolution_bits));
  if (sol->duty_resolution_bits < 8) {
    diagnostics.warning(
        name(),
        util::format("only %d bits of duty resolution at this frequency",
                     sol->duty_resolution_bits));
  }
}

void PwmBean::bind(BindContext& ctx) {
  periph::PwmConfig cfg;
  cfg.prescaler =
      static_cast<std::uint32_t>(properties().get_int("prescaler"));
  cfg.modulo = static_cast<std::uint32_t>(properties().get_int("modulo"));
  if (cfg.prescaler == 0 || cfg.modulo == 0) {
    throw std::logic_error("PwmBean: bind() before successful validate()");
  }
  if (properties().get_bool("interrupt")) {
    cfg.reload_vector = register_event(
        ctx, "OnReload",
        static_cast<int>(properties().get_int("interrupt_priority")));
  }
  pwm_ = std::make_unique<periph::PwmPeripheral>(ctx.mcu, cfg, name());
  pwm_->set_duty_ratio(properties().get_real("initial_duty_percent") / 100.0);
  mark_bound();
}

void PwmBean::SetRatio16(std::uint16_t ratio) {
  if (pwm_) pwm_->set_duty_ratio(static_cast<double>(ratio) / 65535.0);
}

void PwmBean::SetDutyPercent(double percent) {
  if (pwm_) pwm_->set_duty_ratio(percent / 100.0);
}

void PwmBean::Enable() {
  if (pwm_) pwm_->start();
}

void PwmBean::Disable() {
  if (pwm_) pwm_->stop();
}

DriverSource PwmBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  c += util::format(
      "/* prescaler %lld, modulo %lld -> %.1f Hz, %lld-bit duty */\n",
      static_cast<long long>(properties().get_int("prescaler")),
      static_cast<long long>(properties().get_int("modulo")),
      properties().get_real("achieved_frequency_hz"),
      static_cast<long long>(properties().get_int("duty_resolution_bits")));
  if (method_enabled("SetRatio16")) {
    c += "byte " + name() +
         "_SetRatio16(word Ratio) {\n"
         "  PWM_VAL = (word)(((dword)Ratio * PWM_MOD) >> 16);\n"
         "  return ERR_OK;\n}\n";
  }
  if (method_enabled("Enable")) {
    c += "byte " + name() + "_Enable(void) { PWM_CTRL |= PWM_RUN; return ERR_OK; }\n";
  }
  if (method_enabled("Disable")) {
    c += "byte " + name() + "_Disable(void) { PWM_CTRL &= ~PWM_RUN; return ERR_OK; }\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
