file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_portability.dir/bench_e7_portability.cpp.o"
  "CMakeFiles/bench_e7_portability.dir/bench_e7_portability.cpp.o.d"
  "bench_e7_portability"
  "bench_e7_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
