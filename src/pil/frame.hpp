/// \file frame.hpp
/// The PIL wire protocol: framed packets over the asynchronous serial
/// line.  Layout: 0x7E | type | seq | len | payload[len] | crc16(2, BE).
/// The CRC covers type..payload.  Signal payloads carry float32 LE values
/// (adequate precision for plant/actuator exchange and 2.5x smaller than
/// doubles on a line whose bandwidth dominates the step budget).
///
/// Fast-path API: the *_into functions append into caller-owned scratch
/// buffers, so a session that reuses its buffers encodes and decodes
/// frames without touching the heap after warm-up.  The vector-returning
/// forms remain as convenience wrappers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace iecd::pil {

inline constexpr std::uint8_t kSyncByte = 0x7E;

enum class FrameType : std::uint8_t {
  kSensorData = 1,    ///< host -> target: plant outputs
  kActuatorData = 2,  ///< target -> host: controller outputs
};

struct Frame {
  FrameType type = FrameType::kSensorData;
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes a frame (sync, header, payload, CRC).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Appends the serialized frame to \p out (allocation-free once \p out has
/// capacity).  The caller clears \p out between frames if it wants exactly
/// one frame per buffer.
void encode_frame_into(FrameType type, std::uint8_t seq,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>& out);

/// Packs doubles as float32 LE payload.
std::vector<std::uint8_t> encode_signals(const std::vector<double>& values);
/// Appends the float32 LE encoding of \p values to \p out.
void encode_signals_into(std::span<const double> values,
                         std::vector<std::uint8_t>& out);

/// Unpacks a float32 LE payload.
std::vector<double> decode_signals(const std::vector<std::uint8_t>& payload);
/// Appends the decoded doubles to \p out.
void decode_signals_into(std::span<const std::uint8_t> payload,
                         std::vector<double>& out);

/// Streaming decoder: feed bytes as they arrive; complete, CRC-valid
/// frames invoke the callback.  Corrupted frames are counted and their
/// bytes re-scanned from the next sync byte inside them, so a valid frame
/// is never lost to a preceding corrupted or truncated one (the fuzz test
/// locks this).  The CRC folds incrementally — completion never re-walks
/// the payload — and the payload buffer is reused across frames.
class FrameDecoder {
 public:
  FrameDecoder();

  void set_callback(std::function<void(const Frame&)> on_frame);

  /// Feeds one byte; returns true if a frame completed (valid or not).
  bool feed(std::uint8_t byte);

  /// Feeds a whole buffer; returns the number of completed frames
  /// (valid or not).
  std::size_t feed(std::span<const std::uint8_t> data);

  /// Burst entry point: byte k of \p data arrived at
  /// first_done + k * byte_time.  Tracks arrival instants so
  /// last_frame_time() reports the exact completion time of the most
  /// recent frame — identical to what a per-byte feed at those times
  /// would observe.
  std::size_t feed_burst(std::span<const std::uint8_t> data,
                         sim::SimTime first_done, sim::SimTime byte_time);

  /// Arrival time of the byte that completed the most recent frame
  /// (meaningful after feed_burst; frames recovered by a rescan report
  /// the time of the byte that exposed them).
  sim::SimTime last_frame_time() const { return last_frame_time_; }

  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t crc_errors() const { return crc_errors_; }

  void reset();

 private:
  enum class State { kSync, kType, kSeq, kLen, kPayload, kCrcHi, kCrcLo };

  /// Max raw frame size: sync + header(3) + payload(255) + crc(2).
  static constexpr std::size_t kMaxRaw = 261;

  std::size_t feed_one(std::uint8_t byte);
  void reset_frame();

  State state_ = State::kSync;
  Frame current_;
  std::size_t expected_len_ = 0;
  std::uint16_t rx_crc_ = 0;
  std::uint16_t run_crc_ = 0xFFFF;  ///< folded incrementally over type..payload
  /// Raw bytes of the in-progress frame, for resynchronization rescans.
  std::uint8_t raw_[kMaxRaw];
  std::size_t raw_size_ = 0;
  sim::SimTime cursor_time_ = 0;
  sim::SimTime last_frame_time_ = 0;
  std::function<void(const Frame&)> on_frame_;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t crc_errors_ = 0;
};

}  // namespace iecd::pil
