#include "core/pe_blocks.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/strings.hpp"

namespace iecd::core {

PeBlock::PeBlock(std::string name, int inputs, int outputs, beans::Bean& bean)
    : Block(std::move(name), inputs, outputs), bean_(&bean) {}

model::EventSource& PeBlock::event(const std::string& event_name) {
  return events_[event_name];
}

void PeBlock::bind_event(const std::string& event_name,
                         model::FunctionCallSubsystem& target) {
  events_[event_name].attach(target);
  bindings_.push_back({event_name, &target});
}

double PeBlock::pil_input() const {
  return pil_ ? pil_->input(name()) : 0.0;
}

void PeBlock::pil_output(double value) const {
  if (pil_) pil_->set_output(name(), value);
}

// ------------------------------------------------------------------ ADC

AdcPeBlock::AdcPeBlock(std::string name, beans::AdcBean& bean)
    : PeBlock(std::move(name), 1, 1, bean), adc_(&bean) {
  set_output_type(0, model::DataType::kUint16);
}

std::uint16_t AdcPeBlock::quantize_volts(double volts) const {
  const auto bits = adc_->properties().get_int("resolution_bits");
  const double vref = adc_->properties().get_real("vref_high");
  const double max_code = std::ldexp(1.0, static_cast<int>(bits)) - 1.0;
  const double code =
      std::clamp(std::round(volts / vref * max_code), 0.0, max_code);
  // Left-justified to 16 bits: application code is resolution-independent.
  return static_cast<std::uint16_t>(static_cast<std::uint32_t>(code)
                                    << (16 - bits));
}

void AdcPeBlock::output(const model::SimContext& ctx) {
  switch (mode_) {
    case IoMode::kMil:
      if (!hw_fidelity_) {
        // Ablation: ideal pass-through scaling, no quantization/clamping.
        const double vref = adc_->properties().get_real("vref_high");
        set_out(0, in(0) / vref * 65535.0);
        if (!ctx.minor) events_["OnEnd"].fire(ctx);
        break;
      }
      // Simulate the converter: genuine N-bit resolution and clamping.
      if (!ctx.minor) latched_ = quantize_volts(in(0));
      set_out(0, static_cast<double>(latched_));
      if (!ctx.minor) events_["OnEnd"].fire(ctx);
      break;
    case IoMode::kTarget:
    case IoMode::kPil:
      set_out(0, static_cast<double>(latched_));
      break;
  }
}

void AdcPeBlock::target_read(const model::SimContext& ctx) {
  if (mode_ == IoMode::kPil) {
    // PIL: the value arrives over the communication line (plant units);
    // the conversion quantization still applies.
    latched_ = quantize_volts(pil_input());
    return;
  }
  auto* periph = adc_->peripheral();
  if (periph) {
    const std::uint32_t raw = periph->sample_now(adc_->channel());
    const int shift = 16 - periph->config().resolution_bits;
    latched_ = static_cast<std::uint16_t>(raw << shift);
  }
  (void)ctx;
}

mcu::OpCounts AdcPeBlock::io_ops() const {
  mcu::OpCounts ops;
  ops.mem = 3;
  ops.alu16 = 2;
  ops.branch = 1;
  return ops;
}

std::uint64_t AdcPeBlock::extra_cycles(const mcu::DerivativeSpec& cpu) const {
  // Blocking conversion: the CPU spins for the converter's sample time.
  const double conv_s = cpu.adc_cycles_per_sample / cpu.adc_clock_hz;
  return static_cast<std::uint64_t>(conv_s * cpu.clock_hz);
}

std::vector<std::string> AdcPeBlock::required_methods() const {
  return {"Measure", "GetValue16"};
}

std::string AdcPeBlock::emit_target_c(bool pil, const std::string& var) const {
  if (pil) {
    return util::format("%s = PIL_ReadInput(%s_SLOT);  /* PE %s via comm */\n",
                        var.c_str(), bean_->name().c_str(), name().c_str());
  }
  return util::format(
      "%s_Measure(TRUE);\n%s_GetValue16(&%s);  /* PE %s */\n",
      bean_->name().c_str(), bean_->name().c_str(), var.c_str(),
      name().c_str());
}

// ------------------------------------------------------------------ PWM

PwmPeBlock::PwmPeBlock(std::string name, beans::PwmBean& bean)
    : PeBlock(std::move(name), 1, 1, bean), pwm_(&bean) {}

double PwmPeBlock::quantize_duty(double ratio) const {
  const auto modulo = pwm_->properties().get_int("modulo");
  const double clamped = std::clamp(ratio, 0.0, 1.0);
  if (modulo <= 0) return clamped;  // not validated yet: pass through
  const double steps = static_cast<double>(modulo);
  return std::round(clamped * steps) / steps;
}

void PwmPeBlock::output(const model::SimContext& ctx) {
  (void)ctx;
  if (mode_ == IoMode::kMil && !hw_fidelity_) {
    set_out(0, in(0));  // ablation: ideal actuator
    return;
  }
  // MIL: the plant sees the duty at the counter's true granularity.
  set_out(0, quantize_duty(in(0)));
}

void PwmPeBlock::target_init(const model::SimContext&) { pwm_->Enable(); }

void PwmPeBlock::target_write(const model::SimContext&) {
  const double duty = std::clamp(in(0), 0.0, 1.0);
  if (mode_ == IoMode::kPil) {
    pil_output(duty);
    return;
  }
  pwm_->SetRatio16(static_cast<std::uint16_t>(std::lround(duty * 65535.0)));
}

mcu::OpCounts PwmPeBlock::io_ops() const {
  mcu::OpCounts ops;
  ops.mul32 = 1;  // 16x16 ratio scaling to the modulo
  ops.alu16 = 2;
  ops.mem = 2;
  return ops;
}

std::vector<std::string> PwmPeBlock::required_methods() const {
  return {"Enable", "SetRatio16"};
}

std::string PwmPeBlock::emit_target_c(bool pil, const std::string& var) const {
  if (pil) {
    return util::format(
        "PIL_WriteOutput(%s_SLOT, %s);  /* PE %s via comm */\n",
        bean_->name().c_str(), var.c_str(), name().c_str());
  }
  return util::format("%s_SetRatio16((word)(%s * 65535U));  /* PE %s */\n",
                      bean_->name().c_str(), var.c_str(), name().c_str());
}

// -------------------------------------------------------------- QuadDec

QuadDecPeBlock::QuadDecPeBlock(std::string name, beans::QuadDecBean& bean)
    : PeBlock(std::move(name), 1, 1, bean), qdec_(&bean) {
  set_output_type(0, model::DataType::kInt16);
}

std::int16_t QuadDecPeBlock::angle_to_counts(double angle_rad) const {
  const double cpr = static_cast<double>(qdec_->counts_per_rev());
  const double counts =
      std::floor(angle_rad / (2.0 * std::numbers::pi) * cpr);
  // 16-bit wraparound exactly like the hardware position register.
  const auto wide = static_cast<std::int64_t>(counts);
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(wide & 0xFFFF));
}

void QuadDecPeBlock::output(const model::SimContext& ctx) {
  switch (mode_) {
    case IoMode::kMil:
      if (!hw_fidelity_) {
        // Ablation: exact fractional counts, no wrap, no quantization.
        const double cpr = static_cast<double>(qdec_->counts_per_rev());
        set_out(0, in(0) / (2.0 * std::numbers::pi) * cpr);
        break;
      }
      if (!ctx.minor) latched_ = angle_to_counts(in(0));
      set_out(0, static_cast<double>(latched_));
      break;
    case IoMode::kTarget:
    case IoMode::kPil:
      set_out(0, static_cast<double>(latched_));
      break;
  }
}

void QuadDecPeBlock::target_read(const model::SimContext&) {
  if (mode_ == IoMode::kPil) {
    latched_ = angle_to_counts(pil_input());
    return;
  }
  latched_ = qdec_->GetPosition();
}

mcu::OpCounts QuadDecPeBlock::io_ops() const {
  mcu::OpCounts ops;
  ops.mem = 2;
  ops.alu16 = 1;
  return ops;
}

std::vector<std::string> QuadDecPeBlock::required_methods() const {
  return {"GetPosition"};
}

std::string QuadDecPeBlock::emit_target_c(bool pil,
                                          const std::string& var) const {
  if (pil) {
    return util::format("%s = PIL_ReadInput(%s_SLOT);  /* PE %s via comm */\n",
                        var.c_str(), bean_->name().c_str(), name().c_str());
  }
  return util::format("%s_GetPosition((int *)&%s);  /* PE %s */\n",
                      bean_->name().c_str(), var.c_str(), name().c_str());
}

// ---------------------------------------------------------------- BitIO

BitIoPeBlock::BitIoPeBlock(std::string name, beans::BitIoBean& bean)
    : PeBlock(std::move(name), 1, 1, bean), bit_(&bean) {
  set_output_type(0, model::DataType::kBool);
}

bool BitIoPeBlock::is_output() const {
  return bit_->properties().get_string("direction") == "output";
}

IoDirection BitIoPeBlock::io_direction() const {
  return is_output() ? IoDirection::kOutput : IoDirection::kInput;
}

void BitIoPeBlock::output(const model::SimContext& ctx) {
  if (is_output()) {
    set_out(0, in_bool(0) ? 1.0 : 0.0);  // echo for scopes
    return;
  }
  switch (mode_) {
    case IoMode::kMil: {
      const bool level = in_bool(0);
      if (!ctx.minor && level != prev_in_) {
        const std::string& edge = bit_->properties().get_string("edge");
        const bool rising = !prev_in_ && level;
        const bool fire = edge == "both" || (edge == "rising" && rising) ||
                          (edge == "falling" && !rising);
        if (fire) events_["OnInterrupt"].fire(ctx);
        prev_in_ = level;
      }
      latched_ = level;
      set_out(0, level ? 1.0 : 0.0);
      break;
    }
    case IoMode::kTarget:
    case IoMode::kPil:
      set_out(0, latched_ ? 1.0 : 0.0);
      break;
  }
}

void BitIoPeBlock::target_read(const model::SimContext&) {
  if (is_output()) return;
  latched_ = mode_ == IoMode::kPil ? (pil_input() != 0.0) : bit_->GetVal();
}

void BitIoPeBlock::target_write(const model::SimContext&) {
  if (!is_output()) return;
  const bool level = in_bool(0);
  if (mode_ == IoMode::kPil) {
    pil_output(level ? 1.0 : 0.0);
    return;
  }
  bit_->PutVal(level);
}

mcu::OpCounts BitIoPeBlock::io_ops() const {
  mcu::OpCounts ops;
  ops.mem = 1;
  ops.alu16 = 1;
  return ops;
}

std::vector<std::string> BitIoPeBlock::required_methods() const {
  return is_output() ? std::vector<std::string>{"PutVal"}
                     : std::vector<std::string>{"GetVal"};
}

std::string BitIoPeBlock::emit_target_c(bool pil,
                                        const std::string& var) const {
  if (pil) {
    if (is_output()) {
      return util::format("PIL_WriteOutput(%s_SLOT, %s);\n",
                          bean_->name().c_str(), var.c_str());
    }
    return util::format("%s = PIL_ReadInput(%s_SLOT);\n", var.c_str(),
                        bean_->name().c_str());
  }
  if (is_output()) {
    return util::format("%s_PutVal(%s);  /* PE %s */\n",
                        bean_->name().c_str(), var.c_str(), name().c_str());
  }
  return util::format("%s = %s_GetVal();  /* PE %s */\n", var.c_str(),
                      bean_->name().c_str(), name().c_str());
}

// ------------------------------------------------------------- TimerInt

TimerIntPeBlock::TimerIntPeBlock(std::string name, beans::TimerIntBean& bean)
    : PeBlock(std::move(name), 0, 0, bean), timer_(&bean) {}

void TimerIntPeBlock::output(const model::SimContext& ctx) {
  // MIL: the periodic interrupt "fires" at every sample hit of this block.
  if (mode_ == IoMode::kMil && !ctx.minor) {
    events_["OnInterrupt"].fire(ctx);
  }
}

void TimerIntPeBlock::target_init(const model::SimContext&) {
  timer_->Enable();
}

std::vector<std::string> TimerIntPeBlock::required_methods() const {
  return {"Enable"};
}

std::string TimerIntPeBlock::emit_target_c(bool,
                                           const std::string&) const {
  return util::format("/* %s: periodic interrupt %s drives the model step */\n",
                      name().c_str(), bean_->name().c_str());
}

}  // namespace iecd::core
