/// \file adc.hpp
/// Successive-approximation ADC model.  Conversion takes a real amount of
/// time (sample clocks at the ADC clock); the analog input is sampled at
/// conversion *start* (sample-and-hold), the digital result and the
/// end-of-conversion interrupt appear when the conversion completes.  The
/// result has genuine N-bit resolution — the property the paper stresses:
/// the ADC block "really provides the controller model with values with
/// the 12 bits resolution".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "periph/peripheral.hpp"

namespace iecd::periph {

struct AdcConfig {
  int resolution_bits = 12;
  int channels = 4;
  double vref_low = 0.0;
  double vref_high = 3.3;
  sim::SimTime conversion_time = sim::microseconds(2);
  mcu::IrqVector eoc_vector = -1;  ///< <0: no end-of-conversion interrupt
  bool continuous = false;         ///< restart automatically after EOC
};

class AdcPeripheral : public Peripheral {
 public:
  AdcPeripheral(mcu::Mcu& mcu, AdcConfig config, std::string name = "adc");

  const AdcConfig& config() const { return config_; }

  /// Binds the voltage source for a channel (sampled lazily at conversion
  /// start).  Unbound channels read vref_low.
  void set_analog_source(int channel, std::function<double(sim::SimTime)> fn);

  /// Starts a single conversion on \p channel.  Returns false if a
  /// conversion is already in progress (hardware would ignore the request).
  bool start_conversion(int channel);

  bool busy() const { return busy_; }

  /// Synchronous (busy-wait) conversion: samples the channel's source now
  /// and returns the code immediately.  The caller is responsible for
  /// charging the conversion time as CPU busy-wait cycles — this is what
  /// the generated Measure(WaitForResult=TRUE) path does.
  std::uint32_t sample_now(int channel);

  /// Last completed result for \p channel (raw code, right-justified).
  std::uint32_t result(int channel) const;

  /// Converts a raw code back to volts (for tests/instrumentation).
  double code_to_volts(std::uint32_t code) const;
  /// Quantizes a voltage the way the converter would.
  std::uint32_t volts_to_code(double volts) const;

  std::uint32_t max_code() const {
    return (std::uint32_t{1} << config_.resolution_bits) - 1;
  }

  std::uint64_t conversions_completed() const { return completed_; }

  /// Fault-injection hook (see src/fault/): transforms the converted code
  /// before it is latched — stuck-at bits, reference noise, a flaky input
  /// mux.  Applied on both the interrupt-driven and the busy-wait
  /// (sample_now) paths; null (the default) or an identity hook leaves
  /// results bit-identical.
  using CodeFaultHook =
      std::function<std::uint32_t(int channel, std::uint32_t code)>;
  void set_code_fault_hook(CodeFaultHook hook) { fault_hook_ = std::move(hook); }

  void reset() override;

 private:
  void finish_conversion(int channel, double sampled_volts);
  std::uint32_t apply_fault(int channel, std::uint32_t code) {
    return fault_hook_ ? fault_hook_(channel, code) : code;
  }

  AdcConfig config_;
  CodeFaultHook fault_hook_;
  std::vector<std::function<double(sim::SimTime)>> sources_;
  std::vector<std::uint32_t> results_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace iecd::periph
