/// \file engine.hpp
/// Simulation engine: multirate discrete execution plus a fixed-step RK4
/// solver for continuous states.  This is the MIL (model-in-the-loop)
/// executor of the development cycle — the whole closed loop, plant and
/// controller, runs here before any code generation happens.
#pragma once

#include <cstdint>
#include <vector>

#include "model/model.hpp"

namespace iecd::model {

struct EngineOptions {
  double stop_time = 1.0;    ///< [s]
  double base_period = 0.0;  ///< [s]; 0 derives it from the discrete rates
  int minor_steps = 4;       ///< RK4 substeps per major step
};

class Engine {
 public:
  Engine(Model& model, EngineOptions options);

  /// Resolves sample times, initializes blocks, gathers continuous states.
  /// Throws std::logic_error on inconsistent rates or algebraic loops.
  void initialize();

  /// Executes one major step.  Returns false once stop_time is reached.
  bool step();

  /// Runs until stop_time.
  void run();

  /// Steps until time() >= t (used by the PIL host to advance the plant
  /// model in lockstep with the co-simulation world).
  void advance_to(double t);

  double time() const;
  double base_period() const { return base_period_; }
  std::uint64_t major_steps() const { return major_index_; }
  bool initialized() const { return initialized_; }

  /// Blocks resolved as continuous (for tests / diagnostics).
  const std::vector<Block*>& continuous_blocks() const {
    return continuous_blocks_;
  }

 private:
  /// Flattened dispatch entry, precomputed at initialize(): rate checks on
  /// the major-step path are pure integer arithmetic (no double->ns
  /// conversions, no sample-time struct reads).
  struct ExecEntry {
    Block* block = nullptr;
    std::uint64_t period_ticks = 0;  ///< 0 = continuous (runs every step)
    std::uint64_t offset_ticks = 0;
  };

  static bool due(const ExecEntry& e, std::uint64_t major) {
    if (e.period_ticks == 0) return true;  // continuous
    if (major < e.offset_ticks) return false;
    if (e.period_ticks == 1) return true;  // base rate
    return (major - e.offset_ticks) % e.period_ticks == 0;
  }

  void resolve_sample_times();
  void build_exec_list();
  void eval_derivatives(double t, std::vector<double>& scratch_states,
                        std::vector<double>& dx);
  void integrate(double t0);

  Model& model_;
  EngineOptions options_;
  double base_period_ = 0.0;
  std::int64_t base_period_ns_ = 0;
  std::uint64_t major_index_ = 0;
  bool initialized_ = false;

  std::vector<ExecEntry> exec_;  ///< sorted order, integer-rate annotated
  std::uint64_t model_epoch_ = 0;
  std::vector<Block*> continuous_blocks_;
  std::vector<std::size_t> state_offsets_;  ///< per continuous block
  std::size_t total_states_ = 0;
  std::vector<double> states_;
  std::vector<double> k1_, k2_, k3_, k4_, scratch_;
};

}  // namespace iecd::model
