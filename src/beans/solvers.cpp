#include "beans/solvers.hpp"

#include <algorithm>
#include <cmath>

namespace iecd::beans {

std::optional<TimerSolution> solve_timer_period(const mcu::DerivativeSpec& cpu,
                                                double period_s,
                                                double tolerance) {
  if (!(period_s > 0)) return std::nullopt;
  const double max_modulo =
      std::ldexp(1.0, static_cast<int>(cpu.timer_modulo_bits)) - 1;
  std::optional<TimerSolution> best;
  for (std::uint32_t prescaler : cpu.timer_prescalers) {
    const double tick_s = static_cast<double>(prescaler) / cpu.clock_hz;
    const double modulo_real = period_s / tick_s;
    if (modulo_real < 1.0) continue;
    if (modulo_real > max_modulo) continue;
    const auto modulo = static_cast<std::uint32_t>(
        std::clamp(std::round(modulo_real), 1.0, max_modulo));
    const double achieved = static_cast<double>(modulo) * tick_s;
    const double err = std::abs(achieved - period_s) / period_s;
    if (err > tolerance) continue;
    if (!best || err < best->relative_error) {
      best = TimerSolution{prescaler, modulo, achieved, err};
    }
  }
  return best;
}

std::optional<PwmSolution> solve_pwm_frequency(const mcu::DerivativeSpec& cpu,
                                               double frequency_hz,
                                               double tolerance) {
  if (!(frequency_hz > 0)) return std::nullopt;
  const double max_modulo =
      std::ldexp(1.0, static_cast<int>(cpu.pwm_counter_bits)) - 1;
  // Ascending prescalers: the first feasible one yields the largest modulo
  // and therefore the finest duty resolution.
  for (std::uint32_t prescaler : cpu.timer_prescalers) {
    const double modulo_real =
        cpu.clock_hz / (static_cast<double>(prescaler) * frequency_hz);
    if (modulo_real > max_modulo) continue;
    if (modulo_real < 2.0) break;  // even the smallest prescaler is too fast
    const auto modulo = static_cast<std::uint32_t>(
        std::clamp(std::round(modulo_real), 2.0, max_modulo));
    const double achieved =
        cpu.clock_hz / (static_cast<double>(prescaler) * modulo);
    const double err = std::abs(achieved - frequency_hz) / frequency_hz;
    if (err > tolerance) continue;
    PwmSolution s;
    s.prescaler = prescaler;
    s.modulo = modulo;
    s.achieved_frequency_hz = achieved;
    s.relative_error = err;
    s.duty_resolution_bits =
        static_cast<int>(std::floor(std::log2(static_cast<double>(modulo))));
    return s;
  }
  return std::nullopt;
}

sim::SimTime adc_conversion_time(const mcu::DerivativeSpec& cpu) {
  if (!(cpu.adc_clock_hz > 0)) return sim::microseconds(2);
  const double seconds = cpu.adc_cycles_per_sample / cpu.adc_clock_hz;
  return sim::from_seconds(seconds);
}

bool uart_baud_supported(const mcu::DerivativeSpec& cpu, std::uint32_t baud) {
  return std::find(cpu.uart_bauds.begin(), cpu.uart_bauds.end(), baud) !=
         cpu.uart_bauds.end();
}

}  // namespace iecd::beans
