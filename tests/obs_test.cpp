// Online timing analysis: latency-histogram percentiles against exact
// sorted-vector references on seeded distributions, the deadline==response
// boundary, monitor reset/merge determinism, flight-recorder trigger
// ordering, the allocation-free record-path guarantee, and the end-to-end
// deadline-miss injection that must yield a post-mortem dump plus a health
// report naming the offending task.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <vector>

#include "core/case_study.hpp"
#include "exec/sweep.hpp"
#include "obs/health_report.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/monitor.hpp"
#include "obs/watermark.hpp"
#include "sim/world.hpp"
#include "trace/trace.hpp"
#include "util/statistics.hpp"

// Shared with comm_fastpath_test.cpp: the one global counting operator new
// the binary is allowed to define.
namespace iecd::testhooks {
extern std::atomic<std::uint64_t> g_allocations;
}  // namespace iecd::testhooks

namespace iecd {
namespace {

// ------------------------------------------------ histogram vs sorted ref

/// Exact percentile reference: util::SampleSeries over the same samples.
void expect_percentiles_close(const obs::LatencyHistogram& h,
                              const std::vector<double>& samples,
                              const char* label) {
  util::SampleSeries ref;
  for (double x : samples) ref.add(x);
  const double tol = h.relative_error_bound();
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = ref.percentile(p);
    const double approx = h.percentile(p);
    // The answer lies in the bucket containing the rank; the rank's true
    // order statistic shares that bucket or an adjacent one, and a bucket
    // one octave up is twice as wide relative to the reference — hence two
    // sub-bucket widths of the larger value.
    const double bound =
        2.0 * tol * std::max(std::abs(exact), std::abs(approx)) + 1e-9;
    EXPECT_NEAR(approx, exact, bound) << label << " p" << p;
  }
  EXPECT_DOUBLE_EQ(h.min(), ref.min()) << label;
  EXPECT_DOUBLE_EQ(h.max(), ref.max()) << label;
  EXPECT_EQ(h.count(), ref.count()) << label;
}

TEST(LatencyHistogram, PercentilesMatchSortedReferenceUniform) {
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> dist(5.0, 900.0);
  obs::LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(rng);
    samples.push_back(x);
    h.record(x);
  }
  expect_percentiles_close(h, samples, "uniform");
}

TEST(LatencyHistogram, PercentilesMatchSortedReferenceLognormal) {
  std::mt19937 rng(777);
  std::lognormal_distribution<double> dist(3.0, 1.2);
  obs::LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(rng);
    samples.push_back(x);
    h.record(x);
  }
  expect_percentiles_close(h, samples, "lognormal");
}

TEST(LatencyHistogram, PercentilesMatchSortedReferenceBimodal) {
  // Fast path vs slow path: the shape deadline analysis actually meets.
  std::mt19937 rng(2024);
  std::normal_distribution<double> fast(50.0, 2.0);
  std::normal_distribution<double> slow(800.0, 30.0);
  std::bernoulli_distribution pick(0.9);
  obs::LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::max(0.1, pick(rng) ? fast(rng) : slow(rng));
    samples.push_back(x);
    h.record(x);
  }
  expect_percentiles_close(h, samples, "bimodal");
}

TEST(LatencyHistogram, ExactEdgesAndSmallCounts) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.percentile(50.0), 0.0);  // empty
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
  h.record(0.0);  // zero lands in the underflow bucket, min stays exact
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogram, MergeEqualsSequentialFeed) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(0.5, 5000.0);
  obs::LatencyHistogram a, b, both;
  for (int i = 0; i < 5000; ++i) {
    const double x = dist(rng);
    (i % 2 ? a : b).record(x);
    both.record(x);
  }
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  for (double p : {1.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), both.percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogram, MergeRejectsConfigMismatchAndResetClears) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram::Config coarse;
  coarse.sub_bucket_bits = 2;
  obs::LatencyHistogram b(coarse);
  a.record(1.0);
  b.record(2.0);
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.count(), 1u);  // untouched on rejection
  a.reset();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.max(), 0.0);
}

// ------------------------------------------------------- timing monitors

TEST(TimingMonitor, DeadlineBoundaryIsMetExactly) {
  obs::TimingMonitor::Config config;
  config.period_s = 0.001;
  config.deadline_s = 0.001;  // 1 ms == 1000 us
  obs::TimingMonitor mon(config);
  // response == deadline exactly: met.
  EXPECT_FALSE(mon.record(0, 0, sim::from_seconds(0.001)));
  EXPECT_EQ(mon.deadline_misses(), 0u);
  // one nanosecond over: missed.
  EXPECT_TRUE(mon.record(sim::from_seconds(0.001), sim::from_seconds(0.001),
                         sim::from_seconds(0.002) + 1));
  EXPECT_EQ(mon.deadline_misses(), 1u);
  EXPECT_EQ(mon.last_miss_time(), sim::from_seconds(0.002) + 1);
  EXPECT_EQ(mon.activations(), 2u);
}

TEST(TimingMonitor, ResponseCountsQueueingDelayNotJustExecution) {
  obs::TimingMonitor::Config config;
  config.deadline_s = 0.0005;
  obs::TimingMonitor mon(config);
  // Raised at t=0, served 400us later for 200us: exec meets the budget,
  // response (600us) does not — the schedulability-analysis convention.
  const sim::SimTime start = sim::microseconds(400);
  const sim::SimTime end = sim::microseconds(600);
  EXPECT_TRUE(mon.record(0, start, end));
  EXPECT_DOUBLE_EQ(mon.exec_us().max(), 200.0);
  EXPECT_DOUBLE_EQ(mon.worst_response_us(), 600.0);
}

TEST(TimingMonitor, JitterTracksDeviationFromNominalPeriod) {
  obs::TimingMonitor::Config config;
  config.period_s = 0.001;
  obs::TimingMonitor mon(config);
  sim::SimTime t = 0;
  const sim::SimTime period = sim::from_seconds(0.001);
  for (int i = 0; i < 5; ++i) {
    mon.record(t, t, t + sim::microseconds(100));
    t += period;
  }
  // Perfectly periodic so far.
  EXPECT_DOUBLE_EQ(mon.jitter_us().max(), 0.0);
  // One activation lands 30 us late.
  mon.record(t + sim::microseconds(30), t + sim::microseconds(30),
             t + sim::microseconds(130));
  EXPECT_DOUBLE_EQ(mon.jitter_us().max(), 30.0);
  EXPECT_EQ(mon.jitter_us().count(), 5u);
}

TEST(TimingMonitor, MergeMatchesSequentialFeedAndResetClears) {
  obs::TimingMonitor::Config config;
  config.period_s = 0.001;
  config.deadline_s = 0.0012;
  std::mt19937 rng(4242);
  std::uniform_int_distribution<sim::SimTime> late(0, 500000);  // 0..500 us

  obs::TimingMonitor first(config), second(config), sequential(config);
  sim::SimTime t = 0;
  const sim::SimTime period = sim::from_seconds(0.001);
  std::vector<sim::SimTime> starts, ends;
  for (int i = 0; i < 400; ++i) {
    const sim::SimTime s = t + late(rng);
    starts.push_back(s);
    ends.push_back(s + sim::microseconds(700));
    t += period;
  }
  for (int i = 0; i < 400; ++i) {
    (i < 200 ? first : second).record(starts[i] - 100, starts[i], ends[i]);
    sequential.record(starts[i] - 100, starts[i], ends[i]);
  }
  first.merge(second);
  EXPECT_EQ(first.activations(), sequential.activations());
  EXPECT_EQ(first.deadline_misses(), sequential.deadline_misses());
  EXPECT_DOUBLE_EQ(first.worst_response_us(),
                   sequential.worst_response_us());
  for (double p : {50.0, 99.0}) {
    EXPECT_DOUBLE_EQ(first.response_us().percentile(p),
                     sequential.response_us().percentile(p));
  }
  // The merge seam drops exactly one jitter interval (run boundary).
  EXPECT_EQ(first.jitter_us().count() + 1, sequential.jitter_us().count());

  first.reset();
  EXPECT_EQ(first.activations(), 0u);
  EXPECT_TRUE(first.response_us().empty());
}

TEST(WatermarkMonitor, TracksPeakLowMeanAndMerges) {
  obs::WatermarkMonitor a, b;
  a.update(3.0);
  a.update(9.0);
  a.update(1.0);
  EXPECT_DOUBLE_EQ(a.peak(), 9.0);
  EXPECT_DOUBLE_EQ(a.low(), 1.0);
  EXPECT_DOUBLE_EQ(a.current(), 1.0);
  b.update(20.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.peak(), 20.0);
  EXPECT_DOUBLE_EQ(a.low(), 1.0);
  EXPECT_EQ(a.samples(), 4u);
  // merge keeps THIS monitor's last observation as current.
  EXPECT_DOUBLE_EQ(a.current(), 1.0);
}

// -------------------------------------------------------- flight recorder

TEST(FlightRecorder, TriggersOrderedAndBounded) {
  obs::FlightRecorder::Config config;
  config.max_dumps = 2;
  obs::FlightRecorder recorder(config);
  recorder.trigger("deadline_miss", 100, "taskA");
  recorder.trigger("fifo_overflow", 200, "uart");
  recorder.trigger("deadline_miss", 300, "taskB");  // beyond max_dumps

  ASSERT_EQ(recorder.dumps().size(), 2u);
  EXPECT_EQ(recorder.dumps()[0].trigger, "deadline_miss");
  EXPECT_EQ(recorder.dumps()[0].detail, "taskA");
  EXPECT_EQ(recorder.dumps()[0].ordinal, 1u);
  EXPECT_EQ(recorder.dumps()[1].trigger, "fifo_overflow");
  EXPECT_EQ(recorder.dumps()[1].ordinal, 2u);
  EXPECT_EQ(recorder.suppressed(), 1u);
  EXPECT_EQ(recorder.triggers_total(), 3u);
  EXPECT_EQ(recorder.trigger_counts().at("deadline_miss"), 2u);
}

TEST(FlightRecorder, CounterTriggersLatchAndFireOnIncrease) {
  obs::FlightRecorder recorder;
  std::uint64_t overruns = 5;  // pre-existing count must NOT trigger
  recorder.add_counter_trigger("uart_overrun",
                               [&overruns]() { return overruns; });
  recorder.poll(1000);
  EXPECT_TRUE(recorder.dumps().empty());
  overruns += 3;
  recorder.poll(2000);
  ASSERT_EQ(recorder.dumps().size(), 1u);
  EXPECT_EQ(recorder.dumps()[0].trigger, "uart_overrun");
  EXPECT_EQ(recorder.dumps()[0].detail, "+3");
  EXPECT_EQ(recorder.dumps()[0].time, 2000);
  recorder.poll(3000);  // no further increase, no further dump
  EXPECT_EQ(recorder.dumps().size(), 1u);
}

TEST(FlightRecorder, CapturesTrailingTraceEventsWithResolvedNames) {
  trace::TraceRecorder rec(64);
  trace::TraceSession session(rec);
  for (int i = 0; i < 10; ++i) {
    rec.instant("sim", "tick", "world", i * 100, i);
  }
  obs::FlightRecorder::Config config;
  config.trail_depth = 4;
  obs::FlightRecorder recorder(config);
  recorder.trigger("anomaly", 1000, "x");
  ASSERT_EQ(recorder.dumps().size(), 1u);
  const auto& events = recorder.dumps()[0].events;
  ASSERT_EQ(events.size(), 4u);  // trailing window only
  EXPECT_EQ(events.front().name, "tick");
  EXPECT_EQ(events.front().track, "world");
  EXPECT_EQ(events.front().value, 6.0);  // events 6..9 remain
  EXPECT_EQ(events.back().value, 9.0);
  // Dump strings survive the recorder being cleared.
  rec.clear();
  EXPECT_EQ(recorder.dumps()[0].events.front().category, "sim");
}

// ------------------------------------------------- hub, report, sweeps

TEST(MonitorHub, PollTracksQueueDepthAndStateProviderFillsDumps) {
  sim::World world;
  obs::MonitorHub hub;
  hub.timing("ctrl").record(0, 0, sim::microseconds(10));
  hub.arm(world, sim::milliseconds(1));
  // Keep some events pending so the depth probe sees a non-empty queue.
  world.queue().schedule_every(sim::milliseconds(10), [] {});
  world.run_for(sim::milliseconds(5));
  EXPECT_GE(hub.polls(), 4u);
  const obs::WatermarkMonitor* depth = hub.find_watermark("sim.event_queue.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GE(depth->peak(), 1.0);

  hub.flight().trigger("anomaly", world.now(), "detail");
  ASSERT_EQ(hub.flight().dumps().size(), 1u);
  const auto& state = hub.flight().dumps()[0].monitor_state;
  ASSERT_FALSE(state.empty());
  EXPECT_NE(state[0].find("ctrl"), std::string::npos);
}

TEST(HealthReport, MergePreservesPercentilesAndNamesOffenders) {
  auto make = [](int runs_seed) {
    obs::MonitorHub hub;
    obs::TimingMonitor::Config config;
    config.period_s = 0.001;
    config.deadline_s = 0.001;
    auto& mon = hub.timing("servo_step", config);
    std::mt19937 rng(runs_seed);
    std::uniform_int_distribution<sim::SimTime> exec_us(100, 900);
    sim::SimTime t = 0;
    for (int i = 0; i < 100; ++i) {
      mon.record(t, t, t + sim::microseconds(exec_us(rng)));
      t += sim::from_seconds(0.001);
    }
    return hub.report("unit");
  };
  obs::HealthReport merged = make(1);
  merged.merge(make(2));
  EXPECT_EQ(merged.runs, 2u);
  EXPECT_EQ(merged.tasks.at("servo_step").activations(), 200u);
  EXPECT_TRUE(merged.healthy());

  // An unhealthy report names the offending task in both renderings.
  obs::MonitorHub bad;
  obs::TimingMonitor::Config tight;
  tight.deadline_s = 0.0001;
  bad.timing("laggard", tight).record(0, 0, sim::milliseconds(1));
  bad.flight().trigger("deadline_miss", sim::milliseconds(1), "laggard");
  obs::HealthReport report = bad.report("unit");
  EXPECT_FALSE(report.healthy());
  EXPECT_EQ(report.deadline_misses(), 1u);
  EXPECT_NE(report.to_text().find("laggard"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"laggard\""), std::string::npos);
  EXPECT_NE(report.to_json().find("\"healthy\":false"), std::string::npos);
}

TEST(SweepRunner, HealthMergeIsThreadCountInvariant) {
  const auto scenario = [](std::size_t index, trace::MetricsRegistry& metrics,
                           obs::HealthReport& health) {
    obs::MonitorHub hub;
    obs::TimingMonitor::Config config;
    config.period_s = 0.001;
    config.deadline_s = 0.0008;
    auto& mon = hub.timing("task", config);
    std::mt19937 rng(static_cast<unsigned>(index) * 7919u + 13u);
    std::uniform_int_distribution<sim::SimTime> exec_ns(100000, 1000000);
    sim::SimTime t = 0;
    for (int i = 0; i < 50; ++i) {
      if (mon.record(t, t, t + exec_ns(rng))) {
        hub.flight().trigger("deadline_miss", t, "task");
      }
      t += sim::from_seconds(0.001);
    }
    metrics.counter("runs").value += 1;
    health = hub.report("sweep");
  };

  exec::SweepRunner sequential({1});
  exec::SweepRunner parallel({4});
  const auto a = sequential.run(8, exec::SweepRunner::HealthScenario(scenario));
  const auto b = parallel.run(8, exec::SweepRunner::HealthScenario(scenario));
  EXPECT_EQ(a.health.runs, 8u);
  EXPECT_EQ(a.health.to_json(), b.health.to_json());
  EXPECT_EQ(a.health.tasks.at("task").activations(), 400u);
  EXPECT_EQ(a.health.deadline_misses(), b.health.deadline_misses());
}

// ------------------------------------------------ allocation-free record

TEST(ObsRecordPath, RecordIsAllocationFree) {
  obs::LatencyHistogram histogram;
  obs::WatermarkMonitor watermark;
  obs::TimingMonitor::Config config;
  config.period_s = 0.001;
  config.deadline_s = 0.002;
  obs::TimingMonitor monitor(config);

  // Warm-up (constructors above did all the allocating they ever will).
  monitor.record(0, 0, sim::microseconds(10));

  const std::uint64_t before = testhooks::g_allocations.load();
  sim::SimTime t = 0;
  for (int i = 0; i < 10000; ++i) {
    histogram.record(static_cast<double>(i % 997) + 0.5);
    watermark.update(static_cast<double>(i % 31));
    monitor.record(t, t + 1000, t + 500000);
    t += sim::from_seconds(0.001);
  }
  EXPECT_EQ(testhooks::g_allocations.load(), before)
      << "monitor record path touched the heap";
}

// -------------------------------------- end-to-end deadline-miss injection

TEST(ObsEndToEnd, InjectedOverloadProducesFlightDumpAndUnhealthyReport) {
  trace::TraceRecorder rec(1 << 12);
  trace::TraceSession session(rec);

  core::ServoConfig cfg;
  cfg.duration_s = 0.08;
  core::ServoSystem servo(cfg);

  obs::MonitorHub hub;
  core::ServoSystem::HilOptions options;
  options.duration_s = 0.08;
  // Charge far more cycles than one period affords: every activation
  // overruns, so responses exceed the implicit deadline.
  options.extra_latency_cycles = 80000;
  options.monitors = &hub;
  servo.run_hil(options);

  const obs::TimingMonitor* step = hub.find_timing("servo_hil_step");
  ASSERT_NE(step, nullptr);
  EXPECT_GT(step->deadline_misses(), 0u);
  EXPECT_GT(step->worst_response_us(), 1000.0);  // > 1 ms period

  // Flight recorder: first dump is a deadline miss naming the task and
  // carrying trailing trace events from the run.
  ASSERT_FALSE(hub.flight().dumps().empty());
  const auto& dump = hub.flight().dumps().front();
  EXPECT_EQ(dump.trigger, "deadline_miss");
  EXPECT_EQ(dump.detail, "servo_hil_step");
  EXPECT_FALSE(dump.events.empty());
  EXPECT_FALSE(dump.monitor_state.empty());

  const obs::HealthReport report = hub.report("servo_hil_overload");
  EXPECT_FALSE(report.healthy());
  EXPECT_NE(report.to_text().find("servo_hil_step"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"deadline_miss\""), std::string::npos);
  EXPECT_GT(hub.polls(), 0u);
}

TEST(ObsEndToEnd, MonitorsArePassiveTrajectoryIsUnchanged) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.1;
  const auto bare = [&] {
    core::ServoSystem servo(cfg);
    core::ServoSystem::HilOptions options;
    return servo.run_hil(options);
  }();
  obs::MonitorHub hub;
  const auto monitored = [&] {
    core::ServoSystem servo(cfg);
    core::ServoSystem::HilOptions options;
    options.monitors = &hub;
    return servo.run_hil(options);
  }();
  EXPECT_EQ(bare.iae, monitored.iae);
  EXPECT_EQ(bare.activations, monitored.activations);
  EXPECT_EQ(bare.exec_us_max, monitored.exec_us_max);
  // The monitored run's exact per-activation stats agree with the profiler.
  const obs::TimingMonitor* step = hub.find_timing("servo_hil_step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->activations(), monitored.activations);
  EXPECT_DOUBLE_EQ(step->exec_us().max(), monitored.exec_us.max());
}

TEST(ObsEndToEnd, PilSessionFeedsRttMonitorAndFifoWatermark) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.05;
  core::ServoSystem servo(cfg);
  obs::MonitorHub hub;
  core::ServoSystem::PilRunOptions options;
  options.duration_s = 0.05;
  options.monitors = &hub;
  const auto result = servo.run_pil(options);

  const obs::TimingMonitor* rtt = hub.find_timing("pil.exchange");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->activations(), 0u);
  // Monitor max is exact: matches the session's own RTT series.
  EXPECT_DOUBLE_EQ(rtt->worst_response_us(),
                   result.report.round_trip_us.max());
  const obs::WatermarkMonitor* fifo = hub.find_watermark("AS1.tx_fifo");
  ASSERT_NE(fifo, nullptr);
  EXPECT_GT(fifo->samples(), 0u);
  EXPECT_GE(fifo->peak(), 1.0);
}

}  // namespace
}  // namespace iecd
