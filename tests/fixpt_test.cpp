#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fixpt/autoscale.hpp"
#include "fixpt/fixed.hpp"
#include "fixpt/format.hpp"
#include "fixpt/value.hpp"

namespace iecd::fixpt {
namespace {

TEST(FixedFormat, RangesForCommonFormats) {
  const FixedFormat q15 = FixedFormat::s16(15);
  EXPECT_EQ(q15.max_raw(), 32767);
  EXPECT_EQ(q15.min_raw(), -32768);
  EXPECT_NEAR(q15.max_value(), 1.0 - std::ldexp(1.0, -15), 1e-12);
  EXPECT_DOUBLE_EQ(q15.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(q15.resolution(), std::ldexp(1.0, -15));

  const FixedFormat u16 = FixedFormat::u16(0);
  EXPECT_EQ(u16.max_raw(), 65535);
  EXPECT_EQ(u16.min_raw(), 0);
}

TEST(FixedFormat, NamesMatchSimulinkConvention) {
  EXPECT_EQ(FixedFormat::s16(7).to_string(), "sfix16_En7");
  EXPECT_EQ(FixedFormat::u16(0).to_string(), "ufix16_En0");
  EXPECT_EQ((FixedFormat{16, -2, true}).to_string(), "sfix16_E2");
}

TEST(FixedFormat, ValidityBounds) {
  EXPECT_TRUE(FixedFormat::s16(15).valid());
  EXPECT_FALSE((FixedFormat{1, 0, true}).valid());
  EXPECT_FALSE((FixedFormat{40, 0, true}).valid());
}

TEST(ApplyOverflow, SaturateClampsWrapWraps) {
  const FixedFormat f{8, 0, true};  // range [-128, 127]
  EXPECT_EQ(apply_overflow(200, f, Overflow::kSaturate), 127);
  EXPECT_EQ(apply_overflow(-200, f, Overflow::kSaturate), -128);
  EXPECT_EQ(apply_overflow(100, f, Overflow::kSaturate), 100);
  EXPECT_EQ(apply_overflow(128, f, Overflow::kWrap), -128);
  EXPECT_EQ(apply_overflow(256, f, Overflow::kWrap), 0);
  EXPECT_EQ(apply_overflow(-129, f, Overflow::kWrap), 127);
}

TEST(ShiftWithRounding, RoundingModes) {
  // 13 / 4 = 3.25 ; -13 / 4 = -3.25
  EXPECT_EQ(shift_with_rounding(13, 2, Rounding::kNearest), 3);
  EXPECT_EQ(shift_with_rounding(-13, 2, Rounding::kNearest), -3);
  EXPECT_EQ(shift_with_rounding(14, 2, Rounding::kNearest), 4);   // 3.5 -> 4
  EXPECT_EQ(shift_with_rounding(-14, 2, Rounding::kNearest), -4); // away from 0
  EXPECT_EQ(shift_with_rounding(13, 2, Rounding::kFloor), 3);
  EXPECT_EQ(shift_with_rounding(-13, 2, Rounding::kFloor), -4);
  EXPECT_EQ(shift_with_rounding(13, 2, Rounding::kZero), 3);
  EXPECT_EQ(shift_with_rounding(-13, 2, Rounding::kZero), -3);
  EXPECT_EQ(shift_with_rounding(5, -3, Rounding::kNearest), 40);  // left shift
}

TEST(FixedValue, RoundTripWithinHalfLsb) {
  const FixedFormat fmt = FixedFormat::s16(10);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-30.0, 30.0);
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    const FixedValue v = FixedValue::from_double(x, fmt);
    EXPECT_LE(std::abs(v.to_double() - x), fmt.resolution() / 2 + 1e-15);
  }
}

TEST(FixedValue, SaturatesOutOfRangeInput) {
  const FixedFormat q15 = FixedFormat::s16(15);
  EXPECT_DOUBLE_EQ(FixedValue::from_double(5.0, q15).to_double(),
                   q15.max_value());
  EXPECT_DOUBLE_EQ(FixedValue::from_double(-5.0, q15).to_double(), -1.0);
  // Extreme doubles must not overflow the int64 conversion.
  EXPECT_DOUBLE_EQ(FixedValue::from_double(1e300, q15).to_double(),
                   q15.max_value());
  EXPECT_DOUBLE_EQ(FixedValue::from_double(-1e300, q15).to_double(), -1.0);
}

TEST(FixedValue, AddSubExactWhenRepresentable) {
  const FixedFormat fmt = FixedFormat::s16(8);
  const FixedValue a = FixedValue::from_double(3.5, fmt);
  const FixedValue b = FixedValue::from_double(1.25, fmt);
  EXPECT_DOUBLE_EQ(a.add(b, fmt).to_double(), 4.75);
  EXPECT_DOUBLE_EQ(a.sub(b, fmt).to_double(), 2.25);
}

TEST(FixedValue, AddAcrossDifferentFormats) {
  const FixedValue a = FixedValue::from_double(1.5, FixedFormat::s16(4));
  const FixedValue b = FixedValue::from_double(0.25, FixedFormat::s16(12));
  const FixedValue sum = a.add(b, FixedFormat::s32(12));
  EXPECT_DOUBLE_EQ(sum.to_double(), 1.75);
}

TEST(FixedValue, AddSaturatesAtFormatLimit) {
  const FixedFormat q15 = FixedFormat::s16(15);
  const FixedValue a = FixedValue::from_double(0.9, q15);
  const FixedValue b = FixedValue::from_double(0.9, q15);
  EXPECT_DOUBLE_EQ(a.add(b, q15).to_double(), q15.max_value());
}

TEST(FixedValue, MulMatchesRealProduct) {
  const FixedFormat fmt = FixedFormat::s16(8);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  for (int i = 0; i < 500; ++i) {
    const double xa = dist(rng);
    const double xb = dist(rng);
    const FixedValue a = FixedValue::from_double(xa, fmt);
    const FixedValue b = FixedValue::from_double(xb, fmt);
    const FixedValue p = a.mul(b, FixedFormat::s32(16));
    // Product of quantized inputs is exact in the wider format.
    EXPECT_NEAR(p.to_double(), a.to_double() * b.to_double(), 1e-9);
  }
}

TEST(FixedValue, DivApproximatesRealQuotient) {
  const FixedFormat fmt = FixedFormat::s16(8);
  const FixedValue a = FixedValue::from_double(10.0, fmt);
  const FixedValue b = FixedValue::from_double(4.0, fmt);
  const FixedValue q = a.div(b, FixedFormat::s16(8));
  EXPECT_NEAR(q.to_double(), 2.5, fmt.resolution());
}

TEST(FixedValue, DivByZeroSaturates) {
  const FixedFormat fmt = FixedFormat::s16(8);
  const FixedValue a = FixedValue::from_double(1.0, fmt);
  const FixedValue zero = FixedValue::from_double(0.0, fmt);
  EXPECT_DOUBLE_EQ(a.div(zero, fmt).to_double(), fmt.max_value());
  EXPECT_DOUBLE_EQ(a.negate().div(zero, fmt).to_double(), fmt.min_value());
}

TEST(FixedValue, NegateSaturatesAsymmetricMin) {
  const FixedFormat fmt = FixedFormat::s16(15);
  const FixedValue min = FixedValue(fmt.min_raw(), fmt);
  EXPECT_EQ(min.negate().raw(), fmt.max_raw());  // -(-1.0) saturates
}

TEST(FixedValue, ComparisonAcrossFormats) {
  const FixedValue a = FixedValue::from_double(1.5, FixedFormat::s16(4));
  const FixedValue b = FixedValue::from_double(1.5, FixedFormat::s32(20));
  EXPECT_TRUE(a.equals(b));
  const FixedValue c = FixedValue::from_double(2.0, FixedFormat::s16(4));
  EXPECT_TRUE(a.less_than(c));
  EXPECT_FALSE(c.less_than(a));
}

TEST(FixedValue, RescalePreservesValueWhenPrecisionAllows) {
  const FixedValue a = FixedValue::from_double(0.75, FixedFormat::s16(8));
  const FixedValue b = a.rescale(FixedFormat::s32(20));
  EXPECT_DOUBLE_EQ(b.to_double(), 0.75);
  const FixedValue c = b.rescale(FixedFormat::s16(2));
  EXPECT_NEAR(c.to_double(), 0.75, FixedFormat::s16(2).resolution());
}

TEST(FixedTemplate, Q15Arithmetic) {
  const Q15 a = Q15::from_double(0.5);
  const Q15 b = Q15::from_double(0.25);
  EXPECT_NEAR((a + b).to_double(), 0.75, 1e-4);
  EXPECT_NEAR((a * b).to_double(), 0.125, 1e-4);
  EXPECT_NEAR((a - b).to_double(), 0.25, 1e-4);
  EXPECT_NEAR((-a).to_double(), -0.5, 1e-4);
  EXPECT_TRUE(b < a);
}

TEST(FixedTemplate, SaturationOnOverflow) {
  const Q15 a = Q15::from_double(0.9);
  const Q15 sum = a + a;
  EXPECT_NEAR(sum.to_double(), Q15::format().max_value(), 1e-4);
}

TEST(FixedTemplate, StorageMatchesWordSize) {
  static_assert(sizeof(Q15::Storage) == 2);
  static_assert(sizeof(Q31::Storage) == 4);
  static_assert(sizeof(Fixed<8, 4>::Storage) == 1);
}

TEST(Autoscale, PicksMaxFracThatCoversRange) {
  RangeObservation r{-3.0, 5.0};
  const FixedFormat fmt = choose_format(r, 16);
  // Needs 3 integer bits (+sign) for |5|; best is frac = 12.
  EXPECT_EQ(fmt.frac_bits, 12);
  EXPECT_GE(fmt.max_value(), 5.0);
  EXPECT_LE(fmt.min_value(), -3.0);
  // One more fractional bit must NOT cover the range.
  const FixedFormat finer{16, fmt.frac_bits + 1, true};
  EXPECT_LT(finer.max_value(), 5.0);
}

TEST(Autoscale, UnitRangeGetsNearQ15) {
  RangeObservation r{-1.0, 0.999};
  const FixedFormat fmt = choose_format(r, 16);
  EXPECT_EQ(fmt.frac_bits, 15);
}

TEST(Autoscale, MarginWidensRange) {
  RangeObservation r{-1.0, 1.0};
  const RangeObservation wide = r.with_margin(2.0);
  EXPECT_LE(wide.min, -2.0 + 1e-12);
  EXPECT_GE(wide.max, 2.0 - 1e-12);
}

TEST(Autoscale, ImpossibleRangeReportsDiagnostic) {
  RangeObservation r{-1e40, 1e40};
  util::DiagnosticList diags;
  choose_format(r, 16, &diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Autoscale, WorstCaseErrorIsHalfLsb) {
  EXPECT_DOUBLE_EQ(worst_case_error(FixedFormat::s16(15)),
                   std::ldexp(1.0, -16));
}

class QuantizationErrorSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizationErrorSweep, ErrorBoundedByHalfLsbAcrossFracBits) {
  const int frac = GetParam();
  const FixedFormat fmt{16, frac, true};
  std::mt19937 rng(static_cast<unsigned>(frac) + 1);
  std::uniform_real_distribution<double> dist(fmt.min_value() * 0.99,
                                              fmt.max_value() * 0.99);
  for (int i = 0; i < 200; ++i) {
    const double x = dist(rng);
    EXPECT_LE(std::abs(quantization_error(x, fmt)),
              fmt.resolution() / 2 + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, QuantizationErrorSweep,
                         ::testing::Values(0, 3, 7, 10, 12, 15));

}  // namespace
}  // namespace iecd::fixpt
