#include "beans/free_cntr_bean.hpp"

namespace iecd::beans {

FreeCntrBean::FreeCntrBean(std::string name) : Bean(std::move(name), "FreeCntr") {
  properties().declare(PropertySpec::integer(
      "resolution_us", 1, 1, 1000, "counter tick in microseconds"));
}

std::vector<MethodSpec> FreeCntrBean::methods() const {
  return {
      {"GetTimeUS", "dword %M_GetTimeUS(void)", "microseconds since reset"},
      {"Reset", "byte %M_Reset(void)", "zero the counter"},
  };
}

std::vector<EventSpec> FreeCntrBean::events() const { return {}; }

ResourceDemand FreeCntrBean::demand() const {
  ResourceDemand d;
  d.timer_channels = 1;
  return d;
}

void FreeCntrBean::validate(const mcu::DerivativeSpec& cpu,
                            util::DiagnosticList& diagnostics) {
  if (cpu.timer_channels <= 0) {
    diagnostics.error(name(), "no timer channel for the free counter on " +
                                  cpu.name);
  }
}

void FreeCntrBean::bind(BindContext& ctx) {
  mcu_ = &ctx.mcu;
  epoch_ = ctx.mcu.now();
  mark_bound();
}

std::uint32_t FreeCntrBean::GetTimeUS() const {
  if (!mcu_) return 0;
  const sim::SimTime elapsed = mcu_->now() - epoch_;
  const auto res = properties().get_int("resolution_us");
  return static_cast<std::uint32_t>((elapsed / 1000) /
                                    static_cast<sim::SimTime>(res) *
                                    static_cast<sim::SimTime>(res));
}

void FreeCntrBean::Reset() {
  if (mcu_) epoch_ = mcu_->now();
}

DriverSource FreeCntrBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  if (method_enabled("GetTimeUS")) {
    c += "dword " + name() +
         "_GetTimeUS(void) { return TMR_CNTR_WIDE / CYCLES_PER_US; }\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
