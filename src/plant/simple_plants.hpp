/// \file simple_plants.hpp
/// Additional plant models for the non-servo examples: a gravity-drained
/// water tank (nonlinear first order) and a first-order thermal process.
#pragma once

#include "model/block.hpp"

namespace iecd::plant {

/// Tank level: A dh/dt = k_in * u - a * sqrt(2 g h); input 0 = valve
/// command [0, 1], output 0 = level [m].
class WaterTankBlock : public model::Block {
 public:
  struct Params {
    double area = 0.5;            ///< tank cross-section [m^2]
    double inflow_gain = 0.004;   ///< [m^3/s] at full valve
    double outlet_area = 2.0e-4;  ///< drain orifice [m^2]
    double initial_level = 0.0;   ///< [m]
    double max_level = 2.0;       ///< physical tank height [m]
  };

  WaterTankBlock(std::string name, Params params);
  const char* type_name() const override { return "WaterTank"; }
  bool has_direct_feedthrough() const override { return false; }

  void initialize(const model::SimContext& ctx) override;
  void output(const model::SimContext& ctx) override;
  int continuous_state_count() const override { return 1; }
  void read_states(std::span<double> into) const override;
  void write_states(std::span<const double> from) override;
  void derivatives(const model::SimContext& ctx,
                   std::span<double> dx) const override;

 private:
  Params params_;
  double level_ = 0.0;
};

/// First-order thermal process: C dT/dt = P * u - (T - T_amb) / R_th;
/// input 0 = heater command [0, 1], output 0 = temperature [deg C].
class ThermalPlantBlock : public model::Block {
 public:
  struct Params {
    double thermal_capacity = 150.0;   ///< [J/K]
    double thermal_resistance = 2.0;   ///< [K/W]
    double heater_power = 60.0;        ///< [W] at full command
    double ambient = 25.0;             ///< [deg C]
  };

  ThermalPlantBlock(std::string name, Params params);
  const char* type_name() const override { return "ThermalPlant"; }
  bool has_direct_feedthrough() const override { return false; }

  void initialize(const model::SimContext& ctx) override;
  void output(const model::SimContext& ctx) override;
  int continuous_state_count() const override { return 1; }
  void read_states(std::span<double> into) const override;
  void write_states(std::span<const double> from) override;
  void derivatives(const model::SimContext& ctx,
                   std::span<double> dx) const override;

 private:
  Params params_;
  double temperature_ = 25.0;
};

}  // namespace iecd::plant
