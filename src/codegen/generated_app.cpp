#include "codegen/generated_app.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace iecd::codegen {

std::uint64_t GeneratedApplication::task_cycles(
    std::size_t task, const mcu::CostModel& costs) const {
  const TaskSpec& t = tasks.at(task);
  return costs.cycles(t.ops) + t.extra_cycles + costs.task_dispatch;
}

double GeneratedApplication::estimated_utilisation(
    const mcu::CostModel& costs, double clock_hz) const {
  double util = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskSpec& t = tasks[i];
    if (t.trigger != TaskSpec::Trigger::kPeriodic || !(t.period_s > 0)) {
      continue;
    }
    const double exec_s =
        static_cast<double>(task_cycles(i, costs) + costs.isr_entry +
                            costs.isr_exit) /
        clock_hz;
    util += exec_s / t.period_s;
  }
  return util;
}

std::size_t GeneratedApplication::source_lines() const {
  std::size_t lines = 0;
  for (const auto& [file, text] : sources) {
    lines += static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
  }
  return lines;
}

std::string GeneratedApplication::report() const {
  std::string out = util::format(
      "Generated application '%s' for %s (%s%s)\n", name.c_str(),
      derivative.c_str(), fixed_point ? "fixed-point" : "double",
      pil_variant ? ", PIL variant" : "");
  for (const auto& t : tasks) {
    if (t.trigger == TaskSpec::Trigger::kPeriodic) {
      out += util::format("  task %-20s periodic %.6f s\n", t.name.c_str(),
                          t.period_s);
    } else {
      out += util::format("  task %-20s event %s.%s\n", t.name.c_str(),
                          t.event_bean.c_str(), t.event_name.c_str());
    }
  }
  out += util::format("  sources: %zu files, %zu lines\n", sources.size(),
                      source_lines());
  out += util::format("  memory: %u B data, %u B code, %u B stack\n",
                      memory.data_bytes, memory.code_bytes,
                      memory.stack_bytes);
  return out;
}

}  // namespace iecd::codegen
