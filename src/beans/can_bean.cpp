#include "beans/can_bean.hpp"

#include "util/strings.hpp"

namespace iecd::beans {

CanBean::CanBean(std::string name) : Bean(std::move(name), "FreescaleCAN") {
  properties().declare(PropertySpec::integer(
      "bitrate", 500000, 10000, 1000000, "bus bit rate [bit/s]"));
  properties().declare(PropertySpec::integer(
      "acceptance_id", 0, 0, 0x7FF, "11-bit acceptance code"));
  properties().declare(PropertySpec::integer(
      "acceptance_mask", 0, 0, 0x7FF,
      "acceptance mask (0 accepts every identifier)"));
  properties().declare(PropertySpec::boolean(
      "rx_interrupt", true, "raise OnReceive per accepted frame"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 2, 0, 15, "OnReceive priority"));
}

std::vector<MethodSpec> CanBean::methods() const {
  return {
      {"SendFrame", "byte %M_SendFrame(word Id, byte Dlc, byte *Data)",
       "queue a standard frame"},
      {"ReadFrame", "byte %M_ReadFrame(word *Id, byte *Dlc, byte *Data)",
       "read the receive buffer"},
  };
}

std::vector<EventSpec> CanBean::events() const {
  return {{"OnReceive", "accepted frame landed in the receive buffer"}};
}

ResourceDemand CanBean::demand() const {
  // Modelled as a dedicated module; the derivative registry does not count
  // CAN modules separately, so no unit demand here (validation would need
  // a per-derivative CAN count to be stricter).
  return {};
}

void CanBean::validate(const mcu::DerivativeSpec& cpu,
                       util::DiagnosticList& diagnostics) {
  (void)cpu;
  const auto id = properties().get_int("acceptance_id");
  const auto mask = properties().get_int("acceptance_mask");
  if ((id & ~mask) != 0 && mask != 0) {
    diagnostics.warning(
        name() + ".acceptance_id",
        util::format("code bits outside the mask (0x%llx & ~0x%llx) never "
                     "match",
                     static_cast<unsigned long long>(id),
                     static_cast<unsigned long long>(mask)));
  }
}

void CanBean::bind(BindContext& ctx) {
  periph::CanControllerConfig cfg;
  cfg.acceptance_id =
      static_cast<std::uint32_t>(properties().get_int("acceptance_id"));
  cfg.acceptance_mask =
      static_cast<std::uint32_t>(properties().get_int("acceptance_mask"));
  if (properties().get_bool("rx_interrupt")) {
    cfg.rx_vector = register_event(
        ctx, "OnReceive",
        static_cast<int>(properties().get_int("interrupt_priority")));
  }
  can_ = std::make_unique<periph::CanController>(ctx.mcu, cfg, name());
  mark_bound();
}

bool CanBean::SendFrame(const sim::CanFrame& frame) {
  return can_ && can_->send(frame);
}

std::optional<sim::CanFrame> CanBean::ReadFrame() {
  return can_ ? can_->read() : std::nullopt;
}

DriverSource CanBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  c += util::format("/* %lld bit/s, acceptance 0x%llx mask 0x%llx */\n",
                    static_cast<long long>(properties().get_int("bitrate")),
                    static_cast<unsigned long long>(
                        properties().get_int("acceptance_id")),
                    static_cast<unsigned long long>(
                        properties().get_int("acceptance_mask")));
  if (method_enabled("SendFrame")) {
    c += "byte " + name() +
         "_SendFrame(word Id, byte Dlc, byte *Data) {\n"
         "  if (!(CAN_TFLG & CAN_TXE)) return ERR_BUSY;\n"
         "  CAN_TXID = Id; CAN_TXDLC = Dlc;\n"
         "  for (byte i = 0; i < Dlc; ++i) CAN_TXD[i] = Data[i];\n"
         "  CAN_TFLG |= CAN_TXREQ;\n  return ERR_OK;\n}\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
