// E3 (Fig. 6.2) — PIL communication over the byte-timed RS232 line.  The
// paper: "Even though the communication over RS232 is very slow, the main
// advantage of this interface is that it is present on any development
// board."  The table sweeps the baud rate and shows where the serial line
// stops fitting into the control period: round trip, per-step wire time,
// overhead share, deadline misses, and the resulting control quality.
// Expected shape: at low baud the exchange takes longer than the period
// (misses, loop degrades); from ~115200 up the loop closes comfortably and
// quality converges to the MIL result.
//
// The sweep rides exec::SweepRunner: every transport point (MIL reference,
// each baud, each SPI clock) is an independent scenario, fanned out across
// the host threads and merged in index order, so the printed table and the
// recorded summary are byte-identical to a sequential run.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "exec/sweep.hpp"

using namespace iecd;

namespace {

core::ServoConfig bench_config() {
  core::ServoConfig cfg;
  cfg.duration_s = bench::smoke() ? 0.2 : 2.0;
  return cfg;
}

constexpr std::uint32_t kBauds[] = {9600,   19200,  38400, 57600,
                                    115200, 230400, 460800};
constexpr std::uint32_t kSpiClocks[] = {250000, 1000000, 4000000};
constexpr int kBatchFactors[] = {1, 2, 4, 8};
constexpr std::size_t kBaudCount = std::size(kBauds);
constexpr std::size_t kSpiCount = std::size(kSpiClocks);
// Scenario index layout: 0 = MIL reference, then bauds, then SPI clocks.
constexpr std::size_t kPointCount = 1 + kBaudCount + kSpiCount;

/// One sweep point: runs its own ServoSystem and records unprefixed gauges
/// into the registry it was handed (read back per-run for the table).
void run_point(std::size_t index, trace::MetricsRegistry& m) {
  core::ServoSystem servo(bench_config());
  if (index == 0) {
    m.gauge("iae") = servo.run_mil().iae;
    return;
  }
  core::ServoSystem::PilRunOptions opts;
  if (index <= kBaudCount) {
    opts.baud = kBauds[index - 1];
  } else {
    opts.baud = kSpiClocks[index - 1 - kBaudCount];
    opts.link = pil::PilSession::LinkKind::kSpi;
  }
  const auto pil = servo.run_pil(opts);
  m.gauge("rtt_us") = pil.report.round_trip_us.mean();
  m.gauge("comm_us") = pil.report.comm_time_per_step_us;
  m.gauge("overhead") = pil.report.comm_overhead_ratio;
  m.gauge("misses") = static_cast<double>(pil.report.deadline_misses);
  m.gauge("iae") = pil.iae;
  m.gauge("final") = pil.speed.last_value();
  m.gauge("settled") = pil.metrics.settled ? 1.0 : 0.0;
  if (const double* g =
          pil.report.metrics.find_gauge("pil.events_per_exchange")) {
    m.gauge("events_per_exchange") = *g;
  }
}

void print_table() {
  std::printf("E3: PIL exchange vs baud rate (1 kHz control loop)\n\n");

  exec::SweepRunner runner;
  bench::Stopwatch sw;
  const auto res = runner.run(kPointCount, run_point);
  const double wall_ms = sw.elapsed_ms();

  const auto g = [&res](std::size_t i, const char* name) {
    const double* v = res.per_run[i].find_gauge(name);
    return v ? *v : 0.0;
  };

  std::printf("MIL reference IAE: %.3f\n\n", g(0, "iae"));
  bench::summarize("mil.iae", g(0, "iae"));

  std::printf("%-8s | %-10s %-12s %-10s %-8s %-9s %-9s %-8s %-9s\n", "baud",
              "rtt[us]", "comm[us/st]", "overhead", "misses", "IAE", "final",
              "settled", "ev/exch");
  bench::print_rule(98);
  bool rtt_monotonic = true;
  for (std::size_t b = 0; b < kBaudCount; ++b) {
    const std::size_t i = 1 + b;
    std::printf(
        "%-8u | %-10.1f %-12.1f %-9.1f%% %-8.0f %-9.3f %-9.2f %-8s %-9.1f\n",
        kBauds[b], g(i, "rtt_us"), g(i, "comm_us"), g(i, "overhead") * 100.0,
        g(i, "misses"), g(i, "iae"), g(i, "final"),
        g(i, "settled") != 0.0 ? "yes" : "NO", g(i, "events_per_exchange"));
    if (b > 0 && g(i, "rtt_us") > g(i - 1, "rtt_us")) rtt_monotonic = false;
    const std::string key = "rs232." + std::to_string(kBauds[b]);
    bench::summarize(key + ".rtt_us", g(i, "rtt_us"));
    bench::summarize(key + ".overhead", g(i, "overhead"));
    bench::summarize(key + ".iae", g(i, "iae"));
    bench::summarize(key + ".misses", g(i, "misses"));
    bench::summarize(key + ".events_per_exchange",
                     g(i, "events_per_exchange"));
  }
  // A faster line must never report a slower round trip: this is the E3
  // sanity check that caught the sent-timestamp aliasing bug.
  std::printf("\nRTT vs baud monotonicity: %s\n",
              rtt_monotonic ? "ok (rtt falls as baud rises)"
                            : "VIOLATED (rtt rises with baud)");
  bench::summarize("rs232.rtt_monotonic", rtt_monotonic ? 1.0 : 0.0);

  std::printf("\nextension (paper future work): the same exchange over a "
              "synchronous SPI link\n\n");
  std::printf("%-10s | %-10s %-12s %-10s %-8s %-9s\n", "SPI clock",
              "rtt[us]", "comm[us/st]", "overhead", "misses", "IAE");
  bench::print_rule(66);
  for (std::size_t s = 0; s < kSpiCount; ++s) {
    const std::size_t i = 1 + kBaudCount + s;
    std::printf("%-10u | %-10.1f %-12.1f %-9.1f%% %-8.0f %-9.3f\n",
                kSpiClocks[s], g(i, "rtt_us"), g(i, "comm_us"),
                g(i, "overhead") * 100.0, g(i, "misses"), g(i, "iae"));
    const std::string key = "spi." + std::to_string(kSpiClocks[s]);
    bench::summarize(key + ".rtt_us", g(i, "rtt_us"));
    bench::summarize(key + ".iae", g(i, "iae"));
  }

  std::printf("\nsweep wall time: %.1f ms across %zu points (%zu threads)\n",
              wall_ms, res.runs, res.threads_used);
  bench::summarize("sweep.wall_ms", wall_ms);

  // Batched exchange at 115200 baud: batch = 1 is the classic per-period
  // protocol (bit-identical to the main table's 115200 row); higher
  // factors pack N control steps into one frame, cutting the per-step
  // framing overhead and event count at the cost of N-1 periods of
  // actuation latency.  Runs outside the timed sweep above.
  std::printf("\nbatched exchange at 115200 baud (N control steps per "
              "frame)\n\n");
  std::printf("%-6s | %-10s %-8s %-9s %-9s\n", "batch", "rtt[us]", "misses",
              "IAE", "ev/exch");
  bench::print_rule(50);
  exec::SweepRunner batch_runner;
  const auto bres =
      batch_runner.run(std::size(kBatchFactors),
                       [](std::size_t index, trace::MetricsRegistry& m) {
                         core::ServoSystem servo(bench_config());
                         core::ServoSystem::PilRunOptions opts;
                         opts.baud = 115200;
                         opts.batch = kBatchFactors[index];
                         const auto pil = servo.run_pil(opts);
                         m.gauge("rtt_us") = pil.report.round_trip_us.mean();
                         m.gauge("misses") =
                             static_cast<double>(pil.report.deadline_misses);
                         m.gauge("iae") = pil.iae;
                         if (const double* g = pil.report.metrics.find_gauge(
                                 "pil.events_per_exchange")) {
                           m.gauge("events_per_exchange") = *g;
                         }
                       });
  const auto bg = [&bres](std::size_t i, const char* name) {
    const double* v = bres.per_run[i].find_gauge(name);
    return v ? *v : 0.0;
  };
  for (std::size_t i = 0; i < std::size(kBatchFactors); ++i) {
    std::printf("%-6d | %-10.1f %-8.0f %-9.3f %-9.1f\n", kBatchFactors[i],
                bg(i, "rtt_us"), bg(i, "misses"), bg(i, "iae"),
                bg(i, "events_per_exchange"));
    const std::string key = "batch." + std::to_string(kBatchFactors[i]);
    bench::summarize(key + ".iae", bg(i, "iae"));
    bench::summarize(key + ".misses", bg(i, "misses"));
    bench::summarize(key + ".events_per_exchange",
                     bg(i, "events_per_exchange"));
  }

  std::printf("\n(controller execution on the board: the same generated "
              "code in every row;\n only the communication budget "
              "changes.)\n\n");
}

void BM_PilExchange115200(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = bench_config();
    cfg.duration_s = 0.2;
    core::ServoSystem servo(cfg);
    auto result = servo.run_pil({.baud = 115200});
    benchmark::DoNotOptimize(result.report.exchanges);
  }
}
BENCHMARK(BM_PilExchange115200)->Unit(benchmark::kMillisecond);

void BM_FrameEncodeDecode(benchmark::State& state) {
  pil::FrameDecoder decoder;
  std::uint64_t decoded = 0;
  decoder.set_callback([&](const pil::Frame&) { ++decoded; });
  pil::Frame frame;
  frame.payload = pil::encode_signals({1.0, 2.0, 3.0, 4.0});
  const auto bytes = pil::encode_frame(frame);
  for (auto _ : state) {
    for (std::uint8_t b : bytes) decoder.feed(b);
  }
  benchmark::DoNotOptimize(decoded);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_SerialLinkThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::World world;
    sim::SerialConfig cfg;
    cfg.baud_rate = 460800;
    sim::SerialLink link(world, cfg);
    std::uint64_t received = 0;
    link.a_to_b().set_receiver(
        [&](std::uint8_t, sim::SimTime) { ++received; });
    for (int i = 0; i < 512; ++i) {
      link.a_to_b().transmit(static_cast<std::uint8_t>(i));
    }
    world.run_for(sim::seconds_i(1));
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_SerialLinkThroughput);

}  // namespace

IECD_BENCH_MAIN(print_table)
