/// \file watchdog.hpp
/// Computer-operating-properly (COP) watchdog: the application must
/// refresh it within the timeout or the part resets.  In the simulated
/// production setup the real-time kernel clears the watchdog from the
/// periodic model step, so a controller that overruns its period long
/// enough gets caught — the standard last line of defence in automotive
/// control units.
#pragma once

#include <cstdint>
#include <functional>

#include "periph/peripheral.hpp"

namespace iecd::periph {

struct WatchdogConfig {
  sim::SimTime timeout = sim::milliseconds(10);
};

class WatchdogPeripheral : public Peripheral {
 public:
  WatchdogPeripheral(mcu::Mcu& mcu, WatchdogConfig config,
                     std::string name = "cop");

  const WatchdogConfig& config() const { return config_; }

  /// Arms the watchdog (idempotent; a real COP cannot be stopped once
  /// enabled).
  void enable();
  bool enabled() const { return enabled_; }

  /// Refreshes the timeout window (the service sequence).
  void refresh();

  /// Called when the watchdog expires (the "reset" in simulation — the
  /// experiment framework records it instead of rebooting the world).
  void set_bite_handler(std::function<void(sim::SimTime)> on_bite);

  std::uint64_t bites() const { return bites_; }
  std::uint64_t refreshes() const { return refreshes_; }

  void reset() override;

 private:
  void arm();

  WatchdogConfig config_;
  bool enabled_ = false;
  std::function<void(sim::SimTime)> on_bite_;
  sim::EventId event_ = 0;
  bool scheduled_ = false;
  std::uint64_t bites_ = 0;
  std::uint64_t refreshes_ = 0;
};

}  // namespace iecd::periph
