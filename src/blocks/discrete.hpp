/// \file discrete.hpp
/// Discrete-time blocks: delays, integrators, derivative, transfer
/// function, PID — the controller-side vocabulary of the case study.
#pragma once

#include <deque>
#include <vector>

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::EmitContext;
using model::SimContext;

class UnitDelayBlock : public Block {
 public:
  UnitDelayBlock(std::string name, double initial = 0.0);
  const char* type_name() const override { return "UnitDelay"; }
  bool has_direct_feedthrough() const override { return false; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override;
  std::string emit_c(const EmitContext& ctx) const override;
  std::string emit_c_update(const EmitContext& ctx) const override;

 private:
  double initial_;
  double state_ = 0.0;
};

enum class IntegrationMethod { kForwardEuler, kBackwardEuler, kTrapezoidal };

class DiscreteIntegratorBlock : public Block {
 public:
  DiscreteIntegratorBlock(std::string name, double gain = 1.0,
                          IntegrationMethod method =
                              IntegrationMethod::kForwardEuler,
                          double initial = 0.0);
  const char* type_name() const override { return "DiscreteIntegrator"; }
  /// Forward Euler has no direct feedthrough; the other methods do.
  bool has_direct_feedthrough() const override {
    return method_ != IntegrationMethod::kForwardEuler;
  }
  /// Optional output saturation (anti-windup clamping).
  void set_limits(double lower, double upper);
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override { return 4; }
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::string emit_c(const EmitContext& ctx) const override;
  std::string emit_c_update(const EmitContext& ctx) const override;

 private:
  double clamp(double v) const;

  double gain_;
  IntegrationMethod method_;
  double initial_;
  double state_ = 0.0;
  double prev_input_ = 0.0;
  bool limited_ = false;
  double lower_ = 0.0, upper_ = 0.0;
};

/// Filtered discrete derivative: K * (u - u_prev) / T.
class DiscreteDerivativeBlock : public Block {
 public:
  DiscreteDerivativeBlock(std::string name, double gain = 1.0);
  const char* type_name() const override { return "DiscreteDerivative"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override { return 4; }

 private:
  double gain_;
  double prev_ = 0.0;
  double held_ = 0.0;
};

/// Direct-form-II transposed discrete transfer function
/// H(z) = (b0 + b1 z^-1 + ...) / (1 + a1 z^-1 + ...).
class DiscreteTransferFnBlock : public Block {
 public:
  DiscreteTransferFnBlock(std::string name, std::vector<double> num,
                          std::vector<double> den);
  const char* type_name() const override { return "DiscreteTransferFn"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override;
  mcu::OpCounts step_ops(bool fixed_point) const override;

 private:
  std::vector<double> num_, den_;
  std::vector<double> state_;
  double pending_out_ = 0.0;
};

/// Discrete PID with derivative filtering and back-calculation anti-windup
/// — the controller of the servo case study.
class DiscretePidBlock : public Block {
 public:
  struct Gains {
    double kp = 1.0;
    double ki = 0.0;
    double kd = 0.0;
    double derivative_filter = 10.0;  ///< N in the filtered derivative
  };

  DiscretePidBlock(std::string name, Gains gains, double out_min,
                   double out_max);
  const char* type_name() const override { return "DiscretePID"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override { return 12; }
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::string emit_c(const EmitContext& ctx) const override;

  const Gains& gains() const { return gains_; }

 private:
  Gains gains_;
  double out_min_, out_max_;
  double integral_ = 0.0;
  double deriv_state_ = 0.0;
  double prev_error_ = 0.0;
  double unsat_ = 0.0, sat_ = 0.0;
};

/// Sliding-window moving average over the last \p taps samples.
class MovingAverageBlock : public Block {
 public:
  MovingAverageBlock(std::string name, int taps);
  const char* type_name() const override { return "MovingAverage"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override;
  mcu::OpCounts step_ops(bool fixed_point) const override;

 private:
  int taps_;
  std::deque<double> window_;
  double pending_ = 0.0;
};

}  // namespace iecd::blocks
