/// \file csv.hpp
/// Minimal CSV emission for experiment outputs (EXPERIMENTS.md data series).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace iecd::util {

/// Streams rows to any std::ostream; quotes fields containing separators.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',');

  void header(std::initializer_list<std::string> names);
  void row(std::initializer_list<std::string> fields);

  /// Convenience numeric row; formats with %.6g.
  void row_numeric(std::initializer_list<double> values);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::ostream& out_;
  char sep_;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV field (quotes if it contains sep/quote/newline).
std::string csv_escape(const std::string& field, char sep = ',');

}  // namespace iecd::util
