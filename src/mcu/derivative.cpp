#include "mcu/derivative.hpp"

#include <stdexcept>

namespace iecd::mcu {

namespace {

std::vector<DerivativeSpec> build_registry() {
  std::vector<DerivativeSpec> regs;

  {
    // 16-bit hybrid DSC (MC56F8367 analog): single-cycle MAC, no FPU.
    DerivativeSpec d;
    d.name = "DSC56F8367";
    d.clock_hz = 60e6;
    d.native_word_bits = 16;
    d.has_fpu = false;
    d.costs = CostModel{};  // defaults tuned for a 16-bit DSC
    d.costs.mul16 = 1;      // hardware MAC
    d.costs.div16 = 20;
    d.memory = {512 * 1024, 32 * 1024};
    d.adc_channels = 16;
    d.adc_max_bits = 12;
    d.adc_clock_hz = 5e6;
    d.adc_cycles_per_sample = 8.5;
    d.pwm_channels = 12;
    d.pwm_counter_bits = 15;
    d.timer_channels = 16;
    d.timer_modulo_bits = 16;
    d.timer_prescalers = {1, 2, 4, 8, 16, 32, 64, 128};
    d.quadrature_decoders = 2;
    d.uarts = 2;
    d.uart_bauds = {9600, 19200, 38400, 57600, 115200, 230400, 460800};
    d.gpio_pins = 49;
    regs.push_back(d);
  }
  {
    // 16-bit automotive MCU (HCS12X analog): slower clock, pricier mul/div.
    DerivativeSpec d;
    d.name = "HCS12X128";
    d.clock_hz = 40e6;
    d.native_word_bits = 16;
    d.has_fpu = false;
    d.costs = CostModel{};
    d.costs.mul16 = 3;
    d.costs.div16 = 12;
    d.costs.fadd = 180;
    d.costs.fmul = 240;
    d.costs.fdiv = 600;
    d.memory = {128 * 1024, 12 * 1024};
    d.adc_channels = 16;
    d.adc_max_bits = 10;
    d.adc_clock_hz = 2e6;
    d.adc_cycles_per_sample = 14;
    d.pwm_channels = 8;
    d.pwm_counter_bits = 16;
    d.timer_channels = 8;
    d.timer_modulo_bits = 16;
    d.timer_prescalers = {1, 2, 4, 8, 16, 32, 64, 128};
    d.quadrature_decoders = 0;
    d.uarts = 2;
    d.uart_bauds = {9600, 19200, 38400, 57600, 115200};
    d.gpio_pins = 91;
    regs.push_back(d);
  }
  {
    // 32-bit ColdFire analog: wide ALU makes 32-bit and float cheaper.
    DerivativeSpec d;
    d.name = "MCF5235";
    d.clock_hz = 150e6;
    d.native_word_bits = 32;
    d.has_fpu = false;
    d.costs = CostModel{};
    d.costs.alu16 = 1;
    d.costs.alu32 = 1;
    d.costs.mul16 = 1;
    d.costs.mul32 = 2;
    d.costs.div16 = 12;
    d.costs.div32 = 18;
    d.costs.fadd = 60;
    d.costs.fmul = 90;
    d.costs.fdiv = 220;
    d.costs.isr_entry = 22;
    d.costs.isr_exit = 16;
    d.memory = {0, 64 * 1024};  // external flash: charge RAM only
    d.memory.flash_bytes = 2 * 1024 * 1024;
    d.adc_channels = 8;
    d.adc_max_bits = 12;
    d.adc_clock_hz = 8e6;
    d.adc_cycles_per_sample = 10;
    d.pwm_channels = 8;
    d.pwm_counter_bits = 16;
    d.timer_channels = 8;
    d.timer_modulo_bits = 32;
    d.timer_prescalers = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    d.quadrature_decoders = 1;
    d.uarts = 3;
    d.uart_bauds = {9600, 19200, 38400, 57600, 115200, 230400, 460800,
                    921600};
    d.gpio_pins = 64;
    regs.push_back(d);
  }
  {
    // Small 8-bit part (HCS08 analog): everything is multi-word.
    DerivativeSpec d;
    d.name = "HCS08GB60";
    d.clock_hz = 20e6;
    d.native_word_bits = 8;
    d.has_fpu = false;
    d.costs = CostModel{};
    d.costs.alu16 = 3;
    d.costs.mul16 = 9;
    d.costs.div16 = 40;
    d.costs.alu32 = 8;
    d.costs.mul32 = 40;
    d.costs.div32 = 150;
    d.costs.fadd = 400;
    d.costs.fmul = 700;
    d.costs.fdiv = 1800;
    d.costs.isr_entry = 11;
    d.costs.isr_exit = 9;
    d.memory = {60 * 1024, 4 * 1024};
    d.adc_channels = 8;
    d.adc_max_bits = 10;
    d.adc_clock_hz = 1e6;
    d.adc_cycles_per_sample = 17;
    d.pwm_channels = 5;
    d.pwm_counter_bits = 16;
    d.timer_channels = 5;
    d.timer_modulo_bits = 16;
    d.timer_prescalers = {1, 2, 4, 8, 16, 32, 64, 128};
    d.quadrature_decoders = 0;
    d.uarts = 1;
    d.uart_bauds = {9600, 19200, 38400, 57600, 115200};
    d.gpio_pins = 56;
    regs.push_back(d);
  }
  return regs;
}

}  // namespace

const std::vector<DerivativeSpec>& derivative_registry() {
  static const std::vector<DerivativeSpec> registry = build_registry();
  return registry;
}

const DerivativeSpec& find_derivative(const std::string& name) {
  for (const auto& d : derivative_registry()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("unknown MCU derivative: " + name);
}

}  // namespace iecd::mcu
