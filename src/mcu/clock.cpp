#include "mcu/clock.hpp"

#include <cmath>
#include <stdexcept>

namespace iecd::mcu {

Clock::Clock(double hz) : hz_(hz) {
  if (!(hz > 0)) throw std::invalid_argument("Clock: frequency must be > 0");
}

sim::SimTime Clock::cycles_to_time(std::uint64_t cycles) const {
  if (cycles == 0) return 0;
  const double ns = static_cast<double>(cycles) * 1e9 / hz_;
  const auto rounded = static_cast<sim::SimTime>(std::llround(ns));
  return rounded > 0 ? rounded : 1;
}

std::uint64_t Clock::time_to_cycles(sim::SimTime duration) const {
  if (duration <= 0) return 0;
  return static_cast<std::uint64_t>(static_cast<double>(duration) * 1e-9 *
                                    hz_);
}

}  // namespace iecd::mcu
