/// \file capture_bean.hpp
/// Input-capture bean ("Capture" in PE terms): period/frequency
/// measurement on a timer input — the software-decoding fallback the
/// quadrature-decoder diagnostics point to on derivatives without a
/// decoder module.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/capture.hpp"

namespace iecd::beans {

class CaptureBean : public Bean {
 public:
  explicit CaptureBean(std::string name = "Cap1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  /// Method "GetPeriodUS": interval between the last two captures.
  std::uint32_t GetPeriodUS() const;
  /// Method "GetFreqHz".
  double GetFreqHz() const;

  periph::CapturePeripheral* peripheral() { return icu_.get(); }

 private:
  std::unique_ptr<periph::CapturePeripheral> icu_;
};

}  // namespace iecd::beans
