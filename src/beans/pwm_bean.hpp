/// \file pwm_bean.hpp
/// PWM bean.  The user asks for a switching frequency; the expert system
/// picks prescaler + modulo maximizing duty resolution, reports the
/// achieved frequency and resolution, and errors out when the request is
/// outside what the counter can do.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/pwm.hpp"

namespace iecd::beans {

class PwmBean : public Bean {
 public:
  explicit PwmBean(std::string name = "PWM1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---

  /// Method "SetRatio16": duty = ratio / 65535.
  void SetRatio16(std::uint16_t ratio);
  /// Method "SetDutyPercent".
  void SetDutyPercent(double percent);
  /// Methods "Enable"/"Disable": start/stop the counter.
  void Enable();
  void Disable();

  periph::PwmPeripheral* peripheral() { return pwm_.get(); }

 private:
  std::unique_ptr<periph::PwmPeripheral> pwm_;
};

}  // namespace iecd::beans
