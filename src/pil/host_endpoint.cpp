#include "pil/host_endpoint.hpp"

#include "trace/trace.hpp"

namespace iecd::pil {

HostEndpoint::HostEndpoint(sim::World& world, sim::SerialChannel& tx,
                           sim::SerialChannel& rx, Options options)
    : world_(world), tx_(tx), options_(options) {
  decoder_.set_callback([this](const Frame& frame) {
    if (frame.type != FrameType::kActuatorData) return;
    if (apply_) apply_(decode_signals(frame.payload));
    const double rtt_us = sim::to_microseconds(world_.now() - sent_at_);
    rtt_us_.add(rtt_us);
    if (awaiting_response_) {
      if (auto* tr = trace::recorder()) {
        tr->span_end("pil", "exchange", "pil_host", world_.now(), rtt_us);
      }
    }
    awaiting_response_ = false;
  });
  rx.set_receiver([this](std::uint8_t byte, sim::SimTime) {
    if (auto* tr = trace::recorder()) {
      const std::uint64_t crc_before = decoder_.crc_errors();
      decoder_.feed(byte);
      if (decoder_.crc_errors() != crc_before) {
        tr->instant("pil", "crc_error", "pil_host", world_.now());
      }
    } else {
      decoder_.feed(byte);
    }
  });
}

void HostEndpoint::set_plant(
    std::function<std::vector<double>()> sample,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  sample_ = std::move(sample);
  apply_ = std::move(apply);
  advance_ = std::move(advance);
}

void HostEndpoint::start() {
  if (running_) return;
  running_ = true;
  if (exchange_event_ != 0) world_.queue().cancel(exchange_event_);
  // One recurring event carries every exchange for the whole session.
  exchange_event_ = world_.queue().schedule_every(
      options_.start + options_.period - world_.now(), options_.period,
      [this] { exchange(); });
}

void HostEndpoint::exchange() {
  if (!running_) {
    // stop() only clears the flag; the recurrence retires itself here.
    world_.queue().cancel(exchange_event_);
    exchange_event_ = 0;
    return;
  }
  // The previous actuator frame should have arrived within the period;
  // a late response is the PIL bench's deadline miss.
  if (awaiting_response_) {
    ++deadline_misses_;
    awaiting_response_ = false;  // stale response applies late when it lands
    if (auto* tr = trace::recorder()) {
      // Close the dangling exchange span so the timeline stays balanced.
      tr->span_end("pil", "exchange", "pil_host", world_.now());
      tr->instant("pil", "deadline_miss", "pil_host", world_.now());
    }
  }
  if (advance_) advance_(sim::to_seconds(world_.now()));
  Frame frame;
  frame.type = FrameType::kSensorData;
  frame.seq = seq_++;
  frame.payload = encode_signals(sample_ ? sample_() : std::vector<double>{});
  const auto bytes = encode_frame(frame);
  tx_.transmit(bytes.data(), bytes.size());
  sent_at_ = world_.now();
  awaiting_response_ = true;
  ++exchanges_;
  if (auto* tr = trace::recorder()) {
    tr->span_begin("pil", "exchange", "pil_host", world_.now(),
                   static_cast<double>(frame.seq));
  }
}

}  // namespace iecd::pil
