/// \file lanes.hpp
/// SoA lane storage for the batched simulation core.  A "lane" is one
/// independent Monte-Carlo run; every per-run scalar becomes an array of
/// width() doubles, adjacent in memory, so one instruction stream advances
/// all runs at once.  The arrays are 64-byte aligned: the autovectorizer
/// emits aligned packed loads with no peel loop, and a lane group never
/// straddles more cache lines than it needs.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace iecd::batch {

/// Alignment of every lane array: one cache line, and wide enough for any
/// portable SIMD width (SSE2 through AVX-512).
inline constexpr std::size_t kLaneAlign = 64;

/// Minimal aligned allocator for lane arrays.
template <typename T>
struct LaneAllocator {
  using value_type = T;

  LaneAllocator() = default;
  template <typename U>
  LaneAllocator(const LaneAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kLaneAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kLaneAlign});
  }
  template <typename U>
  bool operator==(const LaneAllocator<U>&) const {
    return true;
  }
};

/// A 64-byte-aligned contiguous array, one element per lane.
template <typename T = double>
using LaneVector = std::vector<T, LaneAllocator<T>>;

}  // namespace iecd::batch
