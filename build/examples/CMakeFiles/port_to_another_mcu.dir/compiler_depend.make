# Empty compiler generated dependencies file for port_to_another_mcu.
# This may be replaced when dependencies are built.
