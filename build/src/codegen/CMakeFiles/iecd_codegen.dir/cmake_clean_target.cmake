file(REMOVE_RECURSE
  "libiecd_codegen.a"
)
