file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_servo.dir/bench_e4_servo.cpp.o"
  "CMakeFiles/bench_e4_servo.dir/bench_e4_servo.cpp.o.d"
  "bench_e4_servo"
  "bench_e4_servo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_servo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
