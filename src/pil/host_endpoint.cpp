#include "pil/host_endpoint.hpp"

#include "trace/trace.hpp"

namespace iecd::pil {

HostEndpoint::HostEndpoint(sim::World& world, sim::SerialChannel& tx,
                           sim::SerialChannel& rx, Options options)
    : world_(world), tx_(tx), options_(options) {
  if (options_.batch < 1) options_.batch = 1;
  decoder_.set_callback([this](const Frame& frame) { on_frame(frame); });
  // Responses are consumed frame-wise, so the whole burst arrives in one
  // event; per-byte arrival instants are reconstructed inside the decoder.
  rx.set_burst_receiver([this](std::span<const std::uint8_t> data,
                               sim::SimTime first_done, sim::SimTime bt) {
    if (auto* tr = trace::recorder()) {
      const std::uint64_t crc_before = decoder_.crc_errors();
      decoder_.feed_burst(data, first_done, bt);
      if (decoder_.crc_errors() != crc_before) {
        tr->instant("pil", "crc_error", "pil_host", world_.now());
      }
    } else {
      decoder_.feed_burst(data, first_done, bt);
    }
  });
}

void HostEndpoint::set_plant(
    std::function<std::vector<double>()> sample,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  if (sample) {
    sample_into_ = [s = std::move(sample)](std::vector<double>& out) {
      const auto values = s();
      out.insert(out.end(), values.begin(), values.end());
    };
  } else {
    sample_into_ = nullptr;
  }
  apply_ = std::move(apply);
  advance_ = std::move(advance);
}

void HostEndpoint::set_plant_buffered(
    std::function<void(std::vector<double>&)> sample_into,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  sample_into_ = std::move(sample_into);
  apply_ = std::move(apply);
  advance_ = std::move(advance);
}

void HostEndpoint::note_sent(std::uint8_t seq, sim::SimTime when) {
  if (sent_head_ == sent_ring_.size()) {
    // Everything answered: restart at the front, keeping the capacity.
    sent_ring_.clear();
    sent_head_ = 0;
  }
  sent_ring_.push_back({seq, when});
}

void HostEndpoint::on_frame(const Frame& frame) {
  if (frame.type != FrameType::kActuatorData) return;
  if (apply_) {
    apply_values_.clear();
    decode_signals_into(frame.payload, apply_values_);
    if (options_.batch > 1 && !apply_values_.empty()) {
      // Batched response: N stacked output groups arrive at once; only
      // the newest group is still current, the rest were superseded
      // before they could ever reach the plant.
      const std::size_t groups = static_cast<std::size_t>(options_.batch);
      const std::size_t group = apply_values_.size() / groups;
      if (group > 0 && apply_values_.size() == group * groups) {
        apply_values_.erase(apply_values_.begin(),
                            apply_values_.begin() +
                                static_cast<std::ptrdiff_t>(
                                    (groups - 1) * group));
      }
    }
    apply_(apply_values_);
  }
  // Responses come back in FIFO order: match against the oldest
  // unanswered send with this sequence number.
  bool found = false;
  sim::SimTime sent = 0;
  while (sent_head_ < sent_ring_.size()) {
    const SentEntry e = sent_ring_[sent_head_++];
    if (e.seq == frame.seq) {
      sent = e.when;
      found = true;
      break;
    }
  }
  const sim::SimTime arrival = decoder_.last_frame_time();
  double rtt_us = 0.0;
  if (found) {
    rtt_us = sim::to_microseconds(arrival - sent);
    rtt_us_.add(rtt_us);
    // Per-sequence RTT monitor: release == service start == the send
    // instant; completion is the decoded arrival.
    if (rtt_monitor_) rtt_monitor_->record(sent, sent, arrival);
  }
  if (awaiting_response_) {
    if (auto* tr = trace::recorder()) {
      tr->span_end("pil", "exchange", "pil_host", world_.now(), rtt_us);
    }
  }
  awaiting_response_ = false;
}

void HostEndpoint::start() {
  if (running_) return;
  running_ = true;
  if (exchange_event_ != 0) world_.queue().cancel(exchange_event_);
  const sim::SimTime interval =
      options_.period * static_cast<sim::SimTime>(options_.batch);
  // One recurring event carries every exchange for the whole session.
  exchange_event_ = world_.queue().schedule_every(
      options_.start + interval - world_.now(), interval,
      [this] { exchange(); });
}

void HostEndpoint::exchange() {
  if (!running_) {
    // stop() only clears the flag; the recurrence retires itself here.
    world_.queue().cancel(exchange_event_);
    exchange_event_ = 0;
    return;
  }
  // The previous actuator frame should have arrived within the period;
  // a late response is the PIL bench's deadline miss.
  if (awaiting_response_) {
    ++deadline_misses_;
    awaiting_response_ = false;  // stale response applies late when it lands
    if (auto* tr = trace::recorder()) {
      // Close the dangling exchange span so the timeline stays balanced.
      tr->span_end("pil", "exchange", "pil_host", world_.now());
      tr->instant("pil", "deadline_miss", "pil_host", world_.now());
    }
  }
  tx_payload_.clear();
  for (int k = 0; k < options_.batch; ++k) {
    // Sub-step k of the batch window ended at now - (batch-1-k) periods;
    // with batch == 1 this is exactly the classic per-period exchange.
    const sim::SimTime t_k =
        world_.now() -
        options_.period * static_cast<sim::SimTime>(options_.batch - 1 - k);
    if (advance_) advance_(sim::to_seconds(t_k));
    sample_values_.clear();
    if (sample_into_) sample_into_(sample_values_);
    encode_signals_into(sample_values_, tx_payload_);
  }
  tx_bytes_.clear();
  encode_frame_into(FrameType::kSensorData, seq_, tx_payload_, tx_bytes_);
  tx_.transmit(tx_bytes_);
  note_sent(seq_, world_.now());
  const std::uint8_t sent_seq = seq_++;
  awaiting_response_ = true;
  ++exchanges_;
  if (auto* tr = trace::recorder()) {
    tr->span_begin("pil", "exchange", "pil_host", world_.now(),
                   static_cast<double>(sent_seq));
  }
}

}  // namespace iecd::pil
