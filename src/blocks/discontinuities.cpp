#include "blocks/discontinuities.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::blocks {

SaturationBlock::SaturationBlock(std::string name, double lower, double upper)
    : Block(std::move(name), 1, 1), lower_(lower), upper_(upper) {
  if (!(upper > lower)) {
    throw std::invalid_argument(this->name() + ": upper must exceed lower");
  }
}

void SaturationBlock::output(const SimContext&) {
  set_out(0, std::clamp(in(0), lower_, upper_));
}

std::string SaturationBlock::emit_c(const EmitContext& ctx) const {
  return util::format(
      "%s = (%s > %.9g) ? %.9g : ((%s < %.9g) ? %.9g : %s);  /* Saturation %s "
      "*/\n",
      ctx.outputs[0].c_str(), ctx.inputs[0].c_str(), upper_, upper_,
      ctx.inputs[0].c_str(), lower_, lower_, ctx.inputs[0].c_str(),
      name().c_str());
}

QuantizerBlock::QuantizerBlock(std::string name, double interval)
    : Block(std::move(name), 1, 1), interval_(interval) {
  if (!(interval > 0)) {
    throw std::invalid_argument(this->name() + ": interval must be > 0");
  }
}

void QuantizerBlock::output(const SimContext&) {
  set_out(0, interval_ * std::round(in(0) / interval_));
}

RelayBlock::RelayBlock(std::string name, double on_threshold,
                       double off_threshold, double on_value,
                       double off_value)
    : Block(std::move(name), 1, 1),
      on_threshold_(on_threshold),
      off_threshold_(off_threshold),
      on_value_(on_value),
      off_value_(off_value) {
  if (off_threshold > on_threshold) {
    throw std::invalid_argument(this->name() +
                                ": off threshold above on threshold");
  }
}

void RelayBlock::initialize(const SimContext&) { on_ = false; }

void RelayBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, on_ ? on_value_ : off_value_);
    return;
  }
  const double u = in(0);
  if (on_ && u < off_threshold_) on_ = false;
  if (!on_ && u > on_threshold_) on_ = true;
  set_out(0, on_ ? on_value_ : off_value_);
}

RateLimiterBlock::RateLimiterBlock(std::string name, double rising_per_s,
                                   double falling_per_s)
    : Block(std::move(name), 1, 1),
      rising_(rising_per_s),
      falling_(falling_per_s) {
  if (!(rising_per_s > 0) || !(falling_per_s > 0)) {
    throw std::invalid_argument(this->name() + ": rates must be > 0");
  }
}

void RateLimiterBlock::initialize(const SimContext&) {
  prev_ = 0.0;
  held_ = 0.0;
}

void RateLimiterBlock::output(const SimContext& ctx) {
  if (ctx.minor) {
    set_out(0, held_);
    return;
  }
  const double dt = resolved_period() > 0 ? resolved_period() : ctx.dt;
  const double u = in(0);
  const double max_step = rising_ * dt;
  const double min_step = -falling_ * dt;
  held_ = prev_ + std::clamp(u - prev_, min_step, max_step);
  set_out(0, held_);
}

void RateLimiterBlock::update(const SimContext&) { prev_ = held_; }

DeadZoneBlock::DeadZoneBlock(std::string name, double start, double end)
    : Block(std::move(name), 1, 1), start_(start), end_(end) {
  if (!(end >= start)) {
    throw std::invalid_argument(this->name() + ": end must be >= start");
  }
}

void DeadZoneBlock::output(const SimContext&) {
  const double u = in(0);
  if (u > end_) {
    set_out(0, u - end_);
  } else if (u < start_) {
    set_out(0, u - start_);
  } else {
    set_out(0, 0.0);
  }
}

}  // namespace iecd::blocks
