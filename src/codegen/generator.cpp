#include "codegen/generator.hpp"

#include <stdexcept>

#include "codegen/c_emitter.hpp"
#include "util/strings.hpp"

namespace iecd::codegen {

Generator::Generator() {
  hooks_.push_back(std::make_unique<BeanAutoConfigHook>());
}

void Generator::add_hook(std::unique_ptr<RtwHook> hook) {
  hooks_.push_back(std::move(hook));
}

std::vector<TargetIo*> Generator::find_io_blocks(
    model::Subsystem& controller) {
  std::vector<TargetIo*> io;
  for (const auto& b : controller.inner().blocks()) {
    if (auto* t = dynamic_cast<TargetIo*>(b.get())) io.push_back(t);
  }
  return io;
}

void Generator::restore_mil_mode(model::Subsystem& controller) {
  for (TargetIo* io : find_io_blocks(controller)) {
    io->set_mode(IoMode::kMil);
  }
}

GeneratedApplication Generator::generate(model::Subsystem& controller,
                                         beans::BeanProject& project,
                                         const GeneratorOptions& options,
                                         util::DiagnosticList* diagnostics) {
  const model::SampleTime st = controller.sample_time();
  if (st.kind != model::SampleTime::Kind::kDiscrete || !(st.period > 0)) {
    throw std::invalid_argument(
        "Generator: controller subsystem needs a discrete sample time (the "
        "control period)");
  }
  if (options.pil && !options.pil_buffer) {
    throw std::invalid_argument("Generator: PIL variant needs a pil_buffer");
  }
  // The controller's interior inherits the control period.
  controller.set_resolved_period(st.period);
  controller.set_resolved_continuous(false);
  controller.initialize(model::SimContext{0.0, st.period, false});

  GenContext gctx;
  gctx.controller = &controller;
  gctx.project = &project;
  gctx.io_blocks = find_io_blocks(controller);
  gctx.period_s = st.period;
  gctx.fixed_point = options.fixed_point;
  gctx.pil = options.pil;

  for (auto& hook : hooks_) hook->before_generate(gctx);

  // Switch IO blocks to the generated-code behaviour; register PIL slots.
  std::vector<TargetIo*> inputs;
  std::vector<TargetIo*> outputs;
  for (TargetIo* io : gctx.io_blocks) {
    io->set_mode(options.pil ? IoMode::kPil : IoMode::kTarget);
    if (options.pil) {
      auto* block = dynamic_cast<model::Block*>(io);
      if (io->io_direction() == IoDirection::kInput) {
        options.pil_buffer->add_input(block->name());
      } else if (io->io_direction() == IoDirection::kOutput) {
        options.pil_buffer->add_output(block->name());
      }
      io->set_pil_buffer(options.pil_buffer);
    }
    switch (io->io_direction()) {
      case IoDirection::kInput:
        inputs.push_back(io);
        break;
      case IoDirection::kOutput:
        outputs.push_back(io);
        break;
      case IoDirection::kEvent:
        break;
    }
  }

  GeneratedApplication app;
  app.name = options.app_name;
  app.fixed_point = options.fixed_point;
  app.pil_variant = options.pil;
  app.derivative = project.cpu().derivative().name;

  // --- Periodic model-step task ---
  model::Subsystem* sub = &controller;
  TaskSpec step;
  step.name = options.app_name + "_step";
  step.trigger = TaskSpec::Trigger::kPeriodic;
  step.period_s = st.period;
  step.read = [inputs](const model::SimContext& ctx) {
    for (TargetIo* io : inputs) io->target_read(ctx);
  };
  step.compute = [sub](const model::SimContext& ctx) {
    for (model::Block* b : sub->inner().sorted()) b->output(ctx);
    for (model::Block* b : sub->inner().sorted()) b->update(ctx);
  };
  step.write = [outputs](const model::SimContext& ctx) {
    for (TargetIo* io : outputs) io->target_write(ctx);
  };
  mcu::OpCounts ops;
  std::uint32_t data_bytes = 64;  // runtime bookkeeping
  std::size_t block_count = 0;
  for (const auto& b : controller.inner().blocks()) {
    ++block_count;
    if (dynamic_cast<model::FunctionCallSubsystem*>(b.get())) {
      continue;  // event tasks priced separately
    }
    ops += b->step_ops(options.fixed_point);
    data_bytes += b->state_bytes();
    for (int p = 0; p < b->output_count(); ++p) {
      data_bytes += options.fixed_point
                        ? 2
                        : model::storage_bytes(b->output_type(p));
    }
  }
  for (TargetIo* io : gctx.io_blocks) {
    ops += io->io_ops();
    step.extra_cycles += io->extra_cycles(project.cpu().derivative());
  }
  step.ops = ops;
  step.stack_bytes = static_cast<std::uint32_t>(128 + 2 * block_count);
  app.tasks.push_back(std::move(step));

  // --- Event-driven tasks (function-call subsystems on bean events) ---
  for (TargetIo* io : gctx.io_blocks) {
    for (const auto& binding : io->event_bindings()) {
      TaskSpec evt;
      evt.name = util::sanitize_c_identifier(io->bean_name() + "_" +
                                             binding.event);
      evt.trigger = TaskSpec::Trigger::kEvent;
      evt.event_bean = io->bean_name();
      evt.event_name = binding.event;
      model::FunctionCallSubsystem* fc = binding.target;
      evt.compute = [fc](const model::SimContext& ctx) { fc->trigger(ctx); };
      evt.ops = fc->step_ops(options.fixed_point);
      evt.stack_bytes = 96;
      data_bytes += fc->state_bytes();
      app.tasks.push_back(std::move(evt));
    }
  }

  // --- Init ---
  std::vector<TargetIo*> all_io = gctx.io_blocks;
  app.init = [all_io](const model::SimContext& ctx) {
    for (TargetIo* io : all_io) io->target_init(ctx);
  };

  // --- Emitted sources ---
  EmitterOptions eopts;
  eopts.app_name = options.app_name;
  eopts.fixed_point = options.fixed_point;
  eopts.pil = options.pil;
  eopts.period_s = st.period;
  eopts.api = options.api;
  app.sources = CEmitter(controller, project, eopts).emit();

  // --- Memory estimate ---
  app.memory.data_bytes = data_bytes;
  std::uint64_t instr = 0;
  for (const auto& t : app.tasks) {
    instr += t.ops.alu16 + t.ops.mul16 + t.ops.div16 + t.ops.alu32 +
             t.ops.mul32 + t.ops.div32 + t.ops.fadd + t.ops.fmul +
             t.ops.fdiv + t.ops.mem + t.ops.branch;
  }
  // ~3 bytes per elementary op on a 16-bit target, plus the runtime kernel
  // and one driver stub per bean.
  app.memory.code_bytes = static_cast<std::uint32_t>(
      instr * 3 + 2048 + 512 * project.beans().size());
  std::uint32_t max_stack = 0;
  for (const auto& t : app.tasks) {
    max_stack = std::max(max_stack, t.stack_bytes);
  }
  app.memory.stack_bytes = max_stack;

  // Charge against the derivative so over-capacity ports are caught here.
  const auto& mem = project.cpu().derivative().memory;
  if (app.memory.code_bytes > mem.flash_bytes) {
    gctx.diagnostics.error(
        "codegen.memory",
        util::format("estimated code %u B exceeds %u B flash",
                     app.memory.code_bytes, mem.flash_bytes));
  }
  if (app.memory.data_bytes + app.memory.stack_bytes > mem.ram_bytes) {
    gctx.diagnostics.error(
        "codegen.memory",
        util::format("estimated data+stack %u B exceeds %u B RAM",
                     app.memory.data_bytes + app.memory.stack_bytes,
                     mem.ram_bytes));
  }

  for (auto& hook : hooks_) hook->after_generate(gctx, app);
  if (diagnostics) diagnostics->merge(gctx.diagnostics);
  return app;
}

}  // namespace iecd::codegen
