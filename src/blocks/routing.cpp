#include "blocks/routing.hpp"

#include "util/strings.hpp"

namespace iecd::blocks {

SwitchBlock::SwitchBlock(std::string name, double threshold)
    : Block(std::move(name), 3, 1), threshold_(threshold) {}

void SwitchBlock::output(const SimContext&) {
  set_out(0, in(1) >= threshold_ ? in(0) : in(2));
}

std::string SwitchBlock::emit_c(const EmitContext& ctx) const {
  return util::format("%s = (%s >= %.9g) ? %s : %s;  /* Switch %s */\n",
                      ctx.outputs[0].c_str(), ctx.inputs[1].c_str(),
                      threshold_, ctx.inputs[0].c_str(),
                      ctx.inputs[2].c_str(), name().c_str());
}

ManualSwitchBlock::ManualSwitchBlock(std::string name, bool position_a)
    : Block(std::move(name), 2, 1), position_a_(position_a) {}

void ManualSwitchBlock::output(const SimContext&) {
  set_out(0, position_a_ ? in(0) : in(1));
}

}  // namespace iecd::blocks
