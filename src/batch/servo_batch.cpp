#include "batch/servo_batch.hpp"

#include "batch/plant_batch.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rk4.hpp"

namespace iecd::batch {

namespace {

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

#if defined(__GNUC__) || defined(__clang__)
#define IECD_RESTRICT __restrict__
#else
#define IECD_RESTRICT
#endif

/// Batched DcMotorDynamics::derivatives — the expressions match
/// plant/dc_motor.cpp token for token, evaluated lane-adjacent so the
/// compiler turns them into packed arithmetic.  W > 0 instantiates an
/// explicit compile-time width (the common SIMD group sizes get fully
/// unrolled vector bodies with no trip-count checks); W == 0 is the
/// portable any-width fallback the remainder group uses.
template <int W>
void motor_derivs(std::size_t n, const double* IECD_RESTRICT yi,
                  const double* IECD_RESTRICT yw,
                  const double* IECD_RESTRICT volt,
                  const double* IECD_RESTRICT tau,
                  const double* IECD_RESTRICT res,
                  const double* IECD_RESTRICT ind,
                  const double* IECD_RESTRICT kt,
                  const double* IECD_RESTRICT ke,
                  const double* IECD_RESTRICT inertia,
                  const double* IECD_RESTRICT damping,
                  double* IECD_RESTRICT di, double* IECD_RESTRICT dw,
                  double* IECD_RESTRICT dth) {
  const std::size_t count = W > 0 ? static_cast<std::size_t>(W) : n;
  for (std::size_t l = 0; l < count; ++l) {
    di[l] = (volt[l] - res[l] * yi[l] - ke[l] * yw[l]) / ind[l];
    dw[l] = (kt[l] * yi[l] - damping[l] * yw[l] - tau[l]) / inertia[l];
    dth[l] = yw[l];
  }
}

}  // namespace

ServoBatch::ServoBatch(ServoBatchConfig config,
                       std::span<const ServoLane> lanes)
    : config_(config), width_(lanes.size()) {
  if (config_.minor_steps < 1) {
    throw std::invalid_argument("ServoBatch: minor_steps >= 1");
  }
  if (config_.speed_filter_taps < 1) {
    throw std::invalid_argument("ServoBatch: speed_filter_taps >= 1");
  }
  if (!(config_.period_s > 0.0)) {
    throw std::invalid_argument("ServoBatch: period_s > 0");
  }
  base_period_ns_ = to_ns(config_.period_s);
  base_period_ = static_cast<double>(base_period_ns_) * 1e-9;
  const double cpr = static_cast<double>(config_.encoder_lines * 4);
  cpr_ = cpr;
  gain_ = 2.0 * std::numbers::pi / (cpr * config_.period_s);

  const std::size_t w = width_;
  auto fill = [w](LaneVector<>& v, double value = 0.0) {
    v.assign(w, value);
  };
  fill(sp_);
  fill(sp_time_);
  fill(kp_);
  fill(ki_);
  fill(stop_);
  fill(res_);
  fill(ind_);
  fill(kt_);
  fill(ke_);
  fill(inertia_);
  fill(damping_);
  fill(supply_);
  load_.resize(w);
  fill(cur_);
  fill(omega_);
  fill(theta_);
  fill(integral_);
  fill(prev_cnt_);
  fill(cnt_);
  fill(spd_);
  fill(filt_);
  fill(err_);
  fill(unsat_);
  fill(sat_);
  fill(duty_);
  fill(volt_);
  fill(yi_);
  fill(yw_);
  fill(yt_);
  fill(tau_);
  for (int s = 0; s < 3; ++s) {
    fill(k1_[s]);
    fill(k2_[s]);
    fill(k3_[s]);
    fill(k4_[s]);
  }
  const std::size_t rows =
      config_.speed_filter_taps > 1
          ? static_cast<std::size_t>(config_.speed_filter_taps - 1)
          : 0;
  window_.assign(rows * w, 0.0);
  window_len_ = 0;

  active_.assign(w, 1);
  faulted_.assign(w, 0);
  remaining_ = w;
  lane_samples_.assign(w, 0);

  double stop_max = 0.0;
  for (std::size_t l = 0; l < w; ++l) {
    const ServoLane& lane = lanes[l];
    sp_[l] = lane.setpoint;
    sp_time_[l] = lane.setpoint_time;
    kp_[l] = lane.kp;
    ki_[l] = lane.ki;
    stop_[l] = lane.duration_s > 0.0 ? lane.duration_s : config_.duration_s;
    stop_max = std::max(stop_max, stop_[l]);
    res_[l] = lane.motor.resistance;
    ind_[l] = lane.motor.inductance;
    kt_[l] = lane.motor.kt;
    ke_[l] = lane.motor.ke;
    inertia_[l] = lane.motor.inertia;
    damping_[l] = lane.motor.damping;
    supply_[l] = lane.motor.supply_voltage;
    load_[l] = lane.load;
    if (load_[l]) any_load_ = true;
  }

  // Reserve the recording arrays for the full run (the engine's stop test
  // decides the exact major count; +2 covers the boundary).
  std::size_t majors = 0;
  while (static_cast<double>(majors) * base_period_ * 1.0 < stop_max &&
         majors < (1u << 30)) {
    ++majors;
  }
  majors += 2;
  times_.reserve(majors);
  speed_hist_.reserve(majors * w);
  duty_hist_.reserve(majors * w);
}

bool ServoBatch::step() {
  if (remaining_ == 0) return false;
  const double t = static_cast<double>(major_) *
                   static_cast<double>(base_period_ns_) * 1e-9;
  // Engine stop test, per lane: a lane whose stop time arrived finishes
  // early and is masked out of the bookkeeping; the instruction stream
  // keeps full width.
  for (std::size_t l = 0; l < width_; ++l) {
    if (active_[l] && t >= stop_[l] - 1e-12) {
      active_[l] = 0;
      --remaining_;
    }
  }
  if (remaining_ == 0) return false;
  controller_and_record(t);
  integrate(t);
  retire_nonfinite_lanes();
  ++major_;
  return true;
}

void ServoBatch::run() {
  while (step()) {
  }
}

void ServoBatch::controller_and_record(double t) {
  const std::size_t w = width_;

  // --- Output phase (major step, engine sorted order: plant outputs are
  // the current motor state; then the controller chain latches and runs).

  // Quadrature-decoder position latch (QuadDecPeBlock, MIL).
  if (config_.hw_fidelity) {
    qdec_latch_lanes(theta_, cpr_, cnt_);
  } else {
    // Ablation: exact fractional counts, no wrap, no quantization.
    for (std::size_t l = 0; l < w; ++l) {
      cnt_[l] = theta_[l] / (2.0 * std::numbers::pi) * cpr_;
    }
  }

  // Wrapped 16-bit count difference (cnt_diff FunctionBlock), speed
  // scaling (spd_gain GainBlock).
  for (std::size_t l = 0; l < w; ++l) {
    spd_[l] = gain_ * std::remainder(cnt_[l] - prev_cnt_[l], 65536.0);
  }

  // Moving-average filter output: current sample plus the window,
  // newest to oldest (MovingAverageBlock::output's accumulation order).
  for (std::size_t l = 0; l < w; ++l) filt_[l] = spd_[l];
  for (std::size_t k = 0; k < window_len_; ++k) {
    const double* IECD_RESTRICT row = window_.data() + k * w;
    double* IECD_RESTRICT acc = filt_.data();
    for (std::size_t l = 0; l < w; ++l) acc[l] += row[l];
  }
  const double inv_count = static_cast<double>(window_len_ + 1);
  for (std::size_t l = 0; l < w; ++l) filt_[l] = filt_[l] / inv_count;

  // Set-point step, error sum ("++-": set-point, keyboard offset, speed),
  // PI with saturation (DiscretePidBlock::output, kd = 0).
  for (std::size_t l = 0; l < w; ++l) {
    const double sp = t >= sp_time_[l] ? sp_[l] : 0.0;
    double acc = 0.0;
    acc += sp;
    acc += 0.0;  // keyboard set-point offset: no key events in MIL
    acc -= filt_[l];
    err_[l] = acc;
    const double unsat = kp_[l] * acc + integral_[l] + 0.0;
    unsat_[l] = unsat;
    sat_[l] = unsat < 0.0 ? 0.0 : (1.0 < unsat ? 1.0 : unsat);
  }

  // Mode switch: the chart stays in "automatic" (out 1.0 >= 0.5) without
  // key events, so the PWM sees the PI output.  PWM duty latch
  // (PwmPeBlock::quantize_duty).
  if (config_.hw_fidelity) {
    pwm_latch_lanes(sat_, config_.pwm_modulo, duty_);
  } else {
    for (std::size_t l = 0; l < w; ++l) duty_[l] = sat_[l];  // ideal actuator
  }

  // Scopes (discrete, one sample per major step): speed before this
  // step's integration, duty as just computed.
  times_.push_back(t);
  const std::size_t base = times_.size() - 1;
  (void)base;
  speed_hist_.insert(speed_hist_.end(), omega_.begin(), omega_.end());
  duty_hist_.insert(duty_hist_.end(), duty_.begin(), duty_.end());
  for (std::size_t l = 0; l < w; ++l) {
    lane_samples_[l] += active_[l];
  }

  // --- Update phase (UnitDelay, MovingAverage push, PI integrator with
  // back-calculation anti-windup).
  for (std::size_t l = 0; l < w; ++l) prev_cnt_[l] = cnt_[l];

  const std::size_t rows =
      config_.speed_filter_taps > 1
          ? static_cast<std::size_t>(config_.speed_filter_taps - 1)
          : 0;
  if (rows > 0) {
    const std::size_t new_len = std::min(window_len_ + 1, rows);
    for (std::size_t k = new_len; k-- > 1;) {
      std::copy_n(window_.data() + (k - 1) * w, w, window_.data() + k * w);
    }
    std::copy_n(spd_.data(), w, window_.data());
    window_len_ = new_len;
  }

  const double T = config_.period_s;
  for (std::size_t l = 0; l < w; ++l) {
    const double aw = (sat_[l] - unsat_[l]) / std::max(kp_[l], 1e-9);
    integral_[l] += ki_[l] * T * (err_[l] + aw);
  }
}

void ServoBatch::integrate(double t0) {
  const std::size_t w = width_;
  // Drive gain: armature voltage = supply * duty, constant over the major
  // step (the controller's output is held).
  for (std::size_t l = 0; l < w; ++l) volt_[l] = supply_[l] * duty_[l];

  const double h =
      base_period_ / static_cast<double>(config_.minor_steps);

  auto eval = [&](double ts, const LaneVector<>& yi, const LaneVector<>& yw,
                  LaneVector<>* k) {
    if (any_load_) {
      for (std::size_t l = 0; l < w; ++l) {
        tau_[l] = load_[l] ? load_[l](ts, yw[l]) : 0.0;
      }
    }
    const double* pi = yi.data();
    const double* pw = yw.data();
    // Explicit-width kernels for the common SIMD group sizes; any other
    // width takes the portable runtime-count loop.
    auto call = [&](auto width_tag) {
      motor_derivs<decltype(width_tag)::value>(
          w, pi, pw, volt_.data(), tau_.data(), res_.data(), ind_.data(),
          kt_.data(), ke_.data(), inertia_.data(), damping_.data(),
          k[0].data(), k[1].data(), k[2].data());
    };
    switch (w) {
      case 4: call(std::integral_constant<int, 4>{}); break;
      case 8: call(std::integral_constant<int, 8>{}); break;
      case 16: call(std::integral_constant<int, 16>{}); break;
      default: call(std::integral_constant<int, 0>{}); break;
    }
  };

  for (int m = 0; m < config_.minor_steps; ++m) {
    const double t = t0 + h * m;
    // Classic RK4 over the SoA lanes, via the shared stage/combination
    // loops (util/rk4.hpp) — identical expressions to the scalar engine.
    eval(t, cur_, omega_, k1_);
    util::rk4_stage(cur_, k1_[0], 0.5 * h, yi_);
    util::rk4_stage(omega_, k1_[1], 0.5 * h, yw_);
    util::rk4_stage(theta_, k1_[2], 0.5 * h, yt_);
    eval(t + 0.5 * h, yi_, yw_, k2_);
    util::rk4_stage(cur_, k2_[0], 0.5 * h, yi_);
    util::rk4_stage(omega_, k2_[1], 0.5 * h, yw_);
    util::rk4_stage(theta_, k2_[2], 0.5 * h, yt_);
    eval(t + 0.5 * h, yi_, yw_, k3_);
    util::rk4_stage(cur_, k3_[0], h, yi_);
    util::rk4_stage(omega_, k3_[1], h, yw_);
    util::rk4_stage(theta_, k3_[2], h, yt_);
    eval(t + h, yi_, yw_, k4_);
    util::rk4_combine(cur_, h, k1_[0], k2_[0], k3_[0], k4_[0]);
    util::rk4_combine(omega_, h, k1_[1], k2_[1], k3_[1], k4_[1]);
    util::rk4_combine(theta_, h, k1_[2], k2_[2], k3_[2], k4_[2]);
  }
}

void ServoBatch::retire_nonfinite_lanes() {
  for (std::size_t l = 0; l < width_; ++l) {
    if (!active_[l]) continue;
    if (std::isfinite(cur_[l]) && std::isfinite(omega_[l]) &&
        std::isfinite(theta_[l])) {
      continue;
    }
    active_[l] = 0;
    faulted_[l] = 1;
    --remaining_;
  }
}

bool ServoBatch::lane_faulted(std::size_t lane) const {
  return faulted_.at(lane) != 0;
}

ServoLaneResult ServoBatch::result(std::size_t lane) const {
  if (lane >= width_) {
    throw std::out_of_range("ServoBatch::result: lane out of range");
  }
  ServoLaneResult r;
  const std::size_t n = lane_samples_[lane];
  for (std::size_t j = 0; j < n; ++j) {
    r.speed.record(times_[j], speed_hist_[j * width_ + lane]);
    r.duty.record(times_[j], duty_hist_[j * width_ + lane]);
  }
  r.metrics = model::analyze_step(r.speed, sp_[lane], sp_time_[lane]);
  r.iae = model::integral_absolute_error(r.speed, sp_[lane]);
  r.faulted = faulted_[lane] != 0;
  return r;
}

std::vector<ServoLaneResult> run_servo_batch(const ServoBatchConfig& config,
                                             std::span<const ServoLane> lanes) {
  ServoBatch batch(config, lanes);
  batch.run();
  std::vector<ServoLaneResult> results;
  results.reserve(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    results.push_back(batch.result(l));
  }
  return results;
}

}  // namespace iecd::batch
