file(REMOVE_RECURSE
  "CMakeFiles/tank_level_control.dir/tank_level_control.cpp.o"
  "CMakeFiles/tank_level_control.dir/tank_level_control.cpp.o.d"
  "tank_level_control"
  "tank_level_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tank_level_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
