// Coverage suite: smaller paths and reporting surfaces the main suites
// exercise only incidentally.
#include <gtest/gtest.h>

#include <sstream>

#include "beans/bean_project.hpp"
#include "beans/can_bean.hpp"
#include "beans/capture_bean.hpp"
#include "beans/free_cntr_bean.hpp"
#include "beans/serial_bean.hpp"
#include "beans/watchdog_bean.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "core/case_study.hpp"
#include "mcu/derivative.hpp"
#include "model/engine.hpp"
#include "periph/uart.hpp"
#include "plant/dc_motor.hpp"
#include "util/statistics.hpp"
#include "util/strings.hpp"

namespace iecd {
namespace {

TEST(HistogramAscii, RendersBarsAndCounts) {
  util::Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8; ++i) h.add(0.5);
  h.add(2.5);
  const std::string ascii = h.to_ascii(10);
  EXPECT_NE(ascii.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(ascii.find("8"), std::string::npos);
  // Four lines, one per bin.
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 4);
}

TEST(ValueToString, NamesTypeAndValue) {
  const auto v = model::Value::of_int(model::DataType::kInt16, -42);
  EXPECT_NE(v.to_string().find("int16"), std::string::npos);
  EXPECT_NE(v.to_string().find("-42"), std::string::npos);
  const auto f = model::Value::quantize(0.5, model::DataType::kFixed,
                                        fixpt::FixedFormat::s16(10));
  EXPECT_NE(f.to_string().find("fixdt"), std::string::npos);
}

TEST(FixedValueToString, ShowsFormatAndRaw) {
  const auto v =
      fixpt::FixedValue::from_double(1.5, fixpt::FixedFormat::s16(8));
  const std::string s = v.to_string();
  EXPECT_NE(s.find("sfix16_En8"), std::string::npos);
  EXPECT_NE(s.find("raw=384"), std::string::npos);
}

TEST(UartFifo, RejectsWhenFull) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::UartConfig cfg;
  cfg.tx_fifo_depth = 4;
  periph::UartPeripheral uart(mcu, cfg);
  sim::SerialLink link(world, sim::SerialConfig{});
  uart.connect(link.b_to_a(), link.a_to_b());
  std::uint8_t burst[16] = {};
  const std::size_t accepted = uart.send(burst, sizeof burst);
  EXPECT_EQ(accepted, 4u);  // FIFO depth enforced
  world.run_for(sim::milliseconds(10));
  // After draining, more bytes go through.
  EXPECT_TRUE(uart.send(0x55));
}

TEST(GpioConflicts, ExternalDriveOnOutputIgnored) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::GpioPort port(mcu, periph::GpioConfig{});
  port.set_direction(0, periph::PinDirection::kOutput);
  port.write(0, true);
  port.drive_external(0, false);  // the external world loses
  EXPECT_TRUE(port.read(0));
}

TEST(DcMotorSimOptions, MaxStepSetterGuardsZero) {
  sim::World world;
  plant::DcMotorSim motor(world, plant::DcMotorParams{});
  motor.set_max_step(0);  // falls back to a sane default
  sim::ZohSignal duty(0.5);
  motor.drive_from_duty(&duty);
  EXPECT_GT(motor.speed_at(sim::milliseconds(100)), 10.0);
}

TEST(InspectorRender, CoversEveryBeanType) {
  beans::BeanProject project("all");
  project.add<beans::SerialBean>("AS1");
  project.add<beans::WatchdogBean>("WDog1");
  project.add<beans::CanBean>("CAN1");
  project.add<beans::CaptureBean>("Cap1");
  project.add<beans::FreeCntrBean>("FC1");
  const std::string text = project.inspector_render();
  for (const char* needle :
       {"AsynchroSerial", "WatchDog", "FreescaleCAN", "Capture",
        "FreeCntr"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(DriverEmission, AllBeanTypesEmitHeaders) {
  beans::BeanProject project("all");
  project.add<beans::SerialBean>("AS1").enable_method("SendChar");
  project.add<beans::WatchdogBean>("WDog1").enable_method("Clear");
  project.add<beans::CanBean>("CAN1").enable_method("SendFrame");
  project.add<beans::CaptureBean>("Cap1").enable_method("GetPeriodUS");
  project.add<beans::FreeCntrBean>("FC1").enable_method("GetTimeUS");
  project.validate();
  for (const auto api :
       {beans::DriverApi::kProcessorExpert, beans::DriverApi::kAutosar}) {
    const auto drivers = project.generate_drivers(api);
    EXPECT_EQ(drivers.size(), 7u);  // types + CPU + 5 beans
    for (const auto& d : drivers) {
      EXPECT_FALSE(d.header.empty()) << d.header_name;
    }
  }
}

TEST(Reports, GeneratedAppAndPilReportRender) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.2;
  core::ServoSystem servo(cfg);
  auto build = servo.build_target("servo");
  const std::string app_report = build.app.report();
  EXPECT_NE(app_report.find("servo_step"), std::string::npos);
  EXPECT_NE(app_report.find("memory:"), std::string::npos);
  const auto pil = servo.run_pil({.baud = 460800});
  const std::string pil_report = pil.report.to_string();
  EXPECT_NE(pil_report.find("round trip"), std::string::npos);
  EXPECT_NE(pil_report.find("comm per step"), std::string::npos);
}

TEST(EngineAdvance, StopsAtStopTime) {
  model::Model m("t");
  m.add<blocks::ConstantBlock>("c", 1.0);
  model::Engine eng(m, {.stop_time = 0.01});
  eng.initialize();
  eng.advance_to(1.0);  // beyond stop time
  EXPECT_NEAR(eng.time(), 0.01, 1e-12);
}

TEST(EngineScopes, InheritedContinuousScopeRecordsOncePerMajor) {
  // A scope fed by a continuous source resolves continuous; the minor-step
  // guard must prevent duplicate samples.
  model::Model m("t");
  auto& src = m.add<blocks::SineBlock>("s", 1.0, 5.0);
  src.set_sample_time(model::SampleTime::continuous());
  auto& scope = m.add<blocks::ScopeBlock>("scope");
  m.connect(src, 0, scope, 0);
  model::Engine eng(m, {.stop_time = 0.05, .base_period = 1e-3,
                        .minor_steps = 8});
  eng.run();
  EXPECT_EQ(scope.log().size(), 50u);
}

TEST(ServoValidation, ReportsModelAndProjectIssues) {
  core::ServoConfig cfg;
  core::ServoSystem servo(cfg);
  // Sanity: the shipped case study validates clean and its model sorts.
  EXPECT_FALSE(servo.validate().has_errors());
  EXPECT_NO_THROW(servo.top().sorted());
  EXPECT_FALSE(servo.top().check().has_errors());
  EXPECT_FALSE(servo.controller().inner().check().has_errors());
}

TEST(StringsFormatting, LongFormatDoesNotTruncate) {
  const std::string long_name(300, 'x');
  const std::string out = util::format("%s:%d", long_name.c_str(), 7);
  EXPECT_EQ(out.size(), 302u);
  EXPECT_EQ(out.substr(300), ":7");
}

TEST(SampleSeriesEdge, SingleAndEmptyBehaviour) {
  util::SampleSeries s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.percentile(0), 3.0);
  EXPECT_EQ(s.percentile(100), 3.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(PwmBeanTolerance, TightToleranceRejectsOddFrequency) {
  beans::BeanProject project("p");
  project.add<beans::PwmBean>("PWM1");
  util::DiagnosticList d0;
  // 17777 Hz at 60 MHz: modulo 3375.2 -> ~0.006% error, fine at 1%.
  auto diags = project.set_property("PWM1", "frequency_hz", 17777.0);
  EXPECT_FALSE(diags.has_errors());
  // With a 0.0001% tolerance the same request fails.
  project.set_property("PWM1", "tolerance_percent", 0.0001);
  diags = project.validate();
  EXPECT_TRUE(diags.has_errors());
}

TEST(AdcBeanContinuous, FreeRunningConversionsViaBean) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  beans::BeanProject project("p");
  auto& adc = project.add<beans::AdcBean>("AD1");
  util::DiagnosticList d;
  adc.set_property("continuous", true, d);
  project.validate();
  project.bind(mcu);
  adc.peripheral()->set_analog_source(0, [](sim::SimTime) { return 2.0; });
  adc.Measure();
  world.run_for(sim::milliseconds(1));
  EXPECT_GT(adc.peripheral()->conversions_completed(), 100u);
}

}  // namespace
}  // namespace iecd
