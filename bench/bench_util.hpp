/// \file bench_util.hpp
/// Shared helpers for the experiment benches: every bench binary first
/// prints its experiment table (the series EXPERIMENTS.md records), then
/// runs its google-benchmark microbenchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace iecd::bench {

/// True when the bench should shrink its workloads to a CI-friendly smoke
/// run (set IECD_BENCH_SMOKE=1).  Tables keep the same shape and emit the
/// same RunSummary keys, just from smaller inputs.
inline bool smoke() { return std::getenv("IECD_BENCH_SMOKE") != nullptr; }

/// Wall-clock stopwatch for per-phase timings in the tables.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Peak resident set size of this process in kB (getrusage ru_maxrss;
/// bytes on macOS, kB on Linux).  0 where the platform has no rusage.
/// Note ru_maxrss is a process-lifetime high-water mark — it never goes
/// down, so a bench comparing configurations within one process must fork
/// a child per measurement (bench_e14 does).
inline double peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
#else
  return static_cast<double>(ru.ru_maxrss);
#endif
#else
  return 0.0;
#endif
}

/// Workload overrides shared by the campaign-scale benches: --threads=N,
/// --batch=N and --runs=N on the command line scale the experiment tables
/// without a rebuild (0 = keep the bench's default).  IECD_BENCH_MAIN
/// strips them from argv before google-benchmark sees (and rejects) them.
struct Overrides {
  std::size_t threads = 0;
  std::size_t batch = 0;
  std::size_t runs = 0;
};

inline Overrides& overrides() {
  static Overrides o;
  return o;
}

inline void parse_overrides(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    auto take = [&arg](const char* prefix, std::size_t& slot) {
      const std::size_t n = std::strlen(prefix);
      if (arg.compare(0, n, prefix) != 0) return false;
      slot = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + n, nullptr, 10));
      return true;
    };
    if (take("--threads=", overrides().threads) ||
        take("--batch=", overrides().batch) ||
        take("--runs=", overrides().runs)) {
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
}

/// Machine-readable run summary: each bench binary records its headline
/// figures here (from the experiment tables) and the bench main writes
/// them to BENCH_<name>.json, so the bench trajectory self-populates
/// instead of being scraped from stdout.  Maps keep the output key-sorted
/// and therefore deterministic for a deterministic run.
class RunSummary {
 public:
  static RunSummary& instance() {
    static RunSummary summary;
    return summary;
  }

  /// Records a numeric metric, e.g. set("pil.rtt_us@115200", 812.4).
  void set(const std::string& name, double value) { metrics_[name] = value; }
  /// Records a free-form annotation (git rev, config, units).
  void note(const std::string& name, const std::string& text) {
    notes_[name] = text;
  }

  std::string to_json(const std::string& bench_name) const {
    std::string out = "{\n  \"bench\": \"" + bench_name + "\"";
    out += ",\n  \"metrics\": {";
    bool first = true;
    char buf[64];
    for (const auto& [k, v] : metrics_) {
      std::snprintf(buf, sizeof buf, "%.9g", v);
      out += first ? "\n" : ",\n";
      out += "    \"" + k + "\": " + buf;
      first = false;
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"notes\": {";
    first = true;
    for (const auto& [k, v] : notes_) {
      out += first ? "\n" : ",\n";
      out += "    \"" + k + "\": \"" + v + "\"";
      first = false;
    }
    out += first ? "}" : "\n  }";
    out += "\n}\n";
    return out;
  }

  /// Writes BENCH_<bench_name>.json into the working directory.
  bool write(const std::string& bench_name) const {
    std::ofstream os("BENCH_" + bench_name + ".json", std::ios::binary);
    if (!os) return false;
    os << to_json(bench_name);
    return os.good();
  }

 private:
  std::map<std::string, double> metrics_;
  std::map<std::string, std::string> notes_;
};

/// Shorthand for recording into the process-wide summary.
inline void summarize(const std::string& name, double value) {
  RunSummary::instance().set(name, value);
}

inline std::string bench_name_from_argv0(const char* argv0) {
  std::string name(argv0 ? argv0 : "bench");
  const auto slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

/// Standard bench main body: print the table, run microbenchmarks, then
/// write the machine-readable BENCH_<name>.json summary.  The summary is
/// written once right after the experiment table and again after the
/// microbenchmarks: a rejected flag or a crash in the benchmark phase can
/// then no longer leave an empty (or missing) BENCH_*.json behind.
#define IECD_BENCH_MAIN(print_table_fn)                            \
  int main(int argc, char** argv) {                                \
    const std::string bench_name =                                 \
        iecd::bench::bench_name_from_argv0(argc > 0 ? argv[0]      \
                                                    : nullptr);    \
    iecd::bench::parse_overrides(argc, argv);                      \
    print_table_fn();                                              \
    iecd::bench::summarize("proc.peak_rss_kb",                     \
                           iecd::bench::peak_rss_kb());            \
    iecd::bench::RunSummary::instance().write(bench_name);         \
    benchmark::Initialize(&argc, argv);                            \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
      return 1;                                                    \
    }                                                              \
    benchmark::RunSpecifiedBenchmarks();                           \
    benchmark::Shutdown();                                         \
    iecd::bench::summarize("proc.peak_rss_kb",                     \
                           iecd::bench::peak_rss_kb());            \
    iecd::bench::RunSummary::instance().write(bench_name);         \
    return 0;                                                      \
  }

}  // namespace iecd::bench
