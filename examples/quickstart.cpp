// Quickstart: build a closed-loop model — a discrete PI speed controller
// against a continuous DC-motor plant — run a model-in-the-loop (MIL)
// simulation and print the step-response quality.
//
// This is the smallest end-to-end use of the modelling layer; the full
// tool-chain walk (beans, code generation, PIL, HIL) is shown in
// examples/servo_case_study.cpp.
#include <cstdio>

#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "plant/dc_motor.hpp"

using namespace iecd;

int main() {
  model::Model loop("quickstart");

  // Reference: step to 100 rad/s at t = 50 ms.
  auto& reference = loop.add<blocks::StepBlock>("reference", 0.05, 0.0, 100.0);

  // Controller: PI on the speed error, output limited to the drive range.
  auto& error = loop.add<blocks::SumBlock>("error", "+-");
  blocks::DiscretePidBlock::Gains gains;
  gains.kp = 0.004;
  gains.ki = 0.12;
  auto& pi = loop.add<blocks::DiscretePidBlock>("pi", gains, 0.0, 1.0);
  pi.set_sample_time(model::SampleTime::discrete(0.001));  // 1 kHz

  // Plant: duty -> H-bridge voltage -> DC motor.
  plant::DcMotorParams motor_params;
  auto& drive = loop.add<blocks::GainBlock>("drive",
                                            motor_params.supply_voltage);
  drive.set_sample_time(model::SampleTime::continuous());
  auto& motor = loop.add<plant::DcMotorBlock>("motor", motor_params);

  auto& scope = loop.add<blocks::ScopeBlock>("speed");
  scope.set_sample_time(model::SampleTime::discrete(0.001));

  loop.connect(reference, 0, error, 0);
  loop.connect(motor, 0, error, 1);
  loop.connect(error, 0, pi, 0);
  loop.connect(pi, 0, drive, 0);
  loop.connect(drive, 0, motor, 0);
  loop.connect(motor, 0, scope, 0);

  const auto diagnostics = loop.check();
  if (diagnostics.has_errors()) {
    std::printf("model errors:\n%s", diagnostics.to_string().c_str());
    return 1;
  }

  model::Engine engine(loop, {.stop_time = 1.0});
  engine.run();

  const auto metrics = model::analyze_step(scope.log(), 100.0, 0.05);
  std::printf("MIL step response (PI speed loop, 1 kHz, DC motor)\n");
  std::printf("  rise time        %7.1f ms\n", metrics.rise_time * 1e3);
  std::printf("  overshoot        %7.2f %%\n", metrics.overshoot_percent);
  std::printf("  settling (2%%)    %7.1f ms\n", metrics.settling_time * 1e3);
  std::printf("  steady error     %7.3f rad/s\n", metrics.steady_state_error);
  std::printf("  final speed      %7.2f rad/s\n", scope.log().last_value());
  std::printf("  settled          %s\n", metrics.settled ? "yes" : "NO");
  return metrics.settled ? 0 : 1;
}
