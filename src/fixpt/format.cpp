#include "fixpt/format.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace iecd::fixpt {

std::int64_t FixedFormat::max_raw() const {
  const int magnitude_bits = is_signed ? word_bits - 1 : word_bits;
  return (std::int64_t{1} << magnitude_bits) - 1;
}

std::int64_t FixedFormat::min_raw() const {
  if (!is_signed) return 0;
  return -(std::int64_t{1} << (word_bits - 1));
}

double FixedFormat::resolution() const { return std::ldexp(1.0, -frac_bits); }

double FixedFormat::max_value() const {
  return static_cast<double>(max_raw()) * resolution();
}

double FixedFormat::min_value() const {
  return static_cast<double>(min_raw()) * resolution();
}

bool FixedFormat::valid() const {
  if (word_bits < 2 || word_bits > 32) return false;
  if (frac_bits < -64 || frac_bits > 64) return false;
  return true;
}

std::string FixedFormat::to_string() const {
  const char* prefix = is_signed ? "sfix" : "ufix";
  if (frac_bits >= 0) {
    return util::format("%s%d_En%d", prefix, word_bits, frac_bits);
  }
  return util::format("%s%d_E%d", prefix, word_bits, -frac_bits);
}

std::int64_t apply_overflow(std::int64_t raw, const FixedFormat& fmt,
                            Overflow overflow) {
  const std::int64_t lo = fmt.min_raw();
  const std::int64_t hi = fmt.max_raw();
  if (raw >= lo && raw <= hi) return raw;
  if (overflow == Overflow::kSaturate) {
    return raw < lo ? lo : hi;
  }
  // Two's-complement wrap into word_bits.
  const std::uint64_t mask =
      fmt.word_bits >= 64 ? ~0ULL : ((std::uint64_t{1} << fmt.word_bits) - 1);
  std::uint64_t wrapped = static_cast<std::uint64_t>(raw) & mask;
  if (fmt.is_signed && fmt.word_bits < 64 &&
      (wrapped & (std::uint64_t{1} << (fmt.word_bits - 1)))) {
    wrapped |= ~mask;  // sign-extend
  }
  return static_cast<std::int64_t>(wrapped);
}

std::int64_t shift_with_rounding(std::int64_t raw, int shift,
                                 Rounding rounding) {
  if (shift == 0) return raw;
  if (shift < 0) {
    // Left shift: gain precision, no rounding needed.  Guard against UB on
    // large shifts; callers keep magnitudes well inside 64 bits.
    return raw << (-shift);
  }
  if (shift >= 63) {
    // Everything shifted out; result is the rounded sign.
    switch (rounding) {
      case Rounding::kFloor:
        return raw < 0 ? -1 : 0;
      default:
        return 0;
    }
  }
  const std::int64_t divisor = std::int64_t{1} << shift;
  switch (rounding) {
    case Rounding::kZero:
      return raw / divisor;
    case Rounding::kFloor: {
      std::int64_t q = raw >> shift;  // arithmetic shift == floor division
      return q;
    }
    case Rounding::kNearest: {
      const std::int64_t half = divisor / 2;
      if (raw >= 0) return (raw + half) >> shift;
      return -((-raw + half) >> shift);
    }
  }
  return raw >> shift;
}

}  // namespace iecd::fixpt
