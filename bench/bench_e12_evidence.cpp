// E12 — evidence recorder ingest path (src/evidence/).  Three questions:
//
//   (a) raw ingest throughput: how many records/s (and MB/s) the
//       EvidenceWriter serializes from a loaded TraceRecorder +
//       MetricsRegistry into a sealed artifact (hash chain + SHA-256
//       included) — this is the path a million-run campaign pays per run;
//   (b) the same artifact parsed + verified back (reader MB/s);
//   (c) ingest cost against the live trace path: ns/event to record into
//       the TraceRecorder ring vs ns/record to serialize + seal the same
//       events into an artifact (reported as evidence.trace_ingest_ratio
//       — sealing includes SHA-256, so ~2-3x the ring write is the
//       expected shape);
//   (d) recording overhead on the default campaign evidence path: a PIL
//       servo run bare vs with its metrics+health artifact built and
//       sealed afterwards.  This ratio is the CI-gated budget
//       (evidence.overhead_ratio <= 1.10) — the evidence step is strictly
//       serial after the run, so each session times the two parts
//       separately (min-of-N each) and the ratio is exactly
//       1 + artifact/run; the median across sessions is gated.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "evidence/hash.hpp"
#include "evidence/reader.hpp"
#include "evidence/sink.hpp"
#include "evidence/verify.hpp"
#include "evidence/writer.hpp"
#include "obs/monitor.hpp"
#include "trace/trace.hpp"

using namespace iecd;

namespace {

// ------------------------------------------------------ synthetic workload
/// Fills a recorder with a realistic event mix (spans, counters, instants
/// across several tracks) and a registry with every metric kind.
void fill_workload(trace::TraceRecorder& rec, trace::MetricsRegistry& m,
                   std::size_t events) {
  static const char* kTracks[] = {"cpu", "bus", "pil", "plant"};
  static const char* kNames[] = {"step", "isr", "frame", "sample"};
  sim::SimTime t = 0;
  for (std::size_t i = 0; i < events; ++i) {
    const char* track = kTracks[i % 4];
    const char* name = kNames[(i / 4) % 4];
    t += 250;
    switch (i % 3) {
      case 0:
        rec.span_complete("sim", name, track, t, t + 120,
                          static_cast<double>(i % 17));
        break;
      case 1:
        rec.counter("sim", name, track, t, static_cast<double>(i % 251));
        break;
      default:
        rec.instant("sim", name, track, t);
        break;
    }
  }
  m.counter("steps").value = events;
  m.gauge("iae") = 6.375;
  auto& s = m.stats("exec_us");
  for (int i = 0; i < 256; ++i) s.add(10.0 + (i % 13));
  auto& series = m.series("rtt_us");
  for (int i = 0; i < 256; ++i) series.add(800.0 + (i % 37));
  auto& h = m.histogram("lat_us", 0.0, 1000.0, 64);
  for (int i = 0; i < 512; ++i) h.add(static_cast<double>((i * 97) % 1000));
}

std::vector<std::uint8_t> build_artifact(const trace::TraceRecorder& rec,
                                         const trace::MetricsRegistry& m) {
  evidence::EvidenceWriter w;
  w.record_build_info();
  w.record_run_meta("bench_e12", 0, 1);
  w.record_metrics(m);
  w.record_trace(rec);
  w.finish();
  return w.bytes();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void print_table() {
  std::printf("E12: evidence recorder — deterministic binary artifacts "
              "(schema registry, hash chain, SHA-256)\n\n");

  const std::size_t events = bench::smoke() ? 20000 : 200000;
  const int reps = bench::smoke() ? 5 : 10;

  trace::TraceRecorder rec(events + 16);
  trace::MetricsRegistry metrics;
  fill_workload(rec, metrics, events);

  // (a) ingest throughput ------------------------------------------------
  std::vector<std::uint8_t> artifact;
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    bench::Stopwatch sw;
    artifact = build_artifact(rec, metrics);
    best_ms = std::min(best_ms, sw.elapsed_ms());
  }
  evidence::EvidenceReader probe;
  probe.parse(artifact);
  const double records = static_cast<double>(probe.record_count());
  const double records_per_s = records / (best_ms / 1e3);
  const double mb_per_s =
      static_cast<double>(artifact.size()) / 1e6 / (best_ms / 1e3);
  std::printf("(a) writer ingest: %zu records -> %zu bytes in %.2f ms "
              "(best of %d)\n    %.2fM records/s, %.1f MB/s, sealed with "
              "chain hash + sha256\n\n",
              static_cast<std::size_t>(records), artifact.size(), best_ms,
              reps, records_per_s / 1e6, mb_per_s);
  bench::summarize("evidence.ingest_records_per_s", records_per_s);
  bench::summarize("evidence.ingest_mb_per_s", mb_per_s);
  bench::summarize("evidence.artifact_bytes",
                   static_cast<double>(artifact.size()));
  bench::summarize("evidence.bytes_per_record",
                   static_cast<double>(artifact.size()) / records);

  // (b) read-back + verify ----------------------------------------------
  double verify_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    bench::Stopwatch sw;
    const auto result = evidence::verify_artifact(artifact);
    verify_ms = std::min(verify_ms, sw.elapsed_ms());
    if (!result.ok) {
      std::printf("verify FAILED: %s\n", result.summary().c_str());
      return;
    }
  }
  const double verify_mb_per_s =
      static_cast<double>(artifact.size()) / 1e6 / (verify_ms / 1e3);
  std::printf("(b) reader+verify: %.2f ms (%.1f MB/s), every record "
              "decoded, both hashes checked\n\n",
              verify_ms, verify_mb_per_s);
  bench::summarize("evidence.verify_mb_per_s", verify_mb_per_s);

  // (c) ingest cost vs the live trace path ------------------------------
  double live_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    trace::TraceRecorder live(events + 16);
    trace::MetricsRegistry unused;
    bench::Stopwatch sw;
    fill_workload(live, unused, events);
    live_ms = std::min(live_ms, sw.elapsed_ms());
  }
  const double live_ns_per_event = live_ms * 1e6 / static_cast<double>(events);
  const double ingest_ns_per_record = best_ms * 1e6 / records;
  const double trace_ingest_ratio = ingest_ns_per_record / live_ns_per_event;
  std::printf("(c) vs live trace path: ring record %.0f ns/event, "
              "serialize+seal %.0f ns/record\n    trace_ingest_ratio %.2f "
              "(sealing includes the SHA-256 digest%s)\n\n",
              live_ns_per_event, ingest_ns_per_record, trace_ingest_ratio,
              evidence::Sha256::hardware_accelerated() ? ", SHA-NI"
                                                       : ", scalar SHA");
  bench::summarize("evidence.live_record_ns_per_event", live_ns_per_event);
  bench::summarize("evidence.ingest_ns_per_record", ingest_ns_per_record);
  bench::summarize("evidence.trace_ingest_ratio", trace_ingest_ratio);

  // (d) campaign-path recording overhead --------------------------------
  // What a fault-campaign run pays per run: its metrics + health sealed
  // into the per-run artifact (no trace — campaigns record summaries).
  core::ServoConfig scfg;
  scfg.duration_s = bench::smoke() ? 0.2 : 0.3;
  scfg.setpoint_time = 0.02;
  // Cheap enough (a PIL run is ~2 ms) to afford full sessions in smoke
  // mode too — the gate needs the noise floor, not a faster bench.
  const int sessions = 5;
  const int runs_per_mode = 3;

  // The evidence step runs strictly after the campaign run, so the
  // overhead ratio decomposes exactly into 1 + artifact_time/run_time.
  // Timing the two parts separately (min-of-N each) keeps the run-vs-run
  // scheduler noise out of the numerator.
  std::vector<double> ratios;
  for (int s = 0; s < sessions; ++s) {
    double run_ms = 1e300;
    trace::MetricsRegistry run_metrics;
    obs::HealthReport health;
    for (int r = 0; r < runs_per_mode; ++r) {
      core::ServoSystem servo(scfg);
      obs::MonitorHub hub;
      core::ServoSystem::PilRunOptions run;
      run.baud = 1000000;
      run.monitors = &hub;
      bench::Stopwatch sw;
      const auto result = servo.run_pil(run);
      // A campaign produces the health report either way (RunContext
      // keeps it); evidence adds only the serialize-and-seal step.
      health = hub.report("pil");
      run_ms = std::min(run_ms, sw.elapsed_ms());
      benchmark::DoNotOptimize(result.iae);
      run_metrics = result.report.metrics;
    }
    double artifact_ms = 1e300;
    for (int r = 0; r < 10; ++r) {
      bench::Stopwatch sw;
      const auto writer = evidence::build_run_artifact(
          "bench_e12", 0, 42, run_metrics, &health);
      artifact_ms = std::min(artifact_ms, sw.elapsed_ms());
      benchmark::DoNotOptimize(writer.bytes().data());
    }
    ratios.push_back(1.0 + artifact_ms / run_ms);
  }
  const double overhead_ratio = median(ratios);
  std::printf("(d) campaign-path overhead: PIL servo %.1fs, bare run vs "
              "+ sealed metrics/health artifact\n    overhead ratio %.4f "
              "(median of %d sessions; CI budget 1.10)\n\n",
              scfg.duration_s, overhead_ratio, sessions);
  bench::summarize("evidence.overhead_ratio", overhead_ratio);
}

// ------------------------------------------------------- microbenchmarks
void BM_WriterIngest(benchmark::State& state) {
  trace::TraceRecorder rec(1 << 15);
  trace::MetricsRegistry metrics;
  fill_workload(rec, metrics, 1 << 15);
  for (auto _ : state) {
    auto bytes = build_artifact(rec, metrics);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rec.size()));
}
BENCHMARK(BM_WriterIngest)->Unit(benchmark::kMillisecond);

void BM_VerifyArtifact(benchmark::State& state) {
  trace::TraceRecorder rec(1 << 15);
  trace::MetricsRegistry metrics;
  fill_workload(rec, metrics, 1 << 15);
  const auto artifact = build_artifact(rec, metrics);
  for (auto _ : state) {
    auto result = evidence::verify_artifact(artifact);
    benchmark::DoNotOptimize(result.ok);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(artifact.size()));
}
BENCHMARK(BM_VerifyArtifact)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
