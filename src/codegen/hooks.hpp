/// \file hooks.hpp
/// The make_rtw_hook pipeline: user-definable callbacks invoked at defined
/// points of the code-generation process (paper Section 5's
/// peert_make_rtw_hook.m).  The built-in BeanAutoConfigHook performs the
/// auto-configuration the paper describes: it enables exactly the bean
/// methods the generated code calls and aligns the periodic-interrupt bean
/// with the controller's sample time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "beans/bean_project.hpp"
#include "codegen/target_io.hpp"
#include "model/subsystem.hpp"
#include "util/diagnostics.hpp"

namespace iecd::codegen {

/// Everything hooks may inspect/adjust before and after generation.
struct GenContext {
  model::Subsystem* controller = nullptr;
  beans::BeanProject* project = nullptr;
  std::vector<TargetIo*> io_blocks;
  double period_s = 0.0;
  bool fixed_point = false;
  bool pil = false;
  util::DiagnosticList diagnostics;
};

class RtwHook {
 public:
  virtual ~RtwHook() = default;
  virtual const char* name() const = 0;
  /// Runs after IO discovery, before task construction / emission.
  virtual void before_generate(GenContext& ctx) { (void)ctx; }
  /// Runs after the application is assembled (may patch sources).
  virtual void after_generate(GenContext& ctx,
                              struct GeneratedApplication& app) {
    (void)ctx;
    (void)app;
  }
};

/// Enables the bean methods the generated code uses and configures the
/// timer bean that drives the periodic task.
class BeanAutoConfigHook : public RtwHook {
 public:
  const char* name() const override { return "bean_auto_config"; }
  void before_generate(GenContext& ctx) override;
};

}  // namespace iecd::codegen
