// E9 — substrate soundness: raw throughput of the simulation kernels the
// reproduction stands on (block-diagram engine, discrete-event queue,
// MCU+peripheral co-simulation) and host-level parallel scaling of
// independent simulation sweeps across cores (the thread-pool harness all
// parameter-sweep benches can use).
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "blocks/sinks.hpp"
#include "core/case_study.hpp"
#include "exec/sweep.hpp"
#include "model/engine.hpp"
#include "obs/monitor.hpp"
#include "sim/event_queue.hpp"

using namespace iecd;

namespace {

// Single-thread throughput of the two hot-path substrates: the discrete
// event core (schedule+dispatch cycles) and the block-diagram engine's
// major-step loop.  These are the headline numbers the perf trajectory
// tracks (BENCH_*.json: event_queue.events_per_s, engine.steps_per_s).
void table_hot_path() {
  std::printf("single-thread hot-path throughput:\n\n");

  const int rounds = bench::smoke() ? 20 : 400;
  const int events = 1024;
  std::uint64_t fired = 0;
  bench::Stopwatch ev_watch;
  for (int r = 0; r < rounds; ++r) {
    sim::EventQueue q;
    for (int i = 0; i < events; ++i) {
      q.schedule_at((i * 7919) % 100000 + 1, [&fired] { ++fired; });
    }
    q.run_all();
  }
  const double ev_s = ev_watch.elapsed_ms() / 1e3;
  const double events_per_s =
      static_cast<double>(rounds) * events / std::max(ev_s, 1e-12);
  benchmark::DoNotOptimize(fired);
  std::printf("%-34s %12.3g events/s\n", "event core (schedule+dispatch)",
              events_per_s);
  bench::summarize("event_queue.events_per_s", events_per_s);

  const int chain = 64;
  model::Model m("chain");
  auto& src = m.add<blocks::ConstantBlock>("src", 1.0);
  model::Block* prev = &src;
  for (int i = 0; i < chain; ++i) {
    auto& g = m.add<blocks::GainBlock>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& sink = m.add<blocks::TerminatorBlock>("sink");
  m.connect(*prev, 0, sink, 0);
  model::Engine eng(m, {.stop_time = 1e9});
  eng.initialize();
  const int steps = bench::smoke() ? 20'000 : 200'000;
  bench::Stopwatch step_watch;
  for (int i = 0; i < steps; ++i) eng.step();
  const double step_s = step_watch.elapsed_ms() / 1e3;
  const double steps_per_s = steps / std::max(step_s, 1e-12);
  const double block_steps_per_s = steps_per_s * (chain + 2);
  benchmark::DoNotOptimize(sink.name());
  std::printf("%-34s %12.3g major steps/s (%.3g block steps/s)\n",
              "engine (64-block gain chain)", steps_per_s, block_steps_per_s);
  bench::summarize("engine.steps_per_s", steps_per_s);
  bench::summarize("engine.block_steps_per_s", block_steps_per_s);
  std::printf("\n");
}

// Online-observability tax on the hottest loop: the 64-block gain-chain
// major step, bare vs carrying the full per-dispatch instrumentation load
// (one TimingMonitor::record, one watermark update, one flight-recorder
// poll per 1024 steps — what rt::Runtime adds per ISR when a MonitorHub is
// attached).  The monitors are fixed-memory and allocation-free, so the
// tax must stay within 3% — the acceptance bound CI enforces from the
// obs.overhead_ratio summary key.
void table_obs_overhead() {
  std::printf("observability overhead (gain-chain step + full monitor "
              "load):\n\n");

  const int chain = 64;
  model::Model m("chain");
  auto& src = m.add<blocks::ConstantBlock>("src", 1.0);
  model::Block* prev = &src;
  for (int i = 0; i < chain; ++i) {
    auto& g = m.add<blocks::GainBlock>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& sink = m.add<blocks::TerminatorBlock>("sink");
  m.connect(*prev, 0, sink, 0);
  model::Engine eng(m, {.stop_time = 1e9});
  eng.initialize();

  const int chunk_steps = 10'000;
  // Not reduced in smoke mode: the whole measurement is ~0.4 s and the
  // median needs enough rounds to be trustworthy — CI gates on it.
  const int rounds = 60;

  // Thread CPU time, not wall clock: preemptions and host steal time on a
  // shared machine would otherwise dwarf the few-ns/step cost under test.
  const auto cpu_ms = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  };

  const auto bare_chunk = [&]() {
    const double begin = cpu_ms();
    for (int i = 0; i < chunk_steps; ++i) eng.step();
    benchmark::DoNotOptimize(sink.name());
    return cpu_ms() - begin;
  };

  obs::MonitorHub hub;
  obs::TimingMonitor::Config mc;
  mc.period_s = 0.001;
  mc.deadline_s = 0.001;
  obs::TimingMonitor& mon = hub.timing("engine_step", mc);
  obs::WatermarkMonitor& depth = hub.watermark("queue.depth");
  std::uint64_t quiet_counter = 0;  // registered but never increasing
  hub.flight().add_counter_trigger("quiet",
                                   [&quiet_counter] { return quiet_counter; });
  sim::SimTime t = 0;
  const auto instrumented_chunk = [&]() {
    const double begin = cpu_ms();
    for (int i = 0; i < chunk_steps; ++i) {
      eng.step();
      // The per-dispatch load rt::Runtime adds: release==start==t, a
      // plausible ISR extent.  The hub's poll-cadence work (queue-depth
      // watermark sample + flight-recorder predicate sweep) runs every
      // 1024 periods, matching a hub armed at a slower poll rate.
      mon.record(t, t, t + 5000);
      if ((i & 1023) == 0) {
        depth.update(static_cast<double>(i & 63));
        hub.flight().poll(t);
      }
      t += 1'000'000;  // one 1 kHz period per step
    }
    benchmark::DoNotOptimize(sink.name());
    return cpu_ms() - begin;
  };

  // Alternate short chunks and score each round by the ratio of its two
  // adjacent timings: both halves of a pair see the same machine state
  // (cache pressure, frequency, neighbours), so drift cancels where a
  // global min/min comparison would pit a lucky window of one variant
  // against an unlucky one of the other.  Rounds are grouped into sessions
  // and the reported figure is the least-contaminated session's MEDIAN
  // ratio: the true instrumentation cost floors every per-pair ratio, so
  // the minimum over session medians converges to the real overhead as
  // soon as any session lands in a quiet window, while a single global
  // median would still absorb sustained neighbour interference.
  bare_chunk();  // warm code, caches and branch predictors
  instrumented_chunk();
  constexpr int kSessions = 3;
  const int session_rounds = rounds / kSessions;
  double ratio = 1e300;
  std::vector<double> bare_times;
  std::vector<double> inst_times;
  std::vector<double> ratios;
  for (int session = 0; session < kSessions; ++session) {
    ratios.clear();
    for (int round = 0; round < session_rounds; ++round) {
      const double b = bare_chunk();
      const double i = instrumented_chunk();
      bare_times.push_back(b);
      inst_times.push_back(i);
      ratios.push_back(i / std::max(b, 1e-9));
    }
    std::sort(ratios.begin(), ratios.end());
    ratio = std::min(ratio, ratios[ratios.size() / 2]);
  }
  const double bare_ms = *std::min_element(bare_times.begin(),
                                           bare_times.end());
  const double inst_ms = *std::min_element(inst_times.begin(),
                                           inst_times.end());
  const double bare_rate = chunk_steps / std::max(bare_ms, 1e-9) * 1e3;
  const double inst_rate = chunk_steps / std::max(inst_ms, 1e-9) * 1e3;
  const double overhead_pct = (ratio - 1.0) * 100.0;
  std::printf("%-34s %12.3g steps/s\n", "bare engine step", bare_rate);
  std::printf("%-34s %12.3g steps/s\n", "instrumented (record+poll)",
              inst_rate);
  std::printf("%-34s %11.2f%%  %s\n", "observability overhead",
              overhead_pct,
              overhead_pct <= 3.0 ? "(within 3% budget)"
                                  : "** EXCEEDS 3% BUDGET **");
  bench::summarize("obs.overhead_ratio", ratio);
  bench::summarize("obs.engine_overhead_pct", overhead_pct);
  bench::summarize("obs.instrumented_steps_per_s", inst_rate);
  std::printf("\n");
}

void print_table() {
  std::printf("E9: simulation-substrate throughput\n\n");

  table_hot_path();
  table_obs_overhead();

  // Parallel sweep scaling: N independent MIL runs across worker counts.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel MIL sweep scaling (16 servo runs of 1 s; host has "
              "%u core%s -> ideal speedup %ux):\n\n",
              cores, cores == 1 ? "" : "s", cores);
  std::printf("%-10s %-12s %-10s\n", "threads", "wall[ms]", "speedup");
  bench::print_rule(36);
  const std::size_t runs = 16;
  const double duration_s = bench::smoke() ? 0.1 : 1.0;
  double t1 = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    exec::SweepRunner runner(exec::SweepOptions{.threads = threads});
    const auto result = runner.run(
        runs, [duration_s](std::size_t, trace::MetricsRegistry& metrics) {
          core::ServoConfig cfg;
          cfg.duration_s = duration_s;
          core::ServoSystem servo(cfg);
          auto mil = servo.run_mil();
          metrics.stats("mil.iae").add(mil.iae);
        });
    const double ms = result.wall_ms;
    if (threads == 1) t1 = ms;
    std::printf("%-10zu %-12.1f %-10.2fx\n", threads, ms, t1 / ms);
    const std::string key = "sweep." + std::to_string(threads) + "_threads";
    bench::summarize(key + ".wall_ms", ms);
    bench::summarize(key + ".speedup", t1 / ms);
    if (threads == std::min<std::size_t>(8, cores)) {
      bench::summarize("sweep.parallel_efficiency_at_cores",
                       (t1 / ms) / static_cast<double>(threads));
    }
  }
  std::printf("\n(each simulation is deterministic and single-threaded; "
              "parallelism lives at the\n sweep level, so speedup is "
              "bounded by the available cores.)\n\n");
}

void BM_EngineGainChain(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  model::Model m("chain");
  auto& src = m.add<blocks::ConstantBlock>("src", 1.0);
  model::Block* prev = &src;
  for (int i = 0; i < n; ++i) {
    auto& g = m.add<blocks::GainBlock>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& sink = m.add<blocks::TerminatorBlock>("sink");
  m.connect(*prev, 0, sink, 0);
  model::Engine eng(m, {.stop_time = 1e9});
  eng.initialize();
  for (auto _ : state) {
    eng.step();
  }
  state.SetItemsProcessed(state.iterations() * (n + 2));
  state.counters["block_steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * (n + 2)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineGainChain)->Arg(16)->Arg(64)->Arg(256);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int hits = 0;
    for (int i = 0; i < 1024; ++i) {
      q.schedule_at((i * 7919) % 100000 + 1, [&hits] { ++hits; });
    }
    q.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_McuIsrDispatch(benchmark::State& state) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  mcu::IsrHandler handler;
  handler.name = "bench";
  handler.body = []() -> std::uint64_t { return 100; };
  mcu.intc().register_vector(1, 0, std::move(handler));
  for (auto _ : state) {
    world.queue().schedule_in(10, [&] { mcu.raise_irq(1); });
    world.run_for(sim::microseconds(10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McuIsrDispatch);

void BM_HilCosimRealtimeRatio(benchmark::State& state) {
  // How much faster than real time the full HIL co-simulation runs.
  for (auto _ : state) {
    core::ServoConfig cfg;
    cfg.duration_s = 0.5;
    core::ServoSystem servo(cfg);
    auto hil = servo.run_hil();
    benchmark::DoNotOptimize(hil.iae);
  }
  state.counters["sim_s/wall_s"] = benchmark::Counter(
      0.5 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HilCosimRealtimeRatio)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
