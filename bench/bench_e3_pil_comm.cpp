// E3 (Fig. 6.2) — PIL communication over the byte-timed RS232 line.  The
// paper: "Even though the communication over RS232 is very slow, the main
// advantage of this interface is that it is present on any development
// board."  The table sweeps the baud rate and shows where the serial line
// stops fitting into the control period: round trip, per-step wire time,
// overhead share, deadline misses, and the resulting control quality.
// Expected shape: at low baud the exchange takes longer than the period
// (misses, loop degrades); from ~115200 up the loop closes comfortably and
// quality converges to the MIL result.
#include <cstdio>

#include "bench_util.hpp"
#include "core/case_study.hpp"

using namespace iecd;

namespace {

core::ServoConfig bench_config() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.5;
  return cfg;
}

void print_table() {
  std::printf("E3: PIL exchange vs baud rate (1 kHz control loop)\n\n");

  core::ServoSystem ref(bench_config());
  const auto mil = ref.run_mil();
  std::printf("MIL reference IAE: %.3f\n\n", mil.iae);
  bench::summarize("mil.iae", mil.iae);

  std::printf("%-8s | %-10s %-12s %-10s %-8s %-9s %-9s %-8s\n", "baud",
              "rtt[us]", "comm[us/st]", "overhead", "misses", "IAE",
              "final", "settled");
  bench::print_rule(88);
  const std::uint32_t bauds[] = {9600,   19200,  38400, 57600,
                                 115200, 230400, 460800};
  for (std::uint32_t baud : bauds) {
    core::ServoSystem servo(bench_config());
    const auto pil = servo.run_pil({.baud = baud});
    std::printf("%-8u | %-10.1f %-12.1f %-9.1f%% %-8llu %-9.3f %-9.2f %s\n",
                baud, pil.report.round_trip_us.mean(),
                pil.report.comm_time_per_step_us,
                pil.report.comm_overhead_ratio * 100.0,
                static_cast<unsigned long long>(pil.report.deadline_misses),
                pil.iae, pil.speed.last_value(),
                pil.metrics.settled ? "yes" : "NO");
    const std::string key = "rs232." + std::to_string(baud);
    bench::summarize(key + ".rtt_us", pil.report.round_trip_us.mean());
    bench::summarize(key + ".overhead",
                     pil.report.comm_overhead_ratio);
    bench::summarize(key + ".iae", pil.iae);
  }
  std::printf("\nextension (paper future work): the same exchange over a "
              "synchronous SPI link\n\n");
  std::printf("%-10s | %-10s %-12s %-10s %-8s %-9s\n", "SPI clock",
              "rtt[us]", "comm[us/st]", "overhead", "misses", "IAE");
  bench::print_rule(66);
  for (std::uint32_t clock : {250000u, 1000000u, 4000000u}) {
    core::ServoSystem servo(bench_config());
    core::ServoSystem::PilRunOptions opts;
    opts.baud = clock;
    opts.link = pil::PilSession::LinkKind::kSpi;
    const auto pil = servo.run_pil(opts);
    std::printf("%-10u | %-10.1f %-12.1f %-9.1f%% %-8llu %-9.3f\n", clock,
                pil.report.round_trip_us.mean(),
                pil.report.comm_time_per_step_us,
                pil.report.comm_overhead_ratio * 100.0,
                static_cast<unsigned long long>(pil.report.deadline_misses),
                pil.iae);
    const std::string key = "spi." + std::to_string(clock);
    bench::summarize(key + ".rtt_us", pil.report.round_trip_us.mean());
    bench::summarize(key + ".iae", pil.iae);
  }

  std::printf("\n(controller execution on the board: the same generated "
              "code in every row;\n only the communication budget "
              "changes.)\n\n");
}

void BM_PilExchange115200(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = bench_config();
    cfg.duration_s = 0.2;
    core::ServoSystem servo(cfg);
    auto result = servo.run_pil({.baud = 115200});
    benchmark::DoNotOptimize(result.report.exchanges);
  }
}
BENCHMARK(BM_PilExchange115200)->Unit(benchmark::kMillisecond);

void BM_FrameEncodeDecode(benchmark::State& state) {
  pil::FrameDecoder decoder;
  std::uint64_t decoded = 0;
  decoder.set_callback([&](const pil::Frame&) { ++decoded; });
  pil::Frame frame;
  frame.payload = pil::encode_signals({1.0, 2.0, 3.0, 4.0});
  const auto bytes = pil::encode_frame(frame);
  for (auto _ : state) {
    for (std::uint8_t b : bytes) decoder.feed(b);
  }
  benchmark::DoNotOptimize(decoded);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_SerialLinkThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::World world;
    sim::SerialConfig cfg;
    cfg.baud_rate = 460800;
    sim::SerialLink link(world, cfg);
    std::uint64_t received = 0;
    link.a_to_b().set_receiver(
        [&](std::uint8_t, sim::SimTime) { ++received; });
    for (int i = 0; i < 512; ++i) {
      link.a_to_b().transmit(static_cast<std::uint8_t>(i));
    }
    world.run_for(sim::seconds_i(1));
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_SerialLinkThroughput);

}  // namespace

IECD_BENCH_MAIN(print_table)
