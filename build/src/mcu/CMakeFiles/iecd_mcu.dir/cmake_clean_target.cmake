file(REMOVE_RECURSE
  "libiecd_mcu.a"
)
