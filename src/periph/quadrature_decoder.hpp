/// \file quadrature_decoder.hpp
/// Quadrature decoder peripheral: counts edges of the two phase-shifted
/// encoder signals (4x decoding — every edge of A and B counts) with
/// direction, plus an index-pulse input that can latch or clear the
/// position register.  The case-study feedback path: IRC encoder with 100
/// lines -> 400 counts per revolution.
#pragma once

#include <cstdint>

#include "periph/peripheral.hpp"

namespace iecd::periph {

struct QuadDecConfig {
  bool clear_on_index = false;      ///< reset position at the index pulse
  mcu::IrqVector index_vector = -1; ///< <0: no index interrupt
};

class QuadDecPeripheral : public Peripheral {
 public:
  QuadDecPeripheral(mcu::Mcu& mcu, QuadDecConfig config,
                    std::string name = "qdec");

  const QuadDecConfig& config() const { return config_; }

  /// Feeds a single decoded edge: +1 forward, -1 reverse.  Called by the
  /// encoder model, edge-by-edge in event-accurate mode.
  void edge(int direction);

  /// Feeds a batch of \p delta counts at once (polled coupling mode used
  /// for high edge rates; see plant::IncrementalEncoder).
  void add_counts(std::int32_t delta);

  /// Index (once-per-revolution) pulse.
  void index_pulse();

  /// Signed position register (16-bit wrap-around, like the hardware).
  std::int16_t position() const { return position_; }

  /// Full-resolution software-extended position (no wrap).
  std::int64_t extended_position() const { return extended_; }

  /// Position latched at the last index pulse.
  std::int16_t index_latch() const { return index_latch_; }

  std::uint64_t index_pulses() const { return index_pulses_; }

  void zero();

  void reset() override;

 private:
  QuadDecConfig config_;
  std::int16_t position_ = 0;
  std::int64_t extended_ = 0;
  std::int16_t index_latch_ = 0;
  std::uint64_t index_pulses_ = 0;
};

}  // namespace iecd::periph
