#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "blocks/sources.hpp"
#include "blocks/math_blocks.hpp"
#include "mcu/derivative.hpp"
#include "mcu/mcu.hpp"
#include "model/engine.hpp"
#include "periph/quadrature_decoder.hpp"
#include "plant/dc_motor.hpp"
#include "plant/encoder.hpp"
#include "plant/simple_plants.hpp"
#include "sim/world.hpp"
#include "sim/zoh_signal.hpp"

namespace iecd::plant {
namespace {

double no_load_speed(const DcMotorParams& p, double voltage) {
  // Steady state: i = (u - Ke w)/R, Kt i = b w  =>
  // w = u Kt / (R b + Kt Ke).
  return voltage * p.kt / (p.resistance * p.damping + p.kt * p.ke);
}

TEST(DcMotorBlock, SteadyStateSpeedMatchesClosedForm) {
  model::Model m("motor");
  DcMotorParams params;
  auto& u = m.add<blocks::ConstantBlock>("u", 12.0);
  auto& motor = m.add<DcMotorBlock>("motor", params);
  m.connect(u, 0, motor, 0);
  model::Engine eng(m, {.stop_time = 1.0, .base_period = 1e-4});
  eng.run();
  model::SimContext ctx{1.0, 1e-4, false};
  motor.output(ctx);
  EXPECT_NEAR(motor.out(0).as_double(), no_load_speed(params, 12.0), 0.5);
}

TEST(DcMotorBlock, AngleIsIntegralOfSpeed) {
  model::Model m("motor");
  auto& u = m.add<blocks::ConstantBlock>("u", 12.0);
  auto& motor = m.add<DcMotorBlock>("motor", DcMotorParams{});
  m.connect(u, 0, motor, 0);
  model::Engine eng(m, {.stop_time = 2.0, .base_period = 1e-4});
  eng.run();
  model::SimContext ctx{2.0, 1e-4, false};
  motor.output(ctx);
  const double w_ss = motor.out(0).as_double();
  const double theta = motor.out(1).as_double();
  // After the short transient the angle grows at w_ss; 2 s of mostly
  // steady rotation.
  EXPECT_NEAR(theta, w_ss * 2.0, w_ss * 0.1);
}

TEST(DcMotorBlock, LoadTorqueSlowsTheShaft) {
  model::Model m("motor");
  auto& u = m.add<blocks::ConstantBlock>("u", 12.0);
  auto& motor = m.add<DcMotorBlock>("motor", DcMotorParams{});
  motor.set_load([](double, double) { return 0.01; });  // N m
  m.connect(u, 0, motor, 0);
  model::Engine eng(m, {.stop_time = 1.0, .base_period = 1e-4});
  eng.run();
  model::SimContext ctx{1.0, 1e-4, false};
  motor.output(ctx);
  // Steady-state droop = tau * R / (R b + Kt Ke) ~ 7.9 rad/s here.
  EXPECT_LT(motor.out(0).as_double(),
            no_load_speed(DcMotorParams{}, 12.0) - 5.0);
}

TEST(DcMotorSim, MatchesBlockDynamics) {
  // The event-world integrator and the model block must agree.
  DcMotorParams params;
  sim::World world;
  DcMotorSim sim_motor(world, params);
  sim::ZohSignal duty(0.5);
  sim_motor.drive_from_duty(&duty);

  model::Model m("ref");
  auto& u = m.add<blocks::ConstantBlock>("u", 0.5 * params.supply_voltage);
  auto& block_motor = m.add<DcMotorBlock>("motor", params);
  m.connect(u, 0, block_motor, 0);
  model::Engine eng(m, {.stop_time = 0.2, .base_period = 1e-4});
  eng.run();
  model::SimContext ctx{0.2, 1e-4, false};
  block_motor.output(ctx);

  const double ref_speed = block_motor.out(0).as_double();
  EXPECT_NEAR(sim_motor.speed_at(sim::milliseconds(200)), ref_speed,
              std::abs(ref_speed) * 0.01);
}

TEST(DcMotorSim, RespondsToDutyChanges) {
  sim::World world;
  DcMotorSim motor(world, DcMotorParams{});
  sim::ZohSignal duty(0.0);
  motor.drive_from_duty(&duty);
  EXPECT_NEAR(motor.speed_at(sim::milliseconds(100)), 0.0, 1e-9);
  duty.set(sim::milliseconds(100), 1.0);
  const double w = motor.speed_at(sim::milliseconds(400));
  EXPECT_GT(w, 100.0);
}

TEST(DcMotorSim, DirectionSourceFlipsSign) {
  sim::World world;
  DcMotorSim motor(world, DcMotorParams{});
  sim::ZohSignal duty(0.6);
  motor.drive_from_duty(&duty);
  motor.set_direction_source([] { return -1.0; });
  EXPECT_LT(motor.speed_at(sim::milliseconds(300)), -50.0);
}

TEST(Encoder, CountsMatchRevolutions) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::QuadDecPeripheral qdec(mcu, periph::QuadDecConfig{});
  DcMotorSim motor(world, DcMotorParams{});
  sim::ZohSignal duty(0.5);
  motor.drive_from_duty(&duty);
  IncrementalEncoder encoder(world, motor, qdec,
                             {100, sim::microseconds(50)});
  encoder.start();
  world.run_for(sim::seconds_i(1));
  const double revs = motor.angle() / (2.0 * std::numbers::pi);
  EXPECT_GT(revs, 5.0);
  EXPECT_NEAR(static_cast<double>(qdec.extended_position()), revs * 400.0,
              2.0);
  EXPECT_EQ(qdec.index_pulses(), static_cast<std::uint64_t>(revs));
}

TEST(Encoder, TracksReversal) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::QuadDecPeripheral qdec(mcu, periph::QuadDecConfig{});
  DcMotorSim motor(world, DcMotorParams{});
  sim::ZohSignal duty(0.5);
  motor.drive_from_duty(&duty);
  double dir = 1.0;
  motor.set_direction_source([&dir] { return dir; });
  IncrementalEncoder encoder(world, motor, qdec,
                             {100, sim::microseconds(50)});
  encoder.start();
  world.run_for(sim::milliseconds(500));
  const auto fwd = qdec.extended_position();
  dir = -1.0;
  world.run_for(sim::seconds_i(2));
  EXPECT_LT(qdec.extended_position(), fwd);
}

TEST(WaterTank, FillsTowardEquilibrium) {
  model::Model m("tank");
  auto& u = m.add<blocks::ConstantBlock>("valve", 0.5);
  WaterTankBlock::Params params;
  params.outlet_area = 4.0e-4;  // equilibrium ~1.27 m, inside the tank
  auto& tank = m.add<WaterTankBlock>("tank", params);
  m.connect(u, 0, tank, 0);
  model::Engine eng(m, {.stop_time = 4000.0, .base_period = 0.1});
  eng.run();
  model::SimContext ctx{4000.0, 0.1, false};
  tank.output(ctx);
  // Equilibrium: inflow = outflow -> h = (q / (a sqrt(2g)))^2.
  const double q = params.inflow_gain * 0.5;
  const double h_eq =
      std::pow(q / (params.outlet_area * std::sqrt(2 * 9.81)), 2.0);
  EXPECT_NEAR(tank.out(0).as_double(), h_eq, h_eq * 0.02);
}

TEST(WaterTank, NeverOverflowsOrGoesNegative) {
  model::Model m("tank");
  auto& u = m.add<blocks::ConstantBlock>("valve", 1.0);
  WaterTankBlock::Params params;
  params.outlet_area = 1e-6;  // nearly plugged: must clamp at the brim
  auto& tank = m.add<WaterTankBlock>("tank", params);
  m.connect(u, 0, tank, 0);
  model::Engine eng(m, {.stop_time = 1200.0, .base_period = 0.05});
  eng.run();
  model::SimContext ctx{1200.0, 0.05, false};
  tank.output(ctx);
  EXPECT_LE(tank.out(0).as_double(), params.max_level + 1e-9);
}

TEST(ThermalPlant, HeatsToStaticGain) {
  model::Model m("thermal");
  auto& u = m.add<blocks::ConstantBlock>("heater", 0.5);
  ThermalPlantBlock::Params params;
  auto& plant = m.add<ThermalPlantBlock>("p", params);
  m.connect(u, 0, plant, 0);
  // tau = C * R = 300 s; run 5 tau.
  model::Engine eng(m, {.stop_time = 1500.0, .base_period = 0.1});
  eng.run();
  model::SimContext ctx{1500.0, 0.1, false};
  plant.output(ctx);
  const double t_eq =
      params.ambient + params.heater_power * 0.5 * params.thermal_resistance;
  EXPECT_NEAR(plant.out(0).as_double(), t_eq, 0.5);
}

}  // namespace
}  // namespace iecd::plant
