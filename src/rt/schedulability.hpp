/// \file schedulability.hpp
/// Static response-time analysis for the generated task set.  The paper
/// positions PIL as the way to learn "whether the computation power of the
/// processor is sufficient and whether the scheduling parameters are
/// chosen properly"; this module answers the same question analytically so
/// the two can be cross-checked (EXPERIMENTS cross-validates the bound
/// against observed HIL response times).
///
/// Task model: the execution infrastructure is non-preemptive fixed
/// priority (one ISR at a time, pending interrupts served by priority).
/// Classic non-preemptive response-time analysis applies:
///   R_i = B_i + C_i + sum_{j in hp(i)} ceil((R_i - C_i) / T_j) * C_j
/// with blocking B_i = max execution of any lower-priority task (it may
/// have just started when i is released).  Deadlines are implicit
/// (= period / minimal interarrival).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "codegen/generated_app.hpp"
#include "mcu/derivative.hpp"

namespace iecd::rt {

struct AnalyzedTask {
  std::string name;
  int priority = 0;          ///< lower value = served first
  double period_s = 0.0;     ///< period / min interarrival (0 = unknown)
  double wcet_s = 0.0;       ///< execution incl. ISR entry/exit
  double response_bound_s = 0.0;  ///< worst-case response (0 if unbounded)
  bool bounded = false;
  bool deadline_met = false;  ///< response <= period (when period known)
};

struct SchedulabilityReport {
  double utilisation = 0.0;  ///< of the tasks with known periods
  bool schedulable = false;  ///< all known-deadline tasks bounded and met
  std::vector<AnalyzedTask> tasks;

  std::string to_string() const;
};

/// Analyzes \p app on \p cpu.  Periodic tasks take their period from the
/// task spec; event tasks take a minimal interarrival from
/// \p event_interarrival_s (keyed by task name) — absent entries make the
/// task sporadic-unknown: its own response is bounded, but it is excluded
/// from interference on others (optimistic; pass real rates for guarantees).
/// Priorities: the periodic model step gets the timer's priority (highest
/// by default), event tasks follow in declaration order after it.
SchedulabilityReport analyze_schedulability(
    const codegen::GeneratedApplication& app, const mcu::DerivativeSpec& cpu,
    const std::map<std::string, double>& event_interarrival_s = {});

}  // namespace iecd::rt
