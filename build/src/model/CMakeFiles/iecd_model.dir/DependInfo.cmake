
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/block.cpp" "src/model/CMakeFiles/iecd_model.dir/block.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/block.cpp.o.d"
  "/root/repo/src/model/engine.cpp" "src/model/CMakeFiles/iecd_model.dir/engine.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/engine.cpp.o.d"
  "/root/repo/src/model/logging.cpp" "src/model/CMakeFiles/iecd_model.dir/logging.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/logging.cpp.o.d"
  "/root/repo/src/model/metrics.cpp" "src/model/CMakeFiles/iecd_model.dir/metrics.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/metrics.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/iecd_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/model.cpp.o.d"
  "/root/repo/src/model/statechart.cpp" "src/model/CMakeFiles/iecd_model.dir/statechart.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/statechart.cpp.o.d"
  "/root/repo/src/model/subsystem.cpp" "src/model/CMakeFiles/iecd_model.dir/subsystem.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/subsystem.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/model/CMakeFiles/iecd_model.dir/value.cpp.o" "gcc" "src/model/CMakeFiles/iecd_model.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fixpt/CMakeFiles/iecd_fixpt.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
