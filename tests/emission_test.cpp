// Tests for the C emission details: output/update phase split, event-task
// functions, state-chart FSM skeletons, and custom user hooks in the
// generation pipeline.
#include <gtest/gtest.h>

#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "codegen/generator.hpp"
#include "core/case_study.hpp"
#include "core/model_sync.hpp"
#include "model/statechart.hpp"

namespace iecd::codegen {
namespace {

TEST(EmissionPhases, UpdateStatementsFollowAllOutputs) {
  core::ServoConfig cfg;
  core::ServoSystem servo(cfg);
  servo.validate();
  Generator gen;
  auto app = gen.generate(servo.controller(), servo.project(),
                          {.app_name = "servo"});
  const std::string& step = app.sources.at("servo.c");
  // The delay's state update must come after the diff that consumes the
  // delayed value.
  const auto update_pos = step.find("UnitDelay prev_cnt (update)");
  const auto consumer_pos = step.find("cnt_diff (S-Function)");
  ASSERT_NE(update_pos, std::string::npos);
  ASSERT_NE(consumer_pos, std::string::npos);
  EXPECT_GT(update_pos, consumer_pos);
}

TEST(EmissionPhases, EventTaskFunctionEmitted) {
  core::ServoConfig cfg;
  core::ServoSystem servo(cfg);
  servo.validate();
  Generator gen;
  auto app = gen.generate(servo.controller(), servo.project(),
                          {.app_name = "servo"});
  const std::string& step = app.sources.at("servo.c");
  EXPECT_NE(step.find("void SpUp_task(void)"), std::string::npos);
  // Inside the task: accumulate-then-update ordering.
  const auto add_pos = step.find("rtb_SpUp_add = rtb_SpUp_inc");
  const auto upd_pos = step.find("rtDW_SpUp_acc_state = rtb_SpUp_add");
  ASSERT_NE(add_pos, std::string::npos);
  ASSERT_NE(upd_pos, std::string::npos);
  EXPECT_GT(upd_pos, add_pos);
  // Output latch for the value the periodic code reads.
  EXPECT_NE(step.find("rtb_SpUp = rtb_SpUp_acc"), std::string::npos);
}

TEST(EmissionPhases, UnitDelaySplitEmitters) {
  blocks::UnitDelayBlock z("z1", 0.0);
  model::EmitContext ctx;
  ctx.inputs = {"rtb_u"};
  ctx.outputs = {"rtb_z1"};
  ctx.state_prefix = "rtDW_z1_";
  const std::string out = z.emit_c(ctx);
  const std::string upd = z.emit_c_update(ctx);
  EXPECT_NE(out.find("rtb_z1 = rtDW_z1_state"), std::string::npos);
  EXPECT_EQ(out.find("rtDW_z1_state ="), std::string::npos);
  EXPECT_NE(upd.find("rtDW_z1_state = rtb_u"), std::string::npos);
}

TEST(EmissionPhases, StatelessBlocksHaveNoUpdate) {
  blocks::GainBlock g("g", 2.0);
  model::EmitContext ctx;
  ctx.inputs = {"a"};
  ctx.outputs = {"b"};
  EXPECT_TRUE(g.emit_c_update(ctx).empty());
}

TEST(StateChartEmission, SwitchSkeletonWithTransitions) {
  model::Model m("host");
  auto& chart = m.add<model::StateChart>("modes", 1, 1);
  chart.add_state("automatic");
  chart.add_state("manual");
  chart.add_transition("automatic", "manual",
                       [](const model::StateChart::ChartContext& c) {
                         return c.in(0) > 0.5;
                       });
  model::EmitContext ctx;
  ctx.inputs = {"rtb_key"};
  ctx.outputs = {"rtb_mode"};
  ctx.state_prefix = "rtDW_modes_";
  const std::string code = chart.emit_c(ctx);
  EXPECT_NE(code.find("switch (rtDW_modes_state)"), std::string::npos);
  EXPECT_NE(code.find("/* automatic */"), std::string::npos);
  EXPECT_NE(code.find("/* manual */"), std::string::npos);
  EXPECT_NE(code.find("modes_guard_0()"), std::string::npos);
  EXPECT_NE(code.find("-> manual"), std::string::npos);
}

// Custom user hook: the paper's "several points in this process, where
// user defined hooks can be called".
class BannerHook : public RtwHook {
 public:
  const char* name() const override { return "banner"; }
  void before_generate(GenContext& ctx) override {
    ctx.diagnostics.info("hooks.banner", "before_generate ran");
    before_ran = true;
  }
  void after_generate(GenContext& ctx, GeneratedApplication& app) override {
    (void)ctx;
    for (auto& [file, text] : app.sources) {
      text.insert(0, "/* built by the banner hook */\n");
    }
    after_ran = true;
  }
  bool before_ran = false;
  bool after_ran = false;
};

TEST(CustomHooks, RunInOrderAndCanPatchSources) {
  core::ServoConfig cfg;
  core::ServoSystem servo(cfg);
  servo.validate();
  Generator gen;
  auto hook = std::make_unique<BannerHook>();
  BannerHook* raw = hook.get();
  gen.add_hook(std::move(hook));
  util::DiagnosticList diags;
  auto app = gen.generate(servo.controller(), servo.project(),
                          {.app_name = "servo"}, &diags);
  EXPECT_TRUE(raw->before_ran);
  EXPECT_TRUE(raw->after_ran);
  EXPECT_NE(diags.to_string().find("before_generate ran"),
            std::string::npos);
  EXPECT_EQ(app.sources.at("servo.c").rfind("/* built by the banner hook */",
                                            0),
            0u);
}

}  // namespace
}  // namespace iecd::codegen
