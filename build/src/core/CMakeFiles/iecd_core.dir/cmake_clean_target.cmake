file(REMOVE_RECURSE
  "libiecd_core.a"
)
