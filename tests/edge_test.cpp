// Edge cases and error paths across module boundaries.
#include <gtest/gtest.h>

#include "beans/autosar.hpp"
#include "beans/timer_int_bean.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "codegen/generator.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "mcu/derivative.hpp"
#include "model/engine.hpp"
#include "model/subsystem.hpp"

namespace iecd {
namespace {

TEST(SubsystemEdge, BindPortsMismatchRejected) {
  model::Model top("t");
  auto& sub = top.add<model::Subsystem>("s", 2, 1);
  auto& in0 = sub.inner().add<model::Inport>("in0");
  auto& out0 = sub.inner().add<model::Outport>("out0");
  EXPECT_THROW(sub.bind_ports({&in0}, {&out0}), std::invalid_argument);
}

TEST(SubsystemEdge, UnboundPortsCaughtAtInitialize) {
  model::Model top("t");
  [[maybe_unused]] auto& sub = top.add<model::Subsystem>("s", 1, 1);
  model::Engine eng(top, {.stop_time = 0.01});
  EXPECT_THROW(eng.initialize(), std::logic_error);
}

TEST(SubsystemEdge, TwoLevelNestingExecutes) {
  // outer(inner(gain*2)) * 3 == 6x.
  model::Model top("t");
  auto& outer = top.add<model::Subsystem>("outer", 1, 1);
  auto& o_in = outer.inner().add<model::Inport>("in");
  auto& o_out = outer.inner().add<model::Outport>("out");
  auto& o_gain = outer.inner().add<blocks::GainBlock>("g3", 3.0);
  auto& nested = outer.inner().add<model::Subsystem>("nested", 1, 1);
  auto& n_in = nested.inner().add<model::Inport>("in");
  auto& n_out = nested.inner().add<model::Outport>("out");
  auto& n_gain = nested.inner().add<blocks::GainBlock>("g2", 2.0);
  nested.inner().connect(n_in, 0, n_gain, 0);
  nested.inner().connect(n_gain, 0, n_out, 0);
  nested.bind_ports({&n_in}, {&n_out});
  outer.inner().connect(o_in, 0, nested, 0);
  outer.inner().connect(nested, 0, o_gain, 0);
  outer.inner().connect(o_gain, 0, o_out, 0);
  outer.bind_ports({&o_in}, {&o_out});

  auto& c = top.add<blocks::ConstantBlock>("c", 5.0);
  auto& scope = top.add<blocks::ScopeBlock>("scope");
  top.connect(c, 0, outer, 0);
  top.connect(outer, 0, scope, 0);
  model::Engine eng(top, {.stop_time = 0.005});
  eng.run();
  EXPECT_DOUBLE_EQ(scope.log().last_value(), 30.0);
}

TEST(EngineEdge, EmptyModelRuns) {
  model::Model m("empty");
  model::Engine eng(m, {.stop_time = 0.01});
  eng.run();
  EXPECT_NEAR(eng.time(), 0.01, 1e-12);
}

TEST(EngineEdge, ReinitializeResetsState) {
  model::Model m("t");
  auto& c = m.add<blocks::ConstantBlock>("c", 1.0);
  auto& i = m.add<blocks::DiscreteIntegratorBlock>("i", 1.0);
  i.set_sample_time(model::SampleTime::discrete(0.001));
  m.connect(c, 0, i, 0);
  model::Engine eng(m, {.stop_time = 0.1});
  eng.run();
  const double first = i.out(0).as_double();
  EXPECT_GT(first, 0.05);
  model::Engine eng2(m, {.stop_time = 0.1});
  eng2.initialize();
  EXPECT_DOUBLE_EQ(i.out(0).as_double(), 0.0);  // state reset
  eng2.run();
  EXPECT_DOUBLE_EQ(i.out(0).as_double(), first);  // and reproducible
}

TEST(GeneratorEdge, ControllerWithoutIoStillGenerates) {
  model::Model top("t");
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.01));
  auto& c = sub.inner().add<blocks::ConstantBlock>("c", 1.0);
  auto& g = sub.inner().add<blocks::GainBlock>("g", 2.0);
  sub.inner().connect(c, 0, g, 0);
  sub.bind_ports({}, {});
  beans::BeanProject project("p");
  project.add<beans::TimerIntBean>("TI1");
  project.validate();
  codegen::Generator gen;
  auto app = gen.generate(sub, project, {});
  EXPECT_EQ(app.tasks.size(), 1u);
  EXPECT_TRUE(app.sources.count("model.c"));
}

TEST(GeneratorEdge, RemovedPeBlockDisappearsFromNextBuild) {
  model::Model top("t");
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.001));
  beans::BeanProject project("p");
  core::ModelSync sync(sub.inner(), project);
  sync.add_timer_int("TI1");
  auto& pwm = sync.add_pwm("PWM1");
  auto& src = sub.inner().add<blocks::ConstantBlock>("c", 0.5);
  sub.inner().connect(src, 0, pwm, 0);
  sub.bind_ports({}, {});
  project.validate();
  codegen::Generator gen;
  auto app1 = gen.generate(sub, project, {});
  EXPECT_NE(app1.sources.at("model.c").find("PWM1_SetRatio16"),
            std::string::npos);
  // Erase the block from the model; the sync removes the bean too.
  ASSERT_TRUE(sync.remove_pe_block("PWM1"));
  project.validate();
  codegen::Generator gen2;
  auto app2 = gen2.generate(sub, project, {});
  EXPECT_EQ(app2.sources.at("model.c").find("PWM1_SetRatio16"),
            std::string::npos);
  EXPECT_FALSE(app2.sources.count("PWM1.h"));
}

TEST(GeneratorEdge, AutosarFixedPointCombination) {
  model::Model top("t");
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.001));
  beans::BeanProject project("p");
  core::ModelSync sync(sub.inner(), project);
  sync.add_timer_int("TI1");
  auto& qd = sync.add_quad_dec("QD1");
  auto& pwm = sync.add_pwm("PWM1");
  auto& g = sub.inner().add<blocks::GainBlock>("g", 1e-4);
  sub.inner().connect(qd, 0, g, 0);
  sub.inner().connect(g, 0, pwm, 0);
  sub.bind_ports({}, {});
  project.validate();
  codegen::GeneratorOptions opts;
  opts.fixed_point = true;
  opts.api = beans::DriverApi::kAutosar;
  codegen::Generator gen;
  auto app = gen.generate(sub, project, opts);
  const std::string& step = app.sources.at("model.c");
  EXPECT_NE(step.find("sat16"), std::string::npos);  // fixed-point helpers
  EXPECT_NE(step.find("Pwm_SetDutyCycle"), std::string::npos);  // MCAL API
  EXPECT_TRUE(app.fixed_point);
}

TEST(ModelSyncEdge, RenameCollisionRejected) {
  model::Model m("ctrl");
  beans::BeanProject project("p");
  core::ModelSync sync(m, project);
  sync.add_pwm("PWM1");
  sync.add_pwm("PWM2");
  EXPECT_THROW(sync.rename_pe_block("PWM1", "PWM2"), std::invalid_argument);
}

TEST(PeBlockEdge, FidelityToggleSwitchesOutputType) {
  beans::BeanProject project("p");
  auto& bean = project.add<beans::QuadDecBean>("QD1");
  core::QuadDecPeBlock block("QD1_blk", bean);
  EXPECT_EQ(block.output_type(0), model::DataType::kInt16);
  block.set_hw_fidelity(false);
  EXPECT_EQ(block.output_type(0), model::DataType::kDouble);
  block.set_hw_fidelity(true);
  EXPECT_EQ(block.output_type(0), model::DataType::kInt16);
}

TEST(WorldEdge, ResetRestoresPeripheralState) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::PwmPeripheral pwm(mcu, periph::PwmConfig{});
  pwm.set_duty_ratio(0.7);
  pwm.start();
  world.run_for(sim::milliseconds(2));
  EXPECT_GT(pwm.periods_elapsed(), 0u);
  world.reset_components();  // resets the MCU, which resets peripherals
  EXPECT_EQ(pwm.periods_elapsed(), 0u);
  EXPECT_FALSE(pwm.running());
  EXPECT_DOUBLE_EQ(pwm.duty_ratio(), 0.0);
}

}  // namespace
}  // namespace iecd
