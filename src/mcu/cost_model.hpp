/// \file cost_model.hpp
/// Per-CPU instruction cost model.  Generated block code is not interpreted
/// instruction-by-instruction; instead each block step declares how many
/// elementary operations of each class it performs, and the active CPU
/// bean's cost model prices them in core cycles.  This is the same
/// abstraction level TrueTime (cited by the paper as the simulation-based
/// alternative) uses for execution-time modelling.
#pragma once

#include <cstdint>

namespace iecd::mcu {

/// Elementary operation counts for one block step (or one ISR body).
struct OpCounts {
  std::uint32_t alu16 = 0;    ///< 16-bit add/sub/logic/compare/shift
  std::uint32_t mul16 = 0;    ///< 16x16 multiply
  std::uint32_t div16 = 0;    ///< 16-bit divide
  std::uint32_t alu32 = 0;    ///< 32-bit add/sub/logic (multi-word on 16-bit)
  std::uint32_t mul32 = 0;    ///< 32x32 multiply
  std::uint32_t div32 = 0;    ///< 32-bit divide
  std::uint32_t fadd = 0;     ///< floating add/sub (sw-emulated if no FPU)
  std::uint32_t fmul = 0;     ///< floating multiply
  std::uint32_t fdiv = 0;     ///< floating divide
  std::uint32_t mem = 0;      ///< load/store pairs
  std::uint32_t branch = 0;   ///< taken branches / calls

  OpCounts& operator+=(const OpCounts& o);
  OpCounts operator*(std::uint32_t n) const;
};

/// Cycle prices for one CPU derivative.
struct CostModel {
  std::uint32_t alu16 = 1;
  std::uint32_t mul16 = 1;
  std::uint32_t div16 = 16;
  std::uint32_t alu32 = 2;
  std::uint32_t mul32 = 4;
  std::uint32_t div32 = 34;
  std::uint32_t fadd = 120;   ///< software double add on a no-FPU part
  std::uint32_t fmul = 160;
  std::uint32_t fdiv = 420;
  std::uint32_t mem = 2;
  std::uint32_t branch = 3;
  std::uint32_t isr_entry = 14;  ///< vector fetch + context save
  std::uint32_t isr_exit = 10;   ///< context restore + RTI
  std::uint32_t task_dispatch = 8;  ///< kernel dispatch bookkeeping

  std::uint64_t cycles(const OpCounts& ops) const;
};

}  // namespace iecd::mcu
