#include "obs/flight_recorder.hpp"

#include <utility>

namespace iecd::obs {

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config config) : config_(config) {}

void FlightRecorder::trigger(const std::string& name, sim::SimTime time,
                             const std::string& detail) {
  capture(name, time, detail);
}

void FlightRecorder::add_trigger(const std::string& name,
                                 std::function<bool()> predicate) {
  Polled p;
  p.name = name;
  p.predicate = std::move(predicate);
  polled_.push_back(std::move(p));
}

void FlightRecorder::add_counter_trigger(
    const std::string& name, std::function<std::uint64_t()> counter) {
  Polled p;
  p.name = name;
  p.counter = std::move(counter);
  // Latch the current value: pre-existing counts are not anomalies of this
  // run's window.
  p.last = p.counter ? p.counter() : 0;
  polled_.push_back(std::move(p));
}

void FlightRecorder::poll(sim::SimTime now) {
  for (auto& p : polled_) {
    if (p.counter) {
      const std::uint64_t value = p.counter();
      if (value > p.last) {
        capture(p.name, now, "+" + std::to_string(value - p.last));
        p.last = value;
      }
    } else if (p.predicate && p.predicate()) {
      capture(p.name, now, {});
    }
  }
}

void FlightRecorder::set_state_provider(
    std::function<void(std::vector<std::string>&)> provider) {
  state_provider_ = std::move(provider);
}

void FlightRecorder::reset() {
  dumps_.clear();
  trigger_counts_.clear();
  triggers_total_ = 0;
  suppressed_ = 0;
  for (auto& p : polled_) p.last = p.counter ? p.counter() : 0;
}

void FlightRecorder::capture(const std::string& name, sim::SimTime time,
                             const std::string& detail) {
  ++trigger_counts_[name];
  ++triggers_total_;
  if (dumps_.size() >= config_.max_dumps) {
    ++suppressed_;
    return;
  }

  Dump dump;
  dump.trigger = name;
  dump.detail = detail;
  dump.time = time;
  dump.ordinal = triggers_total_;

  // Trailing window of the active trace ring, names resolved to strings so
  // the dump survives the recorder (and its interning table) being cleared.
  if (const trace::TraceRecorder* rec = trace::recorder()) {
    const std::size_t live = rec->size();
    const std::size_t skip =
        live > config_.trail_depth ? live - config_.trail_depth : 0;
    dump.events.reserve(live - skip);
    std::size_t i = 0;
    rec->for_each([&](const trace::Event& ev) {
      if (i++ < skip) return;
      DumpEvent de;
      de.type = ev.type;
      de.category = rec->string_at(ev.category);
      de.name = rec->string_at(ev.name);
      de.track = rec->string_at(ev.track);
      de.time = ev.time;
      de.duration = ev.duration;
      de.seq = ev.seq;
      de.value = ev.value;
      dump.events.push_back(std::move(de));
    });
  }

  if (state_provider_) state_provider_(dump.monitor_state);
  dumps_.push_back(std::move(dump));
}

}  // namespace iecd::obs
