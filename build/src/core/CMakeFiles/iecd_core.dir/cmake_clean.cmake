file(REMOVE_RECURSE
  "CMakeFiles/iecd_core.dir/case_study.cpp.o"
  "CMakeFiles/iecd_core.dir/case_study.cpp.o.d"
  "CMakeFiles/iecd_core.dir/distributed.cpp.o"
  "CMakeFiles/iecd_core.dir/distributed.cpp.o.d"
  "CMakeFiles/iecd_core.dir/model_sync.cpp.o"
  "CMakeFiles/iecd_core.dir/model_sync.cpp.o.d"
  "CMakeFiles/iecd_core.dir/pe_blocks.cpp.o"
  "CMakeFiles/iecd_core.dir/pe_blocks.cpp.o.d"
  "CMakeFiles/iecd_core.dir/peert.cpp.o"
  "CMakeFiles/iecd_core.dir/peert.cpp.o.d"
  "libiecd_core.a"
  "libiecd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
