
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/case_study.cpp" "src/core/CMakeFiles/iecd_core.dir/case_study.cpp.o" "gcc" "src/core/CMakeFiles/iecd_core.dir/case_study.cpp.o.d"
  "/root/repo/src/core/distributed.cpp" "src/core/CMakeFiles/iecd_core.dir/distributed.cpp.o" "gcc" "src/core/CMakeFiles/iecd_core.dir/distributed.cpp.o.d"
  "/root/repo/src/core/model_sync.cpp" "src/core/CMakeFiles/iecd_core.dir/model_sync.cpp.o" "gcc" "src/core/CMakeFiles/iecd_core.dir/model_sync.cpp.o.d"
  "/root/repo/src/core/pe_blocks.cpp" "src/core/CMakeFiles/iecd_core.dir/pe_blocks.cpp.o" "gcc" "src/core/CMakeFiles/iecd_core.dir/pe_blocks.cpp.o.d"
  "/root/repo/src/core/peert.cpp" "src/core/CMakeFiles/iecd_core.dir/peert.cpp.o" "gcc" "src/core/CMakeFiles/iecd_core.dir/peert.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/iecd_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/iecd_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/pil/CMakeFiles/iecd_pil.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/iecd_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/blocks/CMakeFiles/iecd_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/beans/CMakeFiles/iecd_beans.dir/DependInfo.cmake"
  "/root/repo/build/src/periph/CMakeFiles/iecd_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/iecd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/iecd_fixpt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
