file(REMOVE_RECURSE
  "libiecd_periph.a"
)
