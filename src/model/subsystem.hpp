/// \file subsystem.hpp
/// Hierarchical composition: a Subsystem is a block containing a nested
/// model with Inport/Outport boundary blocks.  The paper's "single model
/// approach" builds on exactly two of these — the plant subsystem and the
/// controller subsystem in a closed loop — with code generated for the
/// controller subsystem only.  Function-call subsystems are not scheduled
/// periodically: a bean event (interrupt) or chart transition triggers each
/// execution, giving the event-driven part of the application.
#pragma once

#include <functional>
#include <memory>

#include "model/block.hpp"
#include "model/model.hpp"

namespace iecd::model {

/// Boundary block: presents a subsystem input inside the nested model.
class Inport : public Block {
 public:
  explicit Inport(std::string name) : Block(std::move(name), 0, 1) {}
  const char* type_name() const override { return "Inport"; }
  void output(const SimContext&) override {}  // value injected by the parent
  void inject(const Value& v) { set_out_value(0, v); }
};

/// Boundary block: exposes a value as a subsystem output.
class Outport : public Block {
 public:
  explicit Outport(std::string name) : Block(std::move(name), 1, 1) {}
  const char* type_name() const override { return "Outport"; }
  void output(const SimContext&) override { set_out_value(0, in_value(0)); }
};

/// An atomic subsystem: executes its whole interior when the parent engine
/// executes it.  Interior blocks run at the subsystem's resolved rate.
class Subsystem : public Block {
 public:
  Subsystem(std::string name, int inputs, int outputs);

  const char* type_name() const override { return "SubSystem"; }

  Model& inner() { return inner_; }
  const Model& inner() const { return inner_; }

  /// Subsystems conservatively report direct feedthrough; a purely dynamic
  /// interior (e.g. a plant whose outputs come from states only) may clear
  /// this to break the apparent loop in the closed-loop top model.
  void set_direct_feedthrough(bool feedthrough) {
    feedthrough_ = feedthrough;
  }
  bool has_direct_feedthrough() const override { return feedthrough_; }

  /// Declares which interior blocks are the boundary ports, in port order.
  /// Must be called once the interior is fully built.
  void bind_ports(std::vector<Inport*> inports, std::vector<Outport*> outports);

  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;

  // Continuous states aggregate over the interior.
  int continuous_state_count() const override;
  void read_states(std::span<double> into) const override;
  void write_states(std::span<const double> from) override;
  void derivatives(const SimContext& ctx, std::span<double> dx) const override;

  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::uint32_t state_bytes() const override;

 protected:
  void run_outputs(const SimContext& ctx);

  Model inner_;
  std::vector<Inport*> inports_;
  std::vector<Outport*> outports_;
  bool ports_bound_ = false;
  bool feedthrough_ = true;
};

/// A subsystem executed only when explicitly triggered (by a bean event in
/// the generated application, or by the simulated event source in MIL).
class FunctionCallSubsystem : public Subsystem {
 public:
  FunctionCallSubsystem(std::string name, int inputs, int outputs);

  const char* type_name() const override { return "FunctionCallSubSystem"; }

  /// Periodic execution does nothing; only trigger() runs the interior.
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override { (void)ctx; }

  /// Executes one activation (outputs + updates of the interior).
  void trigger(const SimContext& ctx);

  std::uint64_t activations() const { return activations_; }

 private:
  std::uint64_t activations_ = 0;
};

/// An output event port: blocks that raise events (PE interrupt blocks,
/// charts) hold one of these per event; wiring a FunctionCallSubsystem to
/// it makes the event drive that subsystem.
class EventSource {
 public:
  void attach(FunctionCallSubsystem& subsystem);
  void attach(std::function<void(const SimContext&)> listener);
  void fire(const SimContext& ctx);
  std::size_t listener_count() const { return listeners_.size(); }

 private:
  std::vector<std::function<void(const SimContext&)>> listeners_;
};

}  // namespace iecd::model
