# Empty dependencies file for iecd_mcu.
# This may be replaced when dependencies are built.
