/// \file free_cntr_bean.hpp
/// Free-running counter bean — the timestamp source the PIL profiling
/// instrumentation reads to measure execution times on the target.
#pragma once

#include "beans/bean.hpp"

namespace iecd::beans {

class FreeCntrBean : public Bean {
 public:
  explicit FreeCntrBean(std::string name = "FC1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  /// Microseconds since counter reset (32-bit wrap like the hardware).
  std::uint32_t GetTimeUS() const;
  void Reset();

 private:
  mcu::Mcu* mcu_ = nullptr;
  sim::SimTime epoch_ = 0;
};

}  // namespace iecd::beans
