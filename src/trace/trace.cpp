#include "trace/trace.hpp"

#include <stdexcept>

namespace iecd::trace {

TraceRecorder* TraceRecorder::active_ = nullptr;

TraceRecorder::TraceRecorder(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRecorder: capacity must be > 0");
  }
  ring_.resize(capacity);
  // Id 0 is the empty string so a zero-initialized Event resolves cleanly.
  strings_.emplace_back();
  ids_.emplace(std::string(), 0);
}

NameId TraceRecorder::intern(std::string_view s) {
  const auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<NameId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

void TraceRecorder::push(EventType type, std::string_view category,
                         std::string_view name, std::string_view track,
                         sim::SimTime t, sim::SimTime duration, double value) {
  Event& e = ring_[head_];
  e.type = type;
  e.category = intern(category);
  e.name = intern(name);
  e.track = intern(track);
  e.time = t;
  e.duration = duration;
  e.seq = seq_++;
  e.value = value;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) ++size_;
}

void TraceRecorder::span_begin(std::string_view category,
                               std::string_view name, std::string_view track,
                               sim::SimTime t, double value) {
  push(EventType::kSpanBegin, category, name, track, t, 0, value);
}

void TraceRecorder::span_end(std::string_view category, std::string_view name,
                             std::string_view track, sim::SimTime t,
                             double value) {
  push(EventType::kSpanEnd, category, name, track, t, 0, value);
}

void TraceRecorder::span_complete(std::string_view category,
                                  std::string_view name,
                                  std::string_view track, sim::SimTime begin,
                                  sim::SimTime end, double value) {
  push(EventType::kSpanComplete, category, name, track, begin, end - begin,
       value);
}

void TraceRecorder::counter(std::string_view category, std::string_view name,
                            std::string_view track, sim::SimTime t,
                            double value) {
  push(EventType::kCounter, category, name, track, t, 0, value);
}

void TraceRecorder::instant(std::string_view category, std::string_view name,
                            std::string_view track, sim::SimTime t,
                            double value) {
  push(EventType::kInstant, category, name, track, t, 0, value);
}

std::vector<Event> TraceRecorder::snapshot() const {
  std::vector<Event> out;
  out.reserve(size_);
  for_each([&out](const Event& e) { out.push_back(e); });
  return out;
}

void TraceRecorder::clear() {
  head_ = 0;
  size_ = 0;
  seq_ = 0;
  strings_.clear();
  ids_.clear();
  strings_.emplace_back();
  ids_.emplace(std::string(), 0);
}

}  // namespace iecd::trace
