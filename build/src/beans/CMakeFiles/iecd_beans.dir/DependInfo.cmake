
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beans/adc_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/adc_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/adc_bean.cpp.o.d"
  "/root/repo/src/beans/autosar.cpp" "src/beans/CMakeFiles/iecd_beans.dir/autosar.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/autosar.cpp.o.d"
  "/root/repo/src/beans/bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/bean.cpp.o.d"
  "/root/repo/src/beans/bean_project.cpp" "src/beans/CMakeFiles/iecd_beans.dir/bean_project.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/bean_project.cpp.o.d"
  "/root/repo/src/beans/bit_io_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/bit_io_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/bit_io_bean.cpp.o.d"
  "/root/repo/src/beans/can_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/can_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/can_bean.cpp.o.d"
  "/root/repo/src/beans/capture_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/capture_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/capture_bean.cpp.o.d"
  "/root/repo/src/beans/cpu_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/cpu_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/cpu_bean.cpp.o.d"
  "/root/repo/src/beans/free_cntr_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/free_cntr_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/free_cntr_bean.cpp.o.d"
  "/root/repo/src/beans/property.cpp" "src/beans/CMakeFiles/iecd_beans.dir/property.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/property.cpp.o.d"
  "/root/repo/src/beans/pwm_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/pwm_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/pwm_bean.cpp.o.d"
  "/root/repo/src/beans/quad_dec_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/quad_dec_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/quad_dec_bean.cpp.o.d"
  "/root/repo/src/beans/serial_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/serial_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/serial_bean.cpp.o.d"
  "/root/repo/src/beans/solvers.cpp" "src/beans/CMakeFiles/iecd_beans.dir/solvers.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/solvers.cpp.o.d"
  "/root/repo/src/beans/timer_int_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/timer_int_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/timer_int_bean.cpp.o.d"
  "/root/repo/src/beans/watchdog_bean.cpp" "src/beans/CMakeFiles/iecd_beans.dir/watchdog_bean.cpp.o" "gcc" "src/beans/CMakeFiles/iecd_beans.dir/watchdog_bean.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/periph/CMakeFiles/iecd_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
