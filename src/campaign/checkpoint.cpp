#include "campaign/checkpoint.hpp"

#include <filesystem>
#include <utility>

#include "evidence/reader.hpp"
#include "evidence/writer.hpp"

namespace iecd::campaign {

namespace {

using evidence::PayloadCursor;
using evidence::store_f64;
using evidence::store_le;
using evidence::store_str;

/// Version of the opaque state blob inside the checkpoint record; bumped
/// whenever the layout below changes (the record's own schema version
/// covers only the outer framing).
constexpr std::uint16_t kStateVersion = 1;

// ------------------------------------------------------------ config hash

struct Fnv1a64 {
  std::uint64_t hash = 1469598103934665603ULL;

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    bytes(b, 8);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

// -------------------------------------------------------- histogram codec

void encode_histogram(std::vector<std::uint8_t>& out,
                      const obs::LatencyHistogram& h) {
  store_le<std::int32_t>(out, h.config().sub_bucket_bits);
  store_le<std::int32_t>(out, h.config().min_exp);
  store_le<std::int32_t>(out, h.config().max_exp);
  const auto& counts = h.bucket_counts();
  store_le<std::uint32_t>(out, static_cast<std::uint32_t>(counts.size()));
  for (std::uint64_t c : counts) store_le<std::uint64_t>(out, c);
  store_le<std::uint64_t>(out, h.count());
  store_f64(out, h.sum());
  store_f64(out, h.min());
  store_f64(out, h.max());
}

bool decode_histogram(PayloadCursor& cur, obs::LatencyHistogram& out) {
  obs::LatencyHistogram::Config config;
  std::uint32_t n = 0;
  if (!cur.read(config.sub_bucket_bits) || !cur.read(config.min_exp) ||
      !cur.read(config.max_exp) || !cur.read(n)) {
    return false;
  }
  std::vector<std::uint64_t> counts(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!cur.read(counts[i])) return false;
  }
  std::uint64_t count = 0;
  double sum = 0, min = 0, max = 0;
  if (!cur.read(count) || !cur.read_f64(sum) || !cur.read_f64(min) ||
      !cur.read_f64(max)) {
    return false;
  }
  out = obs::LatencyHistogram::from_raw(config, std::move(counts), count,
                                        sum, min, max);
  // from_raw yields an empty histogram on a bucket-count mismatch; treat
  // that as corruption rather than silently dropping samples.
  return out.count() == count;
}

// ---------------------------------------------------------- monitor codec

void encode_timing(std::vector<std::uint8_t>& out,
                   const obs::TimingMonitor& m) {
  const obs::TimingMonitor::RawState s = m.raw();
  store_f64(out, s.config.period_s);
  store_f64(out, s.config.deadline_s);
  encode_histogram(out, s.response_us);
  encode_histogram(out, s.exec_us);
  encode_histogram(out, s.jitter_us);
  store_le<std::uint64_t>(out, s.activations);
  store_le<std::uint64_t>(out, s.deadline_misses);
  store_le<std::int64_t>(out, s.last_miss_time);
  store_le<std::int64_t>(out, s.prev_start);
  store_le<std::uint8_t>(out, s.have_prev ? 1 : 0);
}

bool decode_timing(PayloadCursor& cur, obs::TimingMonitor& out) {
  obs::TimingMonitor::RawState s;
  std::uint8_t have_prev = 0;
  if (!cur.read_f64(s.config.period_s) || !cur.read_f64(s.config.deadline_s) ||
      !decode_histogram(cur, s.response_us) ||
      !decode_histogram(cur, s.exec_us) ||
      !decode_histogram(cur, s.jitter_us) || !cur.read(s.activations) ||
      !cur.read(s.deadline_misses) || !cur.read(s.last_miss_time) ||
      !cur.read(s.prev_start) || !cur.read(have_prev)) {
    return false;
  }
  s.have_prev = have_prev != 0;
  out = obs::TimingMonitor::from_raw(std::move(s));
  return true;
}

void encode_dump(std::vector<std::uint8_t>& out,
                 const obs::FlightRecorder::Dump& dump) {
  store_str(out, dump.trigger);
  store_str(out, dump.detail);
  store_le<std::int64_t>(out, dump.time);
  store_le<std::uint64_t>(out, dump.ordinal);
  store_le<std::uint32_t>(out, static_cast<std::uint32_t>(dump.events.size()));
  for (const auto& e : dump.events) {
    store_le<std::uint8_t>(out, static_cast<std::uint8_t>(e.type));
    store_str(out, e.category);
    store_str(out, e.name);
    store_str(out, e.track);
    store_le<std::int64_t>(out, e.time);
    store_le<std::int64_t>(out, e.duration);
    store_le<std::uint64_t>(out, e.seq);
    store_f64(out, e.value);
  }
  store_le<std::uint32_t>(out,
                          static_cast<std::uint32_t>(dump.monitor_state.size()));
  for (const auto& line : dump.monitor_state) store_str(out, line);
}

bool decode_dump(PayloadCursor& cur, obs::FlightRecorder::Dump& dump) {
  std::uint32_t events = 0;
  if (!cur.read_str(dump.trigger) || !cur.read_str(dump.detail) ||
      !cur.read(dump.time) || !cur.read(dump.ordinal) || !cur.read(events)) {
    return false;
  }
  dump.events.resize(events);
  for (auto& e : dump.events) {
    std::uint8_t type = 0;
    if (!cur.read(type) || !cur.read_str(e.category) || !cur.read_str(e.name) ||
        !cur.read_str(e.track) || !cur.read(e.time) || !cur.read(e.duration) ||
        !cur.read(e.seq) || !cur.read_f64(e.value)) {
      return false;
    }
    e.type = static_cast<trace::EventType>(type);
  }
  std::uint32_t lines = 0;
  if (!cur.read(lines)) return false;
  dump.monitor_state.resize(lines);
  for (auto& line : dump.monitor_state) {
    if (!cur.read_str(line)) return false;
  }
  return true;
}

}  // namespace

void encode_health_report(std::vector<std::uint8_t>& out,
                          const obs::HealthReport& report) {
  store_str(out, report.source);
  store_le<std::uint64_t>(out, report.runs);
  store_le<std::uint32_t>(out, static_cast<std::uint32_t>(report.tasks.size()));
  for (const auto& [name, monitor] : report.tasks) {
    store_str(out, name);
    encode_timing(out, monitor);
  }
  store_le<std::uint32_t>(out,
                          static_cast<std::uint32_t>(report.watermarks.size()));
  for (const auto& [name, monitor] : report.watermarks) {
    store_str(out, name);
    store_f64(out, monitor.current());
    store_f64(out, monitor.peak());
    store_f64(out, monitor.low());
    store_f64(out, monitor.sum());
    store_le<std::uint64_t>(out, monitor.samples());
  }
  store_le<std::uint32_t>(out,
                          static_cast<std::uint32_t>(report.anomalies.size()));
  for (const auto& [name, count] : report.anomalies) {
    store_str(out, name);
    store_le<std::uint64_t>(out, count);
  }
  store_le<std::uint32_t>(out, static_cast<std::uint32_t>(report.dumps.size()));
  for (const auto& dump : report.dumps) encode_dump(out, dump);
  store_le<std::uint64_t>(out, report.dumps_suppressed);
}

bool decode_health_report(evidence::PayloadCursor& cur,
                          obs::HealthReport& out) {
  out = obs::HealthReport{};
  std::uint32_t tasks = 0;
  if (!cur.read_str(out.source) || !cur.read(out.runs) || !cur.read(tasks)) {
    return false;
  }
  for (std::uint32_t i = 0; i < tasks; ++i) {
    std::string name;
    obs::TimingMonitor monitor;
    if (!cur.read_str(name) || !decode_timing(cur, monitor)) return false;
    out.tasks.emplace(std::move(name), std::move(monitor));
  }
  std::uint32_t watermarks = 0;
  if (!cur.read(watermarks)) return false;
  for (std::uint32_t i = 0; i < watermarks; ++i) {
    std::string name;
    double current = 0, peak = 0, low = 0, sum = 0;
    std::uint64_t samples = 0;
    if (!cur.read_str(name) || !cur.read_f64(current) || !cur.read_f64(peak) ||
        !cur.read_f64(low) || !cur.read_f64(sum) || !cur.read(samples)) {
      return false;
    }
    out.watermarks.emplace(std::move(name),
                           obs::WatermarkMonitor::from_raw(current, peak, low,
                                                           sum, samples));
  }
  std::uint32_t anomalies = 0;
  if (!cur.read(anomalies)) return false;
  for (std::uint32_t i = 0; i < anomalies; ++i) {
    std::string name;
    std::uint64_t count = 0;
    if (!cur.read_str(name) || !cur.read(count)) return false;
    out.anomalies.emplace(std::move(name), count);
  }
  std::uint32_t dumps = 0;
  if (!cur.read(dumps)) return false;
  out.dumps.resize(dumps);
  for (auto& dump : out.dumps) {
    if (!decode_dump(cur, dump)) return false;
  }
  return cur.read(out.dumps_suppressed);
}

std::uint64_t campaign_config_hash(const fault::CampaignOptions& options) {
  Fnv1a64 h;
  h.str(options.name);
  h.u64(options.seed);
  h.u64(options.runs);
  h.u64(options.batch);
  const fault::FaultPlan& p = options.plan;
  h.f64(p.serial_corrupt_rate);
  h.f64(p.serial_drop_rate);
  h.f64(p.serial_dup_rate);
  h.f64(p.can_corrupt_rate);
  h.f64(p.can_drop_rate);
  h.f64(p.can_dup_rate);
  h.f64(p.pil_truncate_rate);
  h.f64(p.pil_delay_rate);
  h.f64(p.pil_delay_max_s);
  h.f64(p.irq_spike_rate);
  h.u64(p.irq_spike_cycles);
  h.f64(p.task_overrun_rate);
  h.u64(p.task_overrun_cycles);
  h.f64(p.adc_stuck_rate);
  h.f64(p.adc_noise_rate);
  h.u64(p.adc_noise_lsb);
  h.f64(p.encoder_glitch_rate);
  h.u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(p.encoder_glitch_counts)));
  h.f64(p.torque_pulse_rate_hz);
  h.f64(p.torque_pulse_nm);
  h.f64(p.torque_pulse_s);
  return h.hash;
}

bool save_checkpoint(const std::string& path, const CheckpointState& state) {
  std::vector<std::uint8_t> blob;
  store_le<std::uint16_t>(blob, kStateVersion);
  encode_health_report(blob, state.health);
  store_le<std::uint32_t>(blob,
                          static_cast<std::uint32_t>(
                              state.unrecovered_runs.size()));
  for (std::size_t index : state.unrecovered_runs) {
    store_le<std::uint64_t>(blob, index);
    const auto it = state.unrecovered_health.find(index);
    store_le<std::uint8_t>(blob, it != state.unrecovered_health.end() ? 1 : 0);
    if (it != state.unrecovered_health.end()) {
      encode_health_report(blob, it->second);
    }
  }

  std::vector<std::uint8_t> payload;
  store_str(payload, state.name);
  store_le<std::uint64_t>(payload, state.config_hash);
  store_le<std::uint64_t>(payload, state.total_runs);
  store_le<std::uint64_t>(payload, state.watermark);
  store_le<std::uint32_t>(payload, static_cast<std::uint32_t>(blob.size()));
  payload.insert(payload.end(), blob.begin(), blob.end());

  evidence::EvidenceWriter writer;
  writer.record_build_info();
  writer.append_record(evidence::kSchemaCampaignCheckpoint, 1, payload);
  writer.record_metrics(state.merged);
  writer.finish();

  const std::string tmp = path + ".tmp";
  if (!writer.write_file(tmp)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

CheckpointStatus load_checkpoint(const std::string& path,
                                 CheckpointState& out) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return CheckpointStatus::kMissing;
  }
  evidence::EvidenceReader reader;
  if (reader.parse_file(path) != evidence::Status::kOk) {
    return CheckpointStatus::kCorrupt;
  }
  if (reader.campaign_checkpoints().size() != 1) {
    return CheckpointStatus::kCorrupt;
  }
  const evidence::CampaignCheckpointRecord& rec =
      reader.campaign_checkpoints().front();

  out = CheckpointState{};
  out.name = rec.name;
  out.config_hash = rec.config_hash;
  out.total_runs = rec.total_runs;
  out.watermark = rec.watermark;
  out.merged = reader.metrics();

  PayloadCursor cur(rec.state.data(), rec.state.size());
  std::uint16_t version = 0;
  if (!cur.read(version) || version != kStateVersion) {
    return CheckpointStatus::kCorrupt;
  }
  if (!decode_health_report(cur, out.health)) {
    return CheckpointStatus::kCorrupt;
  }
  std::uint32_t unrecovered = 0;
  if (!cur.read(unrecovered)) return CheckpointStatus::kCorrupt;
  for (std::uint32_t i = 0; i < unrecovered; ++i) {
    std::uint64_t index = 0;
    std::uint8_t has_health = 0;
    if (!cur.read(index) || !cur.read(has_health)) {
      return CheckpointStatus::kCorrupt;
    }
    out.unrecovered_runs.push_back(static_cast<std::size_t>(index));
    if (has_health != 0) {
      obs::HealthReport health;
      if (!decode_health_report(cur, health)) {
        return CheckpointStatus::kCorrupt;
      }
      out.unrecovered_health.emplace(static_cast<std::size_t>(index),
                                     std::move(health));
    }
  }
  if (!cur.done()) return CheckpointStatus::kCorrupt;
  return CheckpointStatus::kOk;
}

}  // namespace iecd::campaign
