#include "fault/sites.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace iecd::fault {

namespace {

/// Picks one of up to three mutually exclusive actions with ONE
/// opportunity draw (so the per-byte/per-frame stream advances exactly
/// once per opportunity) plus one pick draw on a hit.
template <typename Action>
Action pick_action(FaultInjector::Site& site, double corrupt, double drop,
                   double dup, Action none, Action a_corrupt, Action a_drop,
                   Action a_dup) {
  const double total = corrupt + drop + dup;
  if (!site.fire(total)) return none;
  const double pick = site.uniform(0.0, total);
  if (pick < corrupt) return a_corrupt;
  if (pick < corrupt + drop) return a_drop;
  return a_dup;
}

}  // namespace

void wire_serial_channel(FaultInjector& injector,
                         sim::SerialChannel& channel) {
  const FaultPlan& plan = injector.plan();
  const double corrupt = plan.serial_corrupt_rate;
  const double drop = plan.serial_drop_rate;
  const double dup = plan.serial_dup_rate;
  if (corrupt <= 0.0 && drop <= 0.0 && dup <= 0.0) return;
  FaultInjector::Site& site = injector.site("serial." + channel.name());
  channel.set_fault_hook([&site, corrupt, drop, dup](std::uint8_t) {
    using Action = sim::SerialChannel::ByteFaultAction;
    sim::SerialChannel::ByteFault fault;
    fault.action =
        pick_action(site, corrupt, drop, dup, Action::kNone, Action::kCorrupt,
                    Action::kDrop, Action::kDuplicate);
    if (fault.action == Action::kCorrupt) fault.xor_mask = site.bit_mask();
    return fault;
  });
}

void wire_can_bus(FaultInjector& injector, sim::CanBus& bus) {
  const FaultPlan& plan = injector.plan();
  const double corrupt = plan.can_corrupt_rate;
  const double drop = plan.can_drop_rate;
  const double dup = plan.can_dup_rate;
  if (corrupt <= 0.0 && drop <= 0.0 && dup <= 0.0) return;
  FaultInjector::Site& site = injector.site("can." + bus.name());
  bus.set_fault_hook([&site, corrupt, drop, dup](const sim::CanFrame&) {
    using Action = sim::CanBus::FrameFaultAction;
    sim::CanBus::FrameFault fault;
    fault.action =
        pick_action(site, corrupt, drop, dup, Action::kNone, Action::kCorrupt,
                    Action::kDrop, Action::kDuplicate);
    if (fault.action == Action::kCorrupt) fault.xor_mask = site.bit_mask();
    return fault;
  });
}

void wire_cpu(FaultInjector& injector, mcu::Cpu& cpu) {
  const FaultPlan& plan = injector.plan();
  if (plan.irq_spike_rate <= 0.0 || plan.irq_spike_cycles == 0) return;
  FaultInjector::Site& site = injector.site("mcu.irq");
  const double rate = plan.irq_spike_rate;
  const std::uint64_t cycles = plan.irq_spike_cycles;
  cpu.set_dispatch_fault(
      [&site, rate, cycles](const mcu::DispatchRecord&) -> std::uint64_t {
        return site.fire(rate) ? cycles : 0;
      });
}

void wire_runtime(FaultInjector& injector, rt::Runtime& runtime) {
  const FaultPlan& plan = injector.plan();
  if (plan.task_overrun_rate <= 0.0 || plan.task_overrun_cycles == 0) return;
  FaultInjector::Site& site = injector.site("rt.task");
  const double rate = plan.task_overrun_rate;
  const std::uint64_t cycles = plan.task_overrun_cycles;
  runtime.set_overrun_hook(
      [&site, rate, cycles]() -> std::uint64_t {
        return site.fire(rate) ? cycles : 0;
      });
}

void wire_adc(FaultInjector& injector, periph::AdcPeripheral& adc) {
  const FaultPlan& plan = injector.plan();
  const double stuck = plan.adc_stuck_rate;
  const double noise =
      plan.adc_noise_lsb > 0 ? plan.adc_noise_rate : 0.0;
  if (stuck <= 0.0 && noise <= 0.0) return;
  FaultInjector::Site& site = injector.site("adc." + adc.name());
  const std::uint32_t lsb = plan.adc_noise_lsb;
  const std::uint32_t max_code = adc.max_code();
  // Stuck-at replays the code the converter last produced (faulted or
  // not) — the behaviour of a sample-and-hold that failed to acquire.
  auto last = std::make_shared<std::vector<std::uint32_t>>(
      static_cast<std::size_t>(adc.config().channels), 0u);
  auto have_last = std::make_shared<std::vector<bool>>(
      static_cast<std::size_t>(adc.config().channels), false);
  adc.set_code_fault_hook([&site, stuck, noise, lsb, max_code, last,
                           have_last](int channel, std::uint32_t code) {
    const auto ch = static_cast<std::size_t>(channel);
    std::uint32_t out = code;
    if (site.fire(stuck)) {
      if ((*have_last)[ch]) out = (*last)[ch];
    } else if (site.fire(noise)) {
      const std::uint32_t magnitude =
          static_cast<std::uint32_t>(site.next_u64() % lsb) + 1;
      if (site.next_u64() & 1u) {
        out = out + magnitude > max_code ? max_code : out + magnitude;
      } else {
        out = out >= magnitude ? out - magnitude : 0;
      }
    }
    (*last)[ch] = out;
    (*have_last)[ch] = true;
    return out;
  });
}

void wire_encoder(FaultInjector& injector,
                  plant::IncrementalEncoder& encoder) {
  const FaultPlan& plan = injector.plan();
  if (plan.encoder_glitch_rate <= 0.0 || plan.encoder_glitch_counts == 0) {
    return;
  }
  FaultInjector::Site& site = injector.site("encoder." + encoder.name());
  const double rate = plan.encoder_glitch_rate;
  const std::int32_t counts = plan.encoder_glitch_counts;
  encoder.set_count_fault_hook(
      [&site, rate, counts](std::int32_t delta) -> std::int32_t {
        if (!site.fire(rate)) return delta;
        return delta + ((site.next_u64() & 1u) ? counts : -counts);
      });
}

plant::LoadTorque make_load_torque(FaultInjector& injector,
                                   double duration_s) {
  const FaultPlan& plan = injector.plan();
  if (plan.torque_pulse_rate_hz <= 0.0 || plan.torque_pulse_nm == 0.0 ||
      plan.torque_pulse_s <= 0.0) {
    return nullptr;
  }
  FaultInjector::Site& site = injector.site("plant.torque");
  // The whole pulse schedule is drawn up front (uniform inter-arrival with
  // the plan's mean rate, random sign): the returned closure is pure in t,
  // so the plant integrator can evaluate it at any adaptive substep
  // without consuming stream state.
  struct Pulse {
    double start;
    double end;
    double torque;
  };
  auto pulses = std::make_shared<std::vector<Pulse>>();
  const double mean_gap = 1.0 / plan.torque_pulse_rate_hz;
  double t = 0.0;
  for (;;) {
    t += site.uniform(0.0, 2.0 * mean_gap);
    if (t >= duration_s) break;
    const double torque =
        (site.next_u64() & 1u) ? plan.torque_pulse_nm : -plan.torque_pulse_nm;
    pulses->push_back({t, t + plan.torque_pulse_s, torque});
    site.note_injected();
  }
  if (pulses->empty()) return nullptr;
  return [pulses](double time, double /*omega*/) -> double {
    auto it = std::upper_bound(
        pulses->begin(), pulses->end(), time,
        [](double value, const Pulse& p) { return value < p.start; });
    if (it == pulses->begin()) return 0.0;
    const Pulse& p = *(it - 1);
    return time < p.end ? p.torque : 0.0;
  };
}

void wire_pil(FaultInjector& injector, pil::PilSession& session) {
  const FaultPlan& plan = injector.plan();
  wire_serial_channel(injector, session.link().a_to_b());
  wire_serial_channel(injector, session.link().b_to_a());

  const double truncate = plan.pil_truncate_rate;
  const double delay =
      plan.pil_delay_max_s > 0.0 ? plan.pil_delay_rate : 0.0;
  if (truncate > 0.0 || delay > 0.0) {
    FaultInjector::Site& site = injector.site("pil.host_tx");
    const double delay_max_s = plan.pil_delay_max_s;
    session.host().set_tx_fault_hook(
        [&site, truncate, delay, delay_max_s](std::size_t frame_len) {
          pil::HostEndpoint::TxFault fault;
          const double total = truncate + delay;
          if (!site.fire(total)) return fault;
          if (site.uniform(0.0, total) < truncate) {
            fault.truncate_to = static_cast<std::size_t>(
                site.next_u64() % static_cast<std::uint64_t>(frame_len));
          } else {
            fault.delay =
                sim::from_seconds(site.uniform(0.0, delay_max_s));
          }
          return fault;
        });
  }
  if (truncate > 0.0) {
    FaultInjector::Site& site = injector.site("pil.target_tx");
    session.agent().set_tx_fault_hook(
        [&site, truncate](std::size_t frame_len) -> std::size_t {
          if (!site.fire(truncate)) return frame_len;
          return static_cast<std::size_t>(
              site.next_u64() % static_cast<std::uint64_t>(frame_len));
        });
  }
}

}  // namespace iecd::fault
