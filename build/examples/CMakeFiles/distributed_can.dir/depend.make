# Empty dependencies file for distributed_can.
# This may be replaced when dependencies are built.
