// E7 (Section 5) — MCU independence.  "Due to the HW abstraction layer
// provided by PE, the PE block set and the target automatically support
// all MCUs supported by PE ... the model can be extremely simply ported to
// another MCU by selecting another CPU bean."  Two tables:
//  (1) the servo model across all derivatives — ports legal only where the
//      hardware has the required quadrature decoder, and the expert system
//      says so up front;
//  (2) an ADC+PWM controller (no decoder requirement) that ports to every
//      derivative, with per-part cycles, utilisation, memory and the
//      derived register settings — same model, different silicon.
#include <cstdio>

#include "beans/adc_bean.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "bench_util.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "core/case_study.hpp"
#include "core/model_sync.hpp"
#include "core/peert.hpp"

using namespace iecd;

namespace {

/// A minimal portable controller: ADC -> PI -> PWM at 100 Hz.
struct PortableApp {
  model::Model top{"portable"};
  model::Subsystem* sub;
  beans::BeanProject project;
  std::unique_ptr<core::ModelSync> sync;

  explicit PortableApp(const std::string& derivative)
      : project("portable", derivative) {
    sub = &top.add<model::Subsystem>("ctrl", 0, 0);
    sub->set_sample_time(model::SampleTime::discrete(0.01));
    sync = std::make_unique<core::ModelSync>(sub->inner(), project);
    model::Model& c = sub->inner();
    sync->add_timer_int("TI1");
    auto& adc = sync->add_adc("AD1");
    auto& pwm = sync->add_pwm("PWM1");
    project.set_property("TI1", "period_s", 0.01);
    project.set_property("PWM1", "frequency_hz", 2000.0);
    project.set_property("AD1", "resolution_bits", std::int64_t{10});
    auto& src = c.add<blocks::ConstantBlock>("sensor_v", 1.0);
    auto& sp = c.add<blocks::ConstantBlock>("sp", 20000.0);
    auto& err = c.add<blocks::SumBlock>("err", "+-");
    blocks::DiscretePidBlock::Gains g;
    g.kp = 1e-5;
    g.ki = 2e-4;
    auto& pi = c.add<blocks::DiscretePidBlock>("pi", g, 0.0, 1.0);
    c.connect(src, 0, adc, 0);
    c.connect(sp, 0, err, 0);
    c.connect(adc, 0, err, 1);
    c.connect(err, 0, pi, 0);
    c.connect(pi, 0, pwm, 0);
    sub->bind_ports({}, {});
  }
};

void print_table() {
  std::printf("E7: porting by CPU bean swap\n\n");
  std::printf("(1) servo model (needs a quadrature decoder):\n\n");
  std::printf("%-12s %-10s %s\n", "derivative", "verdict", "first diagnostic");
  bench::print_rule(86);
  for (const auto& cpu : mcu::derivative_registry()) {
    core::ServoConfig cfg;
    cfg.derivative = cpu.name;
    cfg.duration_s = 0.3;
    core::ServoSystem servo(cfg);
    const auto diags = servo.validate();
    std::string first = "ok";
    for (const auto& d : diags.items()) {
      if (d.severity == util::Severity::kError) {
        first = d.message;
        break;
      }
    }
    std::printf("%-12s %-10s %.58s\n", cpu.name.c_str(),
                diags.has_errors() ? "REJECTED" : "OK", first.c_str());
  }

  std::printf("\n(2) ADC+PI+PWM controller (portable everywhere):\n\n");
  std::printf("%-12s | %-12s %-8s %-11s %-11s | %-18s %-16s\n", "derivative",
              "cycles/step", "CPU[%]", "data[B]", "code[B]", "timer solve",
              "pwm solve");
  bench::print_rule(104);
  for (const auto& cpu : mcu::derivative_registry()) {
    PortableApp app(cpu.name);
    auto diags = app.project.validate();
    if (diags.has_errors()) {
      std::printf("%-12s | validation failed:\n%s\n", cpu.name.c_str(),
                  diags.to_string().c_str());
      continue;
    }
    core::PeertTarget target;
    auto build = target.build(*app.sub, app.project, "portable");
    if (!build.ok()) {
      std::printf("%-12s | build failed\n", cpu.name.c_str());
      continue;
    }
    const auto cycles = build.app.task_cycles(0, cpu.costs);
    const double util =
        build.app.estimated_utilisation(cpu.costs, cpu.clock_hz);
    const auto* timer = app.project.find("TI1");
    const auto* pwm = app.project.find("PWM1");
    std::printf("%-12s | %-12llu %-8.3f %-11u %-11u | div %3lld x %-8lld "
                "div %3lld x %-8lld\n",
                cpu.name.c_str(), static_cast<unsigned long long>(cycles),
                util * 100.0, build.app.memory.data_bytes,
                build.app.memory.code_bytes,
                static_cast<long long>(timer->properties().get_int("prescaler")),
                static_cast<long long>(timer->properties().get_int("modulo")),
                static_cast<long long>(pwm->properties().get_int("prescaler")),
                static_cast<long long>(pwm->properties().get_int("modulo")));
  }
  std::printf("\nthe application model is identical in every row; only the "
              "CPU bean changed.\n\n");
}

void BM_RetargetValidate(benchmark::State& state) {
  PortableApp app("DSC56F8367");
  const char* names[] = {"DSC56F8367", "HCS12X128", "MCF5235", "HCS08GB60"};
  std::size_t i = 0;
  for (auto _ : state) {
    auto diags = app.project.select_derivative(names[i % 4]);
    benchmark::DoNotOptimize(diags);
    ++i;
  }
}
BENCHMARK(BM_RetargetValidate);

void BM_GenerateForDerivative(benchmark::State& state) {
  for (auto _ : state) {
    PortableApp app("MCF5235");
    app.project.validate();
    core::PeertTarget target;
    auto build = target.build(*app.sub, app.project, "portable");
    benchmark::DoNotOptimize(build.app.memory.code_bytes);
  }
}
BENCHMARK(BM_GenerateForDerivative)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
