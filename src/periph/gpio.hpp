/// \file gpio.hpp
/// General-purpose I/O port with per-pin direction, edge interrupts, and a
/// push-button "keyboard" stimulus device with realistic contact bounce —
/// the set-point / mode interface of the servo case study.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "periph/peripheral.hpp"

namespace iecd::periph {

enum class PinDirection { kInput, kOutput };
enum class EdgeSense { kNone, kRising, kFalling, kBoth };

struct GpioConfig {
  int pins = 8;
  mcu::IrqVector irq_base = -1;  ///< vector for pin i = irq_base + i; <0: none
};

class GpioPort : public Peripheral {
 public:
  GpioPort(mcu::Mcu& mcu, GpioConfig config, std::string name = "gpio");

  const GpioConfig& config() const { return config_; }

  void set_direction(int pin, PinDirection dir);
  PinDirection direction(int pin) const;

  /// Configures which input edges raise the pin's interrupt.
  void set_edge_sense(int pin, EdgeSense sense);

  /// CPU-side write (pin must be an output).
  void write(int pin, bool level);
  /// CPU-side read: input pins return the external level, outputs read back.
  bool read(int pin) const;

  /// External-world drive of an input pin (from stimulus devices).  Fires
  /// the edge interrupt when the sense matches.
  void drive_external(int pin, bool level);

  /// Observer for output pin changes (lets tests/plants watch actuation).
  void set_output_observer(std::function<void(int, bool, sim::SimTime)> obs);

  void reset() override;

 private:
  struct Pin {
    PinDirection dir = PinDirection::kInput;
    EdgeSense sense = EdgeSense::kNone;
    bool level = false;
  };

  Pin& at(int pin);
  const Pin& at(int pin) const;

  GpioConfig config_;
  std::vector<Pin> pins_;
  std::function<void(int, bool, sim::SimTime)> output_obs_;
};

/// A push button wired to a GPIO input pin.  Pressing schedules a burst of
/// contact-bounce edges followed by the stable level; the controller's
/// debounce logic (in the model) must filter these.
class PushButton {
 public:
  PushButton(GpioPort& port, int pin, bool active_low = true);

  /// Schedules a press at \p when lasting \p hold, with \p bounces bounce
  /// edges spread over \p bounce_window at both transitions.
  void press_at(sim::SimTime when, sim::SimTime hold,
                int bounces = 4,
                sim::SimTime bounce_window = sim::microseconds(500));

  int pin() const { return pin_; }

 private:
  void emit_transition(sim::SimTime when, bool target, int bounces,
                       sim::SimTime bounce_window);

  GpioPort& port_;
  int pin_;
  bool active_low_;
};

}  // namespace iecd::periph
