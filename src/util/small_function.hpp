/// \file small_function.hpp
/// Move-only type-erased callable with small-buffer-optimized storage.
/// `std::function` guarantees copyability and (on common ABIs) spills any
/// capture beyond ~16 bytes to the heap; the simulation event core schedules
/// millions of callbacks whose captures are a `this` pointer plus a couple
/// of scalars, so it wants a callable type that (a) never allocates for
/// captures up to a configurable inline size and (b) supports move-only
/// captures.  Callables larger than the buffer fall back to a single heap
/// allocation, so correctness never depends on the buffer size.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace iecd::util {

template <typename Signature, std::size_t BufferBytes = 48>
class SmallFunction;  // primary template; only the R(Args...) form exists

template <typename R, typename... Args, std::size_t BufferBytes>
class SmallFunction<R(Args...), BufferBytes> {
 public:
  /// True when callable F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= BufferBytes &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(fn));
      invoke_ = &invoke_inline<D>;
      manage_ = &manage_inline<D>;
    } else {
      ::new (static_cast<void*>(&storage_))
          D*(new D(std::forward<F>(fn)));
      invoke_ = &invoke_heap<D>;
      manage_ = &manage_heap<D>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(&storage_, std::forward<Args>(args)...);
  }

  /// Diagnostics: true when the held callable lives on the heap (tests
  /// assert the common capture sizes stay inline).
  bool uses_heap() const { return manage_ && manage_(Op::kQueryHeap, nullptr, nullptr); }

 private:
  enum class Op { kDestroy, kMoveTo, kQueryHeap };
  using Storage = std::aligned_storage_t<BufferBytes, alignof(std::max_align_t)>;
  using InvokeFn = R (*)(void*, Args&&...);
  using ManageFn = bool (*)(Op, void*, void*);

  void reset() {
    if (manage_) manage_(Op::kDestroy, &storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(SmallFunction& other) noexcept {
    if (other.manage_) {
      other.manage_(Op::kMoveTo, &other.storage_, &storage_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  template <typename D>
  static R invoke_inline(void* s, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(s)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static bool manage_inline(Op op, void* self, void* dst) {
    D* fn = std::launder(reinterpret_cast<D*>(self));
    switch (op) {
      case Op::kDestroy:
        fn->~D();
        return false;
      case Op::kMoveTo:
        ::new (dst) D(std::move(*fn));
        fn->~D();
        return false;
      case Op::kQueryHeap:
        return false;
    }
    return false;
  }

  template <typename D>
  static R invoke_heap(void* s, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(s)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static bool manage_heap(Op op, void* self, void* dst) {
    D** slot = std::launder(reinterpret_cast<D**>(self));
    switch (op) {
      case Op::kDestroy:
        delete *slot;
        return false;
      case Op::kMoveTo:
        ::new (dst) D*(*slot);
        *slot = nullptr;
        return false;
      case Op::kQueryHeap:
        return true;
    }
    return false;
  }

  Storage storage_;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace iecd::util
