/// \file runtime.hpp
/// Deploys a GeneratedApplication onto the simulated MCU: the periodic
/// model step runs inside the timer bean's interrupt (non-preemptively),
/// event tasks inside their bean-event ISRs, initialization in main — the
/// exact execution infrastructure the paper's target defines.  Inputs are
/// sampled at ISR start, outputs commit at ISR end, so the generated
/// application exhibits the true sampling-to-actuation delay.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "beans/bean_project.hpp"
#include "beans/timer_int_bean.hpp"
#include "beans/watchdog_bean.hpp"
#include "codegen/generated_app.hpp"
#include "mcu/mcu.hpp"
#include "obs/monitor.hpp"
#include "rt/profiler.hpp"

namespace iecd::rt {

class Runtime {
 public:
  /// \p project must already be bound to \p mcu.
  Runtime(mcu::Mcu& mcu, beans::BeanProject& project,
          codegen::GeneratedApplication& app);

  /// Installs ISR handlers, runs application init, and enables the timer.
  /// For PIL variants the periodic task is NOT timer-driven; the PIL target
  /// agent triggers it per received frame (call step_once() from there).
  void start();

  /// Executes one activation of the periodic task "by hand" — the PIL
  /// path, where the communication ISR stands in for the timer (must be
  /// invoked from ISR context; cost accounting happens in the caller).
  void step_once(const model::SimContext& ctx);

  /// Charges one periodic-step activation in cycles (for callers that
  /// embed the step in their own ISR).
  std::uint64_t step_cycles() const;

  /// Fault-injection hook (see src/fault/): extra cycles charged to a
  /// periodic-step activation — a task overrun (data-dependent worst-case
  /// path, cache-cold iteration).  The hook is drawn once per activation,
  /// both on the timer-driven path and — via draw_overrun_cycles() — on
  /// the PIL path where the communication ISR embeds the step.  Null (the
  /// default) leaves timing untouched.
  void set_overrun_hook(std::function<std::uint64_t()> hook);
  /// One overrun draw for callers that embed the step in their own ISR
  /// (the PIL target agent); 0 when no hook is installed.
  std::uint64_t draw_overrun_cycles() {
    return overrun_hook_ ? overrun_hook_() : 0;
  }

  Profiler& profiler() { return profiler_; }

  /// Wires online timing monitors into the dispatch path: every task in the
  /// application gets a TimingMonitor in \p hub (periodic tasks with their
  /// period as implicit deadline), fed per activation with release/start/
  /// completion times; a deadline miss fires the hub's flight recorder with
  /// the offending task's name.  Call before or after start(); monitoring
  /// is passive and does not perturb the simulation.
  void attach_monitors(obs::MonitorHub& hub);
  obs::MonitorHub* monitors() const { return monitors_; }
  /// The project's watchdog bean, if any (the kernel services it from the
  /// periodic task; a stuck or chronically overrunning step gets caught).
  beans::WatchdogBean* watchdog() { return watchdog_; }
  /// Current target time in seconds (the MCU's world clock).
  double now_seconds() const { return sim::to_seconds(mcu_.now()); }

  /// Profiler key of the periodic model step.  Dispatch records carry the
  /// ISR trampoline name "<bean>.<event>", so the periodic task profiles
  /// under the timer bean's interrupt.
  std::string periodic_profile_key() const;
  /// Profiler key for a bean-event ISR.
  static std::string profile_key(const std::string& bean,
                                 const std::string& event) {
    return bean + "." + event;
  }
  beans::TimerIntBean* timer() { return timer_; }
  double period_s() const;

  /// Installs the manually-written background task (the paper: "There can
  /// also be executed a manually written background task").  The callable
  /// performs one chunk of work and returns its cycle cost; it runs only
  /// while no interrupt is pending and yields at chunk boundaries.
  void set_background_task(std::function<std::uint64_t()> chunk);

  /// Memory/stack report combining the codegen estimate with the observed
  /// worst-case stack on the simulated CPU.
  std::string memory_report() const;

  std::uint64_t periodic_activations() const { return periodic_activations_; }

 private:
  void install_periodic_task(std::size_t index);
  void install_event_task(std::size_t index);
  model::SimContext context_now() const;

  mcu::Mcu& mcu_;
  beans::BeanProject& project_;
  codegen::GeneratedApplication& app_;
  Profiler profiler_;
  beans::TimerIntBean* timer_ = nullptr;
  beans::WatchdogBean* watchdog_ = nullptr;
  std::uint64_t periodic_activations_ = 0;
  bool started_ = false;
  std::function<std::uint64_t()> overrun_hook_;
  obs::MonitorHub* monitors_ = nullptr;
  /// Dispatch-name ("<bean>.<event>") -> monitor + task label.  Transparent
  /// comparator: the dispatch observer looks up by the record's string_view
  /// without materializing a key string per activation.
  struct MonitorEntry {
    obs::TimingMonitor* monitor = nullptr;
    std::string task;  ///< application-level task name for reports/triggers
  };
  std::map<std::string, MonitorEntry, std::less<>> monitor_cache_;
};

}  // namespace iecd::rt
