// Property-based suites: invariants checked across parameter sweeps and
// randomized inputs (fixed seeds — everything in this repo is
// deterministic).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "beans/solvers.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "core/case_study.hpp"
#include "fixpt/value.hpp"
#include "mcu/derivative.hpp"
#include "model/engine.hpp"
#include "periph/adc.hpp"
#include "periph/pwm.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"

namespace iecd {
namespace {

// -------------------------------------------------- solver properties

class TimerSolverProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(TimerSolverProperty, SolutionsAreValidAndWithinTolerance) {
  const auto& cpu = mcu::find_derivative(GetParam());
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> log_period(-5.5, 0.5);
  const double tolerance = 0.01;
  int solved = 0;
  for (int i = 0; i < 300; ++i) {
    const double period = std::pow(10.0, log_period(rng));
    const auto sol = beans::solve_timer_period(cpu, period, tolerance);
    if (!sol) continue;
    ++solved;
    // The reported pair really produces the reported period.
    const double achieved = static_cast<double>(sol->prescaler) *
                            static_cast<double>(sol->modulo) / cpu.clock_hz;
    EXPECT_NEAR(achieved, sol->achieved_period_s, 1e-15);
    // Within tolerance of the request.
    EXPECT_LE(std::abs(achieved - period) / period, tolerance + 1e-12);
    // Register-level feasibility.
    EXPECT_NE(std::find(cpu.timer_prescalers.begin(),
                        cpu.timer_prescalers.end(), sol->prescaler),
              cpu.timer_prescalers.end());
    EXPECT_LE(sol->modulo, (1ull << cpu.timer_modulo_bits) - 1);
    EXPECT_GE(sol->modulo, 1u);
  }
  EXPECT_GT(solved, 150);  // most of the sweep range is coverable
}

TEST_P(TimerSolverProperty, RejectionsAreGenuine) {
  const auto& cpu = mcu::find_derivative(GetParam());
  // Anything beyond max prescaler * max modulo / clock must be rejected,
  // and anything below one clock tick as well.
  const double max_period = static_cast<double>(cpu.timer_prescalers.back()) *
                            static_cast<double>((1ull << cpu.timer_modulo_bits) - 1) /
                            cpu.clock_hz;
  EXPECT_FALSE(beans::solve_timer_period(cpu, max_period * 1.5, 0.01));
  EXPECT_FALSE(beans::solve_timer_period(cpu, 0.1 / cpu.clock_hz, 0.01));
  EXPECT_FALSE(beans::solve_timer_period(cpu, -1.0, 0.01));
}

INSTANTIATE_TEST_SUITE_P(AllDerivatives, TimerSolverProperty,
                         ::testing::Values("DSC56F8367", "HCS12X128",
                                           "MCF5235", "HCS08GB60"));

class PwmSolverProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PwmSolverProperty, AchievedFrequencyAndResolutionConsistent) {
  const auto& cpu = mcu::find_derivative(GetParam());
  std::mt19937 rng(777);
  std::uniform_real_distribution<double> log_freq(2.0, 6.0);
  for (int i = 0; i < 200; ++i) {
    const double freq = std::pow(10.0, log_freq(rng));
    const auto sol = beans::solve_pwm_frequency(cpu, freq, 0.01);
    if (!sol) continue;
    const double achieved =
        cpu.clock_hz /
        (static_cast<double>(sol->prescaler) * sol->modulo);
    EXPECT_NEAR(achieved, sol->achieved_frequency_hz, 1e-9);
    EXPECT_LE(std::abs(achieved - freq) / freq, 0.01 + 1e-12);
    EXPECT_EQ(sol->duty_resolution_bits,
              static_cast<int>(std::floor(std::log2(sol->modulo))));
    EXPECT_LE(sol->modulo, (1ull << cpu.pwm_counter_bits) - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDerivatives, PwmSolverProperty,
                         ::testing::Values("DSC56F8367", "HCS12X128",
                                           "MCF5235", "HCS08GB60"));

// ------------------------------------------------ peripheral properties

class AdcQuantizationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdcQuantizationProperty, CodeIsMonotoneAndBounded) {
  const int bits = GetParam();
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::AdcConfig cfg;
  cfg.resolution_bits = bits;
  periph::AdcPeripheral adc(mcu, cfg);
  std::uint32_t prev = 0;
  for (double v = -0.5; v <= 4.0; v += 0.01) {
    const std::uint32_t code = adc.volts_to_code(v);
    EXPECT_LE(code, adc.max_code());
    EXPECT_GE(code, prev);  // monotone non-decreasing in the input
    prev = code;
    // Round trip within one LSB inside the reference range.
    if (v >= 0.0 && v <= 3.3) {
      EXPECT_NEAR(adc.code_to_volts(code), v,
                  3.3 / static_cast<double>(adc.max_code()) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AdcQuantizationProperty,
                         ::testing::Values(8, 10, 12, 14, 16));

class PwmGranularityProperty : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(PwmGranularityProperty, DutySnapsToCounterSteps) {
  const std::uint32_t modulo = GetParam();
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::PwmConfig cfg;
  cfg.modulo = modulo;
  periph::PwmPeripheral pwm(mcu, cfg);
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> duty(0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    const double d = duty(rng);
    pwm.set_duty_ratio(d);  // counter stopped: lands directly
    const double q = pwm.duty_ratio();
    // Quantized to the nearest counter step.
    EXPECT_NEAR(q * modulo, std::round(q * modulo), 1e-9);
    EXPECT_LE(std::abs(q - d), 0.5 / modulo + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, PwmGranularityProperty,
                         ::testing::Values(64u, 256u, 3000u, 30000u));

class SerialTimingProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SerialTimingProperty, NByteMessageTakesNByteTimes) {
  const std::uint32_t baud = GetParam();
  sim::World world;
  sim::SerialLink link(world, sim::SerialConfig::rs232(baud));
  std::vector<sim::SimTime> arrivals;
  link.a_to_b().set_receiver(
      [&](std::uint8_t, sim::SimTime t) { arrivals.push_back(t); });
  const int n = 23;
  for (int i = 0; i < n; ++i) {
    link.a_to_b().transmit(static_cast<std::uint8_t>(i));
  }
  world.run_for(sim::seconds_i(2));
  ASSERT_EQ(arrivals.size(), static_cast<std::size_t>(n));
  const sim::SimTime byte_time = link.config().byte_time();
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(arrivals[static_cast<std::size_t>(i)],
              static_cast<sim::SimTime>(i + 1) * byte_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Bauds, SerialTimingProperty,
                         ::testing::Values(9600u, 57600u, 115200u, 460800u,
                                           921600u));

// ----------------------------------------------------- fixpt properties

class FixedArithmeticProperty : public ::testing::TestWithParam<int> {};

TEST_P(FixedArithmeticProperty, AddIsCommutativeMulSignCorrect) {
  const auto fmt = fixpt::FixedFormat::s16(GetParam());
  std::mt19937 rng(42 + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(fmt.min_value() * 0.45,
                                              fmt.max_value() * 0.45);
  for (int i = 0; i < 200; ++i) {
    const auto a = fixpt::FixedValue::from_double(dist(rng), fmt);
    const auto b = fixpt::FixedValue::from_double(dist(rng), fmt);
    // Commutativity (exact).
    EXPECT_EQ(a.add(b, fmt).raw(), b.add(a, fmt).raw());
    EXPECT_EQ(a.mul(b, fmt).raw(), b.mul(a, fmt).raw());
    // a - a == 0.
    EXPECT_EQ(a.sub(a, fmt).raw(), 0);
    // Sign of the product (away from the rounding dead-zone).
    if (std::abs(a.to_double() * b.to_double()) > 4 * fmt.resolution()) {
      const bool expect_negative =
          (a.to_double() < 0) != (b.to_double() < 0);
      EXPECT_EQ(a.mul(b, fmt).to_double() < 0, expect_negative);
    }
    // Bounded error versus real arithmetic (half LSB for the sum of two
    // representable values that stays in range).
    EXPECT_NEAR(a.add(b, fmt).to_double(), a.to_double() + b.to_double(),
                fmt.resolution());
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FixedArithmeticProperty,
                         ::testing::Values(4, 8, 12, 15));

// -------------------------------------------------- engine properties

class DiscreteIntegratorAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteIntegratorAccuracy, RampIntegralErrorBoundedByPeriod) {
  const double period = GetParam();
  model::Model m("t");
  auto& ramp = m.add<blocks::RampBlock>("u", 2.0);
  auto& integ = m.add<blocks::DiscreteIntegratorBlock>("i", 1.0);
  integ.set_sample_time(model::SampleTime::discrete(period));
  auto& scope = m.add<blocks::ScopeBlock>("s");
  scope.set_sample_time(model::SampleTime::discrete(period));
  m.connect(ramp, 0, integ, 0);
  m.connect(integ, 0, scope, 0);
  model::Engine eng(m, {.stop_time = 1.0});
  eng.run();
  // Integral of 2t over [0,1] = 1; forward Euler error ~ period.
  EXPECT_NEAR(scope.log().last_value(), 1.0, 3.0 * period);
}

INSTANTIATE_TEST_SUITE_P(Periods, DiscreteIntegratorAccuracy,
                         ::testing::Values(0.01, 0.005, 0.002, 0.001));

TEST(EngineDeterminism, TwoRunsAreBitIdentical) {
  auto run = [] {
    core::ServoConfig cfg;
    cfg.duration_s = 0.4;
    core::ServoSystem servo(cfg);
    return servo.run_mil();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.speed.size(), b.speed.size());
  for (std::size_t i = 0; i < a.speed.size(); ++i) {
    ASSERT_EQ(a.speed.value_at(i), b.speed.value_at(i)) << "sample " << i;
  }
  EXPECT_EQ(a.iae, b.iae);
}

TEST(HilDeterminism, TwoRunsAreBitIdentical) {
  auto run = [] {
    core::ServoConfig cfg;
    cfg.duration_s = 0.3;
    core::ServoSystem servo(cfg);
    return servo.run_hil();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.iae, b.iae);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.exec_us_mean, b.exec_us_mean);
  EXPECT_EQ(a.speed.last_value(), b.speed.last_value());
}

// ------------------------------------------------- metrics properties

TEST(MetricsProperty, StepMetricsInvariantUnderTimeShift) {
  // Shifting the whole record and the step time together must not change
  // rise/settle/overshoot.
  model::SampleLog base;
  model::SampleLog shifted;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i * 1e-3;
    const double y = 1.0 - std::exp(-t / 0.05);
    base.record(t, y);
    shifted.record(t + 0.3, y);
  }
  const auto m0 = model::analyze_step(base, 1.0, 0.0);
  const auto m1 = model::analyze_step(shifted, 1.0, 0.3);
  EXPECT_NEAR(m0.rise_time, m1.rise_time, 1e-9);
  EXPECT_NEAR(m0.settling_time, m1.settling_time, 1e-9);
  EXPECT_NEAR(m0.overshoot_percent, m1.overshoot_percent, 1e-9);
}

TEST(MetricsProperty, IaeScalesLinearlyWithError) {
  model::SampleLog y1;
  model::SampleLog y2;
  for (int i = 0; i <= 100; ++i) {
    y1.record(i * 0.01, 0.8);  // error 0.2
    y2.record(i * 0.01, 0.6);  // error 0.4
  }
  EXPECT_NEAR(model::integral_absolute_error(y2, 1.0),
              2.0 * model::integral_absolute_error(y1, 1.0), 1e-9);
}

// ----------------------------------------------- count-wrap property

TEST(WrapDiffProperty, RecoversTrueDeltaThroughInt16Wrap) {
  // The servo's speed path: wrapped int16 positions, remainder-based diff.
  auto wrap16 = [](std::int64_t x) {
    return static_cast<std::int16_t>(static_cast<std::uint16_t>(x & 0xFFFF));
  };
  auto diff = [](double now, double prev) {
    return std::remainder(now - prev, 65536.0);
  };
  std::mt19937 rng(31);
  std::uniform_int_distribution<std::int64_t> pos(-2'000'000, 2'000'000);
  std::uniform_int_distribution<int> step(-30000, 30000);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t p0 = pos(rng);
    const int d = step(rng);
    const std::int64_t p1 = p0 + d;
    const double recovered = diff(wrap16(p1), wrap16(p0));
    EXPECT_NEAR(recovered, d, 1e-9) << "p0=" << p0 << " d=" << d;
  }
}

}  // namespace
}  // namespace iecd
