#include "model/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace iecd::model {

StepMetrics analyze_step(const SampleLog& response, double reference,
                         double step_time, double initial, double band) {
  StepMetrics m;
  if (response.empty()) return m;
  const double step = reference - initial;
  if (step == 0.0) return m;

  const double lo_level = initial + 0.1 * step;
  const double hi_level = initial + 0.9 * step;
  double t_lo = -1.0;
  double t_hi = -1.0;
  double peak = initial;
  double last_out_of_band = step_time;
  const double band_abs = std::abs(step) * band;

  for (std::size_t i = 0; i < response.size(); ++i) {
    const double t = response.time_at(i);
    if (t < step_time) continue;
    const double y = response.value_at(i);
    const double toward = (step > 0) ? y : -y;
    if (t_lo < 0 && toward >= ((step > 0) ? lo_level : -lo_level)) t_lo = t;
    if (t_hi < 0 && toward >= ((step > 0) ? hi_level : -hi_level)) t_hi = t;
    if (std::abs(y - initial) > std::abs(peak - initial)) peak = y;
    if (std::abs(y - reference) > band_abs) last_out_of_band = t;
  }

  m.peak_value = peak;
  if (t_lo >= 0 && t_hi >= 0) m.rise_time = t_hi - t_lo;
  const double over = (step > 0) ? peak - reference : reference - peak;
  m.overshoot_percent = std::max(0.0, over / std::abs(step) * 100.0);
  m.settling_time = last_out_of_band - step_time;
  m.settled =
      std::abs(response.last_value() - reference) <= band_abs;

  // Steady-state error from the final 10% of the record.
  const std::size_t tail_start = response.size() * 9 / 10;
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = tail_start; i < response.size(); ++i) {
    acc += response.value_at(i);
    ++n;
  }
  if (n) m.steady_state_error = std::abs(reference - acc / static_cast<double>(n));
  return m;
}

namespace {

template <typename ErrFn>
double integrate_error(const SampleLog& response, ErrFn err) {
  double acc = 0.0;
  for (std::size_t i = 1; i < response.size(); ++i) {
    const double dt = response.time_at(i) - response.time_at(i - 1);
    const double e0 = err(i - 1);
    const double e1 = err(i);
    acc += 0.5 * (e0 + e1) * dt;
  }
  return acc;
}

}  // namespace

double integral_absolute_error(const SampleLog& response,
                               const SampleLog& reference) {
  return integrate_error(response, [&](std::size_t i) {
    return std::abs(reference.sample(response.time_at(i)) -
                    response.value_at(i));
  });
}

double integral_absolute_error(const SampleLog& response, double reference) {
  return integrate_error(response, [&](std::size_t i) {
    return std::abs(reference - response.value_at(i));
  });
}

double integral_squared_error(const SampleLog& response, double reference) {
  return integrate_error(response, [&](std::size_t i) {
    const double e = reference - response.value_at(i);
    return e * e;
  });
}

double integral_time_absolute_error(const SampleLog& response,
                                    double reference) {
  return integrate_error(response, [&](std::size_t i) {
    return response.time_at(i) * std::abs(reference - response.value_at(i));
  });
}

}  // namespace iecd::model
