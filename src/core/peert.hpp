/// \file peert.hpp
/// PEERT — the Processor Expert Real-Time Target for the code generator
/// (paper Section 5).  A thin, named front over the generator configured
/// with the PEERT hook pipeline; PEERT_PIL is the same target with the
/// processor-in-the-loop code variant selected (Section 6).
#pragma once

#include "beans/bean_project.hpp"
#include "codegen/generator.hpp"
#include "model/subsystem.hpp"

namespace iecd::core {

class PeertTarget {
 public:
  struct BuildResult {
    codegen::GeneratedApplication app;
    util::DiagnosticList diagnostics;
    bool ok() const { return !diagnostics.has_errors(); }
  };

  PeertTarget();

  /// Builds the embedded application from the controller subsystem
  /// ("the code is of course generated for the controller subsystem only").
  BuildResult build(model::Subsystem& controller, beans::BeanProject& project,
                    const std::string& app_name = "servo",
                    bool fixed_point = false);

  /// Builds the PIL code variant, registering the exchanged signals in
  /// \p buffer.
  BuildResult build_pil(model::Subsystem& controller,
                        beans::BeanProject& project,
                        codegen::SignalBuffer& buffer,
                        const std::string& app_name = "servo_pil",
                        bool fixed_point = false);

  codegen::Generator& generator() { return generator_; }

 private:
  codegen::Generator generator_;
};

}  // namespace iecd::core
