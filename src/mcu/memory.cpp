#include "mcu/memory.hpp"

#include "util/strings.hpp"

namespace iecd::mcu {

void MemoryMap::charge_flash(std::uint32_t bytes, const std::string& what) {
  flash_used_ += bytes;
  breakdown_ += util::format("flash %6u B  %s\n", bytes, what.c_str());
}

void MemoryMap::charge_ram(std::uint32_t bytes, const std::string& what) {
  ram_used_ += bytes;
  breakdown_ += util::format("ram   %6u B  %s\n", bytes, what.c_str());
}

double MemoryMap::flash_utilisation() const {
  return capacity_.flash_bytes
             ? static_cast<double>(flash_used_) / capacity_.flash_bytes
             : 0.0;
}

double MemoryMap::ram_utilisation() const {
  return capacity_.ram_bytes
             ? static_cast<double>(ram_used_) / capacity_.ram_bytes
             : 0.0;
}

void MemoryMap::validate(util::DiagnosticList& diagnostics) const {
  if (flash_used_ > capacity_.flash_bytes) {
    diagnostics.error("mcu.memory",
                      util::format("flash overflow: %u B used, %u B available",
                                   flash_used_, capacity_.flash_bytes));
  }
  if (ram_used_ > capacity_.ram_bytes) {
    diagnostics.error("mcu.memory",
                      util::format("RAM overflow: %u B used, %u B available",
                                   ram_used_, capacity_.ram_bytes));
  }
}

std::string MemoryMap::report() const {
  return util::format("flash %u/%u B (%.1f%%), ram %u/%u B (%.1f%%)\n",
                      flash_used_, capacity_.flash_bytes,
                      flash_utilisation() * 100.0, ram_used_,
                      capacity_.ram_bytes, ram_utilisation() * 100.0) +
         breakdown_;
}

void MemoryMap::reset() {
  flash_used_ = 0;
  ram_used_ = 0;
  breakdown_.clear();
}

}  // namespace iecd::mcu
