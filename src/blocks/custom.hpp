/// \file custom.hpp
/// User-defined function block (s-function analog): wraps an arbitrary
/// callable as a block — handy for plant nonlinearities and tests.
#pragma once

#include <functional>
#include <vector>

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::SimContext;

class FunctionBlock : public Block {
 public:
  using Fn = std::function<double(const std::vector<double>&, double t)>;

  FunctionBlock(std::string name, int inputs, Fn fn);
  const char* type_name() const override { return "S-Function"; }
  void output(const SimContext& ctx) override;
  mcu::OpCounts step_ops(bool fixed_point) const override;
  /// Declares what the wrapped function costs on the target (defaults to a
  /// handful of ALU ops).
  void set_step_ops(mcu::OpCounts ops) { ops_ = ops; }

 private:
  Fn fn_;
  mcu::OpCounts ops_;
  mutable std::vector<double> args_;
};

}  // namespace iecd::blocks
