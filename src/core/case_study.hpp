/// \file case_study.hpp
/// The paper's Section 7 application, assembled with the public API: speed
/// control of a DC motor actuated by PWM, fed back through an incremental
/// encoder on the quadrature decoder, with a push-button keyboard for the
/// set-point and the manual/automatic mode, on a 16-bit DSC without an
/// FPU.  The class drives the whole development cycle of Fig. 6.1:
/// MIL simulation, PEERT code generation, PIL co-simulation over RS232 and
/// HIL execution against the peripheral-level plant.
#pragma once

#include <memory>

#include "beans/bean_project.hpp"
#include "blocks/discrete.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "core/peert.hpp"
#include "model/engine.hpp"
#include "obs/monitor.hpp"
#include "model/metrics.hpp"
#include "model/statechart.hpp"
#include "pil/pil_session.hpp"
#include "plant/dc_motor.hpp"
#include "plant/encoder.hpp"
#include "rt/runtime.hpp"

namespace iecd::fault {
class FaultInjector;
}

namespace iecd::core {

struct ServoConfig {
  std::string derivative = mcu::kDefaultDerivative;
  double period_s = 0.001;        ///< control (sample) period
  double setpoint = 100.0;        ///< speed set-point [rad/s]
  double setpoint_time = 0.05;    ///< step instant [s]
  double duration_s = 1.0;
  bool fixed_point = false;       ///< quantize controller signals to 16 bit
  double kp = 0.004;              ///< PI proportional gain [duty / rad/s]
  double ki = 0.12;               ///< PI integral gain
  double manual_duty = 0.2;       ///< duty in manual mode
  double pwm_frequency_hz = 20000.0;
  int encoder_lines = 100;
  int speed_filter_taps = 8;
  /// MIL hardware fidelity of the PE blocks.  false = the "trivial
  /// pass-through" simulation other code-generation targets offer (the
  /// ablation of the paper's fidelity claim); target/PIL/HIL behaviour is
  /// never affected.
  bool mil_hw_fidelity = true;
  plant::DcMotorParams motor;
};

/// The assembled single-model application plus its bean project.
class ServoSystem {
 public:
  explicit ServoSystem(ServoConfig config);

  const ServoConfig& config() const { return config_; }
  model::Model& top() { return top_; }
  model::Subsystem& controller() { return *controller_; }
  model::Subsystem& plant_subsystem() { return *plant_; }
  beans::BeanProject& project() { return project_; }
  ModelSync& sync() { return *sync_; }

  QuadDecPeBlock& qdec_block() { return *qdec_block_; }
  PwmPeBlock& pwm_block() { return *pwm_block_; }
  /// MIL plant block (e.g. to attach a load-torque disturbance before
  /// run_mil(); PIL/HIL use their own DcMotorSim instances).
  plant::DcMotorBlock& motor_block() { return *motor_block_; }
  BitIoPeBlock& key_mode_block() { return *key_mode_; }
  BitIoPeBlock& key_up_block() { return *key_up_; }
  model::StateChart& mode_chart() { return *mode_chart_; }
  model::FunctionCallSubsystem& setpoint_bump() { return *sp_up_; }
  blocks::DiscretePidBlock& pid() { return *pid_; }

  /// Expert-system pass over the bean project.
  util::DiagnosticList validate() { return project_.validate(); }

  // ------------------------------------------------------------- phases

  struct MilResult {
    model::SampleLog speed;
    model::SampleLog duty;
    model::StepMetrics metrics;
    double iae = 0.0;
  };
  /// Model-in-the-loop: the closed loop entirely inside the engine.
  MilResult run_mil();

  /// Code generation through the PEERT target.
  PeertTarget::BuildResult build_target(const std::string& app_name = "servo");

  struct HilOptions {
    double duration_s = 0.0;  ///< 0: use config duration
    /// Deterministic activation jitter injected into the sample timer.
    std::function<sim::SimTime(std::uint64_t)> timer_jitter;
    /// Extra input-output latency charged to every control step [cycles].
    std::uint64_t extra_latency_cycles = 0;
    /// Press the set-point button at these times (exercises the
    /// event-driven task path).
    std::vector<sim::SimTime> key_up_presses;
    /// Online observability: when set, the runtime's dispatch path feeds
    /// per-task TimingMonitors in this hub, the hub's poll (one per control
    /// period) tracks event-queue depth, and deadline misses trigger the
    /// flight recorder.  Passive — attaching a hub does not change the
    /// simulated trajectory.
    obs::MonitorHub* monitors = nullptr;
    /// Fault injection (see src/fault/): wires interrupt-latency spikes,
    /// task overruns, encoder glitches and load-torque disturbance pulses
    /// into this run.  Null — or an injector whose plan is empty — leaves
    /// the run bit-identical to an unwired one.
    fault::FaultInjector* faults = nullptr;
  };
  struct HilResult {
    model::SampleLog speed;
    model::StepMetrics metrics;
    double iae = 0.0;
    double exec_us_mean = 0.0;
    double exec_us_max = 0.0;
    double response_us_max = 0.0;
    double jitter_us = 0.0;
    double cpu_utilisation = 0.0;
    std::uint32_t observed_stack_bytes = 0;
    std::uint64_t activations = 0;
    std::uint64_t overruns = 0;
    codegen::MemoryEstimate memory;
    std::string profile_report;
    /// Per-activation copies of the periodic task's profile series:
    /// activation start instants [s], ISR body execution [us] and dispatch
    /// wait raise->start [us].  Reference data for cross-checking the
    /// online histograms against exact sorted-sample statistics.
    util::SampleSeries start_s;
    util::SampleSeries exec_us;
    util::SampleSeries wait_us;
  };
  /// Hardware-in-the-loop: generated code on the simulated MCU, plant
  /// coupled at the peripheral level (PWM duty -> motor, encoder -> QDEC).
  HilResult run_hil(const HilOptions& options);
  HilResult run_hil() { return run_hil(HilOptions{}); }

  struct PilRunOptions {
    std::uint32_t baud = 115200;  ///< bit clock (SPI: SCK frequency)
    double duration_s = 0.0;      ///< 0: use config duration
    pil::PilSession::LinkKind link = pil::PilSession::LinkKind::kRs232;
    /// Control steps per exchanged frame (1 = classic per-period exchange).
    int batch = 1;
    /// Online observability (see HilOptions::monitors): per-exchange RTT
    /// monitor, UART TX FIFO watermark, resync/overrun anomaly triggers.
    obs::MonitorHub* monitors = nullptr;
    /// Fault injection (see src/fault/): wires serial byte faults on both
    /// link directions, PIL frame truncation/delay, interrupt-latency
    /// spikes and task overruns.  Null or empty-plan: bit-identical run.
    fault::FaultInjector* faults = nullptr;
    /// Timeout/retransmit recovery for the exchange protocol
    /// (HostEndpoint::Recovery); disabled by default.
    pil::HostEndpoint::Recovery recovery;
  };
  struct PilResult {
    model::SampleLog speed;
    model::StepMetrics metrics;
    double iae = 0.0;
    pil::PilReport report;
  };
  /// Processor-in-the-loop: PIL code variant on the board, plant model on
  /// the simulator PC, RS232 in between (Fig. 6.2).
  PilResult run_pil(const PilRunOptions& options);
  PilResult run_pil() { return run_pil(PilRunOptions{}); }

 private:
  void build_controller();
  void build_plant();
  void apply_fixed_point_types();

  ServoConfig config_;
  model::Model top_;
  beans::BeanProject project_;
  model::Subsystem* controller_ = nullptr;
  model::Subsystem* plant_ = nullptr;
  std::unique_ptr<ModelSync> sync_;
  PeertTarget target_;

  // Controller interior handles.
  QuadDecPeBlock* qdec_block_ = nullptr;
  PwmPeBlock* pwm_block_ = nullptr;
  BitIoPeBlock* key_mode_ = nullptr;
  BitIoPeBlock* key_up_ = nullptr;
  TimerIntPeBlock* timer_block_ = nullptr;
  model::StateChart* mode_chart_ = nullptr;
  model::FunctionCallSubsystem* sp_up_ = nullptr;
  blocks::DiscretePidBlock* pid_ = nullptr;
  blocks::StepBlock* setpoint_ = nullptr;

  // Top-level handles.
  plant::DcMotorBlock* motor_block_ = nullptr;
  blocks::ScopeBlock* speed_scope_ = nullptr;
  blocks::ScopeBlock* duty_scope_ = nullptr;
};

}  // namespace iecd::core
