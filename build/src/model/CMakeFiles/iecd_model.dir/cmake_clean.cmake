file(REMOVE_RECURSE
  "CMakeFiles/iecd_model.dir/block.cpp.o"
  "CMakeFiles/iecd_model.dir/block.cpp.o.d"
  "CMakeFiles/iecd_model.dir/engine.cpp.o"
  "CMakeFiles/iecd_model.dir/engine.cpp.o.d"
  "CMakeFiles/iecd_model.dir/logging.cpp.o"
  "CMakeFiles/iecd_model.dir/logging.cpp.o.d"
  "CMakeFiles/iecd_model.dir/metrics.cpp.o"
  "CMakeFiles/iecd_model.dir/metrics.cpp.o.d"
  "CMakeFiles/iecd_model.dir/model.cpp.o"
  "CMakeFiles/iecd_model.dir/model.cpp.o.d"
  "CMakeFiles/iecd_model.dir/statechart.cpp.o"
  "CMakeFiles/iecd_model.dir/statechart.cpp.o.d"
  "CMakeFiles/iecd_model.dir/subsystem.cpp.o"
  "CMakeFiles/iecd_model.dir/subsystem.cpp.o.d"
  "CMakeFiles/iecd_model.dir/value.cpp.o"
  "CMakeFiles/iecd_model.dir/value.cpp.o.d"
  "libiecd_model.a"
  "libiecd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
