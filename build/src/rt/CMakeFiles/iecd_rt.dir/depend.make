# Empty dependencies file for iecd_rt.
# This may be replaced when dependencies are built.
