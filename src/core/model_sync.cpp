#include "core/model_sync.hpp"

namespace iecd::core {

ModelSync::ModelSync(model::Model& controller_model,
                     beans::BeanProject& project)
    : model_(controller_model), project_(project) {
  observer_id_ = project_.add_observer(
      [this](beans::ProjectChange change, const std::string& bean,
             const std::string& detail) {
        on_project_change(change, bean, detail);
      });
}

ModelSync::~ModelSync() { project_.remove_observer(observer_id_); }

template <typename BlockT, typename BeanT>
BlockT& ModelSync::add_pair(const std::string& name) {
  propagating_ = true;
  BeanT& bean = project_.add<BeanT>(name);
  propagating_ = false;
  ++propagations_;
  // The block and its bean share the instance name — one identity in both
  // tools, exactly as PEERT presents it.
  return model_.add<BlockT>(name, bean);
}

AdcPeBlock& ModelSync::add_adc(const std::string& name) {
  return add_pair<AdcPeBlock, beans::AdcBean>(name);
}

PwmPeBlock& ModelSync::add_pwm(const std::string& name) {
  return add_pair<PwmPeBlock, beans::PwmBean>(name);
}

TimerIntPeBlock& ModelSync::add_timer_int(const std::string& name) {
  return add_pair<TimerIntPeBlock, beans::TimerIntBean>(name);
}

QuadDecPeBlock& ModelSync::add_quad_dec(const std::string& name) {
  return add_pair<QuadDecPeBlock, beans::QuadDecBean>(name);
}

BitIoPeBlock& ModelSync::add_bit_io(const std::string& name) {
  return add_pair<BitIoPeBlock, beans::BitIoBean>(name);
}

bool ModelSync::remove_pe_block(const std::string& name) {
  if (!model_.find(name)) return false;
  model_.remove(name);
  propagating_ = true;
  const bool removed = project_.remove(name);
  propagating_ = false;
  if (removed) ++propagations_;
  return removed;
}

bool ModelSync::rename_pe_block(const std::string& old_name,
                                const std::string& new_name) {
  if (!model_.find(old_name)) return false;
  if (!model_.rename(old_name, new_name)) return false;
  propagating_ = true;
  const bool renamed = project_.rename(old_name, new_name);
  propagating_ = false;
  if (renamed) ++propagations_;
  return renamed;
}

util::DiagnosticList ModelSync::set_block_property(
    const std::string& block, const std::string& property,
    const beans::PropertyValue& value) {
  // Route through the project so the whole expert system re-verifies
  // immediately — the Bean Inspector behaviour of Fig. 4.1.
  return project_.set_property(block, property, value);
}

void ModelSync::on_project_change(beans::ProjectChange change,
                                  const std::string& bean_name,
                                  const std::string& detail) {
  if (propagating_) return;  // our own edit echoing back
  switch (change) {
    case beans::ProjectChange::kRenamed:
      // PE-side rename: mirror onto the block.
      if (model_.find(bean_name)) {
        model_.rename(bean_name, detail);
        ++propagations_;
      }
      break;
    case beans::ProjectChange::kRemoved:
      if (model_.find(bean_name)) {
        model_.remove(bean_name);
        ++propagations_;
      }
      break;
    default:
      break;  // adds from the PE side appear once a block references them
  }
}

}  // namespace iecd::core
