/// \file host_endpoint.hpp
/// Simulator-PC side of the PIL bench (Fig. 6.2): at each control period it
/// samples the plant model, ships the sensor frame down the serial line,
/// and applies the actuator frame coming back.  The plant and the board
/// exchange data "at the end of each simulation step (control period)".
///
/// Fast path: the endpoint reuses one set of encode/decode scratch buffers
/// for the whole session (no heap traffic per exchange), receives the
/// response as a whole burst (one event per frame instead of one per
/// byte), and — with batch > 1 — packs several control steps into a single
/// frame, trading per-step actuation latency for wire efficiency.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/monitor.hpp"
#include "pil/frame.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"
#include "util/statistics.hpp"

namespace iecd::pil {

class HostEndpoint {
 public:
  /// Timeout/retransmit recovery for lossy links (fault campaigns; see
  /// src/fault/).  Disabled by default — a disabled Recovery leaves the
  /// endpoint bit-identical to the pre-recovery protocol.  When enabled,
  /// an exchange that has not been answered within \p timeout is
  /// retransmitted with the SAME sequence number (the board's duplicate
  /// cache replays its response without re-stepping the controller), the
  /// timeout backing off exponentially up to \p backoff_cap.  After
  /// \p max_retransmits unanswered copies the exchange is abandoned: the
  /// plant holds the last applied actuator output (safe state) until the
  /// next exchange or a late response supersedes it.
  ///
  /// Deployment note: retransmission is only useful when the round trip
  /// fits well inside the exchange interval — on a link where RTT exceeds
  /// the period (e.g. 115200 baud at a 1 ms period) a sub-period timeout
  /// would retransmit healthy exchanges; use a faster link or leave
  /// recovery off there.
  struct Recovery {
    bool enabled = false;
    sim::SimTime timeout = 0;      ///< first timeout; 0 = interval / 2
    int max_retransmits = 2;       ///< copies after the original send
    double backoff = 2.0;          ///< timeout multiplier per retransmit
    sim::SimTime backoff_cap = 0;  ///< ceiling; 0 = the exchange interval
  };

  struct Options {
    sim::SimTime period = sim::milliseconds(1);  ///< control period
    sim::SimTime start = 0;
    /// Control steps per frame.  1 = classic per-period exchange
    /// (bit-identical to the unbatched protocol); N packs N samples into
    /// one frame and fires the exchange every N periods.
    int batch = 1;
    Recovery recovery;
  };

  /// \p tx: channel toward the board, \p rx: channel from the board.
  HostEndpoint(sim::World& world, sim::SerialChannel& tx,
               sim::SerialChannel& rx, Options options);

  /// Plant coupling: \p sample reads the plant outputs, \p apply writes
  /// the actuator values, \p advance integrates the plant model up to the
  /// given time [s].
  void set_plant(std::function<std::vector<double>()> sample,
                 std::function<void(const std::vector<double>&)> apply,
                 std::function<void(double)> advance);

  /// Allocation-free plant coupling: \p sample_into appends the plant
  /// outputs to the scratch vector it is handed (cleared by the caller).
  void set_plant_buffered(
      std::function<void(std::vector<double>&)> sample_into,
      std::function<void(const std::vector<double>&)> apply,
      std::function<void(double)> advance);

  /// Starts the periodic exchange.
  void start();
  void stop() { running_ = false; }

  const util::SampleSeries& round_trip_us() const { return rtt_us_; }
  std::uint64_t exchanges() const { return exchanges_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  std::uint64_t crc_errors() const { return decoder_.crc_errors(); }
  const FrameDecoder& decoder() const { return decoder_; }

  /// Recovery statistics (all zero while Recovery.enabled is false).
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t recovered_exchanges() const { return recoveries_; }
  std::uint64_t exchanges_abandoned() const { return abandoned_; }
  /// Latency of each recovered exchange: original send -> matched
  /// response, in microseconds (only exchanges that needed >= 1
  /// retransmit contribute).
  const util::SampleSeries& recovery_us() const { return recovery_us_; }

  /// Online observability: when set, every matched response feeds its
  /// per-sequence round trip (send instant -> decoded arrival) into
  /// \p monitor, keyed on the send instant for jitter tracking.  Null
  /// detaches; passive either way.
  void set_rtt_monitor(obs::TimingMonitor* monitor) { rtt_monitor_ = monitor; }

  /// Like set_rtt_monitor, for recovered exchanges only: release/start is
  /// the original send, completion the response that finally matched.
  void set_recovery_monitor(obs::TimingMonitor* monitor) {
    recovery_monitor_ = monitor;
  }

  /// Fault-injection hook (see src/fault/): consulted once per wire send
  /// (original and retransmit).  truncate_to clips the frame on the wire
  /// (the receiver's decoder resynchronizes on the next SOF); delay defers
  /// the send.  Null or a {SIZE_MAX, 0} answer leaves sends untouched.
  struct TxFault {
    std::size_t truncate_to = SIZE_MAX;
    sim::SimTime delay = 0;
  };
  using TxFaultHook = std::function<TxFault(std::size_t frame_len)>;
  void set_tx_fault_hook(TxFaultHook hook) { tx_fault_hook_ = std::move(hook); }

 private:
  void exchange();
  void on_frame(const Frame& frame);
  void note_sent(std::uint8_t seq, sim::SimTime when);
  void transmit_faulted(const std::vector<std::uint8_t>& bytes);
  void arm_timeout();
  void on_timeout(std::uint64_t generation);
  sim::SimTime exchange_interval() const {
    return options_.period * static_cast<sim::SimTime>(options_.batch);
  }

  sim::World& world_;
  sim::SerialChannel& tx_;
  Options options_;
  std::function<void(std::vector<double>&)> sample_into_;
  std::function<void(const std::vector<double>&)> apply_;
  std::function<void(double)> advance_;
  FrameDecoder decoder_;
  bool running_ = false;
  sim::EventId exchange_event_ = 0;
  bool awaiting_response_ = false;
  std::uint8_t seq_ = 0;
  util::SampleSeries rtt_us_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t deadline_misses_ = 0;
  obs::TimingMonitor* rtt_monitor_ = nullptr;

  /// Recovery state for the outstanding exchange (Recovery.enabled only).
  std::uint64_t retransmits_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t abandoned_ = 0;
  util::SampleSeries recovery_us_;
  obs::TimingMonitor* recovery_monitor_ = nullptr;
  TxFaultHook tx_fault_hook_;
  std::uint8_t pending_seq_ = 0;        ///< seq the timeout watches
  sim::SimTime pending_sent_ = 0;       ///< original send instant
  int pending_retransmits_ = 0;         ///< copies sent for this exchange
  sim::SimTime current_timeout_ = 0;    ///< next timeout delay (backoff)
  sim::EventId timeout_event_ = 0;
  std::uint64_t exchange_generation_ = 0;  ///< guards stale timeout events

  /// Session-lifetime scratch: reused every exchange.
  std::vector<double> sample_values_;
  std::vector<std::uint8_t> tx_payload_;
  std::vector<std::uint8_t> tx_bytes_;
  std::vector<double> apply_values_;

  /// Outstanding sensor frames, FIFO.  Responses come back in order, so
  /// the round trip of response seq s is measured against the OLDEST
  /// unanswered send with that seq — correct even when a slow line builds
  /// a backlog deeper than the 8-bit sequence space (the aliasing that
  /// produced the non-monotonic RTT-vs-baud anomaly in E3).
  struct SentEntry {
    std::uint8_t seq = 0;
    sim::SimTime when = 0;
  };
  std::vector<SentEntry> sent_ring_;
  std::size_t sent_head_ = 0;
  std::size_t sent_tail_ = 0;  ///< == head means empty
};

}  // namespace iecd::pil
