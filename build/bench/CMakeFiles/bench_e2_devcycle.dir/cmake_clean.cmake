file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_devcycle.dir/bench_e2_devcycle.cpp.o"
  "CMakeFiles/bench_e2_devcycle.dir/bench_e2_devcycle.cpp.o.d"
  "bench_e2_devcycle"
  "bench_e2_devcycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_devcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
