/// \file export.hpp
/// Trace exporters.  The Chrome trace-event JSON output loads directly in
/// Perfetto / chrome://tracing: every trace track (a `sim::Component`, the
/// CPU, the PIL host...) becomes one "process" row, spans render as slices,
/// counters as counter tracks and instants as marks.  All formatting is
/// deterministic — identical runs export byte-identical files, which the
/// regression tests rely on.
#pragma once

#include <ostream>
#include <string>

#include "trace/trace.hpp"

namespace iecd::trace {

/// Writes the recorder's live events as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`).  Timestamps are microseconds of simulated
/// time with nanosecond precision.  Returns the number of events the ring
/// overwrote before export (0 = the file holds the complete run); when
/// events were dropped a "trace_dropped_events" metadata record carries
/// the count into the exported file itself.
std::uint64_t write_chrome_trace(const TraceRecorder& recorder,
                                 std::ostream& os);
std::string to_chrome_trace(const TraceRecorder& recorder);

/// Writes events as CSV: seq,type,category,name,track,time_ns,dur_ns,value.
/// Returns the dropped-event count (see write_chrome_trace); a non-zero
/// count additionally emits a leading `# dropped ...` comment line.
std::uint64_t write_csv(const TraceRecorder& recorder, std::ostream& os);
std::string to_csv(const TraceRecorder& recorder);

/// Convenience: exports Chrome trace JSON to \p path.  Returns false if
/// the file cannot be opened.
bool export_chrome_trace_file(const TraceRecorder& recorder,
                              const std::string& path);

}  // namespace iecd::trace
