/// \file metrics.hpp
/// MetricsRegistry: one named home for the counters, gauges, sample series
/// and histograms that `rt::Profiler`, `pil::PilReport` and the benches
/// each used to reinvent.  Storage is `std::map`-backed so references
/// handed out stay stable and every rendering (text report, CSV) iterates
/// in deterministic name order.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/statistics.hpp"

namespace iecd::trace {

class MetricsRegistry {
 public:
  /// Monotonic event count.
  struct Counter {
    std::uint64_t value = 0;
    void increment(std::uint64_t by = 1) { value += by; }
  };

  // ------------------------------------------------- get-or-create handles
  // References remain valid for the registry's lifetime (node-based maps).
  Counter& counter(const std::string& name);
  double& gauge(const std::string& name);
  util::RunningStats& stats(const std::string& name);
  util::SampleSeries& series(const std::string& name);
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  // ------------------------------------------------------- const lookups
  const Counter* find_counter(const std::string& name) const;
  const double* find_gauge(const std::string& name) const;
  const util::RunningStats* find_stats(const std::string& name) const;
  const util::SampleSeries* find_series(const std::string& name) const;
  const util::Histogram* find_histogram(const std::string& name) const;

  bool empty() const;
  void clear();

  /// Folds another registry in (parallel or phase-wise collection).
  /// Counters add, gauges overwrite, stats merge, series concatenate;
  /// histograms are merged bin-wise when shapes match (else kept as-is).
  void merge(const MetricsRegistry& other);

  /// Deterministic human-readable report, one line per metric, sorted.
  std::string report() const;

  /// Deterministic CSV: metric,kind,count,value,mean,stddev,min,max,p50,p99
  void write_csv(std::ostream& os) const;
  std::string to_csv() const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, util::RunningStats>& all_stats() const {
    return stats_;
  }
  const std::map<std::string, util::SampleSeries>& all_series() const {
    return series_;
  }
  const std::map<std::string, util::Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, util::RunningStats> stats_;
  std::map<std::string, util::SampleSeries> series_;
  std::map<std::string, util::Histogram> histograms_;
};

}  // namespace iecd::trace
