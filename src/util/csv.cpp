#include "util/csv.hpp"

#include <cstdio>

namespace iecd::util {

std::string csv_escape(const std::string& field, char sep) {
  const bool needs_quote =
      field.find(sep) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out_ << sep_;
    out_ << csv_escape(f, sep_);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::header(std::initializer_list<std::string> names) {
  write_fields(std::vector<std::string>(names));
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  write_fields(std::vector<std::string>(fields));
}

void CsvWriter::row_numeric(std::initializer_list<double> values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[32];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields.emplace_back(buf);
  }
  write_fields(fields);
}

}  // namespace iecd::util
