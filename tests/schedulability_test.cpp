#include <gtest/gtest.h>

#include "beans/capture_bean.hpp"
#include "core/case_study.hpp"
#include "mcu/derivative.hpp"
#include "periph/capture.hpp"
#include "periph/pwm.hpp"
#include "rt/schedulability.hpp"

namespace iecd::rt {
namespace {

codegen::GeneratedApplication make_app(double period_s, double step_wcet_s,
                                       const mcu::DerivativeSpec& cpu,
                                       double event_wcet_s = 0.0) {
  codegen::GeneratedApplication app;
  app.derivative = cpu.name;
  codegen::TaskSpec step;
  step.name = "step";
  step.trigger = codegen::TaskSpec::Trigger::kPeriodic;
  step.period_s = period_s;
  step.extra_cycles = static_cast<std::uint64_t>(step_wcet_s * cpu.clock_hz);
  app.tasks.push_back(step);
  if (event_wcet_s > 0) {
    codegen::TaskSpec evt;
    evt.name = "evt";
    evt.trigger = codegen::TaskSpec::Trigger::kEvent;
    evt.event_bean = "Key";
    evt.event_name = "OnInterrupt";
    evt.extra_cycles =
        static_cast<std::uint64_t>(event_wcet_s * cpu.clock_hz);
    app.tasks.push_back(evt);
  }
  return app;
}

TEST(Schedulability, LightLoadIsSchedulable) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  const auto app = make_app(0.001, 100e-6, cpu);
  const auto report = analyze_schedulability(app, cpu);
  EXPECT_TRUE(report.schedulable);
  EXPECT_NEAR(report.utilisation, 0.1, 0.02);
  ASSERT_EQ(report.tasks.size(), 1u);
  EXPECT_TRUE(report.tasks[0].bounded);
  // Alone on the CPU: response == its own WCET.
  EXPECT_NEAR(report.tasks[0].response_bound_s, report.tasks[0].wcet_s,
              1e-12);
}

TEST(Schedulability, OverloadIsRejected) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  const auto app = make_app(0.001, 1.5e-3, cpu);  // WCET > period
  const auto report = analyze_schedulability(app, cpu);
  EXPECT_FALSE(report.schedulable);
  EXPECT_GT(report.utilisation, 1.0);
}

TEST(Schedulability, EventTaskBlocksThePeriodicStep) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  // 400 us step + 300 us event task: non-preemptive blocking pushes the
  // step's response to ~700 us, still inside the 1 ms deadline.
  const auto app = make_app(0.001, 400e-6, cpu, 300e-6);
  const auto report =
      analyze_schedulability(app, cpu, {{"evt", 0.01}});
  EXPECT_TRUE(report.schedulable);
  const auto& step = report.tasks[0];
  EXPECT_GT(step.response_bound_s, 650e-6);
  EXPECT_LT(step.response_bound_s, 0.001);
}

TEST(Schedulability, BlockingAloneCanBreakATightDeadline) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  // 400 us step at 0.5 ms period + 300 us blocking event: 0.7 ms > 0.5 ms.
  const auto app = make_app(0.0005, 400e-6, cpu, 300e-6);
  const auto report =
      analyze_schedulability(app, cpu, {{"evt", 0.01}});
  EXPECT_FALSE(report.schedulable);
  EXPECT_FALSE(report.tasks[0].deadline_met);
}

TEST(Schedulability, SporadicWithoutRateStillGetsOwnBound) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  const auto app = make_app(0.001, 200e-6, cpu, 100e-6);
  const auto report = analyze_schedulability(app, cpu);  // no rate given
  ASSERT_EQ(report.tasks.size(), 2u);
  const auto& evt = report.tasks[1];
  EXPECT_TRUE(evt.bounded);
  // Event task: blocked by the step + interfered by it (higher priority).
  EXPECT_GT(evt.response_bound_s, evt.wcet_s);
  EXPECT_EQ(evt.period_s, 0.0);
}

TEST(Schedulability, AnalysisBoundCoversObservedHilResponses) {
  // Cross-validation: the analytic worst case must dominate everything the
  // simulator actually measures.
  core::ServoConfig cfg;
  cfg.duration_s = 0.5;
  core::ServoSystem servo(cfg);
  auto build = servo.build_target("servo");
  ASSERT_TRUE(build.ok());
  const auto& cpu = mcu::find_derivative(cfg.derivative);
  const auto report =
      analyze_schedulability(build.app, cpu, {{"KeyUp_OnInterrupt", 0.05}});
  EXPECT_TRUE(report.schedulable);

  const auto hil = servo.run_hil();
  const double observed_response_s =
      (hil.exec_us_max + hil.response_us_max) * 1e-6;
  const auto& step = report.tasks[0];
  EXPECT_GE(step.response_bound_s + 1e-9, observed_response_s);
  // And the bound is not absurdly loose: same order of magnitude.
  EXPECT_LT(step.response_bound_s, 10 * observed_response_s + 1e-3);
}

TEST(Schedulability, AnalysisBoundCoversTimingMonitorWorstCase) {
  // Same cross-validation through the online observability path: the
  // per-task TimingMonitor measures worst-case response (completion -
  // release) directly at dispatch retirement, so the analytic bound must
  // dominate it without any scalar reassembly.
  core::ServoConfig cfg;
  cfg.duration_s = 0.5;
  core::ServoSystem servo(cfg);
  auto build = servo.build_target("servo_hil");
  ASSERT_TRUE(build.ok());
  const auto& cpu = mcu::find_derivative(cfg.derivative);
  const auto report =
      analyze_schedulability(build.app, cpu, {{"KeyUp_OnInterrupt", 0.05}});
  EXPECT_TRUE(report.schedulable);

  obs::MonitorHub hub;
  core::ServoSystem::HilOptions options;
  options.monitors = &hub;
  // Exercise the event-driven task path too, so the sporadic task's bound
  // is checked against a real activation.
  options.key_up_presses = {sim::from_seconds(0.2), sim::from_seconds(0.3)};
  servo.run_hil(options);

  const obs::TimingMonitor* step = hub.find_timing("servo_hil_step");
  ASSERT_NE(step, nullptr);
  EXPECT_GT(step->activations(), 0u);
  EXPECT_EQ(step->deadline_misses(), 0u);
  const double observed_s = step->worst_response_us() * 1e-6;
  ASSERT_FALSE(report.tasks.empty());
  const auto& analytic_step = report.tasks[0];
  EXPECT_GE(analytic_step.response_bound_s + 1e-9, observed_s);
  // Tightness: the analytic worst case stays within an order of magnitude
  // of what the monitor actually saw.
  EXPECT_LT(analytic_step.response_bound_s, 10 * observed_s + 1e-3);

  // The sporadic key task's measured worst response obeys its bound too.
  const obs::TimingMonitor* key = hub.find_timing("KeyUp_OnInterrupt");
  if (key != nullptr && key->activations() > 0) {
    for (const auto& task : report.tasks) {
      if (task.name == "KeyUp_OnInterrupt" && task.bounded) {
        EXPECT_GE(task.response_bound_s + 1e-9,
                  key->worst_response_us() * 1e-6);
      }
    }
  }
}

TEST(Schedulability, ReportRendersAllTasks) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  const auto app = make_app(0.001, 100e-6, cpu, 50e-6);
  const auto report = analyze_schedulability(app, cpu, {{"evt", 0.02}});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("step"), std::string::npos);
  EXPECT_NE(text.find("evt"), std::string::npos);
  EXPECT_NE(text.find("SCHEDULABLE"), std::string::npos);
}

// ---------------------------------------------------- input capture

class CaptureFixture : public ::testing::Test {
 protected:
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
};

TEST_F(CaptureFixture, MeasuresPulsePeriod) {
  periph::CapturePeripheral icu(mcu, {});
  // 2 kHz square wave driven manually.
  for (int i = 0; i < 10; ++i) {
    world.queue().schedule_at(sim::microseconds(i * 500),
                              [&icu, i] { icu.input_edge(i % 2 == 0); });
  }
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(icu.captures(), 5u);  // rising edges only
  EXPECT_EQ(icu.last_interval(), sim::milliseconds(1));
  EXPECT_NEAR(icu.measured_frequency_hz(), 1000.0, 1e-9);
}

TEST_F(CaptureFixture, EdgeSelectionBothDoublesCaptures) {
  periph::CaptureConfig cfg;
  cfg.edge = periph::CaptureEdge::kBoth;
  periph::CapturePeripheral icu(mcu, cfg);
  for (int i = 0; i < 10; ++i) {
    world.queue().schedule_at(sim::microseconds(i * 500),
                              [&icu, i] { icu.input_edge(i % 2 == 0); });
  }
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(icu.captures(), 10u);
  EXPECT_EQ(icu.last_interval(), sim::microseconds(500));
}

TEST_F(CaptureFixture, MeasuresSimulatedPwmFrequency) {
  // Close the loop against the PWM peripheral's edge events: the capture
  // unit must recover the configured switching frequency.
  periph::PwmConfig pwm_cfg;
  pwm_cfg.prescaler = 1;
  pwm_cfg.modulo = 6000;  // 10 kHz at 60 MHz
  pwm_cfg.edge_events = true;
  periph::PwmPeripheral pwm(mcu, pwm_cfg);
  periph::CapturePeripheral icu(mcu, {});
  pwm.set_edge_callback(
      [&icu](bool level, sim::SimTime) { icu.input_edge(level); });
  pwm.set_duty_ratio(0.5);
  pwm.start();
  world.run_for(sim::milliseconds(5));
  EXPECT_NEAR(icu.measured_frequency_hz(), 10000.0, 1.0);
}

TEST_F(CaptureFixture, BeanWiresEventAndMethods) {
  beans::BeanProject project("p");
  auto& cap = project.add<beans::CaptureBean>("Cap1");
  auto diags = project.validate();
  ASSERT_FALSE(diags.has_errors());
  project.bind(mcu);
  int captures = 0;
  mcu::IsrHandler h;
  h.body = [&]() -> std::uint64_t {
    ++captures;
    return 40;
  };
  cap.set_event_handler("OnCapture", std::move(h));
  for (int i = 0; i < 6; ++i) {
    world.queue().schedule_at(sim::milliseconds(i * 2), [&cap, i] {
      cap.peripheral()->input_edge(i % 2 == 0);
    });
  }
  world.run_for(sim::milliseconds(20));
  EXPECT_EQ(captures, 3);
  EXPECT_EQ(cap.GetPeriodUS(), 4000u);
  EXPECT_NEAR(cap.GetFreqHz(), 250.0, 1e-9);
}

// ----------------------------------------------------- background task

TEST(BackgroundTask, RunsWhileIdleWithoutDisturbingTheLoop) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.3;
  core::ServoSystem servo(cfg);

  auto build = servo.build_target("servo");
  ASSERT_TRUE(build.ok());
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative(cfg.derivative));
  servo.project().bind(mcu);
  rt::Runtime runtime(mcu, servo.project(), build.app);
  runtime.start();
  std::uint64_t chunks = 0;
  runtime.set_background_task([&]() -> std::uint64_t {
    ++chunks;
    return 3000;  // 50 us chunks of "manually written" work
  });
  world.run_for(sim::from_seconds(cfg.duration_s));
  // Background soaked up most of the idle time...
  EXPECT_GT(chunks, 3000u);
  // ...while the periodic step kept its schedule.
  EXPECT_EQ(runtime.periodic_activations(), 299u);
  EXPECT_EQ(mcu.intc().overruns(), 0u);
  // CPU accounted nearly fully busy.
  const double util = static_cast<double>(mcu.cpu().busy_time()) /
                      static_cast<double>(sim::from_seconds(cfg.duration_s));
  EXPECT_GT(util, 0.95);
}

}  // namespace
}  // namespace iecd::rt
