/// \file health_report.hpp
/// Run-health report: the per-run snapshot a bench or a sweep point emits
/// once the world stops — every timing monitor (full histograms, so
/// percentiles survive aggregation), every watermark, the anomaly counts
/// and the flight-recorder dumps.  Reports merge deterministically
/// (index-order fold over sweep runs: histograms add bin-wise, counters
/// add, dumps concatenate up to a bound), and render as human-readable
/// text or as JSON for CI artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/monitor.hpp"
#include "obs/watermark.hpp"

namespace iecd::obs {

struct HealthReport {
  /// Retained flight-recorder dumps after a merge; later dumps only count.
  static constexpr std::size_t kMaxDumps = 16;

  std::string source;       ///< bench / scenario name
  std::uint64_t runs = 1;   ///< runs folded into this report

  /// Full monitor copies, not scalar summaries: merged percentiles stay
  /// exact (bin-wise histogram adds) instead of being averages of
  /// percentiles.
  std::map<std::string, TimingMonitor> tasks;
  std::map<std::string, WatermarkMonitor> watermarks;

  std::map<std::string, std::uint64_t> anomalies;  ///< trigger name -> count
  std::vector<FlightRecorder::Dump> dumps;
  std::uint64_t dumps_suppressed = 0;  ///< triggers beyond kMaxDumps

  /// Total anomaly triggers across all names.
  std::uint64_t anomaly_count() const;
  /// Deadline misses summed over every task monitor.
  std::uint64_t deadline_misses() const;
  /// True when no anomaly fired and no task missed a deadline.
  bool healthy() const { return anomaly_count() == 0 && deadline_misses() == 0; }

  /// Deterministic fold: \p other's monitors merge into (or create) the
  /// same-named entries here; anomaly counts add; dumps concatenate until
  /// kMaxDumps, the rest are counted in dumps_suppressed.
  void merge(const HealthReport& other);

  /// Human-readable multi-line report.
  std::string to_text() const;
  /// JSON document (deterministic key order, fixed float formatting).
  std::string to_json() const;
  /// Writes to_json() to \p path; false if the file cannot be opened.
  bool write_json(const std::string& path) const;
};

}  // namespace iecd::obs
