#include "cosim/farm.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "fault/sites.hpp"
#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

namespace iecd::cosim {

Topology make_farm_topology(const FarmConfig& config) {
  Topology topo;
  topo.name = "servo_farm";
  topo.buses.push_back(BusSpec{"can0", config.bitrate_bps});
  for (std::size_t i = 0; i < config.servo_count; ++i) {
    NodeSpec spec;
    spec.name = "servo" + std::to_string(i);
    spec.kind = NodeKind::kServo;
    spec.bus = "can0";
    spec.servo = config.servo;
    topo.nodes.push_back(std::move(spec));
  }
  NodeSpec sup;
  sup.name = "supervisor";
  sup.kind = NodeKind::kSupervisor;
  sup.bus = "can0";
  sup.supervisor.command_period_s = config.command_period_s;
  sup.supervisor.setpoint = config.setpoint;
  sup.supervisor.setpoint_time = config.setpoint_time;
  sup.supervisor.command_frame_id = config.servo.command_frame_id;
  sup.supervisor.status_frame_base = config.servo.status_frame_base;
  sup.supervisor.stale_timeout_s = config.stale_timeout_s;
  topo.nodes.push_back(std::move(sup));
  if (config.traffic_frames_per_s > 0.0) {
    NodeSpec chatter;
    chatter.name = "chatter";
    chatter.kind = NodeKind::kTraffic;
    chatter.bus = "can0";
    chatter.traffic.frames_per_s = config.traffic_frames_per_s;
    topo.nodes.push_back(std::move(chatter));
  }
  return topo;
}

ServoFarm::ServoFarm(const Topology& topology, const Options& options)
    : options_(options) {
  std::map<std::string, SharedCanBus*> bus_by_name;
  for (const BusSpec& spec : topology.buses) {
    buses_.push_back(
        std::make_unique<SharedCanBus>(spec.name, spec.bitrate_bps));
    master_.add_coupling(*buses_.back());
    bus_by_name[spec.name] = buses_.back().get();
  }

  const std::size_t servo_total = topology.count(NodeKind::kServo);
  fault::FaultInjector* injector = options_.faults;
  std::size_t servo_index = 0;
  for (const NodeSpec& spec : topology.nodes) {
    auto it = bus_by_name.find(spec.bus);
    if (it == bus_by_name.end()) {
      throw std::invalid_argument("cosim topology: node " + spec.name +
                                  " references unknown bus " + spec.bus);
    }
    SharedCanBus& bus = *it->second;
    switch (spec.kind) {
      case NodeKind::kServo: {
        // Build-time fault draws, site "cosim.<node>": degrade first, then
        // kill — a fixed order per node, in topology order, so the
        // per-(run, site) streams are independent of everything else.
        ServoNodeConfig cfg = spec.servo;
        bool kill = false;
        double kill_frac = 0.0;
        if (injector != nullptr) {
          const fault::FaultPlan& plan = injector->plan();
          if (plan.node_degrade_rate > 0.0 || plan.node_kill_rate > 0.0) {
            auto& site = injector->site("cosim." + spec.name);
            if (site.fire(plan.node_degrade_rate)) {
              cfg.period_factor = std::max(1.0, plan.node_degrade_factor);
            }
            if (site.fire(plan.node_kill_rate)) {
              kill = true;
              // Early enough that the supervisor's staleness window closes
              // well before the end of the run.
              kill_frac = site.uniform(0.25, 0.7);
            }
          }
        }
        auto node =
            std::make_unique<ServoNode>(spec.name, servo_index, cfg, bus);
        if (kill) {
          node->kill_at(sim::from_seconds(kill_frac * options_.duration_s));
        }
        if (injector != nullptr) {
          fault::wire_encoder(*injector, node->encoder());
        }
        if (options_.monitors != nullptr) {
          node->set_monitor(&options_.monitors->timing(
              "cosim." + spec.name + ".loop",
              obs::TimingMonitor::Config{node->period_s(), node->period_s()}));
        }
        master_.add(*node);
        servos_.push_back(std::move(node));
        ++servo_index;
        break;
      }
      case NodeKind::kSupervisor: {
        if (supervisor_) {
          throw std::invalid_argument("cosim topology: multiple supervisors");
        }
        supervisor_ = std::make_unique<SupervisorNode>(
            spec.name, spec.supervisor, bus, servo_total);
        master_.add(*supervisor_);
        break;
      }
      case NodeKind::kTraffic: {
        traffic_.push_back(
            std::make_unique<TrafficGenNode>(spec.name, spec.traffic, bus));
        master_.add(*traffic_.back());
        break;
      }
    }
  }

  if (injector != nullptr) {
    for (auto& bus : buses_) fault::wire_can_bus(*injector, bus->can());
  }
  if (options_.monitors != nullptr) {
    for (auto& bus : buses_) options_.monitors->watch_can_bus(bus->can());
    if (!buses_.empty()) {
      options_.monitors->arm(buses_.front()->bus_world(),
                             sim::from_seconds(0.01));
    }
  }
}

FarmResult ServoFarm::run() {
  const sim::SimTime end = sim::from_seconds(options_.duration_s);
  const MasterStats stats = master_.run_until(end);

  FarmResult result;
  result.negotiations = stats.negotiations;
  result.events_executed = stats.events_executed;
  if (!buses_.empty()) {
    result.frames_delivered = buses_.front()->can().stats().frames_delivered;
    result.bus_utilisation = buses_.front()->can().stats().utilisation(end);
  }
  std::set<std::size_t> stale_set;
  if (supervisor_) {
    const auto stale = supervisor_->stale_nodes(end);
    stale_set.insert(stale.begin(), stale.end());
    result.commands_sent = supervisor_->commands_sent();
    result.statuses_seen = supervisor_->statuses_seen();
  }
  for (const auto& gen : traffic_) result.traffic_frames += gen->sent();

  bool all_alive_settled = true;
  bool killed_detected = true;
  bool false_stale = false;
  double err_sum = 0.0;
  std::size_t alive = 0;
  for (const auto& node : servos_) {
    FarmNodeResult n;
    n.name = node->name();
    n.setpoint = node->setpoint();
    n.speed = node->current_speed();
    n.abs_error = std::fabs(n.speed - n.setpoint);
    n.settled =
        n.abs_error <= options_.settle_tolerance * std::max(n.setpoint, 1.0);
    n.killed = node->killed();
    n.degraded = node->degraded();
    n.stale = stale_set.count(node->index()) != 0;
    n.control_ticks = node->control_ticks();
    n.status_frames = node->status_frames_sent();
    n.commands_seen = node->command_frames_seen();
    if (n.killed) {
      ++result.killed_count;
      if (!n.stale) killed_detected = false;
    } else {
      ++alive;
      err_sum += n.abs_error;
      if (!n.settled) all_alive_settled = false;
      if (n.stale) false_stale = true;
    }
    if (n.degraded) ++result.degraded_count;
    result.nodes.push_back(std::move(n));
  }
  result.stale_count = stale_set.size();
  result.mean_abs_error = alive > 0 ? err_sum / static_cast<double>(alive) : 0;
  result.recovered = all_alive_settled && killed_detected && !false_stale;
  return result;
}

bool run_farm_campaign_run(const FarmConfig& config, fault::RunContext& ctx) {
  obs::MonitorHub hub;
  ServoFarm::Options options;
  options.duration_s = config.duration_s;
  options.settle_tolerance = config.settle_tolerance;
  options.faults = &ctx.injector;
  options.monitors = &hub;
  ServoFarm farm(make_farm_topology(config), options);
  const FarmResult result = farm.run();

  ctx.metrics.stats("campaign.tracking_error").add(result.mean_abs_error);
  auto& settled = ctx.metrics.counter("campaign.cosim.nodes_settled");
  for (const FarmNodeResult& n : result.nodes) {
    if (!n.killed && n.settled) ++settled.value;
  }
  ctx.metrics.counter("campaign.cosim.nodes").value += result.nodes.size();
  ctx.metrics.counter("campaign.cosim.killed").value += result.killed_count;
  ctx.metrics.counter("campaign.cosim.degraded").value +=
      result.degraded_count;
  ctx.metrics.counter("campaign.cosim.stale").value += result.stale_count;
  ctx.metrics.counter("campaign.cosim.frames").value +=
      result.frames_delivered;
  ctx.health.merge(hub.report("cosim"));
  return result.recovered;
}

fault::CampaignScenario make_farm_scenario(FarmConfig config) {
  return [config = std::move(config)](fault::RunContext& ctx) {
    return run_farm_campaign_run(config, ctx);
  };
}

}  // namespace iecd::cosim
