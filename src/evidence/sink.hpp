/// \file sink.hpp
/// Wiring the evidence recorder into the execution layers: helpers that
/// turn an exec::SweepRunner result or a fault::CampaignReport into a
/// directory of per-run artifacts plus an index-deterministic JSONL
/// manifest, and re-export an artifact back through the existing
/// Chrome-trace/CSV paths.
///
/// Determinism contract (same discipline as PRs 2–5): everything written
/// here derives from per-run data that is already index-deterministic, so
/// the manifest and every artifact are byte-identical across sweep thread
/// counts; wall clock and thread ids never appear in any output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evidence/writer.hpp"
#include "exec/sweep.hpp"
#include "fault/campaign.hpp"

namespace iecd::evidence {

/// What one written artifact looked like (manifest/sidecar raw material).
struct RunArtifact {
  std::string filename;  ///< artifact file name within its directory
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  std::uint64_t chain_hash = 0;
  std::string sha256_hex;
};

/// Builds (in memory) one run artifact: build info, run meta, metrics,
/// optional health report and optional trace.  The returned writer is
/// sealed (finish() already called).
EvidenceWriter build_run_artifact(const std::string& name,
                                  std::uint64_t index, std::uint64_t seed,
                                  const trace::MetricsRegistry& metrics,
                                  const obs::HealthReport* health = nullptr,
                                  const trace::TraceRecorder* trace_rec =
                                      nullptr);

/// Writes \p writer (sealed) to \p dir / \p filename plus a
/// `<filename>.meta.jsonl` sidecar carrying identity, digests and build
/// info.  Creates \p dir if needed.
RunArtifact write_artifact_with_sidecar(const std::string& dir,
                                        const std::string& filename,
                                        const EvidenceWriter& writer,
                                        const std::string& name,
                                        std::uint64_t index,
                                        std::uint64_t seed);

struct CampaignEvidence {
  std::vector<RunArtifact> runs;  ///< index order
  RunArtifact merged;             ///< merged metrics + campaign summary
  std::string manifest;           ///< MANIFEST.jsonl content
  std::string manifest_path;
};

/// Writes per-run artifacts (`run_<index>.evd`), a merged artifact
/// (`merged.evd` with the campaign summary + merged metrics/health) and
/// `MANIFEST.jsonl` into \p dir.  The manifest content is byte-identical
/// across campaign thread counts.
CampaignEvidence write_campaign_evidence(const std::string& dir,
                                         const fault::CampaignOptions& options,
                                         const fault::CampaignReport& report);

/// Canonical per-run artifact filename within a campaign directory
/// (`run_%04llu.evd` — what write_campaign_evidence uses).
std::string run_artifact_filename(std::uint64_t index);

/// Re-describes an artifact already on disk (the campaign resume path):
/// parses and validates \p dir / \p filename, filling \p out with the
/// exact descriptor its original write produced.  False when the file is
/// missing or does not verify.
bool describe_artifact_file(const std::string& dir,
                            const std::string& filename, RunArtifact& out);

/// Seals a campaign whose per-run artifacts are ALREADY on disk (the
/// streaming engine writes them run by run): writes the merged artifact
/// and the manifest from the supplied per-run descriptors (index order).
/// The manifest bytes are identical to write_campaign_evidence's for the
/// same report — locked by the engine/runner identity tests.
CampaignEvidence finish_campaign_evidence(const std::string& dir,
                                          const fault::CampaignOptions& options,
                                          const fault::CampaignReport& report,
                                          std::vector<RunArtifact> runs);

/// Same shape for a plain sweep: per-run artifacts from
/// exec::SweepRunner::Result::per_run (+ per_run_health when present) and
/// a manifest.  \p seed_of maps a run index to the seed recorded in its
/// run-meta record (pass {} for seedless sweeps).
CampaignEvidence write_sweep_evidence(
    const std::string& dir, const std::string& name,
    const exec::SweepRunner::Result& result,
    const std::vector<std::uint64_t>& seeds = {});

/// Re-exports an artifact's trace to Chrome trace-event JSON / trace CSV
/// and its metrics to the MetricsRegistry CSV, via the existing
/// trace::write_chrome_trace / write_csv / MetricsRegistry::write_csv
/// paths.  Returns false when the artifact does not verify.
bool reexport_chrome_trace(const std::string& artifact_path,
                           const std::string& out_path,
                           std::string* error = nullptr);
bool reexport_trace_csv(const std::string& artifact_path,
                        const std::string& out_path,
                        std::string* error = nullptr);
bool reexport_metrics_csv(const std::string& artifact_path,
                          const std::string& out_path,
                          std::string* error = nullptr);

}  // namespace iecd::evidence
