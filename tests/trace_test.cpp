// Tests for the unified trace & telemetry subsystem: recorder semantics
// (ring wraparound, interning, disabled path), MetricsRegistry, exporter
// validity, and the headline determinism guarantee — two identical PIL
// runs export byte-identical Chrome traces spanning all stack layers.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/case_study.hpp"
#include "sim/can_bus.hpp"
#include "sim/event_queue.hpp"
#include "sim/world.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace iecd {
namespace {

TEST(TraceRecorder, RecordsTypedEventsInOrder) {
  trace::TraceRecorder rec(16);
  rec.span_begin("sim", "work", "trackA", 100);
  rec.counter("sim", "depth", "trackA", 150, 3.0);
  rec.span_end("sim", "work", "trackA", 200);
  rec.instant("pil", "mark", "trackB", 250);
  rec.span_complete("mcu", "isr", "cpu", 300, 450, 42.0);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].type, trace::EventType::kSpanBegin);
  EXPECT_EQ(events[1].type, trace::EventType::kCounter);
  EXPECT_DOUBLE_EQ(events[1].value, 3.0);
  EXPECT_EQ(events[2].type, trace::EventType::kSpanEnd);
  EXPECT_EQ(events[3].type, trace::EventType::kInstant);
  EXPECT_EQ(events[4].type, trace::EventType::kSpanComplete);
  EXPECT_EQ(events[4].time, 300);
  EXPECT_EQ(events[4].duration, 150);
  // Monotonic sequence numbers.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  // Interning: same string, same id; resolution round-trips.
  EXPECT_EQ(events[0].name, events[2].name);
  EXPECT_EQ(rec.string_at(events[4].track), "cpu");
}

TEST(TraceRecorder, RingBufferWraparoundKeepsNewest) {
  trace::TraceRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.instant("sim", "tick", "t", i, static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first iteration over the surviving (newest) window: 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, static_cast<sim::SimTime>(12 + i));
    EXPECT_EQ(events[i].seq, 12 + i);
  }
}

TEST(TraceRecorder, DisabledTracerRecordsNothing) {
  // No recorder installed: instrumented hot paths run, nothing is stored.
  ASSERT_EQ(trace::TraceRecorder::active(), nullptr);
  sim::EventQueue q;
  int hits = 0;
  for (int i = 0; i < 64; ++i) q.schedule_at(i + 1, [&hits] { ++hits; });
  q.run_all();
  EXPECT_EQ(hits, 64);

  trace::TraceRecorder rec(64);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, SessionInstallsAndRestores) {
  trace::TraceRecorder outer(32);
  {
    trace::TraceSession session(outer);
    EXPECT_EQ(trace::TraceRecorder::active(), &outer);
    trace::TraceRecorder inner(32);
    {
      trace::TraceSession nested(inner);
      EXPECT_EQ(trace::TraceRecorder::active(), &inner);
    }
    EXPECT_EQ(trace::TraceRecorder::active(), &outer);
  }
  EXPECT_EQ(trace::TraceRecorder::active(), nullptr);
}

TEST(TraceRecorder, EventQueueDispatchEmitsSpans) {
  trace::TraceRecorder rec(256);
  trace::TraceSession session(rec);
  sim::EventQueue q;
  q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.run_all();
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);  // begin/end per dispatch
  EXPECT_EQ(events[0].type, trace::EventType::kSpanBegin);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[1].type, trace::EventType::kSpanEnd);
  EXPECT_EQ(events[2].time, 20);
  EXPECT_EQ(rec.string_at(events[0].category), "sim");
  EXPECT_EQ(rec.string_at(events[0].track), "event_queue");
}

TEST(TraceRecorder, CanBusEmitsFrameSpans) {
  trace::TraceRecorder rec(256);
  trace::TraceSession session(rec);
  sim::World world;
  sim::CanBus bus(world, 500000);
  bus.attach_node("rx", [](const sim::CanFrame&, sim::SimTime) {});
  const auto tx = bus.attach_node("tx", nullptr);
  bus.transmit(tx, {0x123, {1, 2, 3}});
  world.run_for(sim::milliseconds(5));

  bool saw_frame_span = false;
  rec.for_each([&](const trace::Event& e) {
    if (e.type == trace::EventType::kSpanComplete &&
        rec.string_at(e.track) == "can") {
      saw_frame_span = true;
      EXPECT_EQ(rec.string_at(e.name), "tx");
      EXPECT_DOUBLE_EQ(e.value, double{0x123});
      EXPECT_GT(e.duration, 0);
    }
  });
  EXPECT_TRUE(saw_frame_span);
}

TEST(MetricsRegistry, HandlesAllMetricKinds) {
  trace::MetricsRegistry m;
  m.counter("frames").increment();
  m.counter("frames").increment(4);
  m.gauge("ratio") = 0.25;
  m.stats("exec").add(1.0);
  m.stats("exec").add(3.0);
  m.series("rtt").add(10.0);
  m.series("rtt").add(20.0);
  m.histogram("jitter", 0.0, 10.0, 5).add(2.5);

  EXPECT_EQ(m.find_counter("frames")->value, 5u);
  EXPECT_DOUBLE_EQ(*m.find_gauge("ratio"), 0.25);
  EXPECT_DOUBLE_EQ(m.find_stats("exec")->mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.find_series("rtt")->percentile(50), 15.0);
  EXPECT_EQ(m.find_histogram("jitter")->total(), 1u);
  EXPECT_EQ(m.find_counter("missing"), nullptr);

  const std::string report = m.report();
  EXPECT_NE(report.find("frames"), std::string::npos);
  EXPECT_NE(report.find("rtt"), std::string::npos);
  const std::string csv = m.to_csv();
  EXPECT_NE(csv.find("frames,counter,5"), std::string::npos);
}

TEST(MetricsRegistry, MergeCombines) {
  trace::MetricsRegistry a;
  trace::MetricsRegistry b;
  a.counter("n").increment(2);
  b.counter("n").increment(3);
  a.series("s").add(1.0);
  b.series("s").add(3.0);
  a.stats("w").add(10.0);
  b.stats("w").add(20.0);
  a.histogram("h", 0.0, 1.0, 4).add(0.1);
  b.histogram("h", 0.0, 1.0, 4).add(0.9);
  a.merge(b);
  EXPECT_EQ(a.find_counter("n")->value, 5u);
  EXPECT_EQ(a.find_series("s")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_stats("w")->mean(), 15.0);
  EXPECT_EQ(a.find_histogram("h")->total(), 2u);
}

TEST(TraceExport, ChromeTraceIsStructurallyValidJson) {
  trace::TraceRecorder rec(64);
  rec.span_begin("sim", "a \"quoted\" name", "track\\1", 1000);
  rec.span_end("sim", "a \"quoted\" name", "track\\1", 3000);
  rec.counter("mcu", "load", "cpu", 2000, 0.5);
  rec.instant("pil", "mark", "host", 2500);
  rec.span_complete("model", "step", "engine", 0, 1000000, 7.0);

  const std::string json = trace::to_chrome_trace(rec);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process names
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);

  // Balanced braces/brackets outside strings => structurally valid.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceExport, ExportersReturnZeroWhenNothingDropped) {
  trace::TraceRecorder rec(16);
  rec.instant("sim", "x", "t", 5);
  std::ostringstream chrome, csv;
  EXPECT_EQ(trace::write_chrome_trace(rec, chrome), 0u);
  EXPECT_EQ(trace::write_csv(rec, csv), 0u);
  EXPECT_EQ(chrome.str().find("trace_dropped_events"), std::string::npos);
  EXPECT_NE(csv.str().rfind("seq,", 0), std::string::npos);  // no comment line
}

TEST(TraceExport, ExportersSurfaceRingDrops) {
  trace::TraceRecorder rec(8);
  for (int i = 0; i < 20; ++i) rec.instant("sim", "x", "t", i);
  ASSERT_EQ(rec.dropped(), 12u);

  std::ostringstream chrome;
  EXPECT_EQ(trace::write_chrome_trace(rec, chrome), 12u);
  const std::string json = chrome.str();
  // Metadata record carries the warning into the file itself.
  EXPECT_NE(json.find("\"name\":\"trace_dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":12"), std::string::npos);
  EXPECT_NE(json.find("\"retained\":8"), std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":20"), std::string::npos);

  std::ostringstream csv;
  EXPECT_EQ(trace::write_csv(rec, csv), 12u);
  EXPECT_EQ(csv.str().rfind("# dropped 12 events", 0), 0u);
}

TEST(TraceExport, CsvListsEveryEvent) {
  trace::TraceRecorder rec(8);
  rec.instant("sim", "x", "t", 5);
  rec.counter("sim", "y", "t", 6, 1.5);
  const std::string csv = trace::to_csv(rec);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 events
  EXPECT_NE(csv.find("0,instant,sim,x,t,5,0,0"), std::string::npos);
  EXPECT_NE(csv.find("1,counter,sim,y,t,6,0,1.5"), std::string::npos);
}

// The acceptance check: a PIL servo run with tracing on yields a valid
// Chrome trace containing spans from >= 4 distinct layers, and two
// identical runs export byte-identical output.
TEST(TraceIntegration, PilRunIsCrossLayerAndDeterministic) {
  auto traced_pil_run = []() -> std::string {
    trace::TraceRecorder rec(std::size_t{1} << 18);
    trace::TraceSession session(rec);
    core::ServoConfig cfg;
    cfg.duration_s = 0.05;
    core::ServoSystem servo(cfg);
    (void)servo.run_pil({.baud = 460800});
    return trace::to_chrome_trace(rec);
  };

  const std::string first = traced_pil_run();
  const std::string second = traced_pil_run();
  EXPECT_EQ(first, second) << "trace export must be bit-identical";

  // Spans from at least four distinct layers of the stack: walk the
  // exported events line by line and collect the category of every span.
  std::set<std::string> span_cats;
  std::istringstream lines(first);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":\"B\"") == std::string::npos &&
        line.find("\"ph\":\"X\"") == std::string::npos) {
      continue;
    }
    const std::string key = "\"cat\":\"";
    const std::size_t cat_pos = line.find(key);
    if (cat_pos == std::string::npos) continue;
    const std::size_t start = cat_pos + key.size();
    span_cats.insert(line.substr(start, line.find('"', start) - start));
  }
  EXPECT_GE(span_cats.size(), 4u) << "layers seen: " << span_cats.size();
  EXPECT_TRUE(span_cats.count("sim"));
  EXPECT_TRUE(span_cats.count("mcu"));
  EXPECT_TRUE(span_cats.count("pil"));
}

TEST(TraceIntegration, ProfilerIsBackedByMetricsRegistry) {
  rt::Profiler profiler;
  mcu::DispatchRecord rec;
  rec.name = "Tick.OnInterrupt";
  rec.raise_time = sim::microseconds(0);
  rec.start_time = sim::microseconds(5);
  rec.end_time = sim::microseconds(55);
  profiler.record(rec);
  profiler.record(rec);

  const auto* p = profiler.task("Tick.OnInterrupt");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->activations, 2u);
  // One source of truth: the task's series ARE the registry's series.
  const auto* series =
      profiler.metrics().find_series("Tick.OnInterrupt.exec_us");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series, &p->exec_time_us);
  EXPECT_EQ(
      profiler.metrics().find_counter("Tick.OnInterrupt.activations")->value,
      2u);
}

TEST(TraceIntegration, PilReportCarriesMetricsRegistry) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.05;
  core::ServoSystem servo(cfg);
  const auto pil = servo.run_pil({.baud = 460800});
  const auto& m = pil.report.metrics;
  ASSERT_NE(m.find_counter("pil.exchanges"), nullptr);
  EXPECT_EQ(m.find_counter("pil.exchanges")->value, pil.report.exchanges);
  ASSERT_NE(m.find_series("pil.round_trip_us"), nullptr);
  EXPECT_DOUBLE_EQ(m.find_series("pil.round_trip_us")->mean(),
                   pil.report.round_trip_us.mean());
  ASSERT_NE(m.find_gauge("pil.observed_stack_bytes"), nullptr);
  EXPECT_DOUBLE_EQ(*m.find_gauge("pil.observed_stack_bytes"),
                   pil.report.observed_stack_bytes);
}

}  // namespace
}  // namespace iecd
