#include "sim/serial_link.hpp"

#include <algorithm>
#include <stdexcept>

namespace iecd::sim {

SimTime SerialConfig::byte_time() const {
  if (baud_rate == 0) throw std::invalid_argument("SerialConfig: baud 0");
  const double bit_ns = 1e9 / static_cast<double>(baud_rate);
  return static_cast<SimTime>(bit_ns * bits_per_byte() + 0.5);
}

SerialChannel::SerialChannel(EventQueue& queue, SerialConfig config,
                             std::string name)
    : queue_(queue), config_(config), name_(std::move(name)) {}

SimTime SerialChannel::byte_time() const {
  if (byte_time_cache_ == 0) byte_time_cache_ = config_.byte_time();
  return byte_time_cache_;
}

void SerialChannel::set_receiver(
    std::function<void(std::uint8_t, SimTime)> on_byte) {
  on_byte_ = std::move(on_byte);
  on_burst_ = nullptr;
}

void SerialChannel::set_burst_receiver(BurstCallback on_burst) {
  on_burst_ = std::move(on_burst);
  on_byte_ = nullptr;
}

void SerialChannel::set_fault_hook(ByteFaultHook hook) {
  fault_hook_ = std::move(hook);
}

void SerialChannel::corrupt_next_byte(std::uint8_t xor_mask) {
  pending_corruption_ = xor_mask;
  corrupt_armed_ = true;
  // Target: the next byte to enter the shift register.  Idle: the next
  // transmitted byte.  Busy: the byte after the one currently shifting (in
  // burst mode the shifting byte is located analytically, because wire
  // progress since burst_t0_ is not reflected in bytes_transferred_ yet).
  if (!active_) {
    corrupt_index_ = bytes_transferred_;
  } else if (on_burst_) {
    const auto done =
        static_cast<std::uint64_t>((queue_.now() - burst_t0_) / byte_time());
    corrupt_index_ = bytes_transferred_ + done + 1;
  } else {
    corrupt_index_ = bytes_transferred_ + 1;
  }
}

SimTime SerialChannel::wire_free_at() const {
  return std::max(wire_free_at_, queue_.now());
}

void SerialChannel::transmit(std::uint8_t byte) { transmit(&byte, 1); }

void SerialChannel::transmit(const std::uint8_t* data, std::size_t len) {
  if (len == 0) return;
  maybe_compact();
  buf_.insert(buf_.end(), data, data + len);
  const SimTime bt = byte_time();
  busy_time_ += bt * static_cast<SimTime>(len);
  const SimTime now = queue_.now();
  wire_free_at_ = std::max(wire_free_at_, now) +
                  bt * static_cast<SimTime>(len);
  if (active_) return;  // the armed event (or its re-arm) picks these up
  active_ = true;
  if (on_burst_) {
    burst_t0_ = now;
    arm_burst_event();
  } else {
    // One recurring event carries the whole back-to-back burst: ticks at
    // now + k*byte_time are exactly the per-byte completion instants.
    event_ = queue_.schedule_every(bt, bt, [this] { deliver_tick(); });
  }
}

void SerialChannel::arm_burst_event() {
  scheduled_ = pending();
  event_ = queue_.schedule_in(wire_free_at_ - queue_.now(),
                              [this] { deliver_burst(); });
}

void SerialChannel::deliver_tick() {
  std::uint8_t byte = buf_[head_];
  if (corrupt_armed_ && bytes_transferred_ == corrupt_index_) {
    byte ^= pending_corruption_;
    corrupt_armed_ = false;
  }
  bool drop = false;
  bool duplicate = false;
  if (fault_hook_) {
    const ByteFault fault = fault_hook_(byte);
    switch (fault.action) {
      case ByteFaultAction::kCorrupt:
        byte ^= fault.xor_mask;
        ++bytes_corrupted_;
        break;
      case ByteFaultAction::kDrop:
        // The byte still occupied its wire time; the receiver's UART
        // discarded it (framing/start-bit corruption).
        drop = true;
        ++bytes_dropped_;
        break;
      case ByteFaultAction::kDuplicate:
        duplicate = true;
        ++bytes_duplicated_;
        break;
      case ByteFaultAction::kNone:
        break;
    }
  }
  ++head_;
  ++bytes_transferred_;
  if (on_byte_ && !drop) {
    on_byte_(byte, queue_.now());
    if (duplicate) on_byte_(byte, queue_.now());
  }
  if (pending() == 0) {
    queue_.cancel(event_);
    event_ = 0;
    active_ = false;
    buf_.clear();
    head_ = 0;
  }
}

void SerialChannel::deliver_burst() {
  const std::size_t n = scheduled_;
  const std::size_t first = head_;
  if (corrupt_armed_ && corrupt_index_ >= bytes_transferred_ &&
      corrupt_index_ < bytes_transferred_ + n) {
    buf_[first + static_cast<std::size_t>(corrupt_index_ -
                                          bytes_transferred_)] ^=
        pending_corruption_;
    corrupt_armed_ = false;
  }
  const SimTime bt = byte_time();
  const SimTime first_done = burst_t0_ + bt;
  head_ += n;
  bytes_transferred_ += n;
  active_ = false;
  event_ = 0;
  // Per-byte fault pass.  The scratch copy materializes only at the first
  // byte a fault actually touches: a hooked-but-quiet burst still hands the
  // receiver the zero-copy aliasing span below, bit-identical to the
  // unhooked channel.
  bool faulted = false;
  if (fault_hook_) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint8_t byte = buf_[first + i];
      const ByteFault fault = fault_hook_(byte);
      if (!faulted && fault.action != ByteFaultAction::kNone) {
        fault_scratch_.assign(buf_.begin() + static_cast<std::ptrdiff_t>(first),
                              buf_.begin() +
                                  static_cast<std::ptrdiff_t>(first + i));
        faulted = true;
      }
      switch (fault.action) {
        case ByteFaultAction::kCorrupt:
          fault_scratch_.push_back(byte ^ fault.xor_mask);
          ++bytes_corrupted_;
          break;
        case ByteFaultAction::kDrop:
          ++bytes_dropped_;
          break;
        case ByteFaultAction::kDuplicate:
          fault_scratch_.push_back(byte);
          fault_scratch_.push_back(byte);
          ++bytes_duplicated_;
          break;
        case ByteFaultAction::kNone:
          if (faulted) fault_scratch_.push_back(byte);
          break;
      }
    }
  }
  if (on_burst_) {
    if (faulted) {
      on_burst_(std::span<const std::uint8_t>(fault_scratch_), first_done, bt);
    } else {
      // The span aliases the TX buffer: valid only during the callback, and
      // the receiver must not transmit into this same channel from inside
      // it.
      on_burst_(std::span<const std::uint8_t>(buf_.data() + first, n),
                first_done, bt);
    }
  }
  if (pending() > 0) {
    // Bytes queued while this burst was on the wire: they followed
    // back-to-back, so the next sub-burst started exactly now.
    burst_t0_ = queue_.now();
    active_ = true;
    arm_burst_event();
  } else {
    buf_.clear();
    head_ = 0;
  }
}

void SerialChannel::maybe_compact() {
  if (head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  } else if (head_ > 4096 && head_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void SerialChannel::reset() {
  if (active_ && event_ != 0) queue_.cancel(event_);
  event_ = 0;
  active_ = false;
  buf_.clear();
  head_ = 0;
  scheduled_ = 0;
  wire_free_at_ = 0;
  burst_t0_ = 0;
  corrupt_armed_ = false;
  bytes_corrupted_ = 0;
  bytes_dropped_ = 0;
  bytes_duplicated_ = 0;
  bytes_transferred_ = 0;
  busy_time_ = 0;
}

SerialLink::SerialLink(World& world, SerialConfig config, std::string name)
    : name_(std::move(name)),
      config_(config),
      a_to_b_(world.queue(), config, name_ + ".a2b"),
      b_to_a_(world.queue(), config, name_ + ".b2a") {
  world.attach(*this);
}

void SerialLink::reset() {
  a_to_b_.reset();
  b_to_a_.reset();
}

}  // namespace iecd::sim
