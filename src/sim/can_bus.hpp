/// \file can_bus.hpp
/// CAN bus model for distributed control (the paper's objective is "an
/// integrated development environment for embedded controllers having
/// distributed nature").  Event-driven, arbitration-accurate at frame
/// granularity: when the bus idles, the pending frame with the lowest
/// identifier wins (CSMA/CR), occupies the bus for its wire time, and is
/// then delivered to every other node.  Frame time uses the standard-frame
/// bit count with a conservative stuff-bit estimate, precomputed per DLC.
///
/// Fast-path choices: payloads live inline in the frame (no heap vector for
/// 0..8 data bytes), the in-flight frame is a bus member so the delivery
/// event captures only `this` (the callback stays inside the event queue's
/// small-buffer storage), and every queued frame carries a CRC-16/CCITT
/// integrity word that is verified at delivery — wire corruption (injected
/// via corrupt_next_frame) drops the frame and counts a CRC error, like a
/// receiving controller discarding a frame with a bad CRC field.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace iecd::sim {

/// Inline payload buffer: capacity 16 so malformed lengths (dlc > 8) are
/// representable and rejected by the bus, like a driver clipping a bad DLC.
class CanPayload {
 public:
  static constexpr std::size_t kCapacity = 16;

  CanPayload() = default;
  CanPayload(std::initializer_list<std::uint8_t> init) {
    for (std::uint8_t b : init) push_back(b);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }
  void push_back(std::uint8_t b) {
    if (size_ < kCapacity) bytes_[size_++] = b;
  }
  void assign(std::size_t n, std::uint8_t value) {
    size_ = n < kCapacity ? static_cast<std::uint8_t>(n) : kCapacity;
    for (std::size_t i = 0; i < size_; ++i) bytes_[i] = value;
  }

  std::uint8_t& operator[](std::size_t i) { return bytes_[i]; }
  std::uint8_t operator[](std::size_t i) const { return bytes_[i]; }
  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  const std::uint8_t* begin() const { return bytes_.data(); }
  const std::uint8_t* end() const { return bytes_.data() + size_; }

  operator std::vector<std::uint8_t>() const {
    return std::vector<std::uint8_t>(begin(), end());
  }

 private:
  std::array<std::uint8_t, kCapacity> bytes_{};
  std::uint8_t size_ = 0;
};

struct CanFrame {
  std::uint32_t id = 0;  ///< 11-bit identifier; lower = higher priority
  CanPayload data;       ///< 0..8 bytes

  int dlc() const { return static_cast<int>(data.size()); }
};

class CanBus : public Component {
 public:
  struct Stats {
    std::uint64_t frames_delivered = 0;
    std::uint64_t crc_errors = 0;  ///< frames dropped at delivery
    std::uint64_t frames_dropped = 0;     ///< lost on the wire (fault hook)
    std::uint64_t frames_duplicated = 0;  ///< re-queued copies (fault hook)
    SimTime busy_time = 0;
    double utilisation(SimTime elapsed) const {
      return elapsed > 0 ? static_cast<double>(busy_time) /
                               static_cast<double>(elapsed)
                         : 0.0;
    }
  };

  using NodeId = int;
  /// Receive callback: frame + delivery time.
  using RxCallback = std::function<void(const CanFrame&, SimTime)>;

  CanBus(World& world, std::uint32_t bitrate_bps, std::string name = "can");

  const std::string& name() const override { return name_; }
  void reset() override;

  std::uint32_t bitrate() const { return bitrate_; }

  /// Registers a node; every delivered frame reaches all nodes except its
  /// transmitter.
  NodeId attach_node(std::string node_name, RxCallback on_rx);

  /// Queues a frame for transmission from \p node.  Frames per node go out
  /// in FIFO order; across nodes the identifier arbitrates.  Returns false
  /// if the frame is malformed (dlc > 8).
  ///
  /// Arbitration resolution order (deterministic, locked by the CanBus
  /// suite): whenever the wire goes idle, the heads of all non-empty
  /// transmit queues compete and the LOWEST identifier wins; when two
  /// heads carry the SAME identifier, the lowest attach-order node index
  /// wins.  A transmit onto an idle bus seizes the wire immediately
  /// (CSMA — no competing head exists yet), so same-priority contention
  /// only arises between frames queued while the bus was busy.
  bool transmit(NodeId node, CanFrame frame);

  /// Queues a whole burst of back-to-back frames; returns frames accepted.
  std::size_t transmit_burst(NodeId node, std::span<const CanFrame> frames);

  /// Injects wire corruption: the next frame to win arbitration has its
  /// first payload byte (or, for an empty frame, its CRC word) XORed with
  /// \p xor_mask, so the delivery-side integrity check drops it.
  void corrupt_next_frame(std::uint8_t xor_mask);

  /// Per-frame fault decision, consulted when a frame wins arbitration
  /// (fault-injection campaigns; see src/fault/).
  enum class FrameFaultAction : std::uint8_t {
    kNone,
    kCorrupt,    ///< corrupt payload/CRC -> receivers discard the frame
    kDrop,       ///< frame occupies the bus but never reaches a receiver
    kDuplicate,  ///< a copy re-queues on the sender (retransmit echo)
  };
  struct FrameFault {
    FrameFaultAction action = FrameFaultAction::kNone;
    std::uint8_t xor_mask = 0;
  };
  using FrameFaultHook = std::function<FrameFault(const CanFrame&)>;

  /// Installs (null: removes) the fault hook.  A hook that always answers
  /// kNone leaves bus behaviour bit-identical to the unhooked bus.
  void set_fault_hook(FrameFaultHook hook);

  /// Wire time of one standard frame with \p dlc data bytes (includes a
  /// conservative stuff-bit estimate and the interframe space).
  SimTime frame_time(int dlc) const;

  const Stats& stats() const { return stats_; }
  /// Frames still queued on all nodes (diagnostic).
  std::size_t pending() const;

 private:
  void try_start();
  void deliver();

  struct QueuedFrame {
    CanFrame frame;
    std::uint16_t crc = 0;  ///< integrity word stamped at transmit
  };

  struct Node {
    std::string name;
    RxCallback on_rx;
    std::deque<QueuedFrame> tx_queue;
  };

  World& world_;
  std::string name_;
  std::uint32_t bitrate_;
  std::vector<Node> nodes_;
  bool busy_ = false;
  /// The frame occupying the wire: kept in members so the delivery event
  /// only captures `this` (no heap spill per frame).
  QueuedFrame in_flight_;
  int in_flight_winner_ = -1;
  SimTime in_flight_started_ = 0;
  std::array<SimTime, 9> frame_times_{};
  bool corrupt_armed_ = false;
  std::uint8_t pending_corruption_ = 0;
  FrameFaultHook fault_hook_;
  bool in_flight_dropped_ = false;
  Stats stats_;
};

}  // namespace iecd::sim
