/// \file watchdog_bean.hpp
/// Watchdog (COP) bean: the timeout is a high-level property checked
/// against the model's sample period; the kernel clears the watchdog from
/// the periodic task.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/watchdog.hpp"

namespace iecd::beans {

class WatchdogBean : public Bean {
 public:
  explicit WatchdogBean(std::string name = "WDog1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  void Enable();
  /// Method "Clear": the service/refresh sequence.
  void Clear();

  double timeout_s() const { return properties().get_real("timeout_s"); }
  periph::WatchdogPeripheral* peripheral() { return wdog_.get(); }

 private:
  std::unique_ptr<periph::WatchdogPeripheral> wdog_;
};

}  // namespace iecd::beans
