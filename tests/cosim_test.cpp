// Co-simulation master suite (src/cosim/): step-negotiation exactness with
// scripted components under adversarial registration/readiness orders,
// shared-bus delivery timing, 16-node farm behaviour (clean, killed,
// degraded), and campaign/evidence byte-identity across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "campaign/engine.hpp"
#include "cosim/farm.hpp"
#include "cosim/master.hpp"
#include "cosim/nodes.hpp"
#include "cosim/topology.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/health_report.hpp"
#include "obs/monitor.hpp"

namespace iecd::cosim {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::path("cosim_test_tmp") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

/// Scripted component: a fixed list of event times; executing an event
/// appends (name, time) to the shared trace.
class ScriptedComponent : public Component {
 public:
  ScriptedComponent(std::string name, std::vector<sim::SimTime> events,
                    std::vector<std::pair<std::string, sim::SimTime>>* trace)
      : name_(std::move(name)), events_(std::move(events)), trace_(trace) {}

  const std::string& name() const override { return name_; }
  sim::SimTime horizon() const override {
    return next_ < events_.size() ? events_[next_] : sim::kNever;
  }
  void advance_to(sim::SimTime t) override {
    ++advance_calls_;
    while (next_ < events_.size() && events_[next_] <= t) {
      trace_->push_back({name_, events_[next_]});
      ++next_;
    }
    now_ = t;
  }
  std::uint64_t events_executed() const override { return next_; }

  sim::SimTime now() const { return now_; }
  std::uint64_t advance_calls() const { return advance_calls_; }

 private:
  std::string name_;
  std::vector<sim::SimTime> events_;
  std::vector<std::pair<std::string, sim::SimTime>>* trace_;
  std::size_t next_ = 0;
  sim::SimTime now_ = 0;
  std::uint64_t advance_calls_ = 0;
};

// ------------------------------------------------------------------ master

TEST(CosimMaster, NegotiatesGlobalMinimumHorizon) {
  std::vector<std::pair<std::string, sim::SimTime>> trace;
  ScriptedComponent a("a", {10, 30, 50}, &trace);
  ScriptedComponent b("b", {20, 30, 70}, &trace);
  Master master;
  master.add(a);
  master.add(b);
  const MasterStats stats = master.run_until(100);

  // Events execute in global time order; the same-boundary tie at t=30
  // resolves by registration order (a before b).
  const std::vector<std::pair<std::string, sim::SimTime>> expected = {
      {"a", 10}, {"b", 20}, {"a", 30}, {"b", 30}, {"a", 50}, {"b", 70}};
  EXPECT_EQ(trace, expected);
  EXPECT_EQ(stats.negotiations, 5u);  // boundaries 10, 20, 30, 50, 70
  EXPECT_EQ(stats.events_executed, 6u);
  EXPECT_EQ(a.now(), 100);
  EXPECT_EQ(b.now(), 100);
}

TEST(CosimMaster, LazySkipOnlyAdvancesDueComponents) {
  std::vector<std::pair<std::string, sim::SimTime>> trace;
  ScriptedComponent busy("busy", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, &trace);
  ScriptedComponent idle("idle", {1000}, &trace);
  Master master;
  master.add(busy);
  master.add(idle);
  master.run_until(100);
  // idle was never due inside the loop; its only advance is the end drain.
  EXPECT_EQ(idle.advance_calls(), 1u);
  EXPECT_EQ(idle.now(), 100);
  EXPECT_EQ(busy.advance_calls(), 11u);  // 10 boundaries + drain
}

TEST(CosimMaster, AdversarialRegistrationOrdersYieldIdenticalTraces) {
  // Randomized readiness patterns: K trials of 4 components with random
  // (unique) event times, each executed under every registration
  // permutation of a random shuffle — the executed trace must be the
  // global time-ordered event list every time.
  std::mt19937 rng(20260808u);
  for (int trial = 0; trial < 12; ++trial) {
    // Unique times 1..200, partitioned round-robin after a shuffle.
    std::vector<sim::SimTime> times(200);
    for (std::size_t i = 0; i < times.size(); ++i) {
      times[i] = static_cast<sim::SimTime>(i + 1);
    }
    std::shuffle(times.begin(), times.end(), rng);
    const std::size_t kComponents = 4;
    std::vector<std::vector<sim::SimTime>> events(kComponents);
    const std::size_t per = 8;
    for (std::size_t c = 0; c < kComponents; ++c) {
      events[c].assign(times.begin() + static_cast<std::ptrdiff_t>(c * per),
                       times.begin() +
                           static_cast<std::ptrdiff_t>((c + 1) * per));
      std::sort(events[c].begin(), events[c].end());
    }

    // Reference: the global time-sorted merge (times are unique, so the
    // order is total and registration cannot matter).
    std::vector<std::pair<std::string, sim::SimTime>> expected;
    for (std::size_t c = 0; c < kComponents; ++c) {
      for (const sim::SimTime t : events[c]) {
        expected.push_back({"c" + std::to_string(c), t});
      }
    }
    std::sort(expected.begin(), expected.end(),
              [](const auto& x, const auto& y) { return x.second < y.second; });

    std::vector<std::size_t> order(kComponents);
    for (std::size_t i = 0; i < kComponents; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    do {
      std::vector<std::pair<std::string, sim::SimTime>> trace;
      std::vector<std::unique_ptr<ScriptedComponent>> comps(kComponents);
      for (std::size_t c = 0; c < kComponents; ++c) {
        comps[c] = std::make_unique<ScriptedComponent>(
            "c" + std::to_string(c), events[c], &trace);
      }
      Master master;
      for (const std::size_t c : order) master.add(*comps[c]);
      master.run_until(300);
      ASSERT_EQ(trace, expected) << "trial " << trial;
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

// ------------------------------------------------------------- shared bus

TEST(CosimBus, DeliversAtExactWireTime) {
  SharedCanBus bus("can0", 500000);
  std::vector<std::pair<std::uint32_t, sim::SimTime>> deliveries;
  bus.attach_model_port("sink", [&](const sim::CanFrame& frame,
                                    sim::SimTime when) {
    deliveries.push_back({frame.id, when});
  });
  TrafficGenNode::Config traffic;
  traffic.frame_id = 0x123;
  traffic.frames_per_s = 1000.0;
  traffic.payload_len = 3;
  TrafficGenNode gen("gen", traffic, bus);

  Master master;
  master.add_coupling(bus);
  master.add(gen);
  master.run_until(sim::from_seconds(0.0105));

  ASSERT_EQ(deliveries.size(), 10u);
  const sim::SimTime wire = bus.can().frame_time(3);
  for (std::size_t k = 0; k < deliveries.size(); ++k) {
    EXPECT_EQ(deliveries[k].first, 0x123u);
    // Send at (k+1) ms on an idle bus; delivery exactly one wire time
    // later, negotiated across the component boundary.
    EXPECT_EQ(deliveries[k].second,
              sim::milliseconds(static_cast<sim::SimTime>(k) + 1) + wire)
        << "frame " << k;
  }
  EXPECT_EQ(gen.sent(), 10u);
  EXPECT_EQ(bus.can().stats().frames_delivered, 10u);
}

// ------------------------------------------------------------------- farm

FarmConfig small_farm(std::size_t servos, double duration) {
  FarmConfig cfg;
  cfg.servo_count = servos;
  cfg.duration_s = duration;
  cfg.traffic_frames_per_s = 300.0;
  return cfg;
}

TEST(CosimFarm, CleanSixteenNodeFarmSettlesEveryServo) {
  const FarmConfig cfg = small_farm(15, 0.4);  // 15 servos + supervisor
  ServoFarm farm(make_farm_topology(cfg),
                 {cfg.duration_s, cfg.settle_tolerance, nullptr, nullptr});
  const FarmResult r = farm.run();
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.nodes.size(), 15u);
  EXPECT_EQ(r.killed_count, 0u);
  EXPECT_EQ(r.stale_count, 0u);
  for (const FarmNodeResult& n : r.nodes) {
    EXPECT_TRUE(n.settled) << n.name << " speed " << n.speed;
    EXPECT_NEAR(n.speed, 100.0, 5.0) << n.name;
    EXPECT_GT(n.control_ticks, 300u) << n.name;
    EXPECT_GT(n.status_frames, 20u) << n.name;
  }
  EXPECT_EQ(r.commands_sent, 40u);  // every 10 ms over 0.4 s
  EXPECT_GT(r.statuses_seen, 400u);
  EXPECT_GT(r.frames_delivered, 500u);
  EXPECT_GT(r.bus_utilisation, 0.05);
}

TEST(CosimFarm, RunIsDeterministic) {
  const FarmConfig cfg = small_farm(8, 0.3);
  auto run_once = [&] {
    ServoFarm farm(make_farm_topology(cfg),
                   {cfg.duration_s, cfg.settle_tolerance, nullptr, nullptr});
    return farm.run();
  };
  const FarmResult a = run_once();
  const FarmResult b = run_once();
  EXPECT_EQ(a.mean_abs_error, b.mean_abs_error);  // bitwise
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.negotiations, b.negotiations);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].speed, b.nodes[i].speed) << a.nodes[i].name;
    EXPECT_EQ(a.nodes[i].control_ticks, b.nodes[i].control_ticks);
  }
}

TEST(CosimFarm, KilledNodesAreDetectedStale) {
  fault::FaultPlan plan;
  plan.node_kill_rate = 1.0;  // every node dies mid-run
  fault::FaultInjector injector(42, plan);
  const FarmConfig cfg = small_farm(6, 0.4);
  ServoFarm farm(make_farm_topology(cfg),
                 {cfg.duration_s, cfg.settle_tolerance, &injector, nullptr});
  const FarmResult r = farm.run();
  EXPECT_EQ(r.killed_count, 6u);
  EXPECT_EQ(r.stale_count, 6u);
  EXPECT_TRUE(r.recovered);  // all kills detected, no alive node misbehaved
  for (const FarmNodeResult& n : r.nodes) {
    EXPECT_TRUE(n.killed) << n.name;
    EXPECT_TRUE(n.stale) << n.name;
    // Control stopped partway: strictly fewer ticks than a full run.
    EXPECT_LT(n.control_ticks, 350u) << n.name;
  }
  EXPECT_EQ(injector.find_site("cosim.servo0")->injected(), 1u);
}

TEST(CosimFarm, DegradedNodesRunSlowerButStillSettle) {
  fault::FaultPlan plan;
  plan.node_degrade_rate = 1.0;
  plan.node_degrade_factor = 2.0;
  fault::FaultInjector injector(7, plan);
  const FarmConfig cfg = small_farm(4, 0.6);
  ServoFarm farm(make_farm_topology(cfg),
                 {cfg.duration_s, cfg.settle_tolerance, &injector, nullptr});
  const FarmResult r = farm.run();
  EXPECT_EQ(r.degraded_count, 4u);
  EXPECT_EQ(r.killed_count, 0u);
  EXPECT_TRUE(r.recovered);
  for (const FarmNodeResult& n : r.nodes) {
    EXPECT_TRUE(n.degraded) << n.name;
    EXPECT_TRUE(n.settled) << n.name << " speed " << n.speed;
    // Doubled period: roughly half the control ticks of a healthy node.
    EXPECT_LT(n.control_ticks, 350u) << n.name;
    EXPECT_GT(n.control_ticks, 250u) << n.name;
  }
}

TEST(CosimFarm, PerNodeMonitorsFoldIntoHealthReport) {
  obs::MonitorHub hub;
  const FarmConfig cfg = small_farm(3, 0.2);
  ServoFarm farm(make_farm_topology(cfg),
                 {cfg.duration_s, cfg.settle_tolerance, nullptr, &hub});
  farm.run();
  const obs::HealthReport report = hub.report("cosim");
  for (int i = 0; i < 3; ++i) {
    const std::string name = "cosim.servo" + std::to_string(i) + ".loop";
    const auto* monitor = hub.find_timing(name);
    ASSERT_NE(monitor, nullptr) << name;
    EXPECT_GT(monitor->activations(), 150u) << name;
    EXPECT_EQ(monitor->deadline_misses(), 0u) << name;
    EXPECT_TRUE(report.tasks.count(name)) << name;
  }
  EXPECT_GT(hub.polls(), 10u);
}

TEST(CosimTopology, UnknownBusAttachmentThrows) {
  Topology topo;
  topo.buses.push_back(BusSpec{"can0", 500000});
  NodeSpec spec;
  spec.name = "servo0";
  spec.kind = NodeKind::kServo;
  spec.bus = "can9";
  topo.nodes.push_back(spec);
  EXPECT_THROW(ServoFarm(topo, {0.1, 0.05, nullptr, nullptr}),
               std::invalid_argument);
}

// -------------------------------------------------------------- campaigns

TEST(CosimCampaign, DefaultPlanFarmRecoversEveryRun) {
  const FarmConfig cfg = small_farm(15, 0.3);
  fault::CampaignOptions options;
  options.name = "cosim_farm";
  options.seed = 2026;
  options.runs = 4;
  options.threads = 2;
  options.plan = fault::FaultPlan::defaults();
  const fault::CampaignReport report =
      fault::CampaignRunner(options).run(make_farm_scenario(cfg));
  EXPECT_EQ(report.unrecovered, 0u) << report.summary();
  EXPECT_GT(report.faults_injected, 0u);
  // The farm-specific sites appear in the merged per-site counters.
  EXPECT_TRUE(report.merged.find_counter("fault.can.can0.injected") !=
                  nullptr ||
              report.merged.find_counter("fault.can.can0.opportunities") !=
                  nullptr);
}

TEST(CosimCampaign, ReportAndEvidenceAreThreadCountInvariant) {
  const FarmConfig cfg = small_farm(4, 0.2);
  auto campaign_options = [&](std::size_t threads) {
    fault::CampaignOptions options;
    options.name = "cosim_ident";
    options.seed = 99;
    options.runs = 6;
    options.threads = threads;
    options.plan = fault::FaultPlan::defaults();
    return options;
  };

  std::string ref_json;
  std::string ref_manifest;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Runner report.
    const fault::CampaignReport report =
        fault::CampaignRunner(campaign_options(threads))
            .run(make_farm_scenario(cfg));
    // Engine report + evidence manifest.
    const fs::path dir = scratch_dir("ident_t" + std::to_string(threads));
    campaign::EngineOptions eo;
    eo.campaign = campaign_options(threads);
    eo.evidence_dir = dir.string();
    eo.write_run_artifacts = false;
    campaign::CampaignEngine engine(eo);
    const campaign::EngineResult er = engine.run(make_farm_scenario(cfg));

    EXPECT_EQ(report.to_json(), er.report.to_json()) << threads;
    const std::string manifest = slurp(er.evidence.manifest_path);
    if (threads == 1) {
      ref_json = report.to_json();
      ref_manifest = manifest;
      EXPECT_FALSE(ref_json.empty());
      EXPECT_FALSE(ref_manifest.empty());
    } else {
      EXPECT_EQ(report.to_json(), ref_json)
          << "campaign JSON differs at threads=" << threads;
      EXPECT_EQ(manifest, ref_manifest)
          << "evidence MANIFEST differs at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace iecd::cosim
