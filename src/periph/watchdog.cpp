#include "periph/watchdog.hpp"

#include <stdexcept>

namespace iecd::periph {

WatchdogPeripheral::WatchdogPeripheral(mcu::Mcu& mcu, WatchdogConfig config,
                                       std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {
  if (config.timeout <= 0) {
    throw std::invalid_argument("WatchdogPeripheral: timeout must be > 0");
  }
}

void WatchdogPeripheral::set_bite_handler(
    std::function<void(sim::SimTime)> on_bite) {
  on_bite_ = std::move(on_bite);
}

void WatchdogPeripheral::enable() {
  if (enabled_) return;
  enabled_ = true;
  arm();
}

void WatchdogPeripheral::arm() {
  event_ = queue().schedule_in(config_.timeout, [this] {
    scheduled_ = false;
    ++bites_;
    if (on_bite_) on_bite_(now());
    arm();  // a real COP keeps resetting until the software recovers
  });
  scheduled_ = true;
}

void WatchdogPeripheral::refresh() {
  ++refreshes_;
  if (!enabled_) return;
  if (scheduled_) queue().cancel(event_);
  arm();
}

void WatchdogPeripheral::reset() {
  if (scheduled_) {
    queue().cancel(event_);
    scheduled_ = false;
  }
  enabled_ = false;
  bites_ = 0;
  refreshes_ = 0;
}

}  // namespace iecd::periph
