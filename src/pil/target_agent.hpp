/// \file target_agent.hpp
/// Board-side PIL support (the special code variant of paper Section 6):
/// the serial RX interrupt assembles sensor frames; a complete frame
/// deposits the values into the controller's communication buffer and runs
/// the model step in place of the timer/peripheral interrupts; the
/// controller outputs return to the simulator in the response frame.
///
/// Fast path: the agent decodes into and encodes from session-lifetime
/// scratch buffers (no heap traffic per frame) and pushes the whole
/// response frame onto the wire as one burst.  A batched sensor frame
/// (host batch > 1) carries N stacked input groups; the agent infers N
/// from the buffer's input count and runs the controller step once per
/// group, back-dating each step's context time by one control period.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "beans/serial_bean.hpp"
#include "codegen/signal_buffer.hpp"
#include "pil/frame.hpp"
#include "rt/runtime.hpp"

namespace iecd::pil {

class TargetAgent {
 public:
  TargetAgent(rt::Runtime& runtime, beans::SerialBean& serial,
              codegen::SignalBuffer& buffer);

  /// Installs the OnRxChar handler.  The runtime must be started (PIL
  /// variant: its periodic task is not timer-driven).
  void start();

  std::uint64_t frames_processed() const { return frames_processed_; }
  std::uint64_t crc_errors() const { return decoder_.crc_errors(); }
  /// Sensor frames whose sequence number matched the previous frame —
  /// host retransmissions answered from the response cache without
  /// re-stepping the controller (clean runs never repeat a seq, so this
  /// stays 0 and the duplicate path is never taken).
  std::uint64_t duplicate_frames() const { return duplicate_frames_; }

  /// Fault-injection hook (see src/fault/): maps the response frame's
  /// length to the number of bytes actually sent — a truncated response
  /// (board reset mid-send, TX FIFO flush).  Null or an identity answer
  /// leaves responses untouched.
  using TxFaultHook = std::function<std::size_t(std::size_t frame_len)>;
  void set_tx_fault_hook(TxFaultHook hook) { tx_fault_hook_ = std::move(hook); }

 private:
  rt::Runtime& runtime_;
  beans::SerialBean& serial_;
  codegen::SignalBuffer& buffer_;
  FrameDecoder decoder_;
  bool respond_ = false;
  bool duplicate_ = false;
  bool have_last_seq_ = false;
  std::uint8_t respond_seq_ = 0;
  std::uint8_t last_seq_ = 0;
  std::uint64_t frames_processed_ = 0;
  std::uint64_t duplicate_frames_ = 0;
  std::uint64_t per_byte_cycles_ = 40;
  TxFaultHook tx_fault_hook_;

  /// Session-lifetime scratch: reused every frame.
  std::vector<double> inputs_scratch_;
  std::vector<std::uint8_t> tx_payload_;
  std::vector<std::uint8_t> tx_bytes_;
};

}  // namespace iecd::pil
