#include "evidence/schema.hpp"

namespace iecd::evidence {

std::size_t field_fixed_size(FieldType t) {
  switch (t) {
    case FieldType::kU8: return 1;
    case FieldType::kU16: return 2;
    case FieldType::kU32: return 4;
    case FieldType::kU64: return 8;
    case FieldType::kI64: return 8;
    case FieldType::kF64: return 8;
    case FieldType::kString: return 0;
    case FieldType::kBytes: return 0;
  }
  return 0;
}

std::size_t Schema::min_payload_size() const {
  std::size_t total = 0;
  for (const auto& f : fields) {
    const std::size_t fixed = field_fixed_size(f.type);
    total += fixed > 0 ? fixed : 4;  // variable fields: length prefix
  }
  return total;
}

void SchemaRegistry::add(Schema schema) {
  schemas_[schema.id] = std::move(schema);
}

const Schema* SchemaRegistry::find(std::uint16_t id) const {
  const auto it = schemas_.find(id);
  return it == schemas_.end() ? nullptr : &it->second;
}

bool SchemaRegistry::compatible(const Schema& artifact, const Schema& reader,
                                std::string* why) {
  const auto fail = [&](const std::string& message) {
    if (why) *why = "schema " + std::to_string(artifact.id) + " (" +
                    artifact.name + "): " + message;
    return false;
  };
  if (artifact.id != reader.id) return fail("id mismatch");
  if (artifact.name != reader.name) {
    return fail("name differs from reader's '" + reader.name + "'");
  }
  if (artifact.version > reader.version) {
    return fail("version " + std::to_string(artifact.version) +
                " newer than reader's " + std::to_string(reader.version));
  }
  if (artifact.fields.size() > reader.fields.size()) {
    return fail("more fields than reader knows");
  }
  for (std::size_t i = 0; i < artifact.fields.size(); ++i) {
    if (!(artifact.fields[i] == reader.fields[i])) {
      return fail("field " + std::to_string(i) + " ('" +
                  artifact.fields[i].name + "') differs from reader's '" +
                  reader.fields[i].name + "'");
    }
  }
  return true;
}

const SchemaRegistry& SchemaRegistry::builtin() {
  static const SchemaRegistry registry = [] {
    using FT = FieldType;
    SchemaRegistry r;
    r.add({kSchemaStringIntern, 1, "string_intern",
           {{FT::kU32, "id"}, {FT::kString, "str"}}});
    r.add({kSchemaTraceEvent, 1, "trace_event",
           {{FT::kU8, "type"},
            {FT::kU32, "category"},
            {FT::kU32, "name"},
            {FT::kU32, "track"},
            {FT::kI64, "time_ns"},
            {FT::kI64, "dur_ns"},
            {FT::kU64, "seq"},
            {FT::kF64, "value"}}});
    r.add({kSchemaMetricCounter, 1, "metric_counter",
           {{FT::kString, "name"}, {FT::kU64, "value"}}});
    r.add({kSchemaMetricGauge, 1, "metric_gauge",
           {{FT::kString, "name"}, {FT::kF64, "value"}}});
    r.add({kSchemaMetricStats, 1, "metric_stats",
           {{FT::kString, "name"},
            {FT::kU64, "count"},
            {FT::kF64, "mean"},
            {FT::kF64, "m2"},
            {FT::kF64, "sum"},
            {FT::kF64, "min"},
            {FT::kF64, "max"}}});
    r.add({kSchemaMetricSeries, 1, "metric_series",
           {{FT::kString, "name"}, {FT::kBytes, "samples_f64"}}});
    r.add({kSchemaMetricHistogram, 1, "metric_histogram",
           {{FT::kString, "name"},
            {FT::kF64, "lo"},
            {FT::kF64, "hi"},
            {FT::kBytes, "bin_counts_u64"}}});
    r.add({kSchemaBuildInfo, 1, "build_info",
           {{FT::kString, "git_sha"},
            {FT::kString, "compiler"},
            {FT::kString, "flags"},
            {FT::kString, "build_type"}}});
    r.add({kSchemaRunMeta, 1, "run_meta",
           {{FT::kString, "name"},
            {FT::kU64, "index"},
            {FT::kU64, "seed"}}});
    r.add({kSchemaHealthSummary, 1, "health_summary",
           {{FT::kString, "source"},
            {FT::kU64, "runs"},
            {FT::kU64, "deadline_misses"},
            {FT::kU64, "anomalies"},
            {FT::kU8, "healthy"},
            {FT::kString, "json"}}});
    r.add({kSchemaCampaignSummary, 1, "campaign_summary",
           {{FT::kString, "name"},
            {FT::kU64, "seed"},
            {FT::kU64, "runs"},
            {FT::kU64, "unrecovered"},
            {FT::kU64, "faults_injected"},
            {FT::kU64, "fault_opportunities"},
            {FT::kString, "json"}}});
    r.add({kSchemaCampaignCheckpoint, 1, "campaign_checkpoint",
           {{FT::kString, "name"},
            {FT::kU64, "config_hash"},
            {FT::kU64, "total_runs"},
            {FT::kU64, "watermark"},
            {FT::kBytes, "state"}}});
    return r;
  }();
  return registry;
}

void SchemaRegistry::encode(const Schema& schema,
                            std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  store_le<std::uint16_t>(payload, schema.id);
  store_le<std::uint16_t>(payload, schema.version);
  store_str(payload, schema.name);
  store_le<std::uint16_t>(payload,
                          static_cast<std::uint16_t>(schema.fields.size()));
  for (const auto& f : schema.fields) {
    store_le<std::uint8_t>(payload, static_cast<std::uint8_t>(f.type));
    store_str(payload, f.name);
  }
  store_le<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool SchemaRegistry::decode(const std::uint8_t* payload, std::size_t size,
                            Schema& out) {
  PayloadCursor cur(payload, size);
  std::uint16_t field_count = 0;
  if (!cur.read(out.id) || !cur.read(out.version) ||
      !cur.read_str(out.name) || !cur.read(field_count)) {
    return false;
  }
  out.fields.clear();
  out.fields.reserve(field_count);
  for (std::uint16_t i = 0; i < field_count; ++i) {
    std::uint8_t type = 0;
    SchemaField field;
    if (!cur.read(type) || !cur.read_str(field.name)) return false;
    if (type < static_cast<std::uint8_t>(FieldType::kU8) ||
        type > static_cast<std::uint8_t>(FieldType::kBytes)) {
      return false;
    }
    field.type = static_cast<FieldType>(type);
    out.fields.push_back(std::move(field));
  }
  return cur.done();
}

}  // namespace iecd::evidence
