#include "plant/dc_motor.hpp"

#include <algorithm>
#include <cmath>

#include "util/rk4.hpp"

namespace iecd::plant {

void DcMotorDynamics::derivatives(const double state[3], double voltage,
                                  double load_torque, double dx[3]) const {
  const double i = state[0];
  const double w = state[1];
  dx[0] = (voltage - params.resistance * i - params.ke * w) /
          params.inductance;
  dx[1] = (params.kt * i - params.damping * w - load_torque) / params.inertia;
  dx[2] = w;
}

DcMotorBlock::DcMotorBlock(std::string name, DcMotorParams params)
    : Block(std::move(name), 1, 3) {
  dynamics_.params = params;
  set_sample_time(model::SampleTime::continuous());
}

void DcMotorBlock::initialize(const model::SimContext& ctx) {
  state_[0] = state_[1] = state_[2] = 0.0;
  output(ctx);
}

void DcMotorBlock::output(const model::SimContext&) {
  set_out(0, state_[1]);
  set_out(1, state_[2]);
  set_out(2, state_[0]);
}

void DcMotorBlock::read_states(std::span<double> into) const {
  std::copy(state_, state_ + 3, into.begin());
}

void DcMotorBlock::write_states(std::span<const double> from) {
  std::copy(from.begin(), from.begin() + 3, state_);
}

void DcMotorBlock::derivatives(const model::SimContext& ctx,
                               std::span<double> dx) const {
  const double u = in(0);
  const double tau = load_ ? load_(ctx.t, state_[1]) : 0.0;
  double out[3];
  dynamics_.derivatives(state_, u, tau, out);
  std::copy(out, out + 3, dx.begin());
}

DcMotorSim::DcMotorSim(sim::World& world, DcMotorParams params,
                       std::string name)
    : name_(std::move(name)) {
  dynamics_.params = params;
  world.attach(*this);
}

void DcMotorSim::reset() {
  state_[0] = state_[1] = state_[2] = 0.0;
  last_ = 0;
}

void DcMotorSim::drive_from_duty(const sim::ZohSignal* duty) { duty_ = duty; }

void DcMotorSim::set_direction_source(std::function<double()> dir) {
  direction_ = std::move(dir);
}

void DcMotorSim::set_max_step(sim::SimTime h) {
  max_step_ = h > 0 ? h : sim::microseconds(20);
}

double DcMotorSim::voltage_at(sim::SimTime t) const {
  const double duty = duty_ ? duty_->value_at(t) : 0.0;
  const double dir = direction_ ? direction_() : 1.0;
  return duty * dynamics_.params.supply_voltage * dir;
}

void DcMotorSim::advance_to(sim::SimTime t) {
  while (last_ < t) {
    const sim::SimTime step = std::min<sim::SimTime>(max_step_, t - last_);
    const double h = sim::to_seconds(step);
    const double t0 = sim::to_seconds(last_);
    // The duty is piecewise constant; sampling at the interval midpoint
    // limits the error when a change lands inside the step.
    const double u = voltage_at(last_ + step / 2);
    // Shared classic RK4 (util/rk4.hpp): same stage candidates, stage
    // times and combination weights the inline loops always used —
    // tests/batch_test.cpp locks the trajectory bits.
    util::rk4_step(state_, t0, h,
                   [&](double time, const double* y, double* dx) {
                     dynamics_.derivatives(y, u,
                                           load_ ? load_(time, y[1]) : 0.0,
                                           dx);
                   });
    last_ += step;
  }
}

double DcMotorSim::speed_at(sim::SimTime t) {
  advance_to(t);
  return state_[1];
}

double DcMotorSim::angle_at(sim::SimTime t) {
  advance_to(t);
  return state_[2];
}

}  // namespace iecd::plant
