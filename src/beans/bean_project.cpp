#include "beans/bean_project.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "beans/adc_bean.hpp"
#include "beans/bit_io_bean.hpp"
#include "util/strings.hpp"

namespace iecd::beans {

BeanProject::BeanProject(std::string name, const std::string& derivative)
    : name_(std::move(name)),
      cpu_(std::make_unique<CpuBean>("CPU", derivative)) {}

util::DiagnosticList BeanProject::select_derivative(
    const std::string& derivative) {
  util::DiagnosticList diagnostics;
  if (!cpu_->set_property("derivative", derivative, diagnostics)) {
    return diagnostics;
  }
  notify(ProjectChange::kCpuChanged, cpu_->name(), derivative);
  diagnostics.merge(validate());
  return diagnostics;
}

Bean* BeanProject::find(const std::string& instance_name) {
  if (cpu_->name() == instance_name) return cpu_.get();
  for (const auto& b : beans_) {
    if (b->name() == instance_name) return b.get();
  }
  return nullptr;
}

const Bean* BeanProject::find(const std::string& instance_name) const {
  return const_cast<BeanProject*>(this)->find(instance_name);
}

void BeanProject::ensure_unique(const std::string& instance_name) const {
  if (const_cast<BeanProject*>(this)->find(instance_name)) {
    throw std::invalid_argument("BeanProject: duplicate bean name " +
                                instance_name);
  }
}

bool BeanProject::remove(const std::string& instance_name) {
  const auto it = std::find_if(
      beans_.begin(), beans_.end(),
      [&](const auto& b) { return b->name() == instance_name; });
  if (it == beans_.end()) return false;
  beans_.erase(it);
  validated_ok_ = false;
  notify(ProjectChange::kRemoved, instance_name, "");
  return true;
}

bool BeanProject::rename(const std::string& old_name,
                         const std::string& new_name) {
  Bean* bean = find(old_name);
  if (!bean || bean == cpu_.get()) return false;
  ensure_unique(new_name);
  bean->rename(new_name);
  notify(ProjectChange::kRenamed, old_name, new_name);
  return true;
}

util::DiagnosticList BeanProject::set_property(const std::string& bean,
                                               const std::string& property,
                                               const PropertyValue& value) {
  util::DiagnosticList diagnostics;
  Bean* b = find(bean);
  if (!b) {
    diagnostics.error(name_ + "." + bean, "unknown bean");
    return diagnostics;
  }
  if (!b->set_property(property, value, diagnostics)) return diagnostics;
  notify(ProjectChange::kPropertyChanged, bean, property);
  // Immediate verification: every accepted edit re-runs the expert system.
  diagnostics.merge(validate());
  return diagnostics;
}

void BeanProject::check_aggregate_resources(
    const mcu::DerivativeSpec& cpu, util::DiagnosticList& diagnostics) const {
  ResourceDemand total;
  for (const auto& b : beans_) {
    const ResourceDemand d = b->demand();
    total.adc_channels += d.adc_channels;
    total.pwm_channels += d.pwm_channels;
    total.timer_channels += d.timer_channels;
    total.quadrature_decoders += d.quadrature_decoders;
    total.uarts += d.uarts;
    total.gpio_pins += d.gpio_pins;
  }
  const auto check = [&](int used, int have, const char* what) {
    if (used > have) {
      diagnostics.error(
          name_ + ".resources",
          util::format("%d %s requested but %s has only %d", used, what,
                       cpu.name.c_str(), have));
    }
  };
  check(total.adc_channels, cpu.adc_channels, "ADC channels");
  check(total.pwm_channels, cpu.pwm_channels, "PWM channels");
  check(total.timer_channels, cpu.timer_channels, "timer channels");
  check(total.quadrature_decoders, cpu.quadrature_decoders,
        "quadrature decoders");
  check(total.uarts, cpu.uarts, "SCI modules");
  check(total.gpio_pins, cpu.gpio_pins, "GPIO pins");
}

void BeanProject::check_explicit_conflicts(
    util::DiagnosticList& diagnostics) const {
  std::map<std::int64_t, std::string> adc_channels;
  std::map<std::int64_t, std::string> gpio_pins;
  for (const auto& b : beans_) {
    if (const auto* adc = dynamic_cast<const AdcBean*>(b.get())) {
      const std::int64_t ch = adc->properties().get_int("channel");
      const auto [it, inserted] = adc_channels.emplace(ch, adc->name());
      if (!inserted) {
        diagnostics.error(
            adc->name() + ".channel",
            util::format("ADC channel %lld already claimed by %s",
                         static_cast<long long>(ch), it->second.c_str()));
      }
    }
    if (const auto* bit = dynamic_cast<const BitIoBean*>(b.get())) {
      const std::int64_t pin = bit->properties().get_int("pin");
      const auto [it, inserted] = gpio_pins.emplace(pin, bit->name());
      if (!inserted) {
        diagnostics.error(
            bit->name() + ".pin",
            util::format("pin %lld already claimed by %s",
                         static_cast<long long>(pin), it->second.c_str()));
      }
    }
  }
}

util::DiagnosticList BeanProject::validate() {
  util::DiagnosticList diagnostics;
  const mcu::DerivativeSpec& cpu = cpu_->derivative();
  cpu_->validate(cpu, diagnostics);
  for (const auto& b : beans_) b->validate(cpu, diagnostics);
  check_aggregate_resources(cpu, diagnostics);
  check_explicit_conflicts(diagnostics);
  validated_ok_ = !diagnostics.has_errors();
  return diagnostics;
}

void BeanProject::bind(mcu::Mcu& mcu) {
  if (!validated_ok_) {
    throw std::logic_error(
        "BeanProject: bind requires an error-free validate() first");
  }
  if (mcu.spec().name != cpu_->derivative().name) {
    throw std::logic_error(
        "BeanProject: MCU instance derivative does not match the CPU bean");
  }
  bind_ctx_ = std::make_unique<BindContext>(mcu);
  cpu_->bind(*bind_ctx_);
  for (const auto& b : beans_) b->bind(*bind_ctx_);
  bound_ = true;
}

std::vector<DriverSource> BeanProject::generate_drivers(DriverApi api) const {
  std::vector<DriverSource> out;
  if (api == DriverApi::kAutosar) {
    out.push_back(autosar::std_types_header());
    out.push_back(autosar::driver_source(*cpu_));
    for (const auto& b : beans_) out.push_back(autosar::driver_source(*b));
  } else {
    out.push_back(pe_types_header());
    out.push_back(cpu_->driver_source());
    for (const auto& b : beans_) out.push_back(b->driver_source());
  }
  return out;
}

std::string BeanProject::inspector_render() const {
  std::string out = util::format("Project %s (derivative %s)\n", name_.c_str(),
                                 cpu_->derivative().name.c_str());
  out += cpu_->inspector_render();
  for (const auto& b : beans_) {
    out += "\n";
    out += b->inspector_render();
  }
  return out;
}

int BeanProject::add_observer(Observer observer) {
  const int id = next_observer_id_++;
  observers_.emplace_back(id, std::move(observer));
  return id;
}

void BeanProject::remove_observer(int id) {
  observers_.erase(
      std::remove_if(observers_.begin(), observers_.end(),
                     [id](const auto& p) { return p.first == id; }),
      observers_.end());
}

void BeanProject::notify(ProjectChange change, const std::string& bean_name,
                         const std::string& detail) {
  validated_ok_ = false;
  for (const auto& [id, obs] : observers_) obs(change, bean_name, detail);
}

DriverSource pe_types_header() {
  DriverSource out;
  out.header_name = "PE_Types.h";
  out.source_name = "";
  out.header =
      "/* PE_Types.h -- shared typedefs for generated bean drivers. */\n"
      "#ifndef __PE_Types_H\n#define __PE_Types_H\n\n"
      "typedef unsigned char  bool;\n"
      "typedef unsigned char  byte;\n"
      "typedef unsigned short word;\n"
      "typedef unsigned long  dword;\n"
      "typedef signed short   int16;\n"
      "typedef signed long    int32;\n\n"
      "#define ERR_OK      0\n"
      "#define ERR_BUSY    2\n"
      "#define ERR_TXFULL  6\n"
      "#define ERR_RXEMPTY 7\n\n"
      "#endif /* __PE_Types_H */\n";
  return out;
}

}  // namespace iecd::beans
