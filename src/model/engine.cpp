#include "model/engine.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "trace/trace.hpp"
#include "util/rk4.hpp"
#include "util/strings.hpp"

namespace iecd::model {

namespace {

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

}  // namespace

Engine::Engine(Model& model, EngineOptions options)
    : model_(model), options_(options) {
  if (options_.minor_steps < 1) {
    throw std::invalid_argument("Engine: minor_steps >= 1");
  }
}

void Engine::resolve_sample_times() {
  // Base period: gcd of the explicit discrete rates, else the option, else
  // 1 ms.
  std::int64_t gcd_ns = 0;
  for (const auto& b : model_.blocks()) {
    const SampleTime st = b->sample_time();
    if (st.kind == SampleTime::Kind::kDiscrete) {
      if (!(st.period > 0)) {
        throw std::logic_error(b->name() + ": discrete period must be > 0");
      }
      gcd_ns = std::gcd(gcd_ns, to_ns(st.period));
      if (st.offset > 0) gcd_ns = std::gcd(gcd_ns, to_ns(st.offset));
    }
  }
  if (options_.base_period > 0) {
    const std::int64_t opt_ns = to_ns(options_.base_period);
    if (gcd_ns != 0 && gcd_ns % opt_ns != 0 && opt_ns % gcd_ns != 0) {
      throw std::logic_error(
          "Engine: base_period incompatible with block rates");
    }
    gcd_ns = gcd_ns == 0 ? opt_ns : std::gcd(gcd_ns, opt_ns);
  }
  if (gcd_ns == 0) gcd_ns = to_ns(1e-3);
  base_period_ns_ = gcd_ns;
  base_period_ = static_cast<double>(gcd_ns) * 1e-9;

  // Inheritance propagation in sorted order: a block with an inherited rate
  // becomes continuous if any of its drivers is continuous, otherwise it
  // runs at the base rate.
  for (Block* b : model_.sorted()) {
    const SampleTime st = b->sample_time();
    switch (st.kind) {
      case SampleTime::Kind::kContinuous:
        b->set_resolved_continuous(true);
        b->set_resolved_period(base_period_);
        break;
      case SampleTime::Kind::kDiscrete:
        b->set_resolved_continuous(false);
        b->set_resolved_period(st.period);
        break;
      case SampleTime::Kind::kInherited: {
        bool continuous = false;
        double period = base_period_;
        for (int i = 0; i < b->input_count(); ++i) {
          if (!b->input_connected(i)) continue;
          const Block* src = b->input(i).src;
          if (src->resolved_continuous()) continuous = true;
        }
        b->set_resolved_continuous(continuous);
        b->set_resolved_period(period);
        break;
      }
    }
    if (!b->resolved_continuous()) {
      const std::int64_t p_ns = to_ns(b->resolved_period());
      if (p_ns % base_period_ns_ != 0) {
        throw std::logic_error(util::format(
            "%s: period %.9g s is not a multiple of the base period %.9g s",
            b->name().c_str(), b->resolved_period(), base_period_));
      }
    }
  }
}

void Engine::initialize() {
  resolve_sample_times();

  continuous_blocks_.clear();
  state_offsets_.clear();
  total_states_ = 0;
  for (Block* b : model_.sorted()) {
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (b->resolved_continuous() || n > 0) {
      continuous_blocks_.push_back(b);
      state_offsets_.push_back(total_states_);
      total_states_ += n;
    }
  }
  states_.assign(total_states_, 0.0);
  k1_.assign(total_states_, 0.0);
  k2_.assign(total_states_, 0.0);
  k3_.assign(total_states_, 0.0);
  k4_.assign(total_states_, 0.0);
  scratch_.assign(total_states_, 0.0);

  SimContext ctx{0.0, base_period_, false};
  for (Block* b : model_.sorted()) b->initialize(ctx);

  // Collect initial continuous states set by the blocks themselves.
  for (std::size_t i = 0; i < continuous_blocks_.size(); ++i) {
    Block* b = continuous_blocks_[i];
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) {
      b->read_states(std::span<double>(states_).subspan(state_offsets_[i], n));
    }
  }

  build_exec_list();

  major_index_ = 0;
  initialized_ = true;
}

void Engine::build_exec_list() {
  exec_.clear();
  exec_.reserve(model_.sorted().size());
  for (Block* b : model_.sorted()) {
    ExecEntry e{b, 0, 0};
    if (!b->resolved_continuous()) {
      // Divisibility was validated in resolve_sample_times(); a block whose
      // rate was never resolved (graph edited mid-run) runs at base rate.
      const std::int64_t p_ns = to_ns(b->resolved_period());
      e.period_ticks =
          p_ns > 0 ? static_cast<std::uint64_t>(p_ns / base_period_ns_) : 1;
      if (e.period_ticks == 0) e.period_ticks = 1;
      const std::int64_t o_ns = to_ns(b->sample_time().offset);
      e.offset_ticks =
          o_ns > 0 ? static_cast<std::uint64_t>(o_ns / base_period_ns_) : 0;
    }
    exec_.push_back(e);
  }
  model_epoch_ = model_.order_epoch();
}

double Engine::time() const {
  return static_cast<double>(major_index_) *
         static_cast<double>(base_period_ns_) * 1e-9;
}

void Engine::eval_derivatives(double t, std::vector<double>& candidate,
                              std::vector<double>& dx) {
  SimContext ctx{t, base_period_, true};
  for (std::size_t i = 0; i < continuous_blocks_.size(); ++i) {
    Block* b = continuous_blocks_[i];
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) {
      b->write_states(
          std::span<const double>(candidate).subspan(state_offsets_[i], n));
    }
  }
  for (Block* b : continuous_blocks_) b->output(ctx);
  for (std::size_t i = 0; i < continuous_blocks_.size(); ++i) {
    Block* b = continuous_blocks_[i];
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) {
      b->derivatives(ctx, std::span<double>(dx).subspan(state_offsets_[i], n));
    }
  }
}

void Engine::integrate(double t0) {
  if (total_states_ == 0) return;
  const double h =
      base_period_ / static_cast<double>(options_.minor_steps);
  for (int m = 0; m < options_.minor_steps; ++m) {
    const double t = t0 + h * m;
    // Classic RK4 (stage/combination loops shared via util/rk4.hpp; the
    // derivative evaluations stay here because they re-run the continuous
    // blocks' output methods between stages).
    eval_derivatives(t, states_, k1_);
    util::rk4_stage(states_, k1_, 0.5 * h, scratch_);
    eval_derivatives(t + 0.5 * h, scratch_, k2_);
    util::rk4_stage(states_, k2_, 0.5 * h, scratch_);
    eval_derivatives(t + 0.5 * h, scratch_, k3_);
    util::rk4_stage(states_, k3_, h, scratch_);
    eval_derivatives(t + h, scratch_, k4_);
    util::rk4_combine(states_, h, k1_, k2_, k3_, k4_);
  }
  // Leave the blocks holding the integrated states.
  for (std::size_t i = 0; i < continuous_blocks_.size(); ++i) {
    Block* b = continuous_blocks_[i];
    const auto n = static_cast<std::size_t>(b->continuous_state_count());
    if (n) {
      b->write_states(
          std::span<const double>(states_).subspan(state_offsets_[i], n));
    }
  }
}

bool Engine::step() {
  if (!initialized_) initialize();
  if (model_epoch_ != model_.order_epoch()) {
    // Graph edited mid-run (rare): refresh the flattened dispatch list.
    build_exec_list();
  }
  const double t = time();
  if (t >= options_.stop_time - 1e-12) return false;
  const std::uint64_t major = major_index_;
  SimContext ctx{t, base_period_, false};
  for (const ExecEntry& e : exec_) {
    if (due(e, major)) e.block->output(ctx);
  }
  for (const ExecEntry& e : exec_) {
    if (due(e, major)) e.block->update(ctx);
  }
  integrate(t);
  if (auto* tr = trace::recorder()) {
    const auto begin =
        static_cast<std::int64_t>(major_index_) * base_period_ns_;
    tr->span_complete("model", "major_step", model_.name(), begin,
                      begin + base_period_ns_,
                      static_cast<double>(major_index_));
  }
  ++major_index_;
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::advance_to(double t) {
  if (!initialized_) initialize();
  while (time() + 1e-12 < t && step()) {
  }
}

}  // namespace iecd::model
