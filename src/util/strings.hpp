/// \file strings.hpp
/// Small string helpers shared across modules (identifier checks for
/// generated C code, joining, printf-style formatting).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace iecd::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins \p parts with \p sep.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if \p s is a valid C identifier ([A-Za-z_][A-Za-z0-9_]*).
bool is_c_identifier(const std::string& s);

/// Makes \p s a valid C identifier by replacing illegal characters with '_'
/// and prefixing a '_' if it starts with a digit.  Empty input -> "_".
std::string sanitize_c_identifier(const std::string& s);

/// Indents every line of \p text by \p spaces spaces.
std::string indent(const std::string& text, int spaces);

}  // namespace iecd::util
