/// \file plan.hpp
/// The fault matrix of a campaign: per-site rates (probability per
/// opportunity — per byte on a serial channel, per frame on the CAN bus,
/// per dispatch on the CPU, per poll on the encoder) plus the magnitudes
/// the fired faults apply.  A plan with every rate at zero wires NOTHING:
/// the site helpers in sites.hpp install no hooks, so a zero-rate campaign
/// run is bit-identical to a run with no fault subsystem attached (the
/// determinism suite locks this).
#pragma once

#include <cstdint>

namespace iecd::fault {

struct FaultPlan {
  // ------------------------------------------------ serial link (per byte)
  double serial_corrupt_rate = 0.0;  ///< single-bit flip on the wire
  double serial_drop_rate = 0.0;     ///< byte lost (framing error, discarded)
  double serial_dup_rate = 0.0;      ///< byte delivered twice (glitch echo)

  // -------------------------------------------------- CAN bus (per frame)
  double can_corrupt_rate = 0.0;  ///< payload/CRC corruption -> rx discard
  double can_drop_rate = 0.0;     ///< frame lost on the wire
  double can_dup_rate = 0.0;      ///< frame retransmitted back-to-back

  // ------------------------------------------- PIL framing (per tx frame)
  double pil_truncate_rate = 0.0;  ///< frame cut short (reset mid-send)
  double pil_delay_rate = 0.0;     ///< host tx stalled before the wire
  double pil_delay_max_s = 0.0;    ///< uniform delay bound [s]

  // ------------------------------------------- MCU timing (per dispatch)
  double irq_spike_rate = 0.0;          ///< extra interrupt latency
  std::uint64_t irq_spike_cycles = 0;   ///< spike magnitude [cycles]
  double task_overrun_rate = 0.0;       ///< periodic step runs long
  std::uint64_t task_overrun_cycles = 0;

  // -------------------------------------- sensors/plant (per conversion /
  // per encoder poll / pulses per second)
  double adc_stuck_rate = 0.0;        ///< conversion repeats the last code
  double adc_noise_rate = 0.0;        ///< conversion jittered by +-noise_lsb
  std::uint32_t adc_noise_lsb = 0;
  double encoder_glitch_rate = 0.0;   ///< spurious +-glitch_counts slip
  std::int32_t encoder_glitch_counts = 0;
  double torque_pulse_rate_hz = 0.0;  ///< expected disturbance pulses / s
  double torque_pulse_nm = 0.0;       ///< pulse amplitude (random sign)
  double torque_pulse_s = 0.0;        ///< pulse width [s]

  // ------------------------------------- co-sim nodes (per node, per run)
  /// Probability a farm node dies mid-run (control timer disabled, PWM
  /// zeroed at a site-drawn time); site "cosim.<node>".
  double node_kill_rate = 0.0;
  /// Probability a farm node runs degraded: its control timer is stretched
  /// by node_degrade_factor (same site, drawn before the kill draw).
  double node_degrade_rate = 0.0;
  double node_degrade_factor = 1.0;  ///< period stretch for degraded nodes

  /// True when no site would ever fire: the wiring helpers install no
  /// hooks, create no sites, and the run stays bit-identical to one with
  /// no fault subsystem at all.
  bool empty() const {
    return serial_corrupt_rate <= 0.0 && serial_drop_rate <= 0.0 &&
           serial_dup_rate <= 0.0 && can_corrupt_rate <= 0.0 &&
           can_drop_rate <= 0.0 && can_dup_rate <= 0.0 &&
           pil_truncate_rate <= 0.0 && pil_delay_rate <= 0.0 &&
           irq_spike_rate <= 0.0 && task_overrun_rate <= 0.0 &&
           adc_stuck_rate <= 0.0 && adc_noise_rate <= 0.0 &&
           encoder_glitch_rate <= 0.0 && torque_pulse_rate_hz <= 0.0 &&
           node_kill_rate <= 0.0 && node_degrade_rate <= 0.0;
  }

  /// Same magnitudes, every rate multiplied by \p factor (campaign
  /// stress-level axis; 0 yields an empty plan).
  FaultPlan scaled(double factor) const {
    FaultPlan p = *this;
    p.serial_corrupt_rate *= factor;
    p.serial_drop_rate *= factor;
    p.serial_dup_rate *= factor;
    p.can_corrupt_rate *= factor;
    p.can_drop_rate *= factor;
    p.can_dup_rate *= factor;
    p.pil_truncate_rate *= factor;
    p.pil_delay_rate *= factor;
    p.irq_spike_rate *= factor;
    p.task_overrun_rate *= factor;
    p.adc_stuck_rate *= factor;
    p.adc_noise_rate *= factor;
    p.encoder_glitch_rate *= factor;
    p.torque_pulse_rate_hz *= factor;
    p.node_kill_rate *= factor;
    p.node_degrade_rate *= factor;
    return p;
  }

  /// The default campaign: every layer perturbed at rates the PIL recovery
  /// layer is expected to survive with zero unrecovered exchanges (the CI
  /// fault-campaign job gates exactly this plan).
  static FaultPlan defaults() {
    FaultPlan p;
    p.serial_corrupt_rate = 5e-4;
    p.serial_drop_rate = 2e-4;
    p.serial_dup_rate = 2e-4;
    p.can_corrupt_rate = 2e-3;
    p.can_drop_rate = 1e-3;
    p.can_dup_rate = 1e-3;
    p.pil_truncate_rate = 2e-3;
    p.pil_delay_rate = 2e-3;
    p.pil_delay_max_s = 1e-4;
    p.irq_spike_rate = 1e-3;
    p.irq_spike_cycles = 2000;
    p.task_overrun_rate = 1e-3;
    p.task_overrun_cycles = 1000;
    p.adc_stuck_rate = 1e-4;
    p.adc_noise_rate = 1e-2;
    p.adc_noise_lsb = 2;
    p.encoder_glitch_rate = 5e-4;
    p.encoder_glitch_counts = 2;
    p.torque_pulse_rate_hz = 2.0;
    p.torque_pulse_nm = 0.002;
    p.torque_pulse_s = 0.01;
    p.node_kill_rate = 0.08;
    p.node_degrade_rate = 0.1;
    p.node_degrade_factor = 1.5;
    return p;
  }
};

}  // namespace iecd::fault
