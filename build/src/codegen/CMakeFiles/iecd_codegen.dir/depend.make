# Empty dependencies file for iecd_codegen.
# This may be replaced when dependencies are built.
