/// \file timer_int_bean.hpp
/// Periodic-interrupt bean ("TimerInt").  Drives the generated model's
/// periodic task: the requested period is solved into prescaler/modulo on
/// the selected derivative, and the OnInterrupt event carries the sample
/// hit into the real-time kernel.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/timer.hpp"

namespace iecd::beans {

class TimerIntBean : public Bean {
 public:
  explicit TimerIntBean(std::string name = "TI1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  void Enable();
  void Disable();

  /// Requested sample period.
  double period_s() const { return properties().get_real("period_s"); }
  /// Achieved period after validation.
  double achieved_period_s() const {
    return properties().get_real("achieved_period_s");
  }

  periph::TimerPeripheral* peripheral() { return timer_.get(); }

 private:
  std::unique_ptr<periph::TimerPeripheral> timer_;
};

}  // namespace iecd::beans
