/// \file bit_io_bean.hpp
/// Single-pin digital I/O bean, optionally with an edge interrupt — used
/// for the case study's push-button keyboard (set-point up/down, mode
/// toggle) and for status outputs.  All BitIo beans of a project share one
/// GPIO port; the project-level expert system rejects two beans claiming
/// the same pin.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/gpio.hpp"

namespace iecd::beans {

/// Owns the GPIO port shared across BitIo beans (see BindContext::gpio).
class GpioPortHolder {
 public:
  GpioPortHolder(mcu::Mcu& mcu, int pins, mcu::IrqVector irq_base);
  periph::GpioPort& port() { return port_; }

 private:
  periph::GpioPort port_;
};

class BitIoBean : public Bean {
 public:
  explicit BitIoBean(std::string name = "Bit1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  bool GetVal() const;
  void SetVal();
  void ClrVal();
  void NegVal();
  void PutVal(bool level);

  int pin() const { return static_cast<int>(properties().get_int("pin")); }
  periph::GpioPort* port() { return port_; }

 private:
  periph::GpioPort* port_ = nullptr;  // owned by the shared holder
};

}  // namespace iecd::beans
