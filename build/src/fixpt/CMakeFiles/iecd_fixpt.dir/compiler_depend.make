# Empty compiler generated dependencies file for iecd_fixpt.
# This may be replaced when dependencies are built.
