
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcu/clock.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/clock.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/clock.cpp.o.d"
  "/root/repo/src/mcu/cost_model.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/cost_model.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/cost_model.cpp.o.d"
  "/root/repo/src/mcu/cpu.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/cpu.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/cpu.cpp.o.d"
  "/root/repo/src/mcu/derivative.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/derivative.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/derivative.cpp.o.d"
  "/root/repo/src/mcu/interrupt_controller.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/interrupt_controller.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/interrupt_controller.cpp.o.d"
  "/root/repo/src/mcu/mcu.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/mcu.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/mcu.cpp.o.d"
  "/root/repo/src/mcu/memory.cpp" "src/mcu/CMakeFiles/iecd_mcu.dir/memory.cpp.o" "gcc" "src/mcu/CMakeFiles/iecd_mcu.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
