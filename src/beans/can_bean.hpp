/// \file can_bean.hpp
/// CAN bean ("FreescaleCAN" in PE terms): high-level message send/receive
/// with an acceptance filter configured as properties, OnReceive event per
/// accepted frame — the distributed-application counterpart of the serial
/// bean.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/can_controller.hpp"

namespace iecd::beans {

class CanBean : public Bean {
 public:
  explicit CanBean(std::string name = "CAN1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  bool SendFrame(const sim::CanFrame& frame);
  std::optional<sim::CanFrame> ReadFrame();

  periph::CanController* peripheral() { return can_.get(); }

 private:
  std::unique_ptr<periph::CanController> can_;
};

}  // namespace iecd::beans
