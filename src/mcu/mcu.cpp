#include "mcu/mcu.hpp"

namespace iecd::mcu {

Mcu::Mcu(sim::World& world, const DerivativeSpec& spec, std::string name)
    : world_(world),
      name_(std::move(name)),
      spec_(spec),
      clock_(spec.clock_hz),
      cpu_(world.queue(), clock_, spec.costs, intc_),
      memory_(spec.memory) {
  world.attach(*this);
}

void Mcu::reset() {
  intc_.reset();
  cpu_.reset();
  for (auto& hook : reset_hooks_) hook();
}

void Mcu::raise_irq(IrqVector vec) {
  if (intc_.raise(vec, world_.now())) cpu_.kick();
}

void Mcu::add_reset_hook(std::function<void()> hook) {
  reset_hooks_.push_back(std::move(hook));
}

}  // namespace iecd::mcu
