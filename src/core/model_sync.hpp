/// \file model_sync.hpp
/// The PES_COM analog: keeps the Simulink-side model and the PE-side bean
/// project synchronized.  "User changes in the model (PE block insertion,
/// erasure, rename etc.) are propagated to the PE project and opposite",
/// and property edits go straight to the bean with immediate expert-system
/// verification.  COM as a transport is replaced by in-process observers.
#pragma once

#include <string>

#include "beans/bean_project.hpp"
#include "core/pe_blocks.hpp"
#include "model/model.hpp"

namespace iecd::core {

class ModelSync {
 public:
  /// \p controller_model is the model PE blocks live in (the controller
  /// subsystem's interior).
  ModelSync(model::Model& controller_model, beans::BeanProject& project);
  ~ModelSync();

  ModelSync(const ModelSync&) = delete;
  ModelSync& operator=(const ModelSync&) = delete;

  // --- Model-side operations (Simulink UI actions) ---
  // Inserting a PE block creates the corresponding bean in the project.
  AdcPeBlock& add_adc(const std::string& name);
  PwmPeBlock& add_pwm(const std::string& name);
  TimerIntPeBlock& add_timer_int(const std::string& name);
  QuadDecPeBlock& add_quad_dec(const std::string& name);
  BitIoPeBlock& add_bit_io(const std::string& name);

  /// Erasing a PE block from the model removes its bean.
  bool remove_pe_block(const std::string& name);
  /// Renaming a PE block renames its bean (and vice versa via observer).
  bool rename_pe_block(const std::string& old_name,
                       const std::string& new_name);

  /// Bean-Inspector edit from the model side: double-click on the block
  /// opens the bean's properties; every change is verified immediately.
  util::DiagnosticList set_block_property(const std::string& block,
                                          const std::string& property,
                                          const beans::PropertyValue& value);

  std::uint64_t propagations() const { return propagations_; }

 private:
  template <typename BlockT, typename BeanT>
  BlockT& add_pair(const std::string& name);
  void on_project_change(beans::ProjectChange change,
                         const std::string& bean_name,
                         const std::string& detail);

  model::Model& model_;
  beans::BeanProject& project_;
  int observer_id_ = 0;
  bool propagating_ = false;
  std::uint64_t propagations_ = 0;
};

}  // namespace iecd::core
