#include "mcu/cost_model.hpp"

namespace iecd::mcu {

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  alu16 += o.alu16;
  mul16 += o.mul16;
  div16 += o.div16;
  alu32 += o.alu32;
  mul32 += o.mul32;
  div32 += o.div32;
  fadd += o.fadd;
  fmul += o.fmul;
  fdiv += o.fdiv;
  mem += o.mem;
  branch += o.branch;
  return *this;
}

OpCounts OpCounts::operator*(std::uint32_t n) const {
  OpCounts out;
  out.alu16 = alu16 * n;
  out.mul16 = mul16 * n;
  out.div16 = div16 * n;
  out.alu32 = alu32 * n;
  out.mul32 = mul32 * n;
  out.div32 = div32 * n;
  out.fadd = fadd * n;
  out.fmul = fmul * n;
  out.fdiv = fdiv * n;
  out.mem = mem * n;
  out.branch = branch * n;
  return out;
}

std::uint64_t CostModel::cycles(const OpCounts& ops) const {
  std::uint64_t c = 0;
  c += static_cast<std::uint64_t>(ops.alu16) * alu16;
  c += static_cast<std::uint64_t>(ops.mul16) * mul16;
  c += static_cast<std::uint64_t>(ops.div16) * div16;
  c += static_cast<std::uint64_t>(ops.alu32) * alu32;
  c += static_cast<std::uint64_t>(ops.mul32) * mul32;
  c += static_cast<std::uint64_t>(ops.div32) * div32;
  c += static_cast<std::uint64_t>(ops.fadd) * fadd;
  c += static_cast<std::uint64_t>(ops.fmul) * fmul;
  c += static_cast<std::uint64_t>(ops.fdiv) * fdiv;
  c += static_cast<std::uint64_t>(ops.mem) * mem;
  c += static_cast<std::uint64_t>(ops.branch) * branch;
  return c;
}

}  // namespace iecd::mcu
