#include "periph/timer.hpp"

#include <stdexcept>

namespace iecd::periph {

TimerPeripheral::TimerPeripheral(mcu::Mcu& mcu, TimerConfig config,
                                 std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {
  if (config.prescaler == 0 || config.modulo == 0) {
    throw std::invalid_argument("TimerPeripheral: prescaler/modulo >= 1");
  }
}

sim::SimTime TimerPeripheral::period() const {
  const std::uint64_t cycles =
      static_cast<std::uint64_t>(config_.prescaler) * config_.modulo;
  return mcu().clock().cycles_to_time(cycles);
}

void TimerPeripheral::start() {
  if (running_) return;
  running_ = true;
  epoch_ = now();
  ticks_ = 0;
  if (jitter_) {
    schedule_next();
  } else {
    arm_recurring();
  }
}

void TimerPeripheral::stop() {
  if (!running_) return;
  running_ = false;
  if (scheduled_) {
    queue().cancel(event_);
    scheduled_ = false;
  }
}

void TimerPeripheral::set_jitter_hook(
    std::function<sim::SimTime(std::uint64_t)> hook) {
  jitter_ = std::move(hook);
  if (running_ && scheduled_) {
    // Re-arm so the hook change shapes the very next activation.
    queue().cancel(event_);
    scheduled_ = false;
    if (jitter_) {
      schedule_next();
    } else {
      arm_recurring();
    }
  }
}

void TimerPeripheral::arm_recurring() {
  // Jitter-free timers ride a single recurring event: the queue re-fires it
  // at exact period multiples with no per-tick rescheduling or allocation.
  sim::SimTime p = period();
  if (p <= 0) p = 1;
  event_ = queue().schedule_every(p, [this] {
    ++ticks_;
    if (config_.overflow_vector >= 0) mcu().raise_irq(config_.overflow_vector);
  });
  scheduled_ = true;
}

void TimerPeripheral::schedule_next() {
  // Activations are anchored to the epoch (no drift accumulation): the
  // k-th tick fires at epoch + k * period + jitter(k).
  const std::uint64_t k = ticks_ + 1;
  sim::SimTime when =
      epoch_ + static_cast<sim::SimTime>(k) * period();
  if (jitter_) when += jitter_(k);
  if (when <= now()) when = now() + 1;  // keep time strictly advancing
  event_ = queue().schedule_at(when, [this] {
    scheduled_ = false;
    if (!running_) return;
    ++ticks_;
    if (config_.overflow_vector >= 0) mcu().raise_irq(config_.overflow_vector);
    schedule_next();
  });
  scheduled_ = true;
}

void TimerPeripheral::reset() {
  stop();
  ticks_ = 0;
}

}  // namespace iecd::periph
