/// \file solvers.hpp
/// The expert-system arithmetic: given a requested high-level setting (a
/// timer period, a PWM frequency, a baud rate) and the selected derivative,
/// compute the register-level configuration (prescaler, modulo, divisor)
/// that realizes it, or report that it cannot be achieved.  This is the
/// substance behind the paper's claim that "some design parameters, such as
/// settings of common prescalers ... are calculated by the expert system".
#pragma once

#include <cstdint>
#include <optional>

#include "mcu/derivative.hpp"
#include "sim/time.hpp"

namespace iecd::beans {

struct TimerSolution {
  std::uint32_t prescaler = 1;
  std::uint32_t modulo = 1;
  double achieved_period_s = 0.0;
  double relative_error = 0.0;  ///< |achieved - requested| / requested
};

/// Finds the prescaler/modulo pair whose period is closest to
/// \p period_s.  Returns nullopt when no combination lands within
/// \p tolerance (relative).  Smaller prescalers are preferred on ties
/// (finer granularity).
std::optional<TimerSolution> solve_timer_period(const mcu::DerivativeSpec& cpu,
                                                double period_s,
                                                double tolerance);

struct PwmSolution {
  std::uint32_t prescaler = 1;
  std::uint32_t modulo = 1;
  double achieved_frequency_hz = 0.0;
  double relative_error = 0.0;
  int duty_resolution_bits = 0;  ///< log2(modulo): effective duty precision
};

/// Finds the configuration achieving \p frequency_hz with the largest
/// modulo (=> best duty resolution) within the counter width.
std::optional<PwmSolution> solve_pwm_frequency(const mcu::DerivativeSpec& cpu,
                                               double frequency_hz,
                                               double tolerance);

/// Conversion time of one sample on this derivative's ADC.
sim::SimTime adc_conversion_time(const mcu::DerivativeSpec& cpu);

/// True if \p baud is one of the derivative's supported standard rates.
bool uart_baud_supported(const mcu::DerivativeSpec& cpu, std::uint32_t baud);

}  // namespace iecd::beans
