/// \file serial_link.hpp
/// Byte-timed asynchronous serial line (the RS232 connection of Fig. 6.2).
/// Each byte occupies start + data + stop bits at the configured baud rate;
/// transmission is serialized per direction (a UART cannot start the next
/// byte before the previous one left the shift register).
///
/// Two delivery modes, chosen by which receiver the endpoint installs:
///
///  - per-byte (set_receiver): every byte is delivered by its own event at
///    its bit-accurate completion time.  Required when the receiver is an
///    MCU peripheral, because each byte raises an interrupt and the ISR
///    serialization between bytes is part of the timing model.  A whole
///    back-to-back burst still costs only ONE event-queue arm: the channel
///    rides a single recurring event whose period is the byte time.
///
///  - whole-burst (set_burst_receiver): one completion event per contiguous
///    burst delivers the buffered bytes as a span together with the first
///    byte's completion time and the byte time, from which every per-byte
///    timestamp is reconstructed analytically (first + k * byte_time — the
///    identical instants the per-byte mode produces).  Right for host-side
///    endpoints that only act on complete frames.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"

namespace iecd::sim {

struct SerialConfig {
  std::uint32_t baud_rate = 115200;  ///< bit clock (SPI: the SCK frequency)
  int data_bits = 8;
  int stop_bits = 1;
  bool parity = false;
  /// Synchronous (SPI-style) transfer: a clock line replaces start/stop
  /// framing, so a byte costs exactly data_bits clocks.  The paper's
  /// future-work item — "a support for new communications (e.g. SPI)".
  bool synchronous = false;

  /// Bits on the wire per byte (async: start + data + parity + stop;
  /// synchronous: data only).
  int bits_per_byte() const {
    if (synchronous) return data_bits;
    return 1 + data_bits + (parity ? 1 : 0) + stop_bits;
  }

  /// Wire time of a single byte.
  SimTime byte_time() const;

  static SerialConfig rs232(std::uint32_t baud) {
    SerialConfig cfg;
    cfg.baud_rate = baud;
    return cfg;
  }
  static SerialConfig spi(std::uint32_t clock_hz) {
    SerialConfig cfg;
    cfg.baud_rate = clock_hz;
    cfg.synchronous = true;
    return cfg;
  }
};

/// One direction of a serial line.  Two of these make a full-duplex link.
class SerialChannel {
 public:
  /// Burst receiver: (bytes, completion time of bytes[0], byte time).
  /// Byte k of the span completed at first_done + k * byte_time.
  using BurstCallback =
      std::function<void(std::span<const std::uint8_t>, SimTime, SimTime)>;

  SerialChannel(EventQueue& queue, SerialConfig config, std::string name);

  /// Queues a byte for transmission; it arrives bits_per_byte()/baud later,
  /// after any bytes already in flight.
  void transmit(std::uint8_t byte);

  /// Queues a whole buffer as one contiguous burst.
  void transmit(const std::uint8_t* data, std::size_t len);
  void transmit(std::span<const std::uint8_t> data) {
    transmit(data.data(), data.size());
  }

  /// Receiver callback (byte, arrival_time).  Must be set before traffic.
  void set_receiver(std::function<void(std::uint8_t, SimTime)> on_byte);

  /// Whole-burst receiver: replaces the per-byte callback with one
  /// invocation per contiguous burst.  Per-byte timestamps are recovered
  /// from (first_done, byte_time); they are byte-identical to per-byte mode.
  void set_burst_receiver(BurstCallback on_burst);

  /// Tests inject corruption deterministically: the next byte to enter the
  /// shift register is XORed with \p xor_mask.
  void corrupt_next_byte(std::uint8_t xor_mask);

  /// Per-byte fault decision, consulted at delivery time for every byte on
  /// the wire (fault-injection campaigns; see src/fault/).
  enum class ByteFaultAction : std::uint8_t {
    kNone,
    kCorrupt,    ///< XOR with xor_mask before delivery
    kDrop,       ///< byte occupies the wire but is never delivered
    kDuplicate,  ///< byte delivered twice (receiver-side glitch echo)
  };
  struct ByteFault {
    ByteFaultAction action = ByteFaultAction::kNone;
    std::uint8_t xor_mask = 0;
  };
  using ByteFaultHook = std::function<ByteFault(std::uint8_t byte)>;

  /// Installs (null: removes) the fault hook.  Without a hook — or with a
  /// hook that always answers kNone — delivery is byte-identical to the
  /// unhooked channel, including burst mode's zero-copy span.  Count-
  /// changing faults (drop/duplicate) in burst mode shift the analytic
  /// per-byte timestamps of the bytes behind them within the burst — the
  /// burst still completes at the same instant.
  void set_fault_hook(ByteFaultHook hook);

  std::uint64_t bytes_corrupted() const { return bytes_corrupted_; }
  std::uint64_t bytes_dropped() const { return bytes_dropped_; }
  std::uint64_t bytes_duplicated() const { return bytes_duplicated_; }

  const std::string& name() const { return name_; }

  const SerialConfig& config() const { return config_; }
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  /// Total wire time spent transferring (busy time), for overhead metrics.
  SimTime busy_time() const { return busy_time_; }
  /// Instant the wire finishes everything queued so far (now when idle).
  SimTime wire_free_at() const;

  void reset();

 private:
  SimTime byte_time() const;
  void deliver_tick();
  void deliver_burst();
  void arm_burst_event();
  std::size_t pending() const { return buf_.size() - head_; }
  void maybe_compact();

  EventQueue& queue_;
  SerialConfig config_;
  std::string name_;
  std::function<void(std::uint8_t, SimTime)> on_byte_;
  BurstCallback on_burst_;

  /// TX buffer: bytes [head_, buf_.size()) are still on (or waiting for)
  /// the wire.  Reused across bursts — steady-state traffic allocates
  /// nothing.
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;

  bool active_ = false;        ///< a delivery event is armed
  EventId event_ = 0;
  SimTime wire_free_at_ = 0;   ///< completion time of the last queued byte
  SimTime burst_t0_ = 0;       ///< shift-start of buf_[head_] (burst mode)
  std::size_t scheduled_ = 0;  ///< bytes the armed burst event will deliver

  mutable SimTime byte_time_cache_ = 0;

  bool corrupt_armed_ = false;
  std::uint8_t pending_corruption_ = 0;
  std::uint64_t corrupt_index_ = 0;  ///< absolute delivery index to corrupt

  ByteFaultHook fault_hook_;
  /// Lazily-filled scratch for burst faults: allocated only the first time
  /// a fault actually fires inside a burst, so clean traffic keeps the
  /// zero-copy aliasing span.
  std::vector<std::uint8_t> fault_scratch_;
  std::uint64_t bytes_corrupted_ = 0;
  std::uint64_t bytes_dropped_ = 0;
  std::uint64_t bytes_duplicated_ = 0;

  std::uint64_t bytes_transferred_ = 0;
  SimTime busy_time_ = 0;
};

/// Full-duplex point-to-point link: endpoint A <-> endpoint B.
class SerialLink : public Component {
 public:
  SerialLink(World& world, SerialConfig config, std::string name = "rs232");

  SerialChannel& a_to_b() { return a_to_b_; }
  SerialChannel& b_to_a() { return b_to_a_; }

  const std::string& name() const override { return name_; }
  void reset() override;

  const SerialConfig& config() const { return config_; }

 private:
  std::string name_;
  SerialConfig config_;
  SerialChannel a_to_b_;
  SerialChannel b_to_a_;
};

}  // namespace iecd::sim
