/// \file uart.hpp
/// Asynchronous serial interface (SCI).  Transmit bytes enter the TX FIFO
/// and leave over a sim::SerialChannel at wire speed; received bytes land
/// in a one-byte data register and raise the RX interrupt — reading too
/// late overruns, exactly the failure mode a too-slow PIL controller would
/// show on real hardware.
#pragma once

#include <cstdint>
#include <optional>

#include "obs/watermark.hpp"
#include "periph/peripheral.hpp"
#include "sim/serial_link.hpp"

namespace iecd::periph {

struct UartConfig {
  mcu::IrqVector rx_vector = -1;
  mcu::IrqVector tx_vector = -1;  ///< raised when the TX FIFO drains
  std::size_t tx_fifo_depth = 64;
};

class UartPeripheral : public Peripheral {
 public:
  UartPeripheral(mcu::Mcu& mcu, UartConfig config, std::string name = "uart");

  /// Wires this UART to one direction pair of a SerialLink: \p tx is the
  /// channel this UART transmits into, \p rx the channel it listens on.
  void connect(sim::SerialChannel& tx, sim::SerialChannel& rx);

  /// Queues a byte for transmission.  Returns false if the FIFO is full.
  bool send(std::uint8_t byte);

  /// Queues a buffer as one burst onto the wire; returns bytes accepted
  /// (clipped to the free FIFO slots).  Costs one event regardless of
  /// length: FIFO occupancy is tracked analytically from the drain instant.
  std::size_t send(const std::uint8_t* data, std::size_t len);

  /// Bytes still occupying TX FIFO slots (derived from the wire schedule).
  std::size_t tx_in_flight() const;

  /// Reads and clears the RX data register.
  std::optional<std::uint8_t> read();

  bool rx_full() const { return rx_valid_; }
  std::uint64_t overruns() const { return overruns_; }

  /// Observability hook: when set, TX FIFO occupancy (bytes queued after
  /// each accepted send) is pushed into \p monitor.  WatermarkMonitor is
  /// header-only, so this costs no link dependency; null detaches.
  void set_tx_fifo_monitor(obs::WatermarkMonitor* monitor) {
    tx_fifo_monitor_ = monitor;
  }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  void reset() override;

 private:
  void on_rx_byte(std::uint8_t byte, sim::SimTime when);
  void arm_drain_event();

  UartConfig config_;
  sim::SerialChannel* tx_ = nullptr;
  std::uint8_t rx_data_ = 0;
  bool rx_valid_ = false;
  std::uint64_t overruns_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  /// Wire instant the TX FIFO is fully drained; one chased event raises
  /// the TX interrupt when it passes.
  sim::SimTime tx_busy_until_ = 0;
  bool drain_armed_ = false;
  obs::WatermarkMonitor* tx_fifo_monitor_ = nullptr;
};

}  // namespace iecd::periph
