#include "evidence/sink.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "evidence/hash.hpp"
#include "evidence/reader.hpp"
#include "evidence/verify.hpp"
#include "trace/export.hpp"

namespace iecd::evidence {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

std::string build_line() {
  return "{\"kind\":\"build\",\"build\":" + util::build_info_json() + "}";
}

std::string artifact_line(const char* kind, const RunArtifact& artifact,
                          std::uint64_t index, std::uint64_t seed,
                          bool with_run_fields) {
  std::string line = "{\"kind\":\"" + std::string(kind) + "\"";
  if (with_run_fields) {
    line += ",\"index\":" + std::to_string(index);
    line += ",\"seed\":" + std::to_string(seed);
  }
  line += ",\"path\":\"" + json_escape(artifact.filename) + "\"";
  line += ",\"bytes\":" + std::to_string(artifact.bytes);
  line += ",\"records\":" + std::to_string(artifact.records);
  line += ",\"chain_hash\":\"" + hex64(artifact.chain_hash) + "\"";
  line += ",\"sha256\":\"" + artifact.sha256_hex + "\"}";
  return line;
}

std::string run_filename(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "run_%04llu.evd",
                static_cast<unsigned long long>(index));
  return buf;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << content;
  return os.good();
}

RunArtifact describe(const std::string& filename,
                     const EvidenceWriter& writer) {
  RunArtifact artifact;
  artifact.filename = filename;
  artifact.bytes = writer.bytes().size();
  artifact.records = writer.record_count();
  artifact.chain_hash = writer.chain_hash();
  artifact.sha256_hex = writer.sha256_hex();
  return artifact;
}

}  // namespace

EvidenceWriter build_run_artifact(const std::string& name,
                                  std::uint64_t index, std::uint64_t seed,
                                  const trace::MetricsRegistry& metrics,
                                  const obs::HealthReport* health,
                                  const trace::TraceRecorder* trace_rec) {
  EvidenceWriter writer;
  writer.record_build_info();
  writer.record_run_meta(name, index, seed);
  writer.record_metrics(metrics);
  if (health != nullptr) writer.record_health(*health);
  if (trace_rec != nullptr) writer.record_trace(*trace_rec);
  writer.finish();
  return writer;
}

RunArtifact write_artifact_with_sidecar(const std::string& dir,
                                        const std::string& filename,
                                        const EvidenceWriter& writer,
                                        const std::string& name,
                                        std::uint64_t index,
                                        std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  const RunArtifact artifact = describe(filename, writer);
  writer.write_file((std::filesystem::path(dir) / filename).string());

  std::string sidecar;
  sidecar += "{\"kind\":\"artifact\",\"name\":\"" + json_escape(name) +
             "\",\"index\":" + std::to_string(index) +
             ",\"seed\":" + std::to_string(seed) +
             ",\"path\":\"" + json_escape(filename) +
             "\",\"bytes\":" + std::to_string(artifact.bytes) +
             ",\"records\":" + std::to_string(artifact.records) +
             ",\"chain_hash\":\"" + hex64(artifact.chain_hash) +
             "\",\"sha256\":\"" + artifact.sha256_hex + "\"}\n";
  sidecar += build_line() + "\n";
  write_text_file(
      (std::filesystem::path(dir) / (filename + ".meta.jsonl")).string(),
      sidecar);
  return artifact;
}

CampaignEvidence write_campaign_evidence(
    const std::string& dir, const fault::CampaignOptions& options,
    const fault::CampaignReport& report) {
  std::filesystem::create_directories(dir);

  std::vector<RunArtifact> runs;
  for (std::size_t i = 0; i < report.per_run.size(); ++i) {
    const std::uint64_t seed =
        fault::CampaignRunner::run_seed(options.seed, i);
    const obs::HealthReport* health =
        i < report.per_run_health.size() ? &report.per_run_health[i]
                                         : nullptr;
    EvidenceWriter writer = build_run_artifact(
        report.name, i, seed, report.per_run[i], health, nullptr);
    runs.push_back(write_artifact_with_sidecar(
        dir, run_filename(i), writer, report.name, i, seed));
  }
  return finish_campaign_evidence(dir, options, report, std::move(runs));
}

std::string run_artifact_filename(std::uint64_t index) {
  return run_filename(index);
}

bool describe_artifact_file(const std::string& dir,
                            const std::string& filename, RunArtifact& out) {
  const std::string path = (std::filesystem::path(dir) / filename).string();
  EvidenceReader reader;
  if (reader.parse_file(path) != Status::kOk) return false;
  std::error_code ec;
  const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
  if (ec) return false;
  out.filename = filename;
  out.bytes = bytes;
  out.records = reader.record_count();
  out.chain_hash = reader.chain_hash();
  out.sha256_hex = reader.sha256_hex();
  return true;
}

CampaignEvidence finish_campaign_evidence(const std::string& dir,
                                          const fault::CampaignOptions& options,
                                          const fault::CampaignReport& report,
                                          std::vector<RunArtifact> runs) {
  CampaignEvidence evidence;
  std::filesystem::create_directories(dir);
  evidence.runs = std::move(runs);

  // Merged artifact: campaign summary + merged metrics/health.
  {
    EvidenceWriter writer;
    writer.record_build_info();
    writer.record_run_meta(report.name, report.runs, options.seed);
    writer.record_campaign_summary(report.name, report.seed, report.runs,
                                   report.unrecovered,
                                   report.faults_injected,
                                   report.fault_opportunities,
                                   report.to_json());
    writer.record_metrics(report.merged);
    writer.record_health(report.health);
    writer.finish();
    evidence.merged = write_artifact_with_sidecar(
        dir, "merged.evd", writer, report.name, report.runs, options.seed);
  }

  std::string manifest;
  manifest += "{\"kind\":\"campaign\",\"name\":\"" +
              json_escape(report.name) +
              "\",\"seed\":" + std::to_string(report.seed) +
              ",\"runs\":" + std::to_string(report.runs) +
              ",\"unrecovered\":" + std::to_string(report.unrecovered) +
              ",\"faults_injected\":" +
              std::to_string(report.faults_injected) + "}\n";
  manifest += build_line() + "\n";
  for (std::size_t i = 0; i < evidence.runs.size(); ++i) {
    manifest += artifact_line("run", evidence.runs[i], i,
                              fault::CampaignRunner::run_seed(options.seed, i),
                              true) +
                "\n";
  }
  manifest += artifact_line("merged", evidence.merged, 0, 0, false) + "\n";
  evidence.manifest = manifest;
  evidence.manifest_path =
      (std::filesystem::path(dir) / "MANIFEST.jsonl").string();
  write_text_file(evidence.manifest_path, manifest);
  return evidence;
}

CampaignEvidence write_sweep_evidence(const std::string& dir,
                                      const std::string& name,
                                      const exec::SweepRunner::Result& result,
                                      const std::vector<std::uint64_t>& seeds) {
  CampaignEvidence evidence;
  std::filesystem::create_directories(dir);

  for (std::size_t i = 0; i < result.per_run.size(); ++i) {
    const std::uint64_t seed = i < seeds.size() ? seeds[i] : 0;
    const obs::HealthReport* health =
        i < result.per_run_health.size() ? &result.per_run_health[i]
                                         : nullptr;
    EvidenceWriter writer = build_run_artifact(name, i, seed,
                                               result.per_run[i], health,
                                               nullptr);
    evidence.runs.push_back(write_artifact_with_sidecar(
        dir, run_filename(i), writer, name, i, seed));
  }

  {
    EvidenceWriter writer;
    writer.record_build_info();
    writer.record_run_meta(name, result.runs, 0);
    writer.record_metrics(result.merged);
    writer.record_health(result.health);
    writer.finish();
    evidence.merged = write_artifact_with_sidecar(dir, "merged.evd", writer,
                                                  name, result.runs, 0);
  }

  std::string manifest;
  manifest += "{\"kind\":\"sweep\",\"name\":\"" + json_escape(name) +
              "\",\"runs\":" + std::to_string(result.runs) + "}\n";
  manifest += build_line() + "\n";
  for (std::size_t i = 0; i < evidence.runs.size(); ++i) {
    manifest += artifact_line("run", evidence.runs[i], i,
                              i < seeds.size() ? seeds[i] : 0, true) +
                "\n";
  }
  manifest += artifact_line("merged", evidence.merged, 0, 0, false) + "\n";
  evidence.manifest = manifest;
  evidence.manifest_path =
      (std::filesystem::path(dir) / "MANIFEST.jsonl").string();
  write_text_file(evidence.manifest_path, manifest);
  return evidence;
}

namespace {

bool reexport(const std::string& artifact_path, const std::string& out_path,
              std::string* error, int kind) {
  EvidenceReader reader;
  const Status status = reader.parse_file(artifact_path);
  if (status != Status::kOk) {
    if (error) {
      *error = std::string(status_name(status)) +
               (reader.error().empty() ? "" : ": " + reader.error());
    }
    return false;
  }
  std::ofstream os(out_path, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open " + out_path;
    return false;
  }
  if (kind == 2) {
    reader.metrics().write_csv(os);
  } else {
    const trace::TraceRecorder recorder = reader.rebuild_trace();
    if (kind == 0) {
      trace::write_chrome_trace(recorder, os);
    } else {
      trace::write_csv(recorder, os);
    }
  }
  return os.good();
}

}  // namespace

bool reexport_chrome_trace(const std::string& artifact_path,
                           const std::string& out_path, std::string* error) {
  return reexport(artifact_path, out_path, error, 0);
}

bool reexport_trace_csv(const std::string& artifact_path,
                        const std::string& out_path, std::string* error) {
  return reexport(artifact_path, out_path, error, 1);
}

bool reexport_metrics_csv(const std::string& artifact_path,
                          const std::string& out_path, std::string* error) {
  return reexport(artifact_path, out_path, error, 2);
}

}  // namespace iecd::evidence
