file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_codegen.dir/bench_e8_codegen.cpp.o"
  "CMakeFiles/bench_e8_codegen.dir/bench_e8_codegen.cpp.o.d"
  "bench_e8_codegen"
  "bench_e8_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
