#include "evidence/verify.hpp"

#include <filesystem>
#include <fstream>

#include "evidence/hash.hpp"

namespace iecd::evidence {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

/// Minimal extraction of a string value from one JSONL line written by
/// this tree's own emitters (no escapes inside the values we look for).
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto start = line.find(needle);
  if (start == std::string::npos) return "";
  const auto value_start = start + needle.size();
  const auto end = line.find('"', value_start);
  if (end == std::string::npos) return "";
  return line.substr(value_start, end - value_start);
}

}  // namespace

std::string VerifyResult::summary() const {
  if (!ok) {
    return "FAIL " + path + ": " + std::string(status_name(status)) +
           (error.empty() ? "" : " — " + error);
  }
  return "PASS " + path + " (records=" + std::to_string(records) +
         ", events=" + std::to_string(events) + ", sha256=" +
         sha256_hex.substr(0, 12) + "…, chain=" + chain_hash_hex + ")";
}

std::string VerifyResult::to_json() const {
  std::string out = "{\"path\":\"" + json_escape(path) + "\",\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"status\":\"" + std::string(status_name(status)) + "\"";
  if (!error.empty()) out += ",\"error\":\"" + json_escape(error) + "\"";
  out += ",\"bytes\":" + std::to_string(bytes);
  out += ",\"records\":" + std::to_string(records);
  out += ",\"unknown_records\":" + std::to_string(unknown_records);
  out += ",\"events\":" + std::to_string(events);
  out += ",\"chain_hash\":\"" + chain_hash_hex + "\"";
  out += ",\"sha256\":\"" + sha256_hex + "\"";
  out += ",\"schemas\":[";
  // Appended piecewise: the chained operator+ form trips a spurious
  // -Wrestrict in gcc 12's inlined basic_string internals.
  for (std::size_t i = 0; i < schema_names.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(schema_names[i]);
    out += '"';
  }
  out += "]}";
  return out;
}

VerifyResult verify_artifact(const std::uint8_t* data, std::size_t size,
                             const std::string& label) {
  VerifyResult result;
  result.path = label;
  result.bytes = size;
  EvidenceReader reader;
  result.status = reader.parse(data, size);
  result.ok = result.status == Status::kOk;
  result.error = reader.error();
  result.records = reader.record_count();
  result.unknown_records = reader.unknown_records();
  result.events = reader.events().size();
  result.chain_hash_hex = hex64(reader.chain_hash());
  result.sha256_hex = reader.sha256_hex();
  for (const auto& schema : reader.artifact_schemas()) {
    result.schema_names.push_back(schema.name);
  }
  return result;
}

VerifyResult verify_artifact(const std::vector<std::uint8_t>& bytes,
                             const std::string& label) {
  return verify_artifact(bytes.data(), bytes.size(), label);
}

VerifyResult verify_artifact_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    VerifyResult result;
    result.path = path;
    result.status = Status::kTruncated;
    result.error = "cannot open file";
    return result;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return verify_artifact(bytes.data(), bytes.size(), path);
}

ManifestVerifyResult verify_manifest(const std::string& manifest_path) {
  ManifestVerifyResult result;
  result.path = manifest_path;
  std::ifstream is(manifest_path);
  if (!is) {
    result.error = "cannot open manifest";
    return result;
  }
  const auto dir = std::filesystem::path(manifest_path).parent_path();
  std::string line;
  while (std::getline(is, line)) {
    const std::string rel = json_field(line, "path");
    if (rel.empty()) continue;  // campaign/build header lines
    ManifestEntry entry;
    entry.path = rel;
    entry.sha256_hex = json_field(line, "sha256");
    const auto full = (dir / rel).string();
    const VerifyResult v = verify_artifact_file(full);
    if (!v.ok) {
      entry.error = v.summary();
    } else if (!entry.sha256_hex.empty() &&
               entry.sha256_hex != v.sha256_hex) {
      entry.error = "digest mismatch: manifest pins " + entry.sha256_hex +
                    ", file hashes to " + v.sha256_hex;
    } else {
      entry.verified = true;
      ++result.passed;
    }
    result.entries.push_back(std::move(entry));
  }
  if (result.entries.empty()) {
    result.error = "manifest lists no artifacts";
    return result;
  }
  result.ok = result.passed == result.entries.size();
  return result;
}

}  // namespace iecd::evidence
