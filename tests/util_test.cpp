#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <sstream>

#include "util/crc16.hpp"
#include "util/csv.hpp"
#include "util/diagnostics.hpp"
#include "util/small_function.hpp"
#include "util/statistics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace iecd::util {
namespace {

TEST(Diagnostics, SeverityClassification) {
  DiagnosticList list;
  EXPECT_FALSE(list.has_errors());
  list.info("a", "note");
  list.warning("b", "careful");
  EXPECT_FALSE(list.has_errors());
  EXPECT_TRUE(list.has_warnings());
  list.error("c", "broken");
  EXPECT_TRUE(list.has_errors());
  EXPECT_EQ(list.size(), 3u);
}

TEST(Diagnostics, RenderingIncludesComponentAndSeverity) {
  DiagnosticList list;
  list.error("beans.PWM1.period", "period not achievable");
  const std::string text = list.to_string();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("beans.PWM1.period"), std::string::npos);
}

TEST(Diagnostics, MergeConcatenates) {
  DiagnosticList a;
  DiagnosticList b;
  a.info("x", "1");
  b.error("y", "2");
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.has_errors());
}

TEST(RunningStats, MeanAndStddevMatchClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Population variance of 1..100 is (n^2-1)/12 = 833.25.
  EXPECT_NEAR(s.variance(), 833.25, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  std::mt19937 rng(42);
  std::normal_distribution<double> dist(3.0, 2.0);
  RunningStats whole;
  RunningStats part1;
  RunningStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(part1.count(), whole.count());
}

TEST(SampleSeries, PercentilesAreOrdered) {
  SampleSeries s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_LE(s.percentile(25), s.percentile(75));
}

TEST(SampleSeries, PercentileEdgeCases) {
  SampleSeries empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100), 0.0);

  SampleSeries single;
  single.add(7.5);
  EXPECT_DOUBLE_EQ(single.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(single.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(single.percentile(100), 7.5);

  SampleSeries pair;
  pair.add(10.0);
  pair.add(20.0);
  EXPECT_DOUBLE_EQ(pair.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(pair.percentile(100), 20.0);
  EXPECT_DOUBLE_EQ(pair.percentile(50), 15.0);
  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(pair.percentile(-10), 10.0);
  EXPECT_DOUBLE_EQ(pair.percentile(250), 20.0);
  // NaN p yields NaN instead of undefined clamping.
  EXPECT_TRUE(std::isnan(pair.percentile(std::nan(""))));
  // Percentiles stay consistent after further samples re-sort the cache.
  pair.add(0.0);
  EXPECT_DOUBLE_EQ(pair.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(pair.percentile(100), 20.0);
}

TEST(SampleSeries, PeakDeviationIsMaxAbsOffset) {
  SampleSeries s;
  s.add(10);
  s.add(10);
  s.add(16);  // mean 12, peak dev 4
  EXPECT_NEAR(s.peak_deviation(), 4.0, 1e-12);
}

TEST(Histogram, BinsAndSaturation) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // saturates into bin 0
  h.add(100.0);  // saturates into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") == 0x29B1.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg), 0x29B1);
}

TEST(Crc16, AppendingCrcYieldsZeroResidual) {
  std::vector<std::uint8_t> msg = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  const std::uint16_t crc = crc16_ccitt(msg);
  msg.push_back(static_cast<std::uint8_t>(crc >> 8));
  msg.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  EXPECT_EQ(crc16_ccitt(msg), 0);
}

TEST(Crc16, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint16_t good = crc16_ccitt(msg);
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = msg;
      bad[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc16_ccitt(bad), good);
    }
  }
}

TEST(Csv, EscapesSeparatorsAndQuotes) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"t", "y"});
  w.row_numeric({0.0, 1.5});
  w.row({"end", "yes,really"});
  EXPECT_EQ(out.str(), "t,y\n0,1.5\nend,\"yes,really\"\n");
  EXPECT_EQ(w.rows_written(), 3u);
}

TEST(Strings, FormatAndJoin) {
  EXPECT_EQ(format("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, CIdentifierChecks) {
  EXPECT_TRUE(is_c_identifier("model_step"));
  EXPECT_TRUE(is_c_identifier("_x9"));
  EXPECT_FALSE(is_c_identifier("9x"));
  EXPECT_FALSE(is_c_identifier("a-b"));
  EXPECT_FALSE(is_c_identifier(""));
  EXPECT_EQ(sanitize_c_identifier("PWM 1/out"), "PWM_1_out");
  EXPECT_EQ(sanitize_c_identifier("9lives"), "_9lives");
  EXPECT_TRUE(is_c_identifier(sanitize_c_identifier("x – ü")));
}

TEST(Strings, IndentPreservesStructure) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  ThreadPool pool(1);
  std::atomic<int> x{0};
  auto f = pool.submit([&] { x = 7; });
  f.get();
  EXPECT_EQ(x.load(), 7);
}

TEST(SmallFunction, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  SmallFunction<void(), 48> fn([p] { ++*p; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.uses_heap());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, LargeCapturesSpillToHeap) {
  struct Big {
    double payload[16] = {};  // 128 bytes > 48-byte inline buffer
  } big;
  big.payload[3] = 42.0;
  double seen = 0.0;
  double* out = &seen;
  SmallFunction<void(), 48> fn([big, out] { *out = big.payload[3]; });
  EXPECT_TRUE(fn.uses_heap());
  fn();
  EXPECT_EQ(seen, 42.0);
}

TEST(SmallFunction, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  int* p = &calls;
  SmallFunction<void(), 48> a([p] { ++*p; });
  SmallFunction<void(), 48> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  SmallFunction<void(), 48> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFunction, NullAndReturnValues) {
  SmallFunction<int(int), 32> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  SmallFunction<int(int), 32> twice([](int v) { return 2 * v; });
  EXPECT_EQ(twice(21), 42);
  twice = nullptr;
  EXPECT_FALSE(static_cast<bool>(twice));
}

TEST(SmallFunction, AcceptsStdFunctionLvalue) {
  // The event queue's public API historically took std::function; callers
  // passing one (by value or lvalue) must keep working.
  std::function<void()> stdfn;
  int hits = 0;
  stdfn = [&hits] { ++hits; };
  SmallFunction<void(), 48> fn(stdfn);
  fn();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace iecd::util
