# Empty compiler generated dependencies file for servo_case_study.
# This may be replaced when dependencies are built.
