file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_engine.dir/bench_e9_engine.cpp.o"
  "CMakeFiles/bench_e9_engine.dir/bench_e9_engine.cpp.o.d"
  "bench_e9_engine"
  "bench_e9_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
