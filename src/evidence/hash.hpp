/// \file hash.hpp
/// Content hashing for evidence artifacts, two layers deep:
///
///   * a 64-bit chained record hash — each record cell folds into a
///     running chain (`chain = mix64(chain ^ cell_hash64(cell))`), so
///     records cannot be reordered, dropped or substituted without
///     changing the footer value even when their individual hashes
///     collide by content.  cell_hash64 is an FNV-style multiply-xor over
///     8-byte little-endian lanes (length folded into the seed, zero-
///     padded tail), picked so hashing keeps pace with serialization;
///   * a SHA-256 digest of every byte from the header through the last
///     record, the artifact's identity in sidecars and manifests.
///
/// Both are implemented here with no external dependencies; SHA-256 is
/// the FIPS 180-4 construction, processed 64-byte block at a time with
/// streaming update() calls.  On x86-64 the block compression dispatches
/// at runtime to the SHA-NI instruction path when the CPU has it (an
/// order-of-magnitude throughput win for artifact sealing); the portable
/// scalar path is always compiled in and produces identical digests.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace iecd::evidence {

/// FNV-1a 64-bit over a byte range.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// SplitMix64 finalizer: a strong 64-bit avalanche mix.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Initial value of the record hash chain.
inline constexpr std::uint64_t kChainSeed = 0xcbf29ce484222325ULL;

/// Per-cell content hash: FNV-style multiply-xor over 8-byte
/// little-endian lanes with the byte length folded into the seed and a
/// zero-padded tail lane, finished with mix64.  One multiply per 8 bytes
/// instead of one per byte keeps the chain off the writer's critical
/// path; this lane layout is part of the artifact format (the reader
/// recomputes it cell by cell).
inline std::uint64_t cell_hash64(const std::uint8_t* data,
                                 std::size_t size) {
  constexpr std::uint64_t kPrime = 0x00000100000001B3ULL;
  std::uint64_t h = (kChainSeed ^ size) * kPrime;
  while (size >= 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data, 8);
    if constexpr (std::endian::native == std::endian::big) {
      lane = __builtin_bswap64(lane);
    }
    h = (h ^ lane) * kPrime;
    data += 8;
    size -= 8;
  }
  if (size > 0) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, data, size);
    if constexpr (std::endian::native == std::endian::big) {
      lane = __builtin_bswap64(lane);
    }
    h = (h ^ lane) * kPrime;
  }
  return mix64(h);
}

/// Folds one record cell into the chain.
inline std::uint64_t chain_update(std::uint64_t chain,
                                  const std::uint8_t* cell,
                                  std::size_t size) {
  return mix64(chain ^ cell_hash64(cell, size));
}

/// Streaming SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t size);
  /// Finalizes and returns the 32-byte digest; the hasher must be
  /// reset() before further use.
  std::array<std::uint8_t, 32> digest();

  /// One-shot convenience.
  static std::array<std::uint8_t, 32> of(const std::uint8_t* data,
                                         std::size_t size);

  /// True when the runtime dispatch selected the hardware (SHA-NI) block
  /// path on this machine.  Informational (bench reporting); digests are
  /// identical either way.
  static bool hardware_accelerated();

 private:
  void process_block(const std::uint8_t* block);
  void process_blocks(const std::uint8_t* data, std::size_t blocks);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lower-case hex rendering of a digest.
std::string hex(const std::array<std::uint8_t, 32>& digest);
/// Lower-case 16-digit hex of a 64-bit value (chain hashes in sidecars).
std::string hex64(std::uint64_t v);

}  // namespace iecd::evidence
