#include "pil/target_agent.hpp"

#include <span>

namespace iecd::pil {

TargetAgent::TargetAgent(rt::Runtime& runtime, beans::SerialBean& serial,
                         codegen::SignalBuffer& buffer)
    : runtime_(runtime), serial_(serial), buffer_(buffer) {
  decoder_.set_callback([this](const Frame& frame) {
    if (frame.type != FrameType::kSensorData) return;
    inputs_scratch_.clear();
    decode_signals_into(frame.payload, inputs_scratch_);
    respond_ = true;
    respond_seq_ = frame.seq;
  });
}

void TargetAgent::start() {
  mcu::IsrHandler handler;
  handler.name = "pil_rx";
  handler.stack_bytes = 192;
  handler.body = [this]() -> std::uint64_t {
    std::uint64_t cycles = per_byte_cycles_;
    const auto byte = serial_.RecvChar();
    if (!byte) return cycles;
    respond_ = false;
    decoder_.feed(*byte);
    if (respond_) {
      // The completed sensor frame stands in for the sampling interrupt:
      // run the controller step inside this ISR (reads from the buffer,
      // computes, writes back to the buffer).  A batched frame carries
      // several stacked input groups — one step per group, each step's
      // context time one period earlier than the next.
      const std::size_t in_count = buffer_.input_count();
      std::size_t groups = 1;
      if (in_count > 0 && !inputs_scratch_.empty() &&
          inputs_scratch_.size() % in_count == 0) {
        groups = inputs_scratch_.size() / in_count;
      }
      tx_payload_.clear();
      const std::span<const double> all(inputs_scratch_);
      for (std::size_t k = 0; k < groups; ++k) {
        if (groups == 1) {
          buffer_.set_inputs(all);
        } else {
          buffer_.set_inputs(all.subspan(k * in_count, in_count));
        }
        model::SimContext ctx;
        ctx.t = runtime_.now_seconds() -
                static_cast<double>(groups - 1 - k) * runtime_.period_s();
        ctx.dt = runtime_.period_s();
        runtime_.step_once(ctx);
        encode_signals_into(buffer_.output_values(), tx_payload_);
        cycles += runtime_.step_cycles();
      }
      ++frames_processed_;
    }
    return cycles;
  };
  handler.commit = [this] {
    if (!respond_) return;
    // Response leaves the board when the ISR retires, as one wire burst.
    tx_bytes_.clear();
    encode_frame_into(FrameType::kActuatorData, respond_seq_, tx_payload_,
                      tx_bytes_);
    serial_.SendBlock(tx_bytes_.data(), tx_bytes_.size());
    respond_ = false;
  };
  serial_.set_event_handler("OnRxChar", std::move(handler));
}

}  // namespace iecd::pil
