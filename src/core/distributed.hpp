/// \file distributed.hpp
/// Distributed servo reference application: the paper's motivation is "an
/// integrated development environment for embedded controllers having
/// distributed nature", and its survey of timing effects (Section 1)
/// explicitly concerns *networked* embedded systems where sampling
/// periods and latencies vary.  This rig splits the Section 7 servo across
/// three MCUs on one CAN bus:
///
///   sensor node    : quadrature decoder + 1 kHz timer; broadcasts the
///                    position register (id kSensorFrameId)
///   controller node: receives positions, estimates speed, runs the PI
///                    law, broadcasts the duty command (id kActuatorFrameId)
///   actuator node  : receives duty commands, drives the PWM + motor
///
/// Every hop inherits CAN arbitration and wire time, so bus bit rate and
/// background traffic degrade the loop exactly the way the cited
/// networked-control literature describes.
///
/// Since the co-simulation master landed (src/cosim/) the rig executes as
/// a 2-component topology — plant rig (sensor + actuator MCUs, motor,
/// encoder) and controller — coupled only by CAN frames over a
/// SharedCanBus, plus a model-fidelity chatter node.  The step-negotiation
/// loop reproduces the former monolithic single-world execution exactly;
/// the regression test in tests/distributed_test.cpp locks the metrics to
/// the monolithic goldens bit-for-bit.
#pragma once

#include <memory>

#include "beans/bean_project.hpp"
#include "beans/can_bean.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/quad_dec_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "model/logging.hpp"
#include "model/metrics.hpp"
#include "plant/dc_motor.hpp"
#include "plant/encoder.hpp"
#include "sim/can_bus.hpp"
#include "sim/world.hpp"

namespace iecd::core {

struct DistributedConfig {
  double period_s = 0.001;
  double setpoint = 100.0;        ///< [rad/s]
  double setpoint_time = 0.05;
  double duration_s = 1.0;
  double kp = 0.004;
  double ki = 0.12;
  std::uint32_t can_bitrate = 500000;
  /// Background traffic: a chatter node injecting higher-priority frames
  /// at this rate (0 = none).  Models a loaded vehicle bus.
  double background_frames_per_s = 0.0;
  int encoder_lines = 100;
  plant::DcMotorParams motor;

  static constexpr std::uint32_t kSensorFrameId = 0x100;
  static constexpr std::uint32_t kActuatorFrameId = 0x200;
  static constexpr std::uint32_t kBackgroundFrameId = 0x050;  ///< wins arbitration
};

struct DistributedResult {
  model::SampleLog speed;
  model::StepMetrics metrics;
  double iae = 0.0;
  std::uint64_t sensor_frames = 0;
  std::uint64_t actuator_frames = 0;
  std::uint64_t background_frames = 0;
  std::uint64_t controller_rx_overruns = 0;
  double bus_utilisation = 0.0;
  /// Sensor-sample -> actuation latency across the two hops [us].
  double loop_latency_us_mean = 0.0;
  double loop_latency_us_max = 0.0;
  double loop_latency_us_p99 = 0.0;
  /// Closed loops measured, and how many blew their implicit deadline
  /// (one sampling period): the "miss" figure for networked control.
  std::uint64_t loop_samples = 0;
  std::uint64_t loop_deadline_misses = 0;
  /// Scheduler pressure: event-queue dispatches for the whole run, and the
  /// frames the bus delivered — the benches report events per frame.
  std::uint64_t events_executed = 0;
  std::uint64_t frames_delivered = 0;
};

/// Builds the three-node system, runs it, and reports control quality plus
/// network statistics.  Deterministic.
DistributedResult run_distributed_servo(const DistributedConfig& config);

}  // namespace iecd::core
