file(REMOVE_RECURSE
  "libiecd_blocks.a"
)
