/// \file zoh_signal.hpp
/// Zero-order-hold signal: a piecewise-constant value with a change log.
/// Producers (PWM average output, DAC-like actuators) write new values at
/// simulation timestamps; consumers (the plant integrator) query the value
/// at arbitrary times or integrate exactly across the change points.  Old
/// history is pruned on demand so long runs stay O(1) in memory.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>

#include "sim/time.hpp"

namespace iecd::sim {

class ZohSignal {
 public:
  explicit ZohSignal(double initial = 0.0) { set(0, initial); }

  /// Records a new value effective from \p when (must be monotonically
  /// non-decreasing).  Setting an identical value is a no-op.
  void set(SimTime when, double value) {
    if (!changes_.empty()) {
      if (when < changes_.back().when) {
        throw std::invalid_argument("ZohSignal: non-monotonic write");
      }
      if (changes_.back().value == value) return;
      if (changes_.back().when == when) {
        changes_.back().value = value;
        return;
      }
    }
    changes_.push_back({when, value});
  }

  /// Value at time \p t (the most recent change at or before t).
  double value_at(SimTime t) const {
    // Plant integrators query at or just behind the newest change, so
    // walking backward is O(1) on the hot path (the forward scan was the
    // top cost of the distributed bench).
    for (auto it = changes_.rbegin(); it != changes_.rend(); ++it) {
      if (it->when <= t) return it->value;
    }
    return changes_.front().value;
  }

  /// Current (latest) value.
  double value() const { return changes_.back().value; }

  /// Exact integral of the signal over [t0, t1] in value * seconds.
  double integrate(SimTime t0, SimTime t1) const {
    if (t1 < t0) throw std::invalid_argument("ZohSignal: t1 < t0");
    // Binary-search the change straddling t0 instead of scanning the
    // whole history; the accumulation order over [t0, t1] is unchanged.
    auto it = std::upper_bound(
        changes_.begin(), changes_.end(), t0,
        [](SimTime t, const Change& c) { return t < c.when; });
    double current =
        it == changes_.begin() ? changes_.front().value : std::prev(it)->value;
    double acc = 0.0;
    SimTime cursor = t0;
    for (; it != changes_.end() && it->when < t1; ++it) {
      acc += current * to_seconds(it->when - cursor);
      cursor = it->when;
      current = it->value;
    }
    acc += current * to_seconds(t1 - cursor);
    return acc;
  }

  /// Drops change records strictly before \p t (keeping the value at t).
  void prune_before(SimTime t) {
    while (changes_.size() > 1 && changes_[1].when <= t) {
      changes_.pop_front();
    }
    if (changes_.front().when < t) changes_.front().when = t;
  }

  std::size_t change_count() const { return changes_.size(); }

 private:
  struct Change {
    SimTime when;
    double value;
  };
  std::deque<Change> changes_;
};

}  // namespace iecd::sim
