#include "blocks/sources.hpp"

#include <cmath>
#include <numbers>

#include "util/strings.hpp"

namespace iecd::blocks {

ConstantBlock::ConstantBlock(std::string name, double value)
    : Block(std::move(name), 0, 1), value_(value) {}

void ConstantBlock::output(const SimContext&) { set_out(0, value_); }

mcu::OpCounts ConstantBlock::step_ops(bool) const {
  mcu::OpCounts ops;
  ops.mem = 1;
  return ops;
}

std::string ConstantBlock::emit_c(const EmitContext& ctx) const {
  if (ctx.fixed_point) {
    return util::format("%s = %s_P;  /* Constant %s (fixed) */\n",
                        ctx.outputs[0].c_str(), name().c_str(),
                        name().c_str());
  }
  return util::format("%s = %.17g;  /* Constant %s */\n",
                      ctx.outputs[0].c_str(), value_, name().c_str());
}

StepBlock::StepBlock(std::string name, double step_time, double before,
                     double after)
    : Block(std::move(name), 0, 1),
      step_time_(step_time),
      before_(before),
      after_(after) {}

void StepBlock::output(const SimContext& ctx) {
  set_out(0, ctx.t >= step_time_ ? after_ : before_);
}

std::string StepBlock::emit_c(const EmitContext& ctx) const {
  return util::format("%s = (t >= %.9g) ? %.9g : %.9g;  /* Step %s */\n",
                      ctx.outputs[0].c_str(), step_time_, after_, before_,
                      name().c_str());
}

RampBlock::RampBlock(std::string name, double slope, double start_time,
                     double initial)
    : Block(std::move(name), 0, 1),
      slope_(slope),
      start_time_(start_time),
      initial_(initial) {}

void RampBlock::output(const SimContext& ctx) {
  const double t = ctx.t - start_time_;
  set_out(0, t <= 0 ? initial_ : initial_ + slope_ * t);
}

SineBlock::SineBlock(std::string name, double amplitude, double frequency_hz,
                     double phase_rad, double bias)
    : Block(std::move(name), 0, 1),
      amplitude_(amplitude),
      frequency_hz_(frequency_hz),
      phase_(phase_rad),
      bias_(bias) {}

void SineBlock::output(const SimContext& ctx) {
  set_out(0, bias_ + amplitude_ * std::sin(2.0 * std::numbers::pi *
                                               frequency_hz_ * ctx.t +
                                           phase_));
}

mcu::OpCounts SineBlock::step_ops(bool fixed_point) const {
  mcu::OpCounts ops;
  if (fixed_point) {
    // Table lookup + interpolation.
    ops.alu16 = 6;
    ops.mul16 = 2;
    ops.mem = 4;
  } else {
    // Polynomial sin approximation in software floating point.
    ops.fmul = 6;
    ops.fadd = 6;
    ops.mem = 2;
  }
  return ops;
}

PulseBlock::PulseBlock(std::string name, double period, double duty_ratio,
                       double amplitude)
    : Block(std::move(name), 0, 1),
      period_(period),
      duty_(duty_ratio),
      amplitude_(amplitude) {}

void PulseBlock::output(const SimContext& ctx) {
  const double phase = std::fmod(ctx.t, period_) / period_;
  set_out(0, phase < duty_ ? amplitude_ : 0.0);
}

}  // namespace iecd::blocks
