/// \file event_queue.hpp
/// Deterministic discrete-event scheduler.  Ties are broken by insertion
/// order (FIFO at equal timestamps) so repeated runs of the same model are
/// bit-identical — the property every regression test in this repo relies
/// on.  Events are cancelable; cancellation is O(1) (lazy removal).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace iecd::sim {

/// Opaque handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules \p fn at absolute time \p when (must be >= now()).
  /// Returns a handle usable with cancel().
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedules \p fn \p delay after now().
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event.  Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Current simulated time.  Advances only as events execute.
  SimTime now() const { return now_; }

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  /// Time of the next pending event, or kNever.
  SimTime next_time() const;

  /// Executes the single next event.  Returns false if the queue is empty.
  bool step();

  /// Runs events with timestamp <= \p until; afterwards now() == max(now,
  /// until).  Events scheduled during execution are honoured if they fall
  /// inside the window.  Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Drains the queue completely (use with care: self-rescheduling
  /// components make this unbounded).  Returns events executed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

 private:
  struct Entry {
    SimTime when;
    EventId id;
    // std::priority_queue is a max-heap; invert for earliest-first, with
    // lower id (earlier insertion) winning ties.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
};

}  // namespace iecd::sim
