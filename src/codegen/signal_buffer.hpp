/// \file signal_buffer.hpp
/// The PIL communication buffer: in the processor-in-the-loop code variant
/// "the inputs are not measured by the hardware peripherals but their
/// values are obtained via the communication line" (paper Section 6).
/// Input slots are filled by the target agent when a frame arrives; output
/// slots are collected into the response frame after the controller step.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace iecd::codegen {

class SignalBuffer {
 public:
  /// Registers a named slot; returns its index.  Direction is a convention:
  /// inputs come from the plant, outputs go back to it.
  std::size_t add_input(const std::string& name);
  std::size_t add_output(const std::string& name);

  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }

  void set_input(std::size_t index, double value);
  void set_inputs(const std::vector<double>& values);
  /// Allocation-free fill: copies min(values.size(), input_count()) values.
  void set_inputs(std::span<const double> values);
  double input(std::size_t index) const;
  double input(const std::string& name) const;

  void set_output(std::size_t index, double value);
  void set_output(const std::string& name, double value);
  double output(std::size_t index) const;
  std::vector<double> outputs() const;
  /// Allocation-free view of the output slots.
  const std::vector<double>& output_values() const { return outputs_; }

  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }

  void clear_values();

 private:
  std::vector<double> inputs_;
  std::vector<double> outputs_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
};

}  // namespace iecd::codegen
