/// \file c_emitter.hpp
/// Renders the generated application as readable C sources, mirroring what
/// RTW Embedded Coder produces: a model step function assembled from the
/// per-block emitters ("TLC scripts") in data-flow order, a main skeleton
/// with the interrupt infrastructure, and the bean drivers from the PE
/// side.  The sources are for inspection and line/size accounting; the
/// executable form of the application is the task closures.
#pragma once

#include <map>
#include <string>

#include "beans/bean_project.hpp"
#include "model/subsystem.hpp"

namespace iecd::codegen {

struct EmitterOptions {
  std::string app_name = "model";
  bool fixed_point = false;
  bool pil = false;
  double period_s = 0.001;
  /// Hardware-access API flavour (the paper's two block-set variants).
  beans::DriverApi api = beans::DriverApi::kProcessorExpert;
};

class CEmitter {
 public:
  CEmitter(const model::Subsystem& controller,
           const beans::BeanProject& project, EmitterOptions options);

  /// Emits all files: <app>.h, <app>.c, main.c plus the bean drivers.
  std::map<std::string, std::string> emit() const;

 private:
  std::string variable_of(const model::Block* block, int port) const;
  std::string emit_step_source() const;
  std::string emit_header() const;
  std::string emit_main() const;

  const model::Subsystem& controller_;
  const beans::BeanProject& project_;
  EmitterOptions options_;
};

}  // namespace iecd::codegen
