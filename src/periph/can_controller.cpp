#include "periph/can_controller.hpp"

#include <stdexcept>

namespace iecd::periph {

CanController::CanController(mcu::Mcu& mcu, CanControllerConfig config,
                             std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {}

void CanController::connect(sim::CanBus& bus) {
  if (bus_) throw std::logic_error(name() + ": already connected to a bus");
  bus_ = &bus;
  node_ = bus.attach_node(name(), [this](const sim::CanFrame& frame,
                                         sim::SimTime when) {
    on_rx(frame, when);
  });
}

void CanController::connect_external(sim::CanBus& bus,
                                     sim::CanBus::NodeId node) {
  if (bus_) throw std::logic_error(name() + ": already connected to a bus");
  bus_ = &bus;
  node_ = node;
}

bool CanController::accepts(const sim::CanFrame& frame) const {
  if (config_.acceptance_mask == 0) return true;
  return (frame.id & config_.acceptance_mask) == config_.acceptance_id;
}

bool CanController::send(const sim::CanFrame& frame) {
  if (!bus_) return false;
  const bool ok = bus_->transmit(node_, frame);
  if (ok) ++sent_;
  return ok;
}

void CanController::on_rx(const sim::CanFrame& frame, sim::SimTime) {
  if (!accepts(frame)) return;
  if (rx_valid_) ++overruns_;
  rx_frame_ = frame;
  rx_valid_ = true;
  ++received_;
  if (config_.rx_vector >= 0) mcu().raise_irq(config_.rx_vector);
}

std::optional<sim::CanFrame> CanController::read() {
  if (!rx_valid_) return std::nullopt;
  rx_valid_ = false;
  return rx_frame_;
}

void CanController::reset() {
  rx_valid_ = false;
  overruns_ = 0;
  sent_ = 0;
  received_ = 0;
}

}  // namespace iecd::periph
