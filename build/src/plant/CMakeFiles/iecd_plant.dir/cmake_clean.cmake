file(REMOVE_RECURSE
  "CMakeFiles/iecd_plant.dir/dc_motor.cpp.o"
  "CMakeFiles/iecd_plant.dir/dc_motor.cpp.o.d"
  "CMakeFiles/iecd_plant.dir/encoder.cpp.o"
  "CMakeFiles/iecd_plant.dir/encoder.cpp.o.d"
  "CMakeFiles/iecd_plant.dir/simple_plants.cpp.o"
  "CMakeFiles/iecd_plant.dir/simple_plants.cpp.o.d"
  "libiecd_plant.a"
  "libiecd_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
