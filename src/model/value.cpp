#include "model/value.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::model {

const char* to_string(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kBool:
      return "boolean";
    case DataType::kInt8:
      return "int8";
    case DataType::kUint8:
      return "uint8";
    case DataType::kInt16:
      return "int16";
    case DataType::kUint16:
      return "uint16";
    case DataType::kInt32:
      return "int32";
    case DataType::kUint32:
      return "uint32";
    case DataType::kFixed:
      return "fixdt";
  }
  return "?";
}

std::uint32_t storage_bytes(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return 8;
    case DataType::kBool:
    case DataType::kInt8:
    case DataType::kUint8:
      return 1;
    case DataType::kInt16:
    case DataType::kUint16:
      return 2;
    case DataType::kInt32:
    case DataType::kUint32:
    case DataType::kFixed:  // conservatively one 32-bit word
      return 4;
  }
  return 4;
}

bool is_integer(DataType type) {
  switch (type) {
    case DataType::kInt8:
    case DataType::kUint8:
    case DataType::kInt16:
    case DataType::kUint16:
    case DataType::kInt32:
    case DataType::kUint32:
      return true;
    default:
      return false;
  }
}

std::int64_t int_min_of(DataType type) {
  switch (type) {
    case DataType::kInt8:
      return -128;
    case DataType::kInt16:
      return -32768;
    case DataType::kInt32:
      return INT32_MIN;
    default:
      return 0;
  }
}

std::int64_t int_max_of(DataType type) {
  switch (type) {
    case DataType::kInt8:
      return 127;
    case DataType::kUint8:
      return 255;
    case DataType::kInt16:
      return 32767;
    case DataType::kUint16:
      return 65535;
    case DataType::kInt32:
      return INT32_MAX;
    case DataType::kUint32:
      return UINT32_MAX;
    default:
      return 0;
  }
}

Value Value::of_double(double v) {
  Value out;
  out.type_ = DataType::kDouble;
  out.d_ = v;
  return out;
}

Value Value::of_bool(bool v) {
  Value out;
  out.type_ = DataType::kBool;
  out.i_ = v ? 1 : 0;
  return out;
}

Value Value::of_int(DataType type, std::int64_t v) {
  if (!is_integer(type)) {
    throw std::invalid_argument("Value::of_int: not an integer type");
  }
  Value out;
  out.type_ = type;
  out.i_ = std::clamp(v, int_min_of(type), int_max_of(type));
  return out;
}

Value Value::of_fixed(fixpt::FixedValue v) {
  Value out;
  out.type_ = DataType::kFixed;
  out.fixed_ = v;
  return out;
}

Value Value::quantize(double real, DataType type,
                      const std::optional<fixpt::FixedFormat>& fmt) {
  switch (type) {
    case DataType::kDouble:
      return of_double(real);
    case DataType::kBool:
      return of_bool(real != 0.0);
    case DataType::kFixed:
      if (!fmt) {
        throw std::invalid_argument("Value::quantize: kFixed needs a format");
      }
      return of_fixed(fixpt::FixedValue::from_double(real, *fmt));
    default: {
      // Integer: round to nearest, saturate; guard huge doubles.
      const double lo = static_cast<double>(int_min_of(type));
      const double hi = static_cast<double>(int_max_of(type));
      const double clamped = std::clamp(real, lo, hi);
      return of_int(type, static_cast<std::int64_t>(std::llround(clamped)));
    }
  }
}

double Value::as_double() const {
  switch (type_) {
    case DataType::kDouble:
      return d_;
    case DataType::kFixed:
      return fixed_.to_double();
    default:
      return static_cast<double>(i_);
  }
}

bool Value::as_bool() const { return as_double() != 0.0; }

std::int64_t Value::as_int() const {
  switch (type_) {
    case DataType::kDouble:
      return static_cast<std::int64_t>(std::llround(d_));
    case DataType::kFixed:
      return static_cast<std::int64_t>(std::llround(fixed_.to_double()));
    default:
      return i_;
  }
}

std::string Value::to_string() const {
  return util::format("%s(%.9g)", iecd::model::to_string(type_), as_double());
}

}  // namespace iecd::model
