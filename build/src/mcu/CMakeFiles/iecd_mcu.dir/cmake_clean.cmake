file(REMOVE_RECURSE
  "CMakeFiles/iecd_mcu.dir/clock.cpp.o"
  "CMakeFiles/iecd_mcu.dir/clock.cpp.o.d"
  "CMakeFiles/iecd_mcu.dir/cost_model.cpp.o"
  "CMakeFiles/iecd_mcu.dir/cost_model.cpp.o.d"
  "CMakeFiles/iecd_mcu.dir/cpu.cpp.o"
  "CMakeFiles/iecd_mcu.dir/cpu.cpp.o.d"
  "CMakeFiles/iecd_mcu.dir/derivative.cpp.o"
  "CMakeFiles/iecd_mcu.dir/derivative.cpp.o.d"
  "CMakeFiles/iecd_mcu.dir/interrupt_controller.cpp.o"
  "CMakeFiles/iecd_mcu.dir/interrupt_controller.cpp.o.d"
  "CMakeFiles/iecd_mcu.dir/mcu.cpp.o"
  "CMakeFiles/iecd_mcu.dir/mcu.cpp.o.d"
  "CMakeFiles/iecd_mcu.dir/memory.cpp.o"
  "CMakeFiles/iecd_mcu.dir/memory.cpp.o.d"
  "libiecd_mcu.a"
  "libiecd_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
