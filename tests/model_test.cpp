#include <gtest/gtest.h>

#include <cmath>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "model/model.hpp"
#include "model/statechart.hpp"
#include "model/subsystem.hpp"
#include "model/value.hpp"

namespace iecd::model {
namespace {

using blocks::ConstantBlock;
using blocks::GainBlock;
using blocks::IntegratorBlock;
using blocks::ScopeBlock;
using blocks::StepBlock;
using blocks::SumBlock;
using blocks::UnitDelayBlock;

// -------------------------------------------------------------------- Value

TEST(Value, QuantizeToIntegerSaturates) {
  const Value v = Value::quantize(300.0, DataType::kUint8, std::nullopt);
  EXPECT_EQ(v.as_int(), 255);
  const Value w = Value::quantize(-5.0, DataType::kUint8, std::nullopt);
  EXPECT_EQ(w.as_int(), 0);
  const Value x = Value::quantize(40000.0, DataType::kInt16, std::nullopt);
  EXPECT_EQ(x.as_int(), 32767);
}

TEST(Value, QuantizeToFixedUsesFormat) {
  const auto fmt = fixpt::FixedFormat::s16(8);
  const Value v = Value::quantize(1.25, DataType::kFixed, fmt);
  EXPECT_EQ(v.type(), DataType::kFixed);
  EXPECT_DOUBLE_EQ(v.as_double(), 1.25);
  EXPECT_THROW(Value::quantize(1.0, DataType::kFixed, std::nullopt),
               std::invalid_argument);
}

TEST(Value, BoolAndDoubleRoundTrip) {
  EXPECT_TRUE(Value::of_bool(true).as_bool());
  EXPECT_EQ(Value::of_double(2.7).as_int(), 3);
  EXPECT_EQ(Value::quantize(0.4, DataType::kBool, std::nullopt).as_bool(),
            true);
  EXPECT_EQ(Value::quantize(0.0, DataType::kBool, std::nullopt).as_bool(),
            false);
}

TEST(Value, StorageBytesForFootprint) {
  EXPECT_EQ(storage_bytes(DataType::kDouble), 8u);
  EXPECT_EQ(storage_bytes(DataType::kInt16), 2u);
  EXPECT_EQ(storage_bytes(DataType::kBool), 1u);
}

// -------------------------------------------------------------------- Model

TEST(ModelGraph, SortedRespectsDataFlow) {
  Model m("t");
  auto& c = m.add<ConstantBlock>("c", 1.0);
  auto& g1 = m.add<GainBlock>("g1", 2.0);
  auto& g2 = m.add<GainBlock>("g2", 3.0);
  m.connect(g1, 0, g2, 0);  // declare g2 first in dependency terms
  m.connect(c, 0, g1, 0);
  const auto& order = m.sorted();
  const auto pos = [&](const Block* b) {
    return std::find(order.begin(), order.end(), b) - order.begin();
  };
  EXPECT_LT(pos(&c), pos(&g1));
  EXPECT_LT(pos(&g1), pos(&g2));
}

TEST(ModelGraph, AlgebraicLoopDetected) {
  Model m("loop");
  auto& g1 = m.add<GainBlock>("g1", 1.0);
  auto& g2 = m.add<GainBlock>("g2", 1.0);
  m.connect(g1, 0, g2, 0);
  m.connect(g2, 0, g1, 0);
  EXPECT_THROW(m.sorted(), std::logic_error);
  const auto diags = m.check();
  EXPECT_TRUE(diags.has_errors());
}

TEST(ModelGraph, DelayBreaksLoop) {
  Model m("fb");
  auto& g = m.add<GainBlock>("g", 0.5);
  auto& d = m.add<UnitDelayBlock>("d", 0.0);
  m.connect(g, 0, d, 0);
  m.connect(d, 0, g, 0);
  EXPECT_NO_THROW(m.sorted());
}

TEST(ModelGraph, UnconnectedInputWarns) {
  Model m("w");
  m.add<GainBlock>("g", 1.0);
  const auto diags = m.check();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.has_warnings());
}

TEST(ModelGraph, RemoveDisconnectsDownstream) {
  Model m("r");
  auto& c = m.add<ConstantBlock>("c", 5.0);
  auto& g = m.add<GainBlock>("g", 1.0);
  m.connect(c, 0, g, 0);
  EXPECT_TRUE(m.remove("c"));
  EXPECT_FALSE(g.input_connected(0));
  EXPECT_EQ(m.block_count(), 1u);
}

TEST(ModelGraph, DuplicateNamesRejected) {
  Model m("d");
  m.add<ConstantBlock>("x", 1.0);
  EXPECT_THROW(m.add<GainBlock>("x", 1.0), std::invalid_argument);
}

// ------------------------------------------------------------------- Engine

TEST(Engine, ConstantThroughGain) {
  Model m("cg");
  auto& c = m.add<ConstantBlock>("c", 2.0);
  auto& g = m.add<GainBlock>("g", 3.0);
  auto& scope = m.add<ScopeBlock>("s");
  m.connect(c, 0, g, 0);
  m.connect(g, 0, scope, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.run();
  EXPECT_DOUBLE_EQ(scope.log().last_value(), 6.0);
  EXPECT_EQ(eng.major_steps(), 10u);  // default 1 ms base
}

TEST(Engine, DiscreteAccumulatorMatchesClosedForm) {
  // y[k+1] = y[k] + T*u with u=1: after 1 s at T=1 ms, y = 1.0.
  Model m("acc");
  auto& c = m.add<ConstantBlock>("u", 1.0);
  auto& integ = m.add<blocks::DiscreteIntegratorBlock>("i", 1.0);
  integ.set_sample_time(SampleTime::discrete(0.001));
  auto& scope = m.add<ScopeBlock>("s");
  m.connect(c, 0, integ, 0);
  m.connect(integ, 0, scope, 0);
  Engine eng(m, {.stop_time = 1.0});
  eng.run();
  EXPECT_NEAR(scope.log().last_value(), 1.0, 1e-3 + 1e-9);
}

TEST(Engine, Rk4IntegratesExponentialDecayAccurately) {
  // x' = -x, x(0) = 1 -> x(1) = e^-1.
  Model m("exp");
  auto& integ = m.add<IntegratorBlock>("x", 1.0);
  auto& g = m.add<GainBlock>("neg", -1.0);
  m.connect(integ, 0, g, 0);
  m.connect(g, 0, integ, 0);
  g.set_sample_time(SampleTime::continuous());
  Engine eng(m, {.stop_time = 1.0, .minor_steps = 4});
  eng.run();
  SimContext ctx{1.0, 1e-3, false};
  integ.output(ctx);
  EXPECT_NEAR(integ.out(0).as_double(), std::exp(-1.0), 1e-9);
}

TEST(Engine, InheritancePropagatesContinuity) {
  Model m("inh");
  auto& integ = m.add<IntegratorBlock>("x", 1.0);
  auto& g = m.add<GainBlock>("g", -1.0);  // inherited: fed by continuous
  m.connect(integ, 0, g, 0);
  m.connect(g, 0, integ, 0);
  Engine eng(m, {.stop_time = 0.5});
  eng.initialize();
  EXPECT_TRUE(g.resolved_continuous());
  // A detached source stays discrete.
  auto& c = m.add<ConstantBlock>("c", 0.0);
  Engine eng2(m, {.stop_time = 0.5});
  eng2.initialize();
  EXPECT_FALSE(c.resolved_continuous());
}

TEST(Engine, SecondOrderOscillatorConservesFrequency) {
  // x'' = -w^2 x -> x(t) = cos(w t); check the value after one full period.
  Model m("osc");
  const double w = 2.0 * 3.14159265358979;  // 1 Hz
  auto& v = m.add<IntegratorBlock>("v", 0.0);
  auto& x = m.add<IntegratorBlock>("x", 1.0);
  auto& g = m.add<GainBlock>("w2", -w * w);
  m.connect(x, 0, g, 0);
  m.connect(g, 0, v, 0);
  m.connect(v, 0, x, 0);
  Engine eng(m, {.stop_time = 1.0, .base_period = 1e-3, .minor_steps = 2});
  eng.run();
  SimContext ctx{1.0, 1e-3, false};
  x.output(ctx);
  EXPECT_NEAR(x.out(0).as_double(), 1.0, 1e-5);
}

TEST(Engine, MultirateHitsSlowBlocksLessOften) {
  Model m("mr");
  auto& c = m.add<ConstantBlock>("c", 1.0);
  auto& fast = m.add<ScopeBlock>("fast");
  auto& slow = m.add<ScopeBlock>("slow");
  fast.set_sample_time(SampleTime::discrete(0.001));
  slow.set_sample_time(SampleTime::discrete(0.005));
  m.connect(c, 0, fast, 0);
  m.connect(c, 0, slow, 0);
  Engine eng(m, {.stop_time = 0.1});
  eng.run();
  EXPECT_EQ(fast.log().size(), 100u);
  EXPECT_EQ(slow.log().size(), 20u);
}

TEST(Engine, SampleOffsetDelaysFirstHit) {
  Model m("off");
  auto& c = m.add<ConstantBlock>("c", 1.0);
  auto& scope = m.add<ScopeBlock>("s");
  scope.set_sample_time(SampleTime::discrete(0.002, 0.001));
  m.connect(c, 0, scope, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.run();
  ASSERT_FALSE(scope.log().empty());
  EXPECT_DOUBLE_EQ(scope.log().time_at(0), 0.001);
  EXPECT_EQ(scope.log().size(), 5u);  // 1,3,5,7,9 ms
}

TEST(Engine, IncompatibleRateRejected) {
  Model m("bad");
  auto& c = m.add<ConstantBlock>("c", 1.0);
  auto& scope = m.add<ScopeBlock>("s");
  scope.set_sample_time(SampleTime::discrete(0.0015));
  m.connect(c, 0, scope, 0);
  Engine eng(m, {.stop_time = 0.1, .base_period = 1e-3});
  EXPECT_THROW(eng.initialize(), std::logic_error);
}

TEST(Engine, AdvanceToStepsExactly) {
  Model m("adv");
  m.add<ConstantBlock>("c", 1.0);
  Engine eng(m, {.stop_time = 1.0});
  eng.initialize();
  eng.advance_to(0.05);
  EXPECT_NEAR(eng.time(), 0.05, 1e-12);
  eng.advance_to(0.05);  // idempotent
  EXPECT_NEAR(eng.time(), 0.05, 1e-12);
}

// --------------------------------------------------------------- Subsystems

TEST(Subsystem, ClosedLoopThroughSubsystem) {
  // Controller subsystem: out = 2 * in.
  Model m("top");
  auto& sub = m.add<Subsystem>("ctrl", 1, 1);
  auto& inp = sub.inner().add<Inport>("in");
  auto& gain = sub.inner().add<GainBlock>("g", 2.0);
  auto& outp = sub.inner().add<Outport>("out");
  sub.inner().connect(inp, 0, gain, 0);
  sub.inner().connect(gain, 0, outp, 0);
  sub.bind_ports({&inp}, {&outp});

  auto& c = m.add<ConstantBlock>("c", 5.0);
  auto& scope = m.add<ScopeBlock>("s");
  m.connect(c, 0, sub, 0);
  m.connect(sub, 0, scope, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.run();
  EXPECT_DOUBLE_EQ(scope.log().last_value(), 10.0);
}

TEST(Subsystem, InnerDiscreteStateUpdates) {
  Model m("top");
  auto& sub = m.add<Subsystem>("sys", 1, 1);
  auto& inp = sub.inner().add<Inport>("in");
  auto& delay = sub.inner().add<UnitDelayBlock>("z", 0.0);
  auto& outp = sub.inner().add<Outport>("out");
  sub.inner().connect(inp, 0, delay, 0);
  sub.inner().connect(delay, 0, outp, 0);
  sub.bind_ports({&inp}, {&outp});
  auto& step = m.add<StepBlock>("u", 0.0, 0.0, 1.0);
  auto& scope = m.add<ScopeBlock>("s");
  m.connect(step, 0, sub, 0);
  m.connect(sub, 0, scope, 0);
  Engine eng(m, {.stop_time = 0.005});
  eng.run();
  // First sample sees the delay's initial 0, later ones the delayed step.
  EXPECT_DOUBLE_EQ(scope.log().value_at(0), 0.0);
  EXPECT_DOUBLE_EQ(scope.log().value_at(1), 1.0);
}

TEST(Subsystem, ContinuousPlantInsideSubsystem) {
  // Plant subsystem integrating its input: y = t for u = 1.
  Model m("top");
  auto& sub = m.add<Subsystem>("plant", 1, 1);
  auto& inp = sub.inner().add<Inport>("u");
  auto& integ = sub.inner().add<IntegratorBlock>("x", 0.0);
  auto& outp = sub.inner().add<Outport>("y");
  sub.inner().connect(inp, 0, integ, 0);
  sub.inner().connect(integ, 0, outp, 0);
  sub.bind_ports({&inp}, {&outp});
  sub.set_sample_time(SampleTime::continuous());
  auto& c = m.add<ConstantBlock>("c", 1.0);
  m.connect(c, 0, sub, 0);
  Engine eng(m, {.stop_time = 1.0});
  eng.run();
  SimContext ctx{1.0, 1e-3, false};
  sub.output(ctx);
  EXPECT_NEAR(sub.out(0).as_double(), 1.0, 1e-9);
}

TEST(FunctionCallSubsystem, RunsOnlyWhenTriggered) {
  Model m("top");
  auto& fcall = m.add<FunctionCallSubsystem>("isr", 0, 1);
  auto& cnt = fcall.inner().add<blocks::DiscreteIntegratorBlock>("n", 1.0);
  auto& one = fcall.inner().add<ConstantBlock>("one", 1.0);
  auto& outp = fcall.inner().add<Outport>("out");
  fcall.inner().connect(one, 0, cnt, 0);
  fcall.inner().connect(cnt, 0, outp, 0);
  fcall.bind_ports({}, {&outp});
  Engine eng(m, {.stop_time = 0.01});
  eng.initialize();
  eng.run();
  EXPECT_EQ(fcall.activations(), 0u);  // never triggered
  SimContext ctx{0.01, 1e-3, false};
  fcall.trigger(ctx);
  fcall.trigger(ctx);
  EXPECT_EQ(fcall.activations(), 2u);
}

TEST(EventSource, FiresAttachedSubsystemsAndListeners) {
  Model m("top");
  auto& fcall = m.add<FunctionCallSubsystem>("isr", 0, 0);
  fcall.bind_ports({}, {});
  EventSource evt;
  evt.attach(fcall);
  int listener_hits = 0;
  evt.attach([&](const SimContext&) { ++listener_hits; });
  evt.fire(SimContext{0.0, 1e-3, false});
  EXPECT_EQ(fcall.activations(), 1u);
  EXPECT_EQ(listener_hits, 1);
}

// -------------------------------------------------------------- State chart

TEST(StateChart, ModeSwitchingWithGuards) {
  Model m("chart_host");
  auto& chart = m.add<StateChart>("modes", 1, 1);
  chart.add_state(
      "manual",
      /*entry=*/[](const StateChart::ChartContext& c) { c.set_out(0, 0.0); });
  chart.add_state(
      "automatic",
      [](const StateChart::ChartContext& c) { c.set_out(0, 1.0); });
  chart.add_transition("manual", "automatic",
                       [](const StateChart::ChartContext& c) {
                         return c.in(0) > 0.5;
                       });
  chart.add_transition("automatic", "manual",
                       [](const StateChart::ChartContext& c) {
                         return c.in(0) < 0.5;
                       });
  auto& sw = m.add<StepBlock>("u", 0.005, 0.0, 1.0);
  m.connect(sw, 0, chart, 0);
  auto& scope = m.add<ScopeBlock>("s");
  m.connect(chart, 0, scope, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.run();
  EXPECT_EQ(chart.active_state(), "automatic");
  EXPECT_DOUBLE_EQ(scope.log().value_at(0), 0.0);
  EXPECT_DOUBLE_EQ(scope.log().last_value(), 1.0);
  EXPECT_EQ(chart.transitions_taken(), 1u);
}

TEST(StateChart, AsynchronousEventChangesStateImmediately) {
  Model m("h");
  auto& chart = m.add<StateChart>("c", 0, 0);
  chart.add_state("idle");
  chart.add_state("fault");
  chart.add_transition("idle", "fault", nullptr, nullptr, "overcurrent");
  chart.initialize(SimContext{});
  EXPECT_EQ(chart.active_state(), "idle");
  chart.send_event("wrong_event", SimContext{});
  EXPECT_EQ(chart.active_state(), "idle");
  chart.send_event("overcurrent", SimContext{});
  EXPECT_EQ(chart.active_state(), "fault");
}

TEST(StateChart, EntryExitActionsRunInOrder) {
  Model m("h");
  auto& chart = m.add<StateChart>("c", 0, 0);
  std::vector<std::string> trace;
  chart.add_state(
      "a", [&](const StateChart::ChartContext&) { trace.push_back("a.entry"); },
      nullptr,
      [&](const StateChart::ChartContext&) { trace.push_back("a.exit"); });
  chart.add_state("b", [&](const StateChart::ChartContext&) {
    trace.push_back("b.entry");
  });
  chart.add_transition("a", "b", nullptr, [&](const StateChart::ChartContext&) {
    trace.push_back("action");
  });
  chart.initialize(SimContext{});
  chart.output(SimContext{});
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], "a.entry");
  EXPECT_EQ(trace[1], "action");
  EXPECT_EQ(trace[2], "a.exit");
  EXPECT_EQ(trace[3], "b.entry");
}

// ------------------------------------------------------------------ Metrics

TEST(Metrics, StepMetricsOnSyntheticFirstOrderResponse) {
  // y(t) = 1 - e^(-t/tau), tau = 0.1: rise 10->90% = tau*ln(9) ~ 0.2197 s.
  SampleLog log;
  const double tau = 0.1;
  for (int i = 0; i <= 2000; ++i) {
    const double t = i * 1e-3;
    log.record(t, 1.0 - std::exp(-t / tau));
  }
  const StepMetrics m = analyze_step(log, 1.0);
  EXPECT_NEAR(m.rise_time, tau * std::log(9.0), 2e-3);
  EXPECT_NEAR(m.overshoot_percent, 0.0, 0.1);
  EXPECT_TRUE(m.settled);
  EXPECT_NEAR(m.settling_time, tau * std::log(1.0 / 0.02), 5e-3);
  EXPECT_LT(m.steady_state_error, 1e-3);
}

TEST(Metrics, OvershootDetected) {
  SampleLog log;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i * 1e-3;
    // Underdamped second-order-ish: overshoot to 1.3 then settle at 1.
    log.record(t, 1.0 - std::exp(-5 * t) * std::cos(20 * t) * 1.0 -
                       std::exp(-5 * t) * 0.25);
  }
  const StepMetrics m = analyze_step(log, 1.0);
  EXPECT_GT(m.overshoot_percent, 5.0);
}

TEST(Metrics, IaeOfConstantError) {
  SampleLog log;
  for (int i = 0; i <= 100; ++i) log.record(i * 0.01, 0.5);
  EXPECT_NEAR(integral_absolute_error(log, 1.0), 0.5 * 1.0, 1e-9);
  EXPECT_NEAR(integral_squared_error(log, 1.0), 0.25, 1e-9);
  // ITAE of constant error over [0,1] = 0.5 * integral t dt = 0.25.
  EXPECT_NEAR(integral_time_absolute_error(log, 1.0), 0.25, 1e-6);
}

TEST(Metrics, IaeAgainstTimeVaryingReference) {
  SampleLog y;
  SampleLog r;
  for (int i = 0; i <= 100; ++i) {
    y.record(i * 0.01, 1.0);
    r.record(i * 0.01, 2.0);
  }
  EXPECT_NEAR(integral_absolute_error(y, r), 1.0, 1e-9);
}

TEST(SampleLogBasics, ZohSamplingAndMonotonicity) {
  SampleLog log;
  log.record(0.0, 1.0);
  log.record(1.0, 2.0);
  EXPECT_DOUBLE_EQ(log.sample(0.5), 1.0);
  EXPECT_DOUBLE_EQ(log.sample(1.5), 2.0);
  EXPECT_DOUBLE_EQ(log.sample(-1.0), 1.0);
  EXPECT_THROW(log.record(0.5, 3.0), std::invalid_argument);
}

}  // namespace
}  // namespace iecd::model
