#include "beans/watchdog_bean.hpp"

#include "util/strings.hpp"

namespace iecd::beans {

WatchdogBean::WatchdogBean(std::string name) : Bean(std::move(name), "WatchDog") {
  properties().declare(PropertySpec::real(
      "timeout_s", 0.01, 1e-4, 10.0, "COP timeout window"));
}

std::vector<MethodSpec> WatchdogBean::methods() const {
  return {
      {"Enable", "byte %M_Enable(void)", "arm the watchdog (irreversible)"},
      {"Clear", "byte %M_Clear(void)", "service sequence (refresh)"},
  };
}

std::vector<EventSpec> WatchdogBean::events() const { return {}; }

ResourceDemand WatchdogBean::demand() const { return {}; }

void WatchdogBean::validate(const mcu::DerivativeSpec& cpu,
                            util::DiagnosticList& diagnostics) {
  (void)cpu;
  // Nothing derivative-specific; the kernel-level check (timeout vs the
  // model's sample period) happens at code generation where the period is
  // known.
  if (timeout_s() < 1e-3) {
    diagnostics.warning(
        name() + ".timeout_s",
        util::format("timeout %.4f s is tight; ensure the model step "
                     "always refreshes in time",
                     timeout_s()));
  }
}

void WatchdogBean::bind(BindContext& ctx) {
  periph::WatchdogConfig cfg;
  cfg.timeout = sim::from_seconds(timeout_s());
  wdog_ = std::make_unique<periph::WatchdogPeripheral>(ctx.mcu, cfg, name());
  mark_bound();
}

void WatchdogBean::Enable() {
  if (wdog_) wdog_->enable();
}

void WatchdogBean::Clear() {
  if (wdog_) wdog_->refresh();
}

DriverSource WatchdogBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  if (method_enabled("Clear")) {
    c += "byte " + name() +
         "_Clear(void) {\n  COP_CTRL = 0x55;\n  COP_CTRL = 0xAA;\n"
         "  return ERR_OK;\n}\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
