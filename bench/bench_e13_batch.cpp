// E13 — batched SoA simulation core (src/batch/): N Monte-Carlo runs of
// the servo case study advanced per instruction stream instead of one
// model-graph interpretation per run.  Table (a) sweeps the batch width
// over an E4-style MIL gain sweep on one thread — the speedup is pure
// instruction-stream economics (no extra cores): no per-block virtual
// dispatch, SoA lane arrays the autovectorizer turns into packed
// arithmetic, and one schedule evaluation shared by all lanes.  Table (b)
// replays an E11-style MIL load-torque fault campaign through the batched
// engine and byte-compares the campaign report against the scalar path.
// Identity is asserted in-bench (bitwise IAE per run + byte-identical
// campaign JSON); the full trajectory-level contract is locked by
// tests/batch_test.cpp.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "batch/servo_batch.hpp"
#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "exec/sweep.hpp"
#include "fault/campaign.hpp"
#include "fault/sites.hpp"

using namespace iecd;

namespace {

std::size_t sweep_runs() {
  if (bench::overrides().runs > 0) return bench::overrides().runs;
  return bench::smoke() ? 16 : 64;
}
double sweep_duration() { return bench::smoke() ? 0.2 : 0.5; }

std::size_t campaign_runs() {
  if (bench::overrides().runs > 0) return bench::overrides().runs;
  return bench::smoke() ? 4 : 24;
}
double campaign_duration() { return bench::smoke() ? 0.2 : 0.4; }

std::size_t campaign_threads() {
  return bench::overrides().threads > 0 ? bench::overrides().threads : 1;
}
std::size_t campaign_batch() {
  return bench::overrides().batch > 0 ? bench::overrides().batch : 8;
}

core::ServoConfig sweep_config(std::size_t index) {
  core::ServoConfig cfg;
  cfg.duration_s = sweep_duration();
  cfg.setpoint_time = 0.02;
  cfg.kp = 0.002 + 0.0001 * static_cast<double>(index % 16);
  cfg.ki = 0.08 + 0.005 * static_cast<double>(index % 8);
  cfg.setpoint = 80.0 + 10.0 * static_cast<double>(index % 5);
  return cfg;
}

batch::ServoLane lane_for(std::size_t index) {
  const core::ServoConfig cfg = sweep_config(index);
  batch::ServoLane lane;
  lane.setpoint = cfg.setpoint;
  lane.setpoint_time = cfg.setpoint_time;
  lane.kp = cfg.kp;
  lane.ki = cfg.ki;
  lane.motor = cfg.motor;
  return lane;
}

batch::ServoBatchConfig batch_config(std::int64_t pwm_modulo) {
  const core::ServoConfig cfg = sweep_config(0);
  batch::ServoBatchConfig bc;
  bc.period_s = cfg.period_s;
  bc.duration_s = cfg.duration_s;
  bc.encoder_lines = cfg.encoder_lines;
  bc.speed_filter_taps = cfg.speed_filter_taps;
  bc.hw_fidelity = cfg.mil_hw_fidelity;
  bc.pwm_modulo = pwm_modulo;
  return bc;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ----------------------------------------------------------- table (a)

void sweep_table(std::int64_t pwm_modulo) {
  const std::size_t runs = sweep_runs();
  std::printf("(a) MIL gain sweep, %zu runs x %.1f s, one thread: scalar "
              "engine vs batch widths\n\n",
              runs, sweep_duration());
  std::printf("%-10s | %-10s %-12s %-9s %-9s\n", "engine", "wall[ms]",
              "runs/s", "speedup", "identical");
  bench::print_rule(58);

  // Scalar baseline: what a sweep pays today — one model graph built and
  // interpreted per run (exec::SweepRunner, threads = 1).
  std::vector<double> scalar_iae(runs, 0.0);
  exec::SweepRunner scalar_runner({.threads = 1});
  bench::Stopwatch scalar_watch;
  scalar_runner.run(
      runs, exec::SweepRunner::Scenario(
                [&](std::size_t i, trace::MetricsRegistry& metrics) {
                  core::ServoSystem servo(sweep_config(i));
                  const auto result = servo.run_mil();
                  scalar_iae[i] = result.iae;
                  metrics.stats("sweep.iae").add(result.iae);
                }));
  const double scalar_ms = scalar_watch.elapsed_ms();
  const double scalar_rps = 1000.0 * static_cast<double>(runs) / scalar_ms;
  std::printf("%-10s | %-10.1f %-12.1f %-9s %-9s\n", "scalar", scalar_ms,
              scalar_rps, "1.00", "-");
  bench::summarize("batch.scalar_runs_per_s", scalar_rps);

  double w8_rps = 0.0;
  for (const std::size_t width : {1u, 4u, 8u, 16u}) {
    std::vector<double> batched_iae(runs, 0.0);
    exec::SweepRunner runner({.threads = 1, .batch = width});
    bench::Stopwatch watch;
    runner.run(
        runs,
        exec::SweepRunner::BatchScenario(
            [&](std::size_t first, std::span<trace::MetricsRegistry> m) {
              std::vector<batch::ServoLane> lanes;
              lanes.reserve(m.size());
              for (std::size_t k = 0; k < m.size(); ++k) {
                lanes.push_back(lane_for(first + k));
              }
              const auto results =
                  batch::run_servo_batch(batch_config(pwm_modulo), lanes);
              for (std::size_t k = 0; k < m.size(); ++k) {
                batched_iae[first + k] = results[k].iae;
                m[k].stats("sweep.iae").add(results[k].iae);
              }
            }));
    const double ms = watch.elapsed_ms();
    const double rps = 1000.0 * static_cast<double>(runs) / ms;

    bool identical = true;
    for (std::size_t i = 0; i < runs; ++i) {
      identical = identical && bits(batched_iae[i]) == bits(scalar_iae[i]);
    }
    std::printf("%-10s | %-10.1f %-12.1f %-9.2f %-9s\n",
                ("batch w" + std::to_string(width)).c_str(), ms, rps,
                rps / scalar_rps, identical ? "yes" : "NO");

    const std::string key = "batch.w" + std::to_string(width);
    bench::summarize(key + "_runs_per_s", rps);
    bench::summarize(key + "_identical", identical ? 1.0 : 0.0);
    if (width == 8) w8_rps = rps;
  }
  // The CI-gated headline: batched width 8 vs the scalar engine.
  bench::summarize("batch.speedup_ratio", w8_rps / scalar_rps);
}

// ----------------------------------------------------------- table (b)

fault::CampaignOptions campaign_options() {
  fault::CampaignOptions opts;
  opts.name = "servo_mil_torque";
  opts.seed = 2026;
  opts.runs = campaign_runs();
  opts.threads = campaign_threads();
  opts.plan.torque_pulse_rate_hz = 20.0;
  opts.plan.torque_pulse_nm = 0.03;
  opts.plan.torque_pulse_s = 0.02;
  return opts;
}

void campaign_table(std::int64_t pwm_modulo) {
  const double duration = campaign_duration();
  std::printf("\n(b) MIL load-torque fault campaign, %zu runs x %.1f s, one "
              "thread: scalar vs batched (w8)\n\n",
              campaign_runs(), duration);
  std::printf("%-10s | %-10s %-12s %-9s %-10s\n", "engine", "wall[ms]",
              "runs/s", "speedup", "report");
  bench::print_rule(58);

  auto config = [&] {
    core::ServoConfig cfg;
    cfg.duration_s = duration;
    cfg.setpoint_time = 0.02;
    return cfg;
  }();

  bench::Stopwatch scalar_watch;
  const auto scalar_report = fault::CampaignRunner(campaign_options())
          .run(fault::CampaignScenario([&](fault::RunContext& ctx) {
            core::ServoSystem servo(config);
            if (auto load =
                    fault::make_load_torque(ctx.injector, duration)) {
              servo.motor_block().set_load(std::move(load));
            }
            const auto result = servo.run_mil();
            ctx.metrics.stats("campaign.iae").add(result.iae);
            return result.metrics.settled;
          }));
  const double scalar_ms = scalar_watch.elapsed_ms();
  const double scalar_rps =
      1000.0 * static_cast<double>(campaign_runs()) / scalar_ms;
  std::printf("%-10s | %-10.1f %-12.1f %-9s %-10s\n", "scalar", scalar_ms,
              scalar_rps, "1.00", "-");
  bench::summarize("batch.campaign.scalar_runs_per_s", scalar_rps);

  fault::CampaignOptions batched_opts = campaign_options();
  batched_opts.batch = campaign_batch();
  bench::Stopwatch watch;
  const auto batched_report = fault::CampaignRunner(batched_opts)
          .run(fault::BatchCampaignScenario(
              [&](std::span<fault::RunContext> lanes,
                  std::span<bool> recovered) {
                std::vector<batch::ServoLane> bl;
                bl.reserve(lanes.size());
                for (auto& lane : lanes) {
                  batch::ServoLane b;
                  b.setpoint = config.setpoint;
                  b.setpoint_time = config.setpoint_time;
                  b.kp = config.kp;
                  b.ki = config.ki;
                  b.motor = config.motor;
                  b.load = fault::make_load_torque(lane.injector, duration);
                  bl.push_back(std::move(b));
                }
                batch::ServoBatchConfig bc;
                bc.duration_s = duration;
                bc.pwm_modulo = pwm_modulo;
                const auto results = batch::run_servo_batch(bc, bl);
                for (std::size_t k = 0; k < lanes.size(); ++k) {
                  lanes[k].metrics.stats("campaign.iae")
                      .add(results[k].iae);
                  recovered[k] = results[k].metrics.settled;
                }
              }));
  const double ms = watch.elapsed_ms();
  const double rps = 1000.0 * static_cast<double>(campaign_runs()) / ms;
  const bool identical =
      batched_report.to_json() == scalar_report.to_json();
  std::printf("%-10s | %-10.1f %-12.1f %-9.2f %-10s\n", "batch w8", ms, rps,
              rps / scalar_rps, identical ? "identical" : "DIFFERS");

  bench::summarize("batch.campaign.w8_runs_per_s", rps);
  bench::summarize("batch.campaign.speedup_ratio", rps / scalar_rps);
  bench::summarize("batch.campaign.report_identical", identical ? 1.0 : 0.0);
}

void print_table() {
  std::printf("E13: batched SoA/SIMD simulation core — runs per second vs "
              "batch width (threads = 1)\n\n");
  // The solved PWM modulo the scalar servo runs MIL with; the batch
  // engine gets the same value for bit parity.
  core::ServoSystem probe(sweep_config(0));
  const auto pwm_modulo =
      probe.pwm_block().bean().properties().get_int("modulo");

  sweep_table(pwm_modulo);
  campaign_table(pwm_modulo);

  std::printf("\nexpected shape: one instruction stream stepping N SoA "
              "lanes beats N model-graph\ninterpretations well before any "
              "parallelism — the CI gate holds batch.speedup_ratio\n(w8 vs "
              "scalar) at >= 3x with every lane bit-identical to its "
              "scalar run.\n\n");
}

// -------------------------------------------------- microbenchmarks

void BM_ScalarMilRun(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoConfig cfg = sweep_config(0);
    cfg.duration_s = 0.1;
    core::ServoSystem servo(cfg);
    auto result = servo.run_mil();
    benchmark::DoNotOptimize(result.iae);
  }
}
BENCHMARK(BM_ScalarMilRun)->Unit(benchmark::kMillisecond);

void BM_ServoBatchRun(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<batch::ServoLane> lanes;
  for (std::size_t k = 0; k < width; ++k) lanes.push_back(lane_for(k));
  batch::ServoBatchConfig bc;
  bc.duration_s = 0.1;
  bc.pwm_modulo = 3000;
  for (auto _ : state) {
    auto results = batch::run_servo_batch(bc, lanes);
    benchmark::DoNotOptimize(results.back().iae);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_ServoBatchRun)->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
