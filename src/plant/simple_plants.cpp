#include "plant/simple_plants.hpp"

#include <algorithm>
#include <cmath>

namespace iecd::plant {

WaterTankBlock::WaterTankBlock(std::string name, Params params)
    : Block(std::move(name), 1, 1), params_(params) {
  set_sample_time(model::SampleTime::continuous());
}

void WaterTankBlock::initialize(const model::SimContext& ctx) {
  level_ = params_.initial_level;
  output(ctx);
}

void WaterTankBlock::output(const model::SimContext&) { set_out(0, level_); }

void WaterTankBlock::read_states(std::span<double> into) const {
  into[0] = level_;
}

void WaterTankBlock::write_states(std::span<const double> from) {
  level_ = std::clamp(from[0], 0.0, params_.max_level);
}

void WaterTankBlock::derivatives(const model::SimContext&,
                                 std::span<double> dx) const {
  const double u = std::clamp(in(0), 0.0, 1.0);
  const double h = std::max(level_, 0.0);
  const double inflow = params_.inflow_gain * u;
  const double outflow = params_.outlet_area * std::sqrt(2.0 * 9.81 * h);
  dx[0] = (inflow - outflow) / params_.area;
  // Hard limits: no further rise at the brim, no drain below empty.
  if (level_ >= params_.max_level && dx[0] > 0) dx[0] = 0;
  if (level_ <= 0 && dx[0] < 0) dx[0] = 0;
}

ThermalPlantBlock::ThermalPlantBlock(std::string name, Params params)
    : Block(std::move(name), 1, 1), params_(params) {
  set_sample_time(model::SampleTime::continuous());
}

void ThermalPlantBlock::initialize(const model::SimContext& ctx) {
  temperature_ = params_.ambient;
  output(ctx);
}

void ThermalPlantBlock::output(const model::SimContext&) {
  set_out(0, temperature_);
}

void ThermalPlantBlock::read_states(std::span<double> into) const {
  into[0] = temperature_;
}

void ThermalPlantBlock::write_states(std::span<const double> from) {
  temperature_ = from[0];
}

void ThermalPlantBlock::derivatives(const model::SimContext&,
                                    std::span<double> dx) const {
  const double u = std::clamp(in(0), 0.0, 1.0);
  dx[0] = (params_.heater_power * u -
           (temperature_ - params_.ambient) / params_.thermal_resistance) /
          params_.thermal_capacity;
}

}  // namespace iecd::plant
