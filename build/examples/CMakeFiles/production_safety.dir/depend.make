# Empty dependencies file for production_safety.
# This may be replaced when dependencies are built.
