/// \file crc16.hpp
/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) used to protect PIL frames
/// on the simulated RS232 link.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace iecd::util {

/// Computes the CRC over \p data starting from \p seed (0xFFFF for a fresh
/// message).  Feeding a message followed by its own big-endian CRC yields 0.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data,
                          std::uint16_t seed = 0xFFFF);

/// Incremental form: folds a single byte into a running CRC.
std::uint16_t crc16_ccitt_update(std::uint16_t crc, std::uint8_t byte);

}  // namespace iecd::util
