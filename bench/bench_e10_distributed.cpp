// E10 (extension) — networked control over CAN.  The paper's Section 1:
// "The digital control theory normally assumes equidistant sampling
// intervals and a negligible or constant control delay ... this can seldom
// be achieved in practice in a networked embedded system.  Timing
// variations in sampling periods and latencies degrade the control
// performance."  The distributed servo makes that measurable: control
// cost vs bus bit rate, and vs higher-priority background traffic.
#include <cstdio>

#include "bench_util.hpp"
#include "core/distributed.hpp"

using namespace iecd;

namespace {

void print_table() {
  std::printf("E10: distributed servo over CAN (sensor/controller/actuator "
              "nodes)\n\n");

  core::DistributedConfig base;
  base.duration_s = 0.8;
  const auto clean = core::run_distributed_servo(base);
  std::printf("reference (500 kbit/s, idle bus): IAE %.3f, latency %.0f us "
              "mean\n\n",
              clean.iae, clean.loop_latency_us_mean);

  std::printf("(a) bus bit-rate sweep\n\n");
  std::printf("%-10s | %-10s %-14s %-12s %-10s %-9s\n", "bitrate", "IAE",
              "latency[us]", "bus busy[%]", "over[%]", "settled");
  bench::print_rule(72);
  for (std::uint32_t bitrate :
       {1000000u, 500000u, 250000u, 125000u, 100000u}) {
    auto cfg = base;
    cfg.can_bitrate = bitrate;
    const auto r = core::run_distributed_servo(cfg);
    std::printf("%-10u | %-10.3f %6.0f/%-6.0f %-12.1f %-10.2f %s\n", bitrate,
                r.iae, r.loop_latency_us_mean, r.loop_latency_us_max,
                r.bus_utilisation * 100.0, r.metrics.overshoot_percent,
                r.metrics.settled ? "yes" : "NO");
  }

  std::printf("\n(b) background traffic sweep (higher-priority frames, "
              "500 kbit/s)\n\n");
  std::printf("%-12s | %-10s %-14s %-12s %-10s %-9s\n", "frames/s", "IAE",
              "latency[us]", "bus busy[%]", "overruns", "settled");
  bench::print_rule(74);
  for (double rate : {0.0, 500.0, 1000.0, 2000.0, 3000.0}) {
    auto cfg = base;
    cfg.background_frames_per_s = rate;
    const auto r = core::run_distributed_servo(cfg);
    std::printf("%-12.0f | %-10.3f %6.0f/%-6.0f %-12.1f %-10llu %s\n", rate,
                r.iae, r.loop_latency_us_mean, r.loop_latency_us_max,
                r.bus_utilisation * 100.0,
                static_cast<unsigned long long>(r.controller_rx_overruns),
                r.metrics.settled ? "yes" : "NO");
  }
  std::printf("\nexpected shape: latency (and with it the control cost) "
              "grows as the bus slows\nor fills; at saturation the loop "
              "degrades the way Section 1 describes.\n\n");
}

void BM_DistributedRun(benchmark::State& state) {
  for (auto _ : state) {
    core::DistributedConfig cfg;
    cfg.duration_s = 0.4;
    auto r = core::run_distributed_servo(cfg);
    benchmark::DoNotOptimize(r.iae);
  }
}
BENCHMARK(BM_DistributedRun)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
