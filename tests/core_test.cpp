#include <gtest/gtest.h>

#include <cmath>

#include "core/case_study.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "core/peert.hpp"
#include "mcu/derivative.hpp"
#include "rt/runtime.hpp"

namespace iecd::core {
namespace {

// ----------------------------------------------------------- PE block MIL

class PeBlockFixture : public ::testing::Test {
 protected:
  beans::BeanProject project{"p"};
};

TEST_F(PeBlockFixture, AdcBlockQuantizesTo12BitsInMil) {
  auto& bean = project.add<beans::AdcBean>("AD1");
  AdcPeBlock block("AD1", bean);
  model::Model m("host");
  auto& src = m.add<blocks::ConstantBlock>("v", 1.65);
  auto& adc = m.add<AdcPeBlock>("adc", bean);
  m.connect(src, 0, adc, 0);
  src.output(model::SimContext{});
  adc.output(model::SimContext{});
  // 1.65 / 3.3 full scale at 12 bits = code 2048, left justified: 0x8000.
  EXPECT_NEAR(adc.out(0).as_double(), 2048.0 * 16.0, 16.0);
  // Resolution visible: small voltage change below 1 LSB does not move it.
  const double code1 = adc.out(0).as_double();
  src.set_value(1.65 + 0.0001);
  src.output(model::SimContext{});
  adc.output(model::SimContext{});
  EXPECT_EQ(adc.out(0).as_double(), code1);
}

TEST_F(PeBlockFixture, PwmBlockLimitsDutyResolutionInMil) {
  auto& bean = project.add<beans::PwmBean>("PWM1");
  util::DiagnosticList diags;
  bean.set_property("frequency_hz", 500000.0, diags);  // few counts/period
  project.validate();
  const auto modulo = bean.properties().get_int("modulo");
  ASSERT_GT(modulo, 0);
  ASSERT_LT(modulo, 200);
  model::Model m("host");
  auto& src = m.add<blocks::ConstantBlock>("d", 0.5012345);
  auto& pwm = m.add<PwmPeBlock>("pwm", bean);
  m.connect(src, 0, pwm, 0);
  src.output(model::SimContext{});
  pwm.output(model::SimContext{});
  const double q = pwm.out(0).as_double();
  // Quantized to 1/modulo steps.
  EXPECT_NEAR(q * static_cast<double>(modulo),
              std::round(q * static_cast<double>(modulo)), 1e-9);
  EXPECT_NE(q, 0.5012345);
}

TEST_F(PeBlockFixture, QuadDecBlockWrapsLikeHardware) {
  auto& bean = project.add<beans::QuadDecBean>("QD1");
  model::Model m("host");
  auto& src = m.add<blocks::ConstantBlock>("angle", 0.0);
  auto& qd = m.add<QuadDecPeBlock>("qd", bean);
  m.connect(src, 0, qd, 0);
  // 100 revolutions = 40000 counts -> wraps into int16.
  src.set_value(100.0 * 2.0 * 3.14159265358979);
  src.output(model::SimContext{});
  qd.output(model::SimContext{});
  const double counts = qd.out(0).as_double();
  EXPECT_GE(counts, -32768.0);
  EXPECT_LE(counts, 32767.0);
  EXPECT_NEAR(counts, 40000.0 - 65536.0, 2.0);  // wrapped value
}

TEST_F(PeBlockFixture, BitIoBlockFiresEdgeEventInMil) {
  auto& bean = project.add<beans::BitIoBean>("Key");
  util::DiagnosticList d;
  bean.set_property("edge", std::string("rising"), d);
  model::Model m("host");
  auto& src = m.add<blocks::ConstantBlock>("level", 0.0);
  auto& key = m.add<BitIoPeBlock>("key", bean);
  m.connect(src, 0, key, 0);
  int fires = 0;
  key.event("OnInterrupt").attach(
      [&](const model::SimContext&) { ++fires; });
  model::SimContext ctx;
  src.output(ctx);
  key.output(ctx);
  EXPECT_EQ(fires, 0);
  src.set_value(1.0);
  src.output(ctx);
  key.output(ctx);
  EXPECT_EQ(fires, 1);  // rising edge
  src.set_value(0.0);
  src.output(ctx);
  key.output(ctx);
  EXPECT_EQ(fires, 1);  // falling edge ignored
}

// -------------------------------------------------------------- ModelSync

TEST(ModelSync, BlockInsertionCreatesBean) {
  model::Model m("ctrl");
  beans::BeanProject project("p");
  ModelSync sync(m, project);
  sync.add_adc("AD1");
  sync.add_pwm("PWM1");
  EXPECT_NE(project.find("AD1"), nullptr);
  EXPECT_NE(project.find("PWM1"), nullptr);
  EXPECT_NE(m.find("AD1"), nullptr);
  EXPECT_EQ(project.find("AD1")->type_name(), "ADC");
}

TEST(ModelSync, RemovalAndRenamePropagateModelToProject) {
  model::Model m("ctrl");
  beans::BeanProject project("p");
  ModelSync sync(m, project);
  sync.add_adc("AD1");
  EXPECT_TRUE(sync.rename_pe_block("AD1", "AD_speed"));
  EXPECT_EQ(project.find("AD1"), nullptr);
  EXPECT_NE(project.find("AD_speed"), nullptr);
  EXPECT_NE(m.find("AD_speed"), nullptr);
  EXPECT_TRUE(sync.remove_pe_block("AD_speed"));
  EXPECT_EQ(project.find("AD_speed"), nullptr);
  EXPECT_EQ(m.find("AD_speed"), nullptr);
}

TEST(ModelSync, ProjectSideChangesPropagateToModel) {
  model::Model m("ctrl");
  beans::BeanProject project("p");
  ModelSync sync(m, project);
  sync.add_pwm("PWM1");
  // Rename from the PE project window.
  project.rename("PWM1", "PWM_drive");
  EXPECT_NE(m.find("PWM_drive"), nullptr);
  EXPECT_EQ(m.find("PWM1"), nullptr);
  // Remove from the PE project window.
  project.remove("PWM_drive");
  EXPECT_EQ(m.find("PWM_drive"), nullptr);
}

TEST(ModelSync, PropertyEditValidatesImmediately) {
  model::Model m("ctrl");
  beans::BeanProject project("p");
  ModelSync sync(m, project);
  sync.add_timer_int("TI1");
  auto diags = sync.set_block_property("TI1", "period_s", 10.0);
  EXPECT_TRUE(diags.has_errors());  // not achievable on the 16-bit timer
  diags = sync.set_block_property("TI1", "period_s", 0.001);
  EXPECT_FALSE(diags.has_errors());
}

// ----------------------------------------------------- Servo case study

class ServoFixture : public ::testing::Test {
 protected:
  static ServoConfig quick_config() {
    ServoConfig cfg;
    cfg.duration_s = 0.6;
    cfg.setpoint_time = 0.05;
    return cfg;
  }
};

TEST_F(ServoFixture, ProjectValidatesCleanOnDsc) {
  ServoSystem servo(quick_config());
  auto diags = servo.validate();
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
}

TEST_F(ServoFixture, MilReachesSetpoint) {
  ServoSystem servo(quick_config());
  const auto result = servo.run_mil();
  EXPECT_TRUE(result.metrics.settled)
      << "final speed " << result.speed.last_value();
  EXPECT_LT(result.metrics.steady_state_error, 3.0);
  EXPECT_GT(result.metrics.rise_time, 0.0);
  EXPECT_LT(result.metrics.rise_time, 0.2);
}

TEST_F(ServoFixture, MilFixedPointTracksDoubleWithinQuantization) {
  auto cfg = quick_config();
  ServoSystem servo_double(cfg);
  cfg.fixed_point = true;
  ServoSystem servo_fixed(cfg);
  const auto rd = servo_double.run_mil();
  const auto rf = servo_fixed.run_mil();
  EXPECT_TRUE(rf.metrics.settled);
  // Fixed-point controller lands close to the double one.
  EXPECT_NEAR(rf.speed.last_value(), rd.speed.last_value(), 2.0);
  EXPECT_NEAR(rf.iae, rd.iae, rd.iae * 0.25 + 0.1);
}

TEST_F(ServoFixture, TargetBuildEmitsServoSources) {
  ServoSystem servo(quick_config());
  auto build = servo.build_target("servo");
  EXPECT_TRUE(build.ok()) << build.diagnostics.to_string();
  EXPECT_GE(build.app.tasks.size(), 2u);  // step + key event task
  bool has_event_task = false;
  for (const auto& t : build.app.tasks) {
    if (t.trigger == codegen::TaskSpec::Trigger::kEvent) {
      has_event_task = true;
      EXPECT_EQ(t.event_bean, "KeyUp");
    }
  }
  EXPECT_TRUE(has_event_task);
  EXPECT_NE(build.app.sources.at("servo.c").find("QD1_GetPosition"),
            std::string::npos);
}

TEST_F(ServoFixture, HilMatchesMilShape) {
  ServoSystem servo(quick_config());
  const auto mil = servo.run_mil();
  const auto hil = servo.run_hil();
  EXPECT_TRUE(hil.metrics.settled)
      << "final speed " << hil.speed.last_value();
  EXPECT_NEAR(hil.speed.last_value(), mil.speed.last_value(), 5.0);
  EXPECT_GT(hil.activations, 500u);
  EXPECT_GT(hil.exec_us_mean, 0.0);
  EXPECT_LT(hil.cpu_utilisation, 0.5);
  EXPECT_EQ(hil.overruns, 0u);
}

TEST_F(ServoFixture, HilKeyPressRaisesSetpoint) {
  auto cfg = quick_config();
  cfg.duration_s = 1.0;
  ServoSystem servo(cfg);
  ServoSystem::HilOptions opts;
  opts.key_up_presses = {sim::milliseconds(500), sim::milliseconds(600)};
  const auto hil = servo.run_hil(opts);
  // Two presses of +10 rad/s land above the base set-point.  The push
  // button bounces (as real contacts do), so each press can fire the edge
  // interrupt several times — the undebounced event task sees >= 1
  // activation per press.
  EXPECT_GT(hil.speed.last_value(), cfg.setpoint + 12.0);
  EXPECT_GE(servo.setpoint_bump().activations(), 2u);
  EXPECT_LE(servo.setpoint_bump().activations(), 12u);
}

TEST_F(ServoFixture, PilTracksMilThroughSerialLoop) {
  auto cfg = quick_config();
  ServoSystem servo(cfg);
  const auto mil = servo.run_mil();
  const auto pil = servo.run_pil({.baud = 460800});
  EXPECT_GT(pil.report.exchanges, 400u);
  EXPECT_EQ(pil.report.crc_errors, 0u);
  EXPECT_TRUE(pil.metrics.settled)
      << "final speed " << pil.speed.last_value();
  EXPECT_NEAR(pil.speed.last_value(), mil.speed.last_value(), 8.0);
  EXPECT_GT(pil.report.round_trip_us.mean(), 0.0);
}

TEST_F(ServoFixture, PilSlowBaudDegradesOrMissesDeadlines) {
  auto cfg = quick_config();
  cfg.duration_s = 0.3;
  ServoSystem servo(cfg);
  const auto pil = servo.run_pil({.baud = 9600});
  // 1 kHz exchange over 9600 baud cannot close in time:
  // the frames alone take > 1 ms of wire time.
  EXPECT_GT(pil.report.deadline_misses, 0u);
  EXPECT_GT(pil.report.comm_overhead_ratio, 0.9);
}

TEST_F(ServoFixture, JitterInjectionDegradesControlQuality) {
  auto cfg = quick_config();
  ServoSystem base(cfg);
  const auto clean = base.run_hil();
  ServoSystem jittered(cfg);
  ServoSystem::HilOptions opts;
  // Deterministic +-40% period jitter.
  opts.timer_jitter = [](std::uint64_t k) {
    return (k % 2 == 0) ? sim::microseconds(400) : -sim::microseconds(400);
  };
  const auto noisy = jittered.run_hil(opts);
  EXPECT_GE(noisy.iae, clean.iae * 0.9);
  EXPECT_GT(noisy.jitter_us, clean.jitter_us + 100.0);
}

TEST_F(ServoFixture, ModeChartSwitchesToManualDuty) {
  // Drive the mode key high in MIL: the chart must select the manual duty.
  ServoConfig cfg = quick_config();
  ServoSystem servo(cfg);
  auto* key_src = dynamic_cast<blocks::ConstantBlock*>(
      servo.controller().inner().find("key_mode_src"));
  ASSERT_NE(key_src, nullptr);
  key_src->set_value(1.0);
  const auto result = servo.run_mil();
  EXPECT_EQ(servo.mode_chart().active_state(), "manual");
  // Manual duty 0.2 -> steady speed near 0.2 * no-load speed.
  const double expected =
      0.2 * cfg.motor.supply_voltage * cfg.motor.kt /
      (cfg.motor.resistance * cfg.motor.damping + cfg.motor.kt * cfg.motor.ke);
  EXPECT_NEAR(result.speed.last_value(), expected, expected * 0.1);
}

TEST_F(ServoFixture, HwFidelityMakesMilPredictive) {
  // The ablation of the paper's central fidelity claim: with a coarse
  // encoder, the PE-block MIL predicts the HIL reality; the "trivial
  // pass-through" simulation of other targets does not.
  auto cfg = quick_config();
  cfg.duration_s = 0.8;
  cfg.encoder_lines = 16;  // speed LSB ~98 rad/s before filtering
  core::ServoSystem hw_servo(cfg);
  const auto hil = hw_servo.run_hil();
  const auto mil_hw = hw_servo.run_mil();
  cfg.mil_hw_fidelity = false;
  core::ServoSystem ideal_servo(cfg);
  const auto mil_ideal = ideal_servo.run_mil();

  const double err_hw = std::abs(mil_hw.iae - hil.iae);
  const double err_ideal = std::abs(mil_ideal.iae - hil.iae);
  EXPECT_LT(err_hw, err_ideal / 5.0);
  // The ideal simulation predicts no quantization-induced overshoot at
  // all; the hardware-faithful one sees what the HIL run sees.
  EXPECT_LT(mil_ideal.metrics.overshoot_percent, 1.0);
  EXPECT_NEAR(mil_hw.metrics.overshoot_percent,
              hil.metrics.overshoot_percent, 2.0);
}

TEST_F(ServoFixture, PortToMcuWithoutDecoderFailsValidation) {
  auto cfg = quick_config();
  ServoSystem servo(cfg);
  auto diags = servo.project().select_derivative("HCS08GB60");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("quadrature"), std::string::npos);
}

TEST_F(ServoFixture, PortToColdFireRevalidatesAndRuns) {
  auto cfg = quick_config();
  cfg.derivative = "MCF5235";
  ServoSystem servo(cfg);
  auto diags = servo.validate();
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  const auto hil = servo.run_hil();
  EXPECT_TRUE(hil.metrics.settled);
}

}  // namespace
}  // namespace iecd::core
