/// \file adc_bean.hpp
/// ADC bean ("AD" in Processor Expert terms).  The user states *what* they
/// need — channel, resolution, interrupt on end-of-conversion — and the
/// expert system derives the conversion time on the selected derivative and
/// verifies the request is achievable at all.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/adc.hpp"

namespace iecd::beans {

class AdcBean : public Bean {
 public:
  explicit AdcBean(std::string name = "AD1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods (the generated application's entry points) ---

  /// Method "Measure": starts a conversion on the configured channel.
  bool Measure();
  /// Method "GetValue16": last result left-justified into 16 bits (the PE
  /// convention making application code resolution-independent).
  std::uint16_t GetValue16() const;
  /// Raw right-justified result.
  std::uint32_t GetValueRaw() const;

  periph::AdcPeripheral* peripheral() { return adc_.get(); }
  int channel() const {
    return static_cast<int>(properties().get_int("channel"));
  }

 private:
  std::unique_ptr<periph::AdcPeripheral> adc_;
};

}  // namespace iecd::beans
