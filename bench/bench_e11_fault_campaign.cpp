// E11 — fault-injection & robustness campaigns (src/fault/): the servo
// case study driven through deterministic fault campaigns across the link,
// MCU, plant and PIL layers.  The PIL bench sweeps a fault-rate multiplier
// over the default plan and watches the timeout/retransmit recovery layer
// hold the loop together: at the default rates every exchange must recover
// (zero unrecovered runs — the CI fault-campaign job gates exactly this)
// and the control cost stays within a committed degradation bound.  The
// HIL campaign perturbs the sensor/plant layers (encoder glitches, IRQ
// spikes, task overruns, load-torque pulses) with no protocol to hide
// behind and reports the raw degradation.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "fault/campaign.hpp"
#include "fault/plan.hpp"
#include "obs/health_report.hpp"
#include "obs/monitor.hpp"

using namespace iecd;

namespace {

std::size_t campaign_runs() {
  if (bench::overrides().runs > 0) return bench::overrides().runs;
  return bench::smoke() ? 2 : 6;
}
std::size_t campaign_threads() {
  return bench::overrides().threads > 0 ? bench::overrides().threads : 2;
}
double campaign_duration() { return bench::smoke() ? 0.2 : 0.5; }

core::ServoConfig campaign_config() {
  core::ServoConfig cfg;
  cfg.duration_s = campaign_duration();
  cfg.setpoint_time = 0.02;
  return cfg;
}

/// PIL campaign scenario: the case-study servo over a 1 Mbaud line (the
/// round trip must fit well inside the period for retransmission to be
/// meaningful — see HostEndpoint::Recovery) with every fault layer wired
/// and recovery enabled.  A run counts as recovered when no exchange
/// exhausted its retransmit budget.
bool pil_scenario(fault::RunContext& ctx) {
  core::ServoSystem servo(campaign_config());
  obs::MonitorHub hub;
  core::ServoSystem::PilRunOptions opts;
  opts.baud = 1000000;
  opts.faults = &ctx.injector;
  opts.monitors = &hub;
  opts.recovery.enabled = true;
  const auto result = servo.run_pil(opts);
  ctx.metrics.merge(result.report.metrics);
  ctx.metrics.stats("campaign.iae").add(result.iae);
  ctx.metrics.counter("campaign.settled").value +=
      result.metrics.settled ? 1 : 0;
  ctx.health.merge(hub.report("pil"));
  const auto* abandoned =
      result.report.metrics.find_counter("pil.exchanges_abandoned");
  return abandoned == nullptr || abandoned->value == 0;
}

/// HIL campaign scenario: generated code on the simulated MCU against the
/// peripheral-level plant, with encoder glitches, interrupt-latency
/// spikes, task overruns and load-torque pulses wired in.  Recovered =
/// the loop still settles.
bool hil_scenario(fault::RunContext& ctx) {
  core::ServoSystem servo(campaign_config());
  obs::MonitorHub hub;
  core::ServoSystem::HilOptions opts;
  opts.faults = &ctx.injector;
  opts.monitors = &hub;
  const auto result = servo.run_hil(opts);
  ctx.metrics.stats("campaign.iae").add(result.iae);
  ctx.metrics.counter("campaign.settled").value +=
      result.metrics.settled ? 1 : 0;
  ctx.health.merge(hub.report("hil"));
  return result.metrics.settled;
}

std::uint64_t merged_counter(const fault::CampaignReport& report,
                             const std::string& name) {
  const auto* c = report.merged.find_counter(name);
  return c ? c->value : 0;
}

double merged_iae_mean(const fault::CampaignReport& report) {
  const auto* s = report.merged.find_stats("campaign.iae");
  return s ? s->mean() : 0.0;
}

void print_table() {
  std::printf("E11: fault campaigns over the servo case study (%zu runs per "
              "point, %.1f s each)\n\n",
              campaign_runs(), campaign_duration());

  // ---------------------------------------------------------------- PIL
  std::printf("(a) PIL campaign: default fault plan scaled by a rate "
              "multiplier; recovery on (1 Mbaud)\n\n");
  std::printf("%-6s | %-9s %-11s %-8s %-8s %-8s %-7s %-9s %-9s %-11s %-8s\n",
              "mult", "injected", "opportun.", "retrans", "recov",
              "abandon", "unrec", "IAE", "IAE ratio", "rec p99[us]",
              "runs/s");
  bench::print_rule(111);

  double clean_iae = 0.0;
  for (const double mult : {0.0, 0.5, 1.0, 2.0}) {
    fault::CampaignOptions opts;
    opts.name = "servo_pil_x" + std::to_string(mult).substr(0, 3);
    opts.seed = 2026;
    opts.runs = campaign_runs();
    opts.threads = campaign_threads();
    opts.plan = fault::FaultPlan::defaults().scaled(mult);
    bench::Stopwatch watch;
    const fault::CampaignReport report =
        fault::CampaignRunner(opts).run(pil_scenario);
    const double runs_per_s =
        1000.0 * static_cast<double>(report.runs) / watch.elapsed_ms();

    const double iae = merged_iae_mean(report);
    if (mult == 0.0) clean_iae = iae;
    const double ratio = clean_iae > 0.0 ? iae / clean_iae : 0.0;
    double recovery_p99 = 0.0;
    const auto task = report.health.tasks.find("pil.recovery");
    if (task != report.health.tasks.end()) {
      recovery_p99 = task->second.response_us().p99();
    }
    std::printf("%-6.1f | %-9llu %-11llu %-8llu %-8llu %-8llu %-7llu "
                "%-9.3f %-9.3f %-11.1f %-8.2f\n",
                mult,
                static_cast<unsigned long long>(report.faults_injected),
                static_cast<unsigned long long>(report.fault_opportunities),
                static_cast<unsigned long long>(
                    merged_counter(report, "pil.retransmits")),
                static_cast<unsigned long long>(
                    merged_counter(report, "pil.recovered_exchanges")),
                static_cast<unsigned long long>(
                    merged_counter(report, "pil.exchanges_abandoned")),
                static_cast<unsigned long long>(report.unrecovered), iae,
                ratio, recovery_p99, runs_per_s);

    const std::string key =
        "e11.pil.x" + std::to_string(mult).substr(0, 3);
    bench::summarize(key + ".iae", iae);
    bench::summarize(key + ".iae_ratio", ratio);
    bench::summarize(key + ".unrecovered",
                     static_cast<double>(report.unrecovered));
    if (mult == 1.0) {
      // The gated point: the CI fault-campaign job asserts zero
      // unrecovered runs and the committed IAE degradation bound on
      // exactly this plan.
      report.write_json("CAMPAIGN_servo_pil.json");
      bench::summarize("e11.pil.unrecovered",
                       static_cast<double>(report.unrecovered));
      bench::summarize("e11.pil.iae_ratio", ratio);
      bench::summarize("e11.pil.injected",
                       static_cast<double>(report.faults_injected));
      bench::summarize("e11.pil.retransmits",
                       static_cast<double>(
                           merged_counter(report, "pil.retransmits")));
      bench::summarize("e11.pil.recovery_p99_us", recovery_p99);
      bench::summarize("e11.pil.runs_per_s", runs_per_s);
    }
  }

  // ---------------------------------------------------------------- HIL
  std::printf("\n(b) HIL campaign: sensor/plant faults, no protocol "
              "recovery (raw degradation)\n\n");
  std::printf("%-8s | %-9s %-11s %-8s %-9s %-9s %-8s\n", "plan", "injected",
              "opportun.", "settled", "IAE", "IAE ratio", "runs/s");
  bench::print_rule(71);

  double hil_clean_iae = 0.0;
  for (const double mult : {0.0, 1.0}) {
    fault::CampaignOptions opts;
    opts.name = mult == 0.0 ? "servo_hil_clean" : "servo_hil";
    opts.seed = 2026;
    opts.runs = campaign_runs();
    opts.threads = campaign_threads();
    opts.plan = fault::FaultPlan::defaults().scaled(mult);
    bench::Stopwatch watch;
    const fault::CampaignReport report =
        fault::CampaignRunner(opts).run(hil_scenario);
    const double runs_per_s =
        1000.0 * static_cast<double>(report.runs) / watch.elapsed_ms();
    const double iae = merged_iae_mean(report);
    if (mult == 0.0) hil_clean_iae = iae;
    const double ratio = hil_clean_iae > 0.0 ? iae / hil_clean_iae : 0.0;
    std::printf("x%-7.1f | %-9llu %-11llu %-8llu %-9.3f %-9.3f %-8.2f\n",
                mult,
                static_cast<unsigned long long>(report.faults_injected),
                static_cast<unsigned long long>(report.fault_opportunities),
                static_cast<unsigned long long>(
                    merged_counter(report, "campaign.settled")),
                iae, ratio, runs_per_s);
    if (mult == 1.0) {
      report.write_json("CAMPAIGN_servo_hil.json");
      bench::summarize("e11.hil.iae_ratio", ratio);
      bench::summarize("e11.hil.unrecovered",
                       static_cast<double>(report.unrecovered));
      bench::summarize("e11.hil.injected",
                       static_cast<double>(report.faults_injected));
      bench::summarize("e11.hil.runs_per_s", runs_per_s);
    }
  }

  std::printf("\nexpected shape: fault counts scale with the multiplier; "
              "at the default rates the PIL\nrecovery layer retransmits "
              "through every loss (zero unrecovered) and the IAE "
              "degradation\nstays within the committed bound (see the CI "
              "fault-campaign gate).\n\n");
}

void BM_PilCampaignRun(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(fault::CampaignRunner::run_seed(1, seed++),
                                  fault::FaultPlan::defaults());
    core::ServoConfig cfg;
    cfg.duration_s = 0.1;
    core::ServoSystem servo(cfg);
    core::ServoSystem::PilRunOptions opts;
    opts.baud = 1000000;
    opts.faults = &injector;
    opts.recovery.enabled = true;
    auto result = servo.run_pil(opts);
    benchmark::DoNotOptimize(result.iae);
  }
}
BENCHMARK(BM_PilCampaignRun)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
