/// \file plant_batch.hpp
/// Lane-batched integration of the simple plants (water tank, thermal
/// process) plus the batched peripheral latch kernels the servo batch and
/// the tests share.  Same determinism contract as servo_batch.hpp: every
/// lane is bit-identical to the scalar engine integrating the same block,
/// because the kernels replicate the engine's arithmetic expression for
/// expression (including the tank's clamp-on-write / raw-initial-sample
/// behaviour, which lives in WaterTankBlock::write_states rather than in
/// the integrator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "batch/lanes.hpp"
#include "model/logging.hpp"
#include "plant/simple_plants.hpp"

namespace iecd::batch {

/// Shared schedule for a batched plant run; mirrors model::EngineOptions.
struct PlantBatchConfig {
  double period_s = 0.001;  ///< major (sample) period
  double duration_s = 1.0;  ///< stop time
  int minor_steps = 4;      ///< RK4 substeps per major step
};

/// Batched WaterTankBlock: N tanks advanced in lockstep.  The caller holds
/// the valve command per lane over each major step (the engine's ZOH
/// behaviour for a discrete source feeding a continuous block), reading
/// time() to evaluate its command schedule.
class WaterTankBatch {
 public:
  WaterTankBatch(PlantBatchConfig config,
                 std::span<const plant::WaterTankBlock::Params> lanes);

  std::size_t width() const { return width_; }
  /// Time of the next major step, on the engine's integer-ns grid.
  double time() const;
  bool done() const;

  void set_input(std::size_t lane, double valve) { input_.at(lane) = valve; }
  void set_inputs(std::span<const double> valve);

  /// Records each lane's output sample, then integrates one major step.
  /// Returns false once the stop time is reached (nothing recorded).
  bool step();

  /// Recorded level trajectory for one lane (engine scope parity: the
  /// first sample is the raw initial level, later samples the clamped
  /// integrated state).
  model::SampleLog levels(std::size_t lane) const;

 private:
  PlantBatchConfig config_;
  std::size_t width_ = 0;
  std::int64_t base_period_ns_ = 0;
  double base_period_ = 0.0;
  std::uint64_t major_ = 0;

  LaneVector<> area_, inflow_gain_, outlet_area_, max_level_;
  LaneVector<> state_;  ///< raw (unclamped) integrator state, engine states_
  LaneVector<> level_;  ///< clamped mirror, engine's WaterTankBlock::level_
  LaneVector<> input_;
  LaneVector<> y_, k1_, k2_, k3_, k4_, lvl_;

  std::vector<double> times_;
  std::vector<double> hist_;
};

/// Batched ThermalPlantBlock: same shape as WaterTankBatch, no clamping.
class ThermalBatch {
 public:
  ThermalBatch(PlantBatchConfig config,
               std::span<const plant::ThermalPlantBlock::Params> lanes);

  std::size_t width() const { return width_; }
  double time() const;
  bool done() const;

  void set_input(std::size_t lane, double heater) { input_.at(lane) = heater; }
  void set_inputs(std::span<const double> heater);
  bool step();

  model::SampleLog temperatures(std::size_t lane) const;

 private:
  PlantBatchConfig config_;
  std::size_t width_ = 0;
  std::int64_t base_period_ns_ = 0;
  double base_period_ = 0.0;
  std::uint64_t major_ = 0;

  LaneVector<> capacity_, resistance_, power_, ambient_;
  LaneVector<> state_;
  LaneVector<> input_;
  LaneVector<> y_, k1_, k2_, k3_, k4_;

  std::vector<double> times_;
  std::vector<double> hist_;
};

// ---------------------------------------------------------------- latches
// Lane kernels for the PE-block hardware latches, one call per batch
// instead of one virtual dispatch per run.  Each replicates the scalar
// expression exactly (core/pe_blocks.cpp).

/// PwmPeBlock::quantize_duty over lanes.  modulo <= 0 is the unvalidated
/// pass-through (clamp only).
void pwm_latch_lanes(std::span<const double> ratio, std::int64_t modulo,
                     std::span<double> duty);

/// QuadDecPeBlock::angle_to_counts over lanes, widened back to double (the
/// value the decoder block outputs into the diagram).  Non-finite angles
/// latch 0 instead of invoking the scalar path's undefined int64 cast; the
/// batch engines retire such lanes as faulted.
void qdec_latch_lanes(std::span<const double> angle_rad, double cpr,
                      std::span<double> counts);

/// AdcPeBlock::quantize_volts over lanes (left-justified 16-bit codes).
void adc_latch_lanes(std::span<const double> volts, int bits, double vref,
                     std::span<std::uint16_t> codes);

}  // namespace iecd::batch
