# Empty dependencies file for iecd_model.
# This may be replaced when dependencies are built.
