
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocks/continuous.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/continuous.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/continuous.cpp.o.d"
  "/root/repo/src/blocks/custom.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/custom.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/custom.cpp.o.d"
  "/root/repo/src/blocks/discontinuities.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/discontinuities.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/discontinuities.cpp.o.d"
  "/root/repo/src/blocks/discrete.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/discrete.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/discrete.cpp.o.d"
  "/root/repo/src/blocks/lookup.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/lookup.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/lookup.cpp.o.d"
  "/root/repo/src/blocks/math_blocks.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/math_blocks.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/math_blocks.cpp.o.d"
  "/root/repo/src/blocks/routing.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/routing.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/routing.cpp.o.d"
  "/root/repo/src/blocks/sinks.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/sinks.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/sinks.cpp.o.d"
  "/root/repo/src/blocks/sources.cpp" "src/blocks/CMakeFiles/iecd_blocks.dir/sources.cpp.o" "gcc" "src/blocks/CMakeFiles/iecd_blocks.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/iecd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/iecd_fixpt.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
