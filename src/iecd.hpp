/// \file iecd.hpp
/// Umbrella header: the full public API of the integrated environment.
/// Downstream users can include this one header; the library is organized
/// so that including only the subsystems you use keeps compile times down.
#pragma once

// Simulation substrates.
#include "sim/event_queue.hpp"      // deterministic discrete-event core
#include "sim/serial_link.hpp"      // byte-timed RS232 / SPI links
#include "sim/world.hpp"            // co-simulation world
#include "sim/zoh_signal.hpp"       // zero-order-hold signals

// Target hardware simulation.
#include "mcu/derivative.hpp"       // CPU derivative registry
#include "mcu/mcu.hpp"              // MCU: clock, IRQs, cycle-charged CPU
#include "periph/adc.hpp"
#include "periph/capture.hpp"
#include "periph/gpio.hpp"
#include "periph/pwm.hpp"
#include "periph/quadrature_decoder.hpp"
#include "periph/timer.hpp"
#include "periph/uart.hpp"
#include "periph/watchdog.hpp"

// Component layer (Processor Expert analog).
#include "beans/autosar.hpp"        // AUTOSAR driver variant
#include "beans/bean_project.hpp"   // project + expert system
#include "beans/adc_bean.hpp"
#include "beans/bit_io_bean.hpp"
#include "beans/capture_bean.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/quad_dec_bean.hpp"
#include "beans/serial_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "beans/watchdog_bean.hpp"

// Modelling environment (Simulink analog).
#include "blocks/continuous.hpp"
#include "blocks/custom.hpp"
#include "blocks/discontinuities.hpp"
#include "blocks/discrete.hpp"
#include "blocks/lookup.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/routing.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "fixpt/autoscale.hpp"
#include "fixpt/fixed.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "model/statechart.hpp"
#include "model/subsystem.hpp"

// Code generation + real-time execution (RTW / PEERT analog).
#include "codegen/generator.hpp"
#include "rt/runtime.hpp"
#include "rt/schedulability.hpp"

// Plants and co-simulation sessions.
#include "pil/pil_session.hpp"
#include "plant/dc_motor.hpp"
#include "plant/encoder.hpp"
#include "plant/simple_plants.hpp"

// The integration itself.
#include "core/case_study.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "core/peert.hpp"
