/// \file schema.hpp
/// Versioned record schemas.  Every artifact embeds the definitions of
/// the schemas it uses, making the file self-describing; the reader then
/// checks the embedded definitions against its own built-in registry.
///
/// Evolution rules (enforced by SchemaRegistry::compatible and locked by
/// tests):
///   * schema ids are append-only — a new record kind takes a fresh id;
///   * a schema may only grow: new fields append to the end and bump the
///     version; existing fields never change name, type or order;
///   * a reader accepts an artifact schema whose version is <= its
///     built-in version and whose fields are a prefix of the built-in
///     field list (an old writer), and rejects mismatched prefixes;
///   * records with ids the reader does not know at all are skipped —
///     the length prefix makes every cell skippable — and counted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "evidence/format.hpp"

namespace iecd::evidence {

enum class FieldType : std::uint8_t {
  kU8 = 1,
  kU16 = 2,
  kU32 = 3,
  kU64 = 4,
  kI64 = 5,
  kF64 = 6,    ///< double as IEEE-754 bit pattern
  kString = 7, ///< u32 length + UTF-8 bytes
  kBytes = 8,  ///< u32 length + raw bytes (packed arrays)
};

/// Fixed encoded size of \p t, or 0 for variable-length fields.
std::size_t field_fixed_size(FieldType t);

struct SchemaField {
  FieldType type;
  std::string name;

  bool operator==(const SchemaField& other) const {
    return type == other.type && name == other.name;
  }
};

struct Schema {
  std::uint16_t id = 0;
  std::uint16_t version = 1;
  std::string name;
  std::vector<SchemaField> fields;

  /// Minimum payload bytes a record of this schema can occupy (variable
  /// fields count their 4-byte length prefix).
  std::size_t min_payload_size() const;
};

class SchemaRegistry {
 public:
  /// Registers (or replaces) a schema under its id.
  void add(Schema schema);

  const Schema* find(std::uint16_t id) const;
  const std::map<std::uint16_t, Schema>& schemas() const { return schemas_; }
  std::size_t size() const { return schemas_.size(); }

  /// True when \p artifact (read from a file) can be decoded by \p reader
  /// (the built-in registry): same id and name, artifact version <= reader
  /// version, artifact fields a prefix of reader fields.  \p why receives
  /// a diagnostic on failure.
  static bool compatible(const Schema& artifact, const Schema& reader,
                         std::string* why = nullptr);

  /// The registry every writer/reader in this tree uses: the built-in
  /// record schemas of format.hpp at their current versions.
  static const SchemaRegistry& builtin();

  // ------------------------------------------------------- serialization
  /// Appends one schema-definition cell: u32 len + payload
  /// {u16 id, u16 version, str name, u16 field_count,
  ///  fields: u8 type + str name}.
  static void encode(const Schema& schema, std::vector<std::uint8_t>& out);
  /// Parses one schema payload (the bytes after the u32 length prefix).
  /// Returns false on malformed input.
  static bool decode(const std::uint8_t* payload, std::size_t size,
                     Schema& out);

 private:
  std::map<std::uint16_t, Schema> schemas_;
};

}  // namespace iecd::evidence
