#include <gtest/gtest.h>

#include "beans/serial_bean.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "codegen/generator.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "mcu/derivative.hpp"
#include "pil/host_endpoint.hpp"
#include "pil/pil_session.hpp"
#include "pil/target_agent.hpp"
#include "rt/runtime.hpp"
#include "sim/world.hpp"

namespace iecd::pil {
namespace {

/// Full PIL rig around a trivial controller: out = 0.5 * in (via QuadDec
/// and PWM PE blocks so both directions of the buffer are exercised).
struct PilRig {
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
  model::Model top{"top"};
  model::Subsystem* sub;
  beans::BeanProject project{"p"};
  std::unique_ptr<core::ModelSync> sync;
  codegen::SignalBuffer buffer;
  codegen::GeneratedApplication app;
  std::unique_ptr<rt::Runtime> runtime;
  beans::SerialBean* serial = nullptr;

  PilRig() {
    sub = &top.add<model::Subsystem>("ctrl", 1, 1);
    sub->set_sample_time(model::SampleTime::discrete(0.001));
    sync = std::make_unique<core::ModelSync>(sub->inner(), project);
    auto& in = sub->inner().add<model::Inport>("in");
    auto& out = sub->inner().add<model::Outport>("out");
    sync->add_timer_int("TI1");
    auto& qd = sync->add_quad_dec("QD1");
    auto& pwm = sync->add_pwm("PWM1");
    serial = &project.add<beans::SerialBean>("AS1");
    auto& gain = sub->inner().add<blocks::GainBlock>("g", 0.5 / 32768.0);
    sub->inner().connect(in, 0, qd, 0);
    sub->inner().connect(qd, 0, gain, 0);
    sub->inner().connect(gain, 0, pwm, 0);
    sub->inner().connect(pwm, 0, out, 0);
    sub->bind_ports({&in}, {&out});
    project.validate();
    codegen::GeneratorOptions opts;
    opts.pil = true;
    opts.pil_buffer = &buffer;
    codegen::Generator gen;
    app = gen.generate(*sub, project, opts);
    project.validate();
    project.bind(mcu);
    runtime = std::make_unique<rt::Runtime>(mcu, project, app);
  }
};

TEST(PilSessionTest, ExchangesFramesAndRunsController) {
  PilRig rig;
  PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                     {0.001, 0.25, 115200});
  double last_actuator = -1.0;
  int samples = 0;
  session.set_plant(
      [&]() -> std::vector<double> {
        ++samples;
        // The plant "angle" maps to counts via the QuadDec block; feed a
        // quarter revolution (100 counts at 400 cpr).
        return {3.14159265 / 2.0};
      },
      [&](const std::vector<double>& a) {
        ASSERT_EQ(a.size(), 1u);
        last_actuator = a[0];
      },
      [](double) {});
  const PilReport report = session.run();
  EXPECT_GT(report.exchanges, 200u);
  EXPECT_EQ(report.crc_errors, 0u);
  // At 115200 baud a full exchange takes longer than the 1 ms period, but
  // the full-duplex line pipelines: after the first period the loop runs
  // with exactly one period of transport lag, so at most the initial
  // exchange misses and at most one frame is still in flight at the end.
  EXPECT_LE(report.deadline_misses, 1u);
  EXPECT_GE(report.frames_processed + 1, report.exchanges);
  EXPECT_GT(samples, 200);
  // Controller: counts(=100) * 0.5/32768 then PWM duty quantization.
  EXPECT_NEAR(last_actuator, 100.0 * 0.5 / 32768.0, 1e-3);
  EXPECT_GT(report.round_trip_us.mean(), 100.0);
  EXPECT_GT(report.comm_time_per_step_us, 0.0);
  EXPECT_GT(report.controller_exec_us_mean, 0.0);
}

TEST(PilSessionTest, RoundTripScalesWithBaud) {
  double rtt_fast = 0.0;
  double rtt_slow = 0.0;
  for (const std::uint32_t baud : {460800u, 57600u}) {
    PilRig rig;
    PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                       {0.005, 0.25, baud});
    session.set_plant([] { return std::vector<double>{1.0}; },
                      [](const std::vector<double>&) {}, [](double) {});
    const auto report = session.run();
    if (baud == 460800u) {
      rtt_fast = report.round_trip_us.mean();
    } else {
      rtt_slow = report.round_trip_us.mean();
    }
  }
  // 8x slower line -> roughly 8x the wire time (controller exec is tiny).
  EXPECT_GT(rtt_slow / rtt_fast, 5.0);
}

TEST(PilSessionTest, CorruptionCausesBoundedFrameLossAndRecovery) {
  PilRig rig;
  PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                     {0.001, 0.2, 115200});
  session.set_plant([] { return std::vector<double>{1.0}; },
                    [](const std::vector<double>&) {}, [](double) {});
  // Corrupt one wire byte early in the run (host -> target direction).
  // Depending on which byte it hits, the frame dies via CRC check or via
  // lost sync; either way the damage is bounded and the stream recovers.
  rig.world.queue().schedule_at(sim::milliseconds(5), [&] {
    session.link().a_to_b().corrupt_next_byte(0x40);
  });
  const auto report = session.run();
  EXPECT_LT(report.frames_processed, report.exchanges);
  EXPECT_GE(report.frames_processed + 5, report.exchanges);  // bounded loss
  EXPECT_GT(report.frames_processed, 150u);                  // recovered
}

TEST(PilSessionTest, PayloadCorruptionIsCaughtByCrc) {
  // Arm the corruption mid-frame (the exchange starts exactly on the
  // period boundary; 300 us in, a payload byte is on the wire).
  PilRig rig;
  PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                     {0.001, 0.2, 115200});
  session.set_plant([] { return std::vector<double>{1.0}; },
                    [](const std::vector<double>&) {}, [](double) {});
  rig.world.queue().schedule_at(sim::milliseconds(5) + sim::microseconds(300),
                                [&] {
                                  session.link().a_to_b().corrupt_next_byte(
                                      0x01);
                                });
  const auto report = session.run();
  EXPECT_GE(report.crc_errors, 1u);
  EXPECT_GT(report.frames_processed, 150u);
}

TEST(PilSessionTest, SlowLinkMissesDeadlines) {
  PilRig rig;
  PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                     {0.001, 0.2, 9600});
  session.set_plant([] { return std::vector<double>{1.0}; },
                    [](const std::vector<double>&) {}, [](double) {});
  const auto report = session.run();
  EXPECT_GT(report.deadline_misses, 100u);
  EXPECT_GT(report.comm_overhead_ratio, 1.0);
}

TEST(PilSessionTest, AdvanceCallbackSeesMonotonicTime) {
  PilRig rig;
  PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                     {0.001, 0.1, 115200});
  double last_t = -1.0;
  bool monotonic = true;
  session.set_plant(
      [] { return std::vector<double>{0.0}; },
      [](const std::vector<double>&) {},
      [&](double t) {
        if (t < last_t) monotonic = false;
        last_t = t;
      });
  session.run();
  EXPECT_TRUE(monotonic);
  EXPECT_GT(last_t, 0.09);
}

TEST(HostEndpointTest, CountsMissWhenResponseNeverComes) {
  sim::World world;
  sim::SerialConfig cfg;
  cfg.baud_rate = 115200;
  sim::SerialLink link(world, cfg);
  HostEndpoint::Options opts;
  opts.period = sim::milliseconds(1);
  HostEndpoint host(world, link.a_to_b(), link.b_to_a(), opts);
  host.set_plant([] { return std::vector<double>{1.0}; },
                 [](const std::vector<double>&) {}, [](double) {});
  host.start();  // nobody answers on the other end
  world.run_for(sim::milliseconds(50));
  host.stop();
  EXPECT_GT(host.deadline_misses(), 40u);
  EXPECT_EQ(host.round_trip_us().count(), 0u);
}

TEST(TargetAgentTest, IgnoresActuatorTypeFrames) {
  PilRig rig;
  TargetAgent agent(*rig.runtime, *rig.serial, rig.buffer);
  sim::SerialConfig cfg;
  sim::SerialLink link(rig.world, cfg);
  rig.serial->peripheral()->connect(link.b_to_a(), link.a_to_b());
  rig.runtime->start();
  agent.start();
  // Send an actuator-type frame at the target: must not trigger a step.
  Frame frame;
  frame.type = FrameType::kActuatorData;
  frame.payload = encode_signals({1.0});
  const auto bytes = encode_frame(frame);
  link.a_to_b().transmit(bytes.data(), bytes.size());
  rig.world.run_for(sim::milliseconds(20));
  EXPECT_EQ(agent.frames_processed(), 0u);
  EXPECT_EQ(rig.runtime->periodic_activations(), 0u);
}

TEST(PilDeterminism, TwoIdenticalRunsProduceIdenticalReports) {
  auto run_once = [] {
    PilRig rig;
    PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                       {0.001, 0.2, 115200});
    session.set_plant([] { return std::vector<double>{1.23}; },
                      [](const std::vector<double>&) {}, [](double) {});
    return session.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.exchanges, b.exchanges);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_DOUBLE_EQ(a.round_trip_us.mean(), b.round_trip_us.mean());
  EXPECT_DOUBLE_EQ(a.controller_exec_us_mean, b.controller_exec_us_mean);
}

}  // namespace
}  // namespace iecd::pil
