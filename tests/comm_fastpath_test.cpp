// Communication fast path: table-driven CRC, bit-accurate byte timing,
// burst delivery equivalence, decoder resynchronization under fuzz, the
// allocation-free framing guarantee, and the RTT-vs-baud regression that
// motivated the per-sequence round-trip bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/case_study.hpp"
#include "fault/rng.hpp"
#include "pil/frame.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"
#include "util/crc16.hpp"

namespace iecd {
namespace {

// ---------------------------------------------------------------- CRC-16

/// Bit-by-bit CRC-16/CCITT-FALSE reference, independent of the table.
std::uint16_t crc16_bitwise(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

TEST(Crc16, CheckValueIsStandard) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(util::crc16_ccitt(check), 0x29B1);
}

TEST(Crc16, TableMatchesBitwiseReference) {
  std::uint32_t lcg = 12345;
  std::vector<std::uint8_t> data;
  for (int len = 0; len < 64; ++len) {
    EXPECT_EQ(util::crc16_ccitt(data), crc16_bitwise(data)) << "len " << len;
    lcg = lcg * 1664525u + 1013904223u;
    data.push_back(static_cast<std::uint8_t>(lcg >> 24));
  }
}

// ------------------------------------------------------------ byte timing

TEST(SerialTiming, ByteTimeHandComputed8N1) {
  // 115200 baud, 8N1: 10 bits at 8680.55 ns = 86805.5 ns, rounded.
  EXPECT_EQ(sim::SerialConfig::rs232(115200).byte_time(), 86806);
  // 9600 baud, 8N1: 10 bits at 104166.6 ns.
  EXPECT_EQ(sim::SerialConfig::rs232(9600).byte_time(), 1041667);
}

TEST(SerialTiming, ParityAndStopBitsExtendTheFrame) {
  sim::SerialConfig cfg = sim::SerialConfig::rs232(9600);
  cfg.parity = true;
  cfg.stop_bits = 2;
  // start + 8 data + parity + 2 stop = 12 bits at 104166.6 ns each.
  EXPECT_EQ(cfg.bits_per_byte(), 12);
  EXPECT_EQ(cfg.byte_time(), 1250000);
}

TEST(SerialTiming, SynchronousByteIsDataBitsOnly) {
  // SPI at 1 MHz: 8 clocks of 1 us, no framing bits.
  const sim::SerialConfig cfg = sim::SerialConfig::spi(1000000);
  EXPECT_EQ(cfg.bits_per_byte(), 8);
  EXPECT_EQ(cfg.byte_time(), 8000);
}

// ------------------------------------------------- burst delivery parity

struct Arrival {
  std::uint8_t byte;
  sim::SimTime when;
  bool operator==(const Arrival&) const = default;
};

/// Drives the same traffic pattern into a channel and returns the per-byte
/// arrival log, either from the per-byte receiver or reconstructed from
/// burst callbacks via first_done + k * byte_time.
std::vector<Arrival> drive(bool burst_mode) {
  sim::World world;
  sim::SerialChannel ch(world.queue(), sim::SerialConfig::rs232(115200),
                        "ch");
  std::vector<Arrival> log;
  if (burst_mode) {
    ch.set_burst_receiver([&](std::span<const std::uint8_t> data,
                              sim::SimTime first_done, sim::SimTime bt) {
      for (std::size_t k = 0; k < data.size(); ++k) {
        log.push_back({data[k], first_done + bt * static_cast<sim::SimTime>(k)});
      }
    });
  } else {
    ch.set_receiver([&](std::uint8_t byte, sim::SimTime when) {
      log.push_back({byte, when});
    });
  }
  const std::uint8_t first[] = {0x10, 0x11, 0x12, 0x13};
  ch.transmit(first, sizeof(first));
  // Extend the burst while it is still on the wire...
  world.queue().schedule_in(ch.config().byte_time() * 5 / 2, [&ch] {
    const std::uint8_t more[] = {0x20, 0x21, 0x22};
    ch.transmit(more, sizeof(more));
  });
  // ...and start a fresh burst after the line went idle.
  world.queue().schedule_in(sim::milliseconds(5), [&ch] {
    ch.transmit(0x30);
    ch.transmit(0x31);
  });
  world.run_for(sim::milliseconds(20));
  return log;
}

TEST(SerialBurst, TimestampsIdenticalToPerByteDelivery) {
  const auto per_byte = drive(false);
  const auto burst = drive(true);
  ASSERT_EQ(per_byte.size(), 9u);
  EXPECT_EQ(per_byte, burst);
}

TEST(SerialBurst, CorruptionHitsTheNextByte) {
  sim::World world;
  sim::SerialChannel ch(world.queue(), sim::SerialConfig::rs232(115200),
                        "ch");
  std::vector<std::uint8_t> seen;
  ch.set_burst_receiver([&](std::span<const std::uint8_t> data, sim::SimTime,
                            sim::SimTime) {
    seen.insert(seen.end(), data.begin(), data.end());
  });
  ch.corrupt_next_byte(0xFF);
  const std::uint8_t data[] = {0x0F, 0x0F};
  ch.transmit(data, sizeof(data));
  world.run_for(sim::milliseconds(1));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0xF0);  // first byte flipped
  EXPECT_EQ(seen[1], 0x0F);  // second untouched
}

// ----------------------------------------------------- decoder resync fuzz

TEST(FrameDecoderFuzz, EveryEmbeddedFrameIsRecovered) {
  std::uint32_t lcg = 0xC0FFEE;
  const auto rnd = [&lcg](std::uint32_t mod) {
    lcg = lcg * 1664525u + 1013904223u;
    return (lcg >> 16) % mod;
  };

  std::vector<std::uint8_t> stream;
  std::vector<pil::Frame> sent;
  std::uint8_t seq = 0;
  for (int i = 0; i < 400; ++i) {
    if (rnd(4) == 0) {
      pil::Frame f;
      f.type = pil::FrameType::kActuatorData;
      f.seq = seq++;
      const std::uint32_t len = rnd(9);
      for (std::uint32_t b = 0; b < len; ++b) {
        f.payload.push_back(static_cast<std::uint8_t>(rnd(256)));
      }
      const auto bytes = pil::encode_frame(f);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
      sent.push_back(std::move(f));
    } else {
      // Garbage — including stray sync bytes that open false frames which
      // can swallow the start of a real one.
      const std::uint32_t n = 1 + rnd(10);
      for (std::uint32_t b = 0; b < n; ++b) {
        stream.push_back(rnd(6) == 0 ? pil::kSyncByte
                                     : static_cast<std::uint8_t>(rnd(256)));
      }
    }
  }

  // Flush: a trailing garbage sync byte can open a false frame whose length
  // field swallows the tail of the stream; the decoder only resolves it (and
  // rescans the real frames inside) once enough further bytes arrive.  On a
  // live line traffic keeps flowing — model that with non-sync padding.
  stream.insert(stream.end(), 2000, 0x00);

  pil::FrameDecoder decoder;
  std::vector<pil::Frame> got;
  decoder.set_callback([&](const pil::Frame& f) { got.push_back(f); });
  decoder.feed(std::span<const std::uint8_t>(stream));

  // Every frame placed in the stream must come out, in order (garbage may
  // additionally decode as frames only if its CRC matches by chance, so
  // check for a subsequence rather than equality).
  std::size_t cursor = 0;
  for (const auto& f : sent) {
    bool found = false;
    for (; cursor < got.size(); ++cursor) {
      if (got[cursor].type == f.type && got[cursor].seq == f.seq &&
          got[cursor].payload == f.payload) {
        ++cursor;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "frame with seq " << int(f.seq) << " lost";
  }
}

TEST(FrameDecoderResync, LengthCorruptedUpwardSpansIntoNextFrameAndResyncs) {
  // Frame A's length byte is corrupted upward, so the decoder's false
  // payload swallows frames B and C entirely.  The CRC check at the false
  // frame's end fails, the raw bytes are rescanned from the next sync, and
  // both swallowed frames must come out intact.
  pil::Frame a, b, c;
  a.seq = 1;
  a.payload = {10, 11, 12, 13};
  b.seq = 2;
  b.payload = {20, 21};
  c.seq = 3;
  c.payload = {30, 31, 32};
  auto bytes_a = pil::encode_frame(a);
  const auto bytes_b = pil::encode_frame(b);
  const auto bytes_c = pil::encode_frame(c);
  bytes_a[3] = static_cast<std::uint8_t>(a.payload.size() + 40);  // len byte

  std::vector<std::uint8_t> stream = bytes_a;
  stream.insert(stream.end(), bytes_b.begin(), bytes_b.end());
  stream.insert(stream.end(), bytes_c.begin(), bytes_c.end());
  // Keep the line talking so the oversized false frame resolves.
  stream.insert(stream.end(), 64, 0x00);

  pil::FrameDecoder decoder;
  std::vector<pil::Frame> got;
  decoder.set_callback([&](const pil::Frame& f) { got.push_back(f); });
  decoder.feed(std::span<const std::uint8_t>(stream));

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, b.seq);
  EXPECT_EQ(got[0].payload, b.payload);
  EXPECT_EQ(got[1].seq, c.seq);
  EXPECT_EQ(got[1].payload, c.payload);
  EXPECT_GE(decoder.crc_errors(), 1u);
  EXPECT_EQ(decoder.frames_ok(), 2u);
}

TEST(FrameDecoderResync, LengthCorruptedDownwardResyncsOnNextFrame) {
  // Frame A's length byte shrinks: the CRC is checked too early and fails,
  // and A's tail bytes become garbage the decoder scans through.  B must
  // still decode.
  pil::Frame a, b;
  a.seq = 1;
  a.payload = {10, 11, 12, 13, 14, 15};
  b.seq = 2;
  b.payload = {20, 21, 22};
  auto bytes_a = pil::encode_frame(a);
  const auto bytes_b = pil::encode_frame(b);
  bytes_a[3] = 2;  // claim a 2-byte payload

  std::vector<std::uint8_t> stream = bytes_a;
  stream.insert(stream.end(), bytes_b.begin(), bytes_b.end());

  pil::FrameDecoder decoder;
  std::vector<pil::Frame> got;
  decoder.set_callback([&](const pil::Frame& f) { got.push_back(f); });
  decoder.feed(std::span<const std::uint8_t>(stream));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, b.seq);
  EXPECT_EQ(got[0].payload, b.payload);
  EXPECT_GE(decoder.crc_errors(), 1u);
}

TEST(FrameDecoderFuzz, SeededBurstCorruptionNeverLosesACleanFrame) {
  // feed_burst under seeded corruption and truncation: a damaged frame may
  // lose itself, but the rescan must recover every clean frame behind it —
  // resynchronization within one frame — with no out-of-bounds access
  // (this test runs under the ASan job).
  fault::Xoshiro256ss rng(0xFEEDFACE);
  const auto rnd = [&rng](std::uint64_t mod) { return rng.next() % mod; };

  std::vector<std::uint8_t> stream;
  std::vector<pil::Frame> clean;
  std::uint64_t damaged = 0;
  for (int i = 0; i < 300; ++i) {
    pil::Frame f;
    f.type = rnd(2) ? pil::FrameType::kSensorData
                    : pil::FrameType::kActuatorData;
    f.seq = static_cast<std::uint8_t>(i);
    const std::uint64_t len = rnd(33);
    for (std::uint64_t b = 0; b < len; ++b) {
      f.payload.push_back(static_cast<std::uint8_t>(rnd(256)));
    }
    auto bytes = pil::encode_frame(f);
    const std::uint64_t dice = rnd(10);
    if (dice == 0) {
      // Single-bit corruption anywhere in the frame (sync, header, length,
      // payload or CRC).
      bytes[rnd(bytes.size())] ^= static_cast<std::uint8_t>(1u << rnd(8));
      ++damaged;
    } else if (dice == 1) {
      // Truncation: the tail never reaches the wire (reset mid-send).
      bytes.resize(1 + rnd(bytes.size() - 1));
      ++damaged;
    } else {
      clean.push_back(f);
    }
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  stream.insert(stream.end(), 600, 0x00);  // flush any dangling false frame

  pil::FrameDecoder decoder;
  std::vector<pil::Frame> got;
  decoder.set_callback([&](const pil::Frame& f) { got.push_back(f); });

  // Deliver as bursts of random size, the way the serial channel does.
  const sim::SimTime byte_time = 86806;
  sim::SimTime t = 0;
  std::size_t cursor = 0;
  while (cursor < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rnd(64), stream.size() - cursor);
    decoder.feed_burst(
        std::span<const std::uint8_t>(stream.data() + cursor, n), t,
        byte_time);
    cursor += n;
    t += static_cast<sim::SimTime>(n) * byte_time;
  }

  EXPECT_GT(damaged, 10u);
  EXPECT_GE(decoder.crc_errors(), 1u);
  // Every clean frame survives, in order.
  std::size_t scan = 0;
  for (const auto& f : clean) {
    bool found = false;
    for (; scan < got.size(); ++scan) {
      if (got[scan].type == f.type && got[scan].seq == f.seq &&
          got[scan].payload == f.payload) {
        ++scan;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "clean frame with seq " << int(f.seq) << " lost";
  }
}

TEST(FrameDecoderBurst, LastFrameTimeIsTheClosingByteArrival) {
  pil::FrameDecoder decoder;
  decoder.set_callback([](const pil::Frame&) {});
  pil::Frame f;
  f.payload = {1, 2, 3};
  const auto bytes = pil::encode_frame(f);
  const sim::SimTime first = 1000000;
  const sim::SimTime bt = 86806;
  EXPECT_EQ(decoder.feed_burst(bytes, first, bt), 1u);
  EXPECT_EQ(decoder.last_frame_time(),
            first + bt * static_cast<sim::SimTime>(bytes.size() - 1));
}

// ------------------------------------------------------ allocation counting

}  // namespace
}  // namespace iecd

namespace iecd::testhooks {
// External linkage: only ONE global operator new may exist per binary, so
// every zero-allocation test in the suite (framing here, the obs record
// path in obs_test.cpp) shares this counter.
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace iecd::testhooks

namespace iecd {
namespace {
using testhooks::g_allocations;
}  // namespace
}  // namespace iecd

// Counting allocator for the zero-allocation guarantee below.  Linked into
// the whole test binary; the test only inspects deltas around its own
// single-threaded region.
void* operator new(std::size_t size) {
  ++iecd::testhooks::g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace iecd {
namespace {

TEST(FrameFastPath, SteadyStateEncodeDecodeIsAllocationFree) {
  pil::FrameDecoder decoder;
  std::uint64_t frames = 0;
  decoder.set_callback([&frames](const pil::Frame&) { ++frames; });

  std::vector<double> values = {1.5, -2.25, 100.0};
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> wire;

  // Warm-up: let every buffer reach its steady-state capacity.
  for (int i = 0; i < 4; ++i) {
    payload.clear();
    wire.clear();
    pil::encode_signals_into(values, payload);
    pil::encode_frame_into(pil::FrameType::kSensorData,
                           static_cast<std::uint8_t>(i), payload, wire);
    decoder.feed(std::span<const std::uint8_t>(wire));
  }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    payload.clear();
    wire.clear();
    pil::encode_signals_into(values, payload);
    pil::encode_frame_into(pil::FrameType::kSensorData,
                           static_cast<std::uint8_t>(i), payload, wire);
    decoder.feed(std::span<const std::uint8_t>(wire));
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state encode/decode touched the heap";
  EXPECT_EQ(frames, 1004u);
}

// ------------------------------------------------------- RTT vs baud (E3)

TEST(PilRoundTrip, FasterLineReportsShorterRoundTrip) {
  // Regression for the E3 anomaly: at 115200 baud the true round trip
  // (1.83 ms) exceeds the 1 ms period, and the old single-slot timestamp
  // paired each response with the NEXT send, reporting 0.83 ms — below the
  // 230400 figure.  Per-sequence FIFO pairing must keep RTT monotonic.
  const auto rtt = [](std::uint32_t baud) {
    core::ServoConfig cfg;
    cfg.duration_s = 0.25;
    core::ServoSystem servo(cfg);
    core::ServoSystem::PilRunOptions opts;
    opts.baud = baud;
    return servo.run_pil(opts).report.round_trip_us.mean();
  };
  const double at_115200 = rtt(115200);
  const double at_230400 = rtt(230400);
  EXPECT_GT(at_115200, 1000.0);  // honest: longer than the control period
  EXPECT_LT(at_230400, at_115200);
}

}  // namespace
}  // namespace iecd
