// A tour of the code generator: builds the servo controller, runs the
// PEERT target with its hook pipeline, and dumps the generated sources —
// the model step function assembled from the per-block emitters in
// data-flow order, the main skeleton with the interrupt infrastructure,
// and the PE bean drivers (only the methods the model actually calls are
// emitted, thanks to the auto-configuration hook).
//
// Pass a directory argument to also write the files to disk.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/case_study.hpp"

using namespace iecd;

int main(int argc, char** argv) {
  core::ServoConfig config;
  core::ServoSystem servo(config);

  util::DiagnosticList diags = servo.validate();
  if (diags.has_errors()) {
    std::printf("%s", diags.to_string().c_str());
    return 1;
  }

  auto build = servo.build_target("servo");
  std::printf("=== hook pipeline diagnostics ===\n%s\n",
              build.diagnostics.to_string().c_str());
  if (!build.ok()) return 1;

  std::printf("=== generated application ===\n%s\n",
              build.app.report().c_str());

  // Show the interesting files in full; list the rest.
  for (const auto& file : {"servo.c", "main.c", "QD1.c", "PWM1.c"}) {
    const auto it = build.app.sources.find(file);
    if (it == build.app.sources.end()) continue;
    std::printf("=== %s ===\n%s\n", file, it->second.c_str());
  }
  std::printf("=== all emitted files ===\n");
  for (const auto& [name, text] : build.app.sources) {
    std::printf("  %-16s %5zu lines\n", name.c_str(),
                static_cast<std::size_t>(
                    std::count(text.begin(), text.end(), '\n')));
  }

  // Contrast: the PIL code variant redirects peripheral access to the
  // communication buffer ("a special version of the code is used in the
  // PIL simulation").
  codegen::SignalBuffer buffer;
  core::PeertTarget pil_target;
  auto pil_build = pil_target.build_pil(servo.controller(), servo.project(),
                                        buffer, "servo_pil");
  if (pil_build.ok()) {
    std::printf("\n=== PIL variant: hardware access replaced by comm ===\n");
    const std::string& pil_step = pil_build.app.sources.at("servo_pil.c");
    // Print just the step function tail showing PIL_Read/Write.
    for (const char* needle : {"PIL_ReadInput", "PIL_WriteOutput"}) {
      const auto pos = pil_step.find(needle);
      if (pos != std::string::npos) {
        const auto line_start = pil_step.rfind('\n', pos) + 1;
        const auto line_end = pil_step.find('\n', pos);
        std::printf("  %s\n",
                    pil_step.substr(line_start, line_end - line_start).c_str());
      }
    }
  }

  if (argc > 1) {
    const std::filesystem::path dir(argv[1]);
    std::filesystem::create_directories(dir);
    for (const auto& [name, text] : build.app.sources) {
      std::ofstream(dir / name) << text;
    }
    std::printf("\nwrote %zu files to %s\n", build.app.sources.size(),
                argv[1]);
  }
  return 0;
}
