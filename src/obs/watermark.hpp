/// \file watermark.hpp
/// WatermarkMonitor: allocation-free high/low-watermark tracking for
/// occupancy-style quantities — event-queue depth, UART TX FIFO fill, CAN
/// bus load, PIL backlog.  Header-only and dependency-free on purpose:
/// low-level layers (periph, sim) can hold a raw pointer to one and update
/// it from their hot paths without linking the obs library.
#pragma once

#include <cstdint>

namespace iecd::obs {

class WatermarkMonitor {
 public:
  /// Records one observation.  A handful of scalar compares/adds — safe on
  /// any hot path; no allocation ever.
  void update(double value) {
    current_ = value;
    if (samples_ == 0) {
      peak_ = value;
      low_ = value;
    } else {
      if (value > peak_) peak_ = value;
      if (value < low_) low_ = value;
    }
    sum_ += value;
    ++samples_;
  }

  double current() const { return current_; }
  double peak() const { return samples_ ? peak_ : 0.0; }
  double low() const { return samples_ ? low_ : 0.0; }
  double mean() const {
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
  }
  std::uint64_t samples() const { return samples_; }
  /// Raw running sum (campaign checkpoints serialize it alongside
  /// current/peak/low/samples — the monitor's full state).
  double sum() const { return sum_; }

  /// Rebuilds a monitor from raw state (checkpoint round-trip).
  static WatermarkMonitor from_raw(double current, double peak, double low,
                                   double sum, std::uint64_t samples) {
    WatermarkMonitor m;
    m.current_ = current;
    m.peak_ = peak;
    m.low_ = low;
    m.sum_ = sum;
    m.samples_ = samples;
    return m;
  }

  /// Deterministic fold (sweep merge): peak/low combine, sums add; the
  /// merged `current` keeps this monitor's last observation.
  void merge(const WatermarkMonitor& other) {
    if (other.samples_ == 0) return;
    if (samples_ == 0) {
      peak_ = other.peak_;
      low_ = other.low_;
      current_ = other.current_;
    } else {
      if (other.peak_ > peak_) peak_ = other.peak_;
      if (other.low_ < low_) low_ = other.low_;
    }
    sum_ += other.sum_;
    samples_ += other.samples_;
  }

  void reset() { *this = WatermarkMonitor{}; }

 private:
  double current_ = 0.0;
  double peak_ = 0.0;
  double low_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace iecd::obs
