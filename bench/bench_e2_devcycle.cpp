// E2 (Fig. 6.1) — the PEERT development cycle.  One row per phase of the
// rapid development process (MIL -> code generation -> PIL -> HIL) on the
// servo case study: control quality stays consistent across phases while
// each later phase adds the real-time effects the earlier one abstracts
// away (sampling-to-actuation delay, communication latency).  Wall time
// per phase shows the whole cycle runs in seconds on a laptop.
#include <cstdio>

#include "bench_util.hpp"
#include "core/case_study.hpp"
#include "rt/schedulability.hpp"

using namespace iecd;

namespace {

core::ServoConfig bench_config() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.8;
  return cfg;
}

void print_table() {
  std::printf("E2: development-cycle phases on the servo case study\n\n");
  std::printf("%-10s | %-9s %-10s %-10s %-8s %-9s | %-9s\n", "phase",
              "rise[ms]", "over[%]", "settle[ms]", "ss-err", "IAE",
              "wall[ms]");
  bench::print_rule(84);

  core::ServoSystem servo(bench_config());

  bench::Stopwatch w_mil;
  const auto mil = servo.run_mil();
  std::printf("%-10s | %-9.1f %-10.2f %-10.1f %-8.3f %-9.3f | %-9.1f\n",
              "MIL", mil.metrics.rise_time * 1e3,
              mil.metrics.overshoot_percent, mil.metrics.settling_time * 1e3,
              mil.metrics.steady_state_error, mil.iae, w_mil.elapsed_ms());

  bench::Stopwatch w_gen;
  auto build = servo.build_target("servo");
  std::printf("%-10s | %-51s | %-9.1f\n", "codegen",
              build.ok() ? "ok: sources + tasks + memory estimate"
                         : "FAILED",
              w_gen.elapsed_ms());

  bench::Stopwatch w_pil;
  const auto pil = servo.run_pil({.baud = 460800});
  std::printf("%-10s | %-9.1f %-10.2f %-10.1f %-8.3f %-9.3f | %-9.1f\n",
              "PIL", pil.metrics.rise_time * 1e3,
              pil.metrics.overshoot_percent, pil.metrics.settling_time * 1e3,
              pil.metrics.steady_state_error, pil.iae, w_pil.elapsed_ms());

  bench::Stopwatch w_hil;
  const auto hil = servo.run_hil();
  std::printf("%-10s | %-9.1f %-10.2f %-10.1f %-8.3f %-9.3f | %-9.1f\n",
              "HIL", hil.metrics.rise_time * 1e3,
              hil.metrics.overshoot_percent, hil.metrics.settling_time * 1e3,
              hil.metrics.steady_state_error, hil.iae, w_hil.elapsed_ms());

  std::printf("\nwhat each later phase adds:\n");
  std::printf("  PIL: comm %0.1f us/step (%0.1f%% of the period), "
              "round trip %0.1f us\n",
              pil.report.comm_time_per_step_us,
              pil.report.comm_overhead_ratio * 100.0,
              pil.report.round_trip_us.mean());
  std::printf("  HIL: controller exec %0.2f us, CPU %0.1f%%, stack %u B, "
              "memory %u B data / %u B code\n",
              hil.exec_us_mean, hil.cpu_utilisation * 100.0,
              hil.observed_stack_bytes, hil.memory.data_bytes,
              hil.memory.code_bytes);
  std::printf("  IAE agreement MIL vs PIL: %+0.1f%%, MIL vs HIL: %+0.1f%%\n\n",
              (pil.iae / mil.iae - 1.0) * 100.0,
              (hil.iae / mil.iae - 1.0) * 100.0);

  std::printf("static schedulability analysis vs observation:\n");
  const auto& cpu = mcu::find_derivative(servo.config().derivative);
  const auto analysis = rt::analyze_schedulability(
      build.app, cpu, {{"KeyUp_OnInterrupt", 0.05}});
  std::printf("%s", analysis.to_string().c_str());
  std::printf("  observed worst response+exec in HIL: %.1f us (bound %.1f "
              "us)\n\n",
              hil.exec_us_max + hil.response_us_max,
              analysis.tasks.empty()
                  ? 0.0
                  : analysis.tasks[0].response_bound_s * 1e6);
}

void BM_MilPhase(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config());
    auto result = servo.run_mil();
    benchmark::DoNotOptimize(result.iae);
  }
}
BENCHMARK(BM_MilPhase)->Unit(benchmark::kMillisecond);

void BM_CodegenPhase(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config());
    auto build = servo.build_target("servo");
    benchmark::DoNotOptimize(build.app.memory.code_bytes);
  }
}
BENCHMARK(BM_CodegenPhase)->Unit(benchmark::kMillisecond);

void BM_PilPhase(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config());
    auto result = servo.run_pil({.baud = 460800});
    benchmark::DoNotOptimize(result.iae);
  }
}
BENCHMARK(BM_PilPhase)->Unit(benchmark::kMillisecond);

void BM_HilPhase(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config());
    auto result = servo.run_hil();
    benchmark::DoNotOptimize(result.iae);
  }
}
BENCHMARK(BM_HilPhase)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
