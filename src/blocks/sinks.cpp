#include "blocks/sinks.hpp"

namespace iecd::blocks {

ScopeBlock::ScopeBlock(std::string name, int channels)
    : Block(std::move(name), channels, 0),
      logs_(static_cast<std::size_t>(channels)) {}

void ScopeBlock::initialize(const SimContext&) {
  for (auto& l : logs_) l.clear();
}

void ScopeBlock::output(const SimContext& ctx) {
  if (ctx.minor) return;  // record at major steps only
  for (int i = 0; i < input_count(); ++i) {
    logs_[static_cast<std::size_t>(i)].record(ctx.t, in(i));
  }
}

const SampleLog& ScopeBlock::log(int channel) const {
  return logs_.at(static_cast<std::size_t>(channel));
}

}  // namespace iecd::blocks
