#include "evidence/hash.hpp"

#include <algorithm>
#include <cstring>

namespace iecd::evidence {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

// ----------------------------------------------------- SHA-NI fast path
// Compiled with a per-function target attribute so the rest of the tree
// keeps the baseline ISA; selected at runtime via __builtin_cpu_supports.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IECD_SHA_NI_DISPATCH 1
#endif

#ifdef IECD_SHA_NI_DISPATCH
#include <immintrin.h>

namespace {

__attribute__((target("sha,sse4.1,ssse3"))) void process_blocks_hw(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  // Canonical SHA-NI round structure: state packed as ABEF/CDGH lanes,
  // 16 groups of 4 rounds, message schedule kept in four rotating
  // registers.  Round constants are the same kK table the scalar path
  // uses (4 consecutive u32 loads == the packed constant vector).
  const __m128i shuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);  // CDAB
  s1 = _mm_shuffle_epi32(s1, 0x1B);    // EFGH
  __m128i s0 = _mm_alignr_epi8(tmp, s1, 8);  // ABEF
  s1 = _mm_blend_epi16(s1, tmp, 0xF0);       // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = s0;
    const __m128i cdgh_save = s1;
    __m128i m[4];
    for (int i = 0; i < 4; ++i) {
      m[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * i)),
          shuf);
    }
    for (int j = 0; j < 16; ++j) {
      const __m128i k =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * j]));
      __m128i msg = _mm_add_epi32(m[j & 3], k);
      s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
      if (j < 12) {
        const __m128i t = _mm_alignr_epi8(m[(j + 3) & 3], m[(j + 2) & 3], 4);
        m[j & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(m[j & 3], m[(j + 1) & 3]), t),
            m[(j + 3) & 3]);
      }
    }
    s0 = _mm_add_epi32(s0, abef_save);
    s1 = _mm_add_epi32(s1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(s0, 0x1B);   // FEBA
  s1 = _mm_shuffle_epi32(s1, 0xB1);    // DCHG
  s0 = _mm_blend_epi16(tmp, s1, 0xF0); // DCBA
  s1 = _mm_alignr_epi8(s1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), s0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), s1);
}

bool sha_ni_available() {
  static const bool ok = __builtin_cpu_supports("sha") &&
                         __builtin_cpu_supports("sse4.1") &&
                         __builtin_cpu_supports("ssse3");
  return ok;
}

}  // namespace
#endif  // IECD_SHA_NI_DISPATCH

bool Sha256::hardware_accelerated() {
#ifdef IECD_SHA_NI_DISPATCH
  return sha_ni_available();
#else
  return false;
#endif
}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t blocks) {
#ifdef IECD_SHA_NI_DISPATCH
  if (sha_ni_available()) {
    process_blocks_hw(state_, data, blocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < blocks; ++i) {
    process_block(data + 64 * i);
  }
}

void Sha256::reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(const std::uint8_t* data, std::size_t size) {
  total_bytes_ += size;
  if (buffered_ > 0) {
    const std::size_t take = std::min(size, std::size_t{64} - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    size -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  if (size >= 64) {
    const std::size_t blocks = size / 64;
    process_blocks(data, blocks);
    data += blocks * 64;
    size -= blocks * 64;
  }
  if (size > 0) {
    std::memcpy(buffer_, data, size);
    buffered_ = size;
  }
}

std::array<std::uint8_t, 32> Sha256::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(len_be, 8);

  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::array<std::uint8_t, 32> Sha256::of(const std::uint8_t* data,
                                        std::size_t size) {
  Sha256 h;
  h.update(data, size);
  return h.digest();
}

std::string hex(const std::array<std::uint8_t, 32>& digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : digest) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace iecd::evidence
