file(REMOVE_RECURSE
  "libiecd_plant.a"
)
