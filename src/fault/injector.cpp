#include "fault/injector.hpp"

#include "trace/metrics.hpp"

namespace iecd::fault {

void FaultInjector::export_metrics(trace::MetricsRegistry& metrics) const {
  for (const auto& [name, site] : sites_) {
    metrics.counter("fault." + name + ".injected").value = site.injected();
    metrics.counter("fault." + name + ".opportunities").value =
        site.opportunities();
  }
}

}  // namespace iecd::fault
