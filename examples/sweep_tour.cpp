// Sweep tour: tune the quickstart PI speed loop by brute force — a
// 64-point gain/load sweep (8 proportional gains x 8 load torques) fanned
// out across the host cores with exec::SweepRunner.
//
// Each sweep point builds its own model and engine (no shared state),
// records its closed-loop quality into the per-run MetricsRegistry, and the
// runner folds all 64 registries together in index order — so the merged
// report below is byte-identical no matter how many threads execute it.
#include <cstdio>

#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "exec/sweep.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "plant/dc_motor.hpp"

using namespace iecd;

namespace {

constexpr int kGainPoints = 8;
constexpr int kLoadPoints = 8;

double gain_at(int i) { return 0.001 + 0.001 * i; }           // kp
double load_at(int j) { return 0.002 * j; }                   // N*m

/// One sweep point: MIL run of the PI speed loop with (kp, load torque)
/// taken from the sweep index.  Returns the settling time through metrics.
void sweep_point(std::size_t index, trace::MetricsRegistry& metrics) {
  const int gi = static_cast<int>(index) % kGainPoints;
  const int lj = static_cast<int>(index) / kGainPoints;

  model::Model loop("sweep_point");
  auto& reference = loop.add<blocks::StepBlock>("reference", 0.05, 0.0, 100.0);
  auto& error = loop.add<blocks::SumBlock>("error", "+-");
  blocks::DiscretePidBlock::Gains gains;
  gains.kp = gain_at(gi);
  gains.ki = 0.12;
  auto& pi = loop.add<blocks::DiscretePidBlock>("pi", gains, 0.0, 1.0);
  pi.set_sample_time(model::SampleTime::discrete(0.001));

  plant::DcMotorParams motor_params;
  auto& drive =
      loop.add<blocks::GainBlock>("drive", motor_params.supply_voltage);
  drive.set_sample_time(model::SampleTime::continuous());
  auto& motor = loop.add<plant::DcMotorBlock>("motor", motor_params);
  const double load = load_at(lj);
  motor.set_load([load](double, double) { return load; });
  auto& scope = loop.add<blocks::ScopeBlock>("speed");
  scope.set_sample_time(model::SampleTime::discrete(0.001));

  loop.connect(reference, 0, error, 0);
  loop.connect(motor, 0, error, 1);
  loop.connect(error, 0, pi, 0);
  loop.connect(pi, 0, drive, 0);
  loop.connect(drive, 0, motor, 0);
  loop.connect(motor, 0, scope, 0);

  model::Engine engine(loop, {.stop_time = 0.5});
  engine.run();

  const auto quality = model::analyze_step(scope.log(), 100.0, 0.05);
  metrics.counter("sweep.runs").increment();
  if (quality.settled) {
    metrics.counter("sweep.settled").increment();
    metrics.stats("sweep.settling_ms").add(quality.settling_time * 1e3);
  }
  metrics.stats("sweep.overshoot_pct").add(quality.overshoot_percent);
  metrics.series("sweep.steady_error").add(quality.steady_state_error);
}

}  // namespace

int main() {
  const std::size_t runs = kGainPoints * kLoadPoints;

  exec::SweepRunner runner;  // threads = hardware_concurrency
  const auto result = runner.run(runs, sweep_point);

  std::printf("gain/load sweep: %zu points on %zu thread(s), %.1f ms wall\n\n",
              result.runs, result.threads_used, result.wall_ms);
  std::printf("%s\n", result.merged.report().c_str());

  // Best settling time across the grid, read back from the per-run results.
  double best_ms = 1e300;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < result.per_run.size(); ++i) {
    const auto* st = result.per_run[i].find_stats("sweep.settling_ms");
    if (st && st->count() > 0 && st->mean() < best_ms) {
      best_ms = st->mean();
      best_index = i;
    }
  }
  if (best_ms < 1e300) {
    std::printf("best point: kp=%.3f load=%.3f N*m -> settles in %.1f ms\n",
                gain_at(static_cast<int>(best_index) % kGainPoints),
                load_at(static_cast<int>(best_index) / kGainPoints), best_ms);
  }

  const auto* settled = result.merged.find_counter("sweep.settled");
  return (settled && settled->value > 0) ? 0 : 1;
}
