/// \file can_bus.hpp
/// CAN bus model for distributed control (the paper's objective is "an
/// integrated development environment for embedded controllers having
/// distributed nature").  Event-driven, arbitration-accurate at frame
/// granularity: when the bus idles, the pending frame with the lowest
/// identifier wins (CSMA/CR), occupies the bus for its wire time, and is
/// then delivered to every other node.  Frame time uses the standard-frame
/// bit count with a conservative stuff-bit estimate.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace iecd::sim {

struct CanFrame {
  std::uint32_t id = 0;  ///< 11-bit identifier; lower = higher priority
  std::vector<std::uint8_t> data;  ///< 0..8 bytes

  int dlc() const { return static_cast<int>(data.size()); }
};

class CanBus : public Component {
 public:
  struct Stats {
    std::uint64_t frames_delivered = 0;
    SimTime busy_time = 0;
    double utilisation(SimTime elapsed) const {
      return elapsed > 0 ? static_cast<double>(busy_time) /
                               static_cast<double>(elapsed)
                         : 0.0;
    }
  };

  using NodeId = int;
  /// Receive callback: frame + delivery time.
  using RxCallback = std::function<void(const CanFrame&, SimTime)>;

  CanBus(World& world, std::uint32_t bitrate_bps, std::string name = "can");

  const std::string& name() const override { return name_; }
  void reset() override;

  std::uint32_t bitrate() const { return bitrate_; }

  /// Registers a node; every delivered frame reaches all nodes except its
  /// transmitter.
  NodeId attach_node(std::string node_name, RxCallback on_rx);

  /// Queues a frame for transmission from \p node.  Frames per node go out
  /// in FIFO order; across nodes the identifier arbitrates.  Returns false
  /// if the frame is malformed (dlc > 8).
  bool transmit(NodeId node, CanFrame frame);

  /// Wire time of one standard frame with \p dlc data bytes (includes a
  /// conservative stuff-bit estimate and the interframe space).
  SimTime frame_time(int dlc) const;

  const Stats& stats() const { return stats_; }
  /// Frames still queued on all nodes (diagnostic).
  std::size_t pending() const;

 private:
  void try_start();

  struct Node {
    std::string name;
    RxCallback on_rx;
    std::deque<CanFrame> tx_queue;
  };

  World& world_;
  std::string name_;
  std::uint32_t bitrate_;
  std::vector<Node> nodes_;
  bool busy_ = false;
  Stats stats_;
};

}  // namespace iecd::sim
