#include <gtest/gtest.h>

#include "core/distributed.hpp"

namespace iecd::core {
namespace {

DistributedConfig quick() {
  DistributedConfig cfg;
  cfg.duration_s = 0.6;
  return cfg;
}

TEST(DistributedServo, TracksSetpointOverHealthyBus) {
  const auto r = run_distributed_servo(quick());
  EXPECT_TRUE(r.metrics.settled) << "final " << r.speed.last_value();
  EXPECT_NEAR(r.speed.last_value(), 100.0, 3.0);
  // One sensor and one actuator frame per control period.
  EXPECT_NEAR(static_cast<double>(r.sensor_frames), 599.0, 2.0);
  EXPECT_NEAR(static_cast<double>(r.actuator_frames),
              static_cast<double>(r.sensor_frames), 2.0);
  EXPECT_EQ(r.controller_rx_overruns, 0u);
}

TEST(DistributedServo, LatencyIsTwoFrameHops) {
  const auto r = run_distributed_servo(quick());
  // Two 3-byte frames at 500 kbit/s: ~2 * 170 us of wire time plus ISR
  // executions.
  EXPECT_GT(r.loop_latency_us_mean, 250.0);
  EXPECT_LT(r.loop_latency_us_mean, 500.0);
  EXPECT_GE(r.loop_latency_us_max + 1e-9, r.loop_latency_us_mean);
}

TEST(DistributedServo, FasterBusShortensLatency) {
  auto cfg = quick();
  cfg.can_bitrate = 1000000;
  const auto fast = run_distributed_servo(cfg);
  cfg.can_bitrate = 250000;
  const auto slow = run_distributed_servo(cfg);
  EXPECT_LT(fast.loop_latency_us_mean, slow.loop_latency_us_mean / 2.5);
  EXPECT_LT(fast.bus_utilisation, slow.bus_utilisation);
}

TEST(DistributedServo, SaturatedBusLosesTheLoop) {
  auto cfg = quick();
  cfg.can_bitrate = 100000;  // frames no longer fit the period
  const auto r = run_distributed_servo(cfg);
  EXPECT_FALSE(r.metrics.settled);
  EXPECT_GT(r.iae, 10.0);
  EXPECT_GT(r.bus_utilisation, 0.98);
}

TEST(DistributedServo, BackgroundTrafficRaisesLatency) {
  const auto clean = run_distributed_servo(quick());
  auto cfg = quick();
  cfg.background_frames_per_s = 1500.0;
  const auto loaded = run_distributed_servo(cfg);
  EXPECT_GT(loaded.loop_latency_us_mean,
            clean.loop_latency_us_mean + 100.0);
  EXPECT_GT(loaded.bus_utilisation, clean.bus_utilisation + 0.2);
  EXPECT_GT(loaded.background_frames, 800u);
  // The loop still holds at this load level.
  EXPECT_TRUE(loaded.metrics.settled);
}

TEST(DistributedServo, DeterministicAcrossRuns) {
  const auto a = run_distributed_servo(quick());
  const auto b = run_distributed_servo(quick());
  EXPECT_EQ(a.iae, b.iae);
  EXPECT_EQ(a.loop_latency_us_mean, b.loop_latency_us_mean);
  EXPECT_EQ(a.sensor_frames, b.sensor_frames);
}

}  // namespace
}  // namespace iecd::core
