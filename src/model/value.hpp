/// \file value.hpp
/// Typed signal values.  Simulink's default signal type is double, but the
/// paper's case study targets a 16-bit MCU without an FPU, so signals can
/// also carry integers or fixed-point values; every block output declares
/// its type and values are quantized/saturated on write, reproducing the
/// fixed-point design flow of Section 7.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fixpt/format.hpp"
#include "fixpt/value.hpp"

namespace iecd::model {

enum class DataType {
  kDouble,
  kBool,
  kInt8,
  kUint8,
  kInt16,
  kUint16,
  kInt32,
  kUint32,
  kFixed,  ///< fixed-point with an attached FixedFormat
};

const char* to_string(DataType type);

/// Storage size on the target in bytes (RAM footprint accounting).
std::uint32_t storage_bytes(DataType type);

/// True for the integer family (not bool, not fixed).
bool is_integer(DataType type);

/// Saturation limits for integer types.
std::int64_t int_min_of(DataType type);
std::int64_t int_max_of(DataType type);

/// A scalar signal value.  Small enough to copy freely.
class Value {
 public:
  Value() = default;

  static Value of_double(double v);
  static Value of_bool(bool v);
  static Value of_int(DataType type, std::int64_t v);
  static Value of_fixed(fixpt::FixedValue v);

  /// Converts \p real into \p type (quantizing/saturating).  \p fmt is
  /// required for kFixed.
  static Value quantize(double real, DataType type,
                        const std::optional<fixpt::FixedFormat>& fmt);

  DataType type() const { return type_; }

  /// Hot-path store for the dominant signal type: equivalent to
  /// `*this = quantize(v, kDouble, nullopt)` without the switch or the
  /// temporary (used by the engine's major-step write path).
  void assign_double(double v) {
    type_ = DataType::kDouble;
    d_ = v;
  }

  double as_double() const;
  bool as_bool() const;
  std::int64_t as_int() const;
  const fixpt::FixedValue& as_fixed() const { return fixed_; }

  std::string to_string() const;

 private:
  DataType type_ = DataType::kDouble;
  double d_ = 0.0;
  std::int64_t i_ = 0;
  fixpt::FixedValue fixed_;
};

}  // namespace iecd::model
