#include "exec/sweep.hpp"

#include <algorithm>
#include <utility>

namespace iecd::exec {

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

campaign::StreamOptions SweepRunner::stream_options(std::size_t batch) const {
  campaign::StreamOptions so;
  so.threads = options_.threads;
  so.batch = batch;
  so.window = options_.window;
  so.chunk = options_.chunk;
  so.stealing = options_.stealing;
  so.placement = options_.contiguous ? campaign::Placement::kContiguous
                                     : campaign::Placement::kCyclic;
  so.progress = options_.progress;
  return so;
}

namespace {

/// The one fold everything funnels through: called by the StreamRunner's
/// reorder fold strictly in run-index order (serialized), so the merged
/// registry/health are byte-identical for any thread count, batch width,
/// chunk size and steal schedule.  Retention moves the group buffers into
/// the preallocated per-run slots instead of copying.
campaign::StreamRunner::SinkFn make_sink(SweepRunner::Result& result,
                                         bool with_health, bool retain) {
  return [&result, with_health, retain](campaign::GroupResult& group) {
    for (std::size_t k = 0; k < group.metrics.size(); ++k) {
      const std::size_t index = group.first + k;
      result.merged.merge(group.metrics[k]);
      if (with_health) result.health.merge(group.health[k]);
      if (retain) {
        result.per_run[index] = std::move(group.metrics[k]);
        if (with_health) {
          result.per_run_health[index] = std::move(group.health[k]);
        }
      }
    }
  };
}

}  // namespace

SweepRunner::Result SweepRunner::run(std::size_t runs,
                                     const Scenario& scenario) const {
  Result result;
  result.runs = runs;
  const bool retain = options_.retain_per_run;
  if (retain) result.per_run.resize(runs);
  campaign::StreamRunner stream(stream_options(1));
  result.sched = stream.run(
      runs,
      [&scenario](std::size_t first,
                  std::span<trace::MetricsRegistry> metrics,
                  std::span<obs::HealthReport> /*health*/) {
        for (std::size_t k = 0; k < metrics.size(); ++k) {
          scenario(first + k, metrics[k]);
        }
      },
      make_sink(result, /*with_health=*/false, retain));
  result.threads_used = result.sched.threads_used;
  result.wall_ms = result.sched.wall_ms;
  return result;
}

SweepRunner::Result SweepRunner::run(std::size_t runs,
                                     const HealthScenario& scenario) const {
  Result result;
  result.runs = runs;
  const bool retain = options_.retain_per_run;
  if (retain) {
    result.per_run.resize(runs);
    result.per_run_health.resize(runs);
  }
  // Result::health counts folded sweep points, not the default single run.
  result.health.runs = 0;
  campaign::StreamRunner stream(stream_options(1));
  result.sched = stream.run(
      runs,
      [&scenario](std::size_t first,
                  std::span<trace::MetricsRegistry> metrics,
                  std::span<obs::HealthReport> health) {
        for (std::size_t k = 0; k < metrics.size(); ++k) {
          scenario(first + k, metrics[k], health[k]);
        }
      },
      make_sink(result, /*with_health=*/true, retain));
  result.threads_used = result.sched.threads_used;
  result.wall_ms = result.sched.wall_ms;
  return result;
}

SweepRunner::Result SweepRunner::run(std::size_t runs,
                                     const BatchScenario& scenario) const {
  Result result;
  result.runs = runs;
  const bool retain = options_.retain_per_run;
  if (retain) result.per_run.resize(runs);
  campaign::StreamRunner stream(
      stream_options(std::max<std::size_t>(1, options_.batch)));
  result.sched = stream.run(
      runs,
      [&scenario](std::size_t first,
                  std::span<trace::MetricsRegistry> metrics,
                  std::span<obs::HealthReport> /*health*/) {
        scenario(first, metrics);
      },
      make_sink(result, /*with_health=*/false, retain));
  result.threads_used = result.sched.threads_used;
  result.wall_ms = result.sched.wall_ms;
  return result;
}

SweepRunner::Result SweepRunner::run(
    std::size_t runs, const BatchHealthScenario& scenario) const {
  Result result;
  result.runs = runs;
  const bool retain = options_.retain_per_run;
  if (retain) {
    result.per_run.resize(runs);
    result.per_run_health.resize(runs);
  }
  result.health.runs = 0;
  campaign::StreamRunner stream(
      stream_options(std::max<std::size_t>(1, options_.batch)));
  result.sched = stream.run(
      runs,
      [&scenario](std::size_t first,
                  std::span<trace::MetricsRegistry> metrics,
                  std::span<obs::HealthReport> health) {
        scenario(first, metrics, health);
      },
      make_sink(result, /*with_health=*/true, retain));
  result.threads_used = result.sched.threads_used;
  result.wall_ms = result.sched.wall_ms;
  return result;
}

}  // namespace iecd::exec
