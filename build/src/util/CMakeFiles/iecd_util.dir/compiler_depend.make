# Empty compiler generated dependencies file for iecd_util.
# This may be replaced when dependencies are built.
