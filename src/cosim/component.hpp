/// \file component.hpp
/// Co-simulation components.  A cosim::Component is one independently
/// stepped piece of a composed topology — a full MCU board with its local
/// plant, a lightweight model node, a traffic generator — advanced by the
/// master's step-negotiation loop (master.hpp).  The contract mirrors an
/// FMI co-simulation slave:
///
///   * horizon() advertises the absolute time of the component's next
///     internal event (sim::kNever when idle).  Outputs change only at
///     events, so the master may safely advance every component to the
///     minimum advertised horizon without missing an interaction.
///   * advance_to(t) steps local time to exactly t.  The master only ever
///     passes t == the negotiated global minimum, so everything a
///     component does during advance_to — including transmitting onto a
///     shared bus — happens at a time every other component has already
///     reached.  t is monotonic across calls; a component is never stepped
///     backwards.
///
/// WorldComponent is the standard full-fidelity implementation: the
/// component owns a private sim::World (its own event queue), and the
/// horizon is simply the queue's next event time.  Lightweight components
/// (model nodes per MultiCoSim's multi-fidelity swapping) implement the
/// interface directly with whatever internal clock they keep.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "sim/world.hpp"

namespace iecd::cosim {

class Component {
 public:
  virtual ~Component() = default;

  virtual const std::string& name() const = 0;

  /// Absolute time of the next internal event, or sim::kNever when the
  /// component has nothing scheduled.  Must never move backwards past the
  /// last advance_to() target.
  virtual sim::SimTime horizon() const = 0;

  /// Advances local time to exactly \p t (>= the previous target).  All
  /// interaction with shared couplings during the call happens at time t.
  virtual void advance_to(sim::SimTime t) = 0;

  /// Events executed so far (0 for components without an event queue);
  /// the master folds these into its stats.
  virtual std::uint64_t events_executed() const { return 0; }
};

/// A component wrapping a private sim::World: MCU boards, plants and
/// probes live in `world()` exactly as they would in a monolithic rig;
/// the event queue's next_time() is the advertised horizon.
class WorldComponent : public Component {
 public:
  explicit WorldComponent(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  sim::World& world() { return world_; }
  const sim::World& world() const { return world_; }

  sim::SimTime horizon() const override { return world_.queue().next_time(); }
  void advance_to(sim::SimTime t) override { world_.run_until(t); }
  std::uint64_t events_executed() const override {
    return world_.queue().events_executed();
  }

 private:
  std::string name_;
  sim::World world_;
};

}  // namespace iecd::cosim
