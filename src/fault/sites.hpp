/// \file sites.hpp
/// Wiring helpers binding a FaultInjector's sites onto the simulator's
/// existing seams: serial byte faults, CAN frame faults, PIL frame
/// truncation/delay, interrupt-latency spikes, task overruns, ADC
/// stuck-at/noise, encoder glitches and load-torque disturbance pulses.
///
/// Every helper is rate-gated: when the plan's rates for its seam are all
/// zero it installs NO hook and creates NO site, so a zero-rate campaign
/// run stays bit-identical to a run with no fault subsystem attached.
/// Site names are stable ("serial.<channel>", "can.<bus>", "pil.host_tx",
/// "pil.target_tx", "mcu.irq", "rt.task", "adc.<adc>", "encoder.<enc>",
/// "plant.torque"): replaying one (campaign seed, site) pair reproduces
/// that site's fault sequence in isolation, independent of every other
/// site and of campaign thread count.
#pragma once

#include "fault/injector.hpp"
#include "mcu/cpu.hpp"
#include "periph/adc.hpp"
#include "pil/pil_session.hpp"
#include "plant/dc_motor.hpp"
#include "plant/encoder.hpp"
#include "rt/runtime.hpp"
#include "sim/can_bus.hpp"
#include "sim/serial_link.hpp"

namespace iecd::fault {

/// Per-byte corrupt/drop/duplicate on one serial channel; site
/// "serial.<channel name>".
void wire_serial_channel(FaultInjector& injector, sim::SerialChannel& channel);

/// Per-frame corrupt/drop/duplicate on the CAN bus; site "can.<bus name>".
void wire_can_bus(FaultInjector& injector, sim::CanBus& bus);

/// Interrupt-latency spikes on every ISR dispatch; site "mcu.irq".
void wire_cpu(FaultInjector& injector, mcu::Cpu& cpu);

/// Task-overrun cycles on every periodic-step activation (timer-driven and
/// PIL paths alike); site "rt.task".
void wire_runtime(FaultInjector& injector, rt::Runtime& runtime);

/// Stuck-at / noise on every completed conversion; site "adc.<adc name>".
void wire_adc(FaultInjector& injector, periph::AdcPeripheral& adc);

/// Spurious count slips on the quadrature stream; site
/// "encoder.<encoder name>".
void wire_encoder(FaultInjector& injector, plant::IncrementalEncoder& encoder);

/// Pre-generated disturbance-pulse schedule over [0, duration_s] as a
/// LoadTorque for DcMotorSim/DcMotorBlock::set_load; site "plant.torque".
/// Returns null (leave the plant's load untouched) when the plan schedules
/// no pulses.
plant::LoadTorque make_load_torque(FaultInjector& injector, double duration_s);

/// Full PIL wiring: byte faults on both link directions plus frame
/// truncation/delay on the host sends ("pil.host_tx") and truncation on
/// the board's responses ("pil.target_tx").
void wire_pil(FaultInjector& injector, pil::PilSession& session);

}  // namespace iecd::fault
