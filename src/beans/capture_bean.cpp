#include "beans/capture_bean.hpp"

#include "util/strings.hpp"

namespace iecd::beans {

CaptureBean::CaptureBean(std::string name) : Bean(std::move(name), "Capture") {
  properties().declare(PropertySpec::enumeration(
      "edge", "rising", {"rising", "falling", "both"}, "captured edge"));
  properties().declare(PropertySpec::boolean(
      "interrupt", true, "raise OnCapture per qualifying edge"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 4, 0, 15, "OnCapture priority"));
}

std::vector<MethodSpec> CaptureBean::methods() const {
  return {
      {"GetPeriodUS", "byte %M_GetPeriodUS(dword *Period)",
       "interval between the last two captures"},
      {"GetFreqHz", "byte %M_GetFreqHz(dword *Freq)",
       "frequency from the last interval"},
  };
}

std::vector<EventSpec> CaptureBean::events() const {
  return {{"OnCapture", "qualifying input edge captured"}};
}

ResourceDemand CaptureBean::demand() const {
  ResourceDemand d;
  d.timer_channels = 1;
  return d;
}

void CaptureBean::validate(const mcu::DerivativeSpec& cpu,
                           util::DiagnosticList& diagnostics) {
  if (cpu.timer_channels <= 0) {
    diagnostics.error(name(),
                      "no timer channel for input capture on " + cpu.name);
  }
}

void CaptureBean::bind(BindContext& ctx) {
  periph::CaptureConfig cfg;
  const std::string& edge = properties().get_string("edge");
  cfg.edge = edge == "falling"  ? periph::CaptureEdge::kFalling
             : edge == "both"   ? periph::CaptureEdge::kBoth
                                : periph::CaptureEdge::kRising;
  if (properties().get_bool("interrupt")) {
    cfg.capture_vector = register_event(
        ctx, "OnCapture",
        static_cast<int>(properties().get_int("interrupt_priority")));
  }
  icu_ = std::make_unique<periph::CapturePeripheral>(ctx.mcu, cfg, name());
  mark_bound();
}

std::uint32_t CaptureBean::GetPeriodUS() const {
  if (!icu_) return 0;
  return static_cast<std::uint32_t>(icu_->last_interval() / 1000);
}

double CaptureBean::GetFreqHz() const {
  return icu_ ? icu_->measured_frequency_hz() : 0.0;
}

DriverSource CaptureBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  if (method_enabled("GetPeriodUS")) {
    c += "byte " + name() +
         "_GetPeriodUS(dword *Period) {\n"
         "  *Period = (ICU_CAPT - ICU_CAPT_PREV) / TICKS_PER_US;\n"
         "  return ERR_OK;\n}\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
