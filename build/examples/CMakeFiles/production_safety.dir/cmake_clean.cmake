file(REMOVE_RECURSE
  "CMakeFiles/production_safety.dir/production_safety.cpp.o"
  "CMakeFiles/production_safety.dir/production_safety.cpp.o.d"
  "production_safety"
  "production_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
