# Empty dependencies file for iecd_tests.
# This may be replaced when dependencies are built.
