/// \file bus.hpp
/// Shared-bus coupling for the co-simulation master.  A SharedCanBus owns
/// a private bus world containing one sim::CanBus — arbitration, wire
/// time, CRC integrity and the fault hook are exactly the monolithic bus
/// model — and mediates delivery across component boundaries:
///
///   * Transmit side: attached controllers call sim::CanBus::transmit
///     directly (CanController::connect_external).  The master advances
///     every bus coupling to the negotiated boundary BEFORE the node
///     components, so a transmit during a node's advance_to(t) lands on a
///     bus whose local clock already reads t.
///   * Receive side: the bus's delivery events fire inside the bus world;
///     each port's wrapper callback only buffers (frame, time).  After all
///     components have reached the boundary the master calls exchange(),
///     which re-schedules each buffered delivery into the destination
///     component's own world at the exact delivery time (deliveries always
///     fire at the negotiated boundary — a delivery event is itself a bus
///     horizon, so the master can never overshoot one).  Model-fidelity
///     ports without a world get the callback synchronously at exchange.
///
/// Delivery buffering keeps cross-world causality exact: the destination
/// node's interrupt is raised at precisely the time the monolithic bus
/// would have raised it, just from its own queue.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cosim/component.hpp"
#include "periph/can_controller.hpp"
#include "sim/can_bus.hpp"
#include "sim/world.hpp"

namespace iecd::cosim {

class SharedCanBus : public Component {
 public:
  /// Port delivery callback: accepted frame + its bus delivery time.
  using DeliverFn = std::function<void(const sim::CanFrame&, sim::SimTime)>;

  SharedCanBus(std::string name, std::uint32_t bitrate_bps);

  const std::string& name() const override { return name_; }

  sim::CanBus& can() { return can_; }
  const sim::CanBus& can() const { return can_; }
  sim::World& bus_world() { return world_; }

  /// Attaches a full-fidelity port: deliveries are re-scheduled into
  /// \p target_world at their bus delivery time and invoke \p deliver
  /// there.  Returns the bus node id to transmit under.
  sim::CanBus::NodeId attach_port(const std::string& port_name,
                                  sim::World& target_world,
                                  DeliverFn deliver);

  /// Attaches a model-fidelity port (no world of its own): \p deliver runs
  /// synchronously during exchange(), stamped with the delivery time.
  sim::CanBus::NodeId attach_model_port(const std::string& port_name,
                                        DeliverFn deliver);

  /// Attaches an MCU CAN controller: transmits go straight to the shared
  /// bus, deliveries come back through CanController::deliver at the exact
  /// bus delivery time inside the controller's own world.
  void attach_controller(periph::CanController& controller);

  // ------------------------------------------------------------ Component
  sim::SimTime horizon() const override { return world_.queue().next_time(); }
  void advance_to(sim::SimTime t) override { world_.run_until(t); }
  std::uint64_t events_executed() const override {
    return world_.queue().events_executed();
  }

  /// Flushes deliveries buffered during the last advance_to into the
  /// destination components.  Called by the master once per negotiated
  /// boundary, after every component has reached it.
  void exchange();

 private:
  struct Port {
    sim::World* world = nullptr;  ///< null: model-fidelity port
    DeliverFn deliver;
  };
  struct Buffered {
    std::size_t port;
    sim::CanFrame frame;
    sim::SimTime when;
  };

  std::string name_;
  sim::World world_;
  sim::CanBus can_;
  std::vector<Port> ports_;
  std::vector<Buffered> buffered_;
};

}  // namespace iecd::cosim
