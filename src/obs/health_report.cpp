#include "obs/health_report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/build_info.hpp"
#include "util/strings.hpp"

namespace iecd::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void json_histogram(std::ostream& os, const char* key,
                    const LatencyHistogram& h) {
  os << "\"" << key << "\":{\"n\":" << h.count() << ",\"min\":" << num(h.min())
     << ",\"mean\":" << num(h.mean()) << ",\"p50\":" << num(h.p50())
     << ",\"p90\":" << num(h.p90()) << ",\"p99\":" << num(h.p99())
     << ",\"p999\":" << num(h.p999()) << ",\"max\":" << num(h.max()) << "}";
}

}  // namespace

std::uint64_t HealthReport::anomaly_count() const {
  std::uint64_t total = 0;
  for (const auto& [name, count] : anomalies) total += count;
  return total;
}

std::uint64_t HealthReport::deadline_misses() const {
  std::uint64_t total = 0;
  for (const auto& [name, mon] : tasks) total += mon.deadline_misses();
  return total;
}

void HealthReport::merge(const HealthReport& other) {
  if (source.empty()) source = other.source;
  runs += other.runs;
  for (const auto& [name, mon] : other.tasks) {
    tasks[name].merge(mon);
  }
  for (const auto& [name, mon] : other.watermarks) {
    watermarks[name].merge(mon);
  }
  for (const auto& [name, count] : other.anomalies) {
    anomalies[name] += count;
  }
  dumps_suppressed += other.dumps_suppressed;
  for (const auto& dump : other.dumps) {
    if (dumps.size() < kMaxDumps) {
      dumps.push_back(dump);
    } else {
      ++dumps_suppressed;
    }
  }
}

std::string HealthReport::to_text() const {
  std::ostringstream os;
  os << "=== health report: " << source << " (" << runs
     << (runs == 1 ? " run" : " runs") << ") — "
     << (healthy() ? "HEALTHY" : "UNHEALTHY") << " ===\n";
  if (!tasks.empty()) {
    os << "tasks:\n";
    for (const auto& [name, mon] : tasks) {
      os << "  " << mon.state_line(name) << "\n";
    }
  }
  if (!watermarks.empty()) {
    os << "watermarks:\n";
    for (const auto& [name, mon] : watermarks) {
      os << "  " << util::format(
                        "%s: current=%.3f peak=%.3f low=%.3f mean=%.3f n=%llu",
                        name.c_str(), mon.current(), mon.peak(), mon.low(),
                        mon.mean(),
                        static_cast<unsigned long long>(mon.samples()))
         << "\n";
    }
  }
  if (!anomalies.empty()) {
    os << "anomalies:\n";
    for (const auto& [name, count] : anomalies) {
      os << "  " << name << ": " << count << "\n";
    }
  }
  for (const auto& dump : dumps) {
    os << util::format("dump #%llu: %s (%s) at t=%.6fs, %zu trailing events\n",
                       static_cast<unsigned long long>(dump.ordinal),
                       dump.trigger.c_str(), dump.detail.c_str(),
                       sim::to_seconds(dump.time), dump.events.size());
    for (const auto& line : dump.monitor_state) {
      os << "    " << line << "\n";
    }
  }
  if (dumps_suppressed > 0) {
    os << "(" << dumps_suppressed << " further dumps suppressed)\n";
  }
  return os.str();
}

std::string HealthReport::to_json() const {
  std::ostringstream os;
  os << "{\"source\":\"" << json_escape(source) << "\",\"runs\":" << runs
     << ",\"build\":" << util::build_info_json()
     << ",\"healthy\":" << (healthy() ? "true" : "false")
     << ",\"deadline_misses\":" << deadline_misses();

  os << ",\"tasks\":{";
  bool first = true;
  for (const auto& [name, mon] : tasks) {
    if (!first) os << ",";
    first = false;
    os << "\n\"" << json_escape(name) << "\":{"
       << "\"activations\":" << mon.activations()
       << ",\"deadline_misses\":" << mon.deadline_misses()
       << ",\"period_s\":" << num(mon.config().period_s)
       << ",\"deadline_s\":" << num(mon.config().deadline_s) << ",";
    json_histogram(os, "response_us", mon.response_us());
    os << ",";
    json_histogram(os, "exec_us", mon.exec_us());
    os << ",";
    json_histogram(os, "jitter_us", mon.jitter_us());
    os << "}";
  }
  os << "}";

  os << ",\"watermarks\":{";
  first = true;
  for (const auto& [name, mon] : watermarks) {
    if (!first) os << ",";
    first = false;
    os << "\n\"" << json_escape(name) << "\":{\"current\":"
       << num(mon.current()) << ",\"peak\":" << num(mon.peak())
       << ",\"low\":" << num(mon.low()) << ",\"mean\":" << num(mon.mean())
       << ",\"samples\":" << mon.samples() << "}";
  }
  os << "}";

  os << ",\"anomalies\":{";
  first = true;
  for (const auto& [name, count] : anomalies) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << count;
  }
  os << "}";

  os << ",\"dumps\":[";
  first = true;
  for (const auto& dump : dumps) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"trigger\":\"" << json_escape(dump.trigger) << "\",\"detail\":\""
       << json_escape(dump.detail) << "\",\"time_s\":"
       << num(sim::to_seconds(dump.time)) << ",\"ordinal\":" << dump.ordinal
       << ",\"events\":[";
    bool first_ev = true;
    for (const auto& ev : dump.events) {
      if (!first_ev) os << ",";
      first_ev = false;
      os << "{\"seq\":" << ev.seq << ",\"cat\":\"" << json_escape(ev.category)
         << "\",\"name\":\"" << json_escape(ev.name) << "\",\"track\":\""
         << json_escape(ev.track) << "\",\"time_ns\":" << ev.time
         << ",\"dur_ns\":" << ev.duration << ",\"value\":" << num(ev.value)
         << "}";
    }
    os << "],\"monitor_state\":[";
    bool first_line = true;
    for (const auto& line : dump.monitor_state) {
      if (!first_line) os << ",";
      first_line = false;
      os << "\"" << json_escape(line) << "\"";
    }
    os << "]}";
  }
  os << "]";
  os << ",\"dumps_suppressed\":" << dumps_suppressed;
  os << "}\n";
  return os.str();
}

bool HealthReport::write_json(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << to_json();
  return os.good();
}

}  // namespace iecd::obs
