#include <gtest/gtest.h>

#include "core/distributed.hpp"

namespace iecd::core {
namespace {

DistributedConfig quick() {
  DistributedConfig cfg;
  cfg.duration_s = 0.6;
  return cfg;
}

TEST(DistributedServo, TracksSetpointOverHealthyBus) {
  const auto r = run_distributed_servo(quick());
  EXPECT_TRUE(r.metrics.settled) << "final " << r.speed.last_value();
  EXPECT_NEAR(r.speed.last_value(), 100.0, 3.0);
  // One sensor and one actuator frame per control period.
  EXPECT_NEAR(static_cast<double>(r.sensor_frames), 599.0, 2.0);
  EXPECT_NEAR(static_cast<double>(r.actuator_frames),
              static_cast<double>(r.sensor_frames), 2.0);
  EXPECT_EQ(r.controller_rx_overruns, 0u);
}

TEST(DistributedServo, LatencyIsTwoFrameHops) {
  const auto r = run_distributed_servo(quick());
  // Two 3-byte frames at 500 kbit/s: ~2 * 170 us of wire time plus ISR
  // executions.
  EXPECT_GT(r.loop_latency_us_mean, 250.0);
  EXPECT_LT(r.loop_latency_us_mean, 500.0);
  EXPECT_GE(r.loop_latency_us_max + 1e-9, r.loop_latency_us_mean);
}

TEST(DistributedServo, FasterBusShortensLatency) {
  auto cfg = quick();
  cfg.can_bitrate = 1000000;
  const auto fast = run_distributed_servo(cfg);
  cfg.can_bitrate = 250000;
  const auto slow = run_distributed_servo(cfg);
  EXPECT_LT(fast.loop_latency_us_mean, slow.loop_latency_us_mean / 2.5);
  EXPECT_LT(fast.bus_utilisation, slow.bus_utilisation);
}

TEST(DistributedServo, SaturatedBusLosesTheLoop) {
  auto cfg = quick();
  cfg.can_bitrate = 100000;  // frames no longer fit the period
  const auto r = run_distributed_servo(cfg);
  EXPECT_FALSE(r.metrics.settled);
  EXPECT_GT(r.iae, 10.0);
  EXPECT_GT(r.bus_utilisation, 0.98);
}

TEST(DistributedServo, BackgroundTrafficRaisesLatency) {
  const auto clean = run_distributed_servo(quick());
  auto cfg = quick();
  cfg.background_frames_per_s = 1500.0;
  const auto loaded = run_distributed_servo(cfg);
  EXPECT_GT(loaded.loop_latency_us_mean,
            clean.loop_latency_us_mean + 100.0);
  EXPECT_GT(loaded.bus_utilisation, clean.bus_utilisation + 0.2);
  EXPECT_GT(loaded.background_frames, 800u);
  // The loop still holds at this load level.
  EXPECT_TRUE(loaded.metrics.settled);
}

TEST(DistributedServo, DeterministicAcrossRuns) {
  const auto a = run_distributed_servo(quick());
  const auto b = run_distributed_servo(quick());
  EXPECT_EQ(a.iae, b.iae);
  EXPECT_EQ(a.loop_latency_us_mean, b.loop_latency_us_mean);
  EXPECT_EQ(a.sensor_frames, b.sensor_frames);
}

// ---------------------------------------------------------------------------
// Cosim-rebase regression lock: run_distributed_servo now executes on the
// co-simulation master (src/cosim/) as a 2-component topology.  The golden
// values below were captured from the former monolithic single-world
// implementation at full precision; the step-negotiation loop is exact, so
// every physics/latency metric must match BIT-FOR-BIT.  events_executed is
// deliberately excluded — cross-world frame deliveries are separate queue
// events, so the scheduler-pressure counter legitimately differs.
// ---------------------------------------------------------------------------

TEST(CosimDistributedRegression, HealthyBusMatchesMonolithicGoldens) {
  const auto r = run_distributed_servo(quick());
  EXPECT_DOUBLE_EQ(r.iae, 6.4160358474182226);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_mean, 359.70000000000334);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_max, 359.69999999999999);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_p99, 359.69999999999999);
  EXPECT_DOUBLE_EQ(r.bus_utilisation, 0.34182933333333332);
  EXPECT_DOUBLE_EQ(r.speed.last_value(), 100.13136283118807);
  EXPECT_EQ(r.loop_samples, 599u);
  EXPECT_EQ(r.loop_deadline_misses, 0u);
  EXPECT_EQ(r.sensor_frames, 599u);
  EXPECT_EQ(r.actuator_frames, 599u);
  EXPECT_EQ(r.background_frames, 0u);
  EXPECT_EQ(r.controller_rx_overruns, 0u);
  EXPECT_EQ(r.frames_delivered, 1198u);
  EXPECT_TRUE(r.metrics.settled);
  EXPECT_GT(r.events_executed, 0u);
}

TEST(CosimDistributedRegression, SaturatedBusMatchesMonolithicGoldens) {
  auto cfg = quick();
  cfg.can_bitrate = 100000;
  const auto r = run_distributed_servo(cfg);
  EXPECT_DOUBLE_EQ(r.iae, 96.568588065038554);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_mean, 124385.30000000008);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_max, 253753.30000000002);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_p99, 248761.30000000002);
  EXPECT_DOUBLE_EQ(r.bus_utilisation, 0.9986666666666667);
  EXPECT_DOUBLE_EQ(r.speed.last_value(), 469.60362891681223);
  EXPECT_EQ(r.loop_samples, 101u);
  EXPECT_EQ(r.loop_deadline_misses, 101u);
  EXPECT_EQ(r.sensor_frames, 599u);
  EXPECT_EQ(r.actuator_frames, 598u);
  EXPECT_EQ(r.frames_delivered, 699u);
  EXPECT_FALSE(r.metrics.settled);
}

TEST(CosimDistributedRegression, LoadedBusMatchesMonolithicGoldens) {
  auto cfg = quick();
  cfg.background_frames_per_s = 1500.0;
  const auto r = run_distributed_servo(cfg);
  EXPECT_DOUBLE_EQ(r.iae, 6.4213876691968856);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_mean, 491.95383973289086);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_max, 624.79899999999998);
  EXPECT_DOUBLE_EQ(r.loop_latency_us_p99, 624.79302000000007);
  EXPECT_DOUBLE_EQ(r.bus_utilisation, 0.74218399999999995);
  EXPECT_DOUBLE_EQ(r.speed.last_value(), 100.10070219549908);
  EXPECT_EQ(r.loop_samples, 599u);
  EXPECT_EQ(r.background_frames, 899u);
  EXPECT_EQ(r.frames_delivered, 2097u);
  EXPECT_TRUE(r.metrics.settled);
}

}  // namespace
}  // namespace iecd::core
