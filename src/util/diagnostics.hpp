/// \file diagnostics.hpp
/// User-facing diagnostic reporting for expected failures (bean validation,
/// model consistency checks, codegen constraints).  Programming errors use
/// exceptions; *expected* errors accumulate into a DiagnosticList so a whole
/// configuration can be checked in one pass, mirroring the immediate
/// verification the Processor Expert "Bean Inspector" performs.
#pragma once

#include <string>
#include <vector>

namespace iecd::util {

enum class Severity {
  kInfo,     ///< informational note (e.g. a derived parameter was adjusted)
  kWarning,  ///< suspicious but usable configuration
  kError,    ///< configuration cannot be used
};

/// Converts a severity to a short uppercase tag ("INFO", "WARN", "ERROR").
const char* to_string(Severity severity);

/// One finding attributed to a component (bean, block, signal, ...).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string component;  ///< dotted path, e.g. "beans.PWM1.period"
  std::string message;

  /// Renders as "ERROR beans.PWM1.period: message".
  std::string to_string() const;
};

/// Accumulator passed through validation passes.
class DiagnosticList {
 public:
  void info(std::string component, std::string message);
  void warning(std::string component, std::string message);
  void error(std::string component, std::string message);
  void add(Diagnostic diagnostic);

  /// Appends all diagnostics from \p other.
  void merge(const DiagnosticList& other);

  bool has_errors() const;
  bool has_warnings() const;
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  const std::vector<Diagnostic>& items() const { return items_; }

  /// Multi-line rendering, one diagnostic per line.
  std::string to_string() const;

  void clear() { items_.clear(); }

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace iecd::util
