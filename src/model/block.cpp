#include "model/block.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace iecd::model {

Block::Block(std::string name, int inputs, int outputs)
    : name_(std::move(name)),
      inputs_(static_cast<std::size_t>(inputs)),
      outputs_(static_cast<std::size_t>(outputs)),
      out_types_(static_cast<std::size_t>(outputs), DataType::kDouble),
      out_fmts_(static_cast<std::size_t>(outputs)) {
  if (inputs < 0 || outputs < 0) {
    throw std::invalid_argument("Block: negative port count");
  }
  slots_ = outputs_.data();
}

const Value& Block::zero_value() {
  static const Value kZero = Value::of_double(0.0);
  return kZero;
}

const Value& Block::in_walk(int port) const {
  const Connection& c = inputs_.at(static_cast<std::size_t>(port));
  if (!c.src) return zero_value();
  return c.src->out(c.src_port);
}

void Block::throw_bad_port(int port, bool output) const {
  throw std::out_of_range(name_ + ": no " +
                          (output ? std::string("output") : "input") +
                          " port " + std::to_string(port));
}

void Block::set_output_type(int port, DataType type,
                            std::optional<fixpt::FixedFormat> fmt) {
  if (type == DataType::kFixed && !fmt) {
    throw std::invalid_argument(name_ + ": fixed output needs a format");
  }
  out_types_.at(static_cast<std::size_t>(port)) = type;
  out_fmts_.at(static_cast<std::size_t>(port)) = fmt;
  // Re-quantize the current latched value so type changes apply instantly.
  Value& slot = slots_[static_cast<std::size_t>(port)];
  slot = Value::quantize(slot.as_double(), type, fmt);
}

DataType Block::output_type(int port) const {
  return out_types_.at(static_cast<std::size_t>(port));
}

const std::optional<fixpt::FixedFormat>& Block::output_format(int port) const {
  return out_fmts_.at(static_cast<std::size_t>(port));
}

void Block::initialize(const SimContext& ctx) { (void)ctx; }

bool Block::input_connected(int port) const {
  return inputs_.at(static_cast<std::size_t>(port)).src != nullptr;
}

const Block::Connection& Block::input(int port) const {
  return inputs_.at(static_cast<std::size_t>(port));
}

void Block::set_out_value(int port, const Value& v) {
  const DataType want = out_types_.at(static_cast<std::size_t>(port));
  if (v.type() == want) {
    slots_[static_cast<std::size_t>(port)] = v;
  } else {
    set_out(port, v.as_double());
  }
}

mcu::OpCounts Block::step_ops(bool fixed_point) const {
  // Conservative default: one ALU op + one store per output.
  mcu::OpCounts ops;
  if (fixed_point) {
    ops.alu16 = static_cast<std::uint32_t>(output_count());
  } else {
    ops.fadd = static_cast<std::uint32_t>(output_count());
  }
  ops.mem = static_cast<std::uint32_t>(output_count());
  return ops;
}

std::string Block::emit_c(const EmitContext& ctx) const {
  std::string out;
  for (std::size_t i = 0; i < ctx.outputs.size(); ++i) {
    const std::string rhs = i < ctx.inputs.size() ? ctx.inputs[i] : "0";
    out += util::format("%s = %s;  /* %s (%s) */\n", ctx.outputs[i].c_str(),
                        rhs.c_str(), name_.c_str(), type_name());
  }
  return out;
}

}  // namespace iecd::model
