file(REMOVE_RECURSE
  "libiecd_model.a"
)
