/// \file block.hpp
/// Block base class of the data-flow modelling environment.  A block has
/// typed output ports, input connections, a sample time, optional internal
/// continuous states, and three execution hooks mirroring Simulink's
/// semantics: output() (compute outputs), update() (advance discrete
/// state), derivatives() (continuous state slopes for the solver).  Blocks
/// also carry the code-generation hooks: per-step operation counts for the
/// target cost model, state/output storage sizes, and a C emitter (the
/// per-block "TLC script").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mcu/cost_model.hpp"
#include "model/value.hpp"

namespace iecd::model {

class Block;

/// Context handed to every execution hook.
struct SimContext {
  double t = 0.0;      ///< current simulated time [s]
  double dt = 0.0;     ///< base (major) step of the engine [s]
  bool minor = false;  ///< true inside solver minor (derivative) evaluations
};

struct SampleTime {
  enum class Kind { kContinuous, kDiscrete, kInherited };
  Kind kind = Kind::kInherited;
  double period = 0.0;  ///< [s], kDiscrete only
  double offset = 0.0;  ///< [s], kDiscrete only

  static SampleTime continuous() {
    return {Kind::kContinuous, 0.0, 0.0};
  }
  static SampleTime discrete(double period, double offset = 0.0) {
    return {Kind::kDiscrete, period, offset};
  }
  static SampleTime inherited() { return {Kind::kInherited, 0.0, 0.0}; }
};

/// Name resolution context for the per-block C emitters: maps ports to the
/// C variable names the generator assigned.
struct EmitContext {
  std::vector<std::string> inputs;   ///< C expression per input port
  std::vector<std::string> outputs;  ///< C lvalue per output port
  std::string state_prefix;          ///< prefix for state variables
  bool fixed_point = false;          ///< emit integer arithmetic
};

class Block {
 public:
  Block(std::string name, int inputs, int outputs);
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const std::string& name() const { return name_; }
  void rename(std::string name) { name_ = std::move(name); }

  /// Block type for reports/emitters, e.g. "Gain".
  virtual const char* type_name() const = 0;

  int input_count() const { return static_cast<int>(inputs_.size()); }
  int output_count() const { return static_cast<int>(outputs_.size()); }

  // --- Types ---
  void set_output_type(int port, DataType type,
                       std::optional<fixpt::FixedFormat> fmt = std::nullopt);
  DataType output_type(int port) const;
  const std::optional<fixpt::FixedFormat>& output_format(int port) const;

  // --- Sample time ---
  SampleTime sample_time() const { return sample_time_; }
  void set_sample_time(SampleTime st) { sample_time_ = st; }
  /// Engine-resolved effective period (for discrete state updates).
  double resolved_period() const { return resolved_period_; }
  void set_resolved_period(double p) { resolved_period_ = p; }
  /// Engine-resolved continuity (after inheritance propagation).
  bool resolved_continuous() const { return resolved_continuous_; }
  void set_resolved_continuous(bool c) { resolved_continuous_ = c; }

  /// False for blocks whose outputs do not depend on current inputs
  /// (UnitDelay, Integrator, ...) — these break algebraic loops.
  virtual bool has_direct_feedthrough() const { return true; }

  // --- Execution hooks ---
  virtual void initialize(const SimContext& ctx);
  virtual void output(const SimContext& ctx) = 0;
  virtual void update(const SimContext& ctx) { (void)ctx; }

  // --- Continuous states ---
  virtual int continuous_state_count() const { return 0; }
  virtual void read_states(std::span<double> into) const { (void)into; }
  virtual void write_states(std::span<const double> from) { (void)from; }
  virtual void derivatives(const SimContext& ctx, std::span<double> dx) const {
    (void)ctx;
    (void)dx;
  }

  // --- Code generation hooks ---
  /// Elementary operations one step of this block costs on the target.
  virtual mcu::OpCounts step_ops(bool fixed_point) const;
  /// Discrete state bytes this block needs in the generated application.
  virtual std::uint32_t state_bytes() const { return 0; }
  /// Emits the C statement(s) computing this block's outputs.
  virtual std::string emit_c(const EmitContext& ctx) const;
  /// Emits the C statement(s) advancing this block's discrete state; they
  /// run after ALL outputs of the step, exactly like the engine's update
  /// phase (empty for stateless blocks).
  virtual std::string emit_c_update(const EmitContext& ctx) const {
    (void)ctx;
    return {};
  }

  // --- Port access ---
  /// Latched output value.  Storage lives in the owning model's contiguous
  /// signal-slot arena once the model is compiled (Model::sorted()), in the
  /// block's own fallback vector otherwise; either way this is one load.
  const Value& out(int port) const {
    if (static_cast<std::size_t>(port) >= outputs_.size()) {
      throw_bad_port(port, /*output=*/true);
    }
    return slots_[static_cast<std::size_t>(port)];
  }
  /// Latched value at the block feeding input \p port (engine executed it
  /// earlier in sorted order).  Unconnected inputs read 0.0.
  Value in_value(int port) const { return in_ref(port); }
  bool input_connected(int port) const;

  struct Connection {
    const Block* src = nullptr;
    int src_port = 0;
  };
  const Connection& input(int port) const;

 protected:
  /// Writes an output, quantizing to the port's declared type.  The
  /// dominant double->double case is a single store into the signal slot.
  void set_out(int port, double real) {
    const auto p = static_cast<std::size_t>(port);
    if (p >= outputs_.size()) throw_bad_port(port, /*output=*/true);
    if (out_types_[p] == DataType::kDouble) {
      slots_[p].assign_double(real);
    } else {
      slots_[p] = Value::quantize(real, out_types_[p], out_fmts_[p]);
    }
  }
  void set_out_value(int port, const Value& v);
  /// Reference to the value feeding input \p port: a resolved slot pointer
  /// when the owning model is compiled, a connection walk otherwise.
  const Value& in_ref(int port) const {
    const auto p = static_cast<std::size_t>(port);
    if (p < in_cache_.size()) {
      if (const Value* src = in_cache_[p]) return *src;
    }
    return in_walk(port);
  }
  double in(int port) const { return in_ref(port).as_double(); }
  bool in_bool(int port) const { return in_ref(port).as_bool(); }

 private:
  friend class Model;

  const Value& in_walk(int port) const;
  [[noreturn]] void throw_bad_port(int port, bool output) const;
  /// Shared slot for unconnected inputs (always reads double 0).
  static const Value& zero_value();

  std::string name_;
  std::vector<Connection> inputs_;
  std::vector<Value> outputs_;  ///< fallback storage when not compiled
  std::vector<DataType> out_types_;
  std::vector<std::optional<fixpt::FixedFormat>> out_fmts_;
  SampleTime sample_time_ = SampleTime::inherited();
  double resolved_period_ = 0.0;
  bool resolved_continuous_ = false;
  /// Active output storage: outputs_.data() until the owning model compiles
  /// its signal arena, then a pointer into that arena.
  Value* slots_ = nullptr;
  /// Per-input resolved source slots (filled by Model::compile; nullptr
  /// entries — e.g. cross-model sources — keep the walking fallback).
  std::vector<const Value*> in_cache_;
};

}  // namespace iecd::model
