/// \file fold.hpp
/// Windowed index-order fold: the streaming half of the campaign engine.
/// Workers hand finished lane groups to a ReorderFold in whatever order
/// they complete; the fold buffers out-of-order groups and invokes the
/// sink strictly in ascending run-index order, so the merged output is
/// byte-identical to a sequential execution no matter which threads ran
/// which groups — the same determinism contract exec::SweepRunner has
/// always had, but with O(window) buffered state instead of O(runs).
///
/// Bounding the buffer without deadlock: submits NEVER block — a finished
/// group is always accepted.  Instead, the *claim* side is throttled: a
/// group whose first run index is at or beyond `watermark + window` is not
/// eligible to start executing (eligible() / wait_eligible()).  The group
/// that starts at the watermark is always eligible, and the scheduler
/// guarantees its holder claims lowest-index-first, so at any moment at
/// least one worker can make progress — the window throttles, it cannot
/// wedge.  Every buffered group was eligible when it was claimed, hence
/// started below (watermark_at_claim + window) <= (current watermark +
/// window): the buffer holds strictly fewer than `window` runs beyond the
/// watermark, plus whatever single group each worker has in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

namespace iecd::campaign {

/// One executed lane group's results, produced by a worker thread and
/// handed to the fold.  Covers run indices [first, first + metrics.size());
/// health.size() == metrics.size().
struct GroupResult {
  std::size_t first = 0;
  std::vector<trace::MetricsRegistry> metrics;
  std::vector<obs::HealthReport> health;
};

class ReorderFold {
 public:
  /// Called exactly once per group, strictly in ascending `first` order,
  /// from whichever thread's submit() drained the group — always under the
  /// fold lock, so sinks never run concurrently and need no locking of
  /// their own.
  using Sink = std::function<void(GroupResult&)>;

  /// \p start: first run index of the whole execution (resume point);
  /// \p window: reorder window in runs (>= 1).
  ReorderFold(std::size_t start, std::size_t window, Sink sink)
      : next_(start), watermark_(start), window_(window ? window : 1),
        sink_(std::move(sink)) {}

  ReorderFold(const ReorderFold&) = delete;
  ReorderFold& operator=(const ReorderFold&) = delete;

  /// First run index not yet folded.  Monotonic; safe from any thread.
  std::size_t watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  /// May the group starting at \p first begin executing?  (Folding has
  /// caught up to within the reorder window.)
  bool eligible(std::size_t first) const {
    return first < watermark() + window_;
  }

  /// Blocks until eligible(\p first) or until \p cancelled() turns true
  /// (re-checked after every watermark advance and every notify()).
  /// Returns eligible(first).  \p cancelled is evaluated under the fold
  /// lock; it may take other locks as long as no code path acquires the
  /// fold lock while holding them.
  bool wait_eligible(std::size_t first,
                     const std::function<bool()>& cancelled) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return eligible(first) || cancelled(); });
    return eligible(first);
  }

  /// Accepts a finished group — never blocks.  Drains the contiguous
  /// prefix: every buffered group that is now next in index order is
  /// folded (sink called) and the watermark advanced.
  void submit(std::unique_ptr<GroupResult> group) {
    bool advanced = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.emplace(group->first, std::move(group));
      if (pending_.size() > peak_pending_) peak_pending_ = pending_.size();
      while (!pending_.empty() && pending_.begin()->first == next_) {
        std::unique_ptr<GroupResult> ready =
            std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        sink_(*ready);
        next_ = ready->first + ready->metrics.size();
        watermark_.store(next_, std::memory_order_release);
        advanced = true;
      }
    }
    if (advanced) cv_.notify_all();
  }

  /// Wakes wait_eligible() callers so they re-check their cancel
  /// predicate after external state changed (a steal emptied a deque, the
  /// run is shutting down, ...).
  void notify() { cv_.notify_all(); }

  /// Peak number of groups buffered out of order (memory telemetry).
  std::size_t peak_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_pending_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::size_t, std::unique_ptr<GroupResult>> pending_;
  std::size_t next_;                    ///< next run index to fold
  std::atomic<std::size_t> watermark_;  ///< == next_, lock-free mirror
  const std::size_t window_;
  Sink sink_;
  std::size_t peak_pending_ = 0;
};

}  // namespace iecd::campaign
