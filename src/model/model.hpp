/// \file model.hpp
/// The block-diagram graph: owns blocks, records connections, computes the
/// data-flow execution order (topological over direct-feedthrough edges)
/// and detects algebraic loops — the consistency layer Simulink provides
/// before any simulation or code generation can run.
///
/// Compilation: computing the order also "compiles" the model for the hot
/// path — block outputs move into one contiguous signal-slot arena (integer
/// slot ids, assigned in block-insertion order) and every input connection
/// is resolved to a direct slot pointer, so the major-step loop touches no
/// strings, no hash maps and no per-port indirection chains.  Any graph
/// edit (add/connect/remove) decompiles back to per-block storage and bumps
/// order_epoch(), letting engines refresh their cached dispatch lists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/block.hpp"
#include "util/diagnostics.hpp"

namespace iecd::model {

class Model {
 public:
  explicit Model(std::string name = "model");

  const std::string& name() const { return name_; }

  /// Adds a block; instance names must be unique within the model.
  template <typename T, typename... Args>
  T& add(std::string block_name, Args&&... args) {
    ensure_unique(block_name);
    auto block =
        std::make_unique<T>(std::move(block_name), std::forward<Args>(args)...);
    T& ref = *block;
    blocks_.push_back(std::move(block));
    invalidate();
    return ref;
  }

  /// Connects src.out[src_port] -> dst.in[dst_port].  An input accepts only
  /// one driver; reconnecting replaces it.
  void connect(Block& src, int src_port, Block& dst, int dst_port);

  Block* find(const std::string& block_name);
  const Block* find(const std::string& block_name) const;
  bool remove(const std::string& block_name);
  bool rename(const std::string& old_name, const std::string& new_name);

  const std::vector<std::unique_ptr<Block>>& blocks() const { return blocks_; }
  std::size_t block_count() const { return blocks_.size(); }

  /// Structural checks: unconnected inputs (warning), algebraic loops
  /// (error, with the cycle spelled out), invalid sample times.
  util::DiagnosticList check() const;

  /// Execution order.  Throws std::logic_error on algebraic loops.
  /// Also compiles the signal-slot arena (see file comment).
  const std::vector<Block*>& sorted() const;

  /// Bumped on every graph edit (add/connect/remove); engines key their
  /// cached dispatch lists on it.
  std::uint64_t order_epoch() const { return order_epoch_; }

  /// True while the signal-slot arena backs block outputs.
  bool compiled() const { return compiled_; }
  /// Total output slots in the compiled arena (0 when decompiled).
  std::size_t signal_slot_count() const { return arena_.size(); }

 private:
  void ensure_unique(const std::string& block_name) const;
  void invalidate();
  void compute_order() const;
  void compile() const;
  void decompile();

  std::string name_;
  std::vector<std::unique_ptr<Block>> blocks_;
  mutable std::vector<Block*> order_;
  mutable bool order_valid_ = false;
  /// Contiguous storage for every block output (the signal-slot arena).
  mutable std::vector<Value> arena_;
  mutable bool compiled_ = false;
  std::uint64_t order_epoch_ = 0;
};

}  // namespace iecd::model
