/// \file trace.hpp
/// Deterministic low-overhead tracing: a ring buffer of typed events —
/// spans (begin/end/complete), counters and instants — stamped with
/// simulated time plus a monotonic sequence number, so two identical runs
/// record bit-identical streams.  This is the cross-layer timeline the
/// paper's PIL phase promises ("execution times of the implemented
/// controller code, interrupts response times, sampling jitters") made a
/// first-class artifact: the event queue, the CPU dispatcher, the PIL
/// frames, the CAN bus and the model engine all emit onto one timeline.
///
/// Instrumentation sites pay one pointer load + branch when tracing is
/// off (`TraceRecorder::active()` is null); nothing is allocated and no
/// string is touched.  When tracing is on, names are interned once per
/// distinct string and events are fixed-size PODs in a preallocated ring.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace iecd::trace {

/// Interned-string handle; resolves via TraceRecorder::string_at().
using NameId = std::uint32_t;

enum class EventType : std::uint8_t {
  kSpanBegin,     ///< opens a span on its track
  kSpanEnd,       ///< closes the innermost open span
  kSpanComplete,  ///< span with known begin + duration, recorded at end
  kCounter,       ///< named sampled value
  kInstant,       ///< point event
};

/// One trace record.  Fixed-size; names/categories/tracks are interned.
struct Event {
  EventType type = EventType::kInstant;
  NameId category = 0;  ///< layer tag: "sim", "mcu", "pil", "model", "rt"
  NameId name = 0;
  NameId track = 0;     ///< timeline the event lives on (one per component)
  sim::SimTime time = 0;
  sim::SimTime duration = 0;  ///< kSpanComplete only
  std::uint64_t seq = 0;      ///< monotonic across the whole run
  double value = 0.0;         ///< counter value / span payload
};

/// Fixed-capacity ring buffer of Events.  When full, the oldest events are
/// overwritten (dropped() reports how many); capacity is chosen at
/// construction so steady-state recording never allocates.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = std::size_t{1} << 16);

  // ---------------------------------------------------------- recording
  void span_begin(std::string_view category, std::string_view name,
                  std::string_view track, sim::SimTime t, double value = 0.0);
  void span_end(std::string_view category, std::string_view name,
                std::string_view track, sim::SimTime t, double value = 0.0);
  /// Span recorded once its extent is known (e.g. an ISR at retirement).
  void span_complete(std::string_view category, std::string_view name,
                     std::string_view track, sim::SimTime begin,
                     sim::SimTime end, double value = 0.0);
  void counter(std::string_view category, std::string_view name,
               std::string_view track, sim::SimTime t, double value);
  void instant(std::string_view category, std::string_view name,
               std::string_view track, sim::SimTime t, double value = 0.0);

  // ------------------------------------------------------------ interning
  /// Returns a stable id for \p s, interning it on first sight.
  NameId intern(std::string_view s);
  const std::string& string_at(NameId id) const { return strings_.at(id); }
  std::size_t interned_count() const { return strings_.size(); }

  // -------------------------------------------------------------- access
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events recorded over the run, including overwritten ones.
  std::uint64_t total_recorded() const { return seq_; }
  std::uint64_t dropped() const { return seq_ - size_; }

  /// Visits live events oldest-first (recording order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t cap = ring_.size();
    std::size_t idx = (head_ + cap - size_) % cap;
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[idx]);
      idx = idx + 1 == cap ? 0 : idx + 1;
    }
  }

  /// Copies the live events oldest-first.
  std::vector<Event> snapshot() const;

  /// Drops all events and interned strings.
  void clear();

  // ------------------------------------------------- process-wide install
  /// The recorder instrumentation sites write to, or null (tracing off).
  static TraceRecorder* active() { return active_; }
  static void set_active(TraceRecorder* recorder) { active_ = recorder; }

 private:
  void push(EventType type, std::string_view category, std::string_view name,
            std::string_view track, sim::SimTime t, sim::SimTime duration,
            double value);

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, NameId, StringHash, std::equal_to<>> ids_;

  static TraceRecorder* active_;
};

/// Shorthand for the instrumentation-site check.
inline TraceRecorder* recorder() { return TraceRecorder::active(); }

/// RAII installer: makes \p recorder the process-wide active tracer for
/// the enclosing scope and restores the previous one on exit.
class TraceSession {
 public:
  explicit TraceSession(TraceRecorder& rec)
      : previous_(TraceRecorder::active()) {
    TraceRecorder::set_active(&rec);
  }
  ~TraceSession() { TraceRecorder::set_active(previous_); }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace iecd::trace
