#include "batch/plant_batch.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rk4.hpp"

namespace iecd::batch {

namespace {

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

double grid_time(std::uint64_t major, std::int64_t base_ns) {
  return static_cast<double>(major) * static_cast<double>(base_ns) * 1e-9;
}

}  // namespace

// ----------------------------------------------------------- WaterTank

WaterTankBatch::WaterTankBatch(
    PlantBatchConfig config,
    std::span<const plant::WaterTankBlock::Params> lanes)
    : config_(config), width_(lanes.size()) {
  if (config_.minor_steps < 1) {
    throw std::invalid_argument("WaterTankBatch: minor_steps >= 1");
  }
  if (!(config_.period_s > 0.0)) {
    throw std::invalid_argument("WaterTankBatch: period_s > 0");
  }
  base_period_ns_ = to_ns(config_.period_s);
  base_period_ = static_cast<double>(base_period_ns_) * 1e-9;

  const std::size_t w = width_;
  area_.resize(w);
  inflow_gain_.resize(w);
  outlet_area_.resize(w);
  max_level_.resize(w);
  state_.resize(w);
  level_.resize(w);
  input_.assign(w, 0.0);
  y_.resize(w);
  k1_.resize(w);
  k2_.resize(w);
  k3_.resize(w);
  k4_.resize(w);
  lvl_.resize(w);
  for (std::size_t l = 0; l < w; ++l) {
    area_[l] = lanes[l].area;
    inflow_gain_[l] = lanes[l].inflow_gain;
    outlet_area_[l] = lanes[l].outlet_area;
    max_level_[l] = lanes[l].max_level;
    // Engine initialization: the block sets its raw initial level and the
    // integrator reads it back unclamped (write_states clamps, initialize
    // does not).
    state_[l] = lanes[l].initial_level;
    level_[l] = lanes[l].initial_level;
  }
}

double WaterTankBatch::time() const {
  return grid_time(major_, base_period_ns_);
}

bool WaterTankBatch::done() const {
  return time() >= config_.duration_s - 1e-12;
}

void WaterTankBatch::set_inputs(std::span<const double> valve) {
  if (valve.size() != width_) {
    throw std::invalid_argument("WaterTankBatch::set_inputs: width mismatch");
  }
  std::copy(valve.begin(), valve.end(), input_.begin());
}

bool WaterTankBatch::step() {
  const double t = time();
  if (t >= config_.duration_s - 1e-12) return false;
  times_.push_back(t);
  hist_.insert(hist_.end(), level_.begin(), level_.end());

  const std::size_t w = width_;
  const double h = base_period_ / static_cast<double>(config_.minor_steps);
  // WaterTankBlock::derivatives over lanes, with the engine's stage
  // protocol: write_states clamps the candidate into level_, derivatives
  // evaluate against the clamped level.
  auto eval = [&](const LaneVector<>& cand, LaneVector<>& k) {
    for (std::size_t l = 0; l < w; ++l) {
      const double raw = cand[l];
      const double lvl =
          raw < 0.0 ? 0.0 : (max_level_[l] < raw ? max_level_[l] : raw);
      const double uc = input_[l];
      const double u = uc < 0.0 ? 0.0 : (1.0 < uc ? 1.0 : uc);
      const double head = lvl < 0.0 ? 0.0 : lvl;
      const double inflow = inflow_gain_[l] * u;
      const double outflow = outlet_area_[l] * std::sqrt(2.0 * 9.81 * head);
      double dx = (inflow - outflow) / area_[l];
      if (lvl >= max_level_[l] && dx > 0) dx = 0;
      if (lvl <= 0 && dx < 0) dx = 0;
      k[l] = dx;
    }
  };
  for (int m = 0; m < config_.minor_steps; ++m) {
    eval(state_, k1_);
    util::rk4_stage(state_, k1_, 0.5 * h, y_);
    eval(y_, k2_);
    util::rk4_stage(state_, k2_, 0.5 * h, y_);
    eval(y_, k3_);
    util::rk4_stage(state_, k3_, h, y_);
    eval(y_, k4_);
    util::rk4_combine(state_, h, k1_, k2_, k3_, k4_);
  }
  // Engine epilogue: write_states(states_) leaves the block clamped.
  for (std::size_t l = 0; l < w; ++l) {
    const double raw = state_[l];
    level_[l] = raw < 0.0 ? 0.0 : (max_level_[l] < raw ? max_level_[l] : raw);
  }
  ++major_;
  return true;
}

model::SampleLog WaterTankBatch::levels(std::size_t lane) const {
  if (lane >= width_) {
    throw std::out_of_range("WaterTankBatch::levels: lane out of range");
  }
  model::SampleLog log;
  for (std::size_t j = 0; j < times_.size(); ++j) {
    log.record(times_[j], hist_[j * width_ + lane]);
  }
  return log;
}

// ------------------------------------------------------------- Thermal

ThermalBatch::ThermalBatch(
    PlantBatchConfig config,
    std::span<const plant::ThermalPlantBlock::Params> lanes)
    : config_(config), width_(lanes.size()) {
  if (config_.minor_steps < 1) {
    throw std::invalid_argument("ThermalBatch: minor_steps >= 1");
  }
  if (!(config_.period_s > 0.0)) {
    throw std::invalid_argument("ThermalBatch: period_s > 0");
  }
  base_period_ns_ = to_ns(config_.period_s);
  base_period_ = static_cast<double>(base_period_ns_) * 1e-9;

  const std::size_t w = width_;
  capacity_.resize(w);
  resistance_.resize(w);
  power_.resize(w);
  ambient_.resize(w);
  state_.resize(w);
  input_.assign(w, 0.0);
  y_.resize(w);
  k1_.resize(w);
  k2_.resize(w);
  k3_.resize(w);
  k4_.resize(w);
  for (std::size_t l = 0; l < w; ++l) {
    capacity_[l] = lanes[l].thermal_capacity;
    resistance_[l] = lanes[l].thermal_resistance;
    power_[l] = lanes[l].heater_power;
    ambient_[l] = lanes[l].ambient;
    state_[l] = lanes[l].ambient;
  }
}

double ThermalBatch::time() const {
  return grid_time(major_, base_period_ns_);
}

bool ThermalBatch::done() const {
  return time() >= config_.duration_s - 1e-12;
}

void ThermalBatch::set_inputs(std::span<const double> heater) {
  if (heater.size() != width_) {
    throw std::invalid_argument("ThermalBatch::set_inputs: width mismatch");
  }
  std::copy(heater.begin(), heater.end(), input_.begin());
}

bool ThermalBatch::step() {
  const double t = time();
  if (t >= config_.duration_s - 1e-12) return false;
  times_.push_back(t);
  hist_.insert(hist_.end(), state_.begin(), state_.end());

  const std::size_t w = width_;
  const double h = base_period_ / static_cast<double>(config_.minor_steps);
  auto eval = [&](const LaneVector<>& cand, LaneVector<>& k) {
    for (std::size_t l = 0; l < w; ++l) {
      const double uc = input_[l];
      const double u = uc < 0.0 ? 0.0 : (1.0 < uc ? 1.0 : uc);
      k[l] = (power_[l] * u - (cand[l] - ambient_[l]) / resistance_[l]) /
             capacity_[l];
    }
  };
  for (int m = 0; m < config_.minor_steps; ++m) {
    eval(state_, k1_);
    util::rk4_stage(state_, k1_, 0.5 * h, y_);
    eval(y_, k2_);
    util::rk4_stage(state_, k2_, 0.5 * h, y_);
    eval(y_, k3_);
    util::rk4_stage(state_, k3_, h, y_);
    eval(y_, k4_);
    util::rk4_combine(state_, h, k1_, k2_, k3_, k4_);
  }
  ++major_;
  return true;
}

model::SampleLog ThermalBatch::temperatures(std::size_t lane) const {
  if (lane >= width_) {
    throw std::out_of_range("ThermalBatch::temperatures: lane out of range");
  }
  model::SampleLog log;
  for (std::size_t j = 0; j < times_.size(); ++j) {
    log.record(times_[j], hist_[j * width_ + lane]);
  }
  return log;
}

// ------------------------------------------------------------- latches

void pwm_latch_lanes(std::span<const double> ratio, std::int64_t modulo,
                     std::span<double> duty) {
  const std::size_t n = ratio.size();
  if (modulo <= 0) {
    for (std::size_t l = 0; l < n; ++l) {
      const double v = ratio[l];
      duty[l] = v < 0.0 ? 0.0 : (1.0 < v ? 1.0 : v);
    }
    return;
  }
  const double steps = static_cast<double>(modulo);
  for (std::size_t l = 0; l < n; ++l) {
    const double v = ratio[l];
    const double clamped = v < 0.0 ? 0.0 : (1.0 < v ? 1.0 : v);
    duty[l] = std::round(clamped * steps) / steps;
  }
}

void qdec_latch_lanes(std::span<const double> angle_rad, double cpr,
                      std::span<double> counts) {
  const std::size_t n = angle_rad.size();
  for (std::size_t l = 0; l < n; ++l) {
    const double c = std::floor(angle_rad[l] / (2.0 * std::numbers::pi) * cpr);
    // Guard the int64 conversion: UB for non-finite / out-of-range values
    // (the scalar block never sees them because its run has already blown
    // up; a batch retires the lane instead).
    std::int64_t wide = 0;
    if (c >= -9.2e18 && c <= 9.2e18) wide = static_cast<std::int64_t>(c);
    counts[l] = static_cast<double>(static_cast<std::int16_t>(
        static_cast<std::uint16_t>(wide & 0xFFFF)));
  }
}

void adc_latch_lanes(std::span<const double> volts, int bits, double vref,
                     std::span<std::uint16_t> codes) {
  const std::size_t n = volts.size();
  const double max_code = std::ldexp(1.0, bits) - 1.0;
  for (std::size_t l = 0; l < n; ++l) {
    const double scaled = std::round(volts[l] / vref * max_code);
    const double code =
        scaled < 0.0 ? 0.0 : (max_code < scaled ? max_code : scaled);
    codes[l] = static_cast<std::uint16_t>(
        static_cast<std::uint32_t>(code) << (16 - bits));
  }
}

}  // namespace iecd::batch
