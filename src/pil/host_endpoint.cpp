#include "pil/host_endpoint.hpp"

namespace iecd::pil {

HostEndpoint::HostEndpoint(sim::World& world, sim::SerialChannel& tx,
                           sim::SerialChannel& rx, Options options)
    : world_(world), tx_(tx), options_(options) {
  decoder_.set_callback([this](const Frame& frame) {
    if (frame.type != FrameType::kActuatorData) return;
    if (apply_) apply_(decode_signals(frame.payload));
    rtt_us_.add(sim::to_microseconds(world_.now() - sent_at_));
    awaiting_response_ = false;
  });
  rx.set_receiver([this](std::uint8_t byte, sim::SimTime) {
    decoder_.feed(byte);
  });
}

void HostEndpoint::set_plant(
    std::function<std::vector<double>()> sample,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  sample_ = std::move(sample);
  apply_ = std::move(apply);
  advance_ = std::move(advance);
}

void HostEndpoint::start() {
  if (running_) return;
  running_ = true;
  world_.queue().schedule_at(options_.start + options_.period,
                             [this] { exchange(); });
}

void HostEndpoint::exchange() {
  if (!running_) return;
  // The previous actuator frame should have arrived within the period;
  // a late response is the PIL bench's deadline miss.
  if (awaiting_response_) {
    ++deadline_misses_;
    awaiting_response_ = false;  // stale response applies late when it lands
  }
  if (advance_) advance_(sim::to_seconds(world_.now()));
  Frame frame;
  frame.type = FrameType::kSensorData;
  frame.seq = seq_++;
  frame.payload = encode_signals(sample_ ? sample_() : std::vector<double>{});
  const auto bytes = encode_frame(frame);
  tx_.transmit(bytes.data(), bytes.size());
  sent_at_ = world_.now();
  awaiting_response_ = true;
  ++exchanges_;
  world_.queue().schedule_in(options_.period, [this] { exchange(); });
}

}  // namespace iecd::pil
