# Empty dependencies file for iecd_blocks.
# This may be replaced when dependencies are built.
