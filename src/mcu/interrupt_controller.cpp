#include "mcu/interrupt_controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace iecd::mcu {

void InterruptController::register_vector(IrqVector vec, int priority,
                                          IsrHandler handler) {
  if (find(vec)) {
    throw std::logic_error("InterruptController: vector registered twice");
  }
  if (!handler.body) {
    throw std::invalid_argument("InterruptController: handler without body");
  }
  Line line;
  line.vec = vec;
  line.priority = priority;
  line.handler = std::move(handler);
  lines_.push_back(std::move(line));
  std::sort(lines_.begin(), lines_.end(), [](const Line& a, const Line& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.vec < b.vec;
  });
}

InterruptController::Line* InterruptController::find(IrqVector vec) {
  for (auto& l : lines_) {
    if (l.vec == vec) return &l;
  }
  return nullptr;
}

const InterruptController::Line* InterruptController::find(
    IrqVector vec) const {
  for (const auto& l : lines_) {
    if (l.vec == vec) return &l;
  }
  return nullptr;
}

bool InterruptController::is_registered(IrqVector vec) const {
  return find(vec) != nullptr;
}

void InterruptController::set_enabled(IrqVector vec, bool enabled) {
  Line* line = find(vec);
  if (!line) throw std::invalid_argument("set_enabled: unknown vector");
  line->enabled = enabled;
}

bool InterruptController::enabled(IrqVector vec) const {
  const Line* line = find(vec);
  return line && line->enabled;
}

bool InterruptController::raise(IrqVector vec, sim::SimTime now) {
  Line* line = find(vec);
  if (!line || !line->enabled) return false;
  if (line->pending) {
    ++overruns_;
    return false;
  }
  line->pending = true;
  line->raise_time = now;
  return true;
}

bool InterruptController::any_pending() const {
  return std::any_of(lines_.begin(), lines_.end(), [](const Line& l) {
    return l.pending && l.enabled;
  });
}

IrqVector InterruptController::acknowledge() {
  for (auto& l : lines_) {  // lines_ sorted by priority
    if (l.pending && l.enabled) {
      l.pending = false;
      last_raise_time_ = l.raise_time;
      return l.vec;
    }
  }
  return -1;
}

const IsrHandler& InterruptController::handler(IrqVector vec) const {
  const Line* line = find(vec);
  if (!line) throw std::invalid_argument("handler: unknown vector");
  return line->handler;
}

void InterruptController::reset() {
  for (auto& l : lines_) {
    l.pending = false;
    l.raise_time = 0;
  }
  overruns_ = 0;
  last_raise_time_ = 0;
}

}  // namespace iecd::mcu
