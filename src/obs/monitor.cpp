#include "obs/monitor.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "obs/health_report.hpp"
#include "sim/can_bus.hpp"
#include "sim/world.hpp"
#include "util/strings.hpp"

namespace iecd::obs {

// ------------------------------------------------------------ TimingMonitor

void TimingMonitor::merge(const TimingMonitor& other) {
  // The merged-in run's first activation contributes no jitter interval
  // (have_prev_ seams are per-run); histograms and counters just add.
  response_us_.merge(other.response_us_);
  exec_us_.merge(other.exec_us_);
  jitter_us_.merge(other.jitter_us_);
  activations_ += other.activations_;
  deadline_misses_ += other.deadline_misses_;
  if (other.last_miss_time_ > last_miss_time_) {
    last_miss_time_ = other.last_miss_time_;
  }
  if (config_.period_s == 0.0 && config_.deadline_s == 0.0) {
    config_ = other.config_;
  }
}

void TimingMonitor::reset() {
  response_us_.reset();
  exec_us_.reset();
  jitter_us_.reset();
  activations_ = 0;
  deadline_misses_ = 0;
  last_miss_time_ = 0;
  prev_start_ = 0;
  have_prev_ = false;
}

std::string TimingMonitor::state_line(const std::string& name) const {
  return util::format(
      "task %s: n=%llu resp_us[p50=%.3f p99=%.3f max=%.3f] exec_us[max=%.3f] "
      "jitter_us[max=%.3f] misses=%llu",
      name.c_str(), static_cast<unsigned long long>(activations_),
      response_us_.p50(), response_us_.p99(), response_us_.max(),
      exec_us_.max(), jitter_us_.max(),
      static_cast<unsigned long long>(deadline_misses_));
}

// --------------------------------------------------------------- MonitorHub

MonitorHub::MonitorHub() {
  flight_.set_state_provider([this](std::vector<std::string>& lines) {
    for (const auto& [name, mon] : timings_) {
      lines.push_back(mon.state_line(name));
    }
    for (const auto& [name, mon] : watermarks_) {
      lines.push_back(util::format(
          "watermark %s: current=%.3f peak=%.3f mean=%.3f n=%llu",
          name.c_str(), mon.current(), mon.peak(), mon.mean(),
          static_cast<unsigned long long>(mon.samples())));
    }
  });
}

TimingMonitor& MonitorHub::timing(const std::string& name,
                                  TimingMonitor::Config config) {
  auto it = timings_.find(name);
  if (it == timings_.end()) {
    it = timings_.emplace(name, TimingMonitor{config}).first;
  }
  return it->second;
}

WatermarkMonitor& MonitorHub::watermark(const std::string& name) {
  return watermarks_[name];
}

const TimingMonitor* MonitorHub::find_timing(const std::string& name) const {
  auto it = timings_.find(name);
  return it == timings_.end() ? nullptr : &it->second;
}

const WatermarkMonitor* MonitorHub::find_watermark(
    const std::string& name) const {
  auto it = watermarks_.find(name);
  return it == watermarks_.end() ? nullptr : &it->second;
}

void MonitorHub::add_probe(const std::string& name,
                           std::function<double(sim::SimTime)> gauge) {
  Probe probe;
  probe.name = name;
  probe.gauge = std::move(gauge);
  probe.into = &watermark(name);
  probes_.push_back(std::move(probe));
}

void MonitorHub::watch_can_bus(const sim::CanBus& bus) {
  // Utilisation since the previous poll: delta busy time over delta wall
  // time, so the watermark catches transient bus saturation that a
  // whole-run average hides.
  struct LoadState {
    sim::SimTime prev_busy = 0;
    sim::SimTime prev_time = 0;
  };
  auto state = std::make_shared<LoadState>();
  const sim::CanBus* bus_ptr = &bus;
  add_probe(bus.name() + ".load", [bus_ptr, state](sim::SimTime now) {
    const sim::SimTime busy = bus_ptr->stats().busy_time;
    const sim::SimTime busy_delta = busy - state->prev_busy;
    const sim::SimTime window = now - state->prev_time;
    state->prev_busy = busy;
    state->prev_time = now;
    return window > 0
               ? static_cast<double>(busy_delta) / static_cast<double>(window)
               : 0.0;
  });
  add_probe(bus.name() + ".pending", [bus_ptr](sim::SimTime) {
    return static_cast<double>(bus_ptr->pending());
  });
  // Error-path anomalies: integrity rejects and wire losses (the latter
  // only move under fault injection) snapshot the flight recorder.
  flight_.add_counter_trigger(bus.name() + ".crc_error", [bus_ptr]() {
    return bus_ptr->stats().crc_errors;
  });
  flight_.add_counter_trigger(bus.name() + ".frame_dropped", [bus_ptr]() {
    return bus_ptr->stats().frames_dropped;
  });
}

void MonitorHub::arm(sim::World& world, sim::SimTime poll_period) {
  // Trace-ring drops are an anomaly: post-mortem windows silently shrink.
  if (trace::TraceRecorder* rec = trace::recorder()) {
    flight_.add_counter_trigger("trace_ring_drop",
                                [rec]() { return rec->dropped(); });
  }
  sim::World* w = &world;
  world.queue().schedule_every(poll_period, [this, w]() { poll(*w); });
}

void MonitorHub::poll(sim::World& world) {
  const sim::SimTime now = world.now();
  watermark("sim.event_queue.depth")
      .update(static_cast<double>(world.queue().pending()));
  for (auto& probe : probes_) {
    probe.into->update(probe.gauge(now));
  }
  flight_.poll(now);
  ++polls_;
}

HealthReport MonitorHub::report(const std::string& source) const {
  HealthReport report;
  report.source = source;
  report.runs = 1;
  report.tasks = timings_;
  report.watermarks = watermarks_;
  report.anomalies = flight_.trigger_counts();
  report.dumps = flight_.dumps();
  report.dumps_suppressed = flight_.suppressed();
  return report;
}

}  // namespace iecd::obs
