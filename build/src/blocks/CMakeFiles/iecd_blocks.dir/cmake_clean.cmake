file(REMOVE_RECURSE
  "CMakeFiles/iecd_blocks.dir/continuous.cpp.o"
  "CMakeFiles/iecd_blocks.dir/continuous.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/custom.cpp.o"
  "CMakeFiles/iecd_blocks.dir/custom.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/discontinuities.cpp.o"
  "CMakeFiles/iecd_blocks.dir/discontinuities.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/discrete.cpp.o"
  "CMakeFiles/iecd_blocks.dir/discrete.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/lookup.cpp.o"
  "CMakeFiles/iecd_blocks.dir/lookup.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/math_blocks.cpp.o"
  "CMakeFiles/iecd_blocks.dir/math_blocks.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/routing.cpp.o"
  "CMakeFiles/iecd_blocks.dir/routing.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/sinks.cpp.o"
  "CMakeFiles/iecd_blocks.dir/sinks.cpp.o.d"
  "CMakeFiles/iecd_blocks.dir/sources.cpp.o"
  "CMakeFiles/iecd_blocks.dir/sources.cpp.o.d"
  "libiecd_blocks.a"
  "libiecd_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
