/// \file value.hpp
/// Runtime-typed fixed-point value and arithmetic.  This is the type the
/// model engine and the code generator use for fixed-point signals; the
/// compile-time Fixed<I,F> template in fixed.hpp mirrors what the generated
/// C code does with native integers.
#pragma once

#include <cstdint>
#include <string>

#include "fixpt/format.hpp"

namespace iecd::fixpt {

class FixedValue {
 public:
  FixedValue() = default;
  FixedValue(std::int64_t raw, FixedFormat fmt) : raw_(raw), fmt_(fmt) {}

  /// Quantizes \p real into \p fmt.
  static FixedValue from_double(double real, FixedFormat fmt,
                                Rounding rounding = Rounding::kNearest,
                                Overflow overflow = Overflow::kSaturate);

  double to_double() const;
  std::int64_t raw() const { return raw_; }
  const FixedFormat& format() const { return fmt_; }

  /// Re-represents this value in another format (rounding/saturating).
  FixedValue rescale(FixedFormat to, Rounding rounding = Rounding::kNearest,
                     Overflow overflow = Overflow::kSaturate) const;

  /// result = this + other, computed exactly then quantized into \p out_fmt.
  FixedValue add(const FixedValue& other, FixedFormat out_fmt,
                 Rounding rounding = Rounding::kNearest,
                 Overflow overflow = Overflow::kSaturate) const;

  FixedValue sub(const FixedValue& other, FixedFormat out_fmt,
                 Rounding rounding = Rounding::kNearest,
                 Overflow overflow = Overflow::kSaturate) const;

  /// Full-precision integer product, then shift into \p out_fmt.
  FixedValue mul(const FixedValue& other, FixedFormat out_fmt,
                 Rounding rounding = Rounding::kNearest,
                 Overflow overflow = Overflow::kSaturate) const;

  /// Quotient via pre-scaling the dividend so the result carries
  /// out_fmt.frac_bits fractional bits.
  FixedValue div(const FixedValue& other, FixedFormat out_fmt,
                 Rounding rounding = Rounding::kZero,
                 Overflow overflow = Overflow::kSaturate) const;

  FixedValue negate(Overflow overflow = Overflow::kSaturate) const;

  /// Exact value comparison across formats.
  bool equals(const FixedValue& other) const;
  bool less_than(const FixedValue& other) const;

  std::string to_string() const;

 private:
  std::int64_t raw_ = 0;
  FixedFormat fmt_{};
};

/// Quantization error of representing \p real in \p fmt (signed, in real
/// units).  Used by tests and the autoscaler.
double quantization_error(double real, FixedFormat fmt,
                          Rounding rounding = Rounding::kNearest);

}  // namespace iecd::fixpt
