/// \file sweep.hpp
/// First-class parallel scenario fan-out.  A SweepRunner executes N
/// independent scenarios (World/MIL/PIL runs, parameter-sweep points)
/// across worker threads and merges each run's MetricsRegistry
/// deterministically.
///
/// Determinism contract: each scenario writes only into the registry it is
/// handed (plus its own locals), every scenario is itself deterministic,
/// and the merge folds registries in index order 0..N-1 regardless of the
/// order in which worker threads finish.  Under those conditions the merged
/// registry — report(), to_csv(), every metric — is byte-identical to a
/// sequential run, for any thread count.  The determinism suite
/// (tests/determinism_test.cpp) locks this property in.
///
/// Execution engine: runs ride on campaign::StreamRunner — a work-stealing
/// scheduler (per-worker chunk deques, steal-half) feeding a windowed
/// index-order fold.  Heterogeneous run costs no longer idle threads the
/// way static tiling did, and the fold is streaming: per-run registries are
/// folded the moment all lower indices are folded, so memory is
/// O(sites + window) unless per-run retention is requested
/// (SweepOptions::retain_per_run, on by default for compatibility).
///
/// Batched execution: with SweepOptions::batch = N, runs are tiled into
/// ceil(runs / N) contiguous lane groups and a BatchScenario advances each
/// group in lockstep (typically through the SoA engines in src/batch/).
/// The merge is untouched — still a fold in index order — so a batched
/// sweep's report is byte-identical to the scalar sweep whenever each
/// lane's scenario is.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "campaign/stream.hpp"
#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

namespace iecd::exec {

struct SweepOptions {
  /// Worker threads; 0 selects hardware_concurrency.  1 runs the scenarios
  /// inline on the calling thread (the sequential reference execution).
  std::size_t threads = 0;
  /// Lane-batch width for the BatchScenario overloads: each work item
  /// covers up to `batch` consecutive run indices.  1 degenerates to one
  /// run per item (the scalar tiling).  Ignored by the scalar Scenario
  /// overloads.
  std::size_t batch = 1;
  /// Reorder window in runs for the streaming fold (0 = auto); bounds
  /// buffered out-of-order state.  See campaign::StreamOptions::window.
  std::size_t window = 0;
  /// Scheduler placement chunk in groups (0 = auto).
  std::size_t chunk = 0;
  /// Work stealing between worker deques (on by default).  Off plus
  /// contiguous placement reproduces classic static tiling — the measured
  /// baseline, not the shipping configuration.
  bool stealing = true;
  /// Contiguous (static-tiling) placement instead of the default cyclic
  /// deal; see campaign::Placement.
  bool contiguous = false;
  /// Keep Result::per_run / per_run_health populated (O(runs) memory).
  /// Campaign-scale callers turn this off and consume the merged fold.
  bool retain_per_run = true;
  /// Optional live progress counters shared with an observer.
  obs::CampaignProgress* progress = nullptr;
};

class SweepRunner {
 public:
  /// A scenario: run sweep point \p index, record results into \p metrics.
  /// Must not touch shared mutable state — each invocation gets its own
  /// registry and runs on an arbitrary pool thread.
  using Scenario =
      std::function<void(std::size_t index, trace::MetricsRegistry& metrics)>;

  /// A health-aware scenario: additionally fills a per-run HealthReport
  /// (typically MonitorHub::report() of a hub local to the run).
  using HealthScenario = std::function<void(
      std::size_t index, trace::MetricsRegistry& metrics,
      obs::HealthReport& health)>;

  /// A batched scenario: advance the lane group covering run indices
  /// [first, first + metrics.size()) in lockstep, recording run
  /// first + k into metrics[k].  Groups are contiguous; the last group of
  /// a sweep may be narrower than SweepOptions::batch (remainder lanes).
  /// Same isolation rule as Scenario: write only the handed registries.
  using BatchScenario = std::function<void(
      std::size_t first, std::span<trace::MetricsRegistry> metrics)>;

  /// Batched health-aware scenario (health.size() == metrics.size()).
  using BatchHealthScenario = std::function<void(
      std::size_t first, std::span<trace::MetricsRegistry> metrics,
      std::span<obs::HealthReport> health)>;

  explicit SweepRunner(SweepOptions options = {});

  struct Result {
    trace::MetricsRegistry merged;  ///< index-order fold of all runs
    /// Populated only with SweepOptions::retain_per_run (the default).
    std::vector<trace::MetricsRegistry> per_run;
    /// Merged health report (HealthScenario runs only): same index-order
    /// fold, so histograms/percentiles and anomaly counts are byte-
    /// deterministic for any thread count.
    obs::HealthReport health;
    std::vector<obs::HealthReport> per_run_health;
    std::size_t runs = 0;
    std::size_t threads_used = 0;
    double wall_ms = 0.0;  ///< wall clock (informational; not merged)
    /// Scheduler telemetry (steals, window waits, reorder-buffer peak).
    /// Informational — never folded into merged outputs.
    campaign::StreamStats sched;
  };

  /// Executes \p runs scenario instances and merges their metrics.
  Result run(std::size_t runs, const Scenario& scenario) const;

  /// Health-aware variant: merges per-run metrics AND health reports in
  /// index order (Result::health starts from runs == 0 and folds each
  /// per-run report, so its `runs` counts the sweep points).
  Result run(std::size_t runs, const HealthScenario& scenario) const;

  /// Batched variants: the work items handed to the scheduler are lane
  /// groups of SweepOptions::batch consecutive runs.  Per-run registries
  /// and the index-order merge are identical to the scalar overloads, so
  /// thread count and batch width never change the merged report.
  Result run(std::size_t runs, const BatchScenario& scenario) const;
  Result run(std::size_t runs, const BatchHealthScenario& scenario) const;

  std::size_t threads() const { return options_.threads; }

 private:
  campaign::StreamOptions stream_options(std::size_t batch) const;

  SweepOptions options_;
};

}  // namespace iecd::exec
