# Empty dependencies file for bench_e3_pil_comm.
# This may be replaced when dependencies are built.
