/// \file flight_recorder.hpp
/// Post-mortem capture for anomalies that would otherwise vanish unless a
/// human replays a Chrome trace: deadline misses, frame-decoder
/// resynchronizations, FIFO overruns, trace-ring drops.  Components (or
/// polled counter predicates) trigger the recorder; each trigger snapshots
/// the trailing N events of the active trace::TraceRecorder — with names
/// resolved to strings, so the dump outlives the recorder — plus a state
/// line per registered monitor.  Dumps are bounded; triggers beyond the
/// bound are still counted per trigger name.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace iecd::obs {

class FlightRecorder {
 public:
  struct Config {
    std::size_t trail_depth = 32;  ///< trace events captured per dump
    std::size_t max_dumps = 8;     ///< dumps retained; later triggers count only
  };

  /// One trailing trace event, resolved to strings at capture time.
  struct DumpEvent {
    trace::EventType type = trace::EventType::kInstant;
    std::string category;
    std::string name;
    std::string track;
    sim::SimTime time = 0;
    sim::SimTime duration = 0;
    std::uint64_t seq = 0;
    double value = 0.0;
  };

  /// One post-mortem record.
  struct Dump {
    std::string trigger;  ///< anomaly name ("deadline_miss", ...)
    std::string detail;   ///< offender (task name, channel, ...)
    sim::SimTime time = 0;
    std::uint64_t ordinal = 0;  ///< trigger ordinal across the whole run
    std::vector<DumpEvent> events;         ///< trailing events, oldest first
    std::vector<std::string> monitor_state;  ///< one line per monitor
  };

  FlightRecorder();
  explicit FlightRecorder(Config config);

  /// Push-style trigger: an instrumentation site reports the anomaly the
  /// moment it happens (tightest possible trailing-event window).
  void trigger(const std::string& name, sim::SimTime time,
               const std::string& detail = {});

  /// Polled predicate: evaluated at every poll(); a true return triggers
  /// once per poll.
  void add_trigger(const std::string& name, std::function<bool()> predicate);

  /// Polled monotonic counter: triggers whenever the counter increased
  /// since the previous poll (detail carries the increment), e.g. UART
  /// overruns, decoder CRC resyncs, trace-ring drops.
  void add_counter_trigger(const std::string& name,
                           std::function<std::uint64_t()> counter);

  /// Evaluates all polled triggers, in registration order.
  void poll(sim::SimTime now);

  /// Snapshot provider for monitor states (set by MonitorHub): fills one
  /// line per monitor into the vector it is handed.
  void set_state_provider(
      std::function<void(std::vector<std::string>&)> provider);

  const std::vector<Dump>& dumps() const { return dumps_; }
  /// Triggers observed per anomaly name (including ones past max_dumps).
  const std::map<std::string, std::uint64_t>& trigger_counts() const {
    return trigger_counts_;
  }
  std::uint64_t triggers_total() const { return triggers_total_; }
  std::uint64_t suppressed() const { return suppressed_; }

  const Config& config() const { return config_; }

  void reset();

 private:
  void capture(const std::string& name, sim::SimTime time,
               const std::string& detail);

  struct Polled {
    std::string name;
    std::function<bool()> predicate;            ///< or
    std::function<std::uint64_t()> counter;     ///< counter-delta form
    std::uint64_t last = 0;
  };

  Config config_;
  std::vector<Polled> polled_;
  std::vector<Dump> dumps_;
  std::map<std::string, std::uint64_t> trigger_counts_;
  std::uint64_t triggers_total_ = 0;
  std::uint64_t suppressed_ = 0;
  std::function<void(std::vector<std::string>&)> state_provider_;
};

}  // namespace iecd::obs
