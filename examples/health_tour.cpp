// Health tour: the online timing-analysis layer (src/obs/) on the
// DC-servo case study, in three acts.
//
//   1. A healthy HIL run with a MonitorHub attached: per-task response /
//      jitter / deadline monitors and queue-depth watermarks, rendered as
//      a HealthReport (text + HEALTH_servo.json).
//   2. An injected overload: extra per-step latency pushes the control
//      task past its deadline, the flight recorder snapshots the trailing
//      trace events, and the report names the offending task.
//   3. A parameter sweep with per-run health: exec::SweepRunner folds the
//      per-run reports in index order, so the merged report (percentiles
//      included) is byte-identical for any thread count.
//
// Monitors are passive — attaching a hub does not change the controlled
// trajectory (tests/obs_test.cpp locks that bit-for-bit).
#include <cstdio>
#include <string>

#include "core/case_study.hpp"
#include "exec/sweep.hpp"
#include "obs/health_report.hpp"
#include "obs/monitor.hpp"
#include "trace/trace.hpp"

using namespace iecd;

namespace {

void act_one_healthy_run() {
  std::printf("=== 1. healthy HIL run ===\n\n");

  obs::MonitorHub hub;
  core::ServoConfig config;
  config.duration_s = 0.25;
  core::ServoSystem servo(config);
  core::ServoSystem::HilOptions opts;
  opts.monitors = &hub;
  const auto hil = servo.run_hil(opts);

  const obs::HealthReport report = hub.report("servo_hil");
  std::printf("%s\n", report.to_text().c_str());
  report.write_json("HEALTH_servo.json");
  std::printf("wrote HEALTH_servo.json (IAE %.3f, %llu hub polls)\n\n",
              hil.iae, static_cast<unsigned long long>(hub.polls()));
}

void act_two_injected_overload() {
  std::printf("=== 2. injected overload -> flight dump ===\n\n");

  // A live tracer gives the flight recorder a window to snapshot.
  trace::TraceRecorder recorder(std::size_t{1} << 14);
  trace::TraceSession session(recorder);

  obs::MonitorHub hub;
  core::ServoConfig config;
  config.duration_s = 0.1;
  core::ServoSystem servo(config);
  core::ServoSystem::HilOptions opts;
  opts.monitors = &hub;
  // Charge every control step enough extra cycles to blow the deadline.
  opts.extra_latency_cycles = 80000;
  servo.run_hil(opts);

  const obs::HealthReport report = hub.report("servo_hil_overload");
  std::printf("health: %s, deadline misses: %llu\n",
              report.healthy() ? "healthy" : "UNHEALTHY",
              static_cast<unsigned long long>(report.deadline_misses()));
  if (!report.dumps.empty()) {
    const auto& dump = report.dumps.front();
    std::printf("first flight dump: trigger=%s offender=%s at t=%.3f ms, "
                "%zu trailing trace events:\n",
                dump.trigger.c_str(), dump.detail.c_str(),
                sim::to_seconds(dump.time) * 1e3, dump.events.size());
    for (const auto& ev : dump.events) {
      std::printf("  seq %-6llu %-10s %-24s t=%.3f ms\n",
                  static_cast<unsigned long long>(ev.seq),
                  ev.category.c_str(), ev.name.c_str(),
                  sim::to_seconds(ev.time) * 1e3);
    }
  }
  std::printf("\n");
}

int act_three_deterministic_sweep() {
  std::printf("=== 3. sweep merge (health fold is thread-invariant) ===\n\n");

  const auto scenario = [](std::size_t index, trace::MetricsRegistry& metrics,
                           obs::HealthReport& health) {
    obs::MonitorHub hub;
    core::ServoConfig config;
    config.duration_s = 0.1;
    config.kp = 0.001 + 0.0005 * static_cast<double>(index % 4);
    core::ServoSystem servo(config);
    core::ServoSystem::HilOptions opts;
    opts.monitors = &hub;
    const auto hil = servo.run_hil(opts);
    metrics.stats("hil.iae").add(hil.iae);
    health = hub.report("sweep_point");
  };

  exec::SweepRunner sequential(exec::SweepOptions{.threads = 1});
  exec::SweepRunner parallel(exec::SweepOptions{.threads = 4});
  const auto seq = sequential.run(8, exec::SweepRunner::HealthScenario(scenario));
  const auto par = parallel.run(8, exec::SweepRunner::HealthScenario(scenario));

  const bool identical = seq.health.to_json() == par.health.to_json();
  std::printf("8 runs, 1 thread vs 4 threads: merged health %s\n",
              identical ? "byte-identical" : "DIFFERS (bug!)");
  const auto* step = seq.health.tasks.count("servo_hil_step")
                         ? &seq.health.tasks.at("servo_hil_step")
                         : nullptr;
  if (step != nullptr) {
    std::printf("merged servo_hil_step: %llu activations, response p99 "
                "%.3f us, misses %llu\n",
                static_cast<unsigned long long>(step->activations()),
                step->response_us().p99(),
                static_cast<unsigned long long>(step->deadline_misses()));
  }
  return identical ? 0 : 1;
}

}  // namespace

int main() {
  act_one_healthy_run();
  act_two_injected_overload();
  return act_three_deterministic_sweep();
}
