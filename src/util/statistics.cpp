#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iecd::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningStats RunningStats::from_raw(std::size_t count, double mean, double m2,
                                    double sum, double min, double max) {
  RunningStats s;
  if (count == 0) return s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.sum_ = sum;
  s.min_ = min;
  s.max_ = max;
  return s;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

const std::vector<double>& SampleSeries::sorted() const {
  if (!sorted_valid_ || sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleSeries::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSeries::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size()));
}

double SampleSeries::min() const {
  return samples_.empty() ? 0.0 : sorted().front();
}

double SampleSeries::max() const {
  return samples_.empty() ? 0.0 : sorted().back();
}

double SampleSeries::percentile(double p) const {
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  if (s.size() == 1) return s[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(s.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= s.size()) return s.back();
  return s[idx] * (1.0 - frac) + s[idx + 1] * frac;
}

double SampleSeries::peak_deviation() const {
  if (samples_.empty()) return 0.0;
  const double m = mean();
  double peak = 0.0;
  for (double x : samples_) peak = std::max(peak, std::abs(x - m));
  return peak;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / w));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

bool Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return true;
}

Histogram Histogram::from_raw(double lo, double hi,
                              const std::vector<std::uint64_t>& counts) {
  Histogram h(lo, hi, counts.empty() ? 1 : counts.size());
  if (counts.empty()) return h;
  h.counts_ = counts;
  h.total_ = 0;
  for (auto c : counts) h.total_ += c;
  return h;
}

double Histogram::bin_lo(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::to_ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak == 0 ? std::size_t{0}
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(width));
    std::snprintf(buf, sizeof buf, "[%12.4g, %12.4g) %8llu ", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace iecd::util
